// Quickstart: the paper's running example end to end.
//
// Profiles the employee table (Table II), shares its metadata, lets an
// adversary generate a synthetic table from it, and measures privacy
// leakage — including the Example 3.1 expected values.
#include <cstdio>

#include "common/random.h"
#include "common/string_util.h"
#include "data/datasets/employee.h"
#include "data/domain.h"
#include "discovery/discovery_engine.h"
#include "generation/generation_engine.h"
#include "privacy/analytical.h"
#include "privacy/experiment.h"
#include "privacy/leakage.h"

using namespace metaleak;  // Example code; library code never does this.

int main() {
  Relation employee = datasets::Employee();
  std::printf("== The employee relation (paper Table II) ==\n%s\n",
              employee.ToString().c_str());

  // 1) Profile: discover domains + FDs/RFDs.
  Result<DiscoveryReport> report = ProfileRelation(employee);
  if (!report.ok()) {
    std::fprintf(stderr, "profiling failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  const MetadataPackage& metadata = report->metadata;
  std::printf("== Discovered dependencies ==\n%s\n",
              metadata.dependencies.ToString(employee.schema()).c_str());

  // 2) Example 3.1: expected matches under random generation.
  Result<Domain> age = ExtractDomain(employee, 1);
  Result<Domain> dept = ExtractDomain(employee, 2);
  if (age.ok() && dept.ok()) {
    // The paper counts the age domain as the 9 integers in [18, 26].
    Domain age_domain = Domain::Categorical(
        {Value::Int(18), Value::Int(19), Value::Int(20), Value::Int(21),
         Value::Int(22), Value::Int(23), Value::Int(24), Value::Int(25),
         Value::Int(26)});
    double e_age =
        ExpectedRandomCategoricalMatches(employee.num_rows(), age_domain);
    double e_dept =
        ExpectedRandomCategoricalMatches(employee.num_rows(), *dept);
    std::printf("== Example 3.1 ==\n");
    std::printf("E[age matches]        = %s (paper: 4/9 ~ 0.444)\n",
                FormatDouble(e_age, 3).c_str());
    std::printf("E[department matches] = %s (paper: 4/3 ~ 1.333)\n\n",
                FormatDouble(e_dept, 3).c_str());
  }

  // 3) Adversarial generation + leakage, random vs. FD-informed.
  ExperimentConfig config;
  config.rounds = 2000;
  Result<std::vector<MethodResult>> methods = RunExperiment(
      employee, metadata,
      {GenerationMethod::kRandom, GenerationMethod::kFd}, config);
  if (!methods.ok()) {
    std::fprintf(stderr, "experiment failed: %s\n",
                 methods.status().ToString().c_str());
    return 1;
  }
  std::printf("== Mean leakage over %zu rounds ==\n", config.rounds);
  for (const MethodResult& m : *methods) {
    std::printf("%s:\n", GenerationMethodToString(m.method).c_str());
    for (const MethodAttributeResult& a : m.attributes) {
      std::printf("  %-12s matches=%-8s %s\n", a.name.c_str(),
                  a.covered ? FormatDouble(a.mean_matches, 3).c_str() : "NA",
                  a.mean_mse.has_value()
                      ? ("mse=" + FormatDouble(*a.mean_mse, 1)).c_str()
                      : "");
    }
  }
  std::printf(
      "\nConclusion (paper Section III-B): FD-informed generation leaks no "
      "more than random generation.\n");
  return 0;
}
