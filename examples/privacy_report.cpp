// privacy_report: the one-call API, plus a round drill-down.
//
// Usage: privacy_report [file.csv] > report.md
//
// RunAudit() wraps the whole pipeline — discovery, identifiability,
// adversarial generation, leakage measurement — and ToMarkdown() renders
// a report with per-attribute share/withhold verdicts. The audit's
// Monte-Carlo rounds stream through ExperimentEngine's encoded code
// path; the drill-down below uses the same engine directly to replay
// the single most-leaking recorded round (MethodResult::round_seeds +
// ReplayRound) and show its per-attribute numbers. Without an argument
// it audits the bundled echocardiogram replica.
#include <cstdio>

#include "common/string_util.h"
#include "data/csv_loader.h"
#include "data/datasets/echocardiogram.h"
#include "privacy/audit.h"
#include "privacy/experiment.h"

using namespace metaleak;  // Example code; library code never does this.

int main(int argc, char** argv) {
  Relation relation;
  if (argc > 1) {
    Result<Relation> loaded = LoadCsvRelationFile(argv[1]);
    if (!loaded.ok()) {
      std::fprintf(stderr, "cannot load %s: %s\n", argv[1],
                   loaded.status().ToString().c_str());
      return 1;
    }
    relation = std::move(loaded).ValueUnsafe();
  } else {
    relation = datasets::Echocardiogram();
  }

  AuditOptions options;
  options.experiment.rounds = 200;
  options.experiment.threads = 0;  // use all cores
  options.discovery.discover_cfds = true;
  options.methods = {GenerationMethod::kFd, GenerationMethod::kOd,
                     GenerationMethod::kNd, GenerationMethod::kCfd};
  Result<AuditResult> audit = RunAudit(relation, options);
  if (!audit.ok()) {
    std::fprintf(stderr, "audit failed: %s\n",
                 audit.status().ToString().c_str());
    return 1;
  }
  std::fputs(audit->ToMarkdown().c_str(), stdout);

  // Drill-down: re-run one method on the streaming engine, then use the
  // recorded per-round seeds to find and replay the round with the most
  // categorical matches — the worst single draw behind the averages.
  ExperimentEngine engine(relation, audit->metadata);
  ExperimentConfig config;
  config.rounds = 64;
  config.threads = 0;  // use all cores
  const GenerationMethod method = GenerationMethod::kFd;
  Result<MethodResult> run = engine.Run(method, config);
  if (!run.ok()) {
    std::fprintf(stderr, "drill-down failed: %s\n",
                 run.status().ToString().c_str());
    return 1;
  }
  size_t worst_round = 0;
  size_t worst_matches = 0;
  LeakageReport worst;
  for (size_t round = 0; round < run->round_seeds.size(); ++round) {
    Result<LeakageReport> report =
        engine.ReplayRound(method, run->round_seeds[round], config);
    if (!report.ok()) continue;
    size_t matches = report->TotalCategoricalMatches();
    if (round == 0 || matches > worst_matches) {
      worst_round = round;
      worst_matches = matches;
      worst = std::move(*report);
    }
  }
  std::printf("\n## Worst round under %s\n\n",
              GenerationMethodToString(method).c_str());
  std::printf(
      "Round %zu of %zu (seed %llu) had the most categorical matches "
      "(%zu):\n\n",
      worst_round, config.rounds,
      static_cast<unsigned long long>(run->round_seeds[worst_round]),
      worst_matches);
  for (const AttributeLeakage& a : worst.attributes) {
    Result<MethodAttributeResult> mean = run->ForAttribute(a.attribute);
    std::printf("- `%s`: %zu/%zu matched (run mean %s)\n", a.name.c_str(),
                a.matches, a.rows_compared,
                mean.ok() ? FormatDouble(mean->mean_matches, 2).c_str()
                          : "-");
  }
  return 0;
}
