// privacy_report: the one-call API.
//
// Usage: privacy_report [file.csv] > report.md
//
// RunAudit() wraps the whole pipeline — discovery, identifiability,
// adversarial generation, leakage measurement — and ToMarkdown() renders
// a report with per-attribute share/withhold verdicts. Without an
// argument it audits the bundled echocardiogram replica.
#include <cstdio>

#include "data/csv_loader.h"
#include "data/datasets/echocardiogram.h"
#include "privacy/audit.h"

using namespace metaleak;  // Example code; library code never does this.

int main(int argc, char** argv) {
  Relation relation;
  if (argc > 1) {
    Result<Relation> loaded = LoadCsvRelationFile(argv[1]);
    if (!loaded.ok()) {
      std::fprintf(stderr, "cannot load %s: %s\n", argv[1],
                   loaded.status().ToString().c_str());
      return 1;
    }
    relation = std::move(loaded).ValueUnsafe();
  } else {
    relation = datasets::Echocardiogram();
  }

  AuditOptions options;
  options.experiment.rounds = 200;
  options.experiment.threads = 0;  // use all cores
  options.discovery.discover_cfds = true;
  options.methods = {GenerationMethod::kFd, GenerationMethod::kOd,
                     GenerationMethod::kNd, GenerationMethod::kCfd};
  Result<AuditResult> audit = RunAudit(relation, options);
  if (!audit.ok()) {
    std::fprintf(stderr, "audit failed: %s\n",
                 audit.status().ToString().c_str());
    return 1;
  }
  std::fputs(audit->ToMarkdown().c_str(), stdout);
  return 0;
}
