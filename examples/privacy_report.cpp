// privacy_report: the session API, plus a round drill-down.
//
// Usage: privacy_report [file.csv] > report.md
//
// Registers the relation with an AuditService and serves the full audit
// from the session's snapshot: encoding and discovery happen once at
// registration, Audit() runs only the measurement stages, and the report
// ends with the cache counters that make the reuse visible. The
// drill-down borrows the same snapshot's encoding to replay the single
// most-leaking recorded round (MethodResult::round_seeds + ReplayRound)
// and show its per-attribute numbers. Without an argument it audits the
// bundled echocardiogram replica.
#include <cstdio>

#include "common/string_util.h"
#include "data/csv_loader.h"
#include "data/datasets/echocardiogram.h"
#include "privacy/audit.h"
#include "privacy/experiment.h"
#include "service/audit_service.h"

using namespace metaleak;  // Example code; library code never does this.

int main(int argc, char** argv) {
  Relation relation;
  if (argc > 1) {
    Result<Relation> loaded = LoadCsvRelationFile(argv[1]);
    if (!loaded.ok()) {
      std::fprintf(stderr, "cannot load %s: %s\n", argv[1],
                   loaded.status().ToString().c_str());
      return 1;
    }
    relation = std::move(loaded).ValueUnsafe();
  } else {
    relation = datasets::Echocardiogram();
  }

  // One registration = one encoding + one discovery pass; the audit and
  // the drill-down below both run against the resulting snapshot.
  ServiceOptions service_options;
  service_options.discovery.discover_cfds = true;
  AuditService service(service_options);
  Result<SessionId> session = service.Register(relation);
  if (!session.ok()) {
    std::fprintf(stderr, "registration failed: %s\n",
                 session.status().ToString().c_str());
    return 1;
  }

  AuditOptions options;
  options.experiment.rounds = 200;
  options.experiment.threads = 0;  // use all cores
  options.methods = {GenerationMethod::kFd, GenerationMethod::kOd,
                     GenerationMethod::kNd, GenerationMethod::kCfd};
  Result<AuditResult> audit = service.Audit(*session, options);
  if (!audit.ok()) {
    std::fprintf(stderr, "audit failed: %s\n",
                 audit.status().ToString().c_str());
    return 1;
  }
  std::fputs(audit->ToMarkdown().c_str(), stdout);

  // Drill-down: re-run one method on the snapshot's encoding, then use
  // the recorded per-round seeds to find and replay the round with the
  // most categorical matches — the worst single draw behind the averages.
  Result<std::shared_ptr<const RelationSnapshot>> snapshot =
      service.Snapshot(*session);
  if (!snapshot.ok()) return 1;
  ExperimentEngine engine((*snapshot)->encoding(), audit->metadata);
  ExperimentConfig config;
  config.rounds = 64;
  config.threads = 0;  // use all cores
  config.estimators = &RiskEstimatorRegistry::All();
  const GenerationMethod method = GenerationMethod::kFd;
  Result<MethodResult> run = engine.Run(method, config);
  if (!run.ok()) {
    std::fprintf(stderr, "drill-down failed: %s\n",
                 run.status().ToString().c_str());
    return 1;
  }
  size_t worst_round = 0;
  size_t worst_matches = 0;
  LeakageReport worst;
  for (size_t round = 0; round < run->round_seeds.size(); ++round) {
    Result<LeakageReport> report =
        engine.ReplayRound(method, run->round_seeds[round], config);
    if (!report.ok()) continue;
    size_t matches = report->TotalCategoricalMatches();
    if (round == 0 || matches > worst_matches) {
      worst_round = round;
      worst_matches = matches;
      worst = std::move(*report);
    }
  }
  std::printf("\n## Worst round under %s\n\n",
              GenerationMethodToString(method).c_str());
  std::printf(
      "Round %zu of %zu (seed %llu) had the most categorical matches "
      "(%zu):\n\n",
      worst_round, config.rounds,
      static_cast<unsigned long long>(run->round_seeds[worst_round]),
      worst_matches);
  for (const AttributeLeakage& a : worst.attributes) {
    Result<MethodAttributeResult> mean = run->ForAttribute(a.attribute);
    std::printf("- `%s`: %zu/%zu matched (run mean %s)\n", a.name.c_str(),
                a.matches, a.rows_compared,
                mean.ok() ? FormatDouble(mean->mean_matches, 2).c_str()
                          : "-");
  }

  // Every beyond-match-rate measure column the engine streamed for the
  // drill-down method (match rate itself is in the tables above).
  std::printf("\n## Registered risk measures under %s\n\n",
              GenerationMethodToString(method).c_str());
  const Schema& schema = audit->metadata.schema;
  for (const RiskMeasureStats& ms : run->measures) {
    if (!ms.active || ms.estimator == MatchRateEstimator::Instance().name()) {
      continue;
    }
    for (size_t c = 0; c < ms.mean.size(); ++c) {
      if (ms.rounds[c] == 0) continue;
      std::printf("- `%s` %s/%s: %s\n", schema.attribute(c).name.c_str(),
                  ms.estimator.c_str(), ms.measure.c_str(),
                  FormatDouble(ms.mean[c], 3).c_str());
    }
  }
  return 0;
}
