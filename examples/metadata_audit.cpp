// metadata_audit: a command-line privacy audit for a CSV dataset.
//
// Usage: metadata_audit [file.csv]
//
// Profiles the relation (domains + FDs/RFDs), then answers the question a
// data owner should ask before joining a VFL federation: "if I share this
// metadata, what can the counterpart reconstruct?" — per disclosure
// level, with the analytical expectations alongside measurements.
// Without an argument it audits the bundled echocardiogram replica.
#include <cstdio>
#include <string>

#include "common/string_util.h"
#include "common/table_printer.h"
#include "data/csv_loader.h"
#include "data/datasets/echocardiogram.h"
#include "data/domain.h"
#include "discovery/discovery_engine.h"
#include "privacy/analytical.h"
#include "privacy/experiment.h"
#include "privacy/identifiability.h"
#include "privacy/tuple_risk.h"

using namespace metaleak;  // Example code; library code never does this.

int main(int argc, char** argv) {
  Relation relation;
  if (argc > 1) {
    Result<Relation> loaded = LoadCsvRelationFile(argv[1]);
    if (!loaded.ok()) {
      std::fprintf(stderr, "cannot load %s: %s\n", argv[1],
                   loaded.status().ToString().c_str());
      return 1;
    }
    relation = std::move(loaded).ValueUnsafe();
    std::printf("Auditing %s: %zu rows x %zu attributes\n\n", argv[1],
                relation.num_rows(), relation.num_columns());
  } else {
    relation = datasets::Echocardiogram();
    std::printf(
        "No input given; auditing the bundled echocardiogram replica "
        "(%zu rows x %zu attributes).\n\n",
        relation.num_rows(), relation.num_columns());
  }

  // 1) Profile.
  DiscoveryOptions discovery;
  discovery.discover_afds = true;
  Result<DiscoveryReport> report = ProfileRelation(relation, discovery);
  if (!report.ok()) {
    std::fprintf(stderr, "profiling failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  const MetadataPackage& metadata = report->metadata;

  std::printf("== Discovered metadata ==\n");
  for (const Attribute& a : metadata.schema.attributes()) {
    std::printf("  %-24s %-8s %s\n", a.name.c_str(),
                DataTypeToString(a.type).c_str(),
                SemanticTypeToString(a.semantic).c_str());
  }
  std::printf("  %zu dependencies:\n",
              metadata.dependencies.size());
  for (const Dependency& d : metadata.dependencies) {
    std::printf("    %s\n", d.ToString(metadata.schema).c_str());
  }

  // 2) Identifiability (Definition 2.1).
  std::printf("\n== Identifiability (GDPR Art. 5 / Definition 2.1) ==\n");
  for (size_t k = 1; k <= std::min<size_t>(2, relation.num_columns());
       ++k) {
    Result<double> frac = IdentifiableByAnySubset(relation, k);
    if (frac.ok()) {
      std::printf(
          "  %.1f%% of tuples identifiable via some %zu-attribute "
          "subset\n",
          100.0 * *frac, k);
    }
  }

  // 3) Expected leakage per attribute if names+domains are shared.
  std::printf("\n== Expected leakage from names+domains alone ==\n");
  TablePrinter table;
  table.SetHeader({"Attribute", "Domain", "E[matches]", "Risk"});
  Result<std::vector<Domain>> domains = metadata.RequireDomains();
  if (!domains.ok()) return 1;
  for (size_t c = 0; c < relation.num_columns(); ++c) {
    const Attribute& attr = metadata.schema.attribute(c);
    double expected =
        attr.semantic == SemanticType::kCategorical
            ? ExpectedRandomCategoricalMatches(relation.num_rows(),
                                               (*domains)[c])
            : ExpectedRandomContinuousMatches(
                  relation.num_rows(), (*domains)[c],
                  0.01 * (*domains)[c].range());
    std::string domain_str = (*domains)[c].is_categorical()
                                 ? "|D|=" + FormatDouble(
                                                (*domains)[c].Size(), 0)
                                 : (*domains)[c].ToString();
    table.AddRow({attr.name, domain_str, FormatDouble(expected, 3),
                  expected >= 1.0 ? "LEAK EXPECTED" : "low"});
  }
  table.Print();

  // 4) Does adding FDs/RFDs make it worse? Measure.
  std::printf("\n== Measured leakage: random vs dependency-informed ==\n");
  ExperimentConfig config;
  config.rounds = 200;
  Result<std::vector<MethodResult>> results = RunExperiment(
      relation, metadata,
      {GenerationMethod::kRandom, GenerationMethod::kFd,
       GenerationMethod::kOd, GenerationMethod::kNd},
      config);
  if (!results.ok()) {
    std::fprintf(stderr, "experiment failed: %s\n",
                 results.status().ToString().c_str());
    return 1;
  }
  TablePrinter measured;
  measured.SetHeader(
      {"Attribute", "Random", "FD", "OD", "ND", "Verdict"});
  for (size_t c = 0; c < relation.num_columns(); ++c) {
    std::vector<std::string> row = {
        metadata.schema.attribute(c).name};
    double random_mean = 0.0;
    double max_dep = 0.0;
    for (size_t m = 0; m < results->size(); ++m) {
      Result<MethodAttributeResult> a = (*results)[m].ForAttribute(c);
      if (!a.ok() || (!a->covered && m != 0)) {
        row.push_back("NA");
        continue;
      }
      row.push_back(FormatDouble(a->mean_matches, 2));
      if (m == 0) {
        random_mean = a->mean_matches;
      } else {
        max_dep = std::max(max_dep, a->mean_matches);
      }
    }
    double slack = 3.0 * std::sqrt(std::max(1.0, random_mean));
    row.push_back(max_dep > random_mean + slack ? "deps leak MORE"
                                                : "deps add ~nothing");
    measured.AddRow(std::move(row));
  }
  measured.Print();
  // 5) Which tuples are most at risk (Section V's targeted-advertising
  //    discussion: a correct reconstruction is valuable per tuple).
  TupleRiskOptions risk_options;
  risk_options.rounds = 100;
  Result<TupleRiskReport> risk =
      AnalyzeTupleRisk(relation, metadata, risk_options);
  if (risk.ok()) {
    std::printf("\n== Highest-risk tuples (mean reconstructed attrs) ==\n");
    std::fputs(risk->ToString(5).c_str(), stdout);
  }

  std::printf(
      "\nRecommendation: share attribute names and dependencies; treat\n"
      "domain disclosure as the actual risk surface (paper Section VI).\n");
  return 0;
}
