// metadata_audit: a command-line privacy audit for a CSV dataset.
//
// Usage: metadata_audit [file.csv]
//
// Registers the relation with an AuditService once and serves every
// stage — profiling, identifiability, measured leakage, tuple risk —
// from that session's snapshot: one encoding, one discovery pass, one
// partition cache shared across the stages (the old version re-encoded
// the relation in each of them). The footer prints the cache counters so
// the sharing is visible. Without an argument it audits the bundled
// echocardiogram replica.
#include <cstdio>
#include <string>

#include "common/string_util.h"
#include "common/table_printer.h"
#include "data/csv_loader.h"
#include "data/datasets/echocardiogram.h"
#include "data/domain.h"
#include "privacy/analytical.h"
#include "privacy/experiment.h"
#include "privacy/identifiability.h"
#include "privacy/tuple_risk.h"
#include "service/audit_service.h"

using namespace metaleak;  // Example code; library code never does this.

int main(int argc, char** argv) {
  Relation relation;
  if (argc > 1) {
    Result<Relation> loaded = LoadCsvRelationFile(argv[1]);
    if (!loaded.ok()) {
      std::fprintf(stderr, "cannot load %s: %s\n", argv[1],
                   loaded.status().ToString().c_str());
      return 1;
    }
    relation = std::move(loaded).ValueUnsafe();
    std::printf("Auditing %s: %zu rows x %zu attributes\n\n", argv[1],
                relation.num_rows(), relation.num_columns());
  } else {
    relation = datasets::Echocardiogram();
    std::printf(
        "No input given; auditing the bundled echocardiogram replica "
        "(%zu rows x %zu attributes).\n\n",
        relation.num_rows(), relation.num_columns());
  }

  // 1) Register once; profiling happens here and only here.
  ServiceOptions service_options;
  service_options.discovery.discover_afds = true;
  AuditService service(service_options);
  Result<SessionId> session = service.Register(relation);
  if (!session.ok()) {
    std::fprintf(stderr, "registration failed: %s\n",
                 session.status().ToString().c_str());
    return 1;
  }
  Result<std::shared_ptr<const RelationSnapshot>> snapshot =
      service.Snapshot(*session);
  if (!snapshot.ok()) return 1;
  const MetadataPackage& metadata = (*snapshot)->profile().metadata;

  std::printf("== Discovered metadata ==\n");
  for (const Attribute& a : metadata.schema.attributes()) {
    std::printf("  %-24s %-8s %s\n", a.name.c_str(),
                DataTypeToString(a.type).c_str(),
                SemanticTypeToString(a.semantic).c_str());
  }
  std::printf("  %zu dependencies:\n",
              metadata.dependencies.size());
  for (const Dependency& d : metadata.dependencies) {
    std::printf("    %s\n", d.ToString(metadata.schema).c_str());
  }

  // 2) Identifiability (Definition 2.1), on the snapshot's shared
  //    partition cache: the width-1 sweep seeds the width-2 extensions.
  std::printf("\n== Identifiability (GDPR Art. 5 / Definition 2.1) ==\n");
  for (size_t k = 1; k <= std::min<size_t>(2, relation.num_columns());
       ++k) {
    Result<double> frac =
        IdentifiableByAnySubset((*snapshot)->pli_cache(), k);
    if (frac.ok()) {
      std::printf(
          "  %.1f%% of tuples identifiable via some %zu-attribute "
          "subset\n",
          100.0 * *frac, k);
    }
  }

  // 3) Expected leakage per attribute if names+domains are shared —
  //    precomputed analytically in the snapshot's leakage profile.
  std::printf("\n== Expected leakage from names+domains alone ==\n");
  TablePrinter table;
  table.SetHeader({"Attribute", "Domain", "E[matches]", "Risk"});
  Result<std::vector<Domain>> domains = metadata.RequireDomains();
  if (!domains.ok()) return 1;
  const LeakageProfile& leakage = (*snapshot)->leakage();
  for (size_t c = 0; c < relation.num_columns(); ++c) {
    const AttributeExpectation& attr = leakage.attributes[c];
    std::string domain_str = (*domains)[c].is_categorical()
                                 ? "|D|=" + FormatDouble(
                                                (*domains)[c].Size(), 0)
                                 : (*domains)[c].ToString();
    table.AddRow({attr.name, domain_str,
                  FormatDouble(attr.expected_random_matches, 3),
                  attr.domain_leaks ? "LEAK EXPECTED" : "low"});
  }
  table.Print();

  // 4) Does adding FDs/RFDs make it worse? Measure, against the same
  //    snapshot (no re-encoding per method).
  std::printf("\n== Measured leakage: random vs dependency-informed ==\n");
  ExperimentConfig config;
  config.rounds = 200;
  const std::vector<GenerationMethod> methods = {
      GenerationMethod::kRandom, GenerationMethod::kFd,
      GenerationMethod::kOd, GenerationMethod::kNd};
  std::vector<MethodResult> results;
  for (GenerationMethod method : methods) {
    Result<MethodResult> run =
        service.MeasureLeakage(*session, method, config);
    if (!run.ok()) {
      std::fprintf(stderr, "experiment failed: %s\n",
                   run.status().ToString().c_str());
      return 1;
    }
    results.push_back(std::move(*run));
  }
  TablePrinter measured;
  measured.SetHeader(
      {"Attribute", "Random", "FD", "OD", "ND", "Verdict"});
  for (size_t c = 0; c < relation.num_columns(); ++c) {
    std::vector<std::string> row = {
        metadata.schema.attribute(c).name};
    double random_mean = 0.0;
    double max_dep = 0.0;
    for (size_t m = 0; m < results.size(); ++m) {
      Result<MethodAttributeResult> a = results[m].ForAttribute(c);
      if (!a.ok() || (!a->covered && m != 0)) {
        row.push_back("NA");
        continue;
      }
      row.push_back(FormatDouble(a->mean_matches, 2));
      if (m == 0) {
        random_mean = a->mean_matches;
      } else {
        max_dep = std::max(max_dep, a->mean_matches);
      }
    }
    double slack = 3.0 * std::sqrt(std::max(1.0, random_mean));
    row.push_back(max_dep > random_mean + slack ? "deps leak MORE"
                                                : "deps add ~nothing");
    measured.AddRow(std::move(row));
  }
  measured.Print();

  // 5) Which tuples are most at risk (Section V's targeted-advertising
  //    discussion: a correct reconstruction is valuable per tuple).
  TupleRiskOptions risk_options;
  risk_options.rounds = 100;
  Result<TupleRiskReport> risk = service.TupleRisk(*session, risk_options);
  if (risk.ok()) {
    std::printf("\n== Highest-risk tuples (mean reconstructed attrs) ==\n");
    std::fputs(risk->ToString(5).c_str(), stdout);
  }

  // 6) What the session sharing bought: one snapshot, many queries.
  const PliCache& cache = (*snapshot)->pli_cache();
  ServiceStats stats = service.stats();
  std::printf("\n== Cache observability ==\n");
  std::printf(
      "  PLI cache: %llu hits / %llu misses across discovery + "
      "identifiability\n",
      static_cast<unsigned long long>(cache.hits()),
      static_cast<unsigned long long>(cache.misses()));
  std::printf(
      "  Snapshot cache: %llu hits, %llu misses, %llu evictions\n",
      static_cast<unsigned long long>(stats.snapshot_hits),
      static_cast<unsigned long long>(stats.snapshot_misses),
      static_cast<unsigned long long>(stats.snapshot_evictions));

  std::printf(
      "\nRecommendation: share attribute names and dependencies; treat\n"
      "domain disclosure as the actual risk surface (paper Section VI).\n");
  return 0;
}
