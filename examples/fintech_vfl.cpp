// The paper's Figure 1 scenario end to end: a bank and an e-commerce
// company run vertical federated learning on a shared customer
// population — PSI alignment, metadata exchange, joint training — and we
// measure what the metadata alone lets the bank reconstruct.
#include <cstdio>

#include "common/string_util.h"
#include "common/table_printer.h"
#include "data/datasets/fintech.h"
#include "privacy/experiment.h"
#include "vfl/psi.h"
#include "vfl/scenario.h"

using namespace metaleak;  // Example code; library code never does this.

int main() {
  // Two parties observe overlapping customers, disjoint features.
  datasets::FintechOptions data_options;
  data_options.population = 800;
  datasets::FintechScenario data = datasets::Fintech(data_options);
  Party bank("bank", data.bank, "customer_id");
  Party ecommerce("ecommerce", data.ecommerce, "customer_id");

  std::printf("Party A (bank):       %zu customers x %zu attributes\n",
              bank.data().num_rows(), bank.data().num_columns());
  std::printf("Party B (e-commerce): %zu customers x %zu attributes\n\n",
              ecommerce.data().num_rows(), ecommerce.data().num_columns());

  // What does party B actually put on the wire at full disclosure?
  Result<MetadataPackage> shared =
      ecommerce.ShareMetadata(DisclosureLevel::kWithRfds);
  if (!shared.ok()) {
    std::fprintf(stderr, "metadata exchange failed: %s\n",
                 shared.status().ToString().c_str());
    return 1;
  }
  std::printf("== Metadata party B sends to party A ==\n%s\n",
              shared->Serialize().c_str());

  // Full pipeline: PSI -> exchange -> train -> attack.
  ScenarioOptions options;
  options.train.epochs = 250;
  Result<ScenarioOutcome> outcome = RunScenario(bank, ecommerce, options);
  if (!outcome.ok()) {
    std::fprintf(stderr, "scenario failed: %s\n",
                 outcome.status().ToString().c_str());
    return 1;
  }

  std::printf("== Pipeline results ==\n");
  std::printf("PSI aligned %zu customers without exchanging raw ids.\n",
              outcome->intersection_size);
  std::printf("Bank-only accuracy: %s; joint VFL accuracy: %s.\n\n",
              FormatDouble(outcome->party_a_only_accuracy, 4).c_str(),
              FormatDouble(outcome->joint_accuracy, 4).c_str());

  TablePrinter table("Bank's reconstruction of B's slice, per disclosure");
  table.SetHeader({"Level", "Attribute", "Match rate", "MSE"});
  for (const AttackResult& level : outcome->leakage_by_level) {
    if (!level.reconstructed) {
      table.AddRow({DisclosureLevelToString(level.level),
                    "(not reconstructable)", "-", "-"});
      continue;
    }
    for (const AttributeLeakage& a : level.leakage.attributes) {
      table.AddRow({DisclosureLevelToString(level.level), a.name,
                    FormatDouble(a.match_rate, 4),
                    a.mse.has_value() ? FormatDouble(*a.mse, 1) : "-"});
    }
  }
  table.Print();

  // The single-shot sweep above is one generation draw per level. The
  // bank's real attack averages over many rounds: align B's features
  // once, hand relation + metadata to the streaming ExperimentEngine
  // (rounds run on the encoded code path, per-round stats folded into
  // Welford accumulators — no per-round Relation), and read the
  // per-attribute means.
  Result<std::vector<PsiToken>> tokens_a = bank.PsiTokens(/*salt=*/11);
  Result<std::vector<PsiToken>> tokens_b = ecommerce.PsiTokens(11);
  if (!tokens_a.ok() || !tokens_b.ok()) return 1;
  Result<PsiResult> psi = IntersectTokens(*tokens_a, *tokens_b);
  if (!psi.ok()) return 1;
  Result<Relation> aligned_b = ecommerce.AlignedFeatures(psi->rows_b);
  if (!aligned_b.ok()) return 1;

  ExperimentConfig config;
  config.rounds = 300;
  config.threads = 0;  // use all cores
  ExperimentEngine engine(*aligned_b, *shared);
  Result<std::vector<MethodResult>> monte_carlo = engine.RunAll(
      {GenerationMethod::kRandom, GenerationMethod::kFd}, config);
  if (!monte_carlo.ok()) {
    std::fprintf(stderr, "experiment failed: %s\n",
                 monte_carlo.status().ToString().c_str());
    return 1;
  }
  TablePrinter rounds_table(
      "Monte-Carlo attack on B's slice (300 rounds, full disclosure)");
  rounds_table.SetHeader(
      {"Method", "Attribute", "Mean matches", "Stddev", "Mean MSE"});
  for (const MethodResult& method : *monte_carlo) {
    for (const MethodAttributeResult& a : method.attributes) {
      if (!a.covered) continue;
      rounds_table.AddRow(
          {GenerationMethodToString(method.method), a.name,
           FormatDouble(a.mean_matches, 2),
           FormatDouble(a.stddev_matches, 2),
           a.mean_mse.has_value() ? FormatDouble(*a.mean_mse, 1) : "-"});
    }
  }
  rounds_table.Print();

  std::printf(
      "\nTakeaway: domains enable reconstruction; FDs/RFDs on top do not\n"
      "increase it — so share names and dependencies, withhold domains\n"
      "when possible (paper Section VI).\n");
  return 0;
}
