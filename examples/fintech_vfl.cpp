// The paper's Figure 1 scenario end to end: a bank and an e-commerce
// company run vertical federated learning on a shared customer
// population — PSI alignment, metadata exchange, joint training — and we
// measure what the metadata alone lets the bank reconstruct.
//
// The second half generalizes to an N-party federation: bank + telco +
// insurer, with a colluding bank+telco pair and a defended insurer edge,
// swept over candidate policies into a utility-vs-leakage Pareto table.
#include <cstdio>

#include "common/string_util.h"
#include "common/table_printer.h"
#include "data/datasets/fintech.h"
#include "privacy/experiment.h"
#include "vfl/psi.h"
#include "vfl/scenario.h"
#include "vfl/topology.h"

using namespace metaleak;  // Example code; library code never does this.

int main() {
  // Two parties observe overlapping customers, disjoint features.
  datasets::FintechOptions data_options;
  data_options.population = 800;
  datasets::FintechScenario data = datasets::Fintech(data_options);
  Party bank("bank", data.bank, "customer_id");
  Party ecommerce("ecommerce", data.ecommerce, "customer_id");

  std::printf("Party A (bank):       %zu customers x %zu attributes\n",
              bank.data().num_rows(), bank.data().num_columns());
  std::printf("Party B (e-commerce): %zu customers x %zu attributes\n\n",
              ecommerce.data().num_rows(), ecommerce.data().num_columns());

  // What does party B actually put on the wire at full disclosure?
  Result<MetadataPackage> shared =
      ecommerce.ShareMetadata(DisclosureLevel::kWithRfds);
  if (!shared.ok()) {
    std::fprintf(stderr, "metadata exchange failed: %s\n",
                 shared.status().ToString().c_str());
    return 1;
  }
  std::printf("== Metadata party B sends to party A ==\n%s\n",
              shared->Serialize().c_str());

  // Full pipeline: PSI -> exchange -> train -> attack.
  ScenarioOptions options;
  options.train.epochs = 250;
  Result<ScenarioOutcome> outcome = RunScenario(bank, ecommerce, options);
  if (!outcome.ok()) {
    std::fprintf(stderr, "scenario failed: %s\n",
                 outcome.status().ToString().c_str());
    return 1;
  }

  std::printf("== Pipeline results ==\n");
  std::printf("PSI aligned %zu customers without exchanging raw ids.\n",
              outcome->intersection_size);
  std::printf("Bank-only accuracy: %s; joint VFL accuracy: %s.\n\n",
              FormatDouble(outcome->party_a_only_accuracy, 4).c_str(),
              FormatDouble(outcome->joint_accuracy, 4).c_str());

  TablePrinter table("Bank's reconstruction of B's slice, per disclosure");
  table.SetHeader({"Level", "Attribute", "Match rate", "MSE"});
  for (const AttackResult& level : outcome->leakage_by_level) {
    if (!level.reconstructed) {
      table.AddRow({DisclosureLevelToString(level.level),
                    "(not reconstructable)", "-", "-"});
      continue;
    }
    for (const AttributeLeakage& a : level.leakage.attributes) {
      table.AddRow({DisclosureLevelToString(level.level), a.name,
                    FormatDouble(a.match_rate, 4),
                    a.mse.has_value() ? FormatDouble(*a.mse, 1) : "-"});
    }
  }
  table.Print();

  // The single-shot sweep above is one generation draw per level. The
  // bank's real attack averages over many rounds: align B's features
  // once, hand relation + metadata to the streaming ExperimentEngine
  // (rounds run on the encoded code path, per-round stats folded into
  // Welford accumulators — no per-round Relation), and read the
  // per-attribute means.
  Result<std::vector<PsiToken>> tokens_a = bank.PsiTokens(/*salt=*/11);
  Result<std::vector<PsiToken>> tokens_b = ecommerce.PsiTokens(11);
  if (!tokens_a.ok() || !tokens_b.ok()) return 1;
  Result<PsiResult> psi = IntersectTokens(*tokens_a, *tokens_b);
  if (!psi.ok()) return 1;
  Result<Relation> aligned_b = ecommerce.AlignedFeatures(psi->rows_b);
  if (!aligned_b.ok()) return 1;

  ExperimentConfig config;
  config.rounds = 300;
  config.threads = 0;  // use all cores
  ExperimentEngine engine(*aligned_b, *shared);
  Result<std::vector<MethodResult>> monte_carlo = engine.RunAll(
      {GenerationMethod::kRandom, GenerationMethod::kFd}, config);
  if (!monte_carlo.ok()) {
    std::fprintf(stderr, "experiment failed: %s\n",
                 monte_carlo.status().ToString().c_str());
    return 1;
  }
  TablePrinter rounds_table(
      "Monte-Carlo attack on B's slice (300 rounds, full disclosure)");
  rounds_table.SetHeader(
      {"Method", "Attribute", "Mean matches", "Stddev", "Mean MSE"});
  for (const MethodResult& method : *monte_carlo) {
    for (const MethodAttributeResult& a : method.attributes) {
      if (!a.covered) continue;
      rounds_table.AddRow(
          {GenerationMethodToString(method.method), a.name,
           FormatDouble(a.mean_matches, 2),
           FormatDouble(a.stddev_matches, 2),
           a.mean_mse.has_value() ? FormatDouble(*a.mean_mse, 1) : "-"});
    }
  }
  rounds_table.Print();

  std::printf(
      "\nTakeaway: domains enable reconstruction; FDs/RFDs on top do not\n"
      "increase it — so share names and dependencies, withhold domains\n"
      "when possible (paper Section VI).\n\n");

  // === N-party federation: bank + telco + insurer =======================
  //
  // The bank holds the label. Telco discloses to the bank at full level;
  // the insurer defends its edge with domain generalization. Bank and
  // telco collude: they pool the packages the insurer sent them.
  datasets::FintechFederationOptions fed_options;
  fed_options.population = 800;
  datasets::FintechFederationScenario fed =
      datasets::FintechFederation(fed_options);

  FederationTopology topo;
  size_t bank_idx = topo.AddParty(Party("bank", fed.bank, "customer_id"));
  size_t telco_idx = topo.AddParty(Party("telco", fed.telco, "customer_id"));
  size_t insurer_idx =
      topo.AddParty(Party("insurer", fed.insurer, "customer_id"));

  MetadataPolicy defended = MetadataPolicy::AtLevel(
      DisclosureLevel::kNamesAndDomains, "generalized");
  defended.transforms = {MetadataTransform::GeneralizeDomains(
      /*widen_fraction=*/1.0, /*pad_values=*/16, /*quantize_buckets=*/6)};

  if (!topo.AddEdge(telco_idx, bank_idx, MetadataPolicy::FullDisclosure())
           .ok() ||
      !topo.AddEdge(insurer_idx, bank_idx, defended).ok() ||
      !topo.AddEdge(insurer_idx, telco_idx, defended).ok()) {
    std::fprintf(stderr, "topology construction failed\n");
    return 1;
  }

  TopologyOptions topo_options;
  topo_options.label_party = bank_idx;
  topo_options.train.epochs = 120;
  topo_options.attack_rounds = 50;

  Result<TopologyAlignment> alignment = topo.Align(topo_options);
  if (!alignment.ok()) {
    std::fprintf(stderr, "alignment failed: %s\n",
                 alignment.status().ToString().c_str());
    return 1;
  }
  std::printf("== 3-party federation (bank + telco + insurer) ==\n");
  std::printf("PSI aligned %zu customers across all three parties.\n",
              alignment->intersection_size());

  // The colluding pair merges both defended packages it received from the
  // insurer and attacks the insurer's slice.
  CoalitionSpec coalition;
  coalition.attackers = {bank_idx, telco_idx};
  Result<CoalitionOutcome> attack =
      topo.EvaluateCoalition(*alignment, coalition, topo_options);
  if (!attack.ok()) {
    std::fprintf(stderr, "coalition failed: %s\n",
                 attack.status().ToString().c_str());
    return 1;
  }
  std::printf("bank+telco coalition vs insurer (defended edges): ");
  if (attack->monte_carlo.has_value()) {
    std::printf("match rate %s over %zu rounds\n\n",
                FormatDouble(attack->monte_carlo->overall_match_rate, 4)
                    .c_str(),
                attack->monte_carlo->rounds);
  } else {
    std::printf("reconstructed=%s\n\n",
                attack->reconstructed ? "yes" : "no");
  }

  // Sweep candidate policies for the insurer's edges: how much utility
  // does each defense cost, and how much leakage does it remove?
  std::vector<MetadataPolicy> policies;
  policies.push_back(MetadataPolicy::FullDisclosure());
  policies.push_back(MetadataPolicy::AtLevel(
      DisclosureLevel::kNamesAndDomains, "domains-only"));
  policies.push_back(defended);
  policies.push_back(
      MetadataPolicy::AtLevel(DisclosureLevel::kNames, "names-only"));

  Result<std::vector<ParetoPoint>> pareto =
      SweepPolicyPareto(topo, topo_options, coalition, policies);
  if (!pareto.ok()) {
    std::fprintf(stderr, "pareto sweep failed: %s\n",
                 pareto.status().ToString().c_str());
    return 1;
  }
  TablePrinter pareto_table(
      "Insurer's policy trade-off vs the bank+telco coalition");
  pareto_table.SetHeader(
      {"Policy", "Joint accuracy", "Leakage rate", "Frontier"});
  for (const ParetoPoint& p : *pareto) {
    pareto_table.AddRow({p.policy_name, FormatDouble(p.joint_accuracy, 4),
                         p.reconstructed ? FormatDouble(p.leakage_rate, 4)
                                         : "0 (no recon)",
                         p.on_frontier ? "*" : ""});
  }
  pareto_table.Print();
  std::printf(
      "\nTakeaway: defenses trace a frontier — domain generalization cuts\n"
      "coalition leakage at a small accuracy cost; names-only removes the\n"
      "leakage entirely but forfeits the insurer's training signal.\n");
  return 0;
}
