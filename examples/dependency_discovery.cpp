// dependency_discovery: a tour of the profiling substrate.
//
// Shows TANE on the echocardiogram replica level by level, the stripped
// partitions it works on, g3 errors for approximate dependencies, and
// the pairwise discovery of order / numerical / differential
// dependencies — the metadata the privacy analysis is about.
#include <cstdio>

#include "common/string_util.h"
#include "common/table_printer.h"
#include "data/datasets/echocardiogram.h"
#include "discovery/rfd_discovery.h"
#include "discovery/tane.h"
#include "discovery/validators.h"
#include "metadata/dependency_set.h"
#include "partition/pli_cache.h"

using namespace metaleak;  // Example code; library code never does this.

int main() {
  Relation relation = datasets::Echocardiogram();
  std::printf("Dataset: echocardiogram replica, %zu rows x %zu attrs\n\n",
              relation.num_rows(), relation.num_columns());

  // 1) The representation: stripped partitions.
  std::printf("== Stripped partitions (TANE's PLIs) ==\n");
  PliCache cache(&relation);
  for (size_t c = 0; c < relation.num_columns(); ++c) {
    const PositionListIndex* pli = cache.Get(AttributeSet::Single(c));
    std::printf(
        "  %-24s %3zu classes, %3zu stripped clusters, %3zu rows in "
        "clusters\n",
        relation.schema().attribute(c).name.c_str(), pli->num_classes(),
        pli->num_clusters(), pli->num_stripped_rows());
  }

  // 2) TANE at increasing LHS sizes.
  std::printf("\n== TANE: minimal FDs by LHS size ==\n");
  for (size_t max_lhs : {1u, 2u, 3u}) {
    TaneOptions options;
    options.max_lhs_size = max_lhs;
    options.include_constant_columns = false;
    Result<TaneResult> result = DiscoverFds(relation, options);
    if (!result.ok()) return 1;
    std::printf("  max |LHS| = %zu: %zu minimal FDs (%zu lattice nodes)\n",
                max_lhs, result->dependencies.size(),
                result->stats.nodes_visited);
  }
  TaneOptions options;
  options.max_lhs_size = 1;
  options.include_constant_columns = false;
  Result<TaneResult> fds = DiscoverFds(relation, options);
  if (!fds.ok()) return 1;
  std::printf("\n  Single-attribute FDs:\n");
  for (const Dependency& d : fds->dependencies) {
    std::printf("    %s\n", d.ToString(relation.schema()).c_str());
  }

  // 3) Approximate FDs: near-dependencies with small g3 error.
  std::printf("\n== Approximate FDs (g3 <= 0.10) ==\n");
  TaneOptions afd_options;
  afd_options.max_lhs_size = 1;
  afd_options.max_g3_error = 0.10;
  afd_options.include_constant_columns = false;
  Result<TaneResult> afds = DiscoverFds(relation, afd_options);
  if (!afds.ok()) return 1;
  for (const Dependency& d : afds->dependencies) {
    if (d.kind == DependencyKind::kApproximateFunctional) {
      std::printf("    %s\n", d.ToString(relation.schema()).c_str());
    }
  }

  // 4) The relaxed classes, all running on the shared lattice kernel.
  std::printf("\n== Order dependencies ==\n");
  LatticeSearchStats od_stats;
  Result<DependencySet> ods = DiscoverOds(relation, {}, &od_stats);
  if (!ods.ok()) return 1;
  for (const Dependency& d : *ods) {
    std::printf("    %s\n", d.ToString(relation.schema()).c_str());
  }

  std::printf("\n== Ordered functional dependencies ==\n");
  LatticeSearchStats ofd_stats;
  Result<DependencySet> ofds = DiscoverOfds(relation, {}, &ofd_stats);
  if (!ofds.ok()) return 1;
  for (const Dependency& d : *ofds) {
    std::printf("    %s\n", d.ToString(relation.schema()).c_str());
  }

  std::printf("\n== Numerical dependencies ==\n");
  LatticeSearchStats nd_stats;
  Result<DependencySet> nds = DiscoverNds(relation, {}, &nd_stats);
  if (!nds.ok()) return 1;
  for (const Dependency& d : *nds) {
    std::printf("    %s\n", d.ToString(relation.schema()).c_str());
  }

  std::printf("\n== Differential dependencies (eps = 5%% of range) ==\n");
  LatticeSearchStats dd_stats;
  Result<DependencySet> dds = DiscoverDds(relation, {}, &dd_stats);
  if (!dds.ok()) return 1;
  for (const Dependency& d : *dds) {
    std::printf("    %s\n", d.ToString(relation.schema()).c_str());
  }

  // 5) Multi-attribute LHS search: the same kernel, max_lhs raised.
  std::printf("\n== Multi-attribute ODs (max |LHS| = 2) ==\n");
  OdDiscoveryOptions wide_od;
  wide_od.max_lhs = 2;
  Result<DependencySet> wide_ods = DiscoverOds(relation, wide_od);
  if (!wide_ods.ok()) return 1;
  size_t wide_count = 0;
  for (const Dependency& d : *wide_ods) {
    if (d.lhs.size() > 1) {
      std::printf("    %s\n", d.ToString(relation.schema()).c_str());
      ++wide_count;
    }
  }
  std::printf("    (%zu beyond the single-attribute ODs)\n", wide_count);

  // 6) The kernel's per-class search statistics.
  std::printf("\n== Lattice-search statistics ==\n");
  TablePrinter stats_table;
  stats_table.SetHeader({"Search", "Nodes", "Pruned", "Validations",
                         "PLI hit rate"});
  auto add_stats = [&](const char* name, const LatticeSearchStats& s) {
    stats_table.AddRow({name, std::to_string(s.nodes_visited),
                        std::to_string(s.candidates_pruned),
                        std::to_string(s.validator_invocations),
                        FormatDouble(s.PliCacheHitRate(), 3)});
  };
  add_stats("FD (|LHS|<=1)", fds->stats);
  add_stats("AFD", afds->stats);
  add_stats("OD", od_stats);
  add_stats("OFD", ofd_stats);
  add_stats("ND", nd_stats);
  add_stats("DD", dd_stats);
  std::printf("%s", stats_table.ToString().c_str());

  std::printf(
      "\nEach of these is exactly the metadata whose privacy cost the\n"
      "paper analyzes; see the bench/ binaries for the leakage tables.\n");
  return 0;
}
