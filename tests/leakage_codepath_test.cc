// Golden-parity suite for the dictionary-encoded attack pipeline.
//
// The experiment runner executes every Monte-Carlo round either on the
// boxed-Value reference path or on the dense code path (generation into
// an EncodedBatch arena, leakage over translated codes). Both are
// claimed bit-identical: same per-round seeds, same match counts, same
// MSEs, same Welford aggregates, at any thread count. This suite pins
// that claim on the employee and echocardiogram datasets and a planted
// synthetic relation — including the CFD repair pass and disclosed
// value distributions — and exercises the satellite APIs (ForAttribute
// index lookups, recorded round seeds + ReplayRound, synthetic-NULL
// non-match semantics). Runs under TSan in CI alongside
// csr_agreement_test: any divergence means the refactor changed
// observable results, not just performance.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/math_util.h"
#include "data/datasets/echocardiogram.h"
#include "data/datasets/employee.h"
#include "data/datasets/synthetic.h"
#include "data/relation.h"
#include "discovery/discovery_engine.h"
#include "generation/generation_engine.h"
#include "privacy/experiment.h"
#include "privacy/leakage.h"

namespace metaleak {
namespace {

const std::vector<GenerationMethod> kAllMethods = {
    GenerationMethod::kRandom, GenerationMethod::kFd,
    GenerationMethod::kAfd,    GenerationMethod::kNd,
    GenerationMethod::kOd,     GenerationMethod::kDd,
    GenerationMethod::kOfd,    GenerationMethod::kCfd,
};

// Asserts two experiment sweeps are bit-identical: EXPECT_EQ on doubles
// is exact equality, which is the contract (not EXPECT_DOUBLE_EQ's ULP
// tolerance).
void ExpectBitIdentical(const std::vector<MethodResult>& a,
                        const std::vector<MethodResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t m = 0; m < a.size(); ++m) {
    SCOPED_TRACE(GenerationMethodToString(a[m].method));
    EXPECT_EQ(a[m].method, b[m].method);
    EXPECT_EQ(a[m].round_seeds, b[m].round_seeds);
    ASSERT_EQ(a[m].attributes.size(), b[m].attributes.size());
    for (size_t c = 0; c < a[m].attributes.size(); ++c) {
      const MethodAttributeResult& x = a[m].attributes[c];
      const MethodAttributeResult& y = b[m].attributes[c];
      SCOPED_TRACE(x.name);
      EXPECT_EQ(x.name, y.name);
      EXPECT_EQ(x.covered, y.covered);
      EXPECT_EQ(x.mean_matches, y.mean_matches);
      EXPECT_EQ(x.stddev_matches, y.stddev_matches);
      ASSERT_EQ(x.mean_mse.has_value(), y.mean_mse.has_value());
      if (x.mean_mse.has_value()) EXPECT_EQ(*x.mean_mse, *y.mean_mse);
    }
  }
}

// Runs the full method sweep on both paths at 1 and 8 threads and
// asserts all four sweeps agree bit-for-bit. Also asserts the code path
// is actually live for the package (otherwise the parity is vacuous:
// both sweeps would run the reference path).
void CheckGoldenParity(const Relation& relation,
                       const MetadataPackage& metadata, size_t rounds) {
  auto ctx = GenerationContext::Build(metadata);
  ASSERT_TRUE(ctx.ok()) << ctx.status().ToString();
  ASSERT_TRUE(ctx->encodable()) << ctx->fallback_reason();

  ExperimentConfig config;
  config.rounds = rounds;
  std::vector<std::vector<MethodResult>> sweeps;
  for (bool value_path : {false, true}) {
    for (size_t threads : {1u, 8u}) {
      config.use_value_path = value_path;
      config.threads = threads;
      auto result = RunExperiment(relation, metadata, kAllMethods, config);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      sweeps.push_back(std::move(*result));
    }
  }
  for (size_t i = 1; i < sweeps.size(); ++i) {
    SCOPED_TRACE(i);
    ExpectBitIdentical(sweeps[0], sweeps[i]);
  }
}

TEST(LeakageCodepathTest, GoldenParityEmployee) {
  Relation employee = datasets::Employee();
  DiscoveryOptions options;
  options.discover_cfds = true;  // exercise the encoded CFD repair pass
  auto report = ProfileRelation(employee, options);
  ASSERT_TRUE(report.ok());
  CheckGoldenParity(employee, report->metadata, 24);
}

TEST(LeakageCodepathTest, GoldenParityEchocardiogram) {
  Relation echo = datasets::Echocardiogram();
  auto report = ProfileRelation(echo);
  ASSERT_TRUE(report.ok());
  CheckGoldenParity(echo, report->metadata, 16);
}

TEST(LeakageCodepathTest, GoldenParityPlantedSynthetic) {
  datasets::SyntheticConfig config;
  config.num_rows = 400;
  config.seed = 7;
  config.attributes = {
      {.name = "a",
       .kind = datasets::SyntheticAttribute::Kind::kCategoricalBase,
       .domain_size = 16},
      {.name = "b",
       .kind = datasets::SyntheticAttribute::Kind::kContinuousBase,
       .lo = 0.0,
       .hi = 1000.0},
      {.name = "c",
       .kind = datasets::SyntheticAttribute::Kind::kDerivedMonotone,
       .source = 1},
      {.name = "d",
       .kind = datasets::SyntheticAttribute::Kind::kDerivedBoundedFanout,
       .domain_size = 24,
       .source = 0,
       .fanout = 3},
      {.name = "e",
       .kind = datasets::SyntheticAttribute::Kind::kDerivedApproximate,
       .domain_size = 12,
       .source = 0,
       .violation_rate = 0.1},
  };
  auto relation = datasets::Synthetic(config);
  ASSERT_TRUE(relation.ok());
  DiscoveryOptions options;
  options.discover_afds = true;
  options.discover_cfds = true;
  // Disclosed distributions exercise the code-mapped samplers.
  options.profile_distributions = true;
  auto report = ProfileRelation(*relation, options);
  ASSERT_TRUE(report.ok());
  CheckGoldenParity(*relation, report->metadata, 12);
}

// --- Synthetic-NULL non-match semantics --------------------------------------

TEST(LeakageCodepathTest, SyntheticNullNeverMatches) {
  Schema schema({{"x", DataType::kString, SemanticType::kCategorical}});
  // Real column: a, NULL, b, a.
  auto real = Relation::Make(
      schema, {{Value::Str("a"), Value::Null(), Value::Str("b"),
                Value::Str("a")}});
  ASSERT_TRUE(real.ok());
  // Synthetic column: a, NULL, NULL, NULL — one true match; the NULL
  // guesses (rows 1-3) must not count, even against a real NULL.
  auto syn = Relation::Make(
      schema,
      {{Value::Str("a"), Value::Null(), Value::Null(), Value::Null()}});
  ASSERT_TRUE(syn.ok());
  auto matches = CountCategoricalMatches(*real, *syn, 0);
  ASSERT_TRUE(matches.ok());
  EXPECT_EQ(*matches, 1u);
}

TEST(LeakageCodepathTest, CodePathAgreesOnRealNulls) {
  // A relation with NULL holes: the encoded translation maps NULL to the
  // no-match sentinel, so both paths must report identical counts and
  // rows_compared excludes the NULLs.
  Schema schema({{"cat", DataType::kString, SemanticType::kCategorical},
                 {"num", DataType::kDouble, SemanticType::kContinuous}});
  auto real = Relation::Make(
      schema, {{Value::Str("a"), Value::Null(), Value::Str("b"),
                Value::Str("c"), Value::Null()},
               {Value::Real(1.0), Value::Real(2.0), Value::Null(),
                Value::Real(4.0), Value::Real(5.0)}});
  ASSERT_TRUE(real.ok());
  auto report = ProfileRelation(*real);
  ASSERT_TRUE(report.ok());

  ExperimentConfig config;
  config.rounds = 32;
  auto code = RunMethod(*real, report->metadata, GenerationMethod::kRandom,
                        config);
  config.use_value_path = true;
  auto value = RunMethod(*real, report->metadata, GenerationMethod::kRandom,
                         config);
  ASSERT_TRUE(code.ok() && value.ok());
  ASSERT_FALSE(code->round_seeds.empty());
  const uint64_t first_round_seed = code->round_seeds[0];
  std::vector<MethodResult> code_sweep, value_sweep;
  code_sweep.push_back(std::move(*code));
  value_sweep.push_back(std::move(*value));
  ExpectBitIdentical(code_sweep, value_sweep);

  // rows_compared (via a single replayed round) skips the real NULLs.
  ExperimentConfig replay_config;
  auto round = ExperimentEngine(*real, report->metadata)
                   .ReplayRound(GenerationMethod::kRandom,
                                first_round_seed, replay_config);
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(round->attributes[0].rows_compared, 3u);
  EXPECT_EQ(round->attributes[1].rows_compared, 4u);
}

// --- ForAttribute index lookups ----------------------------------------------

TEST(LeakageCodepathTest, ReportForAttributeUsesIndex) {
  LeakageReport report;
  for (size_t c = 0; c < 4; ++c) {
    AttributeLeakage a;
    a.attribute = c;
    a.matches = 10 + c;
    report.attributes.push_back(a);
  }
  auto hit = report.ForAttribute(2);
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(hit->matches, 12u);
  EXPECT_FALSE(report.ForAttribute(4).ok());

  // Hand-assembled (non-index-aligned) reports still resolve by scan.
  LeakageReport shuffled;
  AttributeLeakage only;
  only.attribute = 7;
  only.matches = 99;
  shuffled.attributes.push_back(only);
  auto scanned = shuffled.ForAttribute(7);
  ASSERT_TRUE(scanned.ok());
  EXPECT_EQ(scanned->matches, 99u);
}

TEST(LeakageCodepathTest, MethodResultForAttributeUsesIndex) {
  MethodResult result;
  for (size_t c = 0; c < 3; ++c) {
    MethodAttributeResult a;
    a.attribute = c;
    a.mean_matches = static_cast<double>(c) + 0.5;
    result.attributes.push_back(a);
  }
  auto hit = result.ForAttribute(1);
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(hit->mean_matches, 1.5);
  EXPECT_FALSE(result.ForAttribute(3).ok());
}

// --- Recorded round seeds + replay -------------------------------------------

TEST(LeakageCodepathTest, ReplayRoundReconstructsRecordedAggregates) {
  Relation employee = datasets::Employee();
  auto report = ProfileRelation(employee);
  ASSERT_TRUE(report.ok());
  ExperimentEngine engine(employee, report->metadata);

  ExperimentConfig config;
  config.rounds = 16;
  auto result = engine.Run(GenerationMethod::kFd, config);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->round_seeds.size(), config.rounds);

  // Replaying every recorded round and folding the per-round numbers
  // through the same Welford accumulator reproduces the recorded
  // aggregates bit-for-bit — so round_seeds[k] really is round k.
  const size_t m = result->attributes.size();
  std::vector<WelfordAccumulator> match_acc(m);
  std::vector<WelfordAccumulator> mse_acc(m);
  for (uint64_t seed : result->round_seeds) {
    auto round = engine.ReplayRound(GenerationMethod::kFd, seed, config);
    ASSERT_TRUE(round.ok());
    ASSERT_EQ(round->attributes.size(), m);
    for (size_t c = 0; c < m; ++c) {
      match_acc[c].Add(static_cast<double>(round->attributes[c].matches));
      if (round->attributes[c].mse.has_value()) {
        mse_acc[c].Add(*round->attributes[c].mse);
      }
    }
  }
  for (size_t c = 0; c < m; ++c) {
    SCOPED_TRACE(result->attributes[c].name);
    EXPECT_EQ(match_acc[c].mean(), result->attributes[c].mean_matches);
    EXPECT_EQ(match_acc[c].stddev(), result->attributes[c].stddev_matches);
    if (result->attributes[c].mean_mse.has_value()) {
      EXPECT_EQ(mse_acc[c].mean(), *result->attributes[c].mean_mse);
    }
  }
}

TEST(LeakageCodepathTest, ReplayRoundPathsAgree) {
  Relation employee = datasets::Employee();
  auto report = ProfileRelation(employee);
  ASSERT_TRUE(report.ok());
  ExperimentEngine engine(employee, report->metadata);

  ExperimentConfig config;
  config.rounds = 4;
  auto result = engine.Run(GenerationMethod::kOd, config);
  ASSERT_TRUE(result.ok());

  ExperimentConfig value_config = config;
  value_config.use_value_path = true;
  for (uint64_t seed : result->round_seeds) {
    auto code = engine.ReplayRound(GenerationMethod::kOd, seed, config);
    auto value =
        engine.ReplayRound(GenerationMethod::kOd, seed, value_config);
    ASSERT_TRUE(code.ok() && value.ok());
    ASSERT_EQ(code->attributes.size(), value->attributes.size());
    for (size_t c = 0; c < code->attributes.size(); ++c) {
      EXPECT_EQ(code->attributes[c].matches, value->attributes[c].matches);
      EXPECT_EQ(code->attributes[c].rows_compared,
                value->attributes[c].rows_compared);
      ASSERT_EQ(code->attributes[c].mse.has_value(),
                value->attributes[c].mse.has_value());
      if (code->attributes[c].mse.has_value()) {
        EXPECT_EQ(*code->attributes[c].mse, *value->attributes[c].mse);
      }
    }
  }
}

}  // namespace
}  // namespace metaleak
