// Tests for src/vfl/topology.h: multi-party PSI, the N-party trainer, the
// federation topology, coalition adversaries and the policy Pareto sweep.
//
// The parity tests here are the contract that lets scenario.cc delegate
// to the topology: a 2-node full-disclosure topology must reproduce the
// pre-refactor two-party pipeline bit-identically.
#include <gtest/gtest.h>

#include <algorithm>

#include "data/datasets/fintech.h"
#include "privacy/coalition.h"
#include "vfl/attack.h"
#include "vfl/logistic_regression.h"
#include "vfl/party.h"
#include "vfl/psi.h"
#include "vfl/scenario.h"
#include "vfl/topology.h"

namespace metaleak {
namespace {

std::vector<Value> Ids(std::initializer_list<int64_t> xs) {
  std::vector<Value> out;
  for (int64_t x : xs) out.push_back(Value::Int(x));
  return out;
}

// Verbatim re-implementation of the pre-refactor RunScenario pipeline on
// the still-public two-party primitives. The golden parity test holds the
// topology-backed RunScenario to byte equality with this.
Result<ScenarioOutcome> ReferenceRunScenario(const Party& party_a,
                                             const Party& party_b,
                                             const ScenarioOptions& options) {
  ScenarioOutcome outcome;
  METALEAK_ASSIGN_OR_RETURN(std::vector<PsiToken> tokens_a,
                            party_a.PsiTokens(options.psi_salt));
  METALEAK_ASSIGN_OR_RETURN(std::vector<PsiToken> tokens_b,
                            party_b.PsiTokens(options.psi_salt));
  METALEAK_ASSIGN_OR_RETURN(PsiResult psi,
                            IntersectTokens(tokens_a, tokens_b));
  outcome.intersection_size = psi.size();
  if (psi.size() == 0) return Status::Invalid("PSI intersection is empty");

  METALEAK_ASSIGN_OR_RETURN(Relation slice_a,
                            party_a.AlignedFeatures(psi.rows_a));
  METALEAK_ASSIGN_OR_RETURN(Relation slice_b,
                            party_b.AlignedFeatures(psi.rows_b));

  METALEAK_ASSIGN_OR_RETURN(
      size_t label_col,
      slice_a.schema().RequireIndex(options.label_attribute));
  std::vector<int> labels;
  for (size_t r = 0; r < slice_a.num_rows(); ++r) {
    const Value& v = slice_a.at(r, label_col);
    labels.push_back(
        !v.is_null() && v.is_numeric() && v.AsNumeric() >= 0.5 ? 1 : 0);
  }
  std::vector<size_t> a_feature_cols;
  for (size_t c = 0; c < slice_a.num_columns(); ++c) {
    if (c != label_col) a_feature_cols.push_back(c);
  }
  Relation features_a = slice_a.Project(a_feature_cols);

  METALEAK_ASSIGN_OR_RETURN(
      VflModel joint, TrainVerticalLogisticRegression(features_a, slice_b,
                                                      labels, options.train));
  METALEAK_ASSIGN_OR_RETURN(outcome.joint_accuracy,
                            Accuracy(joint, features_a, slice_b, labels));

  Schema const_schema(
      {{"__const", DataType::kInt64, SemanticType::kCategorical}});
  std::vector<std::vector<Value>> const_col(1);
  const_col[0].assign(features_a.num_rows(), Value::Int(0));
  METALEAK_ASSIGN_OR_RETURN(
      Relation const_b, Relation::Make(const_schema, std::move(const_col)));
  METALEAK_ASSIGN_OR_RETURN(
      VflModel solo, TrainVerticalLogisticRegression(features_a, const_b,
                                                     labels, options.train));
  METALEAK_ASSIGN_OR_RETURN(outcome.party_a_only_accuracy,
                            Accuracy(solo, features_a, const_b, labels));

  METALEAK_ASSIGN_OR_RETURN(
      MetadataPackage shared_b,
      party_b.ShareMetadata(DisclosureLevel::kWithRfds));
  METALEAK_ASSIGN_OR_RETURN(
      outcome.leakage_by_level,
      SweepDisclosureLevels(shared_b, slice_b, options.attack_seed));
  return outcome;
}

void ExpectReportsBitIdentical(const LeakageReport& a,
                               const LeakageReport& b) {
  ASSERT_EQ(a.attributes.size(), b.attributes.size());
  for (size_t i = 0; i < a.attributes.size(); ++i) {
    const AttributeLeakage& x = a.attributes[i];
    const AttributeLeakage& y = b.attributes[i];
    EXPECT_EQ(x.name, y.name);
    EXPECT_EQ(x.rows_compared, y.rows_compared);
    EXPECT_EQ(x.matches, y.matches);
    EXPECT_EQ(x.match_rate, y.match_rate);  // exact double equality
    EXPECT_EQ(x.mse.has_value(), y.mse.has_value());
    if (x.mse.has_value() && y.mse.has_value()) {
      EXPECT_EQ(*x.mse, *y.mse);
    }
  }
}

// --- Multi-party PSI ----------------------------------------------------------

TEST(MultiPsiTest, ThreePartyIntersection) {
  auto a = DerivePsiTokens(Ids({1, 2, 3, 4, 5}), 42);
  auto b = DerivePsiTokens(Ids({9, 3, 5, 1}), 42);
  auto c = DerivePsiTokens(Ids({5, 1, 7}), 42);
  auto psi = IntersectAllTokens({a, b, c});
  ASSERT_TRUE(psi.ok());
  EXPECT_EQ(psi->num_parties(), 3u);
  ASSERT_EQ(psi->size(), 2u);  // {1, 5}
  std::vector<Value> ids_a = Ids({1, 2, 3, 4, 5});
  std::vector<Value> ids_b = Ids({9, 3, 5, 1});
  std::vector<Value> ids_c = Ids({5, 1, 7});
  for (size_t i = 0; i < psi->size(); ++i) {
    EXPECT_EQ(ids_a[psi->rows[0][i]], ids_b[psi->rows[1][i]]);
    EXPECT_EQ(ids_b[psi->rows[1][i]], ids_c[psi->rows[2][i]]);
  }
}

TEST(MultiPsiTest, TwoPartyMatchesPairwisePsi) {
  auto a = DerivePsiTokens(Ids({4, 8, 15, 16, 23, 42}), 7);
  auto b = DerivePsiTokens(Ids({42, 15, 99, 4}), 7);
  auto multi = IntersectAllTokens({a, b});
  auto pair = IntersectTokens(a, b);
  ASSERT_TRUE(multi.ok() && pair.ok());
  ASSERT_EQ(multi->size(), pair->size());
  EXPECT_EQ(multi->rows[0], pair->rows_a);
  EXPECT_EQ(multi->rows[1], pair->rows_b);
}

TEST(MultiPsiTest, CanonicalOrderAcrossPartyPermutation) {
  auto a = DerivePsiTokens(Ids({3, 1, 2}), 5);
  auto b = DerivePsiTokens(Ids({2, 3, 1}), 5);
  auto c = DerivePsiTokens(Ids({1, 2, 3}), 5);
  auto abc = IntersectAllTokens({a, b, c});
  auto cba = IntersectAllTokens({c, b, a});
  ASSERT_TRUE(abc.ok() && cba.ok());
  ASSERT_EQ(abc->size(), 3u);
  // Same canonical (token-ascending) entity order regardless of which
  // party comes first.
  EXPECT_EQ(abc->rows[0], cba->rows[2]);
  EXPECT_EQ(abc->rows[2], cba->rows[0]);
}

TEST(MultiPsiTest, DuplicatesKeepFirstOccurrence) {
  auto a = DerivePsiTokens(Ids({7, 7, 8}), 42);
  auto b = DerivePsiTokens(Ids({7, 9, 7}), 42);
  auto c = DerivePsiTokens(Ids({6, 7}), 42);
  auto psi = IntersectAllTokens({a, b, c});
  ASSERT_TRUE(psi.ok());
  ASSERT_EQ(psi->size(), 1u);
  EXPECT_EQ(psi->rows[0][0], 0u);
  EXPECT_EQ(psi->rows[1][0], 0u);
  EXPECT_EQ(psi->rows[2][0], 1u);
}

// --- N-party trainer ----------------------------------------------------------

TEST(TopologyTrainerTest, TwoSliceTrainingMatchesTwoPartyTrainer) {
  datasets::FintechScenario s = datasets::Fintech();
  Party bank("bank", s.bank, "customer_id");
  Party ecom("ecom", s.ecommerce, "customer_id");
  auto ta = bank.PsiTokens(1);
  auto tb = ecom.PsiTokens(1);
  ASSERT_TRUE(ta.ok() && tb.ok());
  auto psi = IntersectTokens(*ta, *tb);
  ASSERT_TRUE(psi.ok());
  auto slice_a = bank.AlignedFeatures(psi->rows_a);
  auto slice_b = ecom.AlignedFeatures(psi->rows_b);
  ASSERT_TRUE(slice_a.ok() && slice_b.ok());
  std::vector<int> labels(slice_a->num_rows());
  for (size_t r = 0; r < slice_a->num_rows(); ++r) {
    labels[r] = r % 3 == 0 ? 1 : 0;
  }
  VflTrainOptions train;
  train.epochs = 25;
  auto pair_model =
      TrainVerticalLogisticRegression(*slice_a, *slice_b, labels, train);
  auto n_model = TrainVerticalLogisticRegressionN({&*slice_a, &*slice_b},
                                                  labels, train);
  ASSERT_TRUE(pair_model.ok() && n_model.ok());
  // Bitwise identical weights, bias and loss trajectory.
  EXPECT_EQ(pair_model->weights_a, n_model->weights[0]);
  EXPECT_EQ(pair_model->weights_b, n_model->weights[1]);
  EXPECT_EQ(pair_model->bias, n_model->bias);
  EXPECT_EQ(pair_model->loss_history, n_model->loss_history);
  auto pair_acc = Accuracy(*pair_model, *slice_a, *slice_b, labels);
  auto n_acc = AccuracyN(*n_model, {&*slice_a, &*slice_b}, labels);
  ASSERT_TRUE(pair_acc.ok() && n_acc.ok());
  EXPECT_EQ(*pair_acc, *n_acc);
}

// --- Golden two-party parity --------------------------------------------------

TEST(TopologyParityTest, TwoNodeTopologyReproducesRunScenarioBitwise) {
  datasets::FintechScenario s = datasets::Fintech();
  Party bank("bank", s.bank, "customer_id");
  Party ecom("ecom", s.ecommerce, "customer_id");
  ScenarioOptions options;
  options.train.epochs = 60;

  auto reference = ReferenceRunScenario(bank, ecom, options);
  auto topology = RunScenario(bank, ecom, options);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  ASSERT_TRUE(topology.ok()) << topology.status().ToString();

  EXPECT_EQ(reference->intersection_size, topology->intersection_size);
  EXPECT_EQ(reference->joint_accuracy, topology->joint_accuracy);
  EXPECT_EQ(reference->party_a_only_accuracy,
            topology->party_a_only_accuracy);
  ASSERT_EQ(reference->leakage_by_level.size(),
            topology->leakage_by_level.size());
  for (size_t i = 0; i < reference->leakage_by_level.size(); ++i) {
    const AttackResult& r = reference->leakage_by_level[i];
    const AttackResult& t = topology->leakage_by_level[i];
    EXPECT_EQ(r.level, t.level);
    EXPECT_EQ(r.reconstructed, t.reconstructed);
    ExpectReportsBitIdentical(r.leakage, t.leakage);
  }
}

// --- Topology semantics -------------------------------------------------------

datasets::FintechFederationScenario SmallFederation() {
  datasets::FintechFederationOptions options;
  options.population = 300;
  return datasets::FintechFederation(options);
}

TEST(TopologyTest, EdgeValidation) {
  datasets::FintechFederationScenario s = SmallFederation();
  FederationTopology topo;
  size_t bank = topo.AddParty(Party("bank", s.bank, "customer_id"));
  topo.AddParty(Party("ecom", s.ecommerce, "customer_id"));
  EXPECT_FALSE(topo.AddEdge(bank, bank, MetadataPolicy()).ok());
  EXPECT_FALSE(topo.AddEdge(0, 5, MetadataPolicy()).ok());
  EXPECT_TRUE(topo.AddEdge(1, 0, MetadataPolicy()).ok());
}

TEST(TopologyTest, ParticipationFollowsEdgePolicies) {
  datasets::FintechFederationScenario s = SmallFederation();
  FederationTopology topo;
  size_t bank = topo.AddParty(Party("bank", s.bank, "customer_id"));
  size_t ecom = topo.AddParty(Party("ecom", s.ecommerce, "customer_id"));
  size_t telco = topo.AddParty(Party("telco", s.telco, "customer_id"));
  size_t insurer = topo.AddParty(Party("insurer", s.insurer, "customer_id"));
  ASSERT_TRUE(topo.AddEdge(ecom, bank, MetadataPolicy::FullDisclosure()).ok());
  // Telco discloses names only: out of training.
  ASSERT_TRUE(
      topo.AddEdge(telco, bank,
                   MetadataPolicy::AtLevel(DisclosureLevel::kNames))
          .ok());
  // Insurer has no edge to the label holder at all.
  ASSERT_TRUE(
      topo.AddEdge(insurer, telco, MetadataPolicy::FullDisclosure()).ok());

  TopologyOptions options;
  options.label_party = bank;
  options.train.epochs = 30;
  auto alignment = topo.Align(options);
  ASSERT_TRUE(alignment.ok()) << alignment.status().ToString();
  auto utility = topo.EvaluateUtility(*alignment, options);
  ASSERT_TRUE(utility.ok()) << utility.status().ToString();
  EXPECT_EQ(utility->participants, (std::vector<size_t>{bank, ecom}));
  EXPECT_GT(utility->joint_accuracy, 0.5);
}

TEST(TopologyTest, FourPartyFederationTrainsAndAligns) {
  datasets::FintechFederationScenario s = SmallFederation();
  FederationTopology topo;
  size_t bank = topo.AddParty(Party("bank", s.bank, "customer_id"));
  size_t ecom = topo.AddParty(Party("ecom", s.ecommerce, "customer_id"));
  size_t telco = topo.AddParty(Party("telco", s.telco, "customer_id"));
  size_t insurer = topo.AddParty(Party("insurer", s.insurer, "customer_id"));
  for (size_t p : {ecom, telco, insurer}) {
    ASSERT_TRUE(topo.AddEdge(p, bank, MetadataPolicy::FullDisclosure()).ok());
  }
  TopologyOptions options;
  options.label_party = bank;
  options.train.epochs = 40;
  auto alignment = topo.Align(options);
  ASSERT_TRUE(alignment.ok()) << alignment.status().ToString();
  EXPECT_GT(alignment->intersection_size(), 50u);
  ASSERT_EQ(alignment->aligned.size(), 4u);
  for (const Relation& slice : alignment->aligned) {
    EXPECT_EQ(slice.num_rows(), alignment->intersection_size());
  }
  // Every discloser has a profile; the label holder (no outgoing edge)
  // does not.
  EXPECT_FALSE(alignment->profiles[bank].has_value());
  for (size_t p : {ecom, telco, insurer}) {
    EXPECT_TRUE(alignment->profiles[p].has_value());
  }
  auto utility = topo.EvaluateUtility(*alignment, options);
  ASSERT_TRUE(utility.ok());
  EXPECT_EQ(utility->participants.size(), 4u);
  EXPECT_GT(utility->joint_accuracy, 0.5);
}

// --- Coalition adversaries ----------------------------------------------------

struct CoalitionFixture {
  FederationTopology topo;
  size_t bank = 0, ecom = 0, telco = 0;
  TopologyOptions options;
};

// Bank and telco collude against e-commerce: ecom disclosed along two
// edges (different levels) to the two coalition members.
CoalitionFixture MakeCoalitionFixture() {
  datasets::FintechFederationScenario s = SmallFederation();
  CoalitionFixture f;
  f.bank = f.topo.AddParty(Party("bank", s.bank, "customer_id"));
  f.ecom = f.topo.AddParty(Party("ecom", s.ecommerce, "customer_id"));
  f.telco = f.topo.AddParty(Party("telco", s.telco, "customer_id"));
  EXPECT_TRUE(
      f.topo.AddEdge(f.ecom, f.bank, MetadataPolicy::FullDisclosure()).ok());
  EXPECT_TRUE(
      f.topo
          .AddEdge(f.ecom, f.telco,
                   MetadataPolicy::AtLevel(DisclosureLevel::kNamesAndDomains))
          .ok());
  EXPECT_TRUE(
      f.topo.AddEdge(f.telco, f.bank, MetadataPolicy::FullDisclosure()).ok());
  f.options.label_party = f.bank;
  f.options.train.epochs = 30;
  return f;
}

TEST(CoalitionTest, DefaultVictimsAreDisclosersToMembers) {
  CoalitionFixture f = MakeCoalitionFixture();
  auto alignment = f.topo.Align(f.options);
  ASSERT_TRUE(alignment.ok());
  CoalitionSpec spec;
  spec.attackers = {f.bank, f.telco};
  auto outcome = f.topo.EvaluateCoalition(*alignment, spec, f.options);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->victims, (std::vector<size_t>{f.ecom}));
  EXPECT_TRUE(outcome->reconstructed);
  // The merged view is at least as informative as either edge alone: the
  // full-disclosure edge supplies domains and dependencies.
  EXPECT_TRUE(outcome->joint.HasAllDomains());
  EXPECT_FALSE(outcome->joint.dependencies.empty());
  EXPECT_EQ(outcome->victim_union.num_rows(),
            alignment->intersection_size());
}

TEST(CoalitionTest, SingleVictimMatchesDisclosureSweepBitwise) {
  // A coalition of one attacker with a per-level policy override is
  // exactly the old SweepDisclosureLevels, level by level.
  CoalitionFixture f = MakeCoalitionFixture();
  auto alignment = f.topo.Align(f.options);
  ASSERT_TRUE(alignment.ok());

  auto shared = f.topo.party(f.ecom).ShareMetadata(DisclosureLevel::kWithRfds);
  ASSERT_TRUE(shared.ok());
  auto sweep = SweepDisclosureLevels(*shared, alignment->aligned[f.ecom],
                                     f.options.attack_seed);
  ASSERT_TRUE(sweep.ok());

  const DisclosureLevel levels[] = {
      DisclosureLevel::kNames,
      DisclosureLevel::kNamesAndDomains,
      DisclosureLevel::kWithFds,
      DisclosureLevel::kWithRfds,
  };
  for (size_t i = 0; i < 4; ++i) {
    CoalitionSpec spec;
    spec.attackers = {f.bank};
    spec.victims = {f.ecom};
    spec.policy_override = MetadataPolicy::AtLevel(levels[i]);
    auto outcome = f.topo.EvaluateCoalition(*alignment, spec, f.options);
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    EXPECT_EQ(outcome->reconstructed, (*sweep)[i].reconstructed);
    ExpectReportsBitIdentical(outcome->leakage, (*sweep)[i].leakage);
  }
}

TEST(CoalitionTest, MultiVictimJointViewConcatenatesSlices) {
  CoalitionFixture f = MakeCoalitionFixture();
  // Make ecom AND telco victims of a bank-only coalition.
  auto alignment = f.topo.Align(f.options);
  ASSERT_TRUE(alignment.ok());
  CoalitionSpec spec;
  spec.attackers = {f.bank};
  auto outcome = f.topo.EvaluateCoalition(*alignment, spec, f.options);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->victims, (std::vector<size_t>{f.ecom, f.telco}));
  EXPECT_TRUE(outcome->reconstructed);
  // Joint view spans both slices (ecom 4 features + telco 3).
  EXPECT_EQ(outcome->joint.schema.num_attributes(),
            alignment->aligned[f.ecom].num_columns() +
                alignment->aligned[f.telco].num_columns());
  EXPECT_EQ(outcome->victim_union.num_columns(),
            outcome->joint.schema.num_attributes());
  // Leakage report covers every attribute of the union.
  EXPECT_EQ(outcome->leakage.attributes.size(),
            outcome->joint.schema.num_attributes());
}

TEST(CoalitionTest, MonteCarloIsThreadCountInvariantAndReplays) {
  CoalitionFixture f = MakeCoalitionFixture();
  f.options.attack_rounds = 6;
  auto alignment = f.topo.Align(f.options);
  ASSERT_TRUE(alignment.ok());
  CoalitionSpec spec;
  spec.attackers = {f.bank, f.telco};

  f.options.threads = 1;
  auto serial = f.topo.EvaluateCoalition(*alignment, spec, f.options);
  f.options.threads = 8;
  auto parallel = f.topo.EvaluateCoalition(*alignment, spec, f.options);
  ASSERT_TRUE(serial.ok() && parallel.ok());
  ASSERT_TRUE(serial->monte_carlo.has_value());
  ASSERT_TRUE(parallel->monte_carlo.has_value());

  const CoalitionLeakageSummary& a = *serial->monte_carlo;
  const CoalitionLeakageSummary& b = *parallel->monte_carlo;
  EXPECT_EQ(a.rounds, 6u);
  EXPECT_EQ(a.overall_match_rate, b.overall_match_rate);
  EXPECT_EQ(a.categorical_match_rate, b.categorical_match_rate);
  EXPECT_EQ(a.continuous_match_rate, b.continuous_match_rate);
  EXPECT_EQ(a.result.round_seeds, b.result.round_seeds);
  ASSERT_EQ(a.result.attributes.size(), b.result.attributes.size());
  for (size_t i = 0; i < a.result.attributes.size(); ++i) {
    EXPECT_EQ(a.result.attributes[i].mean_matches,
              b.result.attributes[i].mean_matches);
    EXPECT_EQ(a.result.attributes[i].stddev_matches,
              b.result.attributes[i].stddev_matches);
  }

  // Any recorded round replays in isolation, deterministically.
  ExperimentConfig config;
  config.leakage = f.options.leakage;
  ASSERT_FALSE(a.result.round_seeds.empty());
  uint64_t seed = a.result.round_seeds.front();
  auto replay1 = ReplayCoalitionRound(serial->joint, serial->victim_union,
                                      seed, config);
  auto replay2 = ReplayCoalitionRound(parallel->joint,
                                      parallel->victim_union, seed, config);
  ASSERT_TRUE(replay1.ok() && replay2.ok());
  ExpectReportsBitIdentical(*replay1, *replay2);
}

// --- Pareto sweep -------------------------------------------------------------

TEST(TopologyParetoTest, SweepProducesDistinctTradeoffPoints) {
  CoalitionFixture f = MakeCoalitionFixture();
  f.options.train.epochs = 40;
  CoalitionSpec spec;
  spec.attackers = {f.bank};
  spec.victims = {f.ecom, f.telco};

  std::vector<MetadataPolicy> policies;
  policies.push_back(MetadataPolicy::FullDisclosure());
  policies.push_back(MetadataPolicy::AtLevel(
      DisclosureLevel::kNamesAndDomains, "domains-only"));
  MetadataPolicy defended =
      MetadataPolicy::AtLevel(DisclosureLevel::kNamesAndDomains, "defended");
  defended.transforms = {MetadataTransform::GeneralizeDomains(2.0, 16, 3)};
  policies.push_back(defended);
  policies.push_back(
      MetadataPolicy::AtLevel(DisclosureLevel::kNames, "names-only"));

  auto points = SweepPolicyPareto(f.topo, f.options, spec, policies);
  ASSERT_TRUE(points.ok()) << points.status().ToString();
  ASSERT_EQ(points->size(), policies.size());

  const ParetoPoint& full = (*points)[0];
  const ParetoPoint& defended_pt = (*points)[2];
  const ParetoPoint& names = (*points)[3];

  // Names-only prevents reconstruction entirely and drops the victims out
  // of training: the zero-leakage endpoint.
  EXPECT_FALSE(names.reconstructed);
  EXPECT_EQ(names.leakage_rate, 0.0);
  // Full disclosure leaks the most.
  EXPECT_TRUE(full.reconstructed);
  EXPECT_GT(full.leakage_rate, 0.0);
  EXPECT_GE(full.leakage_rate, defended_pt.leakage_rate);
  // Domain generalization strictly cuts leakage below full disclosure.
  EXPECT_LT(defended_pt.leakage_rate, full.leakage_rate);
  // The frontier is non-empty and marked consistently: no point on it is
  // strictly dominated.
  size_t on_frontier = 0;
  for (const ParetoPoint& p : *points) {
    if (p.on_frontier) ++on_frontier;
    for (const ParetoPoint& q : *points) {
      if (&p == &q || !p.on_frontier) continue;
      const double p_mi = p.mi_leakage_bits.value_or(0.0);
      const double q_mi = q.mi_leakage_bits.value_or(0.0);
      bool dominates = q.joint_accuracy >= p.joint_accuracy &&
                       q.leakage_rate <= p.leakage_rate && q_mi <= p_mi &&
                       (q.joint_accuracy > p.joint_accuracy ||
                        q.leakage_rate < p.leakage_rate || q_mi < p_mi);
      EXPECT_FALSE(dominates);
    }
  }
  EXPECT_GE(on_frontier, 1u);
}

}  // namespace
}  // namespace metaleak
