// Unit tests for src/metadata: Dependency, DependencySet (closure, cover),
// DependencyGraph, MetadataPackage (restriction + serialization).
#include <gtest/gtest.h>

#include "data/datasets/employee.h"
#include "data/domain.h"
#include "metadata/dependency.h"
#include "metadata/dependency_graph.h"
#include "metadata/dependency_set.h"
#include "metadata/metadata_package.h"

namespace metaleak {
namespace {

// --- Dependency -------------------------------------------------------------

TEST(DependencyTest, FactoriesSetKindAndParams) {
  Dependency fd = Dependency::Fd(AttributeSet::Of({0, 1}), 2);
  EXPECT_EQ(fd.kind, DependencyKind::kFunctional);
  EXPECT_EQ(fd.lhs.size(), 2u);
  EXPECT_EQ(fd.rhs, 2u);

  Dependency afd = Dependency::Afd(AttributeSet::Single(0), 1, 0.05);
  EXPECT_DOUBLE_EQ(afd.g3_error, 0.05);

  Dependency nd = Dependency::Nd(0, 1, 4);
  EXPECT_EQ(nd.max_fanout, 4u);

  Dependency dd = Dependency::Dd(0, 1, 0.5, 2.0);
  EXPECT_DOUBLE_EQ(dd.lhs_epsilon, 0.5);
  EXPECT_DOUBLE_EQ(dd.rhs_delta, 2.0);
}

TEST(DependencyTest, ToStringUsesSchemaNames) {
  Relation employee = datasets::Employee();
  Dependency fd = Dependency::Fd(AttributeSet::Single(0), 1);
  EXPECT_EQ(fd.ToString(employee.schema()), "FD {Name} -> Age");
  Dependency nd = Dependency::Nd(2, 3, 2);
  EXPECT_EQ(nd.ToString(employee.schema()),
            "ND {Department} -> Salary (K=2)");
}

TEST(DependencyTest, KindCodesRoundTrip) {
  for (DependencyKind kind :
       {DependencyKind::kFunctional, DependencyKind::kApproximateFunctional,
        DependencyKind::kNumerical, DependencyKind::kOrder,
        DependencyKind::kDifferential, DependencyKind::kOrderedFunctional}) {
    auto parsed = ParseDependencyKind(DependencyKindCode(kind));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(ParseDependencyKind("XYZ").ok());
}

// --- DependencySet -----------------------------------------------------------

TEST(DependencySetTest, AddDeduplicates) {
  DependencySet set;
  set.Add(Dependency::Fd(AttributeSet::Single(0), 1));
  set.Add(Dependency::Fd(AttributeSet::Single(0), 1));
  EXPECT_EQ(set.size(), 1u);
  set.Add(Dependency::Od(0, 1));
  EXPECT_EQ(set.size(), 2u);
}

TEST(DependencySetTest, FiltersByKindAndRhs) {
  DependencySet set;
  set.Add(Dependency::Fd(AttributeSet::Single(0), 1));
  set.Add(Dependency::Od(0, 2));
  set.Add(Dependency::Fd(AttributeSet::Single(2), 1));
  EXPECT_EQ(set.OfKind(DependencyKind::kFunctional).size(), 2u);
  EXPECT_EQ(set.WithRhs(1).size(), 2u);
  EXPECT_EQ(set.WithRhs(5).size(), 0u);
}

TEST(DependencySetTest, FdClosureTransitivity) {
  // A -> B, B -> C  =>  closure({A}) = {A, B, C}.
  DependencySet set;
  set.Add(Dependency::Fd(AttributeSet::Single(0), 1));
  set.Add(Dependency::Fd(AttributeSet::Single(1), 2));
  AttributeSet closure = set.FdClosure(AttributeSet::Single(0));
  EXPECT_EQ(closure, AttributeSet::Of({0, 1, 2}));
  EXPECT_TRUE(set.FdImplies(AttributeSet::Single(0), 2));
  EXPECT_FALSE(set.FdImplies(AttributeSet::Single(2), 0));
}

TEST(DependencySetTest, FdClosureCompositeLhs) {
  // {A,B} -> C only fires when both present.
  DependencySet set;
  set.Add(Dependency::Fd(AttributeSet::Of({0, 1}), 2));
  EXPECT_FALSE(set.FdImplies(AttributeSet::Single(0), 2));
  EXPECT_TRUE(set.FdImplies(AttributeSet::Of({0, 1}), 2));
}

TEST(DependencySetTest, MinimalCoverDropsRedundantFd) {
  // A -> B, B -> C, A -> C: the last is implied by transitivity.
  DependencySet set;
  set.Add(Dependency::Fd(AttributeSet::Single(0), 1));
  set.Add(Dependency::Fd(AttributeSet::Single(1), 2));
  set.Add(Dependency::Fd(AttributeSet::Single(0), 2));
  DependencySet cover = set.FdMinimalCover();
  EXPECT_EQ(cover.size(), 2u);
  EXPECT_TRUE(cover.FdImplies(AttributeSet::Single(0), 2));
}

TEST(DependencySetTest, MinimalCoverLeftReduces) {
  // A -> B plus {A,C} -> B: the latter's C is extraneous.
  DependencySet set;
  set.Add(Dependency::Fd(AttributeSet::Single(0), 1));
  set.Add(Dependency::Fd(AttributeSet::Of({0, 2}), 1));
  DependencySet cover = set.FdMinimalCover();
  EXPECT_EQ(cover.size(), 1u);
  EXPECT_EQ(cover.all()[0].lhs, AttributeSet::Single(0));
}

TEST(DependencySetTest, MinimalCoverIgnoresRfds) {
  DependencySet set;
  set.Add(Dependency::Od(0, 1));
  set.Add(Dependency::Fd(AttributeSet::Single(0), 1));
  DependencySet cover = set.FdMinimalCover();
  EXPECT_EQ(cover.size(), 1u);
  EXPECT_EQ(cover.all()[0].kind, DependencyKind::kFunctional);
}

// --- DependencyGraph ----------------------------------------------------------

TEST(DependencyGraphTest, CoversEveryAttributeOnce) {
  DependencySet deps;
  deps.Add(Dependency::Fd(AttributeSet::Single(0), 1));
  DependencyGraph g = DependencyGraph::Build(3, deps);
  EXPECT_EQ(g.size(), 3u);
  std::vector<bool> seen(3, false);
  for (const GenerationStep& s : g.steps()) {
    EXPECT_FALSE(seen[s.attribute]);
    seen[s.attribute] = true;
  }
}

TEST(DependencyGraphTest, LhsGeneratedBeforeRhs) {
  DependencySet deps;
  deps.Add(Dependency::Fd(AttributeSet::Single(0), 1));
  deps.Add(Dependency::Fd(AttributeSet::Single(1), 2));
  DependencyGraph g = DependencyGraph::Build(3, deps);
  std::vector<size_t> position(3);
  for (size_t i = 0; i < g.steps().size(); ++i) {
    position[g.steps()[i].attribute] = i;
  }
  EXPECT_LT(position[0], position[1]);
  EXPECT_LT(position[1], position[2]);
  EXPECT_EQ(g.num_derived(), 2u);
}

TEST(DependencyGraphTest, BreaksCyclesDeterministically) {
  // 0 -> 1 and 1 -> 0: one must become a root.
  DependencySet deps;
  deps.Add(Dependency::Fd(AttributeSet::Single(0), 1));
  deps.Add(Dependency::Fd(AttributeSet::Single(1), 0));
  DependencyGraph g = DependencyGraph::Build(2, deps);
  EXPECT_EQ(g.num_derived(), 1u);
  // Smallest index becomes the root.
  EXPECT_FALSE(g.StepFor(0).via.has_value());
  EXPECT_TRUE(g.StepFor(1).via.has_value());
}

TEST(DependencyGraphTest, PrefersStrongerKinds) {
  DependencySet deps;
  deps.Add(Dependency::Nd(0, 1, 3));
  deps.Add(Dependency::Fd(AttributeSet::Single(0), 1));
  DependencyGraph g = DependencyGraph::Build(2, deps);
  ASSERT_TRUE(g.StepFor(1).via.has_value());
  EXPECT_EQ(g.StepFor(1).via->kind, DependencyKind::kFunctional);
}

TEST(DependencyGraphTest, AllowedKindsFilter) {
  DependencySet deps;
  deps.Add(Dependency::Fd(AttributeSet::Single(0), 1));
  deps.Add(Dependency::Od(0, 1));
  DependencyGraph g =
      DependencyGraph::Build(2, deps, {DependencyKind::kOrder});
  ASSERT_TRUE(g.StepFor(1).via.has_value());
  EXPECT_EQ(g.StepFor(1).via->kind, DependencyKind::kOrder);

  DependencyGraph none =
      DependencyGraph::Build(2, deps, {DependencyKind::kDifferential});
  EXPECT_EQ(none.num_derived(), 0u);
}

TEST(DependencyGraphTest, IgnoresTrivialSelfDependency) {
  DependencySet deps;
  deps.Add(Dependency::Fd(AttributeSet::Of({0, 1}), 1));
  DependencyGraph g = DependencyGraph::Build(2, deps);
  EXPECT_EQ(g.num_derived(), 0u);
}

// --- MetadataPackage -----------------------------------------------------------

MetadataPackage EmployeeMetadata() {
  Relation employee = datasets::Employee();
  MetadataPackage pkg;
  pkg.schema = employee.schema();
  pkg.num_rows = employee.num_rows();
  auto domains = ExtractDomains(employee);
  for (Domain& d : *domains) pkg.domains.emplace_back(std::move(d));
  pkg.dependencies.Add(Dependency::Fd(AttributeSet::Single(0), 1));
  pkg.dependencies.Add(Dependency::Od(1, 3));
  pkg.dependencies.Add(Dependency::Nd(2, 3, 2));
  pkg.dependencies.Add(Dependency::Afd(AttributeSet::Single(0), 3, 0.02));
  pkg.dependencies.Add(Dependency::Dd(1, 3, 0.4, 2000));
  return pkg;
}

TEST(MetadataPackageTest, RestrictNamesDropsEverything) {
  MetadataPackage restricted =
      EmployeeMetadata().Restrict(DisclosureLevel::kNames);
  EXPECT_EQ(restricted.num_rows, 0u);
  EXPECT_FALSE(restricted.HasAllDomains());
  EXPECT_TRUE(restricted.dependencies.empty());
  EXPECT_EQ(restricted.schema.num_attributes(), 4u);
}

TEST(MetadataPackageTest, RestrictDomainsKeepsDomainsOnly) {
  MetadataPackage restricted =
      EmployeeMetadata().Restrict(DisclosureLevel::kNamesAndDomains);
  EXPECT_TRUE(restricted.HasAllDomains());
  EXPECT_EQ(restricted.num_rows, 4u);
  EXPECT_TRUE(restricted.dependencies.empty());
}

TEST(MetadataPackageTest, RestrictFdsKeepsOnlyFds) {
  MetadataPackage restricted =
      EmployeeMetadata().Restrict(DisclosureLevel::kWithFds);
  EXPECT_EQ(restricted.dependencies.size(), 1u);
  EXPECT_EQ(restricted.dependencies.all()[0].kind,
            DependencyKind::kFunctional);
}

TEST(MetadataPackageTest, RestrictRfdsKeepsAll) {
  MetadataPackage restricted =
      EmployeeMetadata().Restrict(DisclosureLevel::kWithRfds);
  EXPECT_EQ(restricted.dependencies.size(), 5u);
}

TEST(MetadataPackageTest, SerializationRoundTrip) {
  MetadataPackage pkg = EmployeeMetadata();
  std::string text = pkg.Serialize();
  auto parsed = MetadataPackage::Deserialize(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->schema, pkg.schema);
  EXPECT_EQ(parsed->num_rows, pkg.num_rows);
  ASSERT_TRUE(parsed->HasAllDomains());
  for (size_t i = 0; i < pkg.domains.size(); ++i) {
    EXPECT_EQ(*parsed->domains[i], *pkg.domains[i]) << "domain " << i;
  }
  EXPECT_EQ(parsed->dependencies.size(), pkg.dependencies.size());
  for (const Dependency& d : pkg.dependencies) {
    EXPECT_TRUE(parsed->dependencies.Contains(d)) << d.ToString();
  }
}

TEST(MetadataPackageTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(MetadataPackage::Deserialize("not metadata").ok());
  EXPECT_FALSE(MetadataPackage::Deserialize("").ok());
  EXPECT_FALSE(
      MetadataPackage::Deserialize("metaleak-metadata v1\nbogus\trec\n")
          .ok());
  EXPECT_FALSE(MetadataPackage::Deserialize(
                   "metaleak-metadata v1\nrows\tnotanumber\n")
                   .ok());
}

TEST(MetadataPackageTest, RequireDomainsFailsWhenMissing) {
  MetadataPackage pkg = EmployeeMetadata();
  pkg.domains[2] = std::nullopt;
  EXPECT_FALSE(pkg.RequireDomains().ok());
  EXPECT_FALSE(pkg.HasAllDomains());
}

TEST(MetadataPackageTest, ValuesWithSpacesSurviveRoundTrip) {
  // "Customer Service" in the Department domain has a space.
  MetadataPackage pkg = EmployeeMetadata();
  std::string text = pkg.Serialize();
  auto parsed = MetadataPackage::Deserialize(text);
  ASSERT_TRUE(parsed.ok());
  const Domain& dept = *parsed->domains[2];
  EXPECT_TRUE(dept.Contains(Value::Str("Customer Service")));
}

}  // namespace
}  // namespace metaleak
