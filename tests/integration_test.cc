// Integration tests: the full paper pipeline over the echocardiogram
// replica — profile, serialize/exchange, reconstruct, measure — plus the
// directional claims the evaluation section rests on.
#include <gtest/gtest.h>

#include "common/random.h"
#include "data/datasets/echocardiogram.h"
#include "data/domain.h"
#include "discovery/discovery_engine.h"
#include "generation/generation_engine.h"
#include "metadata/metadata_package.h"
#include "privacy/analytical.h"
#include "privacy/experiment.h"
#include "privacy/leakage.h"

namespace metaleak {
namespace {

class EchoPipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    real_ = new Relation(datasets::Echocardiogram());
    DiscoveryOptions options;
    options.discover_afds = true;
    auto report = ProfileRelation(*real_, options);
    ASSERT_TRUE(report.ok());
    metadata_ = new MetadataPackage(std::move(report->metadata));
  }
  static void TearDownTestSuite() {
    delete real_;
    delete metadata_;
    real_ = nullptr;
    metadata_ = nullptr;
  }

  static Relation* real_;
  static MetadataPackage* metadata_;
};

Relation* EchoPipelineTest::real_ = nullptr;
MetadataPackage* EchoPipelineTest::metadata_ = nullptr;

TEST_F(EchoPipelineTest, ProfileFindsEveryClassThePaperUses) {
  const DependencySet& deps = metadata_->dependencies;
  EXPECT_GT(deps.OfKind(DependencyKind::kFunctional).size(), 0u);
  EXPECT_GT(deps.OfKind(DependencyKind::kOrder).size(), 0u);
  EXPECT_GT(deps.OfKind(DependencyKind::kNumerical).size(), 0u);
  EXPECT_GT(deps.OfKind(DependencyKind::kDifferential).size(), 0u);
}

TEST_F(EchoPipelineTest, MetadataSurvivesExchange) {
  // What one party serializes, the other parses — and generation from the
  // parsed package equals generation from the original.
  std::string wire = metadata_->Serialize();
  auto received = MetadataPackage::Deserialize(wire);
  ASSERT_TRUE(received.ok()) << received.status().ToString();

  Rng rng_a(5);
  Rng rng_b(5);
  auto from_original =
      GenerateSynthetic(*metadata_, real_->num_rows(), &rng_a);
  auto from_received =
      GenerateSynthetic(*received, real_->num_rows(), &rng_b);
  ASSERT_TRUE(from_original.ok());
  ASSERT_TRUE(from_received.ok());
  EXPECT_EQ(from_original->relation, from_received->relation);
}

TEST_F(EchoPipelineTest, Table4Shape_FdMatchesRandomOnCategoricals) {
  ExperimentConfig config;
  config.rounds = 400;
  auto results = RunExperiment(
      *real_, *metadata_,
      {GenerationMethod::kRandom, GenerationMethod::kFd}, config);
  ASSERT_TRUE(results.ok());
  const MethodResult& random = (*results)[0];
  const MethodResult& fd = (*results)[1];
  auto domains = metadata_->RequireDomains();
  ASSERT_TRUE(domains.ok());
  for (size_t c : {1u, 3u, 11u, 12u}) {
    auto r = random.ForAttribute(c);
    auto f = fd.ForAttribute(c);
    ASSERT_TRUE(r.ok() && f.ok());
    if (!f->covered) continue;  // the paper's NA cells
    // Tolerance: a few percent of N (132 rows).
    EXPECT_NEAR(f->mean_matches, r->mean_matches, 8.0)
        << "attribute " << c;
  }
}

TEST_F(EchoPipelineTest, Table3Shape_FdMseMatchesRandomOnContinuous) {
  ExperimentConfig config;
  config.rounds = 200;
  auto results = RunExperiment(
      *real_, *metadata_,
      {GenerationMethod::kRandom, GenerationMethod::kFd}, config);
  ASSERT_TRUE(results.ok());
  for (size_t c : {0u, 2u, 5u, 7u}) {
    auto r = (*results)[0].ForAttribute(c);
    auto f = (*results)[1].ForAttribute(c);
    ASSERT_TRUE(r.ok() && f.ok());
    if (!f->covered) continue;
    ASSERT_TRUE(r->mean_mse.has_value() && f->mean_mse.has_value());
    // Same order of magnitude: ratio within [0.5, 2].
    double ratio = *f->mean_mse / *r->mean_mse;
    EXPECT_GT(ratio, 0.5) << "attribute " << c;
    EXPECT_LT(ratio, 2.0) << "attribute " << c;
  }
}

TEST_F(EchoPipelineTest, RandomMatchesBinomialExpectationPerAttribute) {
  ExperimentConfig config;
  config.rounds = 600;
  auto result = RunMethod(*real_, *metadata_, GenerationMethod::kRandom,
                          config);
  ASSERT_TRUE(result.ok());
  auto domains = metadata_->RequireDomains();
  ASSERT_TRUE(domains.ok());
  for (const MethodAttributeResult& a : result->attributes) {
    if (a.semantic != SemanticType::kCategorical) continue;
    // Non-null rows only (Def 2.2 skips undisclosed values).
    size_t compared = 0;
    for (const Value& v : real_->column(a.attribute)) {
      if (!v.is_null()) ++compared;
    }
    double expected = ExpectedRandomCategoricalMatches(
        compared, (*domains)[a.attribute]);
    EXPECT_NEAR(a.mean_matches, expected, expected * 0.15 + 1.0)
        << a.name;
  }
}

TEST_F(EchoPipelineTest, DisclosureLevelsAreMonotoneInInformation) {
  // More disclosure never removes previously disclosed metadata.
  MetadataPackage names = metadata_->Restrict(DisclosureLevel::kNames);
  MetadataPackage domains =
      metadata_->Restrict(DisclosureLevel::kNamesAndDomains);
  MetadataPackage fds = metadata_->Restrict(DisclosureLevel::kWithFds);
  MetadataPackage rfds = metadata_->Restrict(DisclosureLevel::kWithRfds);
  EXPECT_TRUE(names.dependencies.empty());
  EXPECT_TRUE(domains.dependencies.empty());
  EXPECT_TRUE(domains.HasAllDomains());
  EXPECT_GE(rfds.dependencies.size(), fds.dependencies.size());
  for (const Dependency& d : fds.dependencies) {
    EXPECT_EQ(d.kind, DependencyKind::kFunctional);
  }
}

TEST_F(EchoPipelineTest, NaCellsAppearForUncoveredAttributes) {
  // Under the ND-only method most attributes are roots (covered=false) —
  // the paper's Tables III/IV carry NA in exactly those cells.
  ExperimentConfig config;
  config.rounds = 3;
  auto result =
      RunMethod(*real_, *metadata_, GenerationMethod::kNd, config);
  ASSERT_TRUE(result.ok());
  size_t covered = 0;
  for (const MethodAttributeResult& a : result->attributes) {
    covered += a.covered ? 1 : 0;
  }
  EXPECT_GT(covered, 0u);
  EXPECT_LT(covered, real_->num_columns());
}

TEST_F(EchoPipelineTest, LeakageEvaluationIsStableAcrossRuns) {
  ExperimentConfig config;
  config.rounds = 50;
  auto a = RunMethod(*real_, *metadata_, GenerationMethod::kOd, config);
  auto b = RunMethod(*real_, *metadata_, GenerationMethod::kOd, config);
  ASSERT_TRUE(a.ok() && b.ok());
  for (size_t c = 0; c < a->attributes.size(); ++c) {
    EXPECT_DOUBLE_EQ(a->attributes[c].mean_matches,
                     b->attributes[c].mean_matches);
  }
}

}  // namespace
}  // namespace metaleak
