// Tests for the shared parallel runtime (common/parallel.h) and the
// concurrency-safety of PliCache under it.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <vector>

#include "common/parallel.h"
#include "data/relation.h"
#include "partition/pli_cache.h"

namespace metaleak {
namespace {

// Restores the default global thread count when a test tweaks it.
class ThreadCountGuard {
 public:
  ThreadCountGuard() = default;
  ~ThreadCountGuard() { SetGlobalThreadCount(0); }
};

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadCountGuard guard;
  SetGlobalThreadCount(8);
  constexpr size_t kN = 10000;
  std::vector<std::atomic<int>> seen(kN);
  for (auto& s : seen) s.store(0);
  ParallelFor(0, kN, 7, [&](size_t i) { seen[i].fetch_add(1); });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(seen[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, NonZeroBeginCoversExactRange) {
  ThreadCountGuard guard;
  SetGlobalThreadCount(4);
  std::vector<std::atomic<int>> seen(100);
  for (auto& s : seen) s.store(0);
  ParallelFor(37, 91, 5, [&](size_t i) { seen[i].fetch_add(1); });
  for (size_t i = 0; i < 100; ++i) {
    ASSERT_EQ(seen[i].load(), (i >= 37 && i < 91) ? 1 : 0) << i;
  }
}

TEST(ParallelForTest, EmptyRangeNeverInvokes) {
  std::atomic<int> calls{0};
  ParallelFor(5, 5, 1, [&](size_t) { calls.fetch_add(1); });
  ParallelFor(9, 3, 1, [&](size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelForTest, GrainLargerThanRangeRunsInline) {
  std::atomic<int> calls{0};
  ParallelFor(0, 10, 1000, [&](size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 10);
}

TEST(ParallelForTest, ZeroGrainTreatedAsOne) {
  std::atomic<int> calls{0};
  ParallelFor(0, 10, 0, [&](size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 10);
}

TEST(ParallelForTest, NestedCallsCoverAllIndices) {
  ThreadCountGuard guard;
  SetGlobalThreadCount(4);
  constexpr size_t kOuter = 16;
  constexpr size_t kInner = 64;
  std::vector<std::atomic<int>> seen(kOuter * kInner);
  for (auto& s : seen) s.store(0);
  ParallelFor(0, kOuter, 1, [&](size_t o) {
    // Runs inline on the worker — must neither deadlock nor drop work.
    ParallelFor(0, kInner, 8,
                [&](size_t i) { seen[o * kInner + i].fetch_add(1); });
  });
  for (size_t i = 0; i < seen.size(); ++i) {
    ASSERT_EQ(seen[i].load(), 1) << "slot " << i;
  }
}

TEST(ParallelForTest, ChunkVariantPartitionsRange) {
  ThreadCountGuard guard;
  SetGlobalThreadCount(4);
  constexpr size_t kN = 5000;
  std::vector<std::atomic<int>> seen(kN);
  for (auto& s : seen) s.store(0);
  ParallelForChunks(0, kN, 97, [&](size_t lo, size_t hi) {
    ASSERT_LT(lo, hi);
    for (size_t i = lo; i < hi; ++i) seen[i].fetch_add(1);
  });
  for (size_t i = 0; i < kN; ++i) ASSERT_EQ(seen[i].load(), 1);
}

TEST(ParallelForTest, PropagatesException) {
  ThreadCountGuard guard;
  SetGlobalThreadCount(4);
  EXPECT_THROW(ParallelFor(0, 1000, 1,
                           [&](size_t i) {
                             if (i == 537) throw std::runtime_error("boom");
                           }),
               std::runtime_error);
}

TEST(ParallelReduceTest, MatchesSerialFold) {
  ThreadCountGuard guard;
  SetGlobalThreadCount(8);
  constexpr size_t kN = 12345;
  uint64_t serial = 0;
  for (size_t i = 0; i < kN; ++i) serial += i * i;
  uint64_t parallel = ParallelReduce<uint64_t>(
      0, kN, 64, uint64_t{0},
      [](size_t lo, size_t hi) {
        uint64_t s = 0;
        for (size_t i = lo; i < hi; ++i) s += i * i;
        return s;
      },
      [](uint64_t a, uint64_t b) { return a + b; });
  EXPECT_EQ(parallel, serial);
}

TEST(ParallelReduceTest, EmptyRangeYieldsIdentity) {
  double out = ParallelReduce<double>(
      3, 3, 16, 42.5, [](size_t, size_t) { return 0.0; },
      [](double a, double b) { return a + b; });
  EXPECT_EQ(out, 42.5);
}

TEST(ParallelReduceTest, FloatingPointIdenticalAcrossThreadCounts) {
  // Chunking depends only on the grain, so the combine sequence — hence
  // the rounded result — is bit-identical at every thread count.
  constexpr size_t kN = 40000;
  auto run = [] {
    return ParallelReduce<double>(
        0, kN, 512, 0.0,
        [](size_t lo, size_t hi) {
          double s = 0.0;
          for (size_t i = lo; i < hi; ++i) {
            s += std::sin(static_cast<double>(i)) / (i + 1.0);
          }
          return s;
        },
        [](double a, double b) { return a + b; });
  };
  ThreadCountGuard guard;
  SetGlobalThreadCount(1);
  double one = run();
  SetGlobalThreadCount(8);
  double eight = run();
  EXPECT_EQ(one, eight);  // bitwise, not approximate
}

TEST(ThreadPoolTest, ResizeChangesWorkerCount) {
  ThreadCountGuard guard;
  SetGlobalThreadCount(3);
  EXPECT_EQ(GlobalThreadCount(), 3u);
  SetGlobalThreadCount(5);
  EXPECT_EQ(GlobalThreadCount(), 5u);
}

TEST(ThreadPoolTest, StandalonePoolRunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  std::mutex mu;
  std::condition_variable cv;
  for (int i = 0; i < 32; ++i) {
    pool.Submit([&] {
      if (ran.fetch_add(1) + 1 == 32) {
        std::lock_guard<std::mutex> lock(mu);
        cv.notify_all();
      }
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return ran.load() == 32; });
  EXPECT_EQ(ran.load(), 32);
}

// --- PliCache under concurrency ------------------------------------------

Relation TwoColumnRelation(size_t rows) {
  std::vector<Value> a, b;
  a.reserve(rows);
  b.reserve(rows);
  for (size_t r = 0; r < rows; ++r) {
    a.push_back(Value::Int(static_cast<int64_t>(r % 7)));
    b.push_back(Value::Int(static_cast<int64_t>(r % 5)));
  }
  Schema schema({{"a", DataType::kInt64, SemanticType::kCategorical},
                 {"b", DataType::kInt64, SemanticType::kCategorical}});
  return std::move(Relation::Make(schema, {std::move(a), std::move(b)}))
      .ValueOrDie();
}

TEST(PliCacheConcurrencyTest, SingleFlightUnderConcurrentGet) {
  ThreadCountGuard guard;
  SetGlobalThreadCount(8);
  Relation rel = TwoColumnRelation(512);
  PliCache cache(&rel);
  AttributeSet both = AttributeSet::Of({0, 1});

  constexpr size_t kLookups = 64;
  std::vector<const PositionListIndex*> seen(kLookups, nullptr);
  ParallelFor(0, kLookups, 1,
              [&](size_t i) { seen[i] = cache.Get(both); });

  // Every lookup returned the same built-once instance.
  for (size_t i = 1; i < kLookups; ++i) EXPECT_EQ(seen[i], seen[0]);
  // Exactly one miss (the single-flight build); the other lookups were
  // hits, plus two more from the builder resolving the {0} and {1}
  // parents.
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), kLookups - 1 + 2);
  EXPECT_EQ(cache.size(), 4u);  // empty set + 2 singletons + {0,1}
}

TEST(PliCacheConcurrencyTest, ConcurrentDistinctKeysAllBuilt) {
  ThreadCountGuard guard;
  SetGlobalThreadCount(8);
  Relation rel = TwoColumnRelation(256);
  PliCache cache(&rel);
  // Concurrent composite and singleton lookups; singletons were eagerly
  // built, so they count as hits.
  ParallelFor(0, 32, 1, [&](size_t i) {
    if (i % 2 == 0) {
      cache.Get(AttributeSet::Of({0, 1}));
    } else {
      cache.Get(AttributeSet::Single(i % 4 / 2));
    }
  });
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.size(), 4u);
}

}  // namespace
}  // namespace metaleak
