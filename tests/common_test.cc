// Unit tests for src/common: Status/Result, strings, CSV, math, printer.
#include <gtest/gtest.h>

#include <cmath>

#include "common/csv.h"
#include "common/macros.h"
#include "common/math_util.h"
#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/table_printer.h"

namespace metaleak {
namespace {

// --- Status ---------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::Invalid("bad arg");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalid());
  EXPECT_EQ(s.message(), "bad arg");
  EXPECT_EQ(s.ToString(), "Invalid argument: bad arg");
}

TEST(StatusTest, AllFactoriesSetMatchingPredicate) {
  EXPECT_TRUE(Status::KeyError("x").IsKeyError());
  EXPECT_TRUE(Status::TypeError("x").IsTypeError());
  EXPECT_TRUE(Status::IoError("x").IsIoError());
  EXPECT_TRUE(Status::NotImplemented("x").IsNotImplemented());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
}

TEST(StatusTest, CopyPreservesState) {
  Status s = Status::KeyError("missing");
  Status t = s;
  EXPECT_EQ(s, t);
  Status u;
  u = t;
  EXPECT_EQ(u.message(), "missing");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_NE(Status::Invalid("a"), Status::Invalid("b"));
  EXPECT_NE(Status::Invalid("a"), Status::KeyError("a"));
}

// --- Result ----------------------------------------------------------------

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::Invalid("not positive");
  return x;
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = ParsePositive(5);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 5);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = ParsePositive(-1);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalid());
  EXPECT_EQ(r.ValueOr(42), 42);
}

TEST(ResultTest, AssignOrReturnPropagates) {
  auto chain = [](int x) -> Result<int> {
    METALEAK_ASSIGN_OR_RETURN(int v, ParsePositive(x));
    return v * 2;
  };
  EXPECT_EQ(*chain(3), 6);
  EXPECT_FALSE(chain(0).ok());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> p = std::move(r).ValueUnsafe();
  EXPECT_EQ(*p, 7);
}

// --- string_util -----------------------------------------------------------

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(Split("a,,b", ','),
            (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("x", ','), (std::vector<std::string>{"x"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  a b  "), "a b");
  EXPECT_EQ(Trim("\t\nx\r "), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(StringUtilTest, ParseInt64Strict) {
  EXPECT_EQ(ParseInt64("42"), 42);
  EXPECT_EQ(ParseInt64("-7"), -7);
  EXPECT_EQ(ParseInt64(" 13 "), 13);  // trimmed
  EXPECT_FALSE(ParseInt64("12.5").has_value());
  EXPECT_FALSE(ParseInt64("12x").has_value());
  EXPECT_FALSE(ParseInt64("").has_value());
  EXPECT_FALSE(ParseInt64("abc").has_value());
}

TEST(StringUtilTest, ParseDoubleStrict) {
  EXPECT_DOUBLE_EQ(*ParseDouble("3.25"), 3.25);
  EXPECT_DOUBLE_EQ(*ParseDouble("-1e3"), -1000.0);
  EXPECT_DOUBLE_EQ(*ParseDouble("42"), 42.0);
  EXPECT_FALSE(ParseDouble("1.2.3").has_value());
  EXPECT_FALSE(ParseDouble("").has_value());
  EXPECT_FALSE(ParseDouble("x1").has_value());
}

TEST(StringUtilTest, StartsWithAndToLower) {
  EXPECT_TRUE(StartsWith("metaleak", "meta"));
  EXPECT_FALSE(StartsWith("meta", "metaleak"));
  EXPECT_EQ(ToLower("AbC"), "abc");
}

TEST(StringUtilTest, FormatDoubleTrimsZeros) {
  EXPECT_EQ(FormatDouble(12.5, 3), "12.5");
  EXPECT_EQ(FormatDouble(12.0, 3), "12");
  // 0.125 is exactly representable; printf rounds half to even.
  EXPECT_EQ(FormatDouble(0.125, 2), "0.12");
  EXPECT_EQ(FormatDouble(0.126, 2), "0.13");
  EXPECT_EQ(FormatDouble(-3.1400, 4), "-3.14");
}

// --- CSV --------------------------------------------------------------------

TEST(CsvTest, ParsesSimpleRows) {
  auto t = ParseCsv("a,b\n1,2\n3,4\n");
  ASSERT_TRUE(t.ok());
  ASSERT_EQ(t->rows.size(), 3u);
  EXPECT_EQ(t->rows[1], (std::vector<std::string>{"1", "2"}));
}

TEST(CsvTest, HandlesQuotedFields) {
  auto t = ParseCsv("name,dept\n\"Smith, John\",\"Customer \"\"X\"\"\"\n");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->rows[1][0], "Smith, John");
  EXPECT_EQ(t->rows[1][1], "Customer \"X\"");
}

TEST(CsvTest, HandlesNewlineInsideQuotes) {
  auto t = ParseCsv("a\n\"line1\nline2\"\n");
  ASSERT_TRUE(t.ok());
  ASSERT_EQ(t->rows.size(), 2u);
  EXPECT_EQ(t->rows[1][0], "line1\nline2");
}

TEST(CsvTest, HandlesCrLf) {
  auto t = ParseCsv("a,b\r\n1,2\r\n");
  ASSERT_TRUE(t.ok());
  ASSERT_EQ(t->rows.size(), 2u);
  EXPECT_EQ(t->rows[1][1], "2");
}

TEST(CsvTest, RejectsRaggedRowsWhenStrict) {
  auto t = ParseCsv("a,b\n1\n");
  EXPECT_FALSE(t.ok());
  EXPECT_TRUE(t.status().IsIoError());
}

TEST(CsvTest, PadsRaggedRowsWhenLenient) {
  CsvOptions options;
  options.strict_field_count = false;
  auto t = ParseCsv("a,b\n1\n", options);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->rows[1].size(), 2u);
}

TEST(CsvTest, RejectsUnterminatedQuote) {
  EXPECT_FALSE(ParseCsv("\"oops\n").ok());
}

TEST(CsvTest, NoTrailingNewline) {
  auto t = ParseCsv("a,b\n1,2");
  ASSERT_TRUE(t.ok());
  ASSERT_EQ(t->rows.size(), 2u);
}

TEST(CsvTest, WriteRoundTrip) {
  CsvTable table;
  table.rows = {{"h1", "h 2"}, {"va,l", "x\"y"}};
  std::string text = WriteCsv(table);
  auto parsed = ParseCsv(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->rows, table.rows);
}

// --- math_util ---------------------------------------------------------------

TEST(MathUtilTest, LogChooseMatchesSmallCases) {
  EXPECT_NEAR(Choose(5, 2), 10.0, 1e-9);
  EXPECT_NEAR(Choose(10, 0), 1.0, 1e-9);
  EXPECT_NEAR(Choose(10, 10), 1.0, 1e-9);
  EXPECT_EQ(Choose(3, 5), 0.0);
  EXPECT_EQ(Choose(3, -1), 0.0);
}

TEST(MathUtilTest, LogChooseLargeStaysFinite) {
  double lc = LogChoose(100000, 50000);
  EXPECT_TRUE(std::isfinite(lc));
  EXPECT_GT(lc, 0.0);
}

TEST(MathUtilTest, BinomialExpectation) {
  EXPECT_DOUBLE_EQ(BinomialExpectation(100, 0.25), 25.0);
  EXPECT_DOUBLE_EQ(BinomialExpectation(0, 0.5), 0.0);
}

TEST(MathUtilTest, BinomialAtLeastOne) {
  EXPECT_NEAR(BinomialAtLeastOne(1, 0.5), 0.5, 1e-12);
  EXPECT_NEAR(BinomialAtLeastOne(2, 0.5), 0.75, 1e-12);
  EXPECT_DOUBLE_EQ(BinomialAtLeastOne(0, 0.3), 0.0);
  // Tiny p: stable and ~= n*p.
  EXPECT_NEAR(BinomialAtLeastOne(10, 1e-12), 1e-11, 1e-13);
}

TEST(MathUtilTest, HypergeometricExpectation) {
  // 10 draws from 100 with 30 successes: 3 expected.
  EXPECT_DOUBLE_EQ(HypergeometricExpectation(100, 30, 10), 3.0);
  EXPECT_DOUBLE_EQ(HypergeometricExpectation(0, 0, 5), 0.0);
}

TEST(MathUtilTest, HypergeometricAtLeastOne) {
  // Drawing 2 from 4 with 2 successes: P0 = C(2,2)/C(4,2) = 1/6.
  EXPECT_NEAR(HypergeometricAtLeastOne(4, 2, 2), 5.0 / 6.0, 1e-12);
  // Pigeonhole: draws + successes > population forces overlap.
  EXPECT_DOUBLE_EQ(HypergeometricAtLeastOne(4, 3, 2), 1.0);
  EXPECT_DOUBLE_EQ(HypergeometricAtLeastOne(10, 0, 5), 0.0);
}

TEST(MathUtilTest, HypergeometricPmfSumsToOne) {
  double total = 0.0;
  for (int64_t k = 0; k <= 5; ++k) {
    total += HypergeometricPmf(20, 8, 5, k);
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(MathUtilTest, IntervalOverlap) {
  EXPECT_DOUBLE_EQ(IntervalOverlap(0, 2, 1, 3), 1.0);
  EXPECT_DOUBLE_EQ(IntervalOverlap(0, 1, 2, 3), 0.0);
  EXPECT_DOUBLE_EQ(IntervalOverlap(0, 5, 1, 2), 1.0);
  EXPECT_DOUBLE_EQ(IntervalOverlap(3, 1, 0, 5), 0.0);  // inverted
}

TEST(MathUtilTest, DescriptiveStats) {
  std::vector<double> xs = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(Mean(xs), 2.5);
  EXPECT_NEAR(Variance(xs), 5.0 / 3.0, 1e-12);
  EXPECT_NEAR(StdDev(xs), std::sqrt(5.0 / 3.0), 1e-12);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Variance({7.0}), 0.0);
}

TEST(MathUtilTest, MeanSquaredError) {
  EXPECT_DOUBLE_EQ(MeanSquaredError({1, 2}, {3, 2}), 2.0);
  EXPECT_DOUBLE_EQ(MeanSquaredError({}, {}), 0.0);
}

TEST(MathUtilTest, Quantile) {
  std::vector<double> xs = {4, 1, 3, 2};
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.5), 2.5);
}

// --- Rng ---------------------------------------------------------------------

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000), b.UniformInt(0, 1000));
  }
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformDoubleInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.UniformDouble(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
  }
  EXPECT_DOUBLE_EQ(rng.UniformDouble(4.0, 4.0), 4.0);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, SampleWithoutReplacementIsDistinctAndInRange) {
  Rng rng(99);
  for (size_t k : {0u, 1u, 5u, 10u}) {
    std::vector<size_t> s = rng.SampleWithoutReplacement(10, k);
    ASSERT_EQ(s.size(), k);
    std::sort(s.begin(), s.end());
    EXPECT_TRUE(std::adjacent_find(s.begin(), s.end()) == s.end());
    for (size_t v : s) EXPECT_LT(v, 10u);
  }
  // Full draw covers everything.
  std::vector<size_t> all = rng.SampleWithoutReplacement(6, 6);
  std::sort(all.begin(), all.end());
  EXPECT_EQ(all, (std::vector<size_t>{0, 1, 2, 3, 4, 5}));
}

TEST(RngTest, SampleWithoutReplacementIsRoughlyUniform) {
  Rng rng(1234);
  std::vector<int> hits(8, 0);
  const int reps = 8000;
  for (int i = 0; i < reps; ++i) {
    for (size_t v : rng.SampleWithoutReplacement(8, 2)) hits[v]++;
  }
  // Each element appears with probability 1/4 per draw-pair.
  for (int h : hits) {
    EXPECT_NEAR(static_cast<double>(h) / reps, 0.25, 0.03);
  }
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(5);
  std::vector<int> v = {1, 2, 3, 4, 5, 6};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, ForkedStreamsDiffer) {
  Rng parent(42);
  Rng c1 = parent.Fork();
  Rng c2 = parent.Fork();
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) {
    if (c1.UniformInt(0, 1 << 30) != c2.UniformInt(0, 1 << 30)) {
      any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff);
}

// --- TablePrinter -------------------------------------------------------------

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter p("Title");
  p.SetHeader({"a", "long-header"});
  p.AddRow({"wide-cell", "1"});
  std::string out = p.ToString();
  EXPECT_NE(out.find("Title"), std::string::npos);
  EXPECT_NE(out.find("long-header"), std::string::npos);
  EXPECT_NE(out.find("wide-cell"), std::string::npos);
}

TEST(TablePrinterTest, PadsShortRows) {
  TablePrinter p;
  p.SetHeader({"a", "b", "c"});
  p.AddRow({"1"});
  EXPECT_EQ(p.num_rows(), 1u);
  EXPECT_FALSE(p.ToString().empty());
}

TEST(TablePrinterTest, MarkdownHasSeparator) {
  TablePrinter p;
  p.SetHeader({"x", "y"});
  p.AddRow({"1", "2"});
  std::string md = p.ToMarkdown();
  EXPECT_NE(md.find("|---|---|"), std::string::npos);
  EXPECT_NE(md.find("| 1 | 2 |"), std::string::npos);
}

}  // namespace
}  // namespace metaleak
