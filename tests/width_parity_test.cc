// Golden parity across the adaptive-code-width matrix: the same dataset
// run with the code-width floor forced to {natural, u16, u32}, the SIMD
// dispatch forced to {scalar, best}, and {1, 8} worker threads must
// produce identical results at every layer an attacker or auditor can
// observe — encoding fingerprints, width-2 identifiability verdicts,
// discovered metadata, the analytical leakage profile, and a seeded
// Def 2.2/2.3 Monte-Carlo experiment (matches exactly, MSE bitwise).
//
// Width only changes how codes are STORED; the reference cell is the
// natural-width / scalar / single-threaded run and every other cell in
// the cube must reproduce it byte for byte. This is the suite the TSan
// and simd-parity CI jobs run to pin the kernels' value-path parity.
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "common/simd.h"
#include "data/code_column.h"
#include "data/datasets/echocardiogram.h"
#include "data/datasets/employee.h"
#include "data/datasets/synthetic.h"
#include "data/encoded_relation.h"
#include "discovery/discovery_engine.h"
#include "partition/pli_cache.h"
#include "privacy/experiment.h"
#include "privacy/identifiability.h"
#include "privacy/leakage.h"
#include "privacy/leakage_delta.h"

namespace metaleak {
namespace {

// Everything one pipeline run exposes, flattened for exact comparison.
struct PipelineObservation {
  uint64_t fingerprint = 0;
  std::vector<CodeWidth> widths;
  std::vector<bool> identifiable;
  std::string metadata;
  std::vector<double> leakage_numbers;  // compared bitwise below
  std::vector<uint64_t> experiment_bits;
};

::testing::AssertionResult BitwiseEqual(const std::vector<double>& a,
                                        const std::vector<double>& b) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure() << "size " << a.size() << " vs "
                                         << b.size();
  }
  for (size_t i = 0; i < a.size(); ++i) {
    uint64_t ua, ub;
    std::memcpy(&ua, &a[i], sizeof(ua));
    std::memcpy(&ub, &b[i], sizeof(ub));
    if (ua != ub) {
      return ::testing::AssertionFailure()
             << "entry " << i << ": " << a[i] << " vs " << b[i];
    }
  }
  return ::testing::AssertionSuccess();
}

uint64_t DoubleBits(double d) {
  uint64_t u;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

PipelineObservation RunPipeline(const Relation& relation) {
  PipelineObservation out;
  EncodedRelation encoded = EncodedRelation::Encode(relation);
  out.fingerprint = encoded.Fingerprint();
  for (size_t c = 0; c < encoded.num_columns(); ++c) {
    out.widths.push_back(encoded.column_width(c));
  }

  PliCache cache(&encoded);
  Result<std::vector<bool>> ident = IdentifiableRows(cache, 2);
  EXPECT_TRUE(ident.ok());
  if (ident.ok()) out.identifiable = *ident;

  DiscoveryOptions discovery;
  Result<DiscoveryReport> report = ProfileRelation(encoded, discovery);
  EXPECT_TRUE(report.ok());
  if (!report.ok()) return out;
  out.metadata = report->metadata.Serialize();

  LeakageOptions leakage_options;
  Result<LeakageProfile> profile =
      ComputeLeakageProfile(encoded, report->metadata, leakage_options);
  EXPECT_TRUE(profile.ok());
  if (profile.ok()) {
    for (const auto& attr : profile->attributes) {
      out.leakage_numbers.push_back(attr.expected_random_matches);
      out.leakage_numbers.push_back(static_cast<double>(attr.compared));
    }
  }

  ExperimentConfig config;
  config.rounds = 4;
  ExperimentEngine engine(encoded, report->metadata);
  Result<MethodResult> run = engine.Run(GenerationMethod::kFd, config);
  EXPECT_TRUE(run.ok());
  if (run.ok()) {
    for (const auto& attr : run->attributes) {
      out.experiment_bits.push_back(attr.covered ? 1 : 0);
      out.experiment_bits.push_back(DoubleBits(attr.mean_matches));
      out.experiment_bits.push_back(DoubleBits(attr.stddev_matches));
      out.experiment_bits.push_back(
          attr.mean_mse.has_value() ? DoubleBits(*attr.mean_mse) : 0);
    }
  }
  return out;
}

struct MatrixCell {
  std::optional<CodeWidth> floor;  // nullopt: natural widths
  SimdLevel simd = SimdLevel::kScalar;
  size_t threads = 1;
};

std::vector<MatrixCell> Matrix() {
  std::vector<MatrixCell> cells;
  const std::vector<std::optional<CodeWidth>> floors = {
      std::nullopt, CodeWidth::kU16, CodeWidth::kU32};
  for (const auto& floor : floors) {
    for (SimdLevel simd : {SimdLevel::kScalar, SupportedSimdLevel()}) {
      for (size_t threads : {size_t{1}, size_t{8}}) {
        cells.push_back({floor, simd, threads});
      }
    }
  }
  return cells;
}

std::string CellName(const MatrixCell& cell) {
  std::string name = "floor=";
  name += !cell.floor                        ? "natural"
          : *cell.floor == CodeWidth::kU16 ? "u16"
                                             : "u32";
  name += std::string(" simd=") + SimdLevelName(cell.simd);
  name += " threads=" + std::to_string(cell.threads);
  return name;
}

void RunMatrix(const Relation& relation) {
  // Reference cell: natural widths, scalar kernels, one thread.
  SetSimdLevelOverride(SimdLevel::kScalar);
  SetGlobalThreadCount(1);
  const PipelineObservation ref = RunPipeline(relation);
  ASSERT_FALSE(ref.metadata.empty());

  for (const MatrixCell& cell : Matrix()) {
    if (cell.floor) {
      SetCodeWidthFloorOverride(*cell.floor);
    } else {
      ClearCodeWidthFloorOverride();
    }
    SetSimdLevelOverride(cell.simd);
    SetGlobalThreadCount(cell.threads);
    const PipelineObservation got = RunPipeline(relation);
    const std::string name = CellName(cell);

    EXPECT_EQ(got.fingerprint, ref.fingerprint) << name;
    if (cell.floor == CodeWidth::kU32) {
      for (size_t c = 0; c < got.widths.size(); ++c) {
        EXPECT_EQ(got.widths[c], CodeWidth::kU32) << name << " col " << c;
      }
    }
    EXPECT_EQ(got.identifiable, ref.identifiable) << name;
    EXPECT_EQ(got.metadata, ref.metadata) << name;
    EXPECT_TRUE(BitwiseEqual(got.leakage_numbers, ref.leakage_numbers))
        << name;
    EXPECT_EQ(got.experiment_bits, ref.experiment_bits) << name;
  }

  ClearCodeWidthFloorOverride();
  ClearSimdLevelOverride();
  SetGlobalThreadCount(0);
}

class WidthParityTest : public ::testing::Test {
 protected:
  void TearDown() override {
    ClearCodeWidthFloorOverride();
    ClearSimdLevelOverride();
    SetGlobalThreadCount(0);
  }
};

TEST_F(WidthParityTest, Employee) { RunMatrix(datasets::Employee()); }

TEST_F(WidthParityTest, Echocardiogram) {
  RunMatrix(datasets::Echocardiogram());
}

TEST_F(WidthParityTest, PlantedSynthetic) {
  datasets::SyntheticConfig config;
  config.num_rows = 1200;
  config.seed = 7;
  datasets::SyntheticAttribute a;
  a.name = "a";
  a.kind = datasets::SyntheticAttribute::Kind::kCategoricalBase;
  a.domain_size = 12;
  datasets::SyntheticAttribute b;
  b.name = "b";
  b.kind = datasets::SyntheticAttribute::Kind::kContinuousBase;
  datasets::SyntheticAttribute c;
  c.name = "c";
  c.kind = datasets::SyntheticAttribute::Kind::kDerivedMonotone;
  c.source = 1;
  c.domain_size = 0;
  datasets::SyntheticAttribute d;
  d.name = "d";
  d.kind = datasets::SyntheticAttribute::Kind::kCategoricalBase;
  d.domain_size = 500;  // u16-wide naturally, u32 only under the floor
  config.attributes = {a, b, c, d};
  Result<Relation> relation = datasets::Synthetic(config);
  ASSERT_TRUE(relation.ok());
  RunMatrix(*relation);
}

}  // namespace
}  // namespace metaleak
