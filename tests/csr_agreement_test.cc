// Agreement suite for the flat CSR partition layout.
//
// Reimplements the pre-CSR nested-vector partition engine (the exact
// algorithms: ascending-code cluster order, first-occurrence intersect
// ordering, small-side probe pick) and asserts the CSR engine produces
// byte-identical clusters, probe tables, G3Error and MaxFanout on the
// employee, echocardiogram, and planted-dependency synthetic datasets,
// at thread counts 1 and 8. Any divergence here means the layout change
// altered observable results, not just performance.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/parallel.h"
#include "data/datasets/echocardiogram.h"
#include "data/datasets/employee.h"
#include "data/datasets/synthetic.h"
#include "data/encoded_relation.h"
#include "partition/position_list_index.h"

namespace metaleak {
namespace {

// --- Legacy nested-vector reference engine -----------------------------------

constexpr int64_t kLegacyUnique = -1;

struct LegacyPli {
  std::vector<std::vector<size_t>> clusters;
  size_t num_rows = 0;

  size_t stripped_rows() const {
    size_t total = 0;
    for (const auto& c : clusters) total += c.size();
    return total;
  }

  std::vector<int64_t> ProbeTable() const {
    std::vector<int64_t> probe(num_rows, kLegacyUnique);
    for (size_t c = 0; c < clusters.size(); ++c) {
      for (size_t row : clusters[c]) probe[row] = static_cast<int64_t>(c);
    }
    return probe;
  }
};

LegacyPli LegacyFromCodes(const std::vector<uint32_t>& codes,
                          uint32_t num_codes) {
  LegacyPli out;
  out.num_rows = codes.size();
  std::vector<uint32_t> counts(num_codes, 0);
  for (uint32_t code : codes) ++counts[code];
  std::vector<uint32_t> slot(num_codes, UINT32_MAX);
  uint32_t next_slot = 0;
  for (uint32_t code = 0; code < num_codes; ++code) {
    if (counts[code] >= 2) slot[code] = next_slot++;
  }
  out.clusters.resize(next_slot);
  for (size_t r = 0; r < codes.size(); ++r) {
    uint32_t s = slot[codes[r]];
    if (s != UINT32_MAX) out.clusters[s].push_back(r);
  }
  return out;
}

LegacyPli LegacyFromEncoded(const EncodedRelation& relation,
                            const std::vector<size_t>& columns) {
  if (columns.size() == 1) {
    return LegacyFromCodes(relation.codes(columns[0]),
                           relation.dictionary(columns[0]).num_codes());
  }
  const size_t n = relation.num_rows();
  std::vector<uint64_t> ids(relation.codes(columns[0]).begin(),
                            relation.codes(columns[0]).end());
  uint64_t num_groups = relation.dictionary(columns[0]).num_codes();
  std::unordered_map<uint64_t, uint64_t> remap;
  for (size_t i = 1; i < columns.size(); ++i) {
    const std::vector<uint32_t>& codes = relation.codes(columns[i]);
    const uint64_t nc = relation.dictionary(columns[i]).num_codes();
    remap.clear();
    for (size_t r = 0; r < n; ++r) {
      uint64_t key = ids[r] * nc + codes[r];
      auto it = remap.emplace(key, remap.size()).first;
      ids[r] = it->second;
    }
    num_groups = remap.size();
  }
  LegacyPli out;
  out.num_rows = n;
  std::vector<uint32_t> counts(num_groups, 0);
  for (uint64_t id : ids) ++counts[id];
  std::vector<uint32_t> slot(num_groups, UINT32_MAX);
  uint32_t next_slot = 0;
  for (uint64_t g = 0; g < num_groups; ++g) {
    if (counts[g] >= 2) slot[g] = next_slot++;
  }
  out.clusters.resize(next_slot);
  for (size_t r = 0; r < n; ++r) {
    uint32_t s = slot[ids[r]];
    if (s != UINT32_MAX) out.clusters[s].push_back(r);
  }
  return out;
}

// Mirrors PositionListIndex::Intersect: iterate the operand with fewer
// stripped rows, probe the other, emit subclusters in first-occurrence
// order of the probe class.
LegacyPli LegacyIntersect(const LegacyPli& a, const LegacyPli& b) {
  const bool b_smaller = b.stripped_rows() < a.stripped_rows();
  const LegacyPli& iter = b_smaller ? b : a;
  const LegacyPli& probe_side = b_smaller ? a : b;
  std::vector<int64_t> probe = probe_side.ProbeTable();
  LegacyPli out;
  out.num_rows = a.num_rows;
  std::unordered_map<int64_t, std::vector<size_t>> split;
  std::vector<int64_t> touched;
  for (const auto& cluster : iter.clusters) {
    split.clear();
    touched.clear();
    for (size_t row : cluster) {
      int64_t id = probe[row];
      if (id == kLegacyUnique) continue;
      auto [it, inserted] = split.try_emplace(id);
      if (inserted) touched.push_back(id);
      it->second.push_back(row);
    }
    for (int64_t id : touched) {
      if (split[id].size() >= 2) out.clusters.push_back(std::move(split[id]));
    }
  }
  return out;
}

double LegacyG3Error(const LegacyPli& x, const LegacyPli& y) {
  if (x.num_rows == 0) return 0.0;
  std::vector<int64_t> probe = y.ProbeTable();
  size_t violations = 0;
  std::unordered_map<int64_t, size_t> counts;
  for (const auto& cluster : x.clusters) {
    counts.clear();
    size_t unique_rows = 0;
    size_t max_count = 0;
    for (size_t row : cluster) {
      int64_t id = probe[row];
      if (id == kLegacyUnique) {
        ++unique_rows;
        continue;
      }
      size_t c = ++counts[id];
      if (c > max_count) max_count = c;
    }
    if (unique_rows > 0 && max_count == 0) max_count = 1;
    violations += cluster.size() - max_count;
  }
  return static_cast<double>(violations) / static_cast<double>(x.num_rows);
}

size_t LegacyMaxFanout(const LegacyPli& x, const LegacyPli& y) {
  std::vector<int64_t> probe = y.ProbeTable();
  size_t max_fanout = x.num_rows > 0 ? 1 : 0;
  std::unordered_map<int64_t, size_t> seen;
  for (const auto& cluster : x.clusters) {
    seen.clear();
    size_t distinct = 0;
    for (size_t row : cluster) {
      int64_t id = probe[row];
      if (id == kLegacyUnique) {
        ++distinct;
      } else if (++seen[id] == 1) {
        ++distinct;
      }
    }
    if (distinct > max_fanout) max_fanout = distinct;
  }
  return max_fanout;
}

// --- Fixtures ----------------------------------------------------------------

Relation PlantedSynthetic() {
  datasets::SyntheticConfig cfg;
  cfg.num_rows = 300;
  cfg.seed = 11;
  using Kind = datasets::SyntheticAttribute::Kind;
  cfg.attributes = {
      {.name = "cat", .kind = Kind::kCategoricalBase, .domain_size = 6},
      {.name = "cont", .kind = Kind::kContinuousBase, .lo = 0, .hi = 100},
      {.name = "mono", .kind = Kind::kDerivedMonotone, .domain_size = 0,
       .source = 1},
      {.name = "pool", .kind = Kind::kDerivedBoundedFanout, .domain_size = 8,
       .source = 0, .fanout = 2},
      {.name = "near", .kind = Kind::kDerivedApproximate, .domain_size = 6,
       .source = 0, .violation_rate = 0.05},
  };
  return std::move(datasets::Synthetic(cfg)).ValueOrDie();
}

void ExpectSamePartition(const LegacyPli& legacy,
                         const PositionListIndex& csr) {
  ASSERT_EQ(legacy.num_rows, csr.num_rows());
  ASSERT_EQ(legacy.clusters.size(), csr.num_clusters());
  EXPECT_EQ(legacy.stripped_rows(), csr.num_stripped_rows());
  // Byte-identical cluster contents in identical order.
  EXPECT_EQ(legacy.clusters, csr.ToNestedClusters());
  // Byte-identical probe tables (modulo the int64 -> int32 narrowing).
  std::vector<int64_t> legacy_probe = legacy.ProbeTable();
  const std::vector<int32_t>& csr_probe = csr.probe_table();
  ASSERT_EQ(legacy_probe.size(), csr_probe.size());
  for (size_t r = 0; r < legacy_probe.size(); ++r) {
    EXPECT_EQ(legacy_probe[r], static_cast<int64_t>(csr_probe[r]))
        << "probe mismatch at row " << r;
  }
}

// Thread-count parameterized: every comparison must hold serially and on
// the pool, since G3Error chunks its reduction.
class CsrAgreementTest : public ::testing::TestWithParam<size_t> {
 protected:
  void SetUp() override { SetGlobalThreadCount(GetParam()); }
  void TearDown() override { SetGlobalThreadCount(0); }
};

TEST_P(CsrAgreementTest, AgreesOnAllDatasets) {
  const std::vector<Relation> datasets = {
      datasets::Employee(), datasets::Echocardiogram(), PlantedSynthetic()};
  for (const Relation& rel : datasets) {
    EncodedRelation encoded = EncodedRelation::Encode(rel);
    const size_t m = encoded.num_columns();

    // Single-column partitions.
    std::vector<LegacyPli> legacy_singles;
    std::vector<PositionListIndex> csr_singles;
    for (size_t c = 0; c < m; ++c) {
      legacy_singles.push_back(LegacyFromEncoded(encoded, {c}));
      csr_singles.push_back(PositionListIndex::FromEncoded(encoded, {c}));
      ExpectSamePartition(legacy_singles.back(), csr_singles.back());
    }

    // Pairwise: direct two-column builds, intersections, and the scalar
    // kernels both engines expose.
    IntersectionScratch scratch;
    for (size_t a = 0; a < m; ++a) {
      for (size_t b = a + 1; b < m; ++b) {
        LegacyPli legacy_direct = LegacyFromEncoded(encoded, {a, b});
        PositionListIndex csr_direct =
            PositionListIndex::FromEncoded(encoded, {a, b});
        ExpectSamePartition(legacy_direct, csr_direct);

        LegacyPli legacy_inter =
            LegacyIntersect(legacy_singles[a], legacy_singles[b]);
        PositionListIndex csr_inter =
            csr_singles[a].Intersect(csr_singles[b], &scratch);
        ExpectSamePartition(legacy_inter, csr_inter);

        EXPECT_EQ(LegacyG3Error(legacy_singles[a], legacy_singles[b]),
                  csr_singles[a].G3Error(csr_singles[b]));
        EXPECT_EQ(LegacyMaxFanout(legacy_singles[a], legacy_singles[b]),
                  csr_singles[a].MaxFanout(csr_singles[b]));
      }
    }

    // A few wider sets exercise the multi-column fold and chained
    // intersections.
    if (m >= 3) {
      std::vector<size_t> triple = {0, 1, 2};
      ExpectSamePartition(LegacyFromEncoded(encoded, triple),
                          PositionListIndex::FromEncoded(encoded, triple));
      LegacyPli legacy_chain = LegacyIntersect(
          LegacyIntersect(legacy_singles[0], legacy_singles[1]),
          legacy_singles[2]);
      PositionListIndex csr_chain = csr_singles[0]
                                        .Intersect(csr_singles[1], &scratch)
                                        .Intersect(csr_singles[2], &scratch);
      ExpectSamePartition(legacy_chain, csr_chain);
    }
  }
}

TEST_P(CsrAgreementTest, ScratchReuseLeavesNoResidue) {
  // One scratch across many interleaved intersections of very different
  // shapes must give the same results as fresh scratch every time.
  EncodedRelation encoded =
      EncodedRelation::Encode(datasets::Echocardiogram());
  const size_t m = encoded.num_columns();
  std::vector<PositionListIndex> singles;
  for (size_t c = 0; c < m; ++c) {
    singles.push_back(PositionListIndex::FromEncoded(encoded, {c}));
  }
  IntersectionScratch reused;
  for (size_t a = 0; a < m; ++a) {
    for (size_t b = 0; b < m; ++b) {
      if (a == b) continue;
      PositionListIndex with_reuse = singles[a].Intersect(singles[b], &reused);
      PositionListIndex fresh = singles[a].Intersect(singles[b]);
      EXPECT_EQ(with_reuse.ToNestedClusters(), fresh.ToNestedClusters());
      EXPECT_EQ(with_reuse.cluster_offsets(), fresh.cluster_offsets());
      EXPECT_EQ(with_reuse.rows(), fresh.rows());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, CsrAgreementTest, ::testing::Values(1, 8));

}  // namespace
}  // namespace metaleak
