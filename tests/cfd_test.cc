// Tests for conditional functional dependencies: model, validation,
// discovery, serialization, CFD-aware generation, and the privacy
// conclusion (CFD-informed generation ~= random).
#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "data/domain.h"
#include "discovery/cfd_discovery.h"
#include "discovery/discovery_engine.h"
#include "generation/cfd_generator.h"
#include "generation/generation_engine.h"
#include "metadata/metadata_package.h"
#include "privacy/experiment.h"

namespace metaleak {
namespace {

Relation MakeRelation(std::vector<Attribute> attrs,
                      std::vector<std::vector<Value>> cols) {
  return std::move(Relation::Make(Schema(std::move(attrs)), std::move(cols)))
      .ValueOrDie();
}

Attribute Cat(const char* name) {
  return {name, DataType::kString, SemanticType::kCategorical};
}

// A relation where region="eu" scopes the FD dept -> manager, but the FD
// fails globally (the "us" scope disagrees); and every "us" row has
// currency "usd" (a constant CFD) while "eu" rows vary.
Relation CfdRelation() {
  std::vector<Value> region;
  std::vector<Value> dept;
  std::vector<Value> manager;
  std::vector<Value> currency;
  auto add = [&](const char* r, const char* d, const char* m,
                 const char* c) {
    region.push_back(Value::Str(r));
    dept.push_back(Value::Str(d));
    manager.push_back(Value::Str(m));
    currency.push_back(Value::Str(c));
  };
  for (int i = 0; i < 10; ++i) {
    add("eu", "sales", "anna", i % 2 == 0 ? "eur" : "sek");
    add("eu", "dev", "bert", "eur");
  }
  for (int i = 0; i < 10; ++i) {
    // Same dept maps to different managers in "us": global FD fails.
    add("us", "sales", i % 2 == 0 ? "carl" : "dora", "usd");
  }
  return MakeRelation(
      {Cat("region"), Cat("dept"), Cat("manager"), Cat("currency")},
      {region, dept, manager, currency});
}

// --- Model / validation -----------------------------------------------------

TEST(CfdTest, RenderingUsesSchemaNames) {
  Relation r = CfdRelation();
  ConditionalFd variable = ConditionalFd::Variable(
      0, Value::Str("eu"), AttributeSet::Single(1), 2, 20);
  EXPECT_EQ(variable.ToString(r.schema()),
            "CFD [region=eu] => {dept} -> manager (support=20)");
  ConditionalFd constant = ConditionalFd::Constant(
      0, Value::Str("us"), 3, Value::Str("usd"), 10);
  EXPECT_EQ(constant.ToString(r.schema()),
            "CFD [region=us] => currency = usd (support=10)");
}

TEST(CfdTest, ValidateVariableCfd) {
  Relation r = CfdRelation();
  ConditionalFd holds = ConditionalFd::Variable(
      0, Value::Str("eu"), AttributeSet::Single(1), 2, 20);
  EXPECT_TRUE(*ValidateCfd(r, holds));
  ConditionalFd fails = ConditionalFd::Variable(
      0, Value::Str("us"), AttributeSet::Single(1), 2, 10);
  EXPECT_FALSE(*ValidateCfd(r, fails));
}

TEST(CfdTest, ValidateConstantCfd) {
  Relation r = CfdRelation();
  ConditionalFd holds = ConditionalFd::Constant(
      0, Value::Str("us"), 3, Value::Str("usd"), 10);
  EXPECT_TRUE(*ValidateCfd(r, holds));
  ConditionalFd fails = ConditionalFd::Constant(
      0, Value::Str("eu"), 3, Value::Str("eur"), 20);
  EXPECT_FALSE(*ValidateCfd(r, fails));
}

TEST(CfdTest, ValidateVacuousAndBadInput) {
  Relation r = CfdRelation();
  ConditionalFd vacuous = ConditionalFd::Variable(
      0, Value::Str("asia"), AttributeSet::Single(1), 2, 0);
  EXPECT_TRUE(*ValidateCfd(r, vacuous));
  ConditionalFd bad = ConditionalFd::Variable(
      9, Value::Str("eu"), AttributeSet::Single(1), 2, 0);
  EXPECT_FALSE(ValidateCfd(r, bad).ok());
  ConditionalFd empty_lhs;
  empty_lhs.rhs_is_constant = false;
  EXPECT_FALSE(ValidateCfd(r, empty_lhs).ok());
}

// --- Discovery -----------------------------------------------------------------

TEST(CfdTest, DiscoversPlantedVariableCfd) {
  Relation r = CfdRelation();
  CfdDiscoveryOptions options;
  options.min_support = 5;
  auto cfds = DiscoverCfds(r, options);
  ASSERT_TRUE(cfds.ok());
  ConditionalFd expected = ConditionalFd::Variable(
      0, Value::Str("eu"), AttributeSet::Single(1), 2, 20);
  EXPECT_NE(std::find(cfds->begin(), cfds->end(), expected), cfds->end());
  // The failing us-scope must not appear.
  ConditionalFd wrong = ConditionalFd::Variable(
      0, Value::Str("us"), AttributeSet::Single(1), 2, 10);
  EXPECT_EQ(std::find(cfds->begin(), cfds->end(), wrong), cfds->end());
}

TEST(CfdTest, DiscoversPlantedConstantCfd) {
  Relation r = CfdRelation();
  CfdDiscoveryOptions options;
  options.min_support = 5;
  auto cfds = DiscoverCfds(r, options);
  ASSERT_TRUE(cfds.ok());
  ConditionalFd expected = ConditionalFd::Constant(
      0, Value::Str("us"), 3, Value::Str("usd"), 10);
  EXPECT_NE(std::find(cfds->begin(), cfds->end(), expected), cfds->end());
}

TEST(CfdTest, EveryDiscoveredCfdValidates) {
  Relation r = CfdRelation();
  CfdDiscoveryOptions options;
  options.min_support = 4;
  auto cfds = DiscoverCfds(r, options);
  ASSERT_TRUE(cfds.ok());
  EXPECT_GT(cfds->size(), 0u);
  for (const ConditionalFd& cfd : *cfds) {
    auto valid = ValidateCfd(r, cfd);
    ASSERT_TRUE(valid.ok());
    EXPECT_TRUE(*valid) << cfd.ToString(r.schema());
    EXPECT_GE(cfd.support, options.min_support);
  }
}

TEST(CfdTest, MinSupportFilters) {
  Relation r = CfdRelation();
  CfdDiscoveryOptions strict;
  strict.min_support = 1000;
  auto cfds = DiscoverCfds(r, strict);
  ASSERT_TRUE(cfds.ok());
  EXPECT_TRUE(cfds->empty());
}

// --- Packaging / serialization -----------------------------------------------------

TEST(CfdTest, ProfileAndSerializeRoundTrip) {
  Relation r = CfdRelation();
  DiscoveryOptions options;
  options.discover_cfds = true;
  options.cfd.min_support = 5;
  auto report = ProfileRelation(r, options);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->metadata.conditional_fds.size(), 0u);

  std::string wire = report->metadata.Serialize();
  auto parsed = MetadataPackage::Deserialize(wire);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->conditional_fds.size(),
            report->metadata.conditional_fds.size());
  for (size_t i = 0; i < parsed->conditional_fds.size(); ++i) {
    EXPECT_EQ(parsed->conditional_fds[i],
              report->metadata.conditional_fds[i]);
  }
}

TEST(CfdTest, RestrictKeepsCfdsOnlyAtRfdLevel) {
  Relation r = CfdRelation();
  DiscoveryOptions options;
  options.discover_cfds = true;
  options.cfd.min_support = 5;
  auto report = ProfileRelation(r, options);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->metadata.Restrict(DisclosureLevel::kWithFds)
                  .conditional_fds.empty());
  EXPECT_FALSE(report->metadata.Restrict(DisclosureLevel::kWithRfds)
                   .conditional_fds.empty());
}

// --- Generation ---------------------------------------------------------------------

TEST(CfdTest, ApplyCfdsEnforcesEachCfdAppliedAlone) {
  // Guarantee: a single CFD (no rule interaction) is enforced exactly.
  Relation r = CfdRelation();
  DiscoveryOptions options;
  options.discover_cfds = true;
  options.cfd.min_support = 5;
  auto report = ProfileRelation(r, options);
  ASSERT_TRUE(report.ok());
  ASSERT_GT(report->metadata.conditional_fds.size(), 0u);
  auto domains = report->metadata.RequireDomains();
  ASSERT_TRUE(domains.ok());

  Rng rng(3);
  GenerationOptions gen;
  gen.ignore_dependencies = true;
  auto outcome = GenerateSynthetic(report->metadata, 200, &rng, gen);
  ASSERT_TRUE(outcome.ok());
  for (const ConditionalFd& cfd : report->metadata.conditional_fds) {
    auto repaired =
        ApplyCfds(outcome->relation, {cfd}, *domains, &rng);
    ASSERT_TRUE(repaired.ok()) << repaired.status().ToString();
    auto valid = ValidateCfd(*repaired, cfd);
    ASSERT_TRUE(valid.ok());
    EXPECT_TRUE(*valid) << cfd.ToString(r.schema());
  }
}

TEST(CfdTest, ApplyCfdsReducesViolationsUnderInteraction) {
  // Dense mined rule sets can be jointly unsatisfiable on synthetic rows
  // (value co-occurrences that never appear in the real data), so repair
  // is best-effort there — but it must strictly help.
  Relation r = CfdRelation();
  DiscoveryOptions options;
  options.discover_cfds = true;
  options.cfd.min_support = 5;
  auto report = ProfileRelation(r, options);
  ASSERT_TRUE(report.ok());
  auto domains = report->metadata.RequireDomains();
  ASSERT_TRUE(domains.ok());

  Rng rng(4);
  GenerationOptions gen;
  gen.ignore_dependencies = true;
  auto outcome = GenerateSynthetic(report->metadata, 200, &rng, gen);
  ASSERT_TRUE(outcome.ok());
  auto count_violations = [&](const Relation& rel) {
    size_t violations = 0;
    for (const ConditionalFd& cfd : report->metadata.conditional_fds) {
      auto valid = ValidateCfd(rel, cfd);
      if (valid.ok() && !*valid) ++violations;
    }
    return violations;
  };
  size_t before = count_violations(outcome->relation);
  auto repaired = ApplyCfds(outcome->relation,
                            report->metadata.conditional_fds, *domains,
                            &rng);
  ASSERT_TRUE(repaired.ok()) << repaired.status().ToString();
  size_t after = count_violations(*repaired);
  EXPECT_LT(after, before);
  EXPECT_LT(static_cast<double>(after),
            0.5 * static_cast<double>(
                      report->metadata.conditional_fds.size()));
}

TEST(CfdTest, ApplyCfdsDisjointRulesAllHold) {
  // Rules writing disjoint attributes with disjoint condition columns
  // cannot interact: all must hold after one chase.
  Relation r = CfdRelation();
  auto domains_result =
      ExtractDomains(r);
  ASSERT_TRUE(domains_result.ok());
  std::vector<ConditionalFd> rules = {
      ConditionalFd::Variable(0, Value::Str("eu"), AttributeSet::Single(1),
                              2, 20),
      ConditionalFd::Constant(0, Value::Str("us"), 3, Value::Str("usd"),
                              10),
  };
  Rng rng(5);
  // Random relation over the same schema.
  MetadataPackage pkg;
  pkg.schema = r.schema();
  for (auto& d : *domains_result) pkg.domains.emplace_back(d);
  GenerationOptions gen;
  gen.ignore_dependencies = true;
  auto outcome = GenerateSynthetic(pkg, 300, &rng, gen);
  ASSERT_TRUE(outcome.ok());
  auto repaired = ApplyCfds(outcome->relation, rules, *domains_result,
                            &rng);
  ASSERT_TRUE(repaired.ok());
  for (const ConditionalFd& cfd : rules) {
    auto valid = ValidateCfd(*repaired, cfd);
    ASSERT_TRUE(valid.ok());
    EXPECT_TRUE(*valid) << cfd.ToString(r.schema());
  }
}

TEST(CfdTest, VariableCfdMethodLeaksNoMoreThanRandom) {
  // The paper's FD argument extends to *variable* CFDs: a scoped
  // one-shot mapping keeps the per-row hit probability at 1/|D|.
  // (Constant CFDs are excluded — their pattern constants embed data
  // values and DO leak more; see ConstantCfdLeaksMore.)
  Relation r = CfdRelation();
  DiscoveryOptions options;
  options.discover_cfds = true;
  options.cfd.min_support = 5;
  auto report = ProfileRelation(r, options);
  ASSERT_TRUE(report.ok());
  MetadataPackage pkg = report->metadata;
  std::vector<ConditionalFd> variable_only;
  for (const ConditionalFd& cfd : pkg.conditional_fds) {
    if (!cfd.rhs_is_constant) variable_only.push_back(cfd);
  }
  ASSERT_FALSE(variable_only.empty());
  pkg.conditional_fds = variable_only;

  ExperimentConfig config;
  config.rounds = 800;
  auto results = RunExperiment(
      r, pkg, {GenerationMethod::kRandom, GenerationMethod::kCfd},
      config);
  ASSERT_TRUE(results.ok());
  const MethodResult& random = (*results)[0];
  const MethodResult& cfd = (*results)[1];
  for (size_t c = 0; c < r.num_columns(); ++c) {
    if (!cfd.attributes[c].covered) continue;
    double slack =
        4.0 * std::max(1.0, random.attributes[c].stddev_matches);
    EXPECT_LE(cfd.attributes[c].mean_matches,
              random.attributes[c].mean_matches + slack)
        << r.schema().attribute(c).name;
  }
}

TEST(CfdTest, ConstantCfdLeaksMoreOnSkewedData) {
  // A constant CFD ships a real data value inside the metadata. When the
  // constant marks an over-represented value (here "usd" covers 2/3 of
  // the rows), applying it beats the uniform-domain baseline — the same
  // mechanism as distribution disclosure. On balanced data the effect
  // vanishes (the adversary does not know which rows are in scope).
  std::vector<Value> region;
  std::vector<Value> currency;
  for (int i = 0; i < 30; ++i) {
    region.push_back(Value::Str("eu"));
    currency.push_back(Value::Str(i % 2 == 0 ? "eur" : "sek"));
  }
  for (int i = 0; i < 60; ++i) {
    region.push_back(Value::Str("us"));
    currency.push_back(Value::Str("usd"));
  }
  Relation r = MakeRelation({Cat("region"), Cat("currency")},
                            {region, currency});
  DiscoveryOptions options;
  options.discover_cfds = true;
  options.cfd.min_support = 5;
  auto report = ProfileRelation(r, options);
  ASSERT_TRUE(report.ok());
  MetadataPackage pkg = report->metadata;
  ConditionalFd target = ConditionalFd::Constant(
      0, Value::Str("us"), 1, Value::Str("usd"), 60);
  bool discovered = false;
  for (const ConditionalFd& cfd : pkg.conditional_fds) {
    if (cfd == target) discovered = true;
  }
  EXPECT_TRUE(discovered);
  pkg.conditional_fds = {target};

  ExperimentConfig config;
  config.rounds = 800;
  auto results = RunExperiment(
      r, pkg, {GenerationMethod::kRandom, GenerationMethod::kCfd},
      config);
  ASSERT_TRUE(results.ok());
  // Analytical: baseline = 90/3 = 30; CFD = 0.5*60 + 45/3 = 45.
  EXPECT_NEAR((*results)[0].attributes[1].mean_matches, 30.0, 3.0);
  EXPECT_NEAR((*results)[1].attributes[1].mean_matches, 45.0, 4.0);
  EXPECT_GT((*results)[1].attributes[1].mean_matches,
            (*results)[0].attributes[1].mean_matches + 5.0);
}

TEST(CfdTest, CfdCoverageMarksRhsOnly) {
  Relation r = CfdRelation();
  DiscoveryOptions options;
  options.discover_cfds = true;
  options.cfd.min_support = 5;
  auto report = ProfileRelation(r, options);
  ASSERT_TRUE(report.ok());
  MetadataPackage pkg = report->metadata;
  // Keep a single CFD so coverage is predictable.
  ConditionalFd keep = pkg.conditional_fds.front();
  pkg.conditional_fds = {keep};
  ExperimentConfig config;
  config.rounds = 3;
  auto result = RunMethod(r, pkg, GenerationMethod::kCfd, config);
  ASSERT_TRUE(result.ok());
  for (const MethodAttributeResult& a : result->attributes) {
    EXPECT_EQ(a.covered, a.attribute == keep.rhs) << a.name;
  }
}

}  // namespace
}  // namespace metaleak
