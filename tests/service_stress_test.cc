// Concurrency stress for the audit service, written to run under
// ThreadSanitizer (the CI tsan job includes it): several threads fire
// mixed audit / leakage / attack queries at one service while another
// thread applies row batches and registers duplicate content. Queries
// must keep running against superseded snapshots without tearing, and
// the post-batch state must still be bit-identical to a from-scratch
// encoding of the reference rows.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "data/datasets/synthetic.h"
#include "data/encoded_relation.h"
#include "service/audit_service.h"

namespace metaleak {
namespace {

TEST(ServiceStressTest, ConcurrentMixedQueriesAndBatches) {
  Result<Relation> base = datasets::SyntheticUniform(200, 3, 1, 5, 99);
  ASSERT_TRUE(base.ok());
  Relation reference = *base;

  AuditService service;
  Result<SessionId> session = service.Register(reference);
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  const SessionId id = *session;

  std::atomic<bool> stop{false};
  std::atomic<size_t> failures{0};

  auto check = [&](bool ok) {
    if (!ok) failures.fetch_add(1, std::memory_order_relaxed);
  };

  std::vector<std::thread> workers;
  // Audit queries (identifiability + Monte-Carlo + verdicts).
  workers.emplace_back([&] {
    AuditOptions options;
    options.experiment.rounds = 2;
    while (!stop.load(std::memory_order_acquire)) {
      check(service.Audit(id, options).ok());
    }
  });
  // Leakage queries (one generation method per call).
  workers.emplace_back([&] {
    ExperimentConfig config;
    config.rounds = 2;
    while (!stop.load(std::memory_order_acquire)) {
      check(service.MeasureLeakage(id, GenerationMethod::kFd, config).ok());
      check(
          service.MeasureLeakage(id, GenerationMethod::kRandom, config).ok());
    }
  });
  // Attack queries (per-tuple reconstruction risk).
  workers.emplace_back([&] {
    TupleRiskOptions options;
    options.rounds = 2;
    while (!stop.load(std::memory_order_acquire)) {
      check(service.TupleRisk(id, options).ok());
    }
  });
  // Snapshot readers + duplicate registrations (snapshot-cache traffic).
  workers.emplace_back([&] {
    while (!stop.load(std::memory_order_acquire)) {
      Result<std::shared_ptr<const RelationSnapshot>> snap =
          service.Snapshot(id);
      check(snap.ok());
      if (snap.ok()) {
        check((*snap)->num_rows() > 0);
        check(service.Register((*snap)->relation()).ok());
      }
    }
  });

  // Mutator: serialized batches through the session, mirrored on the
  // value-level reference relation.
  for (size_t round = 0; round < 4; ++round) {
    // Let the query threads overlap each snapshot generation.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    RowBatch batch;
    batch.delete_rows = {round, round + 7};
    batch.insert_rows.push_back(reference.Row(round));
    batch.insert_rows.push_back(reference.Row(round + 3));
    Result<LeakageDelta> delta = service.ApplyBatch(id, batch);
    ASSERT_TRUE(delta.ok()) << delta.status().ToString();

    std::vector<size_t> deletes = batch.delete_rows;
    std::sort(deletes.begin(), deletes.end());
    Relation next = Relation::Empty(reference.schema());
    size_t d = 0;
    for (size_t r = 0; r < reference.num_rows(); ++r) {
      if (d < deletes.size() && deletes[d] == r) {
        ++d;
        continue;
      }
      ASSERT_TRUE(next.AppendRow(reference.Row(r)).ok());
    }
    for (const std::vector<Value>& row : batch.insert_rows) {
      ASSERT_TRUE(next.AppendRow(row).ok());
    }
    reference = std::move(next);
  }

  stop.store(true, std::memory_order_release);
  for (std::thread& t : workers) t.join();
  EXPECT_EQ(failures.load(), 0u);

  // Exactness survived the storm: the live snapshot is bit-identical to
  // a from-scratch encoding of the reference rows.
  Result<std::shared_ptr<const RelationSnapshot>> final_snap =
      service.Snapshot(id);
  ASSERT_TRUE(final_snap.ok());
  EXPECT_EQ((*final_snap)->encoding().Fingerprint(),
            EncodedRelation::Encode(reference).Fingerprint());
  EXPECT_GT(service.stats().snapshot_hits +
                service.stats().snapshot_misses,
            0u);
}

}  // namespace
}  // namespace metaleak
