// Tests for the dictionary-encoding layer (EncodedRelation) and for the
// agreement between the legacy Value paths and the code paths built on
// top of the encoding: PLI construction, order-dependency validation,
// minimal-delta computation and full FD discovery must produce identical
// results on both representations.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "data/datasets/echocardiogram.h"
#include "data/datasets/employee.h"
#include "data/datasets/synthetic.h"
#include "data/domain.h"
#include "data/encoded_relation.h"
#include "data/relation.h"
#include "data/statistics.h"
#include "discovery/discovery_engine.h"
#include "discovery/tane.h"
#include "discovery/validators.h"
#include "metadata/value_distribution.h"
#include "partition/pli_cache.h"
#include "partition/position_list_index.h"
#include "privacy/identifiability.h"

namespace metaleak {
namespace {

Schema TestSchema() {
  return Schema({
      {"id", DataType::kInt64, SemanticType::kCategorical},
      {"score", DataType::kDouble, SemanticType::kContinuous},
      {"label", DataType::kString, SemanticType::kCategorical},
  });
}

Relation TestRelation() {
  return std::move(Relation::Make(
                       TestSchema(),
                       {{Value::Int(3), Value::Int(1), Value::Int(3),
                         Value::Null(), Value::Int(2)},
                        {Value::Real(0.5), Value::Null(), Value::Real(0.5),
                         Value::Real(-1.0), Value::Real(2.25)},
                        {Value::Str("b"), Value::Str("a"), Value::Str("b"),
                         Value::Null(), Value::Str("a")}}))
      .ValueOrDie();
}

Relation Synthetic50(uint64_t seed) {
  return std::move(datasets::SyntheticUniform(50, 3, 2, 8, seed))
      .ValueOrDie();
}

// Canonical cluster form: clusters sorted, rows within already ascending
// for the code path and made ascending here for the hash path.
std::vector<std::vector<size_t>> Canonical(const PositionListIndex& pli) {
  std::vector<std::vector<size_t>> out = pli.ToNestedClusters();
  for (auto& c : out) std::sort(c.begin(), c.end());
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::string> DependencyStrings(const DependencySet& deps,
                                           const Schema& schema) {
  std::vector<std::string> out;
  for (const Dependency& d : deps) out.push_back(d.ToString(schema));
  std::sort(out.begin(), out.end());
  return out;
}

// --- Encoding basics ---------------------------------------------------------

TEST(EncodedRelationTest, RoundTripDecodeEqualsOriginal) {
  for (const Relation& rel :
       {TestRelation(), datasets::Employee(), datasets::Echocardiogram(),
        Synthetic50(7)}) {
    EncodedRelation encoded = EncodedRelation::Encode(rel);
    auto decoded = encoded.Decode();
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(*decoded, rel);
  }
}

TEST(EncodedRelationTest, NullGetsTheReservedCode) {
  Relation rel = TestRelation();
  EncodedRelation encoded = EncodedRelation::Encode(rel);
  // Row 3 of "id" and "label" is NULL; row 1 of "score" is NULL.
  EXPECT_EQ(encoded.code_at(3, 0), ColumnDictionary::kNullCode);
  EXPECT_EQ(encoded.code_at(1, 1), ColumnDictionary::kNullCode);
  EXPECT_TRUE(encoded.is_null(3, 2));
  EXPECT_FALSE(encoded.is_null(0, 0));

  const ColumnDictionary& id = encoded.dictionary(0);
  EXPECT_TRUE(id.has_null());
  EXPECT_EQ(id.null_count(), 1u);
  EXPECT_TRUE(id.decode(ColumnDictionary::kNullCode).is_null());
  EXPECT_EQ(id.count(ColumnDictionary::kNullCode), 1u);

  // The NULL slot exists even for columns without NULLs, so code 0 never
  // aliases a real value.
  Relation no_nulls = std::move(Relation::Make(
                                    TestSchema(),
                                    {{Value::Int(1), Value::Int(1)},
                                     {Value::Real(0.0), Value::Real(1.0)},
                                     {Value::Str("x"), Value::Str("y")}}))
                          .ValueOrDie();
  EncodedRelation e2 = EncodedRelation::Encode(no_nulls);
  EXPECT_FALSE(e2.dictionary(0).has_null());
  EXPECT_EQ(e2.dictionary(0).count(ColumnDictionary::kNullCode), 0u);
  EXPECT_EQ(e2.dictionary(0).num_codes(), 2u);  // NULL slot + value 1
  EXPECT_EQ(e2.dictionary(0).num_distinct(), 1u);
}

TEST(EncodedRelationTest, AllNullColumnHasOnlyTheNullCode) {
  Relation rel = std::move(Relation::Make(
                               TestSchema(),
                               {{Value::Null(), Value::Null()},
                                {Value::Null(), Value::Null()},
                                {Value::Null(), Value::Null()}}))
                     .ValueOrDie();
  EncodedRelation encoded = EncodedRelation::Encode(rel);
  for (size_t c = 0; c < 3; ++c) {
    EXPECT_EQ(encoded.dictionary(c).num_distinct(), 0u);
    EXPECT_EQ(encoded.dictionary(c).null_count(), 2u);
    for (uint32_t code : encoded.codes(c)) {
      EXPECT_EQ(code, ColumnDictionary::kNullCode);
    }
  }
  auto decoded = encoded.Decode();
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, rel);
}

TEST(EncodedRelationTest, CodesAreOrderPreservingOnNumericColumns) {
  Relation rel = Synthetic50(21);
  EncodedRelation encoded = EncodedRelation::Encode(rel);
  for (size_t c = 0; c < rel.num_columns(); ++c) {
    for (size_t r = 0; r < rel.num_rows(); ++r) {
      for (size_t s = 0; s < rel.num_rows(); ++s) {
        const Value& a = rel.at(r, c);
        const Value& b = rel.at(s, c);
        if (a.is_null() || b.is_null()) continue;
        uint32_t ca = encoded.code_at(r, c);
        uint32_t cb = encoded.code_at(s, c);
        EXPECT_EQ(a < b, ca < cb);
        EXPECT_EQ(a == b, ca == cb);
      }
    }
  }
}

TEST(EncodedRelationTest, DictionaryMatchesFrequencyTable) {
  Relation rel = datasets::Employee();
  EncodedRelation encoded = EncodedRelation::Encode(rel);
  for (size_t c = 0; c < rel.num_columns(); ++c) {
    auto table = BuildFrequencyTable(rel, c);
    ASSERT_TRUE(table.ok());
    const ColumnDictionary& dict = encoded.dictionary(c);
    ASSERT_EQ(table->values.size(), dict.num_distinct());
    EXPECT_EQ(table->values, dict.DistinctValues());
    for (uint32_t code = 1; code < dict.num_codes(); ++code) {
      EXPECT_EQ(table->counts[code - 1], dict.count(code));
    }
  }
}

TEST(EncodedRelationTest, DomainsMatchExtractDomain) {
  for (const Relation& rel :
       {datasets::Employee(), datasets::Echocardiogram(), Synthetic50(3)}) {
    EncodedRelation encoded = EncodedRelation::Encode(rel);
    for (size_t c = 0; c < rel.num_columns(); ++c) {
      auto expected = ExtractDomain(rel, c);
      auto actual = encoded.DomainOf(c);
      ASSERT_EQ(expected.ok(), actual.ok());
      if (expected.ok()) EXPECT_EQ(*expected, *actual);
    }
  }
}

TEST(EncodedRelationTest, FingerprintIsStableAndContentSensitive) {
  Relation a = Synthetic50(5);
  Relation b = Synthetic50(5);
  Relation c = Synthetic50(6);
  EXPECT_EQ(EncodedRelation::Encode(a).Fingerprint(),
            EncodedRelation::Encode(b).Fingerprint());
  EXPECT_NE(EncodedRelation::Encode(a).Fingerprint(),
            EncodedRelation::Encode(c).Fingerprint());
}

TEST(EncodedRelationTest, DistributionsMatchValuePath) {
  Relation rel = Synthetic50(11);
  EncodedRelation encoded = EncodedRelation::Encode(rel);
  for (size_t c = 0; c < rel.num_columns(); ++c) {
    auto value_path = ValueDistribution::FromColumn(rel, c, 8);
    auto code_path = ValueDistribution::FromEncoded(encoded, c, 8);
    ASSERT_TRUE(value_path.ok());
    ASSERT_TRUE(code_path.ok());
    EXPECT_TRUE(*value_path == *code_path);
  }
}

// --- Value-path vs code-path agreement ---------------------------------------

TEST(EncodingAgreementTest, SingleColumnPlisAgree) {
  for (const Relation& rel :
       {TestRelation(), datasets::Employee(), datasets::Echocardiogram(),
        Synthetic50(13)}) {
    EncodedRelation encoded = EncodedRelation::Encode(rel);
    for (size_t c = 0; c < rel.num_columns(); ++c) {
      PositionListIndex value_path =
          PositionListIndex::FromColumn(rel.column(c));
      PositionListIndex code_path = PositionListIndex::FromCodes(
          encoded.codes(c), encoded.dictionary(c).num_codes());
      EXPECT_EQ(Canonical(value_path), Canonical(code_path));
      EXPECT_EQ(value_path.num_rows(), code_path.num_rows());
    }
  }
}

TEST(EncodingAgreementTest, MultiColumnPlisAgree) {
  for (const Relation& rel :
       {TestRelation(), datasets::Employee(), Synthetic50(17)}) {
    EncodedRelation encoded = EncodedRelation::Encode(rel);
    for (size_t a = 0; a < rel.num_columns(); ++a) {
      for (size_t b = a + 1; b < rel.num_columns(); ++b) {
        PositionListIndex value_path =
            PositionListIndex::FromColumns(rel, {a, b});
        PositionListIndex code_path =
            PositionListIndex::FromEncoded(encoded, {a, b});
        EXPECT_EQ(Canonical(value_path), Canonical(code_path));
      }
    }
  }
}

TEST(EncodingAgreementTest, OdAndOfdValidationAgrees) {
  for (const Relation& rel :
       {TestRelation(), datasets::Employee(), datasets::Echocardiogram(),
        Synthetic50(19)}) {
    EncodedRelation encoded = EncodedRelation::Encode(rel);
    for (size_t x = 0; x < rel.num_columns(); ++x) {
      for (size_t y = 0; y < rel.num_columns(); ++y) {
        if (x == y) continue;
        EXPECT_EQ(ValidateOd(rel, x, y), ValidateOd(encoded, x, y))
            << "OD " << x << " -> " << y;
        EXPECT_EQ(ValidateOfd(rel, x, y), ValidateOfd(encoded, x, y))
            << "OFD " << x << " -> " << y;
      }
    }
  }
}

TEST(EncodingAgreementTest, MinimalDeltaAgrees) {
  Relation rel = datasets::Echocardiogram();
  EncodedRelation encoded = EncodedRelation::Encode(rel);
  std::vector<size_t> continuous =
      rel.schema().IndicesOf(SemanticType::kContinuous);
  ASSERT_GE(continuous.size(), 2u);
  for (size_t x : continuous) {
    for (size_t y : continuous) {
      if (x == y) continue;
      auto value_path = ComputeMinimalDelta(rel, x, y, 2.0);
      auto code_path = ComputeMinimalDelta(encoded, x, y, 2.0);
      ASSERT_EQ(value_path.ok(), code_path.ok());
      if (value_path.ok()) EXPECT_DOUBLE_EQ(*value_path, *code_path);
    }
  }
}

TEST(EncodingAgreementTest, DiscoveryOutputIsIdentical) {
  for (const Relation& rel :
       {datasets::Employee(), datasets::Echocardiogram(),
        Synthetic50(23)}) {
    EncodedRelation encoded = EncodedRelation::Encode(rel);
    DiscoveryOptions options;
    options.discover_afds = true;
    auto from_relation = ProfileRelation(rel, options);
    auto from_encoded = ProfileRelation(encoded, options);
    ASSERT_TRUE(from_relation.ok());
    ASSERT_TRUE(from_encoded.ok());
    EXPECT_EQ(DependencyStrings(from_relation->metadata.dependencies,
                                rel.schema()),
              DependencyStrings(from_encoded->metadata.dependencies,
                                rel.schema()));
    EXPECT_EQ(from_relation->metadata.domains.size(),
              from_encoded->metadata.domains.size());
    ASSERT_EQ(from_relation->search_stats.size(),
              from_encoded->search_stats.size());
    for (size_t i = 0; i < from_relation->search_stats.size(); ++i) {
      EXPECT_EQ(from_relation->search_stats[i].search,
                from_encoded->search_stats[i].search);
      EXPECT_EQ(from_relation->search_stats[i].stats.nodes_visited,
                from_encoded->search_stats[i].stats.nodes_visited);
      EXPECT_EQ(
          from_relation->search_stats[i].stats.validator_invocations,
          from_encoded->search_stats[i].stats.validator_invocations);
    }
  }
}

TEST(EncodingAgreementTest, UniqueRowsAgreesWithRelationOverload) {
  Relation rel = datasets::Employee();
  EncodedRelation encoded = EncodedRelation::Encode(rel);
  for (size_t c = 0; c < rel.num_columns(); ++c) {
    auto value_path = UniqueRows(rel, AttributeSet::Single(c));
    auto code_path = UniqueRows(encoded, AttributeSet::Single(c));
    ASSERT_TRUE(value_path.ok());
    ASSERT_TRUE(code_path.ok());
    EXPECT_EQ(*value_path, *code_path);
  }
}

// --- PliCache keying ---------------------------------------------------------

TEST(PliCacheKeyTest, KeyedByFingerprintAndAttributeSet) {
  Relation rel = Synthetic50(29);
  EncodedRelation encoded = EncodedRelation::Encode(rel);
  PliCache cache(&encoded);
  EXPECT_EQ(cache.fingerprint(), encoded.Fingerprint());
  const PositionListIndex* a = cache.Get(AttributeSet::Of({0, 1}));
  const PositionListIndex* b = cache.Get(AttributeSet::Of({0, 1}));
  EXPECT_EQ(a, b);  // cached, not rebuilt

  // A cache built from the raw relation owns an equivalent encoding.
  PliCache from_relation(&rel);
  EXPECT_EQ(from_relation.fingerprint(), encoded.Fingerprint());
  EXPECT_EQ(Canonical(*from_relation.Get(AttributeSet::Of({0, 1}))),
            Canonical(*a));
}

}  // namespace
}  // namespace metaleak
