// Risk estimator layer tests.
//
// Pins the tentpole contract of the estimator refactor: (1) the
// Def 2.2/2.3 results streamed through MatchRateEstimator are
// bit-identical to the pre-refactor fused scan on every method, on both
// execution paths, at 1 and 8 threads, and regardless of which registry
// runs alongside; (2) the info-theoretic estimator reproduces
// closed-form entropy / conditional-entropy / mutual-information
// answers on planted fixtures; (3) the NN-linkage adversary scores
// known-answer batches exactly; (4) the measure columns flow through
// replay and the profile diff. Runs under TSan in CI next to the
// leakage_codepath suite.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/math_util.h"
#include "data/datasets/employee.h"
#include "data/domain.h"
#include "data/encoded_batch.h"
#include "data/encoded_relation.h"
#include "data/relation.h"
#include "discovery/discovery_engine.h"
#include "metadata/metadata_package.h"
#include "metadata/value_distribution.h"
#include "privacy/experiment.h"
#include "privacy/leakage_delta.h"
#include "privacy/risk_estimator.h"

namespace metaleak {
namespace {

const std::vector<GenerationMethod> kAllMethods = {
    GenerationMethod::kRandom, GenerationMethod::kFd,
    GenerationMethod::kAfd,    GenerationMethod::kNd,
    GenerationMethod::kOd,     GenerationMethod::kDd,
    GenerationMethod::kOfd,    GenerationMethod::kCfd,
};

// EXPECT_EQ on doubles is exact equality — the bit-identity contract.
void ExpectLegacyFieldsIdentical(const std::vector<MethodResult>& a,
                                 const std::vector<MethodResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t m = 0; m < a.size(); ++m) {
    SCOPED_TRACE(GenerationMethodToString(a[m].method));
    EXPECT_EQ(a[m].method, b[m].method);
    EXPECT_EQ(a[m].round_seeds, b[m].round_seeds);
    ASSERT_EQ(a[m].attributes.size(), b[m].attributes.size());
    for (size_t c = 0; c < a[m].attributes.size(); ++c) {
      const MethodAttributeResult& x = a[m].attributes[c];
      const MethodAttributeResult& y = b[m].attributes[c];
      SCOPED_TRACE(x.name);
      EXPECT_EQ(x.covered, y.covered);
      EXPECT_EQ(x.mean_matches, y.mean_matches);
      EXPECT_EQ(x.stddev_matches, y.stddev_matches);
      ASSERT_EQ(x.mean_mse.has_value(), y.mean_mse.has_value());
      if (x.mean_mse.has_value()) {
        EXPECT_EQ(*x.mean_mse, *y.mean_mse);
      }
    }
  }
}

// --- Golden parity: MatchRateEstimator == pre-refactor fused scan ------------

TEST(RiskEstimatorTest, MatchRateGoldenParityAcrossPathsThreadsRegistries) {
  Relation employee = datasets::Employee();
  DiscoveryOptions options;
  options.discover_cfds = true;  // exercise the encoded CFD repair pass
  auto report = ProfileRelation(employee, options);
  ASSERT_TRUE(report.ok());

  ExperimentConfig config;
  config.rounds = 12;
  std::vector<std::vector<MethodResult>> sweeps;
  for (const RiskEstimatorRegistry* registry :
       {&RiskEstimatorRegistry::Default(), &RiskEstimatorRegistry::All()}) {
    for (bool value_path : {false, true}) {
      for (size_t threads : {1u, 8u}) {
        config.estimators = registry;
        config.use_value_path = value_path;
        config.threads = threads;
        auto result =
            RunExperiment(employee, report->metadata, kAllMethods, config);
        ASSERT_TRUE(result.ok()) << result.status().ToString();
        sweeps.push_back(std::move(*result));
      }
    }
  }
  // All 8 sweeps (2 registries x 2 paths x 2 thread counts) agree on
  // the legacy Def 2.2/2.3 fields bit for bit.
  for (size_t i = 1; i < sweeps.size(); ++i) {
    SCOPED_TRACE(i);
    ExpectLegacyFieldsIdentical(sweeps[0], sweeps[i]);
  }
  // And inside every sweep, the match-rate measure columns ARE the
  // legacy fields — one assembly of the same Welford fold.
  for (const std::vector<MethodResult>& sweep : sweeps) {
    for (const MethodResult& result : sweep) {
      SCOPED_TRACE(GenerationMethodToString(result.method));
      ASSERT_GE(result.measures.size(), 2u);
      const RiskMeasureStats& matches =
          result.measures[MatchRateEstimator::kMatchesIndex];
      const RiskMeasureStats& mse =
          result.measures[MatchRateEstimator::kMseIndex];
      EXPECT_EQ(matches.estimator, "match_rate");
      EXPECT_EQ(matches.measure, "matches");
      EXPECT_TRUE(matches.active);
      ASSERT_EQ(matches.mean.size(), result.attributes.size());
      for (size_t c = 0; c < result.attributes.size(); ++c) {
        EXPECT_EQ(matches.mean[c], result.attributes[c].mean_matches);
        EXPECT_EQ(matches.stddev[c], result.attributes[c].stddev_matches);
        EXPECT_EQ(matches.rounds[c], config.rounds);
        ASSERT_EQ(mse.rounds[c] > 0,
                  result.attributes[c].mean_mse.has_value());
        if (mse.rounds[c] > 0) {
          EXPECT_EQ(mse.mean[c], *result.attributes[c].mean_mse);
        }
      }
    }
  }
}

TEST(RiskEstimatorTest, BeyondMatchRateEstimatorsInactiveOnValuePath) {
  Relation employee = datasets::Employee();
  auto report = ProfileRelation(employee);
  ASSERT_TRUE(report.ok());

  ExperimentConfig config;
  config.rounds = 4;
  config.estimators = &RiskEstimatorRegistry::All();
  auto code = RunMethod(employee, report->metadata, GenerationMethod::kFd,
                        config);
  config.use_value_path = true;
  auto value = RunMethod(employee, report->metadata, GenerationMethod::kFd,
                         config);
  ASSERT_TRUE(code.ok() && value.ok());
  ASSERT_EQ(code->measures.size(), RiskEstimatorRegistry::All().total_measures());
  ASSERT_EQ(value->measures.size(), code->measures.size());
  for (size_t j = 2; j < code->measures.size(); ++j) {
    SCOPED_TRACE(code->measures[j].estimator + "/" +
                 code->measures[j].measure);
    EXPECT_TRUE(code->measures[j].active);
    EXPECT_FALSE(value->measures[j].active);
  }
  // The value-path fallback still fills the match-rate columns.
  EXPECT_TRUE(value->measures[0].active);
  EXPECT_TRUE(value->measures[1].active);
}

TEST(RiskEstimatorTest, RegistryMustLeadWithMatchRate) {
  Relation employee = datasets::Employee();
  auto report = ProfileRelation(employee);
  ASSERT_TRUE(report.ok());
  RiskEstimatorRegistry bad({&InfoTheoreticEstimator::Instance()});
  ExperimentConfig config;
  config.rounds = 1;
  config.estimators = &bad;
  auto result =
      RunMethod(employee, report->metadata, GenerationMethod::kRandom, config);
  EXPECT_FALSE(result.ok());
}

// --- Closed-form fixtures ----------------------------------------------------

// One categorical column: 8 values, 2 rows each -> H = 3 bits exactly.
Relation UniformEight() {
  Schema schema({{"x", DataType::kInt64, SemanticType::kCategorical}});
  std::vector<Value> col;
  for (int v = 0; v < 8; ++v) {
    col.push_back(Value::Int(v));
    col.push_back(Value::Int(v));
  }
  return std::move(Relation::Make(schema, {std::move(col)})).ValueOrDie();
}

MetadataPackage PackageFor(const Relation& relation) {
  MetadataPackage metadata;
  metadata.schema = relation.schema();
  metadata.num_rows = relation.num_rows();
  auto domains = ExtractDomains(relation);
  for (Domain& d : *domains) metadata.domains.push_back(std::move(d));
  return metadata;
}

TEST(RiskEstimatorTest, EntropyMatchesClosedFormAndValueDistribution) {
  Relation relation = UniformEight();
  EncodedRelation encoded = EncodedRelation::Encode(relation);
  MetadataPackage metadata = PackageFor(relation);

  auto measures = ComputeProfileMeasures(encoded, metadata);
  ASSERT_TRUE(measures.ok());
  ASSERT_EQ(measures->size(), 2u);
  EXPECT_EQ((*measures)[0].measure, "entropy_bits");
  ASSERT_EQ((*measures)[0].cells.size(), 1u);
  ASSERT_TRUE((*measures)[0].cells[0].present);
  EXPECT_DOUBLE_EQ((*measures)[0].cells[0].value, 3.0);
  // No disclosed dependency covers x: no conditional-entropy bound.
  EXPECT_EQ((*measures)[1].measure, "cond_entropy_bits");
  EXPECT_FALSE((*measures)[1].cells[0].present);

  // Satellite: the disclosed-distribution accessor shares the same
  // ShannonEntropyBits definition, so the numbers agree exactly.
  auto dist = ValueDistribution::FromEncoded(encoded, 0);
  ASSERT_TRUE(dist.ok());
  EXPECT_DOUBLE_EQ(dist->EntropyBits(), 3.0);
  EXPECT_EQ(dist->EntropyBits(), (*measures)[0].cells[0].value);
}

TEST(RiskEstimatorTest, ConditionalEntropyClosedForm) {
  // a has 2 values; b = 2*a + coin with balanced counts:
  // H(b) = 2 bits, H(b | a) = 1 bit. c = f(a): H(c | a) = 0.
  Schema schema({{"a", DataType::kInt64, SemanticType::kCategorical},
                 {"b", DataType::kInt64, SemanticType::kCategorical},
                 {"c", DataType::kInt64, SemanticType::kCategorical}});
  std::vector<Value> a, b, c;
  for (int i = 0; i < 8; ++i) {
    const int av = i / 4;        // 0,0,0,0,1,1,1,1
    const int coin = i % 2;      // alternating
    a.push_back(Value::Int(av));
    b.push_back(Value::Int(2 * av + coin));
    c.push_back(Value::Int(10 + av));
  }
  auto relation = Relation::Make(
      schema, {std::move(a), std::move(b), std::move(c)});
  ASSERT_TRUE(relation.ok());
  EncodedRelation encoded = EncodedRelation::Encode(*relation);
  MetadataPackage metadata = PackageFor(*relation);
  Dependency a_to_b;
  a_to_b.lhs = AttributeSet::Single(0);
  a_to_b.rhs = 1;
  metadata.dependencies.Add(a_to_b);
  Dependency a_to_c;
  a_to_c.lhs = AttributeSet::Single(0);
  a_to_c.rhs = 2;
  metadata.dependencies.Add(a_to_c);

  auto measures = ComputeProfileMeasures(encoded, metadata);
  ASSERT_TRUE(measures.ok());
  const RiskProfileMeasure& cond = (*measures)[1];
  ASSERT_EQ(cond.cells.size(), 3u);
  EXPECT_FALSE(cond.cells[0].present);  // nothing determines a
  ASSERT_TRUE(cond.cells[1].present);
  EXPECT_NEAR(cond.cells[1].value, 1.0, 1e-12);
  ASSERT_TRUE(cond.cells[2].present);
  EXPECT_NEAR(cond.cells[2].value, 0.0, 1e-12);
}

// Builds a one-code-column batch whose row r carries the domain code of
// `values[r]` (codes are 1 + index into the sorted domain).
EncodedBatch BatchOfCodes(const Domain& domain,
                          const std::vector<Value>& values) {
  EncodedBatch batch;
  batch.Configure({EncodedBatch::ColumnKind::kCodes},
                  CodeWidthsForDomains({domain}));
  batch.ResetRows(values.size());
  for (size_t r = 0; r < values.size(); ++r) {
    uint32_t code = 0;
    for (size_t i = 0; i < domain.values().size(); ++i) {
      if (domain.values()[i] == values[r]) {
        code = static_cast<uint32_t>(i + 1);
        break;
      }
    }
    batch.set_code(0, r, code);  // 0 (= NULL) only if the value is foreign
  }
  return batch;
}

TEST(RiskEstimatorTest, MutualInformationIdentityAndIndependence) {
  Relation relation = UniformEight();
  EncodedRelation encoded = EncodedRelation::Encode(relation);
  MetadataPackage metadata = PackageFor(relation);

  RiskContext ctx;
  ctx.real = &encoded;
  ctx.syn_schema = &relation.schema();
  std::vector<Domain> domains = {*metadata.domains[0]};
  ctx.domains = &domains;
  ctx.metadata = &metadata;
  auto bound = InfoTheoreticEstimator::Instance().Bind(ctx);
  ASSERT_TRUE(bound.ok());

  const size_t m = 1;
  std::vector<RiskMeasureCell> cells(3 * m);

  // Generated == real, row for row: MI(X; X) = H(X) = 3 bits.
  EncodedBatch copy = BatchOfCodes(domains[0], relation.column(0));
  ASSERT_TRUE((*bound)->Evaluate(copy, cells.data()).ok());
  ASSERT_TRUE(cells[InfoTheoreticEstimator::kMiIndex].present);
  EXPECT_NEAR(cells[InfoTheoreticEstimator::kMiIndex].value, 3.0, 1e-9);
  ASSERT_TRUE(cells[InfoTheoreticEstimator::kEntropyIndex].present);
  EXPECT_DOUBLE_EQ(cells[InfoTheoreticEstimator::kEntropyIndex].value, 3.0);

  // Generated constant: MI(X; const) = 0 exactly.
  std::vector<Value> constant(relation.num_rows(), Value::Int(3));
  EncodedBatch flat = BatchOfCodes(domains[0], constant);
  ASSERT_TRUE((*bound)->Evaluate(flat, cells.data()).ok());
  EXPECT_NEAR(cells[InfoTheoreticEstimator::kMiIndex].value, 0.0, 1e-12);
}

TEST(RiskEstimatorTest, NnLinkageKnownAnswers) {
  Schema schema({{"num", DataType::kDouble, SemanticType::kContinuous},
                 {"cat", DataType::kInt64, SemanticType::kCategorical}});
  std::vector<Value> num, cat;
  const size_t n = 10;
  for (size_t r = 0; r < n; ++r) {
    num.push_back(Value::Real(static_cast<double>(r) * 10.0));
    cat.push_back(Value::Int(static_cast<int64_t>(r % 2)));
  }
  auto relation = Relation::Make(schema, {std::move(num), std::move(cat)});
  ASSERT_TRUE(relation.ok());
  EncodedRelation encoded = EncodedRelation::Encode(*relation);
  MetadataPackage metadata = PackageFor(*relation);

  RiskContext ctx;
  ctx.real = &encoded;
  ctx.syn_schema = &relation->schema();
  std::vector<Domain> domains = {*metadata.domains[0], *metadata.domains[1]};
  ctx.domains = &domains;
  ctx.metadata = &metadata;
  ctx.leakage.absolute_epsilon = 0.5;
  auto bound = NnLinkageEstimator::Instance().Bind(ctx);
  ASSERT_TRUE(bound.ok());

  const size_t m = 2;
  std::vector<RiskMeasureCell> cells(2 * m);
  EncodedBatch batch;
  batch.Configure(ColumnKindsForDomains(domains),
                  CodeWidthsForDomains(domains));
  batch.ResetRows(n);

  // Generated == real: every epsilon ball hits and every aligned draw
  // ties the nearest neighbor.
  for (size_t r = 0; r < n; ++r) {
    batch.reals(0)[r] = static_cast<double>(r) * 10.0;
    batch.set_code(1, r, 1 + static_cast<uint32_t>(r % 2));
  }
  ASSERT_TRUE((*bound)->Evaluate(batch, cells.data()).ok());
  const RiskMeasureCell& eps0 =
      cells[NnLinkageEstimator::kEpsMatchesIndex * m + 0];
  const RiskMeasureCell& top0 =
      cells[NnLinkageEstimator::kTop1HitsIndex * m + 0];
  ASSERT_TRUE(eps0.present && top0.present);
  EXPECT_DOUBLE_EQ(eps0.value, static_cast<double>(n));
  EXPECT_DOUBLE_EQ(top0.value, static_cast<double>(n));
  // Categorical attribute: the adversary does not apply.
  EXPECT_FALSE(cells[NnLinkageEstimator::kEpsMatchesIndex * m + 1].present);
  EXPECT_FALSE(cells[NnLinkageEstimator::kTop1HitsIndex * m + 1].present);

  // Generated shifted far outside every epsilon ball: zero links, and
  // only row 0's aligned draw still ties the (distant) nearest
  // neighbor.
  for (size_t r = 0; r < n; ++r) {
    batch.reals(0)[r] = static_cast<double>(r) * 10.0 + 1000.0;
  }
  ASSERT_TRUE((*bound)->Evaluate(batch, cells.data()).ok());
  EXPECT_DOUBLE_EQ(eps0.value, 0.0);
  EXPECT_DOUBLE_EQ(top0.value, 1.0);
}

// --- Replay and profile diff -------------------------------------------------

TEST(RiskEstimatorTest, ReplayRoundMeasuresReconstructsAggregates) {
  Relation employee = datasets::Employee();
  auto report = ProfileRelation(employee);
  ASSERT_TRUE(report.ok());
  ExperimentEngine engine(employee, report->metadata);

  ExperimentConfig config;
  config.rounds = 8;
  config.estimators = &RiskEstimatorRegistry::All();
  auto result = engine.Run(GenerationMethod::kFd, config);
  ASSERT_TRUE(result.ok());
  const size_t m = result->attributes.size();
  const size_t total = result->measures.size();

  std::vector<std::vector<WelfordAccumulator>> acc(
      total, std::vector<WelfordAccumulator>(m));
  for (uint64_t seed : result->round_seeds) {
    auto round = engine.ReplayRoundMeasures(GenerationMethod::kFd, seed,
                                            config);
    ASSERT_TRUE(round.ok());
    ASSERT_EQ(round->size(), total);
    for (size_t j = 0; j < total; ++j) {
      EXPECT_EQ((*round)[j].estimator, result->measures[j].estimator);
      EXPECT_EQ((*round)[j].measure, result->measures[j].measure);
      ASSERT_EQ((*round)[j].cells.size(), m);
      for (size_t c = 0; c < m; ++c) {
        if ((*round)[j].cells[c].present) {
          acc[j][c].Add((*round)[j].cells[c].value);
        }
      }
    }
  }
  for (size_t j = 0; j < total; ++j) {
    SCOPED_TRACE(result->measures[j].estimator + "/" +
                 result->measures[j].measure);
    for (size_t c = 0; c < m; ++c) {
      EXPECT_EQ(acc[j][c].count(), result->measures[j].rounds[c]);
      if (acc[j][c].count() > 0) {
        EXPECT_EQ(acc[j][c].mean(), result->measures[j].mean[c]);
        EXPECT_EQ(acc[j][c].stddev(), result->measures[j].stddev[c]);
      }
    }
  }
}

TEST(RiskEstimatorTest, ProfileDiffTracksMeasureDrift) {
  Relation before_rel = UniformEight();
  // After: collapse the column to 2 values — entropy drops 3 -> 1.
  Schema schema = before_rel.schema();
  std::vector<Value> col;
  for (int i = 0; i < 16; ++i) col.push_back(Value::Int(i % 2));
  auto after_rel = Relation::Make(schema, {std::move(col)});
  ASSERT_TRUE(after_rel.ok());

  EncodedRelation before_enc = EncodedRelation::Encode(before_rel);
  EncodedRelation after_enc = EncodedRelation::Encode(*after_rel);
  MetadataPackage before_meta = PackageFor(before_rel);
  MetadataPackage after_meta = PackageFor(*after_rel);

  LeakageOptions leakage;
  auto before = ComputeLeakageProfile(before_enc, before_meta, leakage);
  auto after = ComputeLeakageProfile(after_enc, after_meta, leakage);
  ASSERT_TRUE(before.ok() && after.ok());
  ASSERT_EQ(before->risk_measures.size(), 2u);

  auto delta = DiffLeakageProfiles(*before, *after);
  ASSERT_TRUE(delta.ok());
  EXPECT_FALSE(delta->empty());
  bool entropy_drifted = false;
  for (const MeasureDrift& drift : delta->measure_drifts) {
    if (drift.measure == "entropy_bits" && drift.attribute == 0) {
      entropy_drifted = true;
      EXPECT_DOUBLE_EQ(drift.before.value, 3.0);
      EXPECT_DOUBLE_EQ(drift.after.value, 1.0);
    }
  }
  EXPECT_TRUE(entropy_drifted);
  const std::string text = delta->ToString(before->schema);
  EXPECT_NE(text.find("entropy_bits"), std::string::npos);

  // Identical profiles produce no measure drift.
  auto self = DiffLeakageProfiles(*before, *before);
  ASSERT_TRUE(self.ok());
  EXPECT_TRUE(self->measure_drifts.empty());
}

TEST(RiskEstimatorTest, RegistryShapes) {
  EXPECT_EQ(RiskEstimatorRegistry::Default().estimators().size(), 1u);
  EXPECT_EQ(RiskEstimatorRegistry::Default().total_measures(), 2u);
  EXPECT_EQ(RiskEstimatorRegistry::All().estimators().size(), 3u);
  EXPECT_EQ(RiskEstimatorRegistry::All().total_measures(), 7u);
  EXPECT_EQ(RiskEstimatorRegistry::All().estimators()[0]->name(),
            "match_rate");
}

}  // namespace
}  // namespace metaleak
