// Tests for the distribution-disclosure extension: packaging, wire
// round-trip, restriction, and the leakage increase it causes — the
// reason the paper's model keeps distributions private.
#include <gtest/gtest.h>

#include "common/random.h"
#include "data/datasets/echocardiogram.h"
#include "discovery/discovery_engine.h"
#include "generation/generation_engine.h"
#include "metadata/metadata_package.h"
#include "privacy/experiment.h"
#include "privacy/leakage.h"

namespace metaleak {
namespace {

Relation SkewedRelation(size_t rows) {
  // 90% of rows carry value "hot", the rest spread over 9 cold values.
  Schema schema({{"c", DataType::kString, SemanticType::kCategorical}});
  RelationBuilder b(schema);
  Rng rng(5);
  for (size_t r = 0; r < rows; ++r) {
    if (rng.Bernoulli(0.9)) {
      b.AddRow({Value::Str("hot")});
    } else {
      b.AddRow({Value::Str("cold" + std::to_string(rng.UniformIndex(9)))});
    }
  }
  return std::move(b.Finish()).ValueOrDie();
}

TEST(DistributionDisclosureTest, ProfileFillsDistributionsWhenEnabled) {
  Relation r = datasets::Echocardiogram();
  DiscoveryOptions options;
  options.profile_distributions = true;
  auto report = ProfileRelation(r, options);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->metadata.distributions.size(), r.num_columns());
  for (const auto& d : report->metadata.distributions) {
    EXPECT_TRUE(d.has_value());
  }

  DiscoveryOptions off;
  auto without = ProfileRelation(r, off);
  ASSERT_TRUE(without.ok());
  for (const auto& d : without->metadata.distributions) {
    EXPECT_FALSE(d.has_value());
  }
}

TEST(DistributionDisclosureTest, RestrictStripsBelowTopLevel) {
  Relation r = datasets::Echocardiogram();
  DiscoveryOptions options;
  options.profile_distributions = true;
  auto report = ProfileRelation(r, options);
  ASSERT_TRUE(report.ok());

  MetadataPackage rfds =
      report->metadata.Restrict(DisclosureLevel::kWithRfds);
  for (const auto& d : rfds.distributions) EXPECT_FALSE(d.has_value());

  MetadataPackage full =
      report->metadata.Restrict(DisclosureLevel::kWithDistributions);
  for (const auto& d : full.distributions) EXPECT_TRUE(d.has_value());
}

TEST(DistributionDisclosureTest, SerializationRoundTrip) {
  Relation r = datasets::Echocardiogram();
  DiscoveryOptions options;
  options.profile_distributions = true;
  options.distribution_buckets = 8;
  auto report = ProfileRelation(r, options);
  ASSERT_TRUE(report.ok());
  std::string wire = report->metadata.Serialize();
  auto parsed = MetadataPackage::Deserialize(wire);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->distributions.size(),
            report->metadata.distributions.size());
  for (size_t c = 0; c < parsed->distributions.size(); ++c) {
    ASSERT_TRUE(parsed->distributions[c].has_value()) << "attr " << c;
    EXPECT_EQ(*parsed->distributions[c],
              *report->metadata.distributions[c])
        << "attr " << c;
  }
}

TEST(DistributionDisclosureTest, SkewedDistributionRaisesLeakage) {
  // On skewed data the distribution-aware adversary matches far more
  // often than the uniform-domain adversary: sum p_i^2 vs 1/|D|.
  Relation real = SkewedRelation(400);
  DiscoveryOptions options;
  options.profile_distributions = true;
  auto report = ProfileRelation(real, options);
  ASSERT_TRUE(report.ok());

  ExperimentConfig config;
  config.rounds = 300;

  // Uniform adversary: distributions stripped.
  MetadataPackage uniform =
      report->metadata.Restrict(DisclosureLevel::kWithRfds);
  auto uniform_result =
      RunMethod(real, uniform, GenerationMethod::kRandom, config);
  ASSERT_TRUE(uniform_result.ok());

  // Distribution-aware adversary.
  auto aware_result = RunMethod(real, report->metadata,
                                GenerationMethod::kRandom, config);
  ASSERT_TRUE(aware_result.ok());

  double uniform_matches = uniform_result->attributes[0].mean_matches;
  double aware_matches = aware_result->attributes[0].mean_matches;
  // Analytically: uniform ~ N/10 = 40; aware ~ N * sum p^2 ~ 325.
  EXPECT_GT(aware_matches, 2.0 * uniform_matches);
}

TEST(DistributionDisclosureTest, UseDistributionsFlagControlsBehaviour) {
  Relation real = SkewedRelation(400);
  DiscoveryOptions options;
  options.profile_distributions = true;
  auto report = ProfileRelation(real, options);
  ASSERT_TRUE(report.ok());

  ExperimentConfig config;
  config.rounds = 200;
  Rng rng_a(1);
  Rng rng_b(1);
  GenerationOptions with;
  with.ignore_dependencies = true;
  GenerationOptions without = with;
  without.use_distributions = false;

  auto gen_with =
      GenerateSynthetic(report->metadata, 400, &rng_a, with);
  auto gen_without =
      GenerateSynthetic(report->metadata, 400, &rng_b, without);
  ASSERT_TRUE(gen_with.ok() && gen_without.ok());

  auto leak_with = EvaluateLeakage(real, gen_with->relation);
  auto leak_without = EvaluateLeakage(real, gen_without->relation);
  ASSERT_TRUE(leak_with.ok() && leak_without.ok());
  EXPECT_GT(leak_with->attributes[0].matches,
            leak_without->attributes[0].matches);
}

}  // namespace
}  // namespace metaleak
