// Tests for src/generation: each generator must produce columns that
// satisfy the dependency class that drove them — the core soundness
// property of the adversary model — plus engine-level behaviour.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "common/random.h"
#include "data/datasets/employee.h"
#include "data/domain.h"
#include "discovery/discovery_engine.h"
#include "discovery/validators.h"
#include "generation/column_generators.h"
#include "generation/generation_engine.h"

namespace metaleak {
namespace {

Domain SmallCatDomain() {
  return Domain::Categorical({Value::Str("a"), Value::Str("b"),
                              Value::Str("c"), Value::Str("d"),
                              Value::Str("e")});
}

// --- Root generation -----------------------------------------------------------

TEST(ColumnGeneratorsTest, RootStaysInDomain) {
  Rng rng(1);
  Domain domain = SmallCatDomain();
  std::vector<Value> col = GenerateRootColumn(domain, 500, &rng);
  ASSERT_EQ(col.size(), 500u);
  for (const Value& v : col) EXPECT_TRUE(domain.Contains(v));
}

TEST(ColumnGeneratorsTest, RootIsRoughlyUniform) {
  Rng rng(2);
  Domain domain = SmallCatDomain();
  std::vector<Value> col = GenerateRootColumn(domain, 20000, &rng);
  std::unordered_map<Value, size_t> counts;
  for (const Value& v : col) counts[v]++;
  for (const Value& v : domain.values()) {
    EXPECT_NEAR(static_cast<double>(counts[v]) / 20000.0, 0.2, 0.02);
  }
}

// --- FD generation ----------------------------------------------------------------

TEST(ColumnGeneratorsTest, FdColumnIsFunctionOfLhs) {
  Rng rng(3);
  Domain lhs_domain = SmallCatDomain();
  Domain rhs_domain = Domain::Categorical({Value::Int(1), Value::Int(2),
                                           Value::Int(3)});
  std::vector<Value> lhs = GenerateRootColumn(lhs_domain, 300, &rng);
  std::vector<Value> rhs =
      GenerateFdColumn({&lhs}, rhs_domain, 300, &rng);
  std::unordered_map<Value, Value> mapping;
  for (size_t r = 0; r < lhs.size(); ++r) {
    auto it = mapping.find(lhs[r]);
    if (it == mapping.end()) {
      mapping.emplace(lhs[r], rhs[r]);
    } else {
      EXPECT_EQ(it->second, rhs[r]) << "FD violated at row " << r;
    }
    EXPECT_TRUE(rhs_domain.Contains(rhs[r]));
  }
}

TEST(ColumnGeneratorsTest, FdEmptyLhsIsConstantColumn) {
  Rng rng(4);
  Domain domain = SmallCatDomain();
  std::vector<Value> col = GenerateFdColumn({}, domain, 50, &rng);
  for (const Value& v : col) EXPECT_EQ(v, col[0]);
}

TEST(ColumnGeneratorsTest, FdCompositeLhsMapping) {
  Rng rng(5);
  Domain d = Domain::Categorical({Value::Int(0), Value::Int(1)});
  std::vector<Value> a = GenerateRootColumn(d, 200, &rng);
  std::vector<Value> b = GenerateRootColumn(d, 200, &rng);
  Domain target = SmallCatDomain();
  std::vector<Value> y = GenerateFdColumn({&a, &b}, target, 200, &rng);
  std::map<std::pair<std::string, std::string>, Value> mapping;
  for (size_t r = 0; r < y.size(); ++r) {
    auto key = std::make_pair(a[r].ToString(), b[r].ToString());
    auto it = mapping.find(key);
    if (it == mapping.end()) {
      mapping.emplace(key, y[r]);
    } else {
      EXPECT_EQ(it->second, y[r]);
    }
  }
}

// --- AFD generation ----------------------------------------------------------------

TEST(ColumnGeneratorsTest, AfdViolationRateNearG3) {
  Rng rng(6);
  Domain lhs_domain = Domain::Categorical({Value::Int(0), Value::Int(1)});
  Domain rhs_domain = SmallCatDomain();
  const size_t n = 20000;
  std::vector<Value> lhs = GenerateRootColumn(lhs_domain, n, &rng);
  std::vector<Value> rhs =
      GenerateAfdColumn({&lhs}, rhs_domain, n, 0.2, &rng);
  // Majority class per LHS value approximates the mapping; deviations
  // approximate the violation rate: 0.2 redraws, 4/5 of which differ.
  std::unordered_map<Value, std::unordered_map<Value, size_t>> counts;
  for (size_t r = 0; r < n; ++r) counts[lhs[r]][rhs[r]]++;
  size_t majority_total = 0;
  for (auto& [x, ys] : counts) {
    size_t best = 0;
    for (auto& [y, c] : ys) best = std::max(best, c);
    majority_total += best;
  }
  double violation_rate =
      1.0 - static_cast<double>(majority_total) / static_cast<double>(n);
  EXPECT_NEAR(violation_rate, 0.2 * 0.8, 0.02);
}

TEST(ColumnGeneratorsTest, AfdZeroErrorIsExactFd) {
  Rng rng(7);
  Domain d = SmallCatDomain();
  std::vector<Value> lhs = GenerateRootColumn(d, 200, &rng);
  std::vector<Value> rhs = GenerateAfdColumn({&lhs}, d, 200, 0.0, &rng);
  std::unordered_map<Value, Value> mapping;
  for (size_t r = 0; r < 200; ++r) {
    auto [it, inserted] = mapping.emplace(lhs[r], rhs[r]);
    if (!inserted) EXPECT_EQ(it->second, rhs[r]);
  }
}

// --- ND generation -----------------------------------------------------------------

TEST(ColumnGeneratorsTest, NdRespectsFanoutBound) {
  Rng rng(8);
  Domain lhs_domain = Domain::Categorical({Value::Int(0), Value::Int(1),
                                           Value::Int(2)});
  Domain rhs_domain = Domain::Categorical(
      {Value::Int(10), Value::Int(11), Value::Int(12), Value::Int(13),
       Value::Int(14), Value::Int(15), Value::Int(16), Value::Int(17)});
  const size_t k = 3;
  std::vector<Value> lhs = GenerateRootColumn(lhs_domain, 2000, &rng);
  std::vector<Value> rhs =
      GenerateNdColumn(lhs, rhs_domain, 2000, k, &rng);
  std::unordered_map<Value, std::unordered_set<Value>> fanout;
  for (size_t r = 0; r < lhs.size(); ++r) {
    fanout[lhs[r]].insert(rhs[r]);
    EXPECT_TRUE(rhs_domain.Contains(rhs[r]));
  }
  for (auto& [x, ys] : fanout) EXPECT_LE(ys.size(), k);
}

TEST(ColumnGeneratorsTest, NdPoolIsDistinctForCategoricalDomain) {
  Rng rng(9);
  Domain lhs_domain = Domain::Categorical({Value::Int(0)});
  Domain rhs_domain = SmallCatDomain();
  std::vector<Value> lhs = GenerateRootColumn(lhs_domain, 5000, &rng);
  std::vector<Value> rhs =
      GenerateNdColumn(lhs, rhs_domain, 5000, 3, &rng);
  std::unordered_set<Value> seen(rhs.begin(), rhs.end());
  // Pool drawn without replacement: exactly min(3, 5) values appear.
  EXPECT_EQ(seen.size(), 3u);
}

TEST(ColumnGeneratorsTest, NdFanoutLargerThanDomainClamps) {
  Rng rng(10);
  Domain lhs_domain = Domain::Categorical({Value::Int(0)});
  Domain rhs_domain = Domain::Categorical({Value::Int(1), Value::Int(2)});
  std::vector<Value> lhs = GenerateRootColumn(lhs_domain, 100, &rng);
  std::vector<Value> rhs =
      GenerateNdColumn(lhs, rhs_domain, 100, 10, &rng);
  for (const Value& v : rhs) EXPECT_TRUE(rhs_domain.Contains(v));
}

// --- OD / OFD generation --------------------------------------------------------------

TEST(ColumnGeneratorsTest, OdOutputSatisfiesOrderDependency) {
  Rng rng(11);
  Domain lhs_domain = Domain::Continuous(0, 100);
  Domain rhs_domain = Domain::Continuous(-50, 50);
  std::vector<Value> lhs = GenerateRootColumn(lhs_domain, 200, &rng);
  std::vector<Value> rhs = GenerateOdColumn(lhs, rhs_domain, 200, &rng);
  // Build a relation and validate with the discovery-side validator:
  // generation and validation must agree on the OD semantics.
  Schema schema({{"x", DataType::kDouble, SemanticType::kContinuous},
                 {"y", DataType::kDouble, SemanticType::kContinuous}});
  Relation r =
      std::move(Relation::Make(schema, {lhs, rhs})).ValueOrDie();
  EXPECT_TRUE(ValidateOd(r, 0, 1));
}

TEST(ColumnGeneratorsTest, OdWorksOntoCategoricalDomain) {
  Rng rng(12);
  Domain lhs_domain = Domain::Continuous(0, 10);
  Domain rhs_domain = SmallCatDomain();
  std::vector<Value> lhs = GenerateRootColumn(lhs_domain, 100, &rng);
  std::vector<Value> rhs = GenerateOdColumn(lhs, rhs_domain, 100, &rng);
  Schema schema({{"x", DataType::kDouble, SemanticType::kContinuous},
                 {"y", DataType::kString, SemanticType::kCategorical}});
  Relation r =
      std::move(Relation::Make(schema, {lhs, rhs})).ValueOrDie();
  EXPECT_TRUE(ValidateOd(r, 0, 1));
}

TEST(ColumnGeneratorsTest, OfdOutputSatisfiesStrictOrder) {
  Rng rng(13);
  Domain lhs_domain = Domain::Continuous(0, 100);
  Domain rhs_domain = Domain::Continuous(0, 1);
  std::vector<Value> lhs = GenerateRootColumn(lhs_domain, 150, &rng);
  std::vector<Value> rhs = GenerateOfdColumn(lhs, rhs_domain, 150, &rng);
  Schema schema({{"x", DataType::kDouble, SemanticType::kContinuous},
                 {"y", DataType::kDouble, SemanticType::kContinuous}});
  Relation r =
      std::move(Relation::Make(schema, {lhs, rhs})).ValueOrDie();
  EXPECT_TRUE(ValidateOfd(r, 0, 1));
}

TEST(ColumnGeneratorsTest, OfdCategoricalUsesDistinctValuesWhenPossible) {
  Rng rng(14);
  // 3 distinct LHS values, 5-value RHS domain: strict walk possible.
  std::vector<Value> lhs = {Value::Int(1), Value::Int(2), Value::Int(3),
                            Value::Int(1), Value::Int(2)};
  Domain rhs_domain = SmallCatDomain();
  std::vector<Value> rhs = GenerateOfdColumn(lhs, rhs_domain, 5, &rng);
  Schema schema({{"x", DataType::kInt64, SemanticType::kCategorical},
                 {"y", DataType::kString, SemanticType::kCategorical}});
  Relation r =
      std::move(Relation::Make(schema, {lhs, rhs})).ValueOrDie();
  EXPECT_TRUE(ValidateOfd(r, 0, 1));
}

// --- DD generation -----------------------------------------------------------------

TEST(ColumnGeneratorsTest, DdChainedStepsStayWithinDelta) {
  Rng rng(15);
  Domain lhs_domain = Domain::Continuous(0, 10);
  Domain rhs_domain = Domain::Continuous(0, 100);
  std::vector<Value> lhs = GenerateRootColumn(lhs_domain, 300, &rng);
  const double eps = 5.0;
  const double delta = 3.0;
  auto rhs = GenerateDdColumn(lhs, rhs_domain, 300, eps, delta, &rng);
  ASSERT_TRUE(rhs.ok());
  // Consecutive rows in LHS order with gap <= eps differ by <= delta.
  std::vector<size_t> order(300);
  for (size_t i = 0; i < 300; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return lhs[a].AsDouble() < lhs[b].AsDouble();
  });
  for (size_t i = 1; i < order.size(); ++i) {
    double dx = lhs[order[i]].AsDouble() - lhs[order[i - 1]].AsDouble();
    if (dx <= eps) {
      double dy = std::abs((*rhs)[order[i]].AsDouble() -
                           (*rhs)[order[i - 1]].AsDouble());
      EXPECT_LE(dy, delta + 1e-9);
    }
  }
}

TEST(ColumnGeneratorsTest, DdRejectsCategoricalTarget) {
  Rng rng(16);
  std::vector<Value> lhs = {Value::Real(1)};
  EXPECT_FALSE(
      GenerateDdColumn(lhs, SmallCatDomain(), 1, 1, 1, &rng).ok());
}

// --- GenerationEngine --------------------------------------------------------------

TEST(GenerationEngineTest, RequiresDomains) {
  Relation employee = datasets::Employee();
  MetadataPackage pkg;
  pkg.schema = employee.schema();
  pkg.domains.assign(4, std::nullopt);
  Rng rng(1);
  EXPECT_FALSE(GenerateSynthetic(pkg, 4, &rng).ok());
}

TEST(GenerationEngineTest, ProducesAlignedRelation) {
  Relation employee = datasets::Employee();
  auto report = ProfileRelation(employee);
  ASSERT_TRUE(report.ok());
  Rng rng(2);
  auto outcome = GenerateSynthetic(report->metadata, 4, &rng);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->relation.num_rows(), 4u);
  EXPECT_EQ(outcome->relation.num_columns(), 4u);
  for (size_t c = 0; c < 4; ++c) {
    EXPECT_EQ(outcome->relation.schema().attribute(c).name,
              employee.schema().attribute(c).name);
  }
}

TEST(GenerationEngineTest, RandomModeUsesNoDependencies) {
  Relation employee = datasets::Employee();
  auto report = ProfileRelation(employee);
  ASSERT_TRUE(report.ok());
  Rng rng(3);
  GenerationOptions options;
  options.ignore_dependencies = true;
  auto outcome =
      GenerateSynthetic(report->metadata, 10, &rng, options);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->plan.num_derived(), 0u);
}

TEST(GenerationEngineTest, GeneratedValuesLieInDisclosedDomains) {
  Relation employee = datasets::Employee();
  auto report = ProfileRelation(employee);
  ASSERT_TRUE(report.ok());
  Rng rng(4);
  auto outcome = GenerateSynthetic(report->metadata, 100, &rng);
  ASSERT_TRUE(outcome.ok());
  auto domains = report->metadata.RequireDomains();
  ASSERT_TRUE(domains.ok());
  for (size_t c = 0; c < outcome->relation.num_columns(); ++c) {
    for (size_t r = 0; r < outcome->relation.num_rows(); ++r) {
      EXPECT_TRUE((*domains)[c].Contains(outcome->relation.at(r, c)))
          << "col " << c << " row " << r;
    }
  }
}

TEST(GenerationEngineTest, DeterministicGivenSeed) {
  Relation employee = datasets::Employee();
  auto report = ProfileRelation(employee);
  ASSERT_TRUE(report.ok());
  Rng rng_a(42);
  Rng rng_b(42);
  auto a = GenerateSynthetic(report->metadata, 20, &rng_a);
  auto b = GenerateSynthetic(report->metadata, 20, &rng_b);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->relation, b->relation);
}

// Property: generation restricted to one dependency class produces output
// that *satisfies* every dependency of that class used in the plan.
class GenerationSoundnessTest
    : public ::testing::TestWithParam<DependencyKind> {};

TEST_P(GenerationSoundnessTest, PlanDependenciesHoldOnOutput) {
  Relation employee = datasets::Employee();
  DiscoveryOptions discovery;
  discovery.discover_afds = true;
  auto report = ProfileRelation(employee, discovery);
  ASSERT_TRUE(report.ok());
  Rng rng(77);
  GenerationOptions options;
  options.allowed_kinds = {GetParam()};
  auto outcome =
      GenerateSynthetic(report->metadata, 200, &rng, options);
  ASSERT_TRUE(outcome.ok());
  // Encode the generated relation once; the per-step validations below
  // run against the shared encoding instead of re-encoding each time.
  EncodedRelation generated = EncodedRelation::Encode(outcome->relation);
  for (const GenerationStep& step : outcome->plan.steps()) {
    if (!step.via.has_value()) continue;
    Dependency dep = *step.via;
    EXPECT_EQ(dep.kind, GetParam());
    // DD generation is a chain process: it guarantees consecutive-pair
    // proximity, not the full pairwise property; skip exact validation.
    if (dep.kind == DependencyKind::kDifferential) continue;
    // AFD redraws are Bernoulli: validate against a slack bound instead
    // of the recorded g3.
    if (dep.kind == DependencyKind::kApproximateFunctional) {
      dep.g3_error = std::min(1.0, dep.g3_error * 3 + 0.05);
    }
    auto valid = ValidateDependency(generated, dep);
    ASSERT_TRUE(valid.ok());
    EXPECT_TRUE(*valid) << dep.ToString(employee.schema());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, GenerationSoundnessTest,
    ::testing::Values(DependencyKind::kFunctional,
                      DependencyKind::kApproximateFunctional,
                      DependencyKind::kNumerical, DependencyKind::kOrder,
                      DependencyKind::kOrderedFunctional,
                      DependencyKind::kDifferential));

}  // namespace
}  // namespace metaleak
