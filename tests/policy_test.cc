// Tests for src/metadata/metadata_policy.h: per-edge policies, defense
// transforms, their serialization round-trips, and the coalition package
// merge operations.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "metadata/metadata_policy.h"
#include "partition/attribute_set.h"

namespace metaleak {
namespace {

// A hand-built full-level package over three attributes with planted
// dependencies, one CFD and disclosed marginals.
MetadataPackage FullPackage() {
  MetadataPackage pkg;
  pkg.schema = Schema({
      {"band", DataType::kString, SemanticType::kCategorical},
      {"score", DataType::kDouble, SemanticType::kContinuous},
      {"grade", DataType::kInt64, SemanticType::kCategorical},
  });
  pkg.num_rows = 10;
  pkg.domains = {
      Domain::Categorical({Value::Str("A"), Value::Str("B")}),
      Domain::Continuous(0.0, 100.0),
      Domain::Categorical({Value::Int(1), Value::Int(2), Value::Int(3)}),
  };
  pkg.dependencies.Add(Dependency::Fd(AttributeSet::Of({0}), 2));
  pkg.dependencies.Add(Dependency::Od(1, 2));
  pkg.dependencies.Add(Dependency::Afd(AttributeSet::Of({1}), 0, 0.1));
  pkg.conditional_fds.push_back(ConditionalFd::Constant(
      0, Value::Str("A"), 2, Value::Int(1), 6));

  FrequencyTable band_freq;
  band_freq.values = {Value::Str("A"), Value::Str("B")};
  band_freq.counts = {6, 4};
  Histogram score_hist;
  score_hist.lo = 0.0;
  score_hist.hi = 100.0;
  score_hist.counts = {2, 3, 4, 1};
  FrequencyTable grade_freq;
  grade_freq.values = {Value::Int(1), Value::Int(2), Value::Int(3)};
  grade_freq.counts = {5, 3, 2};
  auto band_dist = ValueDistribution::Categorical(band_freq);
  auto score_dist = ValueDistribution::Continuous(score_hist);
  auto grade_dist = ValueDistribution::Categorical(grade_freq);
  EXPECT_TRUE(band_dist.ok() && score_dist.ok() && grade_dist.ok());
  pkg.distributions = {*band_dist, *score_dist, *grade_dist};
  return pkg;
}

const DisclosureLevel kAllLevels[] = {
    DisclosureLevel::kNames,        DisclosureLevel::kNamesAndDomains,
    DisclosureLevel::kWithFds,      DisclosureLevel::kWithRfds,
    DisclosureLevel::kWithDistributions,
};

// --- Restrict / serialize round-trips ----------------------------------------

TEST(PolicyRoundTripTest, RestrictSerializeDeserializeIdempotent) {
  MetadataPackage full = FullPackage();
  for (DisclosureLevel level : kAllLevels) {
    MetadataPackage restricted = full.Restrict(level);
    std::string wire = restricted.Serialize();
    auto parsed = MetadataPackage::Deserialize(wire);
    ASSERT_TRUE(parsed.ok()) << wire;
    // Re-restricting the deserialized package at the same level must be a
    // no-op, byte for byte.
    EXPECT_EQ(parsed->Restrict(level).Serialize(), wire)
        << DisclosureLevelToString(level);
    // And Restrict itself is idempotent.
    EXPECT_EQ(restricted.Restrict(level).Serialize(), wire);
  }
}

TEST(PolicyRoundTripTest, TransformedPackagesRoundTripAtEveryLevel) {
  MetadataPackage full = FullPackage();
  for (DisclosureLevel level : kAllLevels) {
    MetadataPolicy policy = MetadataPolicy::AtLevel(level, "defended");
    policy.transforms = {
        MetadataTransform::GeneralizeDomains(0.5, 3),
        MetadataTransform::DpNoiseDistributions(1.0, 0xFEEDULL),
        MetadataTransform::SuppressDependencies({DependencyKind::kOrder}),
    };
    auto defended = policy.Apply(full);
    ASSERT_TRUE(defended.ok());
    std::string wire = defended->Serialize();
    auto parsed = MetadataPackage::Deserialize(wire);
    ASSERT_TRUE(parsed.ok()) << wire;
    EXPECT_EQ(parsed->Serialize(), wire);
    // The defended package still honors its level: re-restricting at the
    // policy level changes nothing.
    EXPECT_EQ(parsed->Restrict(level).Serialize(), wire);
  }
}

TEST(PolicyRoundTripTest, NoFieldLeaksAboveItsLevel) {
  MetadataPackage full = FullPackage();
  for (DisclosureLevel level : kAllLevels) {
    MetadataPolicy policy = MetadataPolicy::AtLevel(level);
    policy.transforms = {
        MetadataTransform::GeneralizeDomains(0.25, 2),
        MetadataTransform::DpNoiseDistributions(2.0),
    };
    auto pkg = policy.Apply(full);
    ASSERT_TRUE(pkg.ok());
    if (level < DisclosureLevel::kNamesAndDomains) {
      EXPECT_FALSE(pkg->HasAllDomains());
      EXPECT_EQ(pkg->num_rows, 0u);
    }
    if (level < DisclosureLevel::kWithFds) {
      EXPECT_TRUE(pkg->dependencies.empty());
    }
    if (level < DisclosureLevel::kWithRfds) {
      EXPECT_TRUE(
          pkg->dependencies.OfKind(DependencyKind::kOrder).empty());
      EXPECT_TRUE(pkg->conditional_fds.empty());
    }
    if (level < DisclosureLevel::kWithDistributions) {
      for (const auto& dist : pkg->distributions) {
        EXPECT_FALSE(dist.has_value());
      }
    }
    // Schema is always visible — that is what kNames means.
    EXPECT_EQ(pkg->schema.num_attributes(), full.schema.num_attributes());
  }
}

// --- Defense transforms -------------------------------------------------------

TEST(TransformTest, GeneralizeDomainsWidensAndPads) {
  MetadataPackage full = FullPackage();
  MetadataTransform t = MetadataTransform::GeneralizeDomains(0.5, 4);
  auto out = t.Apply(full);
  ASSERT_TRUE(out.ok());
  // Continuous range [0, 100] widens by 50 on each side.
  const Domain& score = *out->domains[1];
  EXPECT_DOUBLE_EQ(score.lo(), -50.0);
  EXPECT_DOUBLE_EQ(score.hi(), 150.0);
  // Categorical domains gain decoys but keep every true value.
  const Domain& band = *out->domains[0];
  EXPECT_EQ(band.values().size(), 2u + 4u);
  EXPECT_TRUE(band.Contains(Value::Str("A")));
  EXPECT_TRUE(band.Contains(Value::Str("B")));
  const Domain& grade = *out->domains[2];
  EXPECT_EQ(grade.values().size(), 3u + 4u);
  for (int64_t v : {1, 2, 3}) {
    EXPECT_TRUE(grade.Contains(Value::Int(v)));
  }
}

TEST(TransformTest, DpNoiseIsDeterministicPerSeedAndNeverNegative) {
  MetadataPackage full = FullPackage();
  MetadataTransform t1 = MetadataTransform::DpNoiseDistributions(0.5, 11);
  MetadataTransform t2 = MetadataTransform::DpNoiseDistributions(0.5, 11);
  MetadataTransform t3 = MetadataTransform::DpNoiseDistributions(0.5, 12);
  auto a = t1.Apply(full);
  auto b = t2.Apply(full);
  auto c = t3.Apply(full);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_EQ(a->Serialize(), b->Serialize());
  EXPECT_NE(a->Serialize(), c->Serialize());
  for (const auto& dist : a->distributions) {
    ASSERT_TRUE(dist.has_value());
    size_t total = dist->is_categorical() ? dist->frequency_table().total()
                                          : dist->histogram().total();
    EXPECT_GT(total, 0u);
  }
}

TEST(TransformTest, SuppressDependenciesFiltersKindsAndCfds) {
  MetadataPackage full = FullPackage();
  // Drop only order dependencies; FDs, AFDs and CFDs survive.
  MetadataTransform keep_fds =
      MetadataTransform::SuppressDependencies({DependencyKind::kOrder});
  keep_fds.suppress_cfds = false;
  auto out = keep_fds.Apply(full);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->dependencies.OfKind(DependencyKind::kOrder).empty());
  EXPECT_EQ(out->dependencies.OfKind(DependencyKind::kFunctional).size(), 1u);
  EXPECT_EQ(out->conditional_fds.size(), 1u);

  // Default: drop everything, CFDs included.
  MetadataTransform all = MetadataTransform::SuppressDependencies();
  auto bare = all.Apply(full);
  ASSERT_TRUE(bare.ok());
  EXPECT_TRUE(bare->dependencies.empty());
  EXPECT_TRUE(bare->conditional_fds.empty());

  // keep_first retains the leading matches in package order.
  MetadataTransform first = MetadataTransform::SuppressDependencies({}, 1);
  auto one = first.Apply(full);
  ASSERT_TRUE(one.ok());
  EXPECT_EQ(one->dependencies.size(), 1u);
  EXPECT_EQ(one->dependencies.all()[0].kind, DependencyKind::kFunctional);
}

TEST(TransformTest, QuantizeSliceCoarsensContinuousColumns) {
  Schema schema({
      {"x", DataType::kDouble, SemanticType::kContinuous},
      {"tag", DataType::kString, SemanticType::kCategorical},
  });
  RelationBuilder builder(schema);
  for (int i = 0; i < 40; ++i) {
    builder.AddRow({Value::Real(static_cast<double>(i) * 2.5),
                    Value::Str(i % 2 == 0 ? "e" : "o")});
  }
  auto slice = builder.Finish();
  ASSERT_TRUE(slice.ok());

  MetadataTransform t = MetadataTransform::GeneralizeDomains(0.5, 2, 4);
  auto out = t.ApplyToSlice(*slice);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->schema(), slice->schema());
  std::set<double> distinct;
  for (size_t r = 0; r < out->num_rows(); ++r) {
    distinct.insert(out->at(r, 0).AsNumeric());
  }
  EXPECT_LE(distinct.size(), 4u);
  // Categorical column untouched.
  for (size_t r = 0; r < out->num_rows(); ++r) {
    EXPECT_EQ(out->at(r, 1), slice->at(r, 1));
  }
  // Deterministic.
  auto again = t.ApplyToSlice(*slice);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(*again == *out);
}

TEST(TransformTest, DataNoiseIsSeededAndSchemaPreserving) {
  Schema schema({{"x", DataType::kDouble, SemanticType::kContinuous}});
  RelationBuilder builder(schema);
  for (int i = 0; i < 20; ++i) {
    builder.AddRow({Value::Real(static_cast<double>(i))});
  }
  auto slice = builder.Finish();
  ASSERT_TRUE(slice.ok());

  MetadataTransform t = MetadataTransform::DpNoiseDistributions(1.0, 5, 0.1);
  auto a = t.ApplyToSlice(*slice);
  auto b = t.ApplyToSlice(*slice);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(*a == *b);
  EXPECT_FALSE(*a == *slice);
  EXPECT_EQ(a->schema(), slice->schema());
}

// --- Policy composition -------------------------------------------------------

TEST(PolicyTest, KindFilterKeepsOnlyAllowedDependencies) {
  MetadataPackage full = FullPackage();
  MetadataPolicy policy = MetadataPolicy::AtLevel(DisclosureLevel::kWithRfds);
  policy.allowed_kinds = {DependencyKind::kOrder};
  auto pkg = policy.Apply(full);
  ASSERT_TRUE(pkg.ok());
  // Only the order dependency remains; CFDs ride with kFunctional, which
  // is not allowed here.
  EXPECT_EQ(pkg->dependencies.size(), 1u);
  for (const Dependency& d : pkg->dependencies) {
    EXPECT_EQ(d.kind, DependencyKind::kOrder);
  }
  EXPECT_TRUE(pkg->conditional_fds.empty());
}

TEST(PolicyTest, FullDisclosureIsIdentityOnRfdsPackage) {
  MetadataPackage full = FullPackage();
  MetadataPackage rfds = full.Restrict(DisclosureLevel::kWithRfds);
  auto out = MetadataPolicy::FullDisclosure().Apply(full);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->Serialize(), rfds.Serialize());
}

// --- Coalition merge operations ----------------------------------------------

TEST(MergeTest, UnionOfSingleViewIsExactCopy) {
  MetadataPackage full = FullPackage();
  auto out = UnionPackageViews({&full});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->Serialize(), full.Serialize());
}

TEST(MergeTest, UnionTakesMostInformativeField) {
  MetadataPackage full = FullPackage();
  MetadataPackage names = full.Restrict(DisclosureLevel::kNames);
  MetadataPackage fds = full.Restrict(DisclosureLevel::kWithFds);
  auto out = UnionPackageViews({&names, &fds});
  ASSERT_TRUE(out.ok());
  // Domains and FDs come from the richer view.
  EXPECT_TRUE(out->HasAllDomains());
  EXPECT_EQ(out->num_rows, full.num_rows);
  EXPECT_EQ(out->dependencies.OfKind(DependencyKind::kFunctional).size(), 1u);
  // Merging a view with itself does not duplicate dependencies.
  auto twice = UnionPackageViews({&fds, &fds});
  ASSERT_TRUE(twice.ok());
  EXPECT_EQ(twice->dependencies.size(), fds.dependencies.size());
}

TEST(MergeTest, UnionRejectsDifferentSchemas) {
  MetadataPackage full = FullPackage();
  MetadataPackage other = full;
  std::vector<Attribute> attrs = other.schema.attributes();
  attrs[0].name = "renamed";
  other.schema = Schema(attrs);
  EXPECT_FALSE(UnionPackageViews({&full, &other}).ok());
}

TEST(MergeTest, ConcatRebasesDependencyIndices) {
  MetadataPackage full = FullPackage();
  MetadataPackage other = full;
  std::vector<Attribute> attrs = other.schema.attributes();
  for (Attribute& a : attrs) a.name = "p2." + a.name;
  other.schema = Schema(attrs);

  auto joint = ConcatDisjointPackages({&full, &other});
  ASSERT_TRUE(joint.ok());
  ASSERT_EQ(joint->schema.num_attributes(), 6u);
  EXPECT_TRUE(joint->HasAllDomains());
  // The second copy's FD {band} -> grade becomes {3} -> 5.
  auto fds = joint->dependencies.OfKind(DependencyKind::kFunctional);
  ASSERT_EQ(fds.size(), 2u);
  EXPECT_EQ(fds[0].rhs, 2u);
  EXPECT_EQ(fds[1].rhs, 5u);
  EXPECT_EQ(fds[1].lhs.ToIndices(), std::vector<size_t>{3});
  ASSERT_EQ(joint->conditional_fds.size(), 2u);
  EXPECT_EQ(joint->conditional_fds[1].condition_attr, 3u);
  EXPECT_EQ(joint->conditional_fds[1].rhs, 5u);
  // Round-trips like any other package.
  auto parsed = MetadataPackage::Deserialize(joint->Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Serialize(), joint->Serialize());
}

TEST(MergeTest, ConcatRejectsDuplicateNames) {
  MetadataPackage full = FullPackage();
  EXPECT_FALSE(ConcatDisjointPackages({&full, &full}).ok());
}

}  // namespace
}  // namespace metaleak
