// SIMD kernel layer: per-primitive unit tests and scalar-vs-vector
// parity.
//
// Two kinds of coverage. (1) Kernel-level: every primitive in
// common/simd.h is exercised on empty, odd-length, all-NULL/all-NaN and
// tail-remainder inputs, plus a randomized fuzz comparing each dispatch
// level the host supports against the scalar reference — bitwise for
// doubles, since the parity contract is byte-identical output. (2)
// Consumer-level: the PLI engine (Intersect, plus Refines / G3Error /
// MaxFanout including their bit-parallel low-cardinality paths), the
// OD/OFD pair scans, the identifiability sweep, and the fused leakage scan are run
// with the dispatch level forced to scalar and to the best supported
// level, at 1 and 8 threads, asserting identical results.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include "common/parallel.h"
#include "common/random.h"
#include "common/simd.h"
#include "data/code_column.h"
#include "data/datasets/synthetic.h"
#include "data/domain.h"
#include "data/encoded_batch.h"
#include "data/encoded_relation.h"
#include "discovery/validators.h"
#include "partition/attribute_set.h"
#include "partition/pli_cache.h"
#include "partition/position_list_index.h"
#include "privacy/identifiability.h"
#include "privacy/leakage.h"

namespace metaleak {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

std::vector<SimdLevel> SupportedLevels() {
  std::vector<SimdLevel> levels = {SimdLevel::kScalar};
  if (SupportedSimdLevel() >= SimdLevel::kSse42) {
    levels.push_back(SimdLevel::kSse42);
  }
  if (SupportedSimdLevel() >= SimdLevel::kAvx2) {
    levels.push_back(SimdLevel::kAvx2);
  }
  return levels;
}

// Bitwise double equality: the parity contract is byte-identical, which
// EXPECT_EQ on doubles cannot express (NaN != NaN, -0.0 == +0.0).
::testing::AssertionResult BitEqual(double a, double b) {
  uint64_t ua, ub;
  std::memcpy(&ua, &a, sizeof(ua));
  std::memcpy(&ub, &b, sizeof(ub));
  if (ua == ub) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << a << " and " << b << " differ bitwise";
}

// The array sizes every kernel loop shape must survive: empty, below one
// vector width, every tail remainder around the 2/4/8-lane widths, and a
// couple of long odd lengths.
std::vector<size_t> EdgeSizes() {
  std::vector<size_t> sizes;
  for (size_t n = 0; n <= 18; ++n) sizes.push_back(n);
  sizes.push_back(63);
  sizes.push_back(64);
  sizes.push_back(65);
  sizes.push_back(67);
  sizes.push_back(257);
  return sizes;
}

TEST(SimdDispatchTest, LevelNamesAndOrdering) {
  EXPECT_STREQ(SimdLevelName(SimdLevel::kScalar), "scalar");
  EXPECT_STREQ(SimdLevelName(SimdLevel::kSse42), "sse4.2");
  EXPECT_STREQ(SimdLevelName(SimdLevel::kAvx2), "avx2");
  EXPECT_GE(SupportedSimdLevel(), SimdLevel::kScalar);
  EXPECT_LE(ActiveSimdLevel(), SupportedSimdLevel());
}

TEST(SimdDispatchTest, OverrideClampsToSupported) {
  SetSimdLevelOverride(SimdLevel::kAvx2);
  EXPECT_EQ(ActiveSimdLevel(), SupportedSimdLevel() >= SimdLevel::kAvx2
                                   ? SimdLevel::kAvx2
                                   : SupportedSimdLevel());
  SetSimdLevelOverride(SimdLevel::kScalar);
  EXPECT_EQ(ActiveSimdLevel(), SimdLevel::kScalar);
  ClearSimdLevelOverride();
  EXPECT_LE(ActiveSimdLevel(), SupportedSimdLevel());
}

TEST(SimdDispatchTest, HostInfoIsPopulated) {
  const HostInfo info = QueryHostInfo();
  EXPECT_FALSE(info.cpu_model.empty());
  EXPECT_FALSE(info.cpu_features.empty());
  const std::string meta = BenchMetadataJson();
  EXPECT_NE(meta.find("\"meta\""), std::string::npos);
  EXPECT_NE(meta.find("\"simd_level\""), std::string::npos);
  EXPECT_NE(meta.find("\"cpu_model\""), std::string::npos);
}

TEST(SimdKernelTest, CountEqualU32KnownAnswers) {
  const std::vector<uint32_t> a = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  const std::vector<uint32_t> b = {1, 0, 3, 0, 5, 0, 7, 0, 9};
  for (SimdLevel level : SupportedLevels()) {
    EXPECT_EQ(CountEqualU32(level, a.data(), b.data(), a.size()), 5u);
    EXPECT_EQ(CountEqualU32(level, a.data(), b.data(), 0), 0u);
    EXPECT_EQ(CountEqualU32(level, a.data(), a.data(), a.size()), 9u);
  }
}

TEST(SimdKernelTest, CountEqualU32Fuzz) {
  Rng rng(101);
  for (size_t n : EdgeSizes()) {
    for (int trial = 0; trial < 8; ++trial) {
      std::vector<uint32_t> a(n), b(n);
      for (size_t r = 0; r < n; ++r) {
        a[r] = static_cast<uint32_t>(rng.UniformInt(0, 7));
        b[r] = static_cast<uint32_t>(rng.UniformInt(0, 7));
      }
      const size_t expect =
          CountEqualU32(SimdLevel::kScalar, a.data(), b.data(), n);
      for (SimdLevel level : SupportedLevels()) {
        EXPECT_EQ(CountEqualU32(level, a.data(), b.data(), n), expect)
            << "n=" << n << " level=" << SimdLevelName(level);
      }
    }
  }
}

TEST(SimdKernelTest, CountEqualF64NanNeverEqual) {
  const std::vector<double> all_nan(11, kNaN);
  for (SimdLevel level : SupportedLevels()) {
    EXPECT_EQ(CountEqualF64(level, all_nan.data(), all_nan.data(),
                            all_nan.size()),
              0u);
  }
  Rng rng(102);
  for (size_t n : EdgeSizes()) {
    std::vector<double> a(n), b(n);
    for (size_t r = 0; r < n; ++r) {
      a[r] = rng.Bernoulli(0.2) ? kNaN
                                : static_cast<double>(rng.UniformInt(0, 4));
      b[r] = rng.Bernoulli(0.2) ? kNaN
                                : static_cast<double>(rng.UniformInt(0, 4));
    }
    const size_t expect =
        CountEqualF64(SimdLevel::kScalar, a.data(), b.data(), n);
    for (SimdLevel level : SupportedLevels()) {
      EXPECT_EQ(CountEqualF64(level, a.data(), b.data(), n), expect)
          << "n=" << n << " level=" << SimdLevelName(level);
    }
  }
}

TEST(SimdKernelTest, EpsilonBallMseSkipsRealNanOnly) {
  // Real NaN: the row is skipped entirely. Synthetic NaN: the row IS
  // compared, never matches, and poisons the sum — the reference scan's
  // exact semantics.
  const std::vector<double> real = {1.0, kNaN, 3.0, 4.0};
  const std::vector<double> syn = {1.05, 2.0, kNaN, 4.2};
  for (SimdLevel level : SupportedLevels()) {
    const EpsilonBallStats s =
        EpsilonBallMse(level, real.data(), syn.data(), real.size(), 0.1);
    EXPECT_EQ(s.compared, 3u) << SimdLevelName(level);
    EXPECT_EQ(s.matches, 1u) << SimdLevelName(level);
    EXPECT_TRUE(std::isnan(s.sum_squares)) << SimdLevelName(level);
  }
}

TEST(SimdKernelTest, EpsilonBallMseFuzzBitwise) {
  Rng rng(103);
  for (size_t n : EdgeSizes()) {
    for (int trial = 0; trial < 8; ++trial) {
      std::vector<double> real(n), syn(n);
      for (size_t r = 0; r < n; ++r) {
        real[r] =
            rng.Bernoulli(0.15) ? kNaN : rng.UniformDouble(0.0, 10.0);
        syn[r] = rng.Bernoulli(0.1) ? kNaN : rng.UniformDouble(0.0, 10.0);
      }
      const EpsilonBallStats expect = EpsilonBallMse(
          SimdLevel::kScalar, real.data(), syn.data(), n, 0.5);
      for (SimdLevel level : SupportedLevels()) {
        const EpsilonBallStats got =
            EpsilonBallMse(level, real.data(), syn.data(), n, 0.5);
        EXPECT_EQ(got.matches, expect.matches);
        EXPECT_EQ(got.compared, expect.compared);
        EXPECT_TRUE(BitEqual(got.sum_squares, expect.sum_squares))
            << "n=" << n << " level=" << SimdLevelName(level);
      }
    }
  }
}

TEST(SimdKernelTest, EpsilonBallMseCodedSkipsEitherNan) {
  // code_numeric[0] is NaN (the NULL slot): rows pointing at it are
  // skipped, exactly like NaN real cells.
  const std::vector<double> code_numeric = {kNaN, 1.0, 2.0};
  const std::vector<double> real = {1.04, kNaN, 2.0, 5.0};
  const std::vector<uint32_t> codes = {1, 1, 0, 2};
  for (SimdLevel level : SupportedLevels()) {
    const EpsilonBallStats s =
        EpsilonBallMseCoded(level, real.data(), codes.data(),
                            code_numeric.data(), real.size(), 0.1);
    EXPECT_EQ(s.compared, 2u) << SimdLevelName(level);
    EXPECT_EQ(s.matches, 1u) << SimdLevelName(level);
    EXPECT_FALSE(std::isnan(s.sum_squares)) << SimdLevelName(level);
  }
}

TEST(SimdKernelTest, EpsilonBallMseCodedFuzzBitwise) {
  Rng rng(104);
  std::vector<double> code_numeric = {kNaN};
  for (int i = 0; i < 9; ++i) {
    code_numeric.push_back(rng.Bernoulli(0.1)
                               ? kNaN
                               : rng.UniformDouble(0.0, 10.0));
  }
  for (size_t n : EdgeSizes()) {
    std::vector<double> real(n);
    std::vector<uint32_t> codes(n);
    for (size_t r = 0; r < n; ++r) {
      real[r] = rng.Bernoulli(0.15) ? kNaN : rng.UniformDouble(0.0, 10.0);
      codes[r] =
          static_cast<uint32_t>(rng.UniformIndex(code_numeric.size()));
    }
    const EpsilonBallStats expect =
        EpsilonBallMseCoded(SimdLevel::kScalar, real.data(), codes.data(),
                            code_numeric.data(), n, 0.4);
    for (SimdLevel level : SupportedLevels()) {
      const EpsilonBallStats got =
          EpsilonBallMseCoded(level, real.data(), codes.data(),
                              code_numeric.data(), n, 0.4);
      EXPECT_EQ(got.matches, expect.matches);
      EXPECT_EQ(got.compared, expect.compared);
      EXPECT_TRUE(BitEqual(got.sum_squares, expect.sum_squares))
          << "n=" << n << " level=" << SimdLevelName(level);
    }
  }
}

TEST(SimdKernelTest, HistogramU32AddsWithoutClearing) {
  const std::vector<uint32_t> codes = {0, 1, 1, 2, 2, 2, 0};
  for (SimdLevel level : SupportedLevels()) {
    std::vector<uint32_t> counts = {10, 20, 30};
    HistogramU32(level, codes.data(), codes.size(), 3, counts.data());
    EXPECT_EQ(counts, (std::vector<uint32_t>{12, 22, 33}))
        << SimdLevelName(level);
  }
}

TEST(SimdKernelTest, HistogramU32FuzzSmallAndLargeDictionaries) {
  Rng rng(105);
  // Small dictionaries take the sliced path on vector levels; large ones
  // fall back to the naive loop. Both must agree with scalar exactly.
  for (uint32_t num_codes : {1u, 3u, 16u, 4095u, 4097u, 9000u}) {
    for (size_t n : {size_t{0}, size_t{7}, size_t{63}, size_t{4096},
                     size_t{40000}}) {
      std::vector<uint32_t> codes(n);
      for (size_t r = 0; r < n; ++r) {
        codes[r] = static_cast<uint32_t>(rng.UniformIndex(num_codes));
      }
      std::vector<uint32_t> expect(num_codes, 0);
      HistogramU32(SimdLevel::kScalar, codes.data(), n, num_codes,
                   expect.data());
      for (SimdLevel level : SupportedLevels()) {
        std::vector<uint32_t> got(num_codes, 0);
        HistogramU32(level, codes.data(), n, num_codes, got.data());
        EXPECT_EQ(got, expect)
            << "num_codes=" << num_codes << " n=" << n
            << " level=" << SimdLevelName(level);
      }
    }
  }
}

TEST(SimdKernelTest, GatherI32Fuzz) {
  Rng rng(106);
  const std::vector<int32_t> table = {-1, 5, -1, 9, 12, 0, -7, 3};
  for (size_t n : EdgeSizes()) {
    std::vector<uint32_t> idx(n);
    for (size_t k = 0; k < n; ++k) {
      idx[k] = static_cast<uint32_t>(rng.UniformIndex(table.size()));
    }
    std::vector<int32_t> expect(n);
    GatherI32(SimdLevel::kScalar, table.data(), idx.data(), n,
              expect.data());
    for (SimdLevel level : SupportedLevels()) {
      std::vector<int32_t> got(n);
      GatherI32(level, table.data(), idx.data(), n, got.data());
      EXPECT_EQ(got, expect) << "n=" << n << " level="
                             << SimdLevelName(level);
    }
  }
}

TEST(SimdKernelTest, AllGatherEqualI32Fuzz) {
  Rng rng(107);
  for (size_t n : EdgeSizes()) {
    for (int trial = 0; trial < 8; ++trial) {
      // Mostly-constant tables make both verdicts reachable: some trials
      // are all-equal, some have one mismatch near the tail.
      std::vector<int32_t> table(64, 4);
      if (rng.Bernoulli(0.5)) table[rng.UniformIndex(table.size())] = 5;
      std::vector<uint32_t> idx(n);
      for (size_t k = 0; k < n; ++k) {
        idx[k] = static_cast<uint32_t>(rng.UniformIndex(table.size()));
      }
      const bool expect = AllGatherEqualI32(SimdLevel::kScalar,
                                            table.data(), idx.data(), n, 4);
      for (SimdLevel level : SupportedLevels()) {
        EXPECT_EQ(
            AllGatherEqualI32(level, table.data(), idx.data(), n, 4),
            expect)
            << "n=" << n << " level=" << SimdLevelName(level);
      }
    }
  }
}

TEST(SimdKernelTest, OdViolationKnownAnswers) {
  auto pack = [](uint32_t x, uint32_t y) {
    return (static_cast<uint64_t>(x) << 32) | y;
  };
  // Sorted, order-preserving: no violation in either mode except the
  // non-strict plateau (y repeats across an x step), which only the
  // strict rule rejects.
  const std::vector<uint64_t> plateau = {pack(1, 5), pack(2, 5),
                                         pack(3, 6)};
  // lhs tie with differing rhs: violation in both modes.
  const std::vector<uint64_t> tie = {pack(1, 5), pack(1, 6), pack(2, 7)};
  // rhs decreases across an x step: violation in both modes.
  const std::vector<uint64_t> drop = {pack(1, 5), pack(2, 4), pack(3, 6)};
  for (SimdLevel level : SupportedLevels()) {
    EXPECT_FALSE(OdViolationInRange(level, plateau.data(), 1,
                                    plateau.size(), false));
    EXPECT_TRUE(OdViolationInRange(level, plateau.data(), 1,
                                   plateau.size(), true));
    EXPECT_TRUE(
        OdViolationInRange(level, tie.data(), 1, tie.size(), false));
    EXPECT_TRUE(
        OdViolationInRange(level, tie.data(), 1, tie.size(), true));
    EXPECT_TRUE(
        OdViolationInRange(level, drop.data(), 1, drop.size(), false));
    EXPECT_TRUE(
        OdViolationInRange(level, drop.data(), 1, drop.size(), true));
    // Empty range: lo == hi.
    EXPECT_FALSE(OdViolationInRange(level, tie.data(), 1, 1, false));
  }
}

TEST(SimdKernelTest, OdViolationFuzz) {
  Rng rng(108);
  for (int trial = 0; trial < 60; ++trial) {
    const size_t n = 2 + rng.UniformIndex(120);
    std::vector<uint64_t> pairs(n);
    for (size_t i = 0; i < n; ++i) {
      // Small ranges make ties, plateaus, and drops all likely; sorting
      // gives the precondition the kernel requires.
      const uint64_t x = rng.UniformIndex(6);
      const uint64_t y = rng.UniformIndex(6);
      pairs[i] = (x << 32) | y;
    }
    std::sort(pairs.begin(), pairs.end());
    // Scan sub-ranges too: chunked ParallelReduce calls the kernel with
    // interior lo/hi.
    const size_t lo = 1 + rng.UniformIndex(n - 1);
    const size_t hi = lo + rng.UniformIndex(n - lo + 1);
    for (bool strict : {false, true}) {
      const bool expect = OdViolationInRange(SimdLevel::kScalar,
                                             pairs.data(), lo, hi, strict);
      for (SimdLevel level : SupportedLevels()) {
        EXPECT_EQ(
            OdViolationInRange(level, pairs.data(), lo, hi, strict),
            expect)
            << "n=" << n << " lo=" << lo << " hi=" << hi
            << " strict=" << strict << " level=" << SimdLevelName(level);
      }
    }
  }
}

TEST(SimdKernelTest, AccumulateKernelsFuzz) {
  Rng rng(109);
  std::vector<double> code_numeric = {kNaN, 0.5, 3.5, 7.0};
  for (size_t n : EdgeSizes()) {
    std::vector<uint32_t> ua(n), ub(n), codes(n);
    std::vector<double> da(n), db(n);
    for (size_t r = 0; r < n; ++r) {
      ua[r] = static_cast<uint32_t>(rng.UniformInt(0, 5));
      ub[r] = static_cast<uint32_t>(rng.UniformInt(0, 5));
      codes[r] = static_cast<uint32_t>(rng.UniformIndex(4));
      da[r] = rng.Bernoulli(0.15) ? kNaN : rng.UniformDouble(0.0, 8.0);
      db[r] = rng.Bernoulli(0.15) ? kNaN : rng.UniformDouble(0.0, 8.0);
    }
    // Prefill the accumulators so "+=" (not "=") semantics are checked.
    std::vector<uint32_t> expect(n, 7);
    AccumulateEqualU32(SimdLevel::kScalar, ua.data(), ub.data(), n,
                       expect.data());
    AccumulateEqualF64(SimdLevel::kScalar, da.data(), db.data(), n,
                       expect.data());
    AccumulateEpsilonMatch(SimdLevel::kScalar, da.data(), db.data(), n,
                           1.0, expect.data());
    AccumulateEpsilonMatchCoded(SimdLevel::kScalar, da.data(),
                                codes.data(), code_numeric.data(), n, 1.0,
                                expect.data());
    AccumulateNonNull(SimdLevel::kScalar, ua.data(), n, expect.data());
    for (SimdLevel level : SupportedLevels()) {
      std::vector<uint32_t> got(n, 7);
      AccumulateEqualU32(level, ua.data(), ub.data(), n, got.data());
      AccumulateEqualF64(level, da.data(), db.data(), n, got.data());
      AccumulateEpsilonMatch(level, da.data(), db.data(), n, 1.0,
                             got.data());
      AccumulateEpsilonMatchCoded(level, da.data(), codes.data(),
                                  code_numeric.data(), n, 1.0, got.data());
      AccumulateNonNull(level, ua.data(), n, got.data());
      EXPECT_EQ(got, expect) << "n=" << n << " level="
                             << SimdLevelName(level);
    }
  }
}

TEST(SimdKernelTest, BitsetHelpers) {
  EXPECT_EQ(BitsetWords(0), 0u);
  EXPECT_EQ(BitsetWords(1), 1u);
  EXPECT_EQ(BitsetWords(64), 1u);
  EXPECT_EQ(BitsetWords(65), 2u);
  EXPECT_EQ(BitsetTailMask(64), ~uint64_t{0});
  EXPECT_EQ(BitsetTailMask(1), uint64_t{1});
  EXPECT_EQ(BitsetTailMask(3), uint64_t{7});

  // 70 rows over 2 words: complement + tail re-mask gives exactly the
  // missing rows.
  const size_t n = 70;
  const size_t words = BitsetWords(n);
  std::vector<uint64_t> in_cluster(words, 0);
  for (size_t row : {3u, 64u, 69u}) {
    in_cluster[row >> 6] |= uint64_t{1} << (row & 63);
  }
  std::vector<uint64_t> bits(words, 0);
  BitsetOrNotInto(bits.data(), in_cluster.data(), words);
  bits[words - 1] &= BitsetTailMask(n);
  EXPECT_EQ(BitsetCount(bits.data(), words), n - 3);

  // AND + popcount, and ascending enumeration.
  std::vector<uint64_t> other(words, 0);
  for (size_t row : {3u, 5u, 64u}) {
    other[row >> 6] |= uint64_t{1} << (row & 63);
  }
  std::vector<uint64_t> product(words);
  EXPECT_EQ(
      BitsetAndCount(product.data(), in_cluster.data(), other.data(),
                     words),
      2u);
  std::vector<size_t> rows;
  BitsetForEach(product.data(), words,
                [&](size_t row) { rows.push_back(row); });
  EXPECT_EQ(rows, (std::vector<size_t>{3, 64}));

  // OR-merge.
  BitsetOrInto(other.data(), in_cluster.data(), words);
  EXPECT_EQ(BitsetCount(other.data(), words), 4u);
}

// --- Consumer parity: scalar vs best supported level ---------------------

// Runs `fn` once with the dispatch level forced to scalar and once at
// the best supported level, returning both results.
template <typename Fn>
auto AtBothLevels(Fn&& fn) {
  SetSimdLevelOverride(SimdLevel::kScalar);
  auto scalar = fn();
  SetSimdLevelOverride(SupportedSimdLevel());
  auto vector = fn();
  ClearSimdLevelOverride();
  return std::make_pair(std::move(scalar), std::move(vector));
}

class SimdConsumerParityTest : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override { SetGlobalThreadCount(GetParam()); }
  void TearDown() override {
    SetGlobalThreadCount(0);
    ClearSimdLevelOverride();
  }
};

std::vector<uint32_t> RandomCodes(size_t n, uint32_t num_codes, Rng* rng) {
  std::vector<uint32_t> codes(n);
  for (size_t r = 0; r < n; ++r) {
    codes[r] = static_cast<uint32_t>(rng->UniformIndex(num_codes));
  }
  return codes;
}

TEST_P(SimdConsumerParityTest, PliEngineMatchesScalar) {
  Rng rng(201);
  const size_t n = 5000;
  // Domain 3/4 drives the bit-parallel counting paths of Refines /
  // G3Error / MaxFanout; domain 40 stays on the gathered probe scans;
  // the pair mixes them.
  for (auto [ca, cb] : std::vector<std::pair<uint32_t, uint32_t>>{
           {3, 4}, {3, 40}, {40, 37}}) {
    const std::vector<uint32_t> codes_a = RandomCodes(n, ca, &rng);
    const std::vector<uint32_t> codes_b = RandomCodes(n, cb, &rng);
    auto run = [&] {
      PositionListIndex a = PositionListIndex::FromCodes(codes_a, ca);
      PositionListIndex b = PositionListIndex::FromCodes(codes_b, cb);
      PositionListIndex product = a.Intersect(b);
      return std::make_tuple(product.rows(), product.cluster_offsets(),
                             a.G3Error(b), a.Refines(b), a.MaxFanout(b),
                             product.Refines(a));
    };
    auto [scalar, vector] = AtBothLevels(run);
    EXPECT_EQ(std::get<0>(scalar), std::get<0>(vector));
    EXPECT_EQ(std::get<1>(scalar), std::get<1>(vector));
    EXPECT_TRUE(
        BitEqual(std::get<2>(scalar), std::get<2>(vector)));
    EXPECT_EQ(std::get<3>(scalar), std::get<3>(vector));
    EXPECT_EQ(std::get<4>(scalar), std::get<4>(vector));
    EXPECT_EQ(std::get<5>(scalar), std::get<5>(vector));
  }
}

datasets::SyntheticConfig PlantedConfig(size_t rows) {
  datasets::SyntheticConfig config;
  config.num_rows = rows;
  config.seed = 7;
  datasets::SyntheticAttribute a;
  a.name = "a";
  a.kind = datasets::SyntheticAttribute::Kind::kCategoricalBase;
  a.domain_size = 12;
  datasets::SyntheticAttribute b;
  b.name = "b";
  b.kind = datasets::SyntheticAttribute::Kind::kContinuousBase;
  datasets::SyntheticAttribute c;
  c.name = "c";
  c.kind = datasets::SyntheticAttribute::Kind::kDerivedMonotone;
  c.source = 1;
  c.domain_size = 0;  // continuous output: codes stay order-preserving
  datasets::SyntheticAttribute d;
  d.name = "d";
  d.kind = datasets::SyntheticAttribute::Kind::kCategoricalBase;
  d.domain_size = 4;
  config.attributes = {a, b, c, d};
  return config;
}

TEST_P(SimdConsumerParityTest, OdOfdValidatorsMatchScalar) {
  Result<Relation> relation = datasets::Synthetic(PlantedConfig(3000));
  ASSERT_TRUE(relation.ok());
  EncodedRelation encoded = EncodedRelation::Encode(*relation);
  for (size_t lhs = 0; lhs < encoded.num_columns(); ++lhs) {
    for (size_t rhs = 0; rhs < encoded.num_columns(); ++rhs) {
      if (lhs == rhs) continue;
      auto [scalar, vector] = AtBothLevels([&] {
        return std::make_pair(ValidateOd(encoded, lhs, rhs),
                              ValidateOfd(encoded, lhs, rhs));
      });
      EXPECT_EQ(scalar, vector) << "lhs=" << lhs << " rhs=" << rhs;
    }
  }
  // The planted monotone map b -> c must actually hold, so the parity
  // above is not vacuously all-false.
  EXPECT_TRUE(ValidateOd(encoded, 1, 2));
}

TEST_P(SimdConsumerParityTest, IdentifiabilitySweepMatchesScalar) {
  Result<Relation> relation = datasets::Synthetic(PlantedConfig(800));
  ASSERT_TRUE(relation.ok());
  EncodedRelation encoded = EncodedRelation::Encode(*relation);
  auto [scalar, vector] = AtBothLevels([&] {
    PliCache cache(&encoded);
    Result<std::vector<bool>> rows = IdentifiableRows(cache, 2);
    EXPECT_TRUE(rows.ok());
    return rows.ok() ? *rows : std::vector<bool>{};
  });
  EXPECT_EQ(scalar, vector);

  // The erroring-subset merge path behaves identically at both levels.
  auto [err_scalar, err_vector] = AtBothLevels([&] {
    PliCache cache(&encoded);
    std::vector<AttributeSet> subsets = {AttributeSet::Of({0}),
                                         AttributeSet::Of({63})};
    return IdentifiableRowsForSubsets(cache, subsets).ok();
  });
  EXPECT_FALSE(err_scalar);
  EXPECT_FALSE(err_vector);
}

TEST_P(SimdConsumerParityTest, FusedLeakageScanMatchesScalar) {
  Result<Relation> relation = datasets::Synthetic(PlantedConfig(1500));
  ASSERT_TRUE(relation.ok());
  EncodedRelation encoded = EncodedRelation::Encode(*relation);
  Result<std::vector<Domain>> domains = ExtractDomains(*relation);
  ASSERT_TRUE(domains.ok());
  Result<EncodedLeakageContext> ctx = EncodedLeakageContext::Build(
      encoded, relation->schema(), *domains, LeakageOptions{});
  ASSERT_TRUE(ctx.ok());
  ASSERT_TRUE(ctx->supported());

  // A hand-filled batch with NULL codes and out-of-ball reals sprinkled
  // in, evaluated at both levels: matches and MSE must agree bitwise.
  const size_t n = encoded.num_rows();
  const std::vector<EncodedBatch::ColumnKind> kinds =
      ColumnKindsForDomains(*domains);
  EncodedBatch batch;
  batch.Configure(kinds);
  batch.ResetRows(n);
  Rng rng(202);
  for (size_t c = 0; c < kinds.size(); ++c) {
    if (kinds[c] == EncodedBatch::ColumnKind::kCodes) {
      const size_t num_codes = (*domains)[c].values().size() + 1;
      for (size_t r = 0; r < n; ++r) {
        batch.set_code(c, r,
                       static_cast<uint32_t>(rng.UniformIndex(num_codes)));
      }
    } else {
      for (size_t r = 0; r < n; ++r) {
        batch.reals(c)[r] = rng.UniformDouble(-10.0, 110.0);
      }
    }
  }
  auto [scalar, vector] = AtBothLevels([&] {
    std::vector<AttributeRoundStats> stats(encoded.num_columns());
    Status status = ctx->Evaluate(batch, stats.data());
    EXPECT_TRUE(status.ok());
    return stats;
  });
  ASSERT_EQ(scalar.size(), vector.size());
  size_t total_matches = 0;
  for (size_t c = 0; c < scalar.size(); ++c) {
    EXPECT_EQ(scalar[c].matches, vector[c].matches) << "attr " << c;
    EXPECT_EQ(scalar[c].has_mse, vector[c].has_mse) << "attr " << c;
    EXPECT_TRUE(BitEqual(scalar[c].mse, vector[c].mse)) << "attr " << c;
    total_matches += scalar[c].matches;
  }
  EXPECT_GT(total_matches, 0u);  // not vacuous
}

INSTANTIATE_TEST_SUITE_P(Threads, SimdConsumerParityTest,
                         ::testing::Values(1, 8));

// --- Width-dispatched code kernels ------------------------------------
//
// The same logical code sequence stored at u8/u16/u32 must drive every
// code kernel to byte-identical answers, at every dispatch level. The
// fixtures keep all codes below 200 so one sequence is representable at
// all three widths.

struct WidthViews {
  std::vector<uint8_t> v8;
  std::vector<uint16_t> v16;
  std::vector<uint32_t> v32;

  explicit WidthViews(const std::vector<uint32_t>& codes)
      : v8(codes.begin(), codes.end()),
        v16(codes.begin(), codes.end()),
        v32(codes) {}

  std::vector<CodeColumnView> views() const {
    return {{v8.data(), v8.size(), CodeWidth::kU8},
            {v16.data(), v16.size(), CodeWidth::kU16},
            {v32.data(), v32.size(), CodeWidth::kU32}};
  }
};

TEST(SimdKernelTest, WidthVariantsAgreeOnCodeKernels) {
  Rng rng(404);
  constexpr uint32_t kNumCodes = 200;
  for (size_t n : EdgeSizes()) {
    std::vector<uint32_t> a_codes(n), b_codes(n);
    std::vector<double> real(n);
    std::vector<double> numeric(kNumCodes);
    for (size_t r = 0; r < n; ++r) {
      a_codes[r] = static_cast<uint32_t>(rng.UniformIndex(kNumCodes));
      b_codes[r] = rng.Bernoulli(0.5)
                       ? a_codes[r]
                       : static_cast<uint32_t>(rng.UniformIndex(kNumCodes));
      real[r] = rng.Bernoulli(0.1) ? kNaN : rng.UniformDouble(0.0, 200.0);
    }
    for (uint32_t c = 0; c < kNumCodes; ++c) {
      numeric[c] = rng.UniformDouble(0.0, 200.0);
    }
    const WidthViews a(a_codes), b(b_codes);

    for (SimdLevel level : SupportedLevels()) {
      // Reference: everything evaluated through the u32 views.
      const size_t ref_count =
          CountEqualCodes(level, a.views()[2], b.views()[2]);
      std::vector<uint32_t> ref_hist(kNumCodes, 0);
      HistogramCodes(level, a.views()[2], kNumCodes, ref_hist.data());
      std::vector<uint32_t> ref_acc(n, 0);
      AccumulateEqualCodes(level, a.views()[2], b.views()[2],
                           ref_acc.data());
      AccumulateNonNullCodes(level, a.views()[2], ref_acc.data());
      AccumulateEpsilonMatchCodes(level, real.data(), a.views()[2],
                                  numeric.data(), 1.5, ref_acc.data());
      EpsilonBallStats ref_ball;
      EpsilonBallMseCodedInto(level, real.data(), a.views()[2],
                              numeric.data(), 1.5, &ref_ball);

      for (const CodeColumnView& av : a.views()) {
        for (const CodeColumnView& bv : b.views()) {
          EXPECT_EQ(CountEqualCodes(level, av, bv), ref_count)
              << "n=" << n << " widths " << static_cast<int>(av.width)
              << "x" << static_cast<int>(bv.width);
          std::vector<uint32_t> acc(n, 0);
          AccumulateEqualCodes(level, av, bv, acc.data());
          AccumulateNonNullCodes(level, av, acc.data());
          AccumulateEpsilonMatchCodes(level, real.data(), av,
                                      numeric.data(), 1.5, acc.data());
          EXPECT_EQ(acc, ref_acc) << "n=" << n;
        }
        std::vector<uint32_t> hist(kNumCodes, 0);
        HistogramCodes(level, av, kNumCodes, hist.data());
        EXPECT_EQ(hist, ref_hist) << "n=" << n;
        EpsilonBallStats ball;
        EpsilonBallMseCodedInto(level, real.data(), av, numeric.data(),
                                1.5, &ball);
        EXPECT_EQ(ball.matches, ref_ball.matches) << "n=" << n;
        EXPECT_EQ(ball.compared, ref_ball.compared) << "n=" << n;
        EXPECT_TRUE(BitEqual(ball.sum_squares, ref_ball.sum_squares))
            << "n=" << n;
      }
    }
  }
}

// The tiling contract behind the streaming scans: a kernel invoked over
// chained row tiles (lengths a multiple of 4, except the last) must
// reproduce the one-shot full scan byte for byte, at every width and
// dispatch level.
TEST(SimdKernelTest, WidthKernelsTileExactly) {
  Rng rng(405);
  constexpr uint32_t kNumCodes = 180;
  const size_t n = 257;
  const std::vector<size_t> tile_sizes = {64, 100, 4, 88, 1};
  std::vector<uint32_t> codes(n);
  std::vector<double> real(n);
  std::vector<double> numeric(kNumCodes);
  for (size_t r = 0; r < n; ++r) {
    codes[r] = static_cast<uint32_t>(rng.UniformIndex(kNumCodes));
    real[r] = rng.Bernoulli(0.1) ? kNaN : rng.UniformDouble(0.0, 200.0);
  }
  for (uint32_t c = 0; c < kNumCodes; ++c) {
    numeric[c] = rng.UniformDouble(0.0, 200.0);
  }
  const WidthViews w(codes);
  for (SimdLevel level : SupportedLevels()) {
    for (const CodeColumnView& view : w.views()) {
      EpsilonBallStats full;
      EpsilonBallMseCodedInto(level, real.data(), view, numeric.data(),
                              2.0, &full);
      std::vector<uint32_t> full_acc(n, 0);
      AccumulateEpsilonMatchCodes(level, real.data(), view, numeric.data(),
                                  2.0, full_acc.data());
      std::vector<uint32_t> full_hist(kNumCodes, 0);
      HistogramCodes(level, view, kNumCodes, full_hist.data());

      EpsilonBallStats tiled;
      std::vector<uint32_t> tiled_acc(n, 0);
      std::vector<uint32_t> tiled_hist(kNumCodes, 0);
      size_t row = 0;
      for (size_t len : tile_sizes) {
        const CodeColumnView slice = view.Slice(row, len);
        EpsilonBallMseCodedInto(level, real.data() + row, slice,
                                numeric.data(), 2.0, &tiled);
        AccumulateEpsilonMatchCodes(level, real.data() + row, slice,
                                    numeric.data(), 2.0,
                                    tiled_acc.data() + row);
        HistogramCodes(level, slice, kNumCodes, tiled_hist.data());
        row += len;
      }
      ASSERT_EQ(row, n);
      EXPECT_EQ(tiled.matches, full.matches);
      EXPECT_EQ(tiled.compared, full.compared);
      EXPECT_TRUE(BitEqual(tiled.sum_squares, full.sum_squares));
      EXPECT_EQ(tiled_acc, full_acc);
      EXPECT_EQ(tiled_hist, full_hist);
    }
  }
}

}  // namespace
}  // namespace metaleak
