// Cross-module property tests: brute-force oracles and invariant sweeps
// over randomized inputs (all seeded and deterministic).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/random.h"
#include "data/datasets/synthetic.h"
#include "data/domain.h"
#include "discovery/discovery_engine.h"
#include "discovery/rfd_discovery.h"
#include "discovery/validators.h"
#include "generation/generation_engine.h"
#include "metadata/dependency_graph.h"
#include "privacy/experiment.h"
#include "privacy/identifiability.h"
#include "privacy/leakage.h"

namespace metaleak {
namespace {

Relation RandomRelation(Rng* rng, size_t rows, size_t cats, size_t conts,
                        size_t domain) {
  return std::move(datasets::SyntheticUniform(rows, cats, conts, domain,
                                              rng->engine()()))
      .ValueOrDie();
}

// --- OD/OFD validators vs. the O(n^2) definitional oracle -----------------

class OrderValidatorOracleTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(OrderValidatorOracleTest, MatchesDefinition) {
  Rng rng(GetParam());
  // Small relations with tiny domains so both outcomes occur.
  for (int trial = 0; trial < 20; ++trial) {
    size_t rows = 4 + rng.UniformIndex(8);
    std::vector<Value> xs;
    std::vector<Value> ys;
    for (size_t i = 0; i < rows; ++i) {
      xs.push_back(Value::Int(rng.UniformInt(0, 3)));
      ys.push_back(Value::Int(rng.UniformInt(0, 3)));
    }
    Schema schema({{"x", DataType::kInt64, SemanticType::kContinuous},
                   {"y", DataType::kInt64, SemanticType::kContinuous}});
    Relation r = std::move(Relation::Make(schema, {xs, ys})).ValueOrDie();

    bool oracle_od = true;
    bool oracle_ofd = true;
    for (size_t i = 0; i < rows; ++i) {
      for (size_t j = 0; j < rows; ++j) {
        int64_t xi = xs[i].AsInt();
        int64_t xj = xs[j].AsInt();
        int64_t yi = ys[i].AsInt();
        int64_t yj = ys[j].AsInt();
        if (xi <= xj && !(yi <= yj)) oracle_od = false;
        if (xi == xj && yi != yj) oracle_ofd = false;
        if (xi < xj && !(yi < yj)) oracle_ofd = false;
      }
    }
    EXPECT_EQ(ValidateOd(r, 0, 1), oracle_od) << "trial " << trial;
    EXPECT_EQ(ValidateOfd(r, 0, 1), oracle_ofd) << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OrderValidatorOracleTest,
                         ::testing::Values(3, 5, 7, 11, 13, 17));

// --- UniqueRows vs. brute force ---------------------------------------------

class UniqueRowsOracleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(UniqueRowsOracleTest, MatchesBruteForce) {
  Rng rng(GetParam());
  Relation r = RandomRelation(&rng, 40, 3, 0, 4);
  for (uint64_t mask = 1; mask < 8; ++mask) {
    AttributeSet attrs;
    for (size_t i = 0; i < 3; ++i) {
      if ((mask >> i) & 1) attrs = attrs.With(i);
    }
    auto fast = UniqueRows(r, attrs);
    ASSERT_TRUE(fast.ok());
    for (size_t i = 0; i < r.num_rows(); ++i) {
      size_t same = 0;
      for (size_t j = 0; j < r.num_rows(); ++j) {
        bool equal = true;
        for (size_t a : attrs.ToIndices()) {
          if (!(r.at(i, a) == r.at(j, a))) {
            equal = false;
            break;
          }
        }
        if (equal) ++same;
      }
      EXPECT_EQ((*fast)[i], same == 1)
          << "row " << i << " attrs " << attrs.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UniqueRowsOracleTest,
                         ::testing::Values(21, 22, 23, 24));

// --- Leakage metric invariants -------------------------------------------------

class LeakageInvariantTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LeakageInvariantTest, ContinuousMatchesMonotoneInEpsilon) {
  Rng rng(GetParam());
  Relation real = RandomRelation(&rng, 60, 0, 2, 8);
  Relation syn = RandomRelation(&rng, 60, 0, 2, 8);
  size_t prev = 0;
  for (double eps : {0.0, 1.0, 5.0, 20.0, 200.0}) {
    auto matches = CountContinuousMatches(real, syn, 0, eps);
    ASSERT_TRUE(matches.ok());
    EXPECT_GE(*matches, prev);
    prev = *matches;
  }
  // eps covering the whole range matches every comparable row.
  EXPECT_EQ(prev, 60u);
}

TEST_P(LeakageInvariantTest, MseIsSymmetricAndNonNegative) {
  Rng rng(GetParam());
  Relation a = RandomRelation(&rng, 50, 0, 1, 8);
  Relation b = RandomRelation(&rng, 50, 0, 1, 8);
  auto ab = AttributeMse(a, b, 0);
  auto ba = AttributeMse(b, a, 0);
  ASSERT_TRUE(ab.ok() && ba.ok());
  EXPECT_DOUBLE_EQ(*ab, *ba);
  EXPECT_GE(*ab, 0.0);
  auto aa = AttributeMse(a, a, 0);
  ASSERT_TRUE(aa.ok());
  EXPECT_DOUBLE_EQ(*aa, 0.0);
}

TEST_P(LeakageInvariantTest, MatchesBoundedByRows) {
  Rng rng(GetParam());
  Relation real = RandomRelation(&rng, 30, 2, 0, 3);
  Relation syn = RandomRelation(&rng, 30, 2, 0, 3);
  for (size_t c = 0; c < 2; ++c) {
    auto matches = CountCategoricalMatches(real, syn, c);
    ASSERT_TRUE(matches.ok());
    EXPECT_LE(*matches, 30u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LeakageInvariantTest,
                         ::testing::Values(31, 32, 33, 34, 35));

// --- Dependency graph invariants over random dependency sets --------------------

class GraphInvariantTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GraphInvariantTest, PlanIsAlwaysExecutable) {
  Rng rng(GetParam());
  const size_t m = 6;
  DependencySet deps;
  // Random soup of dependencies, including cycles and self-loops.
  for (int i = 0; i < 15; ++i) {
    size_t lhs = rng.UniformIndex(m);
    size_t rhs = rng.UniformIndex(m);
    switch (rng.UniformIndex(4)) {
      case 0:
        deps.Add(Dependency::Fd(AttributeSet::Single(lhs), rhs));
        break;
      case 1:
        deps.Add(Dependency::Od(lhs, rhs));
        break;
      case 2:
        deps.Add(Dependency::Nd(lhs, rhs, 1 + rng.UniformIndex(4)));
        break;
      default:
        deps.Add(Dependency::Fd(
            AttributeSet::Single(lhs).With(rng.UniformIndex(m)), rhs));
        break;
    }
  }
  DependencyGraph g = DependencyGraph::Build(m, deps);
  ASSERT_EQ(g.size(), m);
  // Every step's LHS attributes appear strictly earlier in the plan.
  AttributeSet placed;
  for (const GenerationStep& step : g.steps()) {
    if (step.via.has_value()) {
      EXPECT_TRUE(placed.ContainsAll(step.via->lhs))
          << "attribute " << step.attribute;
      EXPECT_EQ(step.via->rhs, step.attribute);
      EXPECT_FALSE(step.via->lhs.Contains(step.attribute));
    }
    placed = placed.With(step.attribute);
  }
  EXPECT_EQ(placed.size(), m);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphInvariantTest,
                         ::testing::Values(41, 42, 43, 44, 45, 46, 47, 48));

// --- End-to-end generation sweep: plans execute and respect domains ---------------

class GenerationSweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GenerationSweepTest, ProfileGenerateMeasureNeverFails) {
  Rng rng(GetParam());
  datasets::SyntheticConfig config;
  config.num_rows = 80;
  config.seed = rng.engine()();
  // Base categorical, base continuous, a monotone derivation, a bounded
  // fan-out derivation — a little of everything.
  datasets::SyntheticAttribute a;
  a.name = "a";
  a.kind = datasets::SyntheticAttribute::Kind::kCategoricalBase;
  a.domain_size = 2 + rng.UniformIndex(8);
  datasets::SyntheticAttribute b;
  b.name = "b";
  b.kind = datasets::SyntheticAttribute::Kind::kContinuousBase;
  b.lo = 0;
  b.hi = 10 + static_cast<double>(rng.UniformIndex(100));
  datasets::SyntheticAttribute c;
  c.name = "c";
  c.kind = datasets::SyntheticAttribute::Kind::kDerivedMonotone;
  c.source = 1;
  c.domain_size = 0;
  datasets::SyntheticAttribute d;
  d.name = "d";
  d.kind = datasets::SyntheticAttribute::Kind::kDerivedBoundedFanout;
  d.source = 0;
  d.domain_size = 12;
  d.fanout = 1 + rng.UniformIndex(4);
  config.attributes = {a, b, c, d};

  auto rel = datasets::Synthetic(config);
  ASSERT_TRUE(rel.ok());
  DiscoveryOptions discovery;
  discovery.discover_afds = true;
  auto report = ProfileRelation(*rel, discovery);
  ASSERT_TRUE(report.ok());

  for (GenerationMethod method :
       {GenerationMethod::kRandom, GenerationMethod::kFd,
        GenerationMethod::kOd, GenerationMethod::kNd,
        GenerationMethod::kDd, GenerationMethod::kOfd,
        GenerationMethod::kAfd}) {
    ExperimentConfig econfig;
    econfig.rounds = 3;
    econfig.seed = GetParam();
    auto result = RunMethod(*rel, report->metadata, method, econfig);
    ASSERT_TRUE(result.ok())
        << GenerationMethodToString(method) << ": "
        << result.status().ToString();
    for (const MethodAttributeResult& attr : result->attributes) {
      EXPECT_LE(attr.mean_matches, static_cast<double>(rel->num_rows()));
      EXPECT_GE(attr.mean_matches, 0.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GenerationSweepTest,
                         ::testing::Values(51, 52, 53, 54, 55, 56));

// --- Serialization robustness: corrupted wire input never crashes ------------------

TEST(WireRobustnessTest, TruncatedAndMutatedInputsFailGracefully) {
  Relation rel =
      std::move(datasets::SyntheticUniform(30, 2, 2, 5, 99)).ValueOrDie();
  DiscoveryOptions options;
  options.profile_distributions = true;
  auto report = ProfileRelation(rel, options);
  ASSERT_TRUE(report.ok());
  std::string wire = report->metadata.Serialize();

  // Truncations at every prefix length (step 7 to keep it fast): parse
  // must either succeed or fail with a Status — never crash.
  for (size_t len = 0; len < wire.size(); len += 7) {
    auto parsed = MetadataPackage::Deserialize(wire.substr(0, len));
    (void)parsed;
  }
  // Single-character mutations on a sample of positions.
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    std::string mutated = wire;
    size_t pos = rng.UniformIndex(mutated.size());
    mutated[pos] = static_cast<char>('!' + rng.UniformIndex(90));
    auto parsed = MetadataPackage::Deserialize(mutated);
    if (parsed.ok()) {
      // If it still parses, it must re-serialize without crashing.
      (void)parsed->Serialize();
    }
  }
  SUCCEED();
}

}  // namespace
}  // namespace metaleak
