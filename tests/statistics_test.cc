// Tests for src/data/statistics and metadata/value_distribution.
#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "data/datasets/echocardiogram.h"
#include "data/statistics.h"
#include "metadata/value_distribution.h"

namespace metaleak {
namespace {

Relation MakeRelation(std::vector<Attribute> attrs,
                      std::vector<std::vector<Value>> cols) {
  return std::move(Relation::Make(Schema(std::move(attrs)), std::move(cols)))
      .ValueOrDie();
}

Attribute Cat(const char* name) {
  return {name, DataType::kString, SemanticType::kCategorical};
}
Attribute Cont(const char* name) {
  return {name, DataType::kDouble, SemanticType::kContinuous};
}

Relation NumericRelation(std::initializer_list<double> xs) {
  std::vector<Value> col;
  for (double x : xs) col.push_back(Value::Real(x));
  return MakeRelation({Cont("x")}, {col});
}

// --- ColumnStats ---------------------------------------------------------------

TEST(ColumnStatsTest, CountsAndMoments) {
  Relation r = MakeRelation(
      {Cont("x")},
      {{Value::Real(1), Value::Real(3), Value::Null(), Value::Real(1)}});
  auto stats = ComputeColumnStats(r, 0);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->count, 4u);
  EXPECT_EQ(stats->nulls, 1u);
  EXPECT_EQ(stats->distinct, 2u);
  EXPECT_DOUBLE_EQ(stats->min, 1.0);
  EXPECT_DOUBLE_EQ(stats->max, 3.0);
  EXPECT_NEAR(stats->mean, 5.0 / 3.0, 1e-12);
  EXPECT_GT(stats->stddev, 0.0);
}

TEST(ColumnStatsTest, StringColumnHasNoMoments) {
  Relation r = MakeRelation({Cat("c")},
                            {{Value::Str("a"), Value::Str("b")}});
  auto stats = ComputeColumnStats(r, 0);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->distinct, 2u);
  EXPECT_DOUBLE_EQ(stats->mean, 0.0);
}

TEST(ColumnStatsTest, OutOfRangeFails) {
  Relation r = NumericRelation({1.0});
  EXPECT_TRUE(ComputeColumnStats(r, 5).status().IsOutOfRange());
}

// --- Histogram -------------------------------------------------------------------

TEST(HistogramTest, BucketsCoverRange) {
  Relation r = NumericRelation({0, 1, 2, 3, 4, 5, 6, 7, 8, 9});
  auto h = BuildHistogram(r, 0, 5);
  ASSERT_TRUE(h.ok());
  EXPECT_DOUBLE_EQ(h->lo, 0.0);
  EXPECT_DOUBLE_EQ(h->hi, 9.0);
  EXPECT_EQ(h->counts.size(), 5u);
  EXPECT_EQ(h->total(), 10u);
  // The max lands in the last bucket (closed at hi).
  EXPECT_EQ(h->BucketOf(9.0), 4u);
  EXPECT_EQ(h->BucketOf(-100.0), 0u);
  EXPECT_EQ(h->BucketOf(100.0), 4u);
}

TEST(HistogramTest, MassSumsToOne) {
  Relation r = NumericRelation({1, 2, 2, 3, 3, 3});
  auto h = BuildHistogram(r, 0, 4);
  ASSERT_TRUE(h.ok());
  double total = 0.0;
  for (size_t i = 0; i < h->counts.size(); ++i) total += h->Mass(i);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(HistogramTest, RejectsBadInput) {
  Relation r = NumericRelation({1.0});
  EXPECT_FALSE(BuildHistogram(r, 0, 0).ok());
  Relation s = MakeRelation({Cat("c")}, {{Value::Str("a")}});
  EXPECT_FALSE(BuildHistogram(s, 0, 4).ok());
}

// --- FrequencyTable / entropy ------------------------------------------------------

TEST(FrequencyTableTest, CountsAndOrder) {
  Relation r = MakeRelation(
      {Cat("c")}, {{Value::Str("b"), Value::Str("a"), Value::Str("b"),
                    Value::Null()}});
  auto t = BuildFrequencyTable(r, 0);
  ASSERT_TRUE(t.ok());
  ASSERT_EQ(t->values.size(), 2u);
  EXPECT_EQ(t->values[0], Value::Str("a"));  // Value order
  EXPECT_EQ(t->counts[0], 1u);
  EXPECT_EQ(t->counts[1], 2u);
  EXPECT_EQ(t->total(), 3u);
}

TEST(EntropyTest, UniformAndConstant) {
  Relation uniform = MakeRelation(
      {Cat("c")}, {{Value::Str("a"), Value::Str("b"), Value::Str("c"),
                    Value::Str("d")}});
  auto h = ColumnEntropy(uniform, 0);
  ASSERT_TRUE(h.ok());
  EXPECT_NEAR(*h, 2.0, 1e-12);  // log2(4)

  Relation constant =
      MakeRelation({Cat("c")}, {{Value::Str("a"), Value::Str("a")}});
  EXPECT_DOUBLE_EQ(*ColumnEntropy(constant, 0), 0.0);
}

// --- ValueDistribution ---------------------------------------------------------------

TEST(ValueDistributionTest, CategoricalSamplingFollowsFrequencies) {
  Relation r = MakeRelation(
      {Cat("c")}, {{Value::Str("a"), Value::Str("a"), Value::Str("a"),
                    Value::Str("b")}});
  auto dist = ValueDistribution::FromColumn(r, 0);
  ASSERT_TRUE(dist.ok());
  EXPECT_TRUE(dist->is_categorical());
  EXPECT_NEAR(dist->MassOf(Value::Str("a")), 0.75, 1e-12);
  EXPECT_NEAR(dist->MassOf(Value::Str("z")), 0.0, 1e-12);

  Rng rng(1);
  size_t a_count = 0;
  const int reps = 20000;
  for (int i = 0; i < reps; ++i) {
    if (dist->Sample(&rng) == Value::Str("a")) ++a_count;
  }
  EXPECT_NEAR(static_cast<double>(a_count) / reps, 0.75, 0.02);
}

TEST(ValueDistributionTest, ContinuousSamplingFollowsHistogram) {
  // Mass concentrated in [0, 1): samples should mostly land there.
  std::vector<Value> col;
  for (int i = 0; i < 90; ++i) col.push_back(Value::Real(0.5));
  for (int i = 0; i < 10; ++i) col.push_back(Value::Real(9.5));
  col.push_back(Value::Real(0.0));
  col.push_back(Value::Real(10.0));
  Relation r = MakeRelation({Cont("x")}, {col});
  auto dist = ValueDistribution::FromColumn(r, 0, 10);
  ASSERT_TRUE(dist.ok());
  EXPECT_FALSE(dist->is_categorical());
  Rng rng(2);
  size_t low = 0;
  const int reps = 10000;
  for (int i = 0; i < reps; ++i) {
    if (dist->Sample(&rng).AsNumeric() < 1.0) ++low;
  }
  EXPECT_GT(static_cast<double>(low) / reps, 0.80);
}

TEST(ValueDistributionTest, RejectsEmptyInputs) {
  EXPECT_FALSE(ValueDistribution::Categorical(FrequencyTable{}).ok());
  EXPECT_FALSE(ValueDistribution::Continuous(Histogram{}).ok());
}

TEST(ValueDistributionTest, EchocardiogramProfiles) {
  Relation r = datasets::Echocardiogram();
  for (size_t c = 0; c < r.num_columns(); ++c) {
    auto dist = ValueDistribution::FromColumn(r, c);
    ASSERT_TRUE(dist.ok()) << "attr " << c;
    Rng rng(c);
    // Samples are valid non-null values.
    for (int i = 0; i < 50; ++i) {
      EXPECT_FALSE(dist->Sample(&rng).is_null());
    }
  }
}

}  // namespace
}  // namespace metaleak
