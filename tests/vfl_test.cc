// Tests for src/vfl: PSI, Party, vertical logistic regression, the
// adversary simulator and the end-to-end scenario.
#include <gtest/gtest.h>

#include <algorithm>

#include "data/datasets/echocardiogram.h"
#include "data/datasets/fintech.h"
#include "vfl/attack.h"
#include "vfl/logistic_regression.h"
#include "vfl/party.h"
#include "vfl/psi.h"
#include "vfl/scenario.h"
#include "vfl/vertical_split.h"

namespace metaleak {
namespace {

std::vector<Value> Ids(std::initializer_list<int64_t> xs) {
  std::vector<Value> out;
  for (int64_t x : xs) out.push_back(Value::Int(x));
  return out;
}

// --- PSI ----------------------------------------------------------------------

TEST(PsiTest, TokensAreDeterministicPerSalt) {
  std::vector<Value> ids = Ids({1, 2, 3});
  EXPECT_EQ(DerivePsiTokens(ids, 7), DerivePsiTokens(ids, 7));
  EXPECT_NE(DerivePsiTokens(ids, 7), DerivePsiTokens(ids, 8));
}

TEST(PsiTest, IntersectionFindsCommonIds) {
  auto psi = ComputePsi(Ids({1, 2, 3, 4}), Ids({3, 4, 5, 6}), 42);
  ASSERT_TRUE(psi.ok());
  ASSERT_EQ(psi->size(), 2u);
  // rows_a/rows_b point at the same entity pairwise.
  std::vector<Value> a = Ids({1, 2, 3, 4});
  std::vector<Value> b = Ids({3, 4, 5, 6});
  for (size_t i = 0; i < psi->size(); ++i) {
    EXPECT_EQ(a[psi->rows_a[i]], b[psi->rows_b[i]]);
  }
}

TEST(PsiTest, EmptyIntersection) {
  auto psi = ComputePsi(Ids({1, 2}), Ids({3, 4}), 42);
  ASSERT_TRUE(psi.ok());
  EXPECT_EQ(psi->size(), 0u);
}

TEST(PsiTest, DuplicatesKeepFirstOccurrence) {
  auto psi = ComputePsi(Ids({7, 7, 8}), Ids({7, 9, 7}), 42);
  ASSERT_TRUE(psi.ok());
  ASSERT_EQ(psi->size(), 1u);
  EXPECT_EQ(psi->rows_a[0], 0u);
  EXPECT_EQ(psi->rows_b[0], 0u);
}

TEST(PsiTest, OrderIsCanonicalAcrossPermutations) {
  // The intersection must come out in the same entity order regardless of
  // each party's row order (token order is derived data, not row order).
  auto psi1 = ComputePsi(Ids({1, 2, 3}), Ids({3, 2, 1}), 42);
  auto psi2 = ComputePsi(Ids({3, 1, 2}), Ids({2, 1, 3}), 42);
  ASSERT_TRUE(psi1.ok() && psi2.ok());
  std::vector<Value> a1 = Ids({1, 2, 3});
  std::vector<Value> a2 = Ids({3, 1, 2});
  std::vector<Value> order1;
  std::vector<Value> order2;
  for (size_t i = 0; i < psi1->size(); ++i) {
    order1.push_back(a1[psi1->rows_a[i]]);
  }
  for (size_t i = 0; i < psi2->size(); ++i) {
    order2.push_back(a2[psi2->rows_a[i]]);
  }
  EXPECT_EQ(order1, order2);
}

// --- Party ---------------------------------------------------------------------

TEST(PartyTest, KeyLookupAndMetadataExcludesKey) {
  datasets::FintechScenario s = datasets::Fintech();
  Party bank("bank", s.bank, "customer_id");
  ASSERT_TRUE(bank.KeyIndex().ok());
  auto metadata = bank.ShareMetadata(DisclosureLevel::kWithRfds);
  ASSERT_TRUE(metadata.ok());
  EXPECT_FALSE(metadata->schema.IndexOf("customer_id").has_value());
  EXPECT_TRUE(metadata->HasAllDomains());
  EXPECT_GT(metadata->dependencies.size(), 0u);
}

TEST(PartyTest, MissingKeyAttributeFails) {
  datasets::FintechScenario s = datasets::Fintech();
  Party broken("bank", s.bank, "no_such_column");
  EXPECT_FALSE(broken.KeyIndex().ok());
  EXPECT_FALSE(broken.ShareMetadata(DisclosureLevel::kNames).ok());
}

TEST(PartyTest, AlignedFeaturesSelectsAndDropsKey) {
  datasets::FintechScenario s = datasets::Fintech();
  Party bank("bank", s.bank, "customer_id");
  auto aligned = bank.AlignedFeatures({2, 0, 1});
  ASSERT_TRUE(aligned.ok());
  EXPECT_EQ(aligned->num_rows(), 3u);
  EXPECT_FALSE(aligned->schema().IndexOf("customer_id").has_value());
  EXPECT_FALSE(bank.AlignedFeatures({9999999}).ok());
}

// --- Feature encoding / logistic regression ------------------------------------

TEST(FeatureEncoderTest, OneHotAndStandardize) {
  Schema schema({{"cat", DataType::kString, SemanticType::kCategorical},
                 {"num", DataType::kDouble, SemanticType::kContinuous}});
  RelationBuilder b(schema);
  b.AddRow({Value::Str("a"), Value::Real(1.0)})
      .AddRow({Value::Str("b"), Value::Real(3.0)})
      .AddRow({Value::Str("a"), Value::Null()});
  Relation r = std::move(b.Finish()).ValueOrDie();
  auto encoder = FeatureEncoder::Fit(r);
  ASSERT_TRUE(encoder.ok());
  EXPECT_EQ(encoder->num_features(), 3u);  // 2 categories + 1 numeric
  auto x = encoder->Transform(r);
  ASSERT_TRUE(x.ok());
  EXPECT_EQ(x->num_rows, 3u);
  // Row 0: one-hot "a" -> (1, 0); numeric standardized.
  EXPECT_DOUBLE_EQ(x->At(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(x->At(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(x->At(1, 1), 1.0);
  // Null numeric imputes to the mean -> standardized 0.
  EXPECT_DOUBLE_EQ(x->At(2, 2), 0.0);
}

TEST(FeatureEncoderTest, UnseenCategoryEncodesAllZero) {
  Schema schema({{"cat", DataType::kString, SemanticType::kCategorical}});
  RelationBuilder b(schema);
  b.AddRow({Value::Str("a")}).AddRow({Value::Str("b")});
  Relation train = std::move(b.Finish()).ValueOrDie();
  auto encoder = FeatureEncoder::Fit(train);
  ASSERT_TRUE(encoder.ok());

  RelationBuilder b2(schema);
  b2.AddRow({Value::Str("zzz")});
  Relation test = std::move(b2.Finish()).ValueOrDie();
  auto x = encoder->Transform(test);
  ASSERT_TRUE(x.ok());
  EXPECT_DOUBLE_EQ(x->At(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(x->At(0, 1), 0.0);
}

TEST(VflTrainingTest, LearnsSeparableData) {
  // y = 1 iff a-feature > 0; b contributes noise.
  Schema sa({{"x", DataType::kDouble, SemanticType::kContinuous}});
  Schema sb({{"z", DataType::kDouble, SemanticType::kContinuous}});
  RelationBuilder ba(sa);
  RelationBuilder bb(sb);
  std::vector<int> labels;
  for (int i = -20; i < 20; ++i) {
    double x = static_cast<double>(i) + 0.5;
    ba.AddRow({Value::Real(x)});
    bb.AddRow({Value::Real(static_cast<double>((i * 7) % 5))});
    labels.push_back(x > 0 ? 1 : 0);
  }
  Relation fa = std::move(ba.Finish()).ValueOrDie();
  Relation fb = std::move(bb.Finish()).ValueOrDie();
  VflTrainOptions options;
  options.epochs = 500;
  options.learning_rate = 0.5;
  auto model = TrainVerticalLogisticRegression(fa, fb, labels, options);
  ASSERT_TRUE(model.ok());
  auto acc = Accuracy(*model, fa, fb, labels);
  ASSERT_TRUE(acc.ok());
  EXPECT_GT(*acc, 0.95);
  // Loss decreases.
  ASSERT_GE(model->loss_history.size(), 2u);
  EXPECT_LT(model->loss_history.back(), model->loss_history.front());
}

TEST(VflTrainingTest, RejectsBadInput) {
  Schema s({{"x", DataType::kDouble, SemanticType::kContinuous}});
  RelationBuilder b1(s);
  b1.AddRow({Value::Real(1.0)});
  Relation fa = std::move(b1.Finish()).ValueOrDie();
  RelationBuilder b2(s);
  b2.AddRow({Value::Real(1.0)}).AddRow({Value::Real(2.0)});
  Relation fb = std::move(b2.Finish()).ValueOrDie();
  EXPECT_FALSE(
      TrainVerticalLogisticRegression(fa, fb, {1}).ok());  // row mismatch
  EXPECT_FALSE(TrainVerticalLogisticRegression(fa, fa, {2}).ok());  // label
  EXPECT_FALSE(TrainVerticalLogisticRegression(fa, fa, {}).ok());
}

// --- Attack simulator --------------------------------------------------------------

TEST(AttackTest, ReconstructionRequiresDomains) {
  datasets::FintechScenario s = datasets::Fintech();
  Party ecom("ecom", s.ecommerce, "customer_id");
  auto metadata = ecom.ShareMetadata(DisclosureLevel::kNames);
  ASSERT_TRUE(metadata.ok());
  auto aligned = ecom.AlignedFeatures({0, 1, 2});
  ASSERT_TRUE(aligned.ok());
  EXPECT_FALSE(SimulateReconstruction(*metadata, *aligned, 1).ok());
}

TEST(AttackTest, SweepCoversAllLevels) {
  datasets::FintechScenario s = datasets::Fintech();
  Party ecom("ecom", s.ecommerce, "customer_id");
  auto metadata = ecom.ShareMetadata(DisclosureLevel::kWithRfds);
  ASSERT_TRUE(metadata.ok());
  std::vector<size_t> rows;
  for (size_t r = 0; r < 50; ++r) rows.push_back(r);
  auto aligned = ecom.AlignedFeatures(rows);
  ASSERT_TRUE(aligned.ok());
  auto sweep = SweepDisclosureLevels(*metadata, *aligned, 3);
  ASSERT_TRUE(sweep.ok());
  ASSERT_EQ(sweep->size(), 4u);
  EXPECT_FALSE((*sweep)[0].reconstructed);  // names only
  for (size_t i = 1; i < 4; ++i) {
    EXPECT_TRUE((*sweep)[i].reconstructed);
    EXPECT_EQ((*sweep)[i].leakage.attributes.size(),
              aligned->num_columns());
  }
}

// --- Vertical split ---------------------------------------------------------------

TEST(VerticalSplitTest, SplitsWithExistingKey) {
  datasets::FintechScenario s = datasets::Fintech();
  VerticalSplitOptions options;
  options.key_attribute = "customer_id";
  options.party_a_attributes = {"income", "credit_band"};
  auto split = SplitVertically(s.bank, options);
  ASSERT_TRUE(split.ok()) << split.status().ToString();
  EXPECT_EQ(split->party_a.num_columns(), 3u);  // key + 2
  EXPECT_TRUE(split->party_a.schema().IndexOf("income").has_value());
  EXPECT_TRUE(split->party_b.schema().IndexOf("loan_default").has_value());
  EXPECT_FALSE(split->party_b.schema().IndexOf("income").has_value());
  // Both carry the key.
  EXPECT_TRUE(split->party_a.schema().IndexOf("customer_id").has_value());
  EXPECT_TRUE(split->party_b.schema().IndexOf("customer_id").has_value());
}

TEST(VerticalSplitTest, SynthesizesKeyWhenMissing) {
  Relation echo = datasets::Echocardiogram();
  VerticalSplitOptions options;
  options.party_a_attributes = {"survival", "still_alive", "alive_at_1"};
  auto split = SplitVertically(echo, options);
  ASSERT_TRUE(split.ok()) << split.status().ToString();
  EXPECT_EQ(split->key_attribute, "row_id");
  EXPECT_TRUE(split->party_a.schema().IndexOf("row_id").has_value());
  EXPECT_EQ(split->party_a.num_rows(), echo.num_rows());
}

TEST(VerticalSplitTest, CoverageSubsamplesRows) {
  Relation echo = datasets::Echocardiogram();
  VerticalSplitOptions options;
  options.party_a_attributes = {"survival"};
  options.party_a_coverage = 0.5;
  options.party_b_coverage = 0.5;
  auto split = SplitVertically(echo, options);
  ASSERT_TRUE(split.ok());
  EXPECT_LT(split->party_a.num_rows(), echo.num_rows());
  EXPECT_GT(split->party_a.num_rows(), echo.num_rows() / 4);
}

TEST(VerticalSplitTest, RejectsBadConfigs) {
  Relation echo = datasets::Echocardiogram();
  VerticalSplitOptions key_listed;
  key_listed.key_attribute = "name";
  key_listed.party_a_attributes = {"name"};
  EXPECT_FALSE(SplitVertically(echo, key_listed).ok());

  VerticalSplitOptions unknown;
  unknown.party_a_attributes = {"no_such_attribute"};
  EXPECT_FALSE(SplitVertically(echo, unknown).ok());

  VerticalSplitOptions empty_side;
  empty_side.party_a_attributes = {};
  EXPECT_FALSE(SplitVertically(echo, empty_side).ok());
}

TEST(VerticalSplitTest, SplitEchocardiogramRunsFullScenario) {
  // Any dataset can become a VFL scenario: split the echocardiogram
  // replica and run the complete pipeline with alive_at_1 as the label.
  Relation echo = datasets::Echocardiogram();
  VerticalSplitOptions options;
  options.party_a_attributes = {"survival", "still_alive", "alive_at_1",
                                "age_at_heart_attack"};
  options.party_a_coverage = 0.95;
  options.party_b_coverage = 0.9;
  auto split = SplitVertically(echo, options);
  ASSERT_TRUE(split.ok());
  Party a("hospital_a", split->party_a, split->key_attribute);
  Party b("hospital_b", split->party_b, split->key_attribute);
  ScenarioOptions scenario;
  scenario.label_attribute = "alive_at_1";
  scenario.train.epochs = 60;
  auto outcome = RunScenario(a, b, scenario);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_GT(outcome->intersection_size, 80u);
  EXPECT_GT(outcome->joint_accuracy, 0.5);
  EXPECT_EQ(outcome->leakage_by_level.size(), 4u);
}

// --- End-to-end scenario --------------------------------------------------------------

TEST(ScenarioTest, FintechEndToEnd) {
  datasets::FintechScenario s = datasets::Fintech();
  Party bank("bank", s.bank, "customer_id");
  Party ecom("ecom", s.ecommerce, "customer_id");
  ScenarioOptions options;
  options.train.epochs = 120;
  auto outcome = RunScenario(bank, ecom, options);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_GT(outcome->intersection_size, 200u);
  EXPECT_GT(outcome->joint_accuracy, 0.5);
  // Federation helps: the joint model should beat (or match) solo A.
  EXPECT_GE(outcome->joint_accuracy,
            outcome->party_a_only_accuracy - 0.02);
  ASSERT_EQ(outcome->leakage_by_level.size(), 4u);
}

TEST(ScenarioTest, FdLevelLeaksNoMoreThanDomains) {
  // The paper's conclusion at scenario level: disclosing FDs/RFDs on top
  // of domains does not increase categorical exact-match leakage beyond
  // noise.
  datasets::FintechScenario s = datasets::Fintech();
  Party bank("bank", s.bank, "customer_id");
  Party ecom("ecom", s.ecommerce, "customer_id");
  auto outcome = RunScenario(bank, ecom);
  ASSERT_TRUE(outcome.ok());
  const auto& levels = outcome->leakage_by_level;
  double domains_matches =
      static_cast<double>(levels[1].leakage.TotalCategoricalMatches());
  double rfds_matches =
      static_cast<double>(levels[3].leakage.TotalCategoricalMatches());
  // Binomial noise bound: a few standard deviations of sqrt(N).
  double slack =
      4.0 * std::sqrt(static_cast<double>(outcome->intersection_size));
  EXPECT_LE(rfds_matches, domains_matches + slack);
}

}  // namespace
}  // namespace metaleak
