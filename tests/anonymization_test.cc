// Tests for src/privacy/anonymization: k-anonymity checking and the
// generalize-then-suppress anonymizer, plus the interaction with
// identifiability (Definition 2.1).
#include <gtest/gtest.h>

#include "data/datasets/echocardiogram.h"
#include "data/datasets/employee.h"
#include "privacy/anonymization.h"
#include "privacy/identifiability.h"

namespace metaleak {
namespace {

Relation MakeRelation(std::vector<Attribute> attrs,
                      std::vector<std::vector<Value>> cols) {
  return std::move(Relation::Make(Schema(std::move(attrs)), std::move(cols)))
      .ValueOrDie();
}

Attribute Cat(const char* name) {
  return {name, DataType::kString, SemanticType::kCategorical};
}
Attribute Cont(const char* name) {
  return {name, DataType::kDouble, SemanticType::kContinuous};
}

TEST(KAnonymityTest, MinGroupSize) {
  Relation r = MakeRelation(
      {Cat("c")}, {{Value::Str("a"), Value::Str("a"), Value::Str("b")}});
  auto min = MinGroupSize(r, AttributeSet::Single(0));
  ASSERT_TRUE(min.ok());
  EXPECT_EQ(*min, 1u);  // "b" is alone

  Relation pairs = MakeRelation(
      {Cat("c")}, {{Value::Str("a"), Value::Str("a"), Value::Str("b"),
                    Value::Str("b")}});
  EXPECT_EQ(*MinGroupSize(pairs, AttributeSet::Single(0)), 2u);
}

TEST(KAnonymityTest, IsKAnonymous) {
  Relation pairs = MakeRelation(
      {Cat("c")}, {{Value::Str("a"), Value::Str("a"), Value::Str("b"),
                    Value::Str("b")}});
  EXPECT_TRUE(*IsKAnonymous(pairs, AttributeSet::Single(0), 2));
  EXPECT_FALSE(*IsKAnonymous(pairs, AttributeSet::Single(0), 3));
  EXPECT_FALSE(IsKAnonymous(pairs, AttributeSet::Single(0), 0).ok());
  EXPECT_FALSE(IsKAnonymous(pairs, AttributeSet(), 2).ok());
}

TEST(KAnonymityTest, EmployeeIsNotAnonymousOnName) {
  // Name is a key: 1-anonymous only.
  Relation employee = datasets::Employee();
  EXPECT_FALSE(*IsKAnonymous(employee, AttributeSet::Single(0), 2));
  EXPECT_EQ(*MinGroupSize(employee, AttributeSet::Single(0)), 1u);
}

TEST(AnonymizeTest, GeneralizesContinuousUntilK) {
  // 8 distinct ages; with wide enough bins groups reach k=2.
  std::vector<Value> ages;
  for (int i = 0; i < 8; ++i) {
    ages.push_back(Value::Real(20.0 + 5.0 * i));
  }
  Relation r = MakeRelation({Cont("age")}, {ages});
  AnonymizationOptions options;
  options.k = 2;
  options.initial_bins = 16;
  auto result = Anonymize(r, AttributeSet::Single(0), options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(
      *IsKAnonymous(result->relation, AttributeSet::Single(0), 2));
  // Generalized column is categorical interval labels now.
  EXPECT_EQ(result->relation.schema().attribute(0).semantic,
            SemanticType::kCategorical);
  EXPECT_GT(result->passes, 1u);  // needed widening
}

TEST(AnonymizeTest, SuppressesRareCategoricals) {
  std::vector<Value> col = {Value::Str("x"), Value::Str("x"),
                            Value::Str("x"), Value::Str("rare")};
  Relation r = MakeRelation({Cat("c")}, {col});
  AnonymizationOptions options;
  options.k = 3;
  auto result = Anonymize(r, AttributeSet::Single(0), options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(
      *IsKAnonymous(result->relation, AttributeSet::Single(0), 3));
  // The rare value was generalized to "*" or its row suppressed.
  bool saw_star = false;
  for (const Value& v : result->relation.column(0)) {
    EXPECT_NE(v, Value::Str("rare"));
    if (v == Value::Str("*")) saw_star = true;
  }
  EXPECT_TRUE(saw_star || result->suppressed_rows > 0);
}

TEST(AnonymizeTest, NonQuasiAttributesPassThrough) {
  Relation r = MakeRelation(
      {Cont("age"), Cat("payload")},
      {{Value::Real(20), Value::Real(21)},
       {Value::Str("keep1"), Value::Str("keep2")}});
  auto result = Anonymize(r, AttributeSet::Single(0));
  ASSERT_TRUE(result.ok());
  if (result->relation.num_rows() == 2) {
    EXPECT_EQ(result->relation.at(0, 1), Value::Str("keep1"));
    EXPECT_EQ(result->relation.at(1, 1), Value::Str("keep2"));
  }
}

TEST(AnonymizeTest, EchocardiogramBecomesKAnonymous) {
  Relation r = datasets::Echocardiogram();
  // Quasi-identifier: age + group (the demographic columns).
  AttributeSet qi = AttributeSet::Of({2, 11});
  AnonymizationOptions options;
  options.k = 4;
  auto result = Anonymize(r, qi, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(*IsKAnonymous(result->relation, qi, 4));
  // Anonymization destroys identifiability on the quasi-identifier.
  auto frac_before = IdentifiableFraction(r, qi);
  auto frac_after = IdentifiableFraction(result->relation, qi);
  ASSERT_TRUE(frac_before.ok() && frac_after.ok());
  EXPECT_GT(*frac_before, 0.0);
  EXPECT_DOUBLE_EQ(*frac_after, 0.0);
}

TEST(AnonymizeTest, LargerKNeverDecreasesSuppression) {
  Relation r = datasets::Echocardiogram();
  AttributeSet qi = AttributeSet::Of({2, 11});
  size_t prev_suppressed = 0;
  for (size_t k : {2u, 4u, 8u, 16u}) {
    AnonymizationOptions options;
    options.k = k;
    options.max_passes = 2;  // force the suppression path
    options.initial_bins = 8;
    auto result = Anonymize(r, qi, options);
    ASSERT_TRUE(result.ok());
    EXPECT_GE(result->suppressed_rows, prev_suppressed);
    prev_suppressed = result->suppressed_rows;
  }
}

TEST(AnonymizeTest, RejectsBadOptions) {
  Relation r = datasets::Employee();
  AnonymizationOptions bad_k;
  bad_k.k = 0;
  EXPECT_FALSE(Anonymize(r, AttributeSet::Single(0), bad_k).ok());
  AnonymizationOptions bad_bins;
  bad_bins.initial_bins = 0;
  EXPECT_FALSE(Anonymize(r, AttributeSet::Single(0), bad_bins).ok());
  EXPECT_FALSE(Anonymize(r, AttributeSet(), {}).ok());
}

}  // namespace
}  // namespace metaleak
