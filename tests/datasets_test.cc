// Tests for the shipped datasets: shape, planted dependencies, and the
// properties the evaluation relies on.
#include <gtest/gtest.h>

#include <algorithm>

#include "data/datasets/echocardiogram.h"
#include "data/datasets/employee.h"
#include "data/datasets/fintech.h"
#include "data/datasets/synthetic.h"
#include "discovery/rfd_discovery.h"
#include "partition/pli_cache.h"
#include "discovery/tane.h"
#include "discovery/validators.h"

namespace metaleak {
namespace {

// --- Employee (paper Table II) -----------------------------------------------

TEST(EmployeeTest, MatchesPaperTable) {
  Relation r = datasets::Employee();
  ASSERT_EQ(r.num_rows(), 4u);
  ASSERT_EQ(r.num_columns(), 4u);
  EXPECT_EQ(r.at(0, 0), Value::Str("Alice"));
  EXPECT_EQ(r.at(1, 2), Value::Str("Customer Service"));
  EXPECT_EQ(r.at(3, 3), Value::Int(35000));
  EXPECT_EQ(r.schema().attribute(1).semantic, SemanticType::kContinuous);
  EXPECT_EQ(r.schema().attribute(2).semantic, SemanticType::kCategorical);
}

TEST(EmployeeTest, PaperFdsHold) {
  Relation r = datasets::Employee();
  PliCache cache(&r);
  // Name -> Age and Name -> Salary (Example 2.1).
  EXPECT_TRUE(ValidateFd(&cache, AttributeSet::Single(0), 1));
  EXPECT_TRUE(ValidateFd(&cache, AttributeSet::Single(0), 3));
}

// --- Echocardiogram replica ----------------------------------------------------

TEST(EchocardiogramTest, ShapeMatchesUci) {
  Relation r = datasets::Echocardiogram();
  EXPECT_EQ(r.num_rows(), datasets::kEchocardiogramRows);
  EXPECT_EQ(r.num_columns(), datasets::kEchocardiogramAttributes);
}

TEST(EchocardiogramTest, DeterministicPerSeed) {
  EXPECT_EQ(datasets::Echocardiogram(), datasets::Echocardiogram());
  EXPECT_FALSE(datasets::Echocardiogram(1) == datasets::Echocardiogram(2));
}

TEST(EchocardiogramTest, SemanticSplitMatchesPaperTables) {
  // Table III profiles continuous attrs 0,2,4,5,6,7,8,9; Table IV
  // categorical attrs 1,3,11,12.
  Relation r = datasets::Echocardiogram();
  for (size_t c : {0u, 2u, 4u, 5u, 6u, 7u, 8u, 9u}) {
    EXPECT_EQ(r.schema().attribute(c).semantic, SemanticType::kContinuous)
        << "attr " << c;
  }
  for (size_t c : {1u, 3u, 11u, 12u}) {
    EXPECT_EQ(r.schema().attribute(c).semantic, SemanticType::kCategorical)
        << "attr " << c;
  }
}

TEST(EchocardiogramTest, HasMissingValues) {
  Relation r = datasets::Echocardiogram();
  size_t nulls = 0;
  for (size_t c = 0; c < r.num_columns(); ++c) {
    for (const Value& v : r.column(c)) {
      if (v.is_null()) ++nulls;
    }
  }
  EXPECT_GT(nulls, 10u);
}

TEST(EchocardiogramTest, PlantedFdsHold) {
  Relation r = datasets::Echocardiogram();
  PliCache cache(&r);
  auto idx = [&](const char* name) {
    return *r.schema().IndexOf(name);
  };
  EXPECT_TRUE(ValidateFd(&cache, AttributeSet::Single(idx("epss")),
                         idx("lvdd")));
  EXPECT_TRUE(ValidateFd(&cache,
                         AttributeSet::Single(idx("wall_motion_score")),
                         idx("wall_motion_index")));
  EXPECT_TRUE(ValidateFd(&cache, AttributeSet::Single(idx("survival")),
                         idx("alive_at_1")));
  // group values {1,2} belong to still_alive=0 and {3,4} to 1.
  EXPECT_TRUE(ValidateFd(&cache, AttributeSet::Single(idx("group")),
                         idx("still_alive")));
}

TEST(EchocardiogramTest, PlantedNdHolds) {
  Relation r = datasets::Echocardiogram();
  PliCache cache(&r);
  auto idx = [&](const char* name) {
    return *r.schema().IndexOf(name);
  };
  // still_alive ->(<=2) group over a 4-value domain: non-trivial ND.
  EXPECT_LE(ComputeMaxFanout(&cache, idx("still_alive"), idx("group")), 2u);
  size_t distinct_groups = 0;
  {
    std::vector<Value> vals = r.column(idx("group"));
    std::sort(vals.begin(), vals.end());
    distinct_groups = static_cast<size_t>(
        std::unique(vals.begin(), vals.end()) - vals.begin());
  }
  EXPECT_EQ(distinct_groups, 4u);
}

TEST(EchocardiogramTest, PlantedOdsHold) {
  Relation r = datasets::Echocardiogram();
  auto idx = [&](const char* name) {
    return *r.schema().IndexOf(name);
  };
  EXPECT_TRUE(ValidateOd(r, idx("epss"), idx("lvdd")));
  EXPECT_TRUE(
      ValidateOd(r, idx("wall_motion_score"), idx("wall_motion_index")));
  EXPECT_TRUE(ValidateOd(r, idx("survival"), idx("alive_at_1")));
}

TEST(EchocardiogramTest, AllDependencyClassesDiscoverable) {
  // The reason the paper picked this dataset: FDs, ODs and NDs are all
  // discoverable (non-trivially).
  Relation r = datasets::Echocardiogram();
  auto fds = DiscoverFds(r, TaneOptions{.max_lhs_size = 1});
  ASSERT_TRUE(fds.ok());
  size_t nontrivial_fds = 0;
  for (const Dependency& d : fds->dependencies) {
    if (!d.lhs.empty()) ++nontrivial_fds;
  }
  EXPECT_GT(nontrivial_fds, 0u);

  auto ods = DiscoverOds(r);
  ASSERT_TRUE(ods.ok());
  EXPECT_GT(ods->size(), 0u);

  auto nds = DiscoverNds(r);
  ASSERT_TRUE(nds.ok());
  EXPECT_GT(nds->size(), 0u);
}

TEST(EchocardiogramTest, NameColumnIsConstant) {
  Relation r = datasets::Echocardiogram();
  size_t name_idx = *r.schema().IndexOf("name");
  for (const Value& v : r.column(name_idx)) {
    EXPECT_EQ(v, Value::Str("name"));
  }
}

// --- Fintech scenario -------------------------------------------------------------

TEST(FintechTest, PartiesShareIdsPartially) {
  datasets::FintechScenario s = datasets::Fintech();
  EXPECT_GT(s.bank.num_rows(), 100u);
  EXPECT_GT(s.ecommerce.num_rows(), 100u);
  EXPECT_EQ(s.bank.schema().attribute(0).name, "customer_id");
  EXPECT_EQ(s.ecommerce.schema().attribute(0).name, "customer_id");
}

TEST(FintechTest, PlantedStructureHolds) {
  datasets::FintechScenario s = datasets::Fintech();
  PliCache bank_cache(&s.bank);
  size_t income = *s.bank.schema().IndexOf("income");
  size_t band = *s.bank.schema().IndexOf("credit_band");
  EXPECT_TRUE(ValidateFd(&bank_cache, AttributeSet::Single(income), band));

  size_t orders = *s.ecommerce.schema().IndexOf("orders_per_year");
  size_t spend = *s.ecommerce.schema().IndexOf("total_spend");
  PliCache ecom_cache(&s.ecommerce);
  EXPECT_TRUE(ValidateFd(&ecom_cache, AttributeSet::Single(orders), spend));
  EXPECT_TRUE(ValidateOd(s.ecommerce, orders, spend));
}

TEST(FintechTest, LabelHasBothClasses) {
  datasets::FintechScenario s = datasets::Fintech();
  size_t label = *s.bank.schema().IndexOf("loan_default");
  size_t ones = 0;
  for (const Value& v : s.bank.column(label)) {
    if (v == Value::Int(1)) ++ones;
  }
  EXPECT_GT(ones, 10u);
  EXPECT_LT(ones, s.bank.num_rows() - 10u);
}

// --- Synthetic generator -------------------------------------------------------------

TEST(SyntheticTest, RejectsInvalidConfigs) {
  datasets::SyntheticConfig empty;
  EXPECT_FALSE(datasets::Synthetic(empty).ok());

  datasets::SyntheticConfig bad_source;
  datasets::SyntheticAttribute a;
  a.name = "derived";
  a.kind = datasets::SyntheticAttribute::Kind::kDerivedMonotone;
  a.source = 0;  // references itself
  bad_source.attributes = {a};
  EXPECT_FALSE(datasets::Synthetic(bad_source).ok());
}

TEST(SyntheticTest, PlantsFdAndOd) {
  datasets::SyntheticConfig config;
  config.num_rows = 500;
  datasets::SyntheticAttribute base;
  base.name = "x";
  base.kind = datasets::SyntheticAttribute::Kind::kContinuousBase;
  base.lo = 0;
  base.hi = 100;
  datasets::SyntheticAttribute derived;
  derived.name = "y";
  derived.kind = datasets::SyntheticAttribute::Kind::kDerivedMonotone;
  derived.source = 0;
  derived.domain_size = 0;  // continuous output
  config.attributes = {base, derived};
  auto r = datasets::Synthetic(config);
  ASSERT_TRUE(r.ok());
  PliCache cache(&*r);
  EXPECT_TRUE(ValidateFd(&cache, AttributeSet::Single(0), 1));
  EXPECT_TRUE(ValidateOd(*r, 0, 1));
}

TEST(SyntheticTest, PlantsBoundedFanout) {
  datasets::SyntheticConfig config;
  config.num_rows = 1000;
  datasets::SyntheticAttribute base;
  base.name = "x";
  base.kind = datasets::SyntheticAttribute::Kind::kCategoricalBase;
  base.domain_size = 5;
  datasets::SyntheticAttribute derived;
  derived.name = "y";
  derived.kind = datasets::SyntheticAttribute::Kind::kDerivedBoundedFanout;
  derived.source = 0;
  derived.domain_size = 30;
  derived.fanout = 3;
  config.attributes = {base, derived};
  auto r = datasets::Synthetic(config);
  ASSERT_TRUE(r.ok());
  PliCache cache(&*r);
  EXPECT_LE(ComputeMaxFanout(&cache, 0, 1), 3u);
}

TEST(SyntheticTest, ApproximateViolationRateIsBounded) {
  datasets::SyntheticConfig config;
  config.num_rows = 4000;
  datasets::SyntheticAttribute base;
  base.name = "x";
  base.kind = datasets::SyntheticAttribute::Kind::kCategoricalBase;
  base.domain_size = 6;
  datasets::SyntheticAttribute derived;
  derived.name = "y";
  derived.kind = datasets::SyntheticAttribute::Kind::kDerivedApproximate;
  derived.source = 0;
  derived.domain_size = 6;
  derived.violation_rate = 0.08;
  config.attributes = {base, derived};
  auto r = datasets::Synthetic(config);
  ASSERT_TRUE(r.ok());
  PliCache cache(&*r);
  double g3 = ComputeG3(&cache, AttributeSet::Single(0), 1);
  EXPECT_GT(g3, 0.0);
  EXPECT_LT(g3, 0.12);  // bounded by the violation rate (plus slack)
}

TEST(TrivialControlTest, OnlyKeyBasedStructure) {
  auto r = datasets::TrivialControl(100, 5);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_rows(), 100u);
  // id is a key.
  PliCache cache(&*r);
  EXPECT_EQ(cache.Get(AttributeSet::Single(0))->num_classes(), 100u);
  // No order dependencies among the noise columns.
  auto ods = DiscoverOds(*r);
  ASSERT_TRUE(ods.ok());
  EXPECT_TRUE(ods->empty());
  // Every single-attribute FD has a key-like LHS (id or a unique noise
  // column) — the paper's "oversimplified mappings".
  auto fds = DiscoverFds(*r, TaneOptions{.max_lhs_size = 1,
                                         .include_constant_columns = false});
  ASSERT_TRUE(fds.ok());
  for (const Dependency& d : fds->dependencies) {
    size_t lhs = d.lhs.ToIndices()[0];
    EXPECT_EQ(cache.Get(AttributeSet::Single(lhs))->num_classes(), 100u)
        << d.ToString(r->schema());
  }
}

TEST(EchocardiogramTest, LoadUciFormatFile) {
  // Synthesize a UCI-format file (no header, "?" for missing) from the
  // replica and load it through the real-data path.
  Relation replica = datasets::Echocardiogram();
  std::string path = ::testing::TempDir() + "/echo_uci.data";
  {
    std::string text;
    for (size_t r = 0; r < replica.num_rows(); ++r) {
      for (size_t c = 0; c < replica.num_columns(); ++c) {
        if (c > 0) text += ',';
        text += replica.at(r, c).ToString();
      }
      text += '\n';
    }
    FILE* f = fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    fputs(text.c_str(), f);
    fclose(f);
  }
  auto loaded = datasets::LoadEchocardiogramFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_rows(), replica.num_rows());
  EXPECT_EQ(loaded->num_columns(), replica.num_columns());
  for (size_t c = 0; c < replica.num_columns(); ++c) {
    EXPECT_EQ(loaded->schema().attribute(c).name,
              replica.schema().attribute(c).name);
    EXPECT_EQ(loaded->schema().attribute(c).semantic,
              replica.schema().attribute(c).semantic)
        << "attr " << c;
  }
  // Null positions survive the round trip.
  size_t replica_nulls = 0;
  size_t loaded_nulls = 0;
  for (size_t c = 0; c < replica.num_columns(); ++c) {
    for (size_t r = 0; r < replica.num_rows(); ++r) {
      replica_nulls += replica.at(r, c).is_null() ? 1 : 0;
      loaded_nulls += loaded->at(r, c).is_null() ? 1 : 0;
    }
  }
  EXPECT_EQ(loaded_nulls, replica_nulls);
}

TEST(EchocardiogramTest, LoadRejectsWrongArity) {
  std::string path = ::testing::TempDir() + "/echo_bad.data";
  FILE* f = fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  fputs("1,2,3\n4,5,6\n", f);
  fclose(f);
  EXPECT_FALSE(datasets::LoadEchocardiogramFile(path).ok());
  EXPECT_FALSE(datasets::LoadEchocardiogramFile("/no/such/file").ok());
}

TEST(SyntheticTest, UniformHelperShape) {
  auto r = datasets::SyntheticUniform(200, 3, 2, 10, 9);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_rows(), 200u);
  EXPECT_EQ(r->num_columns(), 5u);
  EXPECT_EQ(r->schema().IndicesOf(SemanticType::kCategorical).size(), 3u);
  EXPECT_EQ(r->schema().IndicesOf(SemanticType::kContinuous).size(), 2u);
}

}  // namespace
}  // namespace metaleak
