// Tests for the shared lattice-search kernel (discovery/lattice.{h,cc}):
// golden-parity against the pre-refactor per-class search loops, the
// pruning hooks, degenerate inputs, and the max_lhs bound.
#include "discovery/lattice.h"

#include <gtest/gtest.h>

#include <mutex>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/parallel.h"
#include "common/string_util.h"
#include "data/datasets/echocardiogram.h"
#include "data/datasets/employee.h"
#include "data/datasets/synthetic.h"
#include "discovery/rfd_discovery.h"
#include "discovery/tane.h"
#include "metadata/metadata_package.h"

namespace metaleak {
namespace {

// Canonical discovery output of the pre-refactor code paths (TANE's
// hand-rolled level loop and the four pairwise RFD loops), captured on
// the reference datasets before the kernel refactor. One line per
// dependency: `dataset|CLASS|rendered dependency`. The kernel-based
// paths must reproduce every line exactly, at any thread count.
constexpr const char* kGoldenDiscovery = R"GOLDEN(
employee|FD|FD {0} -> 1
employee|FD|FD {0} -> 2
employee|FD|FD {0} -> 3
employee|FD|FD {1, 2} -> 0
employee|FD|FD {1, 2} -> 3
employee|FD|FD {3} -> 0
employee|FD|FD {3} -> 1
employee|FD|FD {3} -> 2
employee|AFD|FD {0} -> 1
employee|AFD|FD {0} -> 2
employee|AFD|FD {0} -> 3
employee|AFD|FD {3} -> 0
employee|AFD|FD {3} -> 1
employee|AFD|FD {3} -> 2
employee|OD|OD {0} -> 1
employee|OD|OD {0} -> 3
employee|OD|OD {3} -> 0
employee|OD|OD {3} -> 1
employee|OFD|OFD {0} -> 3
employee|OFD|OFD {3} -> 0
employee|ND|ND {1} -> 0 (K=2)
employee|ND|ND {1} -> 3 (K=2)
employee|ND|ND {2} -> 0 (K=2)
employee|ND|ND {2} -> 3 (K=2)
employee|DD|DD {1} -> 3 (eps=0.4, delta=2000)
employee|DD|DD {3} -> 1 (eps=750, delta=0)
echocardiogram|FD|FD {} -> 10
echocardiogram|FD|FD {0} -> 1
echocardiogram|FD|FD {0} -> 12
echocardiogram|FD|FD {0, 2} -> 3
echocardiogram|FD|FD {0, 2} -> 4
echocardiogram|FD|FD {0, 2} -> 5
echocardiogram|FD|FD {0, 2} -> 6
echocardiogram|FD|FD {0, 2} -> 7
echocardiogram|FD|FD {0, 2} -> 8
echocardiogram|FD|FD {0, 2} -> 9
echocardiogram|FD|FD {0, 2} -> 11
echocardiogram|FD|FD {0, 4} -> 2
echocardiogram|FD|FD {0, 4} -> 3
echocardiogram|FD|FD {0, 4} -> 5
echocardiogram|FD|FD {0, 4} -> 6
echocardiogram|FD|FD {0, 4} -> 7
echocardiogram|FD|FD {0, 4} -> 8
echocardiogram|FD|FD {0, 4} -> 9
echocardiogram|FD|FD {0, 4} -> 11
echocardiogram|FD|FD {2, 4} -> 1
echocardiogram|FD|FD {2, 4} -> 3
echocardiogram|FD|FD {5} -> 6
echocardiogram|FD|FD {0, 5} -> 2
echocardiogram|FD|FD {0, 5} -> 3
echocardiogram|FD|FD {0, 5} -> 4
echocardiogram|FD|FD {0, 5} -> 7
echocardiogram|FD|FD {0, 5} -> 8
echocardiogram|FD|FD {0, 5} -> 9
echocardiogram|FD|FD {0, 5} -> 11
echocardiogram|FD|FD {2, 5} -> 0
echocardiogram|FD|FD {2, 5} -> 1
echocardiogram|FD|FD {2, 5} -> 3
echocardiogram|FD|FD {2, 5} -> 4
echocardiogram|FD|FD {2, 5} -> 7
echocardiogram|FD|FD {2, 5} -> 8
echocardiogram|FD|FD {2, 5} -> 9
echocardiogram|FD|FD {2, 5} -> 11
echocardiogram|FD|FD {2, 5} -> 12
echocardiogram|FD|FD {4, 5} -> 0
echocardiogram|FD|FD {4, 5} -> 1
echocardiogram|FD|FD {4, 5} -> 2
echocardiogram|FD|FD {4, 5} -> 3
echocardiogram|FD|FD {4, 5} -> 7
echocardiogram|FD|FD {4, 5} -> 8
echocardiogram|FD|FD {4, 5} -> 9
echocardiogram|FD|FD {4, 5} -> 11
echocardiogram|FD|FD {4, 5} -> 12
echocardiogram|FD|FD {0, 6} -> 2
echocardiogram|FD|FD {0, 6} -> 3
echocardiogram|FD|FD {0, 6} -> 4
echocardiogram|FD|FD {0, 6} -> 5
echocardiogram|FD|FD {0, 6} -> 7
echocardiogram|FD|FD {0, 6} -> 8
echocardiogram|FD|FD {0, 6} -> 9
echocardiogram|FD|FD {0, 6} -> 11
echocardiogram|FD|FD {1, 2, 6} -> 12
echocardiogram|FD|FD {2, 3, 6} -> 1
echocardiogram|FD|FD {2, 3, 6} -> 11
echocardiogram|FD|FD {2, 3, 6} -> 12
echocardiogram|FD|FD {4, 6} -> 0
echocardiogram|FD|FD {4, 6} -> 1
echocardiogram|FD|FD {4, 6} -> 2
echocardiogram|FD|FD {4, 6} -> 3
echocardiogram|FD|FD {4, 6} -> 5
echocardiogram|FD|FD {4, 6} -> 7
echocardiogram|FD|FD {4, 6} -> 8
echocardiogram|FD|FD {4, 6} -> 9
echocardiogram|FD|FD {4, 6} -> 11
echocardiogram|FD|FD {4, 6} -> 12
echocardiogram|FD|FD {7} -> 8
echocardiogram|FD|FD {2, 7} -> 3
echocardiogram|FD|FD {1, 2, 7} -> 0
echocardiogram|FD|FD {1, 2, 7} -> 4
echocardiogram|FD|FD {1, 2, 7} -> 5
echocardiogram|FD|FD {1, 2, 7} -> 6
echocardiogram|FD|FD {1, 2, 7} -> 9
echocardiogram|FD|FD {1, 2, 7} -> 11
echocardiogram|FD|FD {1, 2, 7} -> 12
echocardiogram|FD|FD {0, 3, 7} -> 2
echocardiogram|FD|FD {0, 3, 7} -> 4
echocardiogram|FD|FD {0, 3, 7} -> 5
echocardiogram|FD|FD {0, 3, 7} -> 6
echocardiogram|FD|FD {0, 3, 7} -> 9
echocardiogram|FD|FD {0, 3, 7} -> 11
echocardiogram|FD|FD {4, 7} -> 0
echocardiogram|FD|FD {4, 7} -> 1
echocardiogram|FD|FD {4, 7} -> 2
echocardiogram|FD|FD {4, 7} -> 3
echocardiogram|FD|FD {4, 7} -> 5
echocardiogram|FD|FD {4, 7} -> 6
echocardiogram|FD|FD {4, 7} -> 9
echocardiogram|FD|FD {4, 7} -> 11
echocardiogram|FD|FD {4, 7} -> 12
echocardiogram|FD|FD {5, 7} -> 1
echocardiogram|FD|FD {5, 7} -> 11
echocardiogram|FD|FD {5, 7} -> 12
echocardiogram|FD|FD {3, 5, 7} -> 0
echocardiogram|FD|FD {3, 5, 7} -> 2
echocardiogram|FD|FD {3, 5, 7} -> 4
echocardiogram|FD|FD {3, 5, 7} -> 9
echocardiogram|FD|FD {6, 7} -> 12
echocardiogram|FD|FD {2, 6, 7} -> 0
echocardiogram|FD|FD {2, 6, 7} -> 1
echocardiogram|FD|FD {2, 6, 7} -> 4
echocardiogram|FD|FD {2, 6, 7} -> 5
echocardiogram|FD|FD {2, 6, 7} -> 9
echocardiogram|FD|FD {2, 6, 7} -> 11
echocardiogram|FD|FD {8} -> 7
echocardiogram|FD|FD {2, 8} -> 3
echocardiogram|FD|FD {1, 2, 8} -> 0
echocardiogram|FD|FD {1, 2, 8} -> 4
echocardiogram|FD|FD {1, 2, 8} -> 5
echocardiogram|FD|FD {1, 2, 8} -> 6
echocardiogram|FD|FD {1, 2, 8} -> 9
echocardiogram|FD|FD {1, 2, 8} -> 11
echocardiogram|FD|FD {1, 2, 8} -> 12
echocardiogram|FD|FD {0, 3, 8} -> 2
echocardiogram|FD|FD {0, 3, 8} -> 4
echocardiogram|FD|FD {0, 3, 8} -> 5
echocardiogram|FD|FD {0, 3, 8} -> 6
echocardiogram|FD|FD {0, 3, 8} -> 9
echocardiogram|FD|FD {0, 3, 8} -> 11
echocardiogram|FD|FD {4, 8} -> 0
echocardiogram|FD|FD {4, 8} -> 1
echocardiogram|FD|FD {4, 8} -> 2
echocardiogram|FD|FD {4, 8} -> 3
echocardiogram|FD|FD {4, 8} -> 5
echocardiogram|FD|FD {4, 8} -> 6
echocardiogram|FD|FD {4, 8} -> 9
echocardiogram|FD|FD {4, 8} -> 11
echocardiogram|FD|FD {4, 8} -> 12
echocardiogram|FD|FD {5, 8} -> 1
echocardiogram|FD|FD {5, 8} -> 11
echocardiogram|FD|FD {5, 8} -> 12
echocardiogram|FD|FD {3, 5, 8} -> 0
echocardiogram|FD|FD {3, 5, 8} -> 2
echocardiogram|FD|FD {3, 5, 8} -> 4
echocardiogram|FD|FD {3, 5, 8} -> 9
echocardiogram|FD|FD {6, 8} -> 12
echocardiogram|FD|FD {2, 6, 8} -> 0
echocardiogram|FD|FD {2, 6, 8} -> 1
echocardiogram|FD|FD {2, 6, 8} -> 4
echocardiogram|FD|FD {2, 6, 8} -> 5
echocardiogram|FD|FD {2, 6, 8} -> 9
echocardiogram|FD|FD {2, 6, 8} -> 11
echocardiogram|FD|FD {0, 9} -> 2
echocardiogram|FD|FD {0, 9} -> 3
echocardiogram|FD|FD {0, 9} -> 4
echocardiogram|FD|FD {0, 9} -> 5
echocardiogram|FD|FD {0, 9} -> 6
echocardiogram|FD|FD {0, 9} -> 7
echocardiogram|FD|FD {0, 9} -> 8
echocardiogram|FD|FD {0, 9} -> 11
echocardiogram|FD|FD {2, 9} -> 12
echocardiogram|FD|FD {4, 9} -> 3
echocardiogram|FD|FD {1, 4, 9} -> 12
echocardiogram|FD|FD {2, 4, 9} -> 0
echocardiogram|FD|FD {2, 4, 9} -> 5
echocardiogram|FD|FD {2, 4, 9} -> 6
echocardiogram|FD|FD {2, 4, 9} -> 7
echocardiogram|FD|FD {2, 4, 9} -> 8
echocardiogram|FD|FD {2, 4, 9} -> 11
echocardiogram|FD|FD {1, 5, 9} -> 0
echocardiogram|FD|FD {1, 5, 9} -> 2
echocardiogram|FD|FD {1, 5, 9} -> 3
echocardiogram|FD|FD {1, 5, 9} -> 4
echocardiogram|FD|FD {1, 5, 9} -> 7
echocardiogram|FD|FD {1, 5, 9} -> 8
echocardiogram|FD|FD {1, 5, 9} -> 11
echocardiogram|FD|FD {1, 5, 9} -> 12
echocardiogram|FD|FD {1, 6, 9} -> 0
echocardiogram|FD|FD {1, 6, 9} -> 2
echocardiogram|FD|FD {1, 6, 9} -> 3
echocardiogram|FD|FD {1, 6, 9} -> 4
echocardiogram|FD|FD {1, 6, 9} -> 5
echocardiogram|FD|FD {1, 6, 9} -> 7
echocardiogram|FD|FD {1, 6, 9} -> 8
echocardiogram|FD|FD {1, 6, 9} -> 11
echocardiogram|FD|FD {1, 6, 9} -> 12
echocardiogram|FD|FD {2, 6, 9} -> 0
echocardiogram|FD|FD {2, 6, 9} -> 1
echocardiogram|FD|FD {2, 6, 9} -> 3
echocardiogram|FD|FD {2, 6, 9} -> 4
echocardiogram|FD|FD {2, 6, 9} -> 5
echocardiogram|FD|FD {2, 6, 9} -> 7
echocardiogram|FD|FD {2, 6, 9} -> 8
echocardiogram|FD|FD {2, 6, 9} -> 11
echocardiogram|FD|FD {7, 9} -> 1
echocardiogram|FD|FD {7, 9} -> 3
echocardiogram|FD|FD {7, 9} -> 11
echocardiogram|FD|FD {7, 9} -> 12
echocardiogram|FD|FD {2, 7, 9} -> 0
echocardiogram|FD|FD {2, 7, 9} -> 4
echocardiogram|FD|FD {2, 7, 9} -> 5
echocardiogram|FD|FD {2, 7, 9} -> 6
echocardiogram|FD|FD {5, 7, 9} -> 0
echocardiogram|FD|FD {5, 7, 9} -> 2
echocardiogram|FD|FD {5, 7, 9} -> 4
echocardiogram|FD|FD {6, 7, 9} -> 0
echocardiogram|FD|FD {6, 7, 9} -> 2
echocardiogram|FD|FD {6, 7, 9} -> 4
echocardiogram|FD|FD {6, 7, 9} -> 5
echocardiogram|FD|FD {8, 9} -> 1
echocardiogram|FD|FD {8, 9} -> 3
echocardiogram|FD|FD {8, 9} -> 11
echocardiogram|FD|FD {8, 9} -> 12
echocardiogram|FD|FD {2, 8, 9} -> 0
echocardiogram|FD|FD {2, 8, 9} -> 4
echocardiogram|FD|FD {2, 8, 9} -> 5
echocardiogram|FD|FD {2, 8, 9} -> 6
echocardiogram|FD|FD {5, 8, 9} -> 0
echocardiogram|FD|FD {5, 8, 9} -> 2
echocardiogram|FD|FD {5, 8, 9} -> 4
echocardiogram|FD|FD {6, 8, 9} -> 0
echocardiogram|FD|FD {6, 8, 9} -> 2
echocardiogram|FD|FD {6, 8, 9} -> 4
echocardiogram|FD|FD {6, 8, 9} -> 5
echocardiogram|FD|FD {11} -> 1
echocardiogram|FD|FD {4, 11} -> 12
echocardiogram|FD|FD {2, 4, 11} -> 0
echocardiogram|FD|FD {2, 4, 11} -> 5
echocardiogram|FD|FD {2, 4, 11} -> 6
echocardiogram|FD|FD {2, 4, 11} -> 7
echocardiogram|FD|FD {2, 4, 11} -> 8
echocardiogram|FD|FD {2, 4, 11} -> 9
echocardiogram|FD|FD {3, 5, 11} -> 12
echocardiogram|FD|FD {2, 6, 11} -> 3
echocardiogram|FD|FD {2, 6, 11} -> 12
echocardiogram|FD|FD {0, 7, 11} -> 2
echocardiogram|FD|FD {0, 7, 11} -> 3
echocardiogram|FD|FD {0, 7, 11} -> 4
echocardiogram|FD|FD {0, 7, 11} -> 5
echocardiogram|FD|FD {0, 7, 11} -> 6
echocardiogram|FD|FD {0, 7, 11} -> 9
echocardiogram|FD|FD {2, 7, 11} -> 0
echocardiogram|FD|FD {2, 7, 11} -> 4
echocardiogram|FD|FD {2, 7, 11} -> 5
echocardiogram|FD|FD {2, 7, 11} -> 6
echocardiogram|FD|FD {2, 7, 11} -> 9
echocardiogram|FD|FD {2, 7, 11} -> 12
echocardiogram|FD|FD {0, 8, 11} -> 2
echocardiogram|FD|FD {0, 8, 11} -> 3
echocardiogram|FD|FD {0, 8, 11} -> 4
echocardiogram|FD|FD {0, 8, 11} -> 5
echocardiogram|FD|FD {0, 8, 11} -> 6
echocardiogram|FD|FD {0, 8, 11} -> 9
echocardiogram|FD|FD {2, 8, 11} -> 0
echocardiogram|FD|FD {2, 8, 11} -> 4
echocardiogram|FD|FD {2, 8, 11} -> 5
echocardiogram|FD|FD {2, 8, 11} -> 6
echocardiogram|FD|FD {2, 8, 11} -> 9
echocardiogram|FD|FD {2, 8, 11} -> 12
echocardiogram|FD|FD {2, 9, 11} -> 3
echocardiogram|FD|FD {4, 9, 11} -> 0
echocardiogram|FD|FD {4, 9, 11} -> 2
echocardiogram|FD|FD {4, 9, 11} -> 5
echocardiogram|FD|FD {4, 9, 11} -> 6
echocardiogram|FD|FD {4, 9, 11} -> 7
echocardiogram|FD|FD {4, 9, 11} -> 8
echocardiogram|FD|FD {5, 9, 11} -> 0
echocardiogram|FD|FD {5, 9, 11} -> 2
echocardiogram|FD|FD {5, 9, 11} -> 3
echocardiogram|FD|FD {5, 9, 11} -> 4
echocardiogram|FD|FD {5, 9, 11} -> 7
echocardiogram|FD|FD {5, 9, 11} -> 8
echocardiogram|FD|FD {5, 9, 11} -> 12
echocardiogram|FD|FD {6, 9, 11} -> 0
echocardiogram|FD|FD {6, 9, 11} -> 2
echocardiogram|FD|FD {6, 9, 11} -> 3
echocardiogram|FD|FD {6, 9, 11} -> 4
echocardiogram|FD|FD {6, 9, 11} -> 5
echocardiogram|FD|FD {6, 9, 11} -> 7
echocardiogram|FD|FD {6, 9, 11} -> 8
echocardiogram|FD|FD {6, 9, 11} -> 12
echocardiogram|FD|FD {2, 6, 12} -> 1
echocardiogram|FD|FD {2, 7, 12} -> 0
echocardiogram|FD|FD {2, 7, 12} -> 1
echocardiogram|FD|FD {2, 7, 12} -> 4
echocardiogram|FD|FD {2, 7, 12} -> 5
echocardiogram|FD|FD {2, 7, 12} -> 6
echocardiogram|FD|FD {2, 7, 12} -> 9
echocardiogram|FD|FD {2, 7, 12} -> 11
echocardiogram|FD|FD {2, 8, 12} -> 0
echocardiogram|FD|FD {2, 8, 12} -> 1
echocardiogram|FD|FD {2, 8, 12} -> 4
echocardiogram|FD|FD {2, 8, 12} -> 5
echocardiogram|FD|FD {2, 8, 12} -> 6
echocardiogram|FD|FD {2, 8, 12} -> 9
echocardiogram|FD|FD {2, 8, 12} -> 11
echocardiogram|FD|FD {4, 9, 12} -> 1
echocardiogram|AFD|FD {0} -> 1
echocardiogram|AFD|FD {0} -> 10
echocardiogram|AFD|FD {0} -> 12
echocardiogram|AFD|FD {1} -> 10
echocardiogram|AFD|FD {2} -> 10
echocardiogram|AFD|FD {3} -> 10
echocardiogram|AFD|FD {4} -> 10
echocardiogram|AFD|FD {5} -> 6
echocardiogram|AFD|FD {5} -> 10
echocardiogram|AFD|FD {6} -> 10
echocardiogram|AFD|FD {7} -> 8
echocardiogram|AFD|FD {7} -> 10
echocardiogram|AFD|FD {8} -> 7
echocardiogram|AFD|FD {8} -> 10
echocardiogram|AFD|FD {9} -> 10
echocardiogram|AFD|FD {11} -> 1
echocardiogram|AFD|FD {11} -> 10
echocardiogram|AFD|FD {12} -> 10
echocardiogram|AFD|AFD {4} -> 1 (g3=0.0682)
echocardiogram|AFD|AFD {4} -> 3 (g3=0.0303)
echocardiogram|AFD|AFD {4} -> 11 (g3=0.0985)
echocardiogram|AFD|AFD {4} -> 12 (g3=0.0455)
echocardiogram|AFD|AFD {5} -> 1 (g3=0.0833)
echocardiogram|AFD|AFD {5} -> 3 (g3=0.0379)
echocardiogram|AFD|AFD {5} -> 12 (g3=0.0379)
echocardiogram|AFD|AFD {9} -> 3 (g3=0.0833)
echocardiogram|OD|OD {0} -> 1
echocardiogram|OD|OD {0} -> 10
echocardiogram|OD|OD {0} -> 12
echocardiogram|OD|OD {1} -> 10
echocardiogram|OD|OD {2} -> 10
echocardiogram|OD|OD {3} -> 10
echocardiogram|OD|OD {4} -> 10
echocardiogram|OD|OD {5} -> 6
echocardiogram|OD|OD {5} -> 10
echocardiogram|OD|OD {6} -> 10
echocardiogram|OD|OD {7} -> 8
echocardiogram|OD|OD {7} -> 10
echocardiogram|OD|OD {8} -> 7
echocardiogram|OD|OD {8} -> 10
echocardiogram|OD|OD {9} -> 10
echocardiogram|OD|OD {11} -> 1
echocardiogram|OD|OD {11} -> 10
echocardiogram|OD|OD {12} -> 10
echocardiogram|OFD|OFD {7} -> 8
echocardiogram|OFD|OFD {8} -> 7
echocardiogram|ND|ND {0} -> 2 (K=3)
echocardiogram|ND|ND {0} -> 4 (K=3)
echocardiogram|ND|ND {0} -> 5 (K=3)
echocardiogram|ND|ND {0} -> 6 (K=3)
echocardiogram|ND|ND {0} -> 7 (K=3)
echocardiogram|ND|ND {0} -> 8 (K=3)
echocardiogram|ND|ND {0} -> 9 (K=3)
echocardiogram|ND|ND {0} -> 11 (K=2)
echocardiogram|ND|ND {1} -> 0 (K=54)
echocardiogram|ND|ND {1} -> 4 (K=66)
echocardiogram|ND|ND {1} -> 5 (K=61)
echocardiogram|ND|ND {1} -> 7 (K=40)
echocardiogram|ND|ND {1} -> 8 (K=40)
echocardiogram|ND|ND {1} -> 9 (K=56)
echocardiogram|ND|ND {1} -> 11 (K=2)
echocardiogram|ND|ND {2} -> 0 (K=6)
echocardiogram|ND|ND {2} -> 4 (K=6)
echocardiogram|ND|ND {2} -> 5 (K=6)
echocardiogram|ND|ND {2} -> 6 (K=6)
echocardiogram|ND|ND {2} -> 7 (K=6)
echocardiogram|ND|ND {2} -> 8 (K=6)
echocardiogram|ND|ND {2} -> 9 (K=6)
echocardiogram|ND|ND {4} -> 0 (K=7)
echocardiogram|ND|ND {4} -> 2 (K=6)
echocardiogram|ND|ND {4} -> 5 (K=7)
echocardiogram|ND|ND {4} -> 6 (K=7)
echocardiogram|ND|ND {4} -> 7 (K=7)
echocardiogram|ND|ND {4} -> 8 (K=7)
echocardiogram|ND|ND {4} -> 9 (K=6)
echocardiogram|ND|ND {5} -> 0 (K=10)
echocardiogram|ND|ND {5} -> 2 (K=10)
echocardiogram|ND|ND {5} -> 4 (K=10)
echocardiogram|ND|ND {5} -> 7 (K=9)
echocardiogram|ND|ND {5} -> 8 (K=9)
echocardiogram|ND|ND {5} -> 9 (K=8)
echocardiogram|ND|ND {6} -> 0 (K=10)
echocardiogram|ND|ND {6} -> 2 (K=10)
echocardiogram|ND|ND {6} -> 4 (K=10)
echocardiogram|ND|ND {6} -> 5 (K=6)
echocardiogram|ND|ND {6} -> 7 (K=9)
echocardiogram|ND|ND {6} -> 8 (K=9)
echocardiogram|ND|ND {6} -> 9 (K=8)
echocardiogram|ND|ND {7} -> 0 (K=6)
echocardiogram|ND|ND {7} -> 2 (K=6)
echocardiogram|ND|ND {7} -> 4 (K=6)
echocardiogram|ND|ND {7} -> 5 (K=6)
echocardiogram|ND|ND {7} -> 6 (K=6)
echocardiogram|ND|ND {7} -> 9 (K=6)
echocardiogram|ND|ND {8} -> 0 (K=6)
echocardiogram|ND|ND {8} -> 2 (K=6)
echocardiogram|ND|ND {8} -> 4 (K=6)
echocardiogram|ND|ND {8} -> 5 (K=6)
echocardiogram|ND|ND {8} -> 6 (K=6)
echocardiogram|ND|ND {8} -> 9 (K=6)
echocardiogram|ND|ND {9} -> 0 (K=9)
echocardiogram|ND|ND {9} -> 2 (K=7)
echocardiogram|ND|ND {9} -> 4 (K=8)
echocardiogram|ND|ND {9} -> 5 (K=8)
echocardiogram|ND|ND {9} -> 6 (K=8)
echocardiogram|ND|ND {9} -> 7 (K=9)
echocardiogram|ND|ND {9} -> 8 (K=9)
echocardiogram|ND|ND {11} -> 0 (K=36)
echocardiogram|ND|ND {11} -> 2 (K=29)
echocardiogram|ND|ND {11} -> 4 (K=39)
echocardiogram|ND|ND {11} -> 5 (K=36)
echocardiogram|ND|ND {11} -> 6 (K=26)
echocardiogram|ND|ND {11} -> 7 (K=28)
echocardiogram|ND|ND {11} -> 8 (K=28)
echocardiogram|ND|ND {11} -> 9 (K=35)
echocardiogram|ND|ND {12} -> 0 (K=74)
echocardiogram|DD|DD {5} -> 6 (eps=1.98, delta=0.3)
echocardiogram|DD|DD {6} -> 5 (eps=0.22, delta=2.6)
echocardiogram|DD|DD {7} -> 8 (eps=1.85, delta=0.11)
echocardiogram|DD|DD {8} -> 7 (eps=0.1325, delta=1.5)
synthetic|FD|FD {1} -> 2
synthetic|FD|FD {0, 1} -> 3
synthetic|FD|FD {0, 1} -> 4
synthetic|FD|FD {0, 2} -> 1
synthetic|FD|FD {0, 2} -> 3
synthetic|FD|FD {0, 2} -> 4
synthetic|FD|FD {1, 3} -> 0
synthetic|FD|FD {1, 3} -> 4
synthetic|FD|FD {2, 3} -> 0
synthetic|FD|FD {2, 3} -> 1
synthetic|FD|FD {2, 3} -> 4
synthetic|FD|FD {1, 4} -> 0
synthetic|FD|FD {1, 4} -> 3
synthetic|FD|FD {2, 4} -> 0
synthetic|FD|FD {2, 4} -> 1
synthetic|FD|FD {2, 4} -> 3
synthetic|AFD|FD {1} -> 2
synthetic|AFD|AFD {0} -> 4 (g3=0.05)
synthetic|AFD|AFD {1} -> 0 (g3=0.005)
synthetic|AFD|AFD {1} -> 3 (g3=0.005)
synthetic|AFD|AFD {1} -> 4 (g3=0.005)
synthetic|AFD|AFD {2} -> 0 (g3=0.015)
synthetic|AFD|AFD {2} -> 1 (g3=0.01)
synthetic|AFD|AFD {2} -> 3 (g3=0.015)
synthetic|AFD|AFD {2} -> 4 (g3=0.015)
synthetic|OD|OD {1} -> 2
synthetic|ND|ND {0} -> 1 (K=41)
synthetic|ND|ND {0} -> 2 (K=41)
synthetic|ND|ND {0} -> 3 (K=2)
synthetic|ND|ND {1} -> 0 (K=2)
synthetic|ND|ND {1} -> 3 (K=2)
synthetic|ND|ND {1} -> 4 (K=2)
synthetic|ND|ND {2} -> 0 (K=2)
synthetic|ND|ND {2} -> 1 (K=2)
synthetic|ND|ND {2} -> 3 (K=2)
synthetic|ND|ND {2} -> 4 (K=2)
synthetic|ND|ND {3} -> 0 (K=3)
synthetic|ND|ND {3} -> 1 (K=41)
synthetic|ND|ND {3} -> 2 (K=41)
synthetic|ND|ND {3} -> 4 (K=4)
synthetic|ND|ND {4} -> 0 (K=3)
synthetic|ND|ND {4} -> 1 (K=70)
synthetic|ND|ND {4} -> 2 (K=70)
synthetic|ND|ND {4} -> 3 (K=5)
synthetic|DD|DD {1} -> 2 (eps=4.9625, delta=1.84)
synthetic|DD|DD {2} -> 1 (eps=1.836, delta=4.95)
)GOLDEN";

Relation MakeRelation(std::vector<Attribute> attrs,
                      std::vector<std::vector<Value>> cols) {
  return std::move(Relation::Make(Schema(std::move(attrs)), std::move(cols)))
      .ValueOrDie();
}

std::vector<Value> Ints(std::initializer_list<int64_t> xs) {
  std::vector<Value> out;
  for (int64_t x : xs) out.push_back(Value::Int(x));
  return out;
}

Attribute Cat(const char* name) {
  return {name, DataType::kInt64, SemanticType::kCategorical};
}

// The synthetic dataset the golden baseline was captured on.
Relation SyntheticGolden() {
  datasets::SyntheticConfig cfg;
  cfg.num_rows = 200;
  cfg.seed = 7;
  using Kind = datasets::SyntheticAttribute::Kind;
  cfg.attributes = {
      {.name = "cat", .kind = Kind::kCategoricalBase, .domain_size = 6},
      {.name = "cont", .kind = Kind::kContinuousBase, .lo = 0, .hi = 100},
      {.name = "mono", .kind = Kind::kDerivedMonotone, .domain_size = 0,
       .source = 1},
      {.name = "pool", .kind = Kind::kDerivedBoundedFanout, .domain_size = 8,
       .source = 0, .fanout = 2},
      {.name = "near", .kind = Kind::kDerivedApproximate, .domain_size = 6,
       .source = 0, .violation_rate = 0.05},
  };
  return std::move(datasets::Synthetic(cfg)).ValueOrDie();
}

// Replays the exact class configurations the golden dump used, through
// the kernel-based discovery paths.
std::vector<std::string> RunAllClasses(const char* dataset,
                                       const Relation& relation) {
  std::vector<std::string> lines;
  auto print = [&](const char* cls, const DependencySet& deps) {
    for (const Dependency& d : deps) {
      lines.push_back(std::string(dataset) + "|" + cls + "|" + d.ToString());
    }
  };
  TaneOptions fd_options;  // defaults: max_lhs_size=3
  print("FD",
        std::move(DiscoverFds(relation, fd_options)).ValueOrDie().dependencies);
  TaneOptions afd_options;
  afd_options.max_lhs_size = 1;
  afd_options.max_g3_error = 0.1;
  afd_options.include_constant_columns = false;
  print("AFD", std::move(DiscoverFds(relation, afd_options))
                   .ValueOrDie()
                   .dependencies);
  print("OD", std::move(DiscoverOds(relation)).ValueOrDie());
  print("OFD", std::move(DiscoverOfds(relation)).ValueOrDie());
  print("ND", std::move(DiscoverNds(relation)).ValueOrDie());
  print("DD", std::move(DiscoverDds(relation)).ValueOrDie());
  return lines;
}

std::vector<std::string> GoldenLines(const std::string& dataset) {
  std::vector<std::string> out;
  for (const std::string& line : Split(kGoldenDiscovery, '\n')) {
    if (line.empty()) continue;
    if (line.rfind(dataset + "|", 0) == 0) out.push_back(line);
  }
  return out;
}

class LatticeGoldenParityTest : public ::testing::TestWithParam<size_t> {
 protected:
  void SetUp() override { SetGlobalThreadCount(GetParam()); }
  void TearDown() override { SetGlobalThreadCount(0); }
};

TEST_P(LatticeGoldenParityTest, ReproducesPreRefactorEmployee) {
  EXPECT_EQ(RunAllClasses("employee", datasets::Employee()),
            GoldenLines("employee"));
}

TEST_P(LatticeGoldenParityTest, ReproducesPreRefactorEchocardiogram) {
  EXPECT_EQ(RunAllClasses("echocardiogram", datasets::Echocardiogram()),
            GoldenLines("echocardiogram"));
}

TEST_P(LatticeGoldenParityTest, ReproducesPreRefactorSynthetic) {
  EXPECT_EQ(RunAllClasses("synthetic", SyntheticGolden()),
            GoldenLines("synthetic"));
}

INSTANTIATE_TEST_SUITE_P(Threads, LatticeGoldenParityTest,
                         ::testing::Values(1u, 8u));

// --- Kernel unit tests ----------------------------------------------------

// Data-independent validator scripted on (lhs mask, rhs) pairs; records
// every Validate call so tests can assert which candidates the pruning
// hooks eliminated.
class ScriptedValidator : public CandidateValidator {
 public:
  ScriptedValidator(std::set<std::pair<uint64_t, size_t>> holding,
                    bool transitive)
      : holding_(std::move(holding)), transitive_(transitive) {}

  Result<Verdict> Validate(AttributeSet lhs, size_t rhs) override {
    {
      std::lock_guard<std::mutex> lock(mu_);
      validated_.insert({lhs.mask(), rhs});
    }
    Verdict v;
    if (holding_.count({lhs.mask(), rhs}) != 0) {
      v.holds = true;
      v.emit = Dependency::Fd(lhs, rhs);
    }
    return v;
  }

  bool TransitivePruning() const override { return transitive_; }

  bool WasValidated(AttributeSet lhs, size_t rhs) const {
    return validated_.count({lhs.mask(), rhs}) != 0;
  }
  size_t num_validated() const { return validated_.size(); }

 private:
  std::set<std::pair<uint64_t, size_t>> holding_;
  bool transitive_;
  std::mutex mu_;
  std::set<std::pair<uint64_t, size_t>> validated_;
};

Relation ThreeColumns() {
  return MakeRelation({Cat("a"), Cat("b"), Cat("c")},
                      {Ints({1, 2, 3}), Ints({1, 2, 3}), Ints({1, 2, 3})});
}

TEST(LatticeKernelTest, RhsPruneStopsSupersetValidation) {
  Relation r = ThreeColumns();
  EncodedRelation encoded = EncodedRelation::Encode(r);
  // {0} -> 1 holds; with plain per-RHS pruning the kernel must never
  // re-validate RHS 1 against any superset of {0}.
  ScriptedValidator validator(
      {{AttributeSet::Single(0).mask(), 1}}, /*transitive=*/false);
  LatticeSearchOptions options;
  options.max_lhs = 2;
  auto result = RunLatticeSearch(encoded, nullptr, &validator, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->dependencies.size(), 1u);
  EXPECT_TRUE(validator.WasValidated(AttributeSet::Single(0), 1));
  EXPECT_FALSE(
      validator.WasValidated(AttributeSet::Of({0, 2}), 1));
  // Unrelated RHS attributes keep their superset candidates.
  EXPECT_TRUE(validator.WasValidated(AttributeSet::Of({1, 2}), 0));
}

TEST(LatticeKernelTest, TransitivePruneRemovesOutsideAttributes) {
  Relation r = ThreeColumns();
  EncodedRelation encoded = EncodedRelation::Encode(r);
  // With TANE's full rule, {0} -> 1 removes attribute 2 from
  // C+({0,1}), so level 3 only tests {1,2} -> 0.
  ScriptedValidator plain({{AttributeSet::Single(0).mask(), 1}},
                          /*transitive=*/false);
  ScriptedValidator transitive({{AttributeSet::Single(0).mask(), 1}},
                               /*transitive=*/true);
  LatticeSearchOptions options;
  options.max_lhs = 2;
  auto plain_result =
      RunLatticeSearch(encoded, nullptr, &plain, options);
  auto transitive_result =
      RunLatticeSearch(encoded, nullptr, &transitive, options);
  ASSERT_TRUE(plain_result.ok());
  ASSERT_TRUE(transitive_result.ok());
  EXPECT_TRUE(plain.WasValidated(AttributeSet::Of({0, 1}), 2));
  EXPECT_FALSE(transitive.WasValidated(AttributeSet::Of({0, 1}), 2));
  EXPECT_LT(transitive.num_validated(), plain.num_validated());
  EXPECT_GT(transitive_result->stats.candidates_pruned,
            plain_result->stats.candidates_pruned);
}

TEST(LatticeKernelTest, StatsCountNodesAndInvocations) {
  Relation r = ThreeColumns();
  EncodedRelation encoded = EncodedRelation::Encode(r);
  ScriptedValidator validator({}, /*transitive=*/false);
  LatticeSearchOptions options;
  options.max_lhs = 2;
  auto result = RunLatticeSearch(encoded, nullptr, &validator, options);
  ASSERT_TRUE(result.ok());
  // Levels: 3 singletons + 3 pairs + 1 triple.
  EXPECT_EQ(result->stats.nodes_visited, 7u);
  EXPECT_EQ(result->stats.validator_invocations, validator.num_validated());
  // 2 per pair + 3 at the triple; singletons only offer empty LHSes.
  EXPECT_EQ(result->stats.validator_invocations, 9u);
  // The empty-LHS candidates are reported as pruned.
  EXPECT_EQ(result->stats.candidates_pruned, 3u);
  EXPECT_EQ(result->stats.pli_cache_hits, 0u);
  EXPECT_EQ(result->stats.pli_cache_misses, 0u);
}

TEST(LatticeKernelTest, EmptyRelation) {
  Relation r = Relation::Empty(Schema(std::vector<Attribute>{}));
  EncodedRelation encoded = EncodedRelation::Encode(r);
  ScriptedValidator validator({}, false);
  auto result = RunLatticeSearch(encoded, nullptr, &validator, {});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->dependencies.empty());
  EXPECT_EQ(result->stats.nodes_visited, 0u);

  auto fds = DiscoverFds(r);
  ASSERT_TRUE(fds.ok());
  EXPECT_TRUE(fds->dependencies.empty());
  auto ods = DiscoverOds(r);
  ASSERT_TRUE(ods.ok());
  EXPECT_TRUE(ods->empty());
}

TEST(LatticeKernelTest, AllNullColumn) {
  Relation r = MakeRelation(
      {Cat("a"), Cat("null_col")},
      {Ints({1, 2, 3}),
       {Value::Null(), Value::Null(), Value::Null()}});
  // The all-NULL column cannot order anything (0 distinct values bars it
  // from LHS positions), but as an RHS the pair list is empty and the OD
  // holds vacuously — matching the pre-refactor pairwise loop.
  auto ods = DiscoverOds(r);
  ASSERT_TRUE(ods.ok());
  ASSERT_EQ(ods->size(), 1u);
  EXPECT_EQ(*ods->begin(), Dependency::Od(0, 1));
  // Under the PLI convention (NULL equals NULL) the column is constant:
  // {} -> null_col and a -> null_col both hold.
  TaneOptions options;
  options.max_lhs_size = 1;
  auto fds = DiscoverFds(r, options);
  ASSERT_TRUE(fds.ok());
  bool found_constant = false;
  for (const Dependency& d : fds->dependencies) {
    if (d.lhs.empty() && d.rhs == 1) found_constant = true;
  }
  EXPECT_TRUE(found_constant);
}

TEST(LatticeKernelTest, MaxLhsBoundGatesMultiAttributeSearch) {
  // A planted OD that needs both LHS attributes: lexicographic (a, b)
  // orders the rows exactly as y does, but neither a nor b alone does.
  Relation r = MakeRelation({Cat("a"), Cat("b"), Cat("y")},
                            {Ints({1, 1, 2, 2}), Ints({1, 2, 1, 2}),
                             Ints({1, 2, 3, 4})});
  OdDiscoveryOptions narrow;
  narrow.max_lhs = 1;
  auto single = DiscoverOds(r, narrow);
  ASSERT_TRUE(single.ok());
  // Only y -> a survives at width 1 (y strictly increases, a is
  // non-decreasing); the planted {a,b} -> y is out of reach.
  ASSERT_EQ(single->size(), 1u);
  EXPECT_EQ(*single->begin(), Dependency::Od(2, 0));

  OdDiscoveryOptions wide;
  wide.max_lhs = 2;
  LatticeSearchStats stats;
  auto multi = DiscoverOds(r, wide, &stats);
  ASSERT_TRUE(multi.ok());
  std::vector<Dependency> found(multi->begin(), multi->end());
  ASSERT_EQ(found.size(), 2u);
  // Canonical order sorts by LHS mask: {0,1} before {2}.
  EXPECT_EQ(found[0], Dependency::Od(AttributeSet::Of({0, 1}), 2));
  EXPECT_EQ(found[1], Dependency::Od(2, 0));
  EXPECT_GT(stats.nodes_visited, 0u);

  // max_lhs = 2 with an ND search exercises composite partitions.
  NdDiscoveryOptions nd_wide;
  nd_wide.max_lhs = 2;
  auto nds = DiscoverNds(r, nd_wide);
  ASSERT_TRUE(nds.ok());
}

TEST(LatticeKernelTest, MultiAttributeDdRoundTripsThroughMetadata) {
  // Multi-attribute DDs carry per-attribute epsilons; the package
  // serialization must round-trip them losslessly.
  MetadataPackage pkg;
  pkg.schema = Schema({Cat("a"), Cat("b"), Cat("c")});
  pkg.num_rows = 3;
  pkg.dependencies.Add(
      Dependency::Dd(AttributeSet::Of({0, 1}), 2, {0.5, 0.25}, 10.0));
  pkg.dependencies.Add(Dependency::Dd(0, 2, 0.5, 10.0));
  std::string text = pkg.Serialize();
  auto parsed = MetadataPackage::Deserialize(text);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->dependencies.size(), 2u);
  std::vector<Dependency> deps(parsed->dependencies.begin(),
                               parsed->dependencies.end());
  std::vector<Dependency> expected(pkg.dependencies.begin(),
                                   pkg.dependencies.end());
  EXPECT_EQ(deps[0], expected[0]);
  EXPECT_EQ(deps[1], expected[1]);
}

}  // namespace
}  // namespace metaleak
