// Unit tests for src/partition: AttributeSet, PLI, PliCache.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "data/relation.h"
#include "partition/attribute_set.h"
#include "partition/pli_cache.h"
#include "partition/position_list_index.h"

namespace metaleak {
namespace {

// --- AttributeSet ------------------------------------------------------------

TEST(AttributeSetTest, BasicOps) {
  AttributeSet s = AttributeSet::Of({1, 3, 5});
  EXPECT_EQ(s.size(), 3u);
  EXPECT_TRUE(s.Contains(3));
  EXPECT_FALSE(s.Contains(2));
  EXPECT_EQ(s.ToIndices(), (std::vector<size_t>{1, 3, 5}));
  EXPECT_EQ(s.ToString(), "{1,3,5}");
}

TEST(AttributeSetTest, SetAlgebra) {
  AttributeSet a = AttributeSet::Of({0, 1, 2});
  AttributeSet b = AttributeSet::Of({2, 3});
  EXPECT_EQ(a.Union(b), AttributeSet::Of({0, 1, 2, 3}));
  EXPECT_EQ(a.Intersect(b), AttributeSet::Of({2}));
  EXPECT_EQ(a.Minus(b), AttributeSet::Of({0, 1}));
  EXPECT_TRUE(a.ContainsAll(AttributeSet::Of({0, 2})));
  EXPECT_FALSE(a.ContainsAll(b));
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(AttributeSet::Of({0}).Intersects(AttributeSet::Of({1})));
}

TEST(AttributeSetTest, WithWithout) {
  AttributeSet s;
  EXPECT_TRUE(s.empty());
  s = s.With(7).With(2);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_TRUE(s.Without(7) == AttributeSet::Single(2));
  EXPECT_EQ(s.Without(9), s);  // removing absent index is a no-op
}

TEST(AttributeSetTest, FullSet) {
  EXPECT_EQ(AttributeSet::FullSet(3).ToIndices(),
            (std::vector<size_t>{0, 1, 2}));
  EXPECT_EQ(AttributeSet::FullSet(64).size(), 64u);
  EXPECT_TRUE(AttributeSet::FullSet(0).empty());
}

// --- PositionListIndex ----------------------------------------------------------

std::vector<Value> Ints(std::initializer_list<int64_t> xs) {
  std::vector<Value> out;
  for (int64_t x : xs) out.push_back(Value::Int(x));
  return out;
}

TEST(PliTest, StripsSingletons) {
  // Values: 1 1 2 3 3 3 -> clusters {0,1}, {3,4,5}; 2 is stripped.
  PositionListIndex pli =
      PositionListIndex::FromColumn(Ints({1, 1, 2, 3, 3, 3}));
  EXPECT_EQ(pli.num_clusters(), 2u);
  EXPECT_EQ(pli.num_stripped_rows(), 5u);
  EXPECT_EQ(pli.num_rows(), 6u);
  EXPECT_EQ(pli.num_classes(), 3u);
}

TEST(PliTest, NullsClusterTogether) {
  std::vector<Value> col = {Value::Null(), Value::Int(1), Value::Null()};
  PositionListIndex pli = PositionListIndex::FromColumn(col);
  ASSERT_EQ(pli.num_clusters(), 1u);
  EXPECT_EQ(pli.clusters()[0].size(), 2u);
}

TEST(PliTest, AllUniqueYieldsNoClusters) {
  PositionListIndex pli = PositionListIndex::FromColumn(Ints({1, 2, 3}));
  EXPECT_EQ(pli.num_clusters(), 0u);
  EXPECT_EQ(pli.num_classes(), 3u);
}

TEST(PliTest, IdentityHasOneCluster) {
  PositionListIndex pli = PositionListIndex::Identity(4);
  EXPECT_EQ(pli.num_clusters(), 1u);
  EXPECT_EQ(pli.num_stripped_rows(), 4u);
  EXPECT_EQ(PositionListIndex::Identity(1).num_clusters(), 0u);
  EXPECT_EQ(PositionListIndex::Identity(0).num_rows(), 0u);
}

TEST(PliTest, ProbeTableMarksSingletons) {
  PositionListIndex pli =
      PositionListIndex::FromColumn(Ints({1, 1, 2}));
  const std::vector<int32_t>& probe = pli.probe_table();
  EXPECT_EQ(probe[0], probe[1]);
  EXPECT_EQ(probe[2], PositionListIndex::kUnique);
}

TEST(PliTest, IntersectMatchesProductPartition) {
  // X: a a b b ; Y: 1 2 1 1  -> XY classes: (a,1) (a,2) (b,1) (b,1)
  PositionListIndex x = PositionListIndex::FromColumn(
      {Value::Str("a"), Value::Str("a"), Value::Str("b"), Value::Str("b")});
  PositionListIndex y =
      PositionListIndex::FromColumn(Ints({1, 2, 1, 1}));
  PositionListIndex xy = x.Intersect(y);
  ASSERT_EQ(xy.num_clusters(), 1u);
  EXPECT_EQ(xy.cluster(0).ToVector(), (std::vector<size_t>{2, 3}));
}

TEST(PliTest, RefinesDetectsFd) {
  // X -> Y holds: equal X implies equal Y.
  PositionListIndex x =
      PositionListIndex::FromColumn(Ints({1, 1, 2, 2, 3}));
  PositionListIndex y_good =
      PositionListIndex::FromColumn(Ints({5, 5, 6, 6, 5}));
  PositionListIndex y_bad =
      PositionListIndex::FromColumn(Ints({5, 6, 6, 6, 5}));
  EXPECT_TRUE(x.Refines(y_good));
  EXPECT_FALSE(x.Refines(y_bad));
}

TEST(PliTest, RefinesFailsWhenRhsSingletonSplitsCluster) {
  // X has cluster {0,1}; Y values 7, 8 are both unique -> violation.
  PositionListIndex x = PositionListIndex::FromColumn(Ints({1, 1, 2}));
  PositionListIndex y = PositionListIndex::FromColumn(Ints({7, 8, 9}));
  EXPECT_FALSE(x.Refines(y));
}

TEST(PliTest, G3ErrorCountsMinimumRemovals) {
  // X cluster {0,1,2} with Y values 5,5,6: one removal of three rows.
  PositionListIndex x = PositionListIndex::FromColumn(Ints({1, 1, 1}));
  PositionListIndex y = PositionListIndex::FromColumn(Ints({5, 5, 6}));
  EXPECT_NEAR(x.G3Error(y), 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(x.G3Error(x), 0.0);
}

TEST(PliTest, G3ErrorZeroIffRefines) {
  PositionListIndex x =
      PositionListIndex::FromColumn(Ints({1, 1, 2, 2}));
  PositionListIndex y =
      PositionListIndex::FromColumn(Ints({3, 3, 4, 4}));
  EXPECT_TRUE(x.Refines(y));
  EXPECT_DOUBLE_EQ(x.G3Error(y), 0.0);
}

TEST(PliTest, G3ErrorWithAllUniqueRhs) {
  // Cluster of 3, every Y unique: keep one row, remove two.
  PositionListIndex x = PositionListIndex::FromColumn(Ints({1, 1, 1}));
  PositionListIndex y = PositionListIndex::FromColumn(Ints({7, 8, 9}));
  EXPECT_NEAR(x.G3Error(y), 2.0 / 3.0, 1e-12);
}

TEST(PliTest, MaxFanoutCountsDistinctRhsPerCluster) {
  // X=1 maps to {5,6,7}; X=2 maps to {5}; max fan-out 3.
  PositionListIndex x =
      PositionListIndex::FromColumn(Ints({1, 1, 1, 2, 2}));
  PositionListIndex y =
      PositionListIndex::FromColumn(Ints({5, 6, 7, 5, 5}));
  EXPECT_EQ(x.MaxFanout(y), 3u);
}

TEST(PliTest, MaxFanoutOneForFd) {
  PositionListIndex x =
      PositionListIndex::FromColumn(Ints({1, 1, 2, 2}));
  PositionListIndex y =
      PositionListIndex::FromColumn(Ints({5, 5, 6, 6}));
  EXPECT_EQ(x.MaxFanout(y), 1u);
}

TEST(PliTest, FromColumnsProjectsTuples) {
  Schema schema({{"a", DataType::kInt64, SemanticType::kCategorical},
                 {"b", DataType::kInt64, SemanticType::kCategorical}});
  RelationBuilder builder(schema);
  builder.AddRow({Value::Int(1), Value::Int(1)})
      .AddRow({Value::Int(1), Value::Int(1)})
      .AddRow({Value::Int(1), Value::Int(2)});
  Relation r = std::move(builder.Finish()).ValueOrDie();
  PositionListIndex ab = PositionListIndex::FromColumns(r, {0, 1});
  ASSERT_EQ(ab.num_clusters(), 1u);
  EXPECT_EQ(ab.cluster(0).ToVector(), (std::vector<size_t>{0, 1}));
}

// --- PliCache -------------------------------------------------------------------

TEST(PliCacheTest, CachesAndComposes) {
  Schema schema({{"a", DataType::kInt64, SemanticType::kCategorical},
                 {"b", DataType::kInt64, SemanticType::kCategorical},
                 {"c", DataType::kInt64, SemanticType::kCategorical}});
  RelationBuilder builder(schema);
  builder.AddRow({Value::Int(1), Value::Int(1), Value::Int(1)})
      .AddRow({Value::Int(1), Value::Int(1), Value::Int(2)})
      .AddRow({Value::Int(1), Value::Int(2), Value::Int(2)})
      .AddRow({Value::Int(2), Value::Int(2), Value::Int(2)});
  Relation r = std::move(builder.Finish()).ValueOrDie();
  PliCache cache(&r);
  size_t base = cache.size();  // empty set + singletons

  const PositionListIndex* ab = cache.Get(AttributeSet::Of({0, 1}));
  ASSERT_EQ(ab->num_clusters(), 1u);
  EXPECT_EQ(cache.size(), base + 1);
  // Second lookup hits the cache.
  EXPECT_EQ(cache.Get(AttributeSet::Of({0, 1})), ab);

  // Composite of three builds intermediates.
  const PositionListIndex* abc = cache.Get(AttributeSet::Of({0, 1, 2}));
  EXPECT_EQ(abc->num_rows(), 4u);
  // The product of all three attributes has all-unique tuples... rows 0/1
  // differ in c, rows 1/2 differ in b: every pair differs somewhere.
  EXPECT_EQ(abc->num_clusters(), 0u);
}

TEST(PliCacheTest, EmptySetIsIdentity) {
  Relation r = std::move(Relation::Make(
      Schema({{"a", DataType::kInt64, SemanticType::kCategorical}}),
      {{Value::Int(1), Value::Int(2), Value::Int(3)}})).ValueOrDie();
  PliCache cache(&r);
  const PositionListIndex* empty = cache.Get(AttributeSet());
  EXPECT_EQ(empty->num_clusters(), 1u);
  EXPECT_EQ(empty->num_stripped_rows(), 3u);
}

// Property: for random relations, Intersect(pli(X), pli(Y)) equals
// FromColumns(X ∪ Y).
class PliPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PliPropertyTest, IntersectEqualsDirectConstruction) {
  Rng rng(GetParam());
  const size_t rows = 60;
  Schema schema({{"a", DataType::kInt64, SemanticType::kCategorical},
                 {"b", DataType::kInt64, SemanticType::kCategorical}});
  std::vector<std::vector<Value>> cols(2);
  for (size_t r = 0; r < rows; ++r) {
    cols[0].push_back(Value::Int(rng.UniformInt(0, 4)));
    cols[1].push_back(Value::Int(rng.UniformInt(0, 4)));
  }
  Relation rel = std::move(Relation::Make(schema, cols)).ValueOrDie();
  PositionListIndex a = PositionListIndex::FromColumn(rel.column(0));
  PositionListIndex b = PositionListIndex::FromColumn(rel.column(1));
  PositionListIndex via_intersect = a.Intersect(b);
  PositionListIndex direct = PositionListIndex::FromColumns(rel, {0, 1});
  EXPECT_EQ(via_intersect.num_clusters(), direct.num_clusters());
  EXPECT_EQ(via_intersect.num_stripped_rows(), direct.num_stripped_rows());
  // Same partition as sets: compare sorted cluster contents.
  auto canonical = [](const PositionListIndex& pli) {
    std::vector<std::vector<size_t>> cs = pli.ToNestedClusters();
    for (auto& c : cs) std::sort(c.begin(), c.end());
    std::sort(cs.begin(), cs.end());
    return cs;
  };
  EXPECT_EQ(canonical(via_intersect), canonical(direct));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PliPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace metaleak
