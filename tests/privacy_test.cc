// Tests for src/privacy: leakage metrics (Defs 2.2/2.3), identifiability
// (Def 2.1), analytical models, and the Monte-Carlo experiment runner.
#include <gtest/gtest.h>

#include "common/parallel.h"
#include "common/random.h"
#include "data/datasets/employee.h"
#include "data/domain.h"
#include "data/encoded_relation.h"
#include "partition/pli_cache.h"
#include "discovery/discovery_engine.h"
#include "generation/generation_engine.h"
#include "privacy/analytical.h"
#include "privacy/experiment.h"
#include "privacy/identifiability.h"
#include "privacy/leakage.h"

namespace metaleak {
namespace {

Relation MakeRelation(std::vector<Attribute> attrs,
                      std::vector<std::vector<Value>> cols) {
  return std::move(Relation::Make(Schema(std::move(attrs)), std::move(cols)))
      .ValueOrDie();
}

Attribute Cat(const char* name) {
  return {name, DataType::kString, SemanticType::kCategorical};
}
Attribute Cont(const char* name) {
  return {name, DataType::kDouble, SemanticType::kContinuous};
}

std::vector<Value> Strs(std::initializer_list<const char*> xs) {
  std::vector<Value> out;
  for (const char* x : xs) out.push_back(Value::Str(x));
  return out;
}

std::vector<Value> Reals(std::initializer_list<double> xs) {
  std::vector<Value> out;
  for (double x : xs) out.push_back(Value::Real(x));
  return out;
}

// --- Leakage ---------------------------------------------------------------

TEST(LeakageTest, CategoricalExactMatchAtSameIndex) {
  Relation real = MakeRelation({Cat("c")}, {Strs({"a", "b", "c"})});
  Relation syn = MakeRelation({Cat("c")}, {Strs({"a", "c", "c"})});
  auto matches = CountCategoricalMatches(real, syn, 0);
  ASSERT_TRUE(matches.ok());
  EXPECT_EQ(*matches, 2u);  // index 0 and 2; index 1 differs
}

TEST(LeakageTest, CategoricalSkipsRealNulls) {
  Relation real = MakeRelation(
      {Cat("c")}, {{Value::Str("a"), Value::Null(), Value::Str("c")}});
  Relation syn = MakeRelation({Cat("c")}, {Strs({"a", "b", "x"})});
  auto matches = CountCategoricalMatches(real, syn, 0);
  ASSERT_TRUE(matches.ok());
  EXPECT_EQ(*matches, 1u);
}

TEST(LeakageTest, CategoricalNumericCrossTypeMatches) {
  // Real int column vs synthetic double draws: 22 == 22.0 must count.
  Relation real = MakeRelation(
      {{"n", DataType::kInt64, SemanticType::kCategorical}},
      {{Value::Int(22), Value::Int(5)}});
  Relation syn = MakeRelation(
      {{"n", DataType::kDouble, SemanticType::kCategorical}},
      {{Value::Real(22.0), Value::Real(4.0)}});
  auto matches = CountCategoricalMatches(real, syn, 0);
  ASSERT_TRUE(matches.ok());
  EXPECT_EQ(*matches, 1u);
}

TEST(LeakageTest, ContinuousEpsilonBall) {
  Relation real = MakeRelation({Cont("x")}, {Reals({10, 20, 30})});
  Relation syn = MakeRelation({Cont("x")}, {Reals({10.5, 25, 29.9})});
  auto m1 = CountContinuousMatches(real, syn, 0, 1.0);
  ASSERT_TRUE(m1.ok());
  EXPECT_EQ(*m1, 2u);  // 10.5 and 29.9 inside +/-1
  auto m0 = CountContinuousMatches(real, syn, 0, 0.0);
  ASSERT_TRUE(m0.ok());
  EXPECT_EQ(*m0, 0u);
  EXPECT_FALSE(CountContinuousMatches(real, syn, 0, -1.0).ok());
}

TEST(LeakageTest, MseMatchesHandComputation) {
  Relation real = MakeRelation({Cont("x")}, {Reals({1, 2})});
  Relation syn = MakeRelation({Cont("x")}, {Reals({2, 4})});
  auto mse = AttributeMse(real, syn, 0);
  ASSERT_TRUE(mse.ok());
  EXPECT_DOUBLE_EQ(*mse, (1.0 + 4.0) / 2.0);
}

TEST(LeakageTest, RejectsMisalignedRelations) {
  Relation real = MakeRelation({Cat("c")}, {Strs({"a", "b"})});
  Relation syn = MakeRelation({Cat("c")}, {Strs({"a"})});
  EXPECT_FALSE(CountCategoricalMatches(real, syn, 0).ok());
  Relation renamed = MakeRelation({Cat("other")}, {Strs({"a", "b"})});
  EXPECT_FALSE(CountCategoricalMatches(real, renamed, 0).ok());
}

TEST(LeakageTest, EvaluateLeakageCoversAllAttributes) {
  Relation real = MakeRelation({Cat("c"), Cont("x")},
                               {Strs({"a", "b"}), Reals({1, 2})});
  Relation syn = MakeRelation({Cat("c"), Cont("x")},
                              {Strs({"a", "a"}), Reals({1.001, 5})});
  LeakageOptions options;
  options.absolute_epsilon = 0.01;
  auto report = EvaluateLeakage(real, syn, options);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->attributes.size(), 2u);
  EXPECT_EQ(report->attributes[0].matches, 1u);
  EXPECT_EQ(report->attributes[1].matches, 1u);
  ASSERT_TRUE(report->attributes[1].mse.has_value());
  EXPECT_EQ(report->TotalCategoricalMatches(), 1u);
  EXPECT_TRUE(report->ForAttribute(1).ok());
  EXPECT_FALSE(report->ForAttribute(9).ok());
}

TEST(LeakageTest, PerfectCopyLeaksEverything) {
  Relation real = datasets::Employee();
  auto report = EvaluateLeakage(real, real);
  ASSERT_TRUE(report.ok());
  for (const AttributeLeakage& a : report->attributes) {
    EXPECT_EQ(a.matches, real.num_rows());
    EXPECT_DOUBLE_EQ(a.match_rate, 1.0);
    if (a.mse.has_value()) EXPECT_DOUBLE_EQ(*a.mse, 0.0);
  }
}

// --- Identifiability ----------------------------------------------------------

TEST(IdentifiabilityTest, UniqueRowsPerSubset) {
  // Name is a key: all unique. Age has a duplicate (22).
  Relation employee = datasets::Employee();
  auto by_name = UniqueRows(employee, AttributeSet::Single(0));
  ASSERT_TRUE(by_name.ok());
  for (bool u : *by_name) EXPECT_TRUE(u);
  auto by_age = UniqueRows(employee, AttributeSet::Single(1));
  ASSERT_TRUE(by_age.ok());
  EXPECT_TRUE((*by_age)[0]);   // 18 unique
  EXPECT_FALSE((*by_age)[1]);  // 22 duplicated
  EXPECT_FALSE((*by_age)[2]);
  EXPECT_TRUE((*by_age)[3]);   // 26 unique
}

TEST(IdentifiabilityTest, FractionAndAnySubset) {
  Relation employee = datasets::Employee();
  auto frac_age = IdentifiableFraction(employee, AttributeSet::Single(1));
  ASSERT_TRUE(frac_age.ok());
  EXPECT_DOUBLE_EQ(*frac_age, 0.5);
  // With subsets of size 1, Name already identifies everyone.
  auto any1 = IdentifiableByAnySubset(employee, 1);
  ASSERT_TRUE(any1.ok());
  EXPECT_DOUBLE_EQ(*any1, 1.0);
}

TEST(IdentifiabilityTest, SupersetPreservesUniqueness) {
  Relation employee = datasets::Employee();
  // Age alone: 50%. Age+Department: Bob(22,CS) unique, Charlie(22,Sales)
  // unique -> 100%.
  auto frac = IdentifiableFraction(employee, AttributeSet::Of({1, 2}));
  ASSERT_TRUE(frac.ok());
  EXPECT_DOUBLE_EQ(*frac, 1.0);
}

TEST(IdentifiabilityTest, DiscoverUccsFindsMinimalKeys) {
  Relation employee = datasets::Employee();
  auto uccs = DiscoverUniqueColumnCombinations(employee, 2);
  ASSERT_TRUE(uccs.ok());
  // Name and Salary are single-attribute keys.
  EXPECT_NE(std::find(uccs->begin(), uccs->end(), AttributeSet::Single(0)),
            uccs->end());
  EXPECT_NE(std::find(uccs->begin(), uccs->end(), AttributeSet::Single(3)),
            uccs->end());
  // No UCC may contain another (minimality).
  for (AttributeSet a : *uccs) {
    for (AttributeSet b : *uccs) {
      if (a != b) EXPECT_FALSE(a.ContainsAll(b));
    }
  }
}

TEST(IdentifiabilityTest, ForSubsetsMatchesPerSubsetUnion) {
  Relation employee = datasets::Employee();
  EncodedRelation encoded = EncodedRelation::Encode(employee);
  PliCache cache(&encoded);
  std::vector<AttributeSet> subsets = {AttributeSet::Single(1),
                                       AttributeSet::Of({1, 2})};
  auto rows = IdentifiableRowsForSubsets(cache, subsets);
  ASSERT_TRUE(rows.ok());
  auto age = UniqueRows(encoded, AttributeSet::Single(1));
  auto age_dept = UniqueRows(encoded, AttributeSet::Of({1, 2}));
  ASSERT_TRUE(age.ok());
  ASSERT_TRUE(age_dept.ok());
  ASSERT_EQ(rows->size(), employee.num_rows());
  for (size_t r = 0; r < rows->size(); ++r) {
    EXPECT_EQ((*rows)[r], (*age)[r] || (*age_dept)[r]) << "row " << r;
  }
}

TEST(IdentifiabilityTest, ForSubsetsErroringSubsetPropagates) {
  // Regression: a chunk that errors bails with a short (possibly empty)
  // bitmap, so the OR-merge must normalize both sides to n instead of
  // assuming every chunk produced n bits. Mix valid subsets with an
  // out-of-range one so erroring and clean chunks merge, at both thread
  // counts.
  Relation employee = datasets::Employee();
  EncodedRelation encoded = EncodedRelation::Encode(employee);
  PliCache cache(&encoded);
  std::vector<AttributeSet> subsets;
  for (size_t c = 0; c < encoded.num_columns(); ++c) {
    subsets.push_back(AttributeSet::Single(c));
  }
  subsets.push_back(AttributeSet::Single(63));  // out of range
  for (size_t threads : {1, 8}) {
    SetGlobalThreadCount(threads);
    auto rows = IdentifiableRowsForSubsets(cache, subsets);
    EXPECT_FALSE(rows.ok()) << "threads=" << threads;
  }
  SetGlobalThreadCount(0);
}

TEST(IdentifiabilityTest, NoKeysInDuplicatedRelation) {
  Relation r = MakeRelation({Cat("c")}, {Strs({"a", "a"})});
  auto uccs = DiscoverUniqueColumnCombinations(r, 1);
  ASSERT_TRUE(uccs.ok());
  EXPECT_TRUE(uccs->empty());
  auto any = IdentifiableByAnySubset(r, 1);
  ASSERT_TRUE(any.ok());
  EXPECT_DOUBLE_EQ(*any, 0.0);
}

// --- Analytical models ------------------------------------------------------------

TEST(AnalyticalTest, Example31Values) {
  // The paper's Example 3.1: N=4, |age domain|=9 -> 4/9; departments 3
  // -> 4/3.
  Domain age = Domain::Categorical({Value::Int(18), Value::Int(19),
                                    Value::Int(20), Value::Int(21),
                                    Value::Int(22), Value::Int(23),
                                    Value::Int(24), Value::Int(25),
                                    Value::Int(26)});
  Domain dept = Domain::Categorical(
      {Value::Str("Sales"), Value::Str("Customer Service"),
       Value::Str("Management")});
  EXPECT_NEAR(ExpectedRandomCategoricalMatches(4, age), 4.0 / 9.0, 1e-12);
  EXPECT_NEAR(ExpectedRandomCategoricalMatches(4, dept), 4.0 / 3.0, 1e-12);
}

TEST(AnalyticalTest, FdMappingExpectationRefines) {
  Domain big = Domain::Categorical({Value::Int(1), Value::Int(2),
                                    Value::Int(3), Value::Int(4),
                                    Value::Int(5), Value::Int(6)});
  Domain small = Domain::Categorical({Value::Int(1), Value::Int(2)});
  // |D_A| >= |D_B| (A refines B): expectation >= 1, the paper's claim.
  EXPECT_GE(ExpectedCorrectFdMappings(big, small), 1.0);
  EXPECT_DOUBLE_EQ(ExpectedCorrectFdMappings(big, small), 3.0);
}

TEST(AnalyticalTest, FdTupleExpectationEqualsRandom) {
  Domain d = Domain::Categorical({Value::Int(1), Value::Int(2),
                                  Value::Int(3)});
  EXPECT_DOUBLE_EQ(ExpectedFdRhsMatches(99, d),
                   ExpectedRandomCategoricalMatches(99, d));
}

TEST(AnalyticalTest, NdPairExpectation) {
  Domain dx = Domain::Categorical({Value::Int(1), Value::Int(2)});
  Domain dy = Domain::Categorical({Value::Int(1), Value::Int(2),
                                   Value::Int(3), Value::Int(4)});
  // N*K/(|Dx||Dy|) = 100*2/(2*4) = 25.
  EXPECT_DOUBLE_EQ(ExpectedNdPairMatches(100, dx, dy, 2), 25.0);
}

TEST(AnalyticalTest, NdAtLeastOneMatchesClosedForm) {
  Domain dy = Domain::Categorical({Value::Int(1), Value::Int(2),
                                   Value::Int(3), Value::Int(4)});
  // 1 - C(2,2)/C(4,2) = 1 - 1/6.
  EXPECT_NEAR(NdAtLeastOneCorrectMapping(dy, 2), 5.0 / 6.0, 1e-12);
}

TEST(AnalyticalTest, ContinuousRandomMatchesMonteCarlo) {
  Domain d = Domain::Continuous(0, 100);
  const double eps = 2.0;
  const size_t n = 200;
  double expected = ExpectedRandomContinuousMatches(n, d, eps);
  Rng rng(31337);
  double total = 0;
  const int reps = 3000;
  for (int rep = 0; rep < reps; ++rep) {
    size_t hits = 0;
    for (size_t i = 0; i < n; ++i) {
      double real = rng.UniformDouble(0, 100);
      double syn = rng.UniformDouble(0, 100);
      if (std::abs(real - syn) <= eps) ++hits;
    }
    total += static_cast<double>(hits);
  }
  EXPECT_NEAR(total / reps, expected, 0.25);
}

TEST(AnalyticalTest, ContinuousMseMatchesMonteCarlo) {
  Domain d = Domain::Continuous(0, 60);
  double expected = ExpectedRandomContinuousMse(d);  // 60^2/6 = 600
  EXPECT_DOUBLE_EQ(expected, 600.0);
  Rng rng(4242);
  double acc = 0;
  const int reps = 200000;
  for (int rep = 0; rep < reps; ++rep) {
    double a = rng.UniformDouble(0, 60);
    double b = rng.UniformDouble(0, 60);
    acc += (a - b) * (a - b);
  }
  EXPECT_NEAR(acc / reps, expected, 5.0);
}

TEST(AnalyticalTest, OdExpectationIsDeterministicAndBounded) {
  Domain d = Domain::Continuous(0, 100);
  double e1 = ExpectedOdMatches(132, 10, d, 1.0);
  double e2 = ExpectedOdMatches(132, 10, d, 1.0);
  EXPECT_DOUBLE_EQ(e1, e2);
  EXPECT_GE(e1, 0.0);
  EXPECT_LE(e1, 132.0);
  // Larger epsilon cannot reduce expected matches.
  EXPECT_GE(ExpectedOdMatches(132, 10, d, 5.0), e1);
}

TEST(AnalyticalTest, OdOrderStatisticsBeatRandomForManyPartitions) {
  // Order statistics concentrate: with many partitions the i-th generated
  // value is close to the i-th real value, so OD-informed generation hits
  // more often than the random baseline.
  Domain d = Domain::Continuous(0, 100);
  double od = ExpectedOdMatches(1000, 500, d, 1.0);
  double rand = ExpectedRandomContinuousMatches(1000, d, 1.0);
  EXPECT_GT(od, rand);
}

TEST(AnalyticalTest, AfdExpectationEqualsFdAtEveryErrorRate) {
  // Section IV-A: "the privacy conclusion for AFD is the same as FD".
  Domain d = Domain::Categorical({Value::Int(1), Value::Int(2),
                                  Value::Int(3), Value::Int(4)});
  double fd = ExpectedFdRhsMatches(200, d);
  for (double g3 : {0.0, 0.05, 0.2, 0.5, 1.0}) {
    EXPECT_DOUBLE_EQ(ExpectedAfdMatches(200, d, g3), fd) << "g3=" << g3;
  }
}

TEST(AnalyticalTest, OfdTransitionProbability) {
  Domain dy = Domain::Categorical(
      {Value::Int(1), Value::Int(2), Value::Int(3), Value::Int(4),
       Value::Int(5), Value::Int(6), Value::Int(7), Value::Int(8)});
  // 8 remaining partitions over |Y|=8: forced to move, P = 0... the
  // formula gives 1 - 8/8 = 0 at step 0 and rises to 1 at the end.
  EXPECT_DOUBLE_EQ(OfdTransitionProbability(8, 0, dy), 0.0);
  EXPECT_DOUBLE_EQ(OfdTransitionProbability(8, 4, dy), 0.5);
  EXPECT_DOUBLE_EQ(OfdTransitionProbability(8, 8, dy), 1.0);
  // More steps than partitions clamps at 1.
  EXPECT_DOUBLE_EQ(OfdTransitionProbability(8, 100, dy), 1.0);
  // Monotone non-decreasing in the step.
  double prev = 0.0;
  for (size_t t = 0; t <= 8; ++t) {
    double p = OfdTransitionProbability(8, t, dy);
    EXPECT_GE(p, prev);
    prev = p;
  }
}

TEST(AnalyticalTest, OfdExpectationDeterministicAndBounded) {
  Domain d = Domain::Continuous(0, 50);
  double e1 = ExpectedOfdMatches(100, 20, d, 0.5);
  double e2 = ExpectedOfdMatches(100, 20, d, 0.5);
  EXPECT_DOUBLE_EQ(e1, e2);
  EXPECT_GE(e1, 0.0);
  EXPECT_LE(e1, 100.0);
  // The OFD chain is the strict variant of the OD assignment; on a
  // continuous domain the two numerical evaluations agree closely.
  double od = ExpectedOdMatches(100, 20, d, 0.5);
  EXPECT_NEAR(e1, od, 0.15 * std::max(1.0, od));
}

TEST(AnalyticalTest, DdExpectationInterpolatesRestartRate) {
  Domain d = Domain::Continuous(0, 100);
  double all_restart = ExpectedDdMatches(100, d, 1.0, 5.0, 1.0);
  double expected_random = ExpectedRandomContinuousMatches(100, d, 1.0);
  EXPECT_NEAR(all_restart, expected_random, 1e-9);
}

// --- Experiment runner -------------------------------------------------------------

TEST(ExperimentTest, RejectsZeroRounds) {
  Relation employee = datasets::Employee();
  auto report = ProfileRelation(employee);
  ASSERT_TRUE(report.ok());
  ExperimentConfig config;
  config.rounds = 0;
  EXPECT_FALSE(RunMethod(employee, report->metadata,
                         GenerationMethod::kRandom, config)
                   .ok());
}

TEST(ExperimentTest, DeterministicGivenSeed) {
  Relation employee = datasets::Employee();
  auto report = ProfileRelation(employee);
  ASSERT_TRUE(report.ok());
  ExperimentConfig config;
  config.rounds = 20;
  auto a = RunMethod(employee, report->metadata, GenerationMethod::kFd,
                     config);
  auto b = RunMethod(employee, report->metadata, GenerationMethod::kFd,
                     config);
  ASSERT_TRUE(a.ok() && b.ok());
  for (size_t c = 0; c < a->attributes.size(); ++c) {
    EXPECT_DOUBLE_EQ(a->attributes[c].mean_matches,
                     b->attributes[c].mean_matches);
  }
}

TEST(ExperimentTest, RandomCoversAllAttributes) {
  Relation employee = datasets::Employee();
  auto report = ProfileRelation(employee);
  ASSERT_TRUE(report.ok());
  ExperimentConfig config;
  config.rounds = 5;
  auto result = RunMethod(employee, report->metadata,
                          GenerationMethod::kRandom, config);
  ASSERT_TRUE(result.ok());
  for (const MethodAttributeResult& a : result->attributes) {
    EXPECT_TRUE(a.covered);
  }
}

TEST(ExperimentTest, RandomMatchesAnalyticalExpectation) {
  // Empirical mean matches ~= N/|D| for every categorical attribute.
  Relation employee = datasets::Employee();
  auto report = ProfileRelation(employee);
  ASSERT_TRUE(report.ok());
  ExperimentConfig config;
  config.rounds = 4000;
  auto result = RunMethod(employee, report->metadata,
                          GenerationMethod::kRandom, config);
  ASSERT_TRUE(result.ok());
  auto domains = report->metadata.RequireDomains();
  ASSERT_TRUE(domains.ok());
  for (const MethodAttributeResult& a : result->attributes) {
    if (a.semantic != SemanticType::kCategorical) continue;
    double expected = ExpectedRandomCategoricalMatches(
        employee.num_rows(), (*domains)[a.attribute]);
    EXPECT_NEAR(a.mean_matches, expected, 0.1) << a.name;
  }
}

TEST(ExperimentTest, FdLeakageMatchesRandomWithinNoise) {
  // The paper's headline claim on the running example.
  Relation employee = datasets::Employee();
  auto report = ProfileRelation(employee);
  ASSERT_TRUE(report.ok());
  ExperimentConfig config;
  config.rounds = 4000;
  auto results =
      RunExperiment(employee, report->metadata,
                    {GenerationMethod::kRandom, GenerationMethod::kFd},
                    config);
  ASSERT_TRUE(results.ok());
  const MethodResult& random = (*results)[0];
  const MethodResult& fd = (*results)[1];
  for (size_t c = 0; c < random.attributes.size(); ++c) {
    if (!fd.attributes[c].covered) continue;
    if (random.attributes[c].semantic != SemanticType::kCategorical) {
      continue;
    }
    EXPECT_NEAR(fd.attributes[c].mean_matches,
                random.attributes[c].mean_matches, 0.15)
        << random.attributes[c].name;
  }
}

TEST(ExperimentTest, ThreadCountDoesNotChangeResults) {
  // Per-round seeds are drawn up front, so 1, 2 and 8 workers must
  // produce bit-identical means.
  Relation employee = datasets::Employee();
  auto report = ProfileRelation(employee);
  ASSERT_TRUE(report.ok());
  ExperimentConfig config;
  config.rounds = 64;
  std::vector<MethodResult> runs;
  for (size_t threads : {1u, 2u, 8u}) {
    config.threads = threads;
    auto result = RunMethod(employee, report->metadata,
                            GenerationMethod::kFd, config);
    ASSERT_TRUE(result.ok());
    runs.push_back(std::move(*result));
  }
  for (size_t i = 1; i < runs.size(); ++i) {
    for (size_t c = 0; c < runs[0].attributes.size(); ++c) {
      EXPECT_DOUBLE_EQ(runs[i].attributes[c].mean_matches,
                       runs[0].attributes[c].mean_matches);
      EXPECT_EQ(runs[i].attributes[c].covered,
                runs[0].attributes[c].covered);
      if (runs[0].attributes[c].mean_mse.has_value()) {
        EXPECT_DOUBLE_EQ(*runs[i].attributes[c].mean_mse,
                         *runs[0].attributes[c].mean_mse);
      }
    }
  }
}

TEST(ExperimentTest, UncoveredAttributesFlaggedNa) {
  // Restrict metadata to a single ND; every other attribute must be
  // covered=false under the ND method.
  Relation employee = datasets::Employee();
  auto report = ProfileRelation(employee);
  ASSERT_TRUE(report.ok());
  MetadataPackage pkg = report->metadata;
  DependencySet only_nd;
  for (const Dependency& d :
       pkg.dependencies.OfKind(DependencyKind::kNumerical)) {
    only_nd.Add(d);
    break;  // keep exactly one
  }
  pkg.dependencies = only_nd;
  ASSERT_EQ(pkg.dependencies.size(), 1u);
  size_t nd_rhs = pkg.dependencies.all()[0].rhs;
  ExperimentConfig config;
  config.rounds = 3;
  auto result =
      RunMethod(employee, pkg, GenerationMethod::kNd, config);
  ASSERT_TRUE(result.ok());
  for (const MethodAttributeResult& a : result->attributes) {
    EXPECT_EQ(a.covered, a.attribute == nd_rhs) << a.name;
  }
}

}  // namespace
}  // namespace metaleak
