// Unit and property tests for src/discovery: validators, TANE,
// pairwise RFD discovery, and the discovery engine.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/parallel.h"
#include "common/random.h"
#include "data/datasets/echocardiogram.h"
#include "data/datasets/employee.h"
#include "discovery/discovery_engine.h"
#include "discovery/rfd_discovery.h"
#include "discovery/tane.h"
#include "discovery/validators.h"

namespace metaleak {
namespace {

Relation MakeRelation(std::vector<Attribute> attrs,
                      std::vector<std::vector<Value>> cols) {
  return std::move(Relation::Make(Schema(std::move(attrs)), std::move(cols)))
      .ValueOrDie();
}

std::vector<Value> Ints(std::initializer_list<int64_t> xs) {
  std::vector<Value> out;
  for (int64_t x : xs) out.push_back(Value::Int(x));
  return out;
}

std::vector<Value> Reals(std::initializer_list<double> xs) {
  std::vector<Value> out;
  for (double x : xs) out.push_back(Value::Real(x));
  return out;
}

Attribute Cat(const char* name) {
  return {name, DataType::kInt64, SemanticType::kCategorical};
}
Attribute Cont(const char* name) {
  return {name, DataType::kDouble, SemanticType::kContinuous};
}

// --- Validators -----------------------------------------------------------

TEST(ValidatorsTest, ValidateFd) {
  Relation r = MakeRelation({Cat("x"), Cat("y")},
                            {Ints({1, 1, 2, 2}), Ints({5, 5, 6, 6})});
  PliCache cache(&r);
  EXPECT_TRUE(ValidateFd(&cache, AttributeSet::Single(0), 1));
  EXPECT_TRUE(ValidateFd(&cache, AttributeSet::Single(1), 0));

  Relation bad = MakeRelation({Cat("x"), Cat("y")},
                              {Ints({1, 1, 2, 2}), Ints({5, 6, 6, 6})});
  PliCache bad_cache(&bad);
  EXPECT_FALSE(ValidateFd(&bad_cache, AttributeSet::Single(0), 1));
  EXPECT_NEAR(ComputeG3(&bad_cache, AttributeSet::Single(0), 1), 0.25,
              1e-12);
}

TEST(ValidatorsTest, ValidateOdMonotonePasses) {
  Relation r = MakeRelation({Cont("x"), Cont("y")},
                            {Reals({1, 3, 2, 4}), Reals({10, 30, 20, 40})});
  EXPECT_TRUE(ValidateOd(r, 0, 1));
  EXPECT_TRUE(ValidateOd(r, 1, 0));
}

TEST(ValidatorsTest, ValidateOdRejectsInversion) {
  Relation r = MakeRelation({Cont("x"), Cont("y")},
                            {Reals({1, 2, 3}), Reals({10, 30, 20})});
  EXPECT_FALSE(ValidateOd(r, 0, 1));
}

TEST(ValidatorsTest, ValidateOdTiesRequireEqualRhs) {
  // x has a tie (2, 2) with different y values: OD must fail.
  Relation r = MakeRelation({Cont("x"), Cont("y")},
                            {Reals({1, 2, 2}), Reals({10, 20, 21})});
  EXPECT_FALSE(ValidateOd(r, 0, 1));
  // Equal y on the tie: OD holds.
  Relation ok = MakeRelation({Cont("x"), Cont("y")},
                             {Reals({1, 2, 2}), Reals({10, 20, 20})});
  EXPECT_TRUE(ValidateOd(ok, 0, 1));
}

TEST(ValidatorsTest, ValidateOdSkipsNulls) {
  Relation r = MakeRelation(
      {Cont("x"), Cont("y")},
      {{Value::Real(1), Value::Null(), Value::Real(3)},
       {Value::Real(10), Value::Real(999), Value::Real(30)}});
  EXPECT_TRUE(ValidateOd(r, 0, 1));
}

TEST(ValidatorsTest, ValidateOfdRequiresStrictIncrease) {
  // Non-strict plateau: OD yes, OFD no.
  Relation plateau = MakeRelation({Cont("x"), Cont("y")},
                                  {Reals({1, 2, 3}), Reals({10, 10, 20})});
  EXPECT_TRUE(ValidateOd(plateau, 0, 1));
  EXPECT_FALSE(ValidateOfd(plateau, 0, 1));

  Relation strict = MakeRelation({Cont("x"), Cont("y")},
                                 {Reals({1, 2, 3}), Reals({10, 11, 20})});
  EXPECT_TRUE(ValidateOfd(strict, 0, 1));
}

TEST(ValidatorsTest, ComputeMinimalDeltaExamples) {
  // Points (0,0), (1,10), (5,11): with eps=1 pairs {0,1} and... x-gap
  // between 1 and 5 is 4 > eps, so delta = |10-0| = 10.
  Relation r = MakeRelation({Cont("x"), Cont("y")},
                            {Reals({0, 1, 5}), Reals({0, 10, 11})});
  auto d1 = ComputeMinimalDelta(r, 0, 1, 1.0);
  ASSERT_TRUE(d1.ok());
  EXPECT_DOUBLE_EQ(*d1, 10.0);
  // eps=5 adds the (1,5) and (0,5) pairs: delta = |11-0| = 11.
  auto d5 = ComputeMinimalDelta(r, 0, 1, 5.0);
  ASSERT_TRUE(d5.ok());
  EXPECT_DOUBLE_EQ(*d5, 11.0);
  // eps=0: only exact x ties pair up; none here.
  auto d0 = ComputeMinimalDelta(r, 0, 1, 0.0);
  ASSERT_TRUE(d0.ok());
  EXPECT_DOUBLE_EQ(*d0, 0.0);
}

TEST(ValidatorsTest, ComputeMinimalDeltaRejectsBadInput) {
  Relation r = MakeRelation({Cat("x"), Cont("y")},
                            {Ints({1, 2}), Reals({1, 2})});
  EXPECT_FALSE(ComputeMinimalDelta(r, 0, 1, -1.0).ok());
  EXPECT_FALSE(ComputeMinimalDelta(r, 5, 1, 1.0).ok());
}

TEST(ValidatorsTest, ComputeMinimalDeltaBruteForceProperty) {
  // Sliding-window implementation equals the O(n^2) definition.
  Rng rng(77);
  for (int trial = 0; trial < 10; ++trial) {
    size_t n = 40;
    std::vector<Value> xs;
    std::vector<Value> ys;
    for (size_t i = 0; i < n; ++i) {
      xs.push_back(Value::Real(rng.UniformDouble(0, 100)));
      ys.push_back(Value::Real(rng.UniformDouble(0, 50)));
    }
    Relation r = MakeRelation({Cont("x"), Cont("y")}, {xs, ys});
    double eps = rng.UniformDouble(0.5, 20.0);
    auto fast = ComputeMinimalDelta(r, 0, 1, eps);
    ASSERT_TRUE(fast.ok());
    double brute = 0.0;
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) {
        double dx = std::abs(xs[i].AsDouble() - xs[j].AsDouble());
        if (dx <= eps) {
          brute = std::max(brute,
                           std::abs(ys[i].AsDouble() - ys[j].AsDouble()));
        }
      }
    }
    EXPECT_NEAR(*fast, brute, 1e-9) << "trial " << trial;
  }
}

TEST(ValidatorsTest, ValidateDependencyDispatches) {
  Relation r = MakeRelation({Cat("x"), Cat("y")},
                            {Ints({1, 1, 2, 2}), Ints({5, 5, 6, 6})});
  EXPECT_TRUE(
      *ValidateDependency(r, Dependency::Fd(AttributeSet::Single(0), 1)));
  EXPECT_TRUE(*ValidateDependency(r, Dependency::Nd(0, 1, 1)));
  EXPECT_TRUE(*ValidateDependency(r, Dependency::Od(0, 1)));
  EXPECT_FALSE(
      ValidateDependency(r, Dependency::Fd(AttributeSet::Single(0), 9)).ok());
}

// --- TANE ---------------------------------------------------------------------

TEST(TaneTest, FindsEmployeeFds) {
  Relation employee = datasets::Employee();
  auto result = DiscoverFds(employee);
  ASSERT_TRUE(result.ok());
  const DependencySet& deps = result->dependencies;
  // Name is a key: Name -> every other attribute.
  EXPECT_TRUE(deps.Contains(Dependency::Fd(AttributeSet::Single(0), 1)));
  EXPECT_TRUE(deps.Contains(Dependency::Fd(AttributeSet::Single(0), 2)));
  EXPECT_TRUE(deps.Contains(Dependency::Fd(AttributeSet::Single(0), 3)));
  // Age does NOT determine salary (Bob/Charlie are both 22).
  EXPECT_FALSE(deps.Contains(Dependency::Fd(AttributeSet::Single(1), 3)));
}

TEST(TaneTest, EmitsOnlyMinimalFds) {
  Relation employee = datasets::Employee();
  auto result = DiscoverFds(employee);
  ASSERT_TRUE(result.ok());
  // Since Name -> Age holds, {Name, Department} -> Age must not appear.
  EXPECT_FALSE(result->dependencies.Contains(
      Dependency::Fd(AttributeSet::Of({0, 2}), 1)));
  // Every reported FD is minimal: no other reported FD with the same RHS
  // has a strictly smaller LHS... and removal of any LHS attribute breaks
  // the FD (checked by validation).
  PliCache cache(&employee);
  for (const Dependency& d : result->dependencies) {
    ASSERT_EQ(d.kind, DependencyKind::kFunctional);
    EXPECT_TRUE(ValidateFd(&cache, d.lhs, d.rhs)) << d.ToString();
    for (size_t a : d.lhs.ToIndices()) {
      AttributeSet smaller = d.lhs.Without(a);
      EXPECT_FALSE(ValidateFd(&cache, smaller, d.rhs))
          << "non-minimal: " << d.ToString();
    }
  }
}

TEST(TaneTest, FindsConstantColumnFd) {
  Relation r = MakeRelation({Cat("x"), Cat("k")},
                            {Ints({1, 2, 3}), Ints({7, 7, 7})});
  auto result = DiscoverFds(r);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->dependencies.Contains(
      Dependency::Fd(AttributeSet(), 1)));

  TaneOptions no_const;
  no_const.include_constant_columns = false;
  auto without = DiscoverFds(r, no_const);
  ASSERT_TRUE(without.ok());
  EXPECT_FALSE(
      without->dependencies.Contains(Dependency::Fd(AttributeSet(), 1)));
}

TEST(TaneTest, RespectsMaxLhsSize) {
  Relation employee = datasets::Employee();
  TaneOptions options;
  options.max_lhs_size = 1;
  auto result = DiscoverFds(employee, options);
  ASSERT_TRUE(result.ok());
  for (const Dependency& d : result->dependencies) {
    EXPECT_LE(d.lhs.size(), 1u);
  }
}

TEST(TaneTest, AfdModeEmitsApproximateDependencies) {
  // x -> y holds on 9 of 10 rows (g3 = 0.1).
  Relation r = MakeRelation(
      {Cat("x"), Cat("y")},
      {Ints({1, 1, 1, 1, 1, 2, 2, 2, 2, 2}),
       Ints({5, 5, 5, 5, 6, 7, 7, 7, 7, 7})});
  TaneOptions options;
  options.max_g3_error = 0.15;
  auto result = DiscoverFds(r, options);
  ASSERT_TRUE(result.ok());
  bool found_afd = false;
  for (const Dependency& d : result->dependencies) {
    if (d.kind == DependencyKind::kApproximateFunctional && d.rhs == 1 &&
        d.lhs == AttributeSet::Single(0)) {
      found_afd = true;
      EXPECT_NEAR(d.g3_error, 0.1, 1e-12);
    }
  }
  EXPECT_TRUE(found_afd);
}

// Property test: TANE output matches brute-force minimal-FD enumeration
// on small random relations.
class TaneBruteForceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TaneBruteForceTest, MatchesBruteForce) {
  Rng rng(GetParam());
  const size_t rows = 30;
  const size_t cols = 4;
  std::vector<Attribute> attrs;
  std::vector<std::vector<Value>> data(cols);
  for (size_t c = 0; c < cols; ++c) {
    attrs.push_back(Cat(("a" + std::to_string(c)).c_str()));
    for (size_t r = 0; r < rows; ++r) {
      data[c].push_back(Value::Int(rng.UniformInt(0, 3)));
    }
  }
  Relation rel = MakeRelation(attrs, data);

  TaneOptions options;
  options.max_lhs_size = 3;
  auto tane = DiscoverFds(rel, options);
  ASSERT_TRUE(tane.ok());

  // Brute force: for every RHS and LHS subset (size <= 3, not containing
  // RHS), the FD is minimal iff it holds and no proper subset holds.
  PliCache cache(&rel);
  DependencySet brute;
  for (size_t rhs = 0; rhs < cols; ++rhs) {
    for (uint64_t mask = 0; mask < (1u << cols); ++mask) {
      AttributeSet lhs;
      for (size_t i = 0; i < cols; ++i) {
        if ((mask >> i) & 1) lhs = lhs.With(i);
      }
      if (lhs.Contains(rhs) || lhs.size() > 3) continue;
      if (!ValidateFd(&cache, lhs, rhs)) continue;
      bool minimal = true;
      for (size_t a : lhs.ToIndices()) {
        if (ValidateFd(&cache, lhs.Without(a), rhs)) {
          minimal = false;
          break;
        }
      }
      if (minimal) brute.Add(Dependency::Fd(lhs, rhs));
    }
  }

  EXPECT_EQ(tane->dependencies.size(), brute.size());
  for (const Dependency& d : brute) {
    EXPECT_TRUE(tane->dependencies.Contains(d)) << "missing " << d.ToString();
  }
  for (const Dependency& d : tane->dependencies) {
    EXPECT_TRUE(brute.Contains(d)) << "spurious " << d.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TaneBruteForceTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88,
                                           99, 110));

// --- RFD discovery ---------------------------------------------------------------

TEST(RfdDiscoveryTest, FindsPlantedOd) {
  Relation r = MakeRelation({Cont("x"), Cont("y"), Cont("noise")},
                            {Reals({1, 2, 3, 4}), Reals({5, 6, 7, 8}),
                             Reals({9, 2, 7, 1})});
  auto ods = DiscoverOds(r);
  ASSERT_TRUE(ods.ok());
  EXPECT_TRUE(ods->Contains(Dependency::Od(0, 1)));
  EXPECT_TRUE(ods->Contains(Dependency::Od(1, 0)));
  EXPECT_FALSE(ods->Contains(Dependency::Od(0, 2)));
}

TEST(RfdDiscoveryTest, OdSkipsConstantLhs) {
  Relation r = MakeRelation({Cont("k"), Cont("y")},
                            {Reals({1, 1, 1}), Reals({5, 6, 7})});
  auto ods = DiscoverOds(r);
  ASSERT_TRUE(ods.ok());
  EXPECT_FALSE(ods->Contains(Dependency::Od(0, 1)));
}

TEST(RfdDiscoveryTest, FindsPlantedOfd) {
  Relation r = MakeRelation({Cont("x"), Cont("y")},
                            {Reals({1, 2, 3}), Reals({5, 7, 9})});
  auto ofds = DiscoverOfds(r);
  ASSERT_TRUE(ofds.ok());
  EXPECT_TRUE(ofds->Contains(Dependency::Ofd(0, 1)));
}

TEST(RfdDiscoveryTest, FindsPlantedNdWithMinimalFanout) {
  // x=1 -> {10, 11}; x=2 -> {12}; distinct(y) = 3, K = 2.
  Relation r = MakeRelation(
      {Cat("x"), Cat("y")},
      {Ints({1, 1, 1, 2, 2, 1, 2, 1}),
       Ints({10, 11, 10, 12, 12, 11, 12, 10})});
  NdDiscoveryOptions options;
  options.max_fanout_fraction = 0.9;
  options.min_slack = 1;
  auto nds = DiscoverNds(r, options);
  ASSERT_TRUE(nds.ok());
  EXPECT_TRUE(nds->Contains(Dependency::Nd(0, 1, 2)));
}

TEST(RfdDiscoveryTest, NdSkipsTrivialFanout) {
  // Fan-out equals distinct(y): no constraint, must be skipped.
  Relation r = MakeRelation({Cat("x"), Cat("y")},
                            {Ints({1, 1, 1, 1}), Ints({1, 2, 3, 4})});
  auto nds = DiscoverNds(r);
  ASSERT_TRUE(nds.ok());
  EXPECT_TRUE(nds->empty());
}

TEST(RfdDiscoveryTest, FindsPlantedDd) {
  // y = 2x: proximal x implies proximal y.
  std::vector<Value> xs;
  std::vector<Value> ys;
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    double x = rng.UniformDouble(0, 100);
    xs.push_back(Value::Real(x));
    ys.push_back(Value::Real(2 * x));
  }
  Relation r = MakeRelation({Cont("x"), Cont("y")}, {xs, ys});
  auto dds = DiscoverDds(r);
  ASSERT_TRUE(dds.ok());
  bool found = false;
  for (const Dependency& d : *dds) {
    if (d.lhs == AttributeSet::Single(0) && d.rhs == 1) {
      found = true;
      // Minimal delta for eps-window w is 2*w (slope 2).
      EXPECT_LE(d.rhs_delta, 2.1 * d.lhs_epsilon);
    }
  }
  EXPECT_TRUE(found);
}

TEST(RfdDiscoveryTest, DdIgnoresCategoricalAttributes) {
  Relation r = MakeRelation({Cat("x"), Cont("y")},
                            {Ints({1, 2, 3}), Reals({1, 2, 3})});
  auto dds = DiscoverDds(r);
  ASSERT_TRUE(dds.ok());
  EXPECT_TRUE(dds->empty());
}

// --- DiscoveryEngine ---------------------------------------------------------------

TEST(DiscoveryEngineTest, ProfileEmployeeProducesFullPackage) {
  Relation employee = datasets::Employee();
  auto report = ProfileRelation(employee);
  ASSERT_TRUE(report.ok());
  const MetadataPackage& pkg = report->metadata;
  EXPECT_EQ(pkg.schema, employee.schema());
  EXPECT_EQ(pkg.num_rows, 4u);
  EXPECT_TRUE(pkg.HasAllDomains());
  EXPECT_GT(pkg.dependencies.size(), 0u);
  // One stats entry per enabled class, FD first, each with visited nodes.
  ASSERT_EQ(report->search_stats.size(), 5u);
  EXPECT_EQ(report->search_stats[0].search, "FD/AFD");
  for (const ClassSearchStats& s : report->search_stats) {
    EXPECT_GT(s.stats.nodes_visited, 0u) << s.search;
    EXPECT_GT(s.stats.validator_invocations, 0u) << s.search;
  }
  // The FD search runs on the shared PLI cache; its lookups must show
  // up in the per-search hit/miss deltas.
  EXPECT_GT(report->search_stats[0].stats.pli_cache_hits +
                report->search_stats[0].stats.pli_cache_misses,
            0u);
  EXPECT_GT(report->TotalSearchStats().nodes_visited,
            report->search_stats[0].stats.nodes_visited);
}

TEST(DiscoveryEngineTest, TogglesDisableClasses) {
  Relation employee = datasets::Employee();
  DiscoveryOptions options;
  options.discover_ods = false;
  options.discover_nds = false;
  options.discover_dds = false;
  options.discover_ofds = false;
  auto report = ProfileRelation(employee, options);
  ASSERT_TRUE(report.ok());
  for (const Dependency& d : report->metadata.dependencies) {
    EXPECT_EQ(d.kind, DependencyKind::kFunctional);
  }
}

TEST(DiscoveryEngineTest, EveryReportedDependencyValidates) {
  Relation employee = datasets::Employee();
  DiscoveryOptions options;
  options.discover_afds = true;
  auto report = ProfileRelation(employee, options);
  ASSERT_TRUE(report.ok());
  // Batch form: one encoding + one PLI cache for the whole set.
  auto verdicts =
      ValidateDependencies(employee, report->metadata.dependencies);
  ASSERT_TRUE(verdicts.ok());
  ASSERT_EQ(verdicts->size(), report->metadata.dependencies.size());
  size_t i = 0;
  for (const Dependency& d : report->metadata.dependencies) {
    EXPECT_TRUE((*verdicts)[i++]) << d.ToString(employee.schema());
  }
}

// --- Thread-count determinism ---------------------------------------------

// Runs every discovery class on `relation` and returns the concatenated
// canonical results.
std::vector<Dependency> DiscoverAll(const Relation& relation) {
  EncodedRelation encoded = EncodedRelation::Encode(relation);
  std::vector<Dependency> out;
  auto append = [&](const Result<DependencySet>& deps) {
    ASSERT_TRUE(deps.ok()) << deps.status().ToString();
    for (const Dependency& d : *deps) out.push_back(d);
  };
  TaneOptions tane_options;
  tane_options.max_g3_error = 0.1;
  auto fds = DiscoverFds(encoded, tane_options);
  EXPECT_TRUE(fds.ok());
  if (fds.ok()) {
    for (const Dependency& d : fds->dependencies) out.push_back(d);
  }
  append(DiscoverOds(encoded));
  append(DiscoverOfds(encoded));
  append(DiscoverNds(encoded));
  append(DiscoverDds(encoded));
  return out;
}

// The satellite regression for the parallel runtime: discovery output on
// the paper's datasets must be identical (same dependencies, same order)
// no matter how many pool threads validated the candidates.
TEST(ParallelDeterminismTest, DiscoveryIdenticalAtOneAndEightThreads) {
  for (const Relation& relation :
       {datasets::Employee(), datasets::Echocardiogram()}) {
    SetGlobalThreadCount(1);
    std::vector<Dependency> serial = DiscoverAll(relation);
    SetGlobalThreadCount(8);
    std::vector<Dependency> parallel = DiscoverAll(relation);
    SetGlobalThreadCount(0);
    EXPECT_FALSE(serial.empty());
    ASSERT_EQ(serial.size(), parallel.size());
    for (size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(serial[i], parallel[i])
          << "dependency " << i << ": " << serial[i].ToString() << " vs "
          << parallel[i].ToString();
    }
  }
}

}  // namespace
}  // namespace metaleak
