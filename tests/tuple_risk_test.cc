// Tests for per-tuple reconstruction risk (privacy/tuple_risk).
#include <gtest/gtest.h>

#include "data/datasets/echocardiogram.h"
#include "data/datasets/employee.h"
#include "discovery/discovery_engine.h"
#include "privacy/tuple_risk.h"

namespace metaleak {
namespace {

TEST(TupleRiskTest, RejectsBadInput) {
  Relation employee = datasets::Employee();
  auto report = ProfileRelation(employee);
  ASSERT_TRUE(report.ok());
  TupleRiskOptions options;
  options.rounds = 0;
  EXPECT_FALSE(AnalyzeTupleRisk(employee, report->metadata, options).ok());
}

TEST(TupleRiskTest, CoversEveryRowOnce) {
  Relation employee = datasets::Employee();
  auto report = ProfileRelation(employee);
  ASSERT_TRUE(report.ok());
  TupleRiskOptions options;
  options.rounds = 50;
  auto risk = AnalyzeTupleRisk(employee, report->metadata, options);
  ASSERT_TRUE(risk.ok());
  ASSERT_EQ(risk->tuples.size(), employee.num_rows());
  std::vector<bool> seen(employee.num_rows(), false);
  for (const TupleRisk& t : risk->tuples) {
    EXPECT_FALSE(seen[t.row]);
    seen[t.row] = true;
    EXPECT_GE(t.mean_matched_attributes, 0.0);
    EXPECT_LE(t.mean_matched_attributes,
              static_cast<double>(employee.num_columns()));
    EXPECT_LE(t.max_matched_attributes, employee.num_columns());
    EXPECT_GE(t.half_reconstructed_rate, 0.0);
    EXPECT_LE(t.half_reconstructed_rate, 1.0);
  }
}

TEST(TupleRiskTest, SortedByDescendingRisk) {
  Relation echo = datasets::Echocardiogram();
  auto report = ProfileRelation(echo);
  ASSERT_TRUE(report.ok());
  TupleRiskOptions options;
  options.rounds = 30;
  auto risk = AnalyzeTupleRisk(echo, report->metadata, options);
  ASSERT_TRUE(risk.ok());
  for (size_t i = 1; i < risk->tuples.size(); ++i) {
    EXPECT_GE(risk->tuples[i - 1].mean_matched_attributes,
              risk->tuples[i].mean_matched_attributes);
  }
}

TEST(TupleRiskTest, EmployeeAllIdentifiable) {
  // Name is a key, so every tuple is identifiable at width 1.
  Relation employee = datasets::Employee();
  auto report = ProfileRelation(employee);
  ASSERT_TRUE(report.ok());
  TupleRiskOptions options;
  options.rounds = 20;
  options.identifiability_max_width = 1;
  auto risk = AnalyzeTupleRisk(employee, report->metadata, options);
  ASSERT_TRUE(risk.ok());
  for (const TupleRisk& t : risk->tuples) {
    EXPECT_TRUE(t.identifiable);
  }
  EXPECT_EQ(risk->TopIdentifiable(2).size(), 2u);
}

TEST(TupleRiskTest, DeterministicGivenSeed) {
  Relation employee = datasets::Employee();
  auto report = ProfileRelation(employee);
  ASSERT_TRUE(report.ok());
  TupleRiskOptions options;
  options.rounds = 40;
  auto a = AnalyzeTupleRisk(employee, report->metadata, options);
  auto b = AnalyzeTupleRisk(employee, report->metadata, options);
  ASSERT_TRUE(a.ok() && b.ok());
  for (size_t i = 0; i < a->tuples.size(); ++i) {
    EXPECT_EQ(a->tuples[i].row, b->tuples[i].row);
    EXPECT_DOUBLE_EQ(a->tuples[i].mean_matched_attributes,
                     b->tuples[i].mean_matched_attributes);
  }
}

TEST(TupleRiskTest, SkewedRowIsRiskier) {
  // Two-column relation where one row's values sit in tiny domains and
  // another's in huge ones: the small-domain row must rank higher.
  Schema schema({{"a", DataType::kString, SemanticType::kCategorical},
                 {"b", DataType::kString, SemanticType::kCategorical}});
  RelationBuilder builder(schema);
  // Rows 0..9 share value "common" (domain mass), row 10+ are unique.
  for (int i = 0; i < 10; ++i) {
    builder.AddRow({Value::Str("common"), Value::Str("alsocommon")});
  }
  for (int i = 0; i < 10; ++i) {
    builder.AddRow({Value::Str("rare" + std::to_string(i)),
                    Value::Str("alsorare" + std::to_string(i))});
  }
  Relation real = std::move(builder.Finish()).ValueOrDie();
  DiscoveryOptions discovery;
  discovery.profile_distributions = true;  // adversary samples the skew
  auto report = ProfileRelation(real, discovery);
  ASSERT_TRUE(report.ok());
  TupleRiskOptions options;
  options.rounds = 300;
  auto risk = AnalyzeTupleRisk(real, report->metadata, options);
  ASSERT_TRUE(risk.ok());
  // The top tuples are all "common" rows (< index 10).
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_LT(risk->tuples[i].row, 10u) << "rank " << i;
  }
}

TEST(TupleRiskTest, RenderingShowsRequestedCount) {
  Relation employee = datasets::Employee();
  auto report = ProfileRelation(employee);
  ASSERT_TRUE(report.ok());
  TupleRiskOptions options;
  options.rounds = 10;
  auto risk = AnalyzeTupleRisk(employee, report->metadata, options);
  ASSERT_TRUE(risk.ok());
  std::string text = risk->ToString(2);
  EXPECT_NE(text.find("Highest-risk tuples"), std::string::npos);
  EXPECT_NE(text.find("Identifiable"), std::string::npos);
}

}  // namespace
}  // namespace metaleak
