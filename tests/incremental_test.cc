// Golden parity for the snapshot/delta split: randomized insert/delete
// batches applied incrementally must be indistinguishable — bit for bit —
// from rebuilding everything from scratch on the post-batch rows.
//
// Per batch the test asserts four layers of the exactness chain:
//   1. DeltaRelation::PublishCanonical vs EncodedRelation::Encode —
//      dictionaries, code vectors, fingerprints.
//   2. PliMaintenance::ToPli vs PositionListIndex::FromCodes — the flat
//      CSR arrays.
//   3. ProfileRelationIncremental (verdict-memo reuse) vs ProfileRelation
//      from scratch — the serialized MetadataPackage.
//   4. Def 2.2/2.3 leakage: the analytical profile and a Monte-Carlo
//      experiment run over both encodings.
// The whole suite is parameterized over thread counts {1, 8}: targeted
// revalidation and the sweeps must be thread-count invariant.
#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "common/random.h"
#include "data/code_column.h"
#include "data/delta_relation.h"
#include "data/datasets/echocardiogram.h"
#include "data/datasets/employee.h"
#include "data/datasets/synthetic.h"
#include "data/encoded_relation.h"
#include "discovery/discovery_engine.h"
#include "discovery/revalidate.h"
#include "partition/pli_cache.h"
#include "partition/pli_maintenance.h"
#include "partition/position_list_index.h"
#include "privacy/experiment.h"
#include "privacy/leakage_delta.h"

namespace metaleak {
namespace {

// Applies `batch` at the Value level: the ground truth the incremental
// path must reproduce exactly.
Relation ApplyBatchReference(const Relation& base, const RowBatch& batch) {
  std::vector<size_t> deletes = batch.delete_rows;
  std::sort(deletes.begin(), deletes.end());
  Relation out = Relation::Empty(base.schema());
  size_t d = 0;
  for (size_t r = 0; r < base.num_rows(); ++r) {
    if (d < deletes.size() && deletes[d] == r) {
      ++d;
      continue;
    }
    EXPECT_TRUE(out.AppendRow(base.Row(r)).ok());
  }
  for (const std::vector<Value>& row : batch.insert_rows) {
    EXPECT_TRUE(out.AppendRow(row).ok());
  }
  return out;
}

// A random cell: biased toward existing values (so inserts land in >= 2
// clusters and revive tombstones), with fresh values and NULLs mixed in.
Value RandomCell(const Relation& current, size_t c, Rng& rng) {
  if (rng.Bernoulli(0.1)) return Value::Null();
  const std::vector<Value>& column = current.column(c);
  if (!column.empty() && rng.Bernoulli(0.6)) {
    return column[rng.UniformIndex(column.size())];
  }
  switch (current.schema().attribute(c).type) {
    case DataType::kInt64:
      return Value::Int(rng.UniformInt(-50, 5000));
    case DataType::kDouble:
      return Value::Real(rng.UniformDouble(-10.0, 500.0));
    case DataType::kString:
      return Value::Str("fresh_" + std::to_string(rng.UniformInt(0, 999)));
  }
  return Value::Null();
}

RowBatch RandomBatch(const Relation& current, Rng& rng, bool with_deletes,
                     bool with_inserts) {
  RowBatch batch;
  if (with_deletes && current.num_rows() > 4) {
    size_t max_deletes = std::max<size_t>(1, current.num_rows() / 5);
    size_t k = 1 + rng.UniformIndex(max_deletes);
    k = std::min(k, current.num_rows() - 2);
    batch.delete_rows = rng.SampleWithoutReplacement(current.num_rows(), k);
  }
  if (with_inserts) {
    size_t k = 1 + rng.UniformIndex(
                       std::max<size_t>(1, current.num_rows() / 5));
    for (size_t i = 0; i < k; ++i) {
      std::vector<Value> row;
      for (size_t c = 0; c < current.num_columns(); ++c) {
        row.push_back(RandomCell(current, c, rng));
      }
      batch.insert_rows.push_back(std::move(row));
    }
  }
  return batch;
}

void ExpectEncodingsIdentical(const EncodedRelation& incremental,
                              const EncodedRelation& scratch) {
  ASSERT_EQ(incremental.num_rows(), scratch.num_rows());
  ASSERT_EQ(incremental.num_columns(), scratch.num_columns());
  EXPECT_EQ(incremental.Fingerprint(), scratch.Fingerprint());
  for (size_t c = 0; c < scratch.num_columns(); ++c) {
    EXPECT_EQ(incremental.codes(c), scratch.codes(c)) << "column " << c;
    const ColumnDictionary& a = incremental.dictionary(c);
    const ColumnDictionary& b = scratch.dictionary(c);
    ASSERT_EQ(a.num_codes(), b.num_codes()) << "column " << c;
    EXPECT_EQ(a.null_count(), b.null_count()) << "column " << c;
    for (uint32_t code = 0; code < b.num_codes(); ++code) {
      EXPECT_EQ(a.decode(code), b.decode(code))
          << "column " << c << " code " << code;
      EXPECT_EQ(a.count(code), b.count(code))
          << "column " << c << " code " << code;
    }
  }
}

void ExpectPlisIdentical(const PliMaintenance& maintained,
                         const EncodedRelation& scratch) {
  for (size_t c = 0; c < scratch.num_columns(); ++c) {
    PositionListIndex incremental = maintained.ToPli(c);
    PositionListIndex rebuilt = PositionListIndex::FromCodes(
        scratch.codes(c), scratch.dictionary(c).num_codes());
    EXPECT_EQ(incremental.rows(), rebuilt.rows()) << "column " << c;
    EXPECT_EQ(incremental.cluster_offsets(), rebuilt.cluster_offsets())
        << "column " << c;
    EXPECT_EQ(incremental.num_rows(), rebuilt.num_rows()) << "column " << c;
  }
}

void ExpectMethodResultsIdentical(const MethodResult& a,
                                  const MethodResult& b) {
  ASSERT_EQ(a.attributes.size(), b.attributes.size());
  EXPECT_EQ(a.round_seeds, b.round_seeds);
  for (size_t i = 0; i < a.attributes.size(); ++i) {
    EXPECT_EQ(a.attributes[i].covered, b.attributes[i].covered);
    EXPECT_EQ(a.attributes[i].mean_matches, b.attributes[i].mean_matches)
        << "attribute " << i;
    EXPECT_EQ(a.attributes[i].stddev_matches,
              b.attributes[i].stddev_matches)
        << "attribute " << i;
    EXPECT_EQ(a.attributes[i].mean_mse.has_value(),
              b.attributes[i].mean_mse.has_value());
    if (a.attributes[i].mean_mse.has_value()) {
      EXPECT_EQ(*a.attributes[i].mean_mse, *b.attributes[i].mean_mse);
    }
  }
}

class IncrementalGoldenTest : public ::testing::TestWithParam<size_t> {
 protected:
  void SetUp() override { SetGlobalThreadCount(GetParam()); }
  void TearDown() override { SetGlobalThreadCount(0); }

  // Drives `batches` rounds of the full incremental pipeline against the
  // from-scratch rebuild. Batch kinds rotate: mixed, insert-only,
  // delete-only, mixed...
  void RunGolden(Relation relation, uint64_t seed, size_t batches) {
    ASSERT_GT(relation.num_rows(), 0u);
    Rng rng(seed);
    DiscoveryOptions discovery;  // default classes: FD/OD/OFD/ND/DD

    EncodedRelation initial = EncodedRelation::Encode(relation);
    DeltaRelation delta(initial);
    PliMaintenance plis(initial);
    DiscoveryMemo memo;

    // Seed the memo so reuse kicks in from the first batch.
    {
      PliCache cache(&initial);
      Result<DiscoveryReport> warm = ProfileRelationIncremental(
          &cache, discovery, DeltaTouch::None(initial.num_columns()),
          &memo);
      ASSERT_TRUE(warm.ok()) << warm.status().ToString();
      ASSERT_TRUE(memo.valid);
    }

    for (size_t round = 0; round < batches; ++round) {
      const bool with_deletes = round % 3 != 1;
      const bool with_inserts = round % 3 != 2;
      RowBatch batch = RandomBatch(relation, rng, with_deletes,
                                   with_inserts);
      if (batch.empty()) continue;

      // Incremental path.
      Result<BatchEffects> effects = delta.ApplyBatch(batch);
      ASSERT_TRUE(effects.ok()) << effects.status().ToString();
      DeltaTouch touch = DeltaTouch::None(relation.num_columns());
      touch.Merge(*effects);
      plis.ApplyBatch(*effects);
      PublishResult publish = delta.PublishCanonical();
      plis.RenumberCodes(publish.code_remap);

      // Reference path.
      relation = ApplyBatchReference(relation, batch);
      EncodedRelation scratch = EncodedRelation::Encode(relation);

      // 1. Encoding parity (dictionaries, codes, fingerprint).
      ExpectEncodingsIdentical(publish.encoded, scratch);

      // 2. CSR PLI parity.
      ExpectPlisIdentical(plis, scratch);

      // 3. Discovery parity: targeted revalidation vs full profile.
      publish.encoded.set_source(&relation);
      std::vector<PositionListIndex> singles;
      for (size_t c = 0; c < relation.num_columns(); ++c) {
        singles.push_back(plis.ToPli(c));
      }
      PliCache warm_cache(&publish.encoded, std::move(singles));
      Result<DiscoveryReport> incremental = ProfileRelationIncremental(
          &warm_cache, discovery, touch, &memo);
      ASSERT_TRUE(incremental.ok()) << incremental.status().ToString();
      Result<DiscoveryReport> full = ProfileRelation(scratch, discovery);
      ASSERT_TRUE(full.ok()) << full.status().ToString();
      EXPECT_EQ(incremental->metadata.Serialize(),
                full->metadata.Serialize())
          << "round " << round;

      // 4. Leakage parity: analytical profile + Def 2.2/2.3 experiment.
      LeakageOptions leakage_options;
      Result<LeakageProfile> inc_profile = ComputeLeakageProfile(
          publish.encoded, incremental->metadata, leakage_options);
      Result<LeakageProfile> full_profile = ComputeLeakageProfile(
          scratch, full->metadata, leakage_options);
      ASSERT_TRUE(inc_profile.ok() && full_profile.ok());
      ASSERT_EQ(inc_profile->attributes.size(),
                full_profile->attributes.size());
      for (size_t c = 0; c < inc_profile->attributes.size(); ++c) {
        EXPECT_EQ(inc_profile->attributes[c].expected_random_matches,
                  full_profile->attributes[c].expected_random_matches);
        EXPECT_EQ(inc_profile->attributes[c].compared,
                  full_profile->attributes[c].compared);
      }

      ExperimentConfig config;
      config.rounds = 8;
      ExperimentEngine inc_engine(publish.encoded, incremental->metadata);
      ExperimentEngine full_engine(scratch, full->metadata);
      Result<MethodResult> inc_run =
          inc_engine.Run(GenerationMethod::kFd, config);
      Result<MethodResult> full_run =
          full_engine.Run(GenerationMethod::kFd, config);
      ASSERT_TRUE(inc_run.ok() && full_run.ok());
      ExpectMethodResultsIdentical(*inc_run, *full_run);
    }
  }
};

TEST_P(IncrementalGoldenTest, Employee) {
  RunGolden(datasets::Employee(), 0xE1u + GetParam(), 6);
}

TEST_P(IncrementalGoldenTest, Echocardiogram) {
  RunGolden(datasets::Echocardiogram(), 0xECu + GetParam(), 3);
}

TEST_P(IncrementalGoldenTest, Synthetic) {
  Result<Relation> synthetic =
      datasets::SyntheticUniform(300, 3, 2, 6, 20240777);
  ASSERT_TRUE(synthetic.ok());
  RunGolden(std::move(*synthetic), 0x5Eu + GetParam(), 4);
}

INSTANTIATE_TEST_SUITE_P(Threads, IncrementalGoldenTest,
                         ::testing::Values(1, 8));

// A delta batch whose inserts blow past a u8 column's 255-code budget
// must widen the delta storage mid-batch and still publish
// bit-identically to a from-scratch encode. The mirror direction is
// checked too: deleting the fresh rows again must narrow the published
// width back, because PublishCanonical re-picks the width from the
// post-publish dictionary rather than keeping the widened one.
TEST(DeltaWidenTest, BatchOverflowingU8DictionaryPublishesExactly) {
  Result<Relation> base =
      datasets::SyntheticUniform(400, /*num_categorical=*/1,
                                 /*num_continuous=*/1, /*domain_size=*/120,
                                 /*seed=*/99);
  ASSERT_TRUE(base.ok());
  Relation relation = std::move(*base);

  EncodedRelation initial = EncodedRelation::Encode(relation);
  ASSERT_EQ(initial.column_width(0), CodeWidth::kU8);

  DeltaRelation delta(initial);
  RowBatch batch;
  for (int i = 0; i < 300; ++i) {
    batch.insert_rows.push_back({Value::Str("fresh_" + std::to_string(i)),
                                 Value::Real(static_cast<double>(i))});
  }
  Result<BatchEffects> effects = delta.ApplyBatch(batch);
  ASSERT_TRUE(effects.ok()) << effects.status().ToString();
  PublishResult widened = delta.PublishCanonical();

  relation = ApplyBatchReference(relation, batch);
  EncodedRelation scratch = EncodedRelation::Encode(relation);
  ExpectEncodingsIdentical(widened.encoded, scratch);
  EXPECT_EQ(scratch.column_width(0), CodeWidth::kU16);
  EXPECT_EQ(widened.encoded.column_width(0), CodeWidth::kU16);

  DeltaRelation shrink(widened.encoded);
  RowBatch undo;
  for (size_t r = 400; r < 700; ++r) undo.delete_rows.push_back(r);
  ASSERT_TRUE(shrink.ApplyBatch(undo).ok());
  PublishResult narrowed = shrink.PublishCanonical();

  relation = ApplyBatchReference(relation, undo);
  EncodedRelation rescratch = EncodedRelation::Encode(relation);
  ExpectEncodingsIdentical(narrowed.encoded, rescratch);
  EXPECT_EQ(narrowed.encoded.column_width(0), CodeWidth::kU8);
}

// Verdict reuse must actually happen (not just stay correct): a batch
// touching one column leaves most candidate verdicts reusable.
TEST(IncrementalReuseTest, ReusesVerdictsAcrossBatches) {
  Relation relation = datasets::Echocardiogram();
  DiscoveryOptions discovery;
  EncodedRelation initial = EncodedRelation::Encode(relation);
  DeltaRelation delta(initial);
  PliMaintenance plis(initial);
  DiscoveryMemo memo;
  {
    PliCache cache(&initial);
    ASSERT_TRUE(ProfileRelationIncremental(
                    &cache, discovery,
                    DeltaTouch::None(initial.num_columns()), &memo)
                    .ok());
  }
  ASSERT_GT(memo.size(), 0u);

  // Delete-only batch: OD/OFD `holds` verdicts survive, FD verdicts with
  // untouched LHS clusters survive.
  RowBatch batch;
  batch.delete_rows = {3, 17, 55};
  Result<BatchEffects> effects = delta.ApplyBatch(batch);
  ASSERT_TRUE(effects.ok());
  DeltaTouch touch = DeltaTouch::None(initial.num_columns());
  touch.Merge(*effects);
  plis.ApplyBatch(*effects);
  PublishResult publish = delta.PublishCanonical();
  plis.RenumberCodes(publish.code_remap);

  Result<Relation> decoded = publish.encoded.Decode();
  ASSERT_TRUE(decoded.ok());
  publish.encoded.set_source(&*decoded);
  std::vector<PositionListIndex> singles;
  for (size_t c = 0; c < initial.num_columns(); ++c) {
    singles.push_back(plis.ToPli(c));
  }
  PliCache cache(&publish.encoded, std::move(singles));
  Result<DiscoveryReport> report =
      ProfileRelationIncremental(&cache, discovery, touch, &memo);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  size_t reused = 0;
  for (const ClassSearchStats& s : report->search_stats) {
    reused += s.stats.verdicts_reused;
  }
  EXPECT_GT(reused, 0u);
}

}  // namespace
}  // namespace metaleak
