// Coverage for the corners: logging, scenario failure modes, generator
// boundary behaviour, and umbrella-header compilation.
#include <gtest/gtest.h>

#include <sstream>

#include "metaleak.h"  // umbrella header must compile standalone

namespace metaleak {
namespace {

// --- Logging ---------------------------------------------------------------

TEST(LoggingTest, LevelGate) {
  LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  // Below-threshold messages must not crash and must be cheap.
  METALEAK_LOG(kDebug) << "dropped " << 1;
  METALEAK_LOG(kInfo) << "dropped " << 2;
  SetLogLevel(LogLevel::kOff);
  METALEAK_LOG(kError) << "also dropped";
  SetLogLevel(before);
}

// --- Scenario failure modes ---------------------------------------------------

TEST(ScenarioFailureTest, MissingLabelAttribute) {
  datasets::FintechScenario s = datasets::Fintech();
  Party bank("bank", s.bank, "customer_id");
  Party ecom("ecom", s.ecommerce, "customer_id");
  ScenarioOptions options;
  options.label_attribute = "no_such_label";
  auto outcome = RunScenario(bank, ecom, options);
  EXPECT_FALSE(outcome.ok());
  EXPECT_TRUE(outcome.status().IsKeyError());
}

TEST(ScenarioFailureTest, EmptyIntersection) {
  // Disjoint id spaces: PSI finds nothing and the scenario reports it.
  Schema schema({{"customer_id", DataType::kInt64,
                  SemanticType::kCategorical},
                 {"x", DataType::kDouble, SemanticType::kContinuous},
                 {"loan_default", DataType::kInt64,
                  SemanticType::kCategorical}});
  RelationBuilder a_builder(schema);
  RelationBuilder b_builder(schema);
  for (int i = 0; i < 20; ++i) {
    a_builder.AddRow({Value::Int(i), Value::Real(i), Value::Int(i % 2)});
    b_builder.AddRow(
        {Value::Int(1000 + i), Value::Real(i), Value::Int(i % 2)});
  }
  Party a("a", std::move(a_builder.Finish()).ValueOrDie(), "customer_id");
  Party b("b", std::move(b_builder.Finish()).ValueOrDie(), "customer_id");
  auto outcome = RunScenario(a, b);
  EXPECT_FALSE(outcome.ok());
}

// --- Generator boundaries --------------------------------------------------------

TEST(GeneratorBoundaryTest, ZeroRowsProducesEmptyRelation) {
  Relation employee = datasets::Employee();
  auto report = ProfileRelation(employee);
  ASSERT_TRUE(report.ok());
  Rng rng(1);
  auto outcome = GenerateSynthetic(report->metadata, 0, &rng);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->relation.num_rows(), 0u);
  EXPECT_EQ(outcome->relation.num_columns(), 4u);
}

TEST(GeneratorBoundaryTest, NullRngRejected) {
  Relation employee = datasets::Employee();
  auto report = ProfileRelation(employee);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(GenerateSynthetic(report->metadata, 4, nullptr).ok());
}

TEST(GeneratorBoundaryTest, DdBallClampsToDomain) {
  // Tiny domain, large delta: all samples stay in the domain.
  Rng rng(9);
  Domain x_domain = Domain::Continuous(0, 1);
  Domain y_domain = Domain::Continuous(10, 11);
  std::vector<Value> lhs = GenerateRootColumn(x_domain, 200, &rng);
  auto col = GenerateDdColumn(lhs, y_domain, 200, 0.5, 100.0, &rng);
  ASSERT_TRUE(col.ok());
  for (const Value& v : *col) {
    EXPECT_GE(v.AsDouble(), 10.0);
    EXPECT_LE(v.AsDouble(), 11.0);
  }
}

TEST(GeneratorBoundaryTest, SingleValueDomains) {
  // |D| = 1 for every attribute: generation is fully determined and the
  // adversary matches everything — the degenerate leakage maximum.
  Schema schema({{"c", DataType::kString, SemanticType::kCategorical}});
  RelationBuilder builder(schema);
  for (int i = 0; i < 10; ++i) builder.AddRow({Value::Str("only")});
  Relation real = std::move(builder.Finish()).ValueOrDie();
  auto report = ProfileRelation(real);
  ASSERT_TRUE(report.ok());
  Rng rng(3);
  auto outcome = GenerateSynthetic(report->metadata, 10, &rng);
  ASSERT_TRUE(outcome.ok());
  auto leak = EvaluateLeakage(real, outcome->relation);
  ASSERT_TRUE(leak.ok());
  EXPECT_EQ(leak->attributes[0].matches, 10u);
}

// --- Metadata corner cases --------------------------------------------------------

TEST(MetadataCornerTest, EmptyPackageSerializesAndParses) {
  MetadataPackage empty;
  std::string wire = empty.Serialize();
  auto parsed = MetadataPackage::Deserialize(wire);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->schema.num_attributes(), 0u);
  EXPECT_EQ(parsed->num_rows, 0u);
}

TEST(MetadataCornerTest, RestrictIsIdempotent) {
  Relation employee = datasets::Employee();
  auto report = ProfileRelation(employee);
  ASSERT_TRUE(report.ok());
  for (DisclosureLevel level :
       {DisclosureLevel::kNames, DisclosureLevel::kNamesAndDomains,
        DisclosureLevel::kWithFds, DisclosureLevel::kWithRfds}) {
    MetadataPackage once = report->metadata.Restrict(level);
    MetadataPackage twice = once.Restrict(level);
    EXPECT_EQ(once.num_rows, twice.num_rows);
    EXPECT_EQ(once.dependencies.size(), twice.dependencies.size());
    EXPECT_EQ(once.HasAllDomains(), twice.HasAllDomains());
  }
}

TEST(MetadataCornerTest, RestrictNeverGainsInformation) {
  Relation employee = datasets::Employee();
  DiscoveryOptions options;
  options.discover_afds = true;
  options.profile_distributions = true;
  auto report = ProfileRelation(employee, options);
  ASSERT_TRUE(report.ok());
  size_t prev_deps = 0;
  bool prev_domains = false;
  for (DisclosureLevel level :
       {DisclosureLevel::kNames, DisclosureLevel::kNamesAndDomains,
        DisclosureLevel::kWithFds, DisclosureLevel::kWithRfds,
        DisclosureLevel::kWithDistributions}) {
    MetadataPackage pkg = report->metadata.Restrict(level);
    EXPECT_GE(pkg.dependencies.size(), prev_deps);
    EXPECT_GE(pkg.HasAllDomains(), prev_domains);
    prev_deps = pkg.dependencies.size();
    prev_domains = pkg.HasAllDomains();
  }
}

// --- Rendering stability -------------------------------------------------------------

TEST(RenderingTest, RelationToStringTruncates) {
  Relation echo = datasets::Echocardiogram();
  std::string text = echo.ToString(5);
  EXPECT_NE(text.find("127 more rows"), std::string::npos);
  EXPECT_NE(text.find("survival"), std::string::npos);
}

TEST(RenderingTest, EnumNamesAreStable) {
  // These strings appear in serialized metadata and reports; changing
  // them is a compatibility break.
  EXPECT_EQ(DataTypeToString(DataType::kInt64), "int64");
  EXPECT_EQ(DataTypeToString(DataType::kDouble), "double");
  EXPECT_EQ(DataTypeToString(DataType::kString), "string");
  EXPECT_EQ(SemanticTypeToString(SemanticType::kCategorical),
            "categorical");
  EXPECT_EQ(SemanticTypeToString(SemanticType::kContinuous), "continuous");
  EXPECT_EQ(DisclosureLevelToString(DisclosureLevel::kNames), "names");
  EXPECT_EQ(DisclosureLevelToString(DisclosureLevel::kWithRfds),
            "names+domains+FDs+RFDs");
  EXPECT_EQ(DependencyKindCode(DependencyKind::kFunctional), "FD");
  EXPECT_EQ(DependencyKindCode(DependencyKind::kOrderedFunctional), "OFD");
  EXPECT_EQ(GenerationMethodToString(GenerationMethod::kRandom),
            "Random Generation");
}

TEST(RenderingTest, StatusStreamInsertion) {
  std::ostringstream os;
  os << Status::Invalid("boom");
  EXPECT_EQ(os.str(), "Invalid argument: boom");
}

// --- Analytical sanity across the employee example ---------------------------------

TEST(AnalyticalCornerTest, DegenerateDomains) {
  Domain single = Domain::Categorical({Value::Int(1)});
  EXPECT_DOUBLE_EQ(ExpectedRandomCategoricalMatches(10, single), 10.0);
  Domain point = Domain::Continuous(5.0, 5.0);
  EXPECT_DOUBLE_EQ(ExpectedRandomContinuousMatches(10, point, 0.1), 10.0);
  EXPECT_DOUBLE_EQ(ExpectedRandomContinuousMse(point), 0.0);
}

}  // namespace
}  // namespace metaleak
