// Unit tests for src/data: Value, Schema, Relation, Domain, CSV loading.
#include <gtest/gtest.h>

#include <unordered_set>

#include "common/random.h"
#include "data/csv_loader.h"
#include "data/domain.h"
#include "data/relation.h"
#include "data/schema.h"
#include "data/value.h"

namespace metaleak {
namespace {

// --- Value -------------------------------------------------------------------

TEST(ValueTest, NullSemantics) {
  Value n;
  EXPECT_TRUE(n.is_null());
  EXPECT_EQ(n, Value::Null());
  EXPECT_EQ(n.ToString(), "?");
}

TEST(ValueTest, TypedAccessors) {
  EXPECT_EQ(Value::Int(7).AsInt(), 7);
  EXPECT_DOUBLE_EQ(Value::Real(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value::Str("hi").AsString(), "hi");
}

TEST(ValueTest, CrossTypeNumericValuesAreNotEqual) {
  EXPECT_NE(Value::Int(1), Value::Real(1.0));
  EXPECT_DOUBLE_EQ(Value::Int(1).AsNumeric(), Value::Real(1.0).AsNumeric());
}

TEST(ValueTest, OrderingNullNumericString) {
  EXPECT_LT(Value::Null(), Value::Int(0));
  EXPECT_LT(Value::Int(5), Value::Str("a"));
  EXPECT_LT(Value::Int(1), Value::Int(2));
  EXPECT_LT(Value::Real(1.5), Value::Int(2));  // numeric interleaving
  EXPECT_LT(Value::Str("a"), Value::Str("b"));
  EXPECT_FALSE(Value::Null() < Value::Null());
}

TEST(ValueTest, OrderingIsStrictWeak) {
  // Irreflexive + asymmetric on a mixed sample.
  std::vector<Value> vals = {Value::Null(),    Value::Int(1),
                             Value::Real(1.0), Value::Real(2.5),
                             Value::Str("x"),  Value::Int(-3)};
  for (const Value& a : vals) {
    EXPECT_FALSE(a < a);
    for (const Value& b : vals) {
      if (a < b) EXPECT_FALSE(b < a);
    }
  }
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value::Int(5).Hash(), Value::Int(5).Hash());
  EXPECT_EQ(Value::Str("ab").Hash(), Value::Str("ab").Hash());
  std::unordered_set<Value> set;
  set.insert(Value::Int(1));
  set.insert(Value::Int(1));
  set.insert(Value::Null());
  set.insert(Value::Null());
  EXPECT_EQ(set.size(), 2u);
}

// --- Schema --------------------------------------------------------------------

Schema TestSchema() {
  return Schema({
      {"id", DataType::kInt64, SemanticType::kCategorical},
      {"score", DataType::kDouble, SemanticType::kContinuous},
      {"label", DataType::kString, SemanticType::kCategorical},
  });
}

TEST(SchemaTest, IndexLookup) {
  Schema s = TestSchema();
  EXPECT_EQ(s.IndexOf("score"), 1u);
  EXPECT_FALSE(s.IndexOf("nope").has_value());
  EXPECT_TRUE(s.RequireIndex("label").ok());
  EXPECT_TRUE(s.RequireIndex("nope").status().IsKeyError());
}

TEST(SchemaTest, IndicesOfSemantic) {
  Schema s = TestSchema();
  EXPECT_EQ(s.IndicesOf(SemanticType::kContinuous),
            (std::vector<size_t>{1}));
  EXPECT_EQ(s.IndicesOf(SemanticType::kCategorical),
            (std::vector<size_t>{0, 2}));
}

TEST(SchemaTest, ProjectReorders) {
  Schema p = TestSchema().Project({2, 0});
  ASSERT_EQ(p.num_attributes(), 2u);
  EXPECT_EQ(p.attribute(0).name, "label");
  EXPECT_EQ(p.attribute(1).name, "id");
}

// --- Relation --------------------------------------------------------------------

Relation TestRelation() {
  RelationBuilder b(TestSchema());
  b.AddRow({Value::Int(1), Value::Real(0.5), Value::Str("a")})
      .AddRow({Value::Int(2), Value::Real(1.5), Value::Str("b")})
      .AddRow({Value::Int(3), Value::Null(), Value::Str("a")});
  return std::move(b.Finish()).ValueOrDie();
}

TEST(RelationTest, BasicAccessors) {
  Relation r = TestRelation();
  EXPECT_EQ(r.num_rows(), 3u);
  EXPECT_EQ(r.num_columns(), 3u);
  EXPECT_EQ(r.at(1, 0), Value::Int(2));
  EXPECT_TRUE(r.at(2, 1).is_null());
  EXPECT_EQ(r.Row(0),
            (std::vector<Value>{Value::Int(1), Value::Real(0.5),
                                Value::Str("a")}));
}

TEST(RelationTest, MakeRejectsRaggedColumns) {
  auto r = Relation::Make(
      TestSchema(),
      {{Value::Int(1)}, {Value::Real(1.0), Value::Real(2.0)}, {}});
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalid());
}

TEST(RelationTest, MakeRejectsArityMismatch) {
  auto r = Relation::Make(TestSchema(), {{}, {}});
  EXPECT_FALSE(r.ok());
}

TEST(RelationTest, MakeRejectsTypeMismatch) {
  auto r = Relation::Make(TestSchema(), {{Value::Str("oops")},
                                         {Value::Real(1.0)},
                                         {Value::Str("x")}});
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsTypeError());
}

TEST(RelationTest, NullAllowedInAnyColumn) {
  auto r = Relation::Make(TestSchema(), {{Value::Null()},
                                         {Value::Null()},
                                         {Value::Null()}});
  EXPECT_TRUE(r.ok());
}

TEST(RelationTest, AppendRowValidates) {
  Relation r = Relation::Empty(TestSchema());
  EXPECT_TRUE(
      r.AppendRow({Value::Int(1), Value::Real(2.0), Value::Str("x")}).ok());
  EXPECT_TRUE(r.AppendRow({Value::Int(1)}).IsInvalid());
  EXPECT_TRUE(r.AppendRow({Value::Real(1.0), Value::Real(2.0),
                           Value::Str("x")})
                  .IsTypeError());
  EXPECT_EQ(r.num_rows(), 1u);
}

TEST(RelationTest, ProjectAndSelectRows) {
  Relation r = TestRelation();
  Relation p = r.Project({2});
  EXPECT_EQ(p.num_columns(), 1u);
  EXPECT_EQ(p.at(1, 0), Value::Str("b"));

  Relation s = r.SelectRows({2, 0});
  EXPECT_EQ(s.num_rows(), 2u);
  EXPECT_EQ(s.at(0, 0), Value::Int(3));
  EXPECT_EQ(s.at(1, 0), Value::Int(1));
}

TEST(RelationTest, BuilderDefersErrors) {
  RelationBuilder b(TestSchema());
  b.AddRow({Value::Int(1)});  // wrong arity, reported at Finish
  auto r = b.Finish();
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalid());
}

TEST(RelationTest, EqualityIsStructural) {
  EXPECT_EQ(TestRelation(), TestRelation());
  Relation other = TestRelation().SelectRows({0, 1});
  EXPECT_FALSE(TestRelation() == other);
}

TEST(RelationTest, ZeroColumnSchemaCountsAppendedRows) {
  // A zero-column relation cannot express its row count through its
  // columns, so Relation tracks it explicitly: Empty()/Make(schema, {})
  // start at 0 rows and AppendRow of the empty row still counts.
  Schema empty_schema((std::vector<Attribute>()));
  Relation r = Relation::Empty(empty_schema);
  EXPECT_EQ(r.num_columns(), 0u);
  EXPECT_EQ(r.num_rows(), 0u);
  ASSERT_TRUE(r.AppendRow({}).ok());
  ASSERT_TRUE(r.AppendRow({}).ok());
  EXPECT_EQ(r.num_rows(), 2u);

  auto made = Relation::Make(empty_schema, {});
  ASSERT_TRUE(made.ok());
  EXPECT_EQ(made->num_rows(), 0u);
  // Row count participates in equality: two zero-column relations with
  // different counts are different relations.
  EXPECT_FALSE(*made == r);
  // Projection onto no columns keeps the row count.
  EXPECT_EQ(TestRelation().Project({}).num_rows(),
            TestRelation().num_rows());
}

// --- Domain --------------------------------------------------------------------

TEST(DomainTest, CategoricalDedupsAndSorts) {
  Domain d = Domain::Categorical(
      {Value::Str("b"), Value::Str("a"), Value::Str("b")});
  ASSERT_EQ(d.values().size(), 2u);
  EXPECT_EQ(d.values()[0], Value::Str("a"));
  EXPECT_DOUBLE_EQ(d.Size(), 2.0);
  EXPECT_TRUE(d.Contains(Value::Str("a")));
  EXPECT_FALSE(d.Contains(Value::Str("z")));
}

TEST(DomainTest, ContinuousRangeAndContains) {
  Domain d = Domain::Continuous(1.0, 5.0);
  EXPECT_DOUBLE_EQ(d.range(), 4.0);
  EXPECT_TRUE(d.Contains(Value::Real(1.0)));
  EXPECT_TRUE(d.Contains(Value::Int(3)));
  EXPECT_FALSE(d.Contains(Value::Real(5.001)));
  EXPECT_FALSE(d.Contains(Value::Str("3")));
}

TEST(DomainTest, SampleStaysInDomain) {
  Rng rng(3);
  Domain cat = Domain::Categorical({Value::Int(1), Value::Int(2)});
  Domain cont = Domain::Continuous(-2.0, 2.0);
  for (int i = 0; i < 500; ++i) {
    EXPECT_TRUE(cat.Contains(cat.Sample(&rng)));
    EXPECT_TRUE(cont.Contains(cont.Sample(&rng)));
  }
}

TEST(DomainTest, ExtractCategoricalSkipsNulls) {
  RelationBuilder b(Schema({{"c", DataType::kString,
                             SemanticType::kCategorical}}));
  b.AddRow({Value::Str("x")})
      .AddRow({Value::Null()})
      .AddRow({Value::Str("y")});
  Relation r = std::move(b.Finish()).ValueOrDie();
  auto d = ExtractDomain(r, 0);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->values().size(), 2u);
}

TEST(DomainTest, ExtractContinuousMinMax) {
  RelationBuilder b(Schema({{"c", DataType::kDouble,
                             SemanticType::kContinuous}}));
  b.AddRow({Value::Real(3.0)})
      .AddRow({Value::Real(-1.0)})
      .AddRow({Value::Null()})
      .AddRow({Value::Real(7.5)});
  Relation r = std::move(b.Finish()).ValueOrDie();
  auto d = ExtractDomain(r, 0);
  ASSERT_TRUE(d.ok());
  EXPECT_DOUBLE_EQ(d->lo(), -1.0);
  EXPECT_DOUBLE_EQ(d->hi(), 7.5);
}

TEST(DomainTest, ExtractFailsOnAllNullColumn) {
  RelationBuilder b(Schema({{"c", DataType::kDouble,
                             SemanticType::kContinuous}}));
  b.AddRow({Value::Null()});
  Relation r = std::move(b.Finish()).ValueOrDie();
  EXPECT_FALSE(ExtractDomain(r, 0).ok());
}

TEST(DomainTest, ExtractFailsOutOfRange) {
  Relation r = TestRelation();
  EXPECT_TRUE(ExtractDomain(r, 99).status().IsOutOfRange());
}

// --- CSV loader -------------------------------------------------------------------

TEST(CsvLoaderTest, InfersTypes) {
  auto r = LoadCsvRelation("id,score,label\n1,0.5,a\n2,1.5,b\n3,?,a\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->schema().attribute(0).type, DataType::kInt64);
  EXPECT_EQ(r->schema().attribute(1).type, DataType::kDouble);
  EXPECT_EQ(r->schema().attribute(2).type, DataType::kString);
  EXPECT_TRUE(r->at(2, 1).is_null());
}

TEST(CsvLoaderTest, SemanticInferenceByDistinctCount) {
  // 2 distinct ints -> categorical; 20 distinct doubles -> continuous.
  std::string text = "flag,measure\n";
  for (int i = 0; i < 20; ++i) {
    text += std::to_string(i % 2) + "," + std::to_string(i) + ".5\n";
  }
  auto r = LoadCsvRelation(text);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->schema().attribute(0).semantic, SemanticType::kCategorical);
  EXPECT_EQ(r->schema().attribute(1).semantic, SemanticType::kContinuous);
}

TEST(CsvLoaderTest, NoHeaderNamesAttributes) {
  CsvLoadOptions options;
  options.has_header = false;
  auto r = LoadCsvRelation("1,2\n3,4\n", options);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->schema().attribute(0).name, "attr0");
  EXPECT_EQ(r->num_rows(), 2u);
}

TEST(CsvLoaderTest, EmptyInputFails) {
  EXPECT_FALSE(LoadCsvRelation("").ok());
}

TEST(CsvLoaderTest, RoundTripThroughCsv) {
  auto r = LoadCsvRelation("a,b\n1,x\n2,y\n");
  ASSERT_TRUE(r.ok());
  std::string text = RelationToCsv(*r);
  auto r2 = LoadCsvRelation(text);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(*r, *r2);
}

TEST(CsvLoaderTest, MixedIntDoubleColumnBecomesDouble) {
  auto r = LoadCsvRelation("v\n1\n2.5\n3\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->schema().attribute(0).type, DataType::kDouble);
  EXPECT_DOUBLE_EQ(r->at(0, 0).AsDouble(), 1.0);
}

}  // namespace
}  // namespace metaleak
