// AuditService behavior: session lifecycle, snapshot-cache hits and LRU
// eviction, warm-audit parity with the one-shot RunAudit path, and
// incremental batches matching a from-scratch registration.
#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/datasets/echocardiogram.h"
#include "data/datasets/employee.h"
#include "data/datasets/synthetic.h"
#include "privacy/audit.h"
#include "service/audit_service.h"

namespace metaleak {
namespace {

AuditOptions SmallAudit() {
  AuditOptions options;
  options.experiment.rounds = 8;
  return options;
}

TEST(AuditServiceTest, WarmAuditMatchesOneShotRunAudit) {
  Relation relation = datasets::Employee();
  AuditService service;
  Result<SessionId> session = service.Register(relation);
  ASSERT_TRUE(session.ok()) << session.status().ToString();

  AuditOptions options = SmallAudit();
  Result<AuditResult> warm = service.Audit(*session, options);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  Result<AuditResult> cold = RunAudit(relation, options);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();

  EXPECT_EQ(warm->metadata.Serialize(), cold->metadata.Serialize());
  EXPECT_EQ(warm->identifiable_fraction, cold->identifiable_fraction);
  ASSERT_EQ(warm->method_results.size(), cold->method_results.size());
  for (size_t m = 0; m < warm->method_results.size(); ++m) {
    const MethodResult& a = warm->method_results[m];
    const MethodResult& b = cold->method_results[m];
    EXPECT_EQ(a.round_seeds, b.round_seeds);
    ASSERT_EQ(a.attributes.size(), b.attributes.size());
    for (size_t c = 0; c < a.attributes.size(); ++c) {
      EXPECT_EQ(a.attributes[c].mean_matches, b.attributes[c].mean_matches);
    }
  }
  ASSERT_EQ(warm->attributes.size(), cold->attributes.size());
  for (size_t c = 0; c < warm->attributes.size(); ++c) {
    EXPECT_EQ(warm->attributes[c].expected_random_matches,
              cold->attributes[c].expected_random_matches);
    EXPECT_EQ(warm->attributes[c].dependency_adds_leakage,
              cold->attributes[c].dependency_adds_leakage);
  }

  // The service fills the snapshot counters; the markdown renders them.
  ASSERT_TRUE(warm->cache_stats.has_value());
  EXPECT_EQ(warm->cache_stats->snapshot_misses, 1u);
  EXPECT_NE(warm->ToMarkdown().find("Cache observability"),
            std::string::npos);
}

TEST(AuditServiceTest, EqualContentHitsTheSnapshotCache) {
  Relation relation = datasets::Employee();
  AuditService service;
  Result<SessionId> first = service.Register(relation);
  Result<SessionId> second = service.Register(relation);
  ASSERT_TRUE(first.ok() && second.ok());
  EXPECT_NE(*first, *second);  // distinct sessions...

  Result<std::shared_ptr<const RelationSnapshot>> a =
      service.Snapshot(*first);
  Result<std::shared_ptr<const RelationSnapshot>> b =
      service.Snapshot(*second);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->get(), b->get());  // ...sharing one snapshot

  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.snapshot_misses, 1u);
  EXPECT_EQ(stats.snapshot_hits, 1u);
}

TEST(AuditServiceTest, LruEvictionIsCountedAndBounded) {
  ServiceOptions options;
  options.max_cached_snapshots = 1;
  AuditService service(options);
  ASSERT_TRUE(service.Register(datasets::Employee()).ok());
  ASSERT_TRUE(service.Register(datasets::Echocardiogram()).ok());
  EXPECT_EQ(service.stats().snapshot_evictions, 1u);
  EXPECT_EQ(service.stats().snapshot_misses, 2u);
}

TEST(AuditServiceTest, ApplyBatchMatchesFreshRegistration) {
  Relation relation = datasets::Employee();
  AuditService service;
  Result<SessionId> session = service.Register(relation);
  ASSERT_TRUE(session.ok());
  Result<std::shared_ptr<const RelationSnapshot>> before =
      service.Snapshot(*session);
  ASSERT_TRUE(before.ok());

  RowBatch batch;
  batch.delete_rows = {0, 2};
  batch.insert_rows.push_back(relation.Row(1));
  Result<LeakageDelta> delta = service.ApplyBatch(*session, batch);
  ASSERT_TRUE(delta.ok()) << delta.status().ToString();
  EXPECT_EQ(delta->rows_delta, -1);

  // The superseded snapshot is still alive and unchanged.
  EXPECT_EQ((*before)->num_rows(), relation.num_rows());

  Result<std::shared_ptr<const RelationSnapshot>> after =
      service.Snapshot(*session);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ((*after)->num_rows(), relation.num_rows() - 1);

  // Registering the post-batch rows from scratch must land on the same
  // content: same fingerprint, hence a snapshot-cache hit.
  Relation expected = Relation::Empty(relation.schema());
  for (size_t r = 0; r < relation.num_rows(); ++r) {
    if (r == 0 || r == 2) continue;
    ASSERT_TRUE(expected.AppendRow(relation.Row(r)).ok());
  }
  ASSERT_TRUE(expected.AppendRow(relation.Row(1)).ok());
  uint64_t hits_before = service.stats().snapshot_hits;
  Result<SessionId> fresh = service.Register(expected);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(service.stats().snapshot_hits, hits_before + 1);
  Result<std::shared_ptr<const RelationSnapshot>> fresh_snap =
      service.Snapshot(*fresh);
  ASSERT_TRUE(fresh_snap.ok());
  EXPECT_EQ((*after)->fingerprint(), (*fresh_snap)->fingerprint());
  EXPECT_EQ((*after)->profile().metadata.Serialize(),
            (*fresh_snap)->profile().metadata.Serialize());
}

TEST(AuditServiceTest, EmptyBatchIsANoOp) {
  AuditService service;
  Result<SessionId> session = service.Register(datasets::Employee());
  ASSERT_TRUE(session.ok());
  Result<std::shared_ptr<const RelationSnapshot>> before =
      service.Snapshot(*session);
  Result<LeakageDelta> delta = service.ApplyBatch(*session, RowBatch{});
  ASSERT_TRUE(delta.ok());
  EXPECT_TRUE(delta->empty());
  Result<std::shared_ptr<const RelationSnapshot>> after =
      service.Snapshot(*session);
  EXPECT_EQ(before->get(), after->get());
}

TEST(AuditServiceTest, UnknownSessionFails) {
  AuditService service;
  EXPECT_FALSE(service.Snapshot(42).ok());
  EXPECT_FALSE(service.Audit(42).ok());
  EXPECT_FALSE(service.ApplyBatch(42, RowBatch{}).ok());
}

TEST(AuditServiceTest, DependencyChangesSurfaceInTheLeakageDelta) {
  // name -> age holds in Employee; inserting two rows with one name and
  // two ages breaks every FD with that LHS, which must show up as
  // removed dependencies.
  Relation relation = datasets::Employee();
  AuditService service;
  Result<SessionId> session = service.Register(relation);
  ASSERT_TRUE(session.ok());

  RowBatch batch;
  std::vector<Value> a = relation.Row(0);
  std::vector<Value> b = relation.Row(0);
  b[1] = Value::Int(999);  // same name, different age
  batch.insert_rows = {a, b};
  Result<LeakageDelta> delta = service.ApplyBatch(*session, batch);
  ASSERT_TRUE(delta.ok()) << delta.status().ToString();
  EXPECT_EQ(delta->rows_delta, 2);
  EXPECT_FALSE(delta->dependencies_removed.empty());
  EXPECT_FALSE(delta->ToString(relation.schema()).empty());
}

}  // namespace
}  // namespace metaleak
