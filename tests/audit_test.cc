// Tests for the one-call audit pipeline (privacy/audit).
#include <gtest/gtest.h>

#include "data/datasets/echocardiogram.h"
#include "data/datasets/employee.h"
#include "privacy/audit.h"

namespace metaleak {
namespace {

TEST(AuditTest, RejectsEmptyRelation) {
  Relation empty = Relation::Empty(Schema(std::vector<Attribute>{}));
  EXPECT_FALSE(RunAudit(empty).ok());
}

TEST(AuditTest, EmployeeAuditFlagsSmallDomains) {
  AuditOptions options;
  options.experiment.rounds = 200;
  auto audit = RunAudit(datasets::Employee(), options);
  ASSERT_TRUE(audit.ok()) << audit.status().ToString();
  ASSERT_EQ(audit->attributes.size(), 4u);
  // Name is a key: 100% identifiable.
  EXPECT_DOUBLE_EQ(audit->identifiable_fraction, 1.0);
  // Department (|D| = 3, N = 4): E = 4/3 >= 1 — domain leaks.
  const AttributeAudit& dept = audit->attributes[2];
  EXPECT_TRUE(dept.domain_leaks);
  EXPECT_NEAR(dept.expected_random_matches, 4.0 / 3.0, 1e-9);
  // No dependency method exceeds random on the employee table.
  for (const AttributeAudit& a : audit->attributes) {
    EXPECT_FALSE(a.dependency_adds_leakage) << a.name;
  }
}

TEST(AuditTest, BaselineIsAlwaysFirstMethod) {
  AuditOptions options;
  options.experiment.rounds = 10;
  options.methods = {GenerationMethod::kFd};
  auto audit = RunAudit(datasets::Employee(), options);
  ASSERT_TRUE(audit.ok());
  ASSERT_EQ(audit->method_results.size(), 2u);
  EXPECT_EQ(audit->method_results[0].method, GenerationMethod::kRandom);
  EXPECT_EQ(audit->method_results[1].method, GenerationMethod::kFd);
}

TEST(AuditTest, MarkdownReportContainsAllSections) {
  AuditOptions options;
  options.experiment.rounds = 20;
  auto audit = RunAudit(datasets::Employee(), options);
  ASSERT_TRUE(audit.ok());
  std::string md = audit->ToMarkdown();
  EXPECT_NE(md.find("# MetaLeak privacy audit"), std::string::npos);
  EXPECT_NE(md.find("## Identifiability"), std::string::npos);
  EXPECT_NE(md.find("## Discovered dependencies"), std::string::npos);
  EXPECT_NE(md.find("## Per-attribute verdicts"), std::string::npos);
  EXPECT_NE(md.find("## Recommendation"), std::string::npos);
  EXPECT_NE(md.find("Department"), std::string::npos);
}

TEST(AuditTest, EchocardiogramAuditRecommendsWithholdingDomains) {
  AuditOptions options;
  options.experiment.rounds = 60;
  options.experiment.threads = 4;
  auto audit = RunAudit(datasets::Echocardiogram(), options);
  ASSERT_TRUE(audit.ok());
  // Binary categorical attributes leak from domains alone (E = N/2).
  bool any_domain_leak = false;
  for (const AttributeAudit& a : audit->attributes) {
    any_domain_leak |= a.domain_leaks;
  }
  EXPECT_TRUE(any_domain_leak);
  std::string md = audit->ToMarkdown();
  EXPECT_NE(md.find("withhold domains"), std::string::npos);
}

TEST(AuditTest, ConstantCfdTriggersDependencyLeakVerdict) {
  // Skewed relation + constant CFD: the audit must flag the dependency.
  std::vector<Value> region;
  std::vector<Value> currency;
  for (int i = 0; i < 30; ++i) {
    region.push_back(Value::Str("eu"));
    currency.push_back(Value::Str(i % 2 == 0 ? "eur" : "sek"));
  }
  for (int i = 0; i < 60; ++i) {
    region.push_back(Value::Str("us"));
    currency.push_back(Value::Str("usd"));
  }
  Schema schema({{"region", DataType::kString, SemanticType::kCategorical},
                 {"currency", DataType::kString,
                  SemanticType::kCategorical}});
  Relation r = std::move(Relation::Make(schema, {region, currency}))
                   .ValueOrDie();
  AuditOptions options;
  options.discovery.discover_cfds = true;
  options.discovery.cfd.min_support = 10;
  options.experiment.rounds = 400;
  options.methods = {GenerationMethod::kCfd};
  auto audit = RunAudit(r, options);
  ASSERT_TRUE(audit.ok());
  const AttributeAudit& currency_audit = audit->attributes[1];
  EXPECT_TRUE(currency_audit.dependency_adds_leakage);
  EXPECT_NE(audit->ToMarkdown().find("DEPENDENCY LEAKS"),
            std::string::npos);
}

}  // namespace
}  // namespace metaleak
