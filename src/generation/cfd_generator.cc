#include "generation/cfd_generator.h"

#include <unordered_map>

#include "common/macros.h"

namespace metaleak {

Result<Relation> ApplyCfds(const Relation& relation,
                           const std::vector<ConditionalFd>& cfds,
                           const std::vector<Domain>& domains, Rng* rng) {
  if (rng == nullptr) return Status::Invalid("rng must not be null");
  if (domains.size() != relation.num_columns()) {
    return Status::Invalid("domains not parallel to schema");
  }
  for (const ConditionalFd& cfd : cfds) {
    if (cfd.condition_attr >= relation.num_columns() ||
        cfd.rhs >= relation.num_columns()) {
      return Status::OutOfRange("CFD attribute out of range");
    }
    for (size_t i : cfd.lhs.ToIndices()) {
      if (i >= relation.num_columns()) {
        return Status::OutOfRange("CFD LHS attribute out of range");
      }
    }
  }

  std::vector<std::vector<Value>> columns;
  columns.reserve(relation.num_columns());
  for (size_t c = 0; c < relation.num_columns(); ++c) {
    columns.push_back(relation.column(c));
  }

  // Bounded chase with single-writer cells: for every (row, attribute)
  // at most one rule writes per pass — constant CFDs first (they pin the
  // cell to a disclosed value), then variable CFDs in disclosure order.
  // Applying one CFD can change cells another CFD's condition reads, so
  // passes repeat until stable or the budget runs out. Rule sets mined
  // from consistent data converge quickly; arbitrary interacting sets are
  // repaired best-effort (full satisfaction is a constraint-satisfaction
  // problem the adversary has no reason to solve exactly).
  std::vector<size_t> order;  // constants first, then variables
  for (size_t i = 0; i < cfds.size(); ++i) {
    if (cfds[i].rhs_is_constant) order.push_back(i);
  }
  for (size_t i = 0; i < cfds.size(); ++i) {
    if (!cfds[i].rhs_is_constant) order.push_back(i);
  }
  std::vector<std::unordered_map<size_t, Value>> mappings(cfds.size());
  const size_t max_passes = 2 * relation.num_columns() + 4;
  for (size_t pass = 0; pass < max_passes; ++pass) {
    bool changed = false;
    // written[r*m + a] marks cells already claimed this pass.
    std::vector<bool> written(relation.num_rows() * relation.num_columns(),
                              false);
    const size_t m = relation.num_columns();
    for (size_t oi : order) {
      const ConditionalFd& cfd = cfds[oi];
      for (size_t r = 0; r < relation.num_rows(); ++r) {
        if (columns[cfd.condition_attr][r] != cfd.condition_value) {
          continue;
        }
        if (written[r * m + cfd.rhs]) continue;  // cell already claimed
        Value desired;
        if (cfd.rhs_is_constant) {
          desired = cfd.rhs_value;
        } else {
          size_t key = 0x811C9DC5u;
          for (size_t i : cfd.lhs.ToIndices()) {
            key ^= columns[i][r].Hash();
            key *= 0x01000193u;
          }
          auto it = mappings[oi].find(key);
          if (it == mappings[oi].end()) {
            it = mappings[oi].emplace(key, domains[cfd.rhs].Sample(rng))
                     .first;
          }
          desired = it->second;
        }
        written[r * m + cfd.rhs] = true;
        if (columns[cfd.rhs][r] != desired) {
          columns[cfd.rhs][r] = desired;
          changed = true;
        }
      }
    }
    if (!changed) break;
  }

  // Re-derive physical types: constants/mappings may change a column's
  // value types (e.g. a string constant landing in an int column of the
  // synthetic schema).
  std::vector<Attribute> attrs = relation.schema().attributes();
  for (size_t c = 0; c < columns.size(); ++c) {
    bool has_double = false;
    bool has_int = false;
    bool has_string = false;
    for (const Value& v : columns[c]) {
      has_double |= v.is_double();
      has_int |= v.is_int();
      has_string |= v.is_string();
    }
    if (has_string && (has_int || has_double)) {
      for (Value& v : columns[c]) {
        if (!v.is_null() && !v.is_string()) v = Value::Str(v.ToString());
      }
      attrs[c].type = DataType::kString;
    } else if (has_string) {
      attrs[c].type = DataType::kString;
    } else if (has_double && has_int) {
      for (Value& v : columns[c]) {
        if (v.is_int()) v = Value::Real(static_cast<double>(v.AsInt()));
      }
      attrs[c].type = DataType::kDouble;
    } else if (has_double) {
      attrs[c].type = DataType::kDouble;
    } else if (has_int) {
      attrs[c].type = DataType::kInt64;
    }
  }
  return Relation::Make(Schema(std::move(attrs)), std::move(columns));
}

}  // namespace metaleak
