#include "generation/cfd_generator.h"

#include <cmath>
#include <unordered_map>

#include "common/macros.h"

namespace metaleak {

Result<Relation> ApplyCfds(const Relation& relation,
                           const std::vector<ConditionalFd>& cfds,
                           const std::vector<Domain>& domains, Rng* rng) {
  if (rng == nullptr) return Status::Invalid("rng must not be null");
  if (domains.size() != relation.num_columns()) {
    return Status::Invalid("domains not parallel to schema");
  }
  for (const ConditionalFd& cfd : cfds) {
    if (cfd.condition_attr >= relation.num_columns() ||
        cfd.rhs >= relation.num_columns()) {
      return Status::OutOfRange("CFD attribute out of range");
    }
    for (size_t i : cfd.lhs.ToIndices()) {
      if (i >= relation.num_columns()) {
        return Status::OutOfRange("CFD LHS attribute out of range");
      }
    }
  }

  std::vector<std::vector<Value>> columns;
  columns.reserve(relation.num_columns());
  for (size_t c = 0; c < relation.num_columns(); ++c) {
    columns.push_back(relation.column(c));
  }

  // Bounded chase with single-writer cells: for every (row, attribute)
  // at most one rule writes per pass — constant CFDs first (they pin the
  // cell to a disclosed value), then variable CFDs in disclosure order.
  // Applying one CFD can change cells another CFD's condition reads, so
  // passes repeat until stable or the budget runs out. Rule sets mined
  // from consistent data converge quickly; arbitrary interacting sets are
  // repaired best-effort (full satisfaction is a constraint-satisfaction
  // problem the adversary has no reason to solve exactly).
  std::vector<size_t> order;  // constants first, then variables
  for (size_t i = 0; i < cfds.size(); ++i) {
    if (cfds[i].rhs_is_constant) order.push_back(i);
  }
  for (size_t i = 0; i < cfds.size(); ++i) {
    if (!cfds[i].rhs_is_constant) order.push_back(i);
  }
  std::vector<std::unordered_map<size_t, Value>> mappings(cfds.size());
  const size_t max_passes = 2 * relation.num_columns() + 4;
  for (size_t pass = 0; pass < max_passes; ++pass) {
    bool changed = false;
    // written[r*m + a] marks cells already claimed this pass.
    std::vector<bool> written(relation.num_rows() * relation.num_columns(),
                              false);
    const size_t m = relation.num_columns();
    for (size_t oi : order) {
      const ConditionalFd& cfd = cfds[oi];
      for (size_t r = 0; r < relation.num_rows(); ++r) {
        if (columns[cfd.condition_attr][r] != cfd.condition_value) {
          continue;
        }
        if (written[r * m + cfd.rhs]) continue;  // cell already claimed
        Value desired;
        if (cfd.rhs_is_constant) {
          desired = cfd.rhs_value;
        } else {
          size_t key = 0x811C9DC5u;
          for (size_t i : cfd.lhs.ToIndices()) {
            key ^= columns[i][r].Hash();
            key *= 0x01000193u;
          }
          auto it = mappings[oi].find(key);
          if (it == mappings[oi].end()) {
            it = mappings[oi].emplace(key, domains[cfd.rhs].Sample(rng))
                     .first;
          }
          desired = it->second;
        }
        written[r * m + cfd.rhs] = true;
        if (columns[cfd.rhs][r] != desired) {
          columns[cfd.rhs][r] = desired;
          changed = true;
        }
      }
    }
    if (!changed) break;
  }

  // Re-derive physical types: constants/mappings may change a column's
  // value types (e.g. a string constant landing in an int column of the
  // synthetic schema).
  std::vector<Attribute> attrs = relation.schema().attributes();
  for (size_t c = 0; c < columns.size(); ++c) {
    bool has_double = false;
    bool has_int = false;
    bool has_string = false;
    for (const Value& v : columns[c]) {
      has_double |= v.is_double();
      has_int |= v.is_int();
      has_string |= v.is_string();
    }
    if (has_string && (has_int || has_double)) {
      for (Value& v : columns[c]) {
        if (!v.is_null() && !v.is_string()) v = Value::Str(v.ToString());
      }
      attrs[c].type = DataType::kString;
    } else if (has_string) {
      attrs[c].type = DataType::kString;
    } else if (has_double && has_int) {
      for (Value& v : columns[c]) {
        if (v.is_int()) v = Value::Real(static_cast<double>(v.AsInt()));
      }
      attrs[c].type = DataType::kDouble;
    } else if (has_double) {
      attrs[c].type = DataType::kDouble;
    } else if (has_int) {
      attrs[c].type = DataType::kInt64;
    }
  }
  return Relation::Make(Schema(std::move(attrs)), std::move(columns));
}

namespace {

// Structurally-unique domain code for `v`: 0 matches, 1 match, or
// ambiguous (only possible with duplicate domain entries).
enum class CodeLookup { kNone, kUnique, kAmbiguous };

CodeLookup LookupDomainCode(const Value& v, const std::vector<Value>& domain,
                            uint32_t* code) {
  bool found = false;
  for (size_t i = 0; i < domain.size(); ++i) {
    if (domain[i] == v) {
      if (found) return CodeLookup::kAmbiguous;
      found = true;
      *code = static_cast<uint32_t>(i) + 1;
    }
  }
  return found ? CodeLookup::kUnique : CodeLookup::kNone;
}

}  // namespace

Result<EncodedCfdPlan> BuildEncodedCfdPlan(
    const std::vector<ConditionalFd>& cfds,
    const std::vector<Domain>& domains,
    const std::vector<EncodedBatch::ColumnKind>& kinds) {
  const size_t m = kinds.size();
  if (domains.size() != m) {
    return Status::Invalid("domains not parallel to schema");
  }
  for (const ConditionalFd& cfd : cfds) {
    if (cfd.condition_attr >= m || cfd.rhs >= m) {
      return Status::OutOfRange("CFD attribute out of range");
    }
    for (size_t i : cfd.lhs.ToIndices()) {
      if (i >= m) {
        return Status::OutOfRange("CFD LHS attribute out of range");
      }
    }
  }

  EncodedCfdPlan plan;
  plan.kinds_ = kinds;
  auto mark_unsupported = [&plan](const char* reason) {
    if (plan.supported_) {
      plan.supported_ = false;
      plan.fallback_reason_ = reason;
    }
  };

  // The value path re-derives physical types after the chase (and the
  // generator before it), *coercing cell values* when a column mixes
  // ints with doubles or strings with numerics. That coercion is
  // data-dependent per round and changes the Value hashes / equalities
  // the chase itself observes, so a batch of fixed codes cannot mirror
  // it: any domain that could produce such a mix forces the value path.
  if (!cfds.empty()) {
    for (size_t c = 0; c < m; ++c) {
      if (kinds[c] != EncodedBatch::ColumnKind::kCodes) continue;
      bool has_int = false;
      bool has_double = false;
      bool has_string = false;
      for (const Value& v : domains[c].values()) {
        has_int |= v.is_int();
        has_double |= v.is_double();
        has_string |= v.is_string();
      }
      if ((has_int && has_double) ||
          (has_string && (has_int || has_double))) {
        mark_unsupported("mixed-type domain under CFD repair");
      }
    }
  }

  plan.hash_by_code_.resize(m);
  for (size_t c = 0; c < m; ++c) {
    if (kinds[c] != EncodedBatch::ColumnKind::kCodes) continue;
    const std::vector<Value>& vals = domains[c].values();
    std::vector<size_t>& table = plan.hash_by_code_[c];
    table.resize(vals.size() + 1);
    table[0] = Value::Null().Hash();
    for (size_t i = 0; i < vals.size(); ++i) table[i + 1] = vals[i].Hash();
  }

  plan.rules_.reserve(cfds.size());
  for (const ConditionalFd& cfd : cfds) {
    EncodedCfdPlan::Rule rule;
    rule.condition_attr = cfd.condition_attr;
    rule.rhs = cfd.rhs;
    rule.lhs = cfd.lhs.ToIndices();
    rule.rhs_is_constant = cfd.rhs_is_constant;

    if (kinds[cfd.condition_attr] == EncodedBatch::ColumnKind::kCodes) {
      rule.condition_is_code = true;
      switch (LookupDomainCode(cfd.condition_value,
                               domains[cfd.condition_attr].values(),
                               &rule.condition_code)) {
        case CodeLookup::kUnique:
          break;
        case CodeLookup::kNone:
          // The column only ever holds domain codes (and representable
          // constants, which are domain codes too), so the condition can
          // never match a cell — same as the value path never matching.
          rule.never_fires = true;
          break;
        case CodeLookup::kAmbiguous:
          mark_unsupported("duplicate domain entries under CFD repair");
          break;
      }
    } else {
      // Real-stored cells are always doubles; any other condition type
      // fails structural equality against every cell.
      if (cfd.condition_value.is_double()) {
        rule.condition_real = cfd.condition_value.AsNumeric();
      } else {
        rule.never_fires = true;
      }
    }

    if (cfd.rhs_is_constant) {
      if (!rule.never_fires) {
        if (kinds[cfd.rhs] == EncodedBatch::ColumnKind::kCodes) {
          if (LookupDomainCode(cfd.rhs_value, domains[cfd.rhs].values(),
                               &rule.rhs_code) != CodeLookup::kUnique) {
            mark_unsupported(
                "CFD constant not representable in the target domain");
          }
        } else {
          if (cfd.rhs_value.is_double() &&
              !std::isnan(cfd.rhs_value.AsNumeric())) {
            // A NaN constant would be a value to the value path's MSE but
            // a skip marker to the encoded evaluator, so it falls back.
            rule.rhs_real = cfd.rhs_value.AsNumeric();
          } else {
            mark_unsupported(
                "non-double CFD constant on a continuous column");
          }
        }
      }
    } else {
      if (kinds[cfd.rhs] == EncodedBatch::ColumnKind::kCodes) {
        rule.sample_k = domains[cfd.rhs].values().size();
      } else {
        rule.sample_lo = domains[cfd.rhs].lo();
        rule.sample_hi = domains[cfd.rhs].hi();
      }
    }
    plan.rules_.push_back(std::move(rule));
  }

  // Constants first, then variables — the single-writer priority order.
  for (size_t i = 0; i < cfds.size(); ++i) {
    if (cfds[i].rhs_is_constant) plan.order_.push_back(i);
  }
  for (size_t i = 0; i < cfds.size(); ++i) {
    if (!cfds[i].rhs_is_constant) plan.order_.push_back(i);
  }
  return plan;
}

Status ApplyCfdsEncoded(const EncodedCfdPlan& plan, EncodedBatch* batch,
                        Rng* rng) {
  if (rng == nullptr) return Status::Invalid("rng must not be null");
  if (!plan.supported_) {
    return Status::Invalid("CFD plan is not encodable: " +
                           plan.fallback_reason_);
  }
  const size_t m = plan.kinds_.size();
  if (batch->num_columns() != m) {
    return Status::Invalid("batch layout does not match CFD plan");
  }
  const size_t n = batch->num_rows();

  // Variable-CFD mappings persist across passes, exactly like the value
  // path's `mappings`; they are keyed by the same FNV-of-Value::Hash fold
  // so lookups (and collisions) replay identically.
  std::vector<std::unordered_map<size_t, uint32_t>> code_maps(
      plan.rules_.size());
  std::vector<std::unordered_map<size_t, double>> real_maps(
      plan.rules_.size());

  auto lhs_key = [&](const EncodedCfdPlan::Rule& rule, size_t r) {
    size_t key = 0x811C9DC5u;
    for (size_t i : rule.lhs) {
      size_t h;
      if (plan.kinds_[i] == EncodedBatch::ColumnKind::kCodes) {
        h = plan.hash_by_code_[i][batch->code_at(i, r)];
      } else {
        h = Value::Real(batch->reals(i)[r]).Hash();
      }
      key ^= h;
      key *= 0x01000193u;
    }
    return key;
  };

  thread_local std::vector<bool> written;
  const size_t max_passes = 2 * m + 4;
  for (size_t pass = 0; pass < max_passes; ++pass) {
    bool changed = false;
    written.assign(n * m, false);
    for (size_t oi : plan.order_) {
      const EncodedCfdPlan::Rule& rule = plan.rules_[oi];
      if (rule.never_fires) continue;
      for (size_t r = 0; r < n; ++r) {
        bool condition_holds;
        if (rule.condition_is_code) {
          condition_holds =
              batch->code_at(rule.condition_attr, r) == rule.condition_code;
        } else {
          condition_holds =
              batch->reals(rule.condition_attr)[r] == rule.condition_real;
        }
        if (!condition_holds) continue;
        if (written[r * m + rule.rhs]) continue;  // cell already claimed
        if (plan.kinds_[rule.rhs] == EncodedBatch::ColumnKind::kCodes) {
          uint32_t desired;
          if (rule.rhs_is_constant) {
            desired = rule.rhs_code;
          } else {
            size_t key = lhs_key(rule, r);
            auto it = code_maps[oi].find(key);
            if (it == code_maps[oi].end()) {
              it = code_maps[oi]
                       .emplace(key, static_cast<uint32_t>(
                                         rng->UniformIndex(rule.sample_k)) +
                                         1)
                       .first;
            }
            desired = it->second;
          }
          written[r * m + rule.rhs] = true;
          if (batch->code_at(rule.rhs, r) != desired) {
            batch->set_code(rule.rhs, r, desired);
            changed = true;
          }
        } else {
          double desired;
          if (rule.rhs_is_constant) {
            desired = rule.rhs_real;
          } else {
            size_t key = lhs_key(rule, r);
            auto it = real_maps[oi].find(key);
            if (it == real_maps[oi].end()) {
              it = real_maps[oi]
                       .emplace(key, rng->UniformDouble(rule.sample_lo,
                                                        rule.sample_hi))
                       .first;
            }
            desired = it->second;
          }
          written[r * m + rule.rhs] = true;
          double& cell = batch->reals(rule.rhs)[r];
          if (cell != desired) {
            cell = desired;
            changed = true;
          }
        }
      }
    }
    if (!changed) break;
  }
  return Status::OK();
}

}  // namespace metaleak
