// CFD-aware adversarial generation: enforce disclosed conditional FDs on
// an otherwise randomly generated relation.
//
// The adversary generates root values from the domains, then repairs the
// relation so every disclosed CFD holds: constant CFDs overwrite the RHS
// on matching rows with the disclosed constant; variable CFDs install a
// one-shot LHS -> RHS mapping within the condition's scope (the same
// one-time initialization argument as Section III-B, restricted to the
// scope).
#ifndef METALEAK_GENERATION_CFD_GENERATOR_H_
#define METALEAK_GENERATION_CFD_GENERATOR_H_

#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "data/domain.h"
#include "data/relation.h"
#include "metadata/conditional_fd.h"

namespace metaleak {

/// Returns a repaired copy of `relation` where the disclosed CFDs hold.
/// `domains` supplies the sampling space for the variable-CFD mappings
/// and must be parallel to the schema.
///
/// Repair is a bounded chase with single-writer cells (constant CFDs
/// take priority over variable ones on the same cell). A single CFD, or
/// any set whose rules write disjoint attributes, is enforced exactly;
/// densely interacting mined sets are repaired best-effort — exact
/// satisfaction of an arbitrary CFD set on fresh data is a
/// constraint-satisfaction problem the adversary has no reason to solve.
Result<Relation> ApplyCfds(const Relation& relation,
                           const std::vector<ConditionalFd>& cfds,
                           const std::vector<Domain>& domains, Rng* rng);

}  // namespace metaleak

#endif  // METALEAK_GENERATION_CFD_GENERATOR_H_
