// CFD-aware adversarial generation: enforce disclosed conditional FDs on
// an otherwise randomly generated relation.
//
// The adversary generates root values from the domains, then repairs the
// relation so every disclosed CFD holds: constant CFDs overwrite the RHS
// on matching rows with the disclosed constant; variable CFDs install a
// one-shot LHS -> RHS mapping within the condition's scope (the same
// one-time initialization argument as Section III-B, restricted to the
// scope).
#ifndef METALEAK_GENERATION_CFD_GENERATOR_H_
#define METALEAK_GENERATION_CFD_GENERATOR_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "data/domain.h"
#include "data/encoded_batch.h"
#include "data/relation.h"
#include "metadata/conditional_fd.h"

namespace metaleak {

/// Returns a repaired copy of `relation` where the disclosed CFDs hold.
/// `domains` supplies the sampling space for the variable-CFD mappings
/// and must be parallel to the schema.
///
/// Repair is a bounded chase with single-writer cells (constant CFDs
/// take priority over variable ones on the same cell). A single CFD, or
/// any set whose rules write disjoint attributes, is enforced exactly;
/// densely interacting mined sets are repaired best-effort — exact
/// satisfaction of an arbitrary CFD set on fresh data is a
/// constraint-satisfaction problem the adversary has no reason to solve.
Result<Relation> ApplyCfds(const Relation& relation,
                           const std::vector<ConditionalFd>& cfds,
                           const std::vector<Domain>& domains, Rng* rng);

/// Chase rules pre-resolved against an EncodedBatch layout: condition
/// values and constant RHS values are translated to codes / raw doubles
/// once, and per-code Value hashes are tabulated so the variable-CFD
/// mapping keys come out identical to the value path's (the mapping is
/// keyed by an FNV fold of Value::Hash, so even hash *collisions* repeat
/// exactly). supported() is false when the batch cannot represent the
/// chase bit-for-bit — e.g. a constant outside its column's domain, or a
/// domain whose mixed value types would trigger the value path's
/// data-dependent type coercion; callers then fall back to ApplyCfds.
class EncodedCfdPlan {
 public:
  struct Rule {
    size_t condition_attr = 0;
    size_t rhs = 0;
    std::vector<size_t> lhs;
    bool rhs_is_constant = false;
    /// Condition value unrepresentable in the condition column: the rule
    /// can never fire (same observable behavior as the value path, which
    /// compares it against every cell and never matches).
    bool never_fires = false;
    bool condition_is_code = false;
    uint32_t condition_code = 0;
    double condition_real = 0.0;
    uint32_t rhs_code = 0;   // constant RHS, code-stored column
    double rhs_real = 0.0;   // constant RHS, real-stored column
    size_t sample_k = 0;     // variable RHS: domain size (code-stored)
    double sample_lo = 0.0;  // variable RHS: domain range (real-stored)
    double sample_hi = 0.0;
  };

  const std::vector<Rule>& rules() const { return rules_; }
  /// Rule application order: constants first, then variables.
  const std::vector<size_t>& order() const { return order_; }
  size_t num_columns() const { return kinds_.size(); }
  bool supported() const { return supported_; }
  const std::string& fallback_reason() const { return fallback_reason_; }

 private:
  friend Result<EncodedCfdPlan> BuildEncodedCfdPlan(
      const std::vector<ConditionalFd>&, const std::vector<Domain>&,
      const std::vector<EncodedBatch::ColumnKind>&);
  friend Status ApplyCfdsEncoded(const EncodedCfdPlan&, EncodedBatch*,
                                 Rng*);

  std::vector<Rule> rules_;
  std::vector<size_t> order_;
  std::vector<EncodedBatch::ColumnKind> kinds_;
  std::vector<std::vector<size_t>> hash_by_code_;  // per code-stored column
  bool supported_ = true;
  std::string fallback_reason_;
};

/// Resolves `cfds` against the batch layout implied by `domains`/`kinds`.
/// Hard validation failures (attribute out of range, domains not parallel
/// to the layout) return the same Status ApplyCfds would; mere
/// representability problems clear plan.supported() instead.
Result<EncodedCfdPlan> BuildEncodedCfdPlan(
    const std::vector<ConditionalFd>& cfds,
    const std::vector<Domain>& domains,
    const std::vector<EncodedBatch::ColumnKind>& kinds);

/// Runs the bounded chase of ApplyCfds directly on batch codes/doubles,
/// consuming the RNG in the identical order. Invalid when the plan is
/// unsupported or the batch layout does not match.
Status ApplyCfdsEncoded(const EncodedCfdPlan& plan, EncodedBatch* batch,
                        Rng* rng);

}  // namespace metaleak

#endif  // METALEAK_GENERATION_CFD_GENERATOR_H_
