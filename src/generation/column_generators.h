// Per-dependency-class column generators.
//
// Each function produces the synthetic column for one target attribute,
// given the already-generated LHS column(s) and the disclosed metadata.
// They implement the generation processes the paper analyzes:
//
//   Root (names+domains only): i.i.d. uniform draws from the domain
//     (Section III-A, "random generation from a uniform distribution").
//   FD: one-time random mapping from each distinct LHS value to a domain
//     value of the RHS (Section III-B, "one-time initialization
//     throughout the dataset").
//   AFD: the FD process, with a g3 fraction of rows re-drawn
//     independently (Section IV-A).
//   ND: per distinct LHS value, a pool of K RHS values sampled without
//     replacement (the hyper-geometric selection of Section IV-B); each
//     row draws from its pool.
//   OD: distinct LHS values sorted; RHS values assigned from sorted
//     order statistics over the RHS domain, preserving order
//     (the interval partitioning of Section IV-C).
//   DD: a Markov interval process along the LHS ordering: proximal LHS
//     values constrain the next RHS draw to a delta-ball around the
//     previous one (Section IV-D).
//   OFD: a strictly monotone one-dimensional random walk over the RHS
//     domain (Section IV-E).
//
// All functions assume uniform distributions — the paper's fundamental
// assumption that value distributions are not disclosed.
#ifndef METALEAK_GENERATION_COLUMN_GENERATORS_H_
#define METALEAK_GENERATION_COLUMN_GENERATORS_H_

#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "data/domain.h"
#include "data/encoded_batch.h"
#include "data/value.h"

namespace metaleak {

/// i.i.d. uniform draws from `domain` (random generation baseline).
std::vector<Value> GenerateRootColumn(const Domain& domain, size_t num_rows,
                                      Rng* rng);

/// FD lhs -> target: one random mapping per distinct LHS key. `lhs_columns`
/// holds the already generated LHS columns (possibly several for a
/// composite LHS; an empty list models the constant-column FD {} -> A).
std::vector<Value> GenerateFdColumn(
    const std::vector<const std::vector<Value>*>& lhs_columns,
    const Domain& domain, size_t num_rows, Rng* rng);

/// AFD: FD process + `g3_error` fraction of rows re-drawn independently.
std::vector<Value> GenerateAfdColumn(
    const std::vector<const std::vector<Value>*>& lhs_columns,
    const Domain& domain, size_t num_rows, double g3_error, Rng* rng);

/// ND lhs ->(<=K) target: per distinct LHS value a pool of up to
/// `max_fanout` distinct domain values; rows draw uniformly from the pool.
/// Continuous domains draw the pool i.i.d. (a.s. distinct).
std::vector<Value> GenerateNdColumn(const std::vector<Value>& lhs_column,
                                    const Domain& domain, size_t num_rows,
                                    size_t max_fanout, Rng* rng);

/// OD lhs -> target: distinct LHS values (by Value order) are mapped to
/// non-decreasing order statistics over the target domain.
std::vector<Value> GenerateOdColumn(const std::vector<Value>& lhs_column,
                                    const Domain& domain, size_t num_rows,
                                    Rng* rng);

/// OFD lhs -> target: like OD but strictly increasing where the domain
/// permits (categorical domains smaller than the LHS distinct count fall
/// back to non-decreasing, mirroring the forced transitions the paper
/// describes for exhausted partitions).
std::vector<Value> GenerateOfdColumn(const std::vector<Value>& lhs_column,
                                     const Domain& domain, size_t num_rows,
                                     Rng* rng);

/// DD: Markov interval process along the LHS order; rows whose LHS is
/// within `lhs_epsilon` of the previous row draw from a `rhs_delta` ball
/// around the previous RHS value. Requires a continuous target domain.
Result<std::vector<Value>> GenerateDdColumn(
    const std::vector<Value>& lhs_column, const Domain& domain,
    size_t num_rows, double lhs_epsilon, double rhs_delta, Rng* rng);

/// --- Encoded (code-path) generators ------------------------------------
///
/// Mirrors of the generators above that emit dense domain codes
/// (categorical domains: code i+1 means domain.values()[i], code 0 is
/// NULL) or raw doubles (continuous domains) straight into an
/// EncodedBatch column. Each mirror consumes the RNG in *exactly* the
/// same sequence as its boxed-Value twin, so decoding the batch
/// reproduces the Value column bit for bit. The batch must be
/// Configure()d with ColumnKindsForDomains of the generation domains and
/// ResetRows() to `num_rows` before any generator runs; LHS columns are
/// read back out of the same batch by index. Internal scratch (rank
/// maps, group ids, ND pools) is thread-local and reused across calls,
/// which is what makes the Monte-Carlo loop allocation-free after the
/// first round on each worker thread.

/// Root: i.i.d. uniform draws from the domain.
void GenerateRootColumnEncoded(const Domain& domain, size_t num_rows,
                               Rng* rng, EncodedBatch* batch,
                               size_t target);

/// FD: one lazily-sampled target per distinct LHS group (empty
/// `lhs_columns` models the constant FD {} -> A).
void GenerateFdColumnEncoded(const std::vector<size_t>& lhs_columns,
                             const Domain& domain, size_t num_rows,
                             Rng* rng, EncodedBatch* batch, size_t target);

/// AFD: the FD process + a g3 fraction of rows re-drawn independently.
void GenerateAfdColumnEncoded(const std::vector<size_t>& lhs_columns,
                              const Domain& domain, size_t num_rows,
                              double g3_error, Rng* rng,
                              EncodedBatch* batch, size_t target);

/// ND: per distinct LHS value a pool of up to `max_fanout` values.
void GenerateNdColumnEncoded(size_t lhs_column, const Domain& domain,
                             size_t num_rows, size_t max_fanout, Rng* rng,
                             EncodedBatch* batch, size_t target);

/// OD: distinct LHS ranks mapped to non-decreasing order statistics.
void GenerateOdColumnEncoded(size_t lhs_column, const Domain& domain,
                             size_t num_rows, Rng* rng, EncodedBatch* batch,
                             size_t target);

/// OFD: like OD but strictly increasing where the domain permits.
void GenerateOfdColumnEncoded(size_t lhs_column, const Domain& domain,
                              size_t num_rows, Rng* rng,
                              EncodedBatch* batch, size_t target);

/// DD: Markov interval process. `lhs_code_numeric` is the per-code
/// numeric view of the LHS column's domain (code -> AsNumeric, 0.0 for
/// non-numeric entries) when the LHS is code-stored; unused for a
/// real-stored LHS. TypeError for a categorical target domain, exactly
/// like the Value twin (the engine falls back to a root draw).
Status GenerateDdColumnEncoded(size_t lhs_column, const Domain& domain,
                               const std::vector<double>& lhs_code_numeric,
                               size_t num_rows, double lhs_epsilon,
                               double rhs_delta, Rng* rng,
                               EncodedBatch* batch, size_t target);

}  // namespace metaleak

#endif  // METALEAK_GENERATION_COLUMN_GENERATORS_H_
