#include "generation/column_generators.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <unordered_map>

#include "common/macros.h"

namespace metaleak {

namespace {

// Sorted distinct values of a column (Value total order).
std::vector<Value> SortedDistinct(const std::vector<Value>& column) {
  std::vector<Value> vals = column;
  std::sort(vals.begin(), vals.end());
  vals.erase(std::unique(vals.begin(), vals.end()), vals.end());
  return vals;
}

// Local dictionary encoding of one generated column: codes[r] is the rank
// of column[r] among the sorted distinct values. Pools and mappings below
// index vectors by these dense codes instead of hashing `Value`s.
std::vector<uint32_t> EncodeByRank(const std::vector<Value>& column,
                                   const std::vector<Value>& distinct) {
  std::vector<uint32_t> codes;
  codes.reserve(column.size());
  for (const Value& v : column) {
    codes.push_back(static_cast<uint32_t>(
        std::lower_bound(distinct.begin(), distinct.end(), v) -
        distinct.begin()));
  }
  return codes;
}

// Folds the per-column codes of a composite LHS into one dense group id
// per row (same fold as PositionListIndex::FromEncoded). The empty LHS
// (constant FD {} -> A) yields a single group. Group ids are numbered by
// first occurrence in row order, so lazy sampling keyed by id draws from
// the RNG in exactly the row-scan order the Value-hash path used.
std::pair<std::vector<uint32_t>, uint32_t> FoldLhsGroups(
    const std::vector<const std::vector<Value>*>& lhs_columns,
    size_t num_rows) {
  std::vector<uint32_t> ids(num_rows, 0);
  uint32_t num_groups = 1;
  for (const std::vector<Value>* col : lhs_columns) {
    std::vector<Value> distinct = SortedDistinct(*col);
    std::vector<uint32_t> codes = EncodeByRank(*col, distinct);
    std::unordered_map<uint64_t, uint32_t> remap;
    remap.reserve(num_rows);
    for (size_t r = 0; r < num_rows; ++r) {
      uint64_t key = static_cast<uint64_t>(ids[r]) * distinct.size() +
                     codes[r];
      auto it = remap.emplace(key, static_cast<uint32_t>(remap.size()))
                    .first;
      ids[r] = it->second;
    }
    num_groups = static_cast<uint32_t>(remap.size());
  }
  return {std::move(ids), num_groups};
}

// `count` non-decreasing order statistics over `domain`.
std::vector<Value> SortedSamples(const Domain& domain, size_t count,
                                 Rng* rng) {
  std::vector<Value> out;
  out.reserve(count);
  if (domain.is_continuous()) {
    std::vector<double> xs(count);
    for (double& x : xs) x = rng->UniformDouble(domain.lo(), domain.hi());
    std::sort(xs.begin(), xs.end());
    for (double x : xs) out.push_back(Value::Real(x));
    return out;
  }
  const std::vector<Value>& vals = domain.values();
  METALEAK_DCHECK(!vals.empty());
  std::vector<size_t> idx(count);
  for (size_t& i : idx) i = rng->UniformIndex(vals.size());
  std::sort(idx.begin(), idx.end());
  for (size_t i : idx) out.push_back(vals[i]);
  return out;
}

// `count` strictly increasing values where possible (see header).
std::vector<Value> StrictSortedSamples(const Domain& domain, size_t count,
                                       Rng* rng) {
  if (domain.is_continuous()) {
    // Continuous uniforms are distinct almost surely; re-draw collisions.
    std::vector<double> xs(count);
    for (double& x : xs) x = rng->UniformDouble(domain.lo(), domain.hi());
    std::sort(xs.begin(), xs.end());
    std::vector<Value> out;
    out.reserve(count);
    for (double x : xs) out.push_back(Value::Real(x));
    return out;
  }
  const std::vector<Value>& vals = domain.values();
  if (vals.size() >= count) {
    std::vector<size_t> picked = rng->SampleWithoutReplacement(vals.size(),
                                                               count);
    std::sort(picked.begin(), picked.end());
    std::vector<Value> out;
    out.reserve(count);
    for (size_t i : picked) out.push_back(vals[i]);
    return out;
  }
  // Domain too small for a strict walk: forced transitions collapse to the
  // non-decreasing assignment.
  return SortedSamples(domain, count, rng);
}

}  // namespace

std::vector<Value> GenerateRootColumn(const Domain& domain, size_t num_rows,
                                      Rng* rng) {
  METALEAK_DCHECK(rng != nullptr);
  std::vector<Value> out;
  out.reserve(num_rows);
  for (size_t r = 0; r < num_rows; ++r) out.push_back(domain.Sample(rng));
  return out;
}

std::vector<Value> GenerateFdColumn(
    const std::vector<const std::vector<Value>*>& lhs_columns,
    const Domain& domain, size_t num_rows, Rng* rng) {
  METALEAK_DCHECK(rng != nullptr);
  std::vector<Value> out;
  out.reserve(num_rows);
  auto [ids, num_groups] = FoldLhsGroups(lhs_columns, num_rows);
  // One lazily-sampled target per LHS group, indexed by dense group id.
  std::vector<Value> mapping(num_groups, Value::Null());
  std::vector<bool> sampled(num_groups, false);
  for (size_t r = 0; r < num_rows; ++r) {
    uint32_t id = ids[r];
    if (!sampled[id]) {
      mapping[id] = domain.Sample(rng);
      sampled[id] = true;
    }
    out.push_back(mapping[id]);
  }
  return out;
}

std::vector<Value> GenerateAfdColumn(
    const std::vector<const std::vector<Value>*>& lhs_columns,
    const Domain& domain, size_t num_rows, double g3_error, Rng* rng) {
  std::vector<Value> out =
      GenerateFdColumn(lhs_columns, domain, num_rows, rng);
  // The epsilon fraction of correctly-scattered violations (Section IV-A):
  // re-drawn rows are independent of the mapping.
  for (size_t r = 0; r < num_rows; ++r) {
    if (rng->Bernoulli(std::clamp(g3_error, 0.0, 1.0))) {
      out[r] = domain.Sample(rng);
    }
  }
  return out;
}

std::vector<Value> GenerateNdColumn(const std::vector<Value>& lhs_column,
                                    const Domain& domain, size_t num_rows,
                                    size_t max_fanout, Rng* rng) {
  METALEAK_DCHECK(rng != nullptr);
  METALEAK_DCHECK(lhs_column.size() == num_rows);
  size_t k = std::max<size_t>(1, max_fanout);
  std::vector<Value> distinct = SortedDistinct(lhs_column);
  std::vector<uint32_t> codes = EncodeByRank(lhs_column, distinct);
  // Per-LHS-value pools in one flat arena with constant stride: every
  // pool has the same size (min(k, |Dom(Y)|) when categorical, k
  // otherwise), so pool i is pools[i*take, (i+1)*take). Pools fill
  // lazily in row-scan order, so RNG consumption is identical to the
  // per-pool-vector layout this replaces.
  const size_t take = domain.is_categorical()
                          ? std::min(k, domain.values().size())
                          : k;
  std::vector<Value> pools(distinct.size() * take, Value::Null());
  std::vector<char> filled(distinct.size(), 0);
  std::vector<Value> out;
  out.reserve(num_rows);
  for (size_t r = 0; r < num_rows; ++r) {
    const uint32_t code = codes[r];
    Value* pool = pools.data() + code * take;
    if (!filled[code]) {
      filled[code] = 1;
      if (domain.is_categorical()) {
        const std::vector<Value>& vals = domain.values();
        // Sampling without replacement from Dom(Y): the hyper-geometric
        // selection in the paper's ND analysis.
        size_t j = 0;
        for (size_t i : rng->SampleWithoutReplacement(vals.size(), take)) {
          pool[j++] = vals[i];
        }
      } else {
        for (size_t i = 0; i < take; ++i) pool[i] = domain.Sample(rng);
      }
    }
    out.push_back(pool[rng->UniformIndex(take)]);
  }
  return out;
}

namespace {

std::vector<Value> GenerateOrderedColumn(const std::vector<Value>& lhs_column,
                                         const Domain& domain,
                                         size_t num_rows, bool strict,
                                         Rng* rng) {
  METALEAK_DCHECK(rng != nullptr);
  METALEAK_DCHECK(lhs_column.size() == num_rows);
  std::vector<Value> distinct = SortedDistinct(lhs_column);
  std::vector<Value> targets =
      strict ? StrictSortedSamples(domain, distinct.size(), rng)
             : SortedSamples(domain, distinct.size(), rng);
  // Map the i-th smallest LHS value to the i-th order statistic: this is
  // exactly the interval-partition assignment of Section IV-C and keeps
  // the order dependency satisfied by construction. The rank codes *are*
  // the mapping — targets is indexed directly by code.
  std::vector<uint32_t> codes = EncodeByRank(lhs_column, distinct);
  std::vector<Value> out;
  out.reserve(num_rows);
  for (uint32_t code : codes) out.push_back(targets[code]);
  return out;
}

}  // namespace

std::vector<Value> GenerateOdColumn(const std::vector<Value>& lhs_column,
                                    const Domain& domain, size_t num_rows,
                                    Rng* rng) {
  return GenerateOrderedColumn(lhs_column, domain, num_rows,
                               /*strict=*/false, rng);
}

std::vector<Value> GenerateOfdColumn(const std::vector<Value>& lhs_column,
                                     const Domain& domain, size_t num_rows,
                                     Rng* rng) {
  return GenerateOrderedColumn(lhs_column, domain, num_rows,
                               /*strict=*/true, rng);
}

Result<std::vector<Value>> GenerateDdColumn(
    const std::vector<Value>& lhs_column, const Domain& domain,
    size_t num_rows, double lhs_epsilon, double rhs_delta, Rng* rng) {
  METALEAK_DCHECK(rng != nullptr);
  if (domain.is_categorical()) {
    return Status::TypeError(
        "differential generation requires a continuous target domain");
  }
  if (lhs_column.size() != num_rows) {
    return Status::Invalid("LHS column size mismatch");
  }
  // Order rows by LHS value; walk the chain generating each RHS relative
  // to its predecessor when the LHS values are proximal (Markov process).
  std::vector<size_t> order(num_rows);
  for (size_t i = 0; i < num_rows; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return lhs_column[a] < lhs_column[b];
  });

  std::vector<Value> out(num_rows);
  double prev_x = 0.0;
  double prev_y = 0.0;
  bool has_prev = false;
  for (size_t pos = 0; pos < num_rows; ++pos) {
    size_t row = order[pos];
    double x = lhs_column[row].is_numeric() ? lhs_column[row].AsNumeric()
                                            : 0.0;
    double y;
    if (has_prev && std::abs(x - prev_x) <= lhs_epsilon) {
      double lo = std::max(domain.lo(), prev_y - rhs_delta);
      double hi = std::min(domain.hi(), prev_y + rhs_delta);
      if (lo > hi) {
        lo = domain.lo();
        hi = domain.hi();
      }
      y = rng->UniformDouble(lo, hi);
    } else {
      y = rng->UniformDouble(domain.lo(), domain.hi());
    }
    out[row] = Value::Real(y);
    prev_x = x;
    prev_y = y;
    has_prev = true;
  }
  return out;
}

// --- Encoded (code-path) generators --------------------------------------

namespace {

// Per-thread scratch for the encoded generators. The Monte-Carlo loop
// calls these thousands of times; reusing the arenas makes every call
// after the first allocation-free (same idiom as the PliCache scratch).
struct EncodedScratch {
  std::vector<uint32_t> code_rank;    // per-code rank table (kCodes LHS)
  std::vector<double> sorted_reals;   // sorted distinct doubles (kReals LHS)
  std::vector<uint32_t> ranks;        // per-row rank of one LHS column
  std::vector<uint32_t> ids;          // folded composite-LHS group ids
  std::unordered_map<uint64_t, uint32_t> remap;
  std::vector<char> flags;            // lazily-sampled / lazily-filled bits
  std::vector<uint32_t> code_map;     // FD group -> code mapping
  std::vector<double> real_map;       // FD group -> double mapping
  std::vector<uint32_t> code_pool;    // ND flat pools (codes)
  std::vector<double> real_pool;      // ND flat pools (doubles)
  std::vector<size_t> idx;            // order-statistic index draws
  std::vector<uint32_t> target_codes; // OD/OFD rank -> code targets
  std::vector<double> target_reals;   // OD/OFD rank -> double targets
  std::vector<size_t> order;          // DD row order
};

EncodedScratch& Scratch() {
  thread_local EncodedScratch scratch;
  return scratch;
}

// Rank-compresses one already-generated batch column into s.ranks:
// ranks[r] is the rank of row r's value among the column's distinct
// values, ascending. Codes are assigned in ascending Value order, so
// ranking codes (or raw doubles) reproduces EncodeByRank(SortedDistinct)
// on the decoded column exactly. Returns the distinct count.
uint32_t RankEncodedColumn(const EncodedBatch& batch, size_t col,
                           size_t num_rows, EncodedScratch& s) {
  s.ranks.resize(num_rows);
  if (batch.kind(col) == EncodedBatch::ColumnKind::kCodes) {
    return batch.WithCodes(col, [&](const auto* codes) -> uint32_t {
      uint32_t max_code = 0;
      for (size_t r = 0; r < num_rows; ++r) {
        max_code = std::max<uint32_t>(max_code, codes[r]);
      }
      s.code_rank.assign(static_cast<size_t>(max_code) + 1, 0);
      for (size_t r = 0; r < num_rows; ++r) s.code_rank[codes[r]] = 1;
      uint32_t running = 0;
      for (uint32_t c = 0; c <= max_code; ++c) {
        uint32_t present = s.code_rank[c];
        s.code_rank[c] = running;
        running += present;
      }
      for (size_t r = 0; r < num_rows; ++r) {
        s.ranks[r] = s.code_rank[codes[r]];
      }
      return running;
    });
  }
  const std::vector<double>& reals = batch.reals(col);
  s.sorted_reals.assign(reals.begin(), reals.begin() + num_rows);
  std::sort(s.sorted_reals.begin(), s.sorted_reals.end());
  s.sorted_reals.erase(
      std::unique(s.sorted_reals.begin(), s.sorted_reals.end()),
      s.sorted_reals.end());
  for (size_t r = 0; r < num_rows; ++r) {
    s.ranks[r] = static_cast<uint32_t>(
        std::lower_bound(s.sorted_reals.begin(), s.sorted_reals.end(),
                         reals[r]) -
        s.sorted_reals.begin());
  }
  return static_cast<uint32_t>(s.sorted_reals.size());
}

// FoldLhsGroups on batch columns: same fold, same first-occurrence group
// numbering, so lazy sampling keyed by id hits the RNG in identical
// row-scan order. Result lands in s.ids; returns the group count.
uint32_t FoldLhsGroupsEncoded(const EncodedBatch& batch,
                              const std::vector<size_t>& lhs_columns,
                              size_t num_rows, EncodedScratch& s) {
  s.ids.assign(num_rows, 0);
  uint32_t num_groups = 1;
  for (size_t col : lhs_columns) {
    uint32_t distinct = RankEncodedColumn(batch, col, num_rows, s);
    s.remap.clear();
    s.remap.reserve(num_rows);
    for (size_t r = 0; r < num_rows; ++r) {
      uint64_t key = static_cast<uint64_t>(s.ids[r]) * distinct +
                     s.ranks[r];
      auto it = s.remap.emplace(key, static_cast<uint32_t>(s.remap.size()))
                    .first;
      s.ids[r] = it->second;
    }
    num_groups = static_cast<uint32_t>(s.remap.size());
  }
  return num_groups;
}

// SortedSamples into s.target_codes / s.target_reals.
void SortedSamplesEncoded(const Domain& domain, size_t count, Rng* rng,
                          EncodedScratch& s) {
  if (domain.is_continuous()) {
    s.target_reals.resize(count);
    for (double& x : s.target_reals) {
      x = rng->UniformDouble(domain.lo(), domain.hi());
    }
    std::sort(s.target_reals.begin(), s.target_reals.end());
    return;
  }
  const size_t k = domain.values().size();
  METALEAK_DCHECK(k > 0);
  s.idx.resize(count);
  for (size_t& i : s.idx) i = rng->UniformIndex(k);
  std::sort(s.idx.begin(), s.idx.end());
  s.target_codes.resize(count);
  for (size_t i = 0; i < count; ++i) {
    s.target_codes[i] = static_cast<uint32_t>(s.idx[i]) + 1;
  }
}

// StrictSortedSamples into s.target_codes / s.target_reals.
void StrictSortedSamplesEncoded(const Domain& domain, size_t count,
                                Rng* rng, EncodedScratch& s) {
  if (domain.is_continuous()) {
    SortedSamplesEncoded(domain, count, rng, s);
    return;
  }
  const size_t k = domain.values().size();
  if (k >= count) {
    std::vector<size_t> picked = rng->SampleWithoutReplacement(k, count);
    std::sort(picked.begin(), picked.end());
    s.target_codes.resize(count);
    for (size_t i = 0; i < count; ++i) {
      s.target_codes[i] = static_cast<uint32_t>(picked[i]) + 1;
    }
    return;
  }
  SortedSamplesEncoded(domain, count, rng, s);
}

void GenerateOrderedColumnEncoded(size_t lhs_column, const Domain& domain,
                                  size_t num_rows, bool strict, Rng* rng,
                                  EncodedBatch* batch, size_t target) {
  METALEAK_DCHECK(rng != nullptr);
  EncodedScratch& s = Scratch();
  uint32_t distinct = RankEncodedColumn(*batch, lhs_column, num_rows, s);
  if (strict) {
    StrictSortedSamplesEncoded(domain, distinct, rng, s);
  } else {
    SortedSamplesEncoded(domain, distinct, rng, s);
  }
  if (batch->kind(target) == EncodedBatch::ColumnKind::kCodes) {
    batch->WithMutableCodes(target, [&](auto* out) {
      for (size_t r = 0; r < num_rows; ++r) {
        out[r] = s.target_codes[s.ranks[r]];
      }
    });
  } else {
    std::vector<double>& out = batch->reals(target);
    for (size_t r = 0; r < num_rows; ++r) {
      out[r] = s.target_reals[s.ranks[r]];
    }
  }
}

}  // namespace

void GenerateRootColumnEncoded(const Domain& domain, size_t num_rows,
                               Rng* rng, EncodedBatch* batch,
                               size_t target) {
  METALEAK_DCHECK(rng != nullptr);
  if (batch->kind(target) == EncodedBatch::ColumnKind::kCodes) {
    METALEAK_DCHECK(domain.is_categorical());
    const size_t k = domain.values().size();
    batch->WithMutableCodes(target, [&](auto* out) {
      for (size_t r = 0; r < num_rows; ++r) {
        out[r] = static_cast<uint32_t>(rng->UniformIndex(k)) + 1;
      }
    });
  } else {
    std::vector<double>& out = batch->reals(target);
    for (size_t r = 0; r < num_rows; ++r) {
      out[r] = rng->UniformDouble(domain.lo(), domain.hi());
    }
  }
}

void GenerateFdColumnEncoded(const std::vector<size_t>& lhs_columns,
                             const Domain& domain, size_t num_rows,
                             Rng* rng, EncodedBatch* batch,
                             size_t target) {
  METALEAK_DCHECK(rng != nullptr);
  EncodedScratch& s = Scratch();
  uint32_t num_groups = FoldLhsGroupsEncoded(*batch, lhs_columns, num_rows,
                                             s);
  s.flags.assign(num_groups, 0);
  if (batch->kind(target) == EncodedBatch::ColumnKind::kCodes) {
    const size_t k = domain.values().size();
    s.code_map.resize(num_groups);
    batch->WithMutableCodes(target, [&](auto* out) {
      for (size_t r = 0; r < num_rows; ++r) {
        uint32_t id = s.ids[r];
        if (!s.flags[id]) {
          s.flags[id] = 1;
          s.code_map[id] = static_cast<uint32_t>(rng->UniformIndex(k)) + 1;
        }
        out[r] = s.code_map[id];
      }
    });
  } else {
    s.real_map.resize(num_groups);
    std::vector<double>& out = batch->reals(target);
    for (size_t r = 0; r < num_rows; ++r) {
      uint32_t id = s.ids[r];
      if (!s.flags[id]) {
        s.flags[id] = 1;
        s.real_map[id] = rng->UniformDouble(domain.lo(), domain.hi());
      }
      out[r] = s.real_map[id];
    }
  }
}

void GenerateAfdColumnEncoded(const std::vector<size_t>& lhs_columns,
                              const Domain& domain, size_t num_rows,
                              double g3_error, Rng* rng,
                              EncodedBatch* batch, size_t target) {
  GenerateFdColumnEncoded(lhs_columns, domain, num_rows, rng, batch,
                          target);
  const double p = std::clamp(g3_error, 0.0, 1.0);
  if (batch->kind(target) == EncodedBatch::ColumnKind::kCodes) {
    const size_t k = domain.values().size();
    batch->WithMutableCodes(target, [&](auto* out) {
      for (size_t r = 0; r < num_rows; ++r) {
        if (rng->Bernoulli(p)) {
          out[r] = static_cast<uint32_t>(rng->UniformIndex(k)) + 1;
        }
      }
    });
  } else {
    std::vector<double>& out = batch->reals(target);
    for (size_t r = 0; r < num_rows; ++r) {
      if (rng->Bernoulli(p)) {
        out[r] = rng->UniformDouble(domain.lo(), domain.hi());
      }
    }
  }
}

void GenerateNdColumnEncoded(size_t lhs_column, const Domain& domain,
                             size_t num_rows, size_t max_fanout, Rng* rng,
                             EncodedBatch* batch, size_t target) {
  METALEAK_DCHECK(rng != nullptr);
  EncodedScratch& s = Scratch();
  const size_t k = std::max<size_t>(1, max_fanout);
  uint32_t distinct = RankEncodedColumn(*batch, lhs_column, num_rows, s);
  const bool categorical = domain.is_categorical();
  const size_t take =
      categorical ? std::min(k, domain.values().size()) : k;
  s.flags.assign(distinct, 0);
  if (categorical) {
    const size_t domain_size = domain.values().size();
    s.code_pool.assign(static_cast<size_t>(distinct) * take, 0);
    batch->WithMutableCodes(target, [&](auto* out) {
      for (size_t r = 0; r < num_rows; ++r) {
        const uint32_t rank = s.ranks[r];
        uint32_t* pool =
            s.code_pool.data() + static_cast<size_t>(rank) * take;
        if (!s.flags[rank]) {
          s.flags[rank] = 1;
          size_t j = 0;
          for (size_t i : rng->SampleWithoutReplacement(domain_size, take)) {
            pool[j++] = static_cast<uint32_t>(i) + 1;
          }
        }
        out[r] = pool[rng->UniformIndex(take)];
      }
    });
  } else {
    s.real_pool.assign(static_cast<size_t>(distinct) * take, 0.0);
    std::vector<double>& out = batch->reals(target);
    for (size_t r = 0; r < num_rows; ++r) {
      const uint32_t rank = s.ranks[r];
      double* pool = s.real_pool.data() + static_cast<size_t>(rank) * take;
      if (!s.flags[rank]) {
        s.flags[rank] = 1;
        for (size_t i = 0; i < take; ++i) {
          pool[i] = rng->UniformDouble(domain.lo(), domain.hi());
        }
      }
      out[r] = pool[rng->UniformIndex(take)];
    }
  }
}

void GenerateOdColumnEncoded(size_t lhs_column, const Domain& domain,
                             size_t num_rows, Rng* rng, EncodedBatch* batch,
                             size_t target) {
  GenerateOrderedColumnEncoded(lhs_column, domain, num_rows,
                               /*strict=*/false, rng, batch, target);
}

void GenerateOfdColumnEncoded(size_t lhs_column, const Domain& domain,
                              size_t num_rows, Rng* rng,
                              EncodedBatch* batch, size_t target) {
  GenerateOrderedColumnEncoded(lhs_column, domain, num_rows,
                               /*strict=*/true, rng, batch, target);
}

Status GenerateDdColumnEncoded(size_t lhs_column, const Domain& domain,
                               const std::vector<double>& lhs_code_numeric,
                               size_t num_rows, double lhs_epsilon,
                               double rhs_delta, Rng* rng,
                               EncodedBatch* batch, size_t target) {
  METALEAK_DCHECK(rng != nullptr);
  if (domain.is_categorical()) {
    return Status::TypeError(
        "differential generation requires a continuous target domain");
  }
  EncodedScratch& s = Scratch();
  s.order.resize(num_rows);
  for (size_t i = 0; i < num_rows; ++i) s.order[i] = i;
  const bool lhs_codes =
      batch->kind(lhs_column) == EncodedBatch::ColumnKind::kCodes;
  // Codes are assigned in ascending Value order, so sorting by code (or
  // by raw double) makes every comparator decision identical to sorting
  // the decoded Values — same permutation, same Markov chain.
  if (lhs_codes) {
    batch->WithCodes(lhs_column, [&](const auto* codes) {
      std::sort(s.order.begin(), s.order.end(),
                [&](size_t a, size_t b) { return codes[a] < codes[b]; });
    });
  } else {
    const std::vector<double>& xs = batch->reals(lhs_column);
    std::sort(s.order.begin(), s.order.end(),
              [&](size_t a, size_t b) { return xs[a] < xs[b]; });
  }

  const CodeColumnView lhs_view =
      lhs_codes ? batch->code_view(lhs_column) : CodeColumnView{};
  std::vector<double>& out = batch->reals(target);
  double prev_x = 0.0;
  double prev_y = 0.0;
  bool has_prev = false;
  for (size_t pos = 0; pos < num_rows; ++pos) {
    size_t row = s.order[pos];
    double x;
    if (lhs_codes) {
      x = lhs_code_numeric[lhs_view.at(row)];
    } else {
      x = batch->reals(lhs_column)[row];
    }
    double y;
    if (has_prev && std::abs(x - prev_x) <= lhs_epsilon) {
      double lo = std::max(domain.lo(), prev_y - rhs_delta);
      double hi = std::min(domain.hi(), prev_y + rhs_delta);
      if (lo > hi) {
        lo = domain.lo();
        hi = domain.hi();
      }
      y = rng->UniformDouble(lo, hi);
    } else {
      y = rng->UniformDouble(domain.lo(), domain.hi());
    }
    out[row] = y;
    prev_x = x;
    prev_y = y;
    has_prev = true;
  }
  return Status::OK();
}

}  // namespace metaleak
