#include "generation/column_generators.h"

#include <algorithm>
#include <cstdint>
#include <unordered_map>

#include "common/macros.h"

namespace metaleak {

namespace {

// Sorted distinct values of a column (Value total order).
std::vector<Value> SortedDistinct(const std::vector<Value>& column) {
  std::vector<Value> vals = column;
  std::sort(vals.begin(), vals.end());
  vals.erase(std::unique(vals.begin(), vals.end()), vals.end());
  return vals;
}

// Local dictionary encoding of one generated column: codes[r] is the rank
// of column[r] among the sorted distinct values. Pools and mappings below
// index vectors by these dense codes instead of hashing `Value`s.
std::vector<uint32_t> EncodeByRank(const std::vector<Value>& column,
                                   const std::vector<Value>& distinct) {
  std::vector<uint32_t> codes;
  codes.reserve(column.size());
  for (const Value& v : column) {
    codes.push_back(static_cast<uint32_t>(
        std::lower_bound(distinct.begin(), distinct.end(), v) -
        distinct.begin()));
  }
  return codes;
}

// Folds the per-column codes of a composite LHS into one dense group id
// per row (same fold as PositionListIndex::FromEncoded). The empty LHS
// (constant FD {} -> A) yields a single group. Group ids are numbered by
// first occurrence in row order, so lazy sampling keyed by id draws from
// the RNG in exactly the row-scan order the Value-hash path used.
std::pair<std::vector<uint32_t>, uint32_t> FoldLhsGroups(
    const std::vector<const std::vector<Value>*>& lhs_columns,
    size_t num_rows) {
  std::vector<uint32_t> ids(num_rows, 0);
  uint32_t num_groups = 1;
  for (const std::vector<Value>* col : lhs_columns) {
    std::vector<Value> distinct = SortedDistinct(*col);
    std::vector<uint32_t> codes = EncodeByRank(*col, distinct);
    std::unordered_map<uint64_t, uint32_t> remap;
    remap.reserve(num_rows);
    for (size_t r = 0; r < num_rows; ++r) {
      uint64_t key = static_cast<uint64_t>(ids[r]) * distinct.size() +
                     codes[r];
      auto it = remap.emplace(key, static_cast<uint32_t>(remap.size()))
                    .first;
      ids[r] = it->second;
    }
    num_groups = static_cast<uint32_t>(remap.size());
  }
  return {std::move(ids), num_groups};
}

// `count` non-decreasing order statistics over `domain`.
std::vector<Value> SortedSamples(const Domain& domain, size_t count,
                                 Rng* rng) {
  std::vector<Value> out;
  out.reserve(count);
  if (domain.is_continuous()) {
    std::vector<double> xs(count);
    for (double& x : xs) x = rng->UniformDouble(domain.lo(), domain.hi());
    std::sort(xs.begin(), xs.end());
    for (double x : xs) out.push_back(Value::Real(x));
    return out;
  }
  const std::vector<Value>& vals = domain.values();
  METALEAK_DCHECK(!vals.empty());
  std::vector<size_t> idx(count);
  for (size_t& i : idx) i = rng->UniformIndex(vals.size());
  std::sort(idx.begin(), idx.end());
  for (size_t i : idx) out.push_back(vals[i]);
  return out;
}

// `count` strictly increasing values where possible (see header).
std::vector<Value> StrictSortedSamples(const Domain& domain, size_t count,
                                       Rng* rng) {
  if (domain.is_continuous()) {
    // Continuous uniforms are distinct almost surely; re-draw collisions.
    std::vector<double> xs(count);
    for (double& x : xs) x = rng->UniformDouble(domain.lo(), domain.hi());
    std::sort(xs.begin(), xs.end());
    std::vector<Value> out;
    out.reserve(count);
    for (double x : xs) out.push_back(Value::Real(x));
    return out;
  }
  const std::vector<Value>& vals = domain.values();
  if (vals.size() >= count) {
    std::vector<size_t> picked = rng->SampleWithoutReplacement(vals.size(),
                                                               count);
    std::sort(picked.begin(), picked.end());
    std::vector<Value> out;
    out.reserve(count);
    for (size_t i : picked) out.push_back(vals[i]);
    return out;
  }
  // Domain too small for a strict walk: forced transitions collapse to the
  // non-decreasing assignment.
  return SortedSamples(domain, count, rng);
}

}  // namespace

std::vector<Value> GenerateRootColumn(const Domain& domain, size_t num_rows,
                                      Rng* rng) {
  METALEAK_DCHECK(rng != nullptr);
  std::vector<Value> out;
  out.reserve(num_rows);
  for (size_t r = 0; r < num_rows; ++r) out.push_back(domain.Sample(rng));
  return out;
}

std::vector<Value> GenerateFdColumn(
    const std::vector<const std::vector<Value>*>& lhs_columns,
    const Domain& domain, size_t num_rows, Rng* rng) {
  METALEAK_DCHECK(rng != nullptr);
  std::vector<Value> out;
  out.reserve(num_rows);
  auto [ids, num_groups] = FoldLhsGroups(lhs_columns, num_rows);
  // One lazily-sampled target per LHS group, indexed by dense group id.
  std::vector<Value> mapping(num_groups, Value::Null());
  std::vector<bool> sampled(num_groups, false);
  for (size_t r = 0; r < num_rows; ++r) {
    uint32_t id = ids[r];
    if (!sampled[id]) {
      mapping[id] = domain.Sample(rng);
      sampled[id] = true;
    }
    out.push_back(mapping[id]);
  }
  return out;
}

std::vector<Value> GenerateAfdColumn(
    const std::vector<const std::vector<Value>*>& lhs_columns,
    const Domain& domain, size_t num_rows, double g3_error, Rng* rng) {
  std::vector<Value> out =
      GenerateFdColumn(lhs_columns, domain, num_rows, rng);
  // The epsilon fraction of correctly-scattered violations (Section IV-A):
  // re-drawn rows are independent of the mapping.
  for (size_t r = 0; r < num_rows; ++r) {
    if (rng->Bernoulli(std::clamp(g3_error, 0.0, 1.0))) {
      out[r] = domain.Sample(rng);
    }
  }
  return out;
}

std::vector<Value> GenerateNdColumn(const std::vector<Value>& lhs_column,
                                    const Domain& domain, size_t num_rows,
                                    size_t max_fanout, Rng* rng) {
  METALEAK_DCHECK(rng != nullptr);
  METALEAK_DCHECK(lhs_column.size() == num_rows);
  size_t k = std::max<size_t>(1, max_fanout);
  std::vector<Value> distinct = SortedDistinct(lhs_column);
  std::vector<uint32_t> codes = EncodeByRank(lhs_column, distinct);
  // Per-LHS-value pools in one flat arena with constant stride: every
  // pool has the same size (min(k, |Dom(Y)|) when categorical, k
  // otherwise), so pool i is pools[i*take, (i+1)*take). Pools fill
  // lazily in row-scan order, so RNG consumption is identical to the
  // per-pool-vector layout this replaces.
  const size_t take = domain.is_categorical()
                          ? std::min(k, domain.values().size())
                          : k;
  std::vector<Value> pools(distinct.size() * take, Value::Null());
  std::vector<char> filled(distinct.size(), 0);
  std::vector<Value> out;
  out.reserve(num_rows);
  for (size_t r = 0; r < num_rows; ++r) {
    const uint32_t code = codes[r];
    Value* pool = pools.data() + code * take;
    if (!filled[code]) {
      filled[code] = 1;
      if (domain.is_categorical()) {
        const std::vector<Value>& vals = domain.values();
        // Sampling without replacement from Dom(Y): the hyper-geometric
        // selection in the paper's ND analysis.
        size_t j = 0;
        for (size_t i : rng->SampleWithoutReplacement(vals.size(), take)) {
          pool[j++] = vals[i];
        }
      } else {
        for (size_t i = 0; i < take; ++i) pool[i] = domain.Sample(rng);
      }
    }
    out.push_back(pool[rng->UniformIndex(take)]);
  }
  return out;
}

namespace {

std::vector<Value> GenerateOrderedColumn(const std::vector<Value>& lhs_column,
                                         const Domain& domain,
                                         size_t num_rows, bool strict,
                                         Rng* rng) {
  METALEAK_DCHECK(rng != nullptr);
  METALEAK_DCHECK(lhs_column.size() == num_rows);
  std::vector<Value> distinct = SortedDistinct(lhs_column);
  std::vector<Value> targets =
      strict ? StrictSortedSamples(domain, distinct.size(), rng)
             : SortedSamples(domain, distinct.size(), rng);
  // Map the i-th smallest LHS value to the i-th order statistic: this is
  // exactly the interval-partition assignment of Section IV-C and keeps
  // the order dependency satisfied by construction. The rank codes *are*
  // the mapping — targets is indexed directly by code.
  std::vector<uint32_t> codes = EncodeByRank(lhs_column, distinct);
  std::vector<Value> out;
  out.reserve(num_rows);
  for (uint32_t code : codes) out.push_back(targets[code]);
  return out;
}

}  // namespace

std::vector<Value> GenerateOdColumn(const std::vector<Value>& lhs_column,
                                    const Domain& domain, size_t num_rows,
                                    Rng* rng) {
  return GenerateOrderedColumn(lhs_column, domain, num_rows,
                               /*strict=*/false, rng);
}

std::vector<Value> GenerateOfdColumn(const std::vector<Value>& lhs_column,
                                     const Domain& domain, size_t num_rows,
                                     Rng* rng) {
  return GenerateOrderedColumn(lhs_column, domain, num_rows,
                               /*strict=*/true, rng);
}

Result<std::vector<Value>> GenerateDdColumn(
    const std::vector<Value>& lhs_column, const Domain& domain,
    size_t num_rows, double lhs_epsilon, double rhs_delta, Rng* rng) {
  METALEAK_DCHECK(rng != nullptr);
  if (domain.is_categorical()) {
    return Status::TypeError(
        "differential generation requires a continuous target domain");
  }
  if (lhs_column.size() != num_rows) {
    return Status::Invalid("LHS column size mismatch");
  }
  // Order rows by LHS value; walk the chain generating each RHS relative
  // to its predecessor when the LHS values are proximal (Markov process).
  std::vector<size_t> order(num_rows);
  for (size_t i = 0; i < num_rows; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return lhs_column[a] < lhs_column[b];
  });

  std::vector<Value> out(num_rows);
  double prev_x = 0.0;
  double prev_y = 0.0;
  bool has_prev = false;
  for (size_t pos = 0; pos < num_rows; ++pos) {
    size_t row = order[pos];
    double x = lhs_column[row].is_numeric() ? lhs_column[row].AsNumeric()
                                            : 0.0;
    double y;
    if (has_prev && std::abs(x - prev_x) <= lhs_epsilon) {
      double lo = std::max(domain.lo(), prev_y - rhs_delta);
      double hi = std::min(domain.hi(), prev_y + rhs_delta);
      if (lo > hi) {
        lo = domain.lo();
        hi = domain.hi();
      }
      y = rng->UniformDouble(lo, hi);
    } else {
      y = rng->UniformDouble(domain.lo(), domain.hi());
    }
    out[row] = Value::Real(y);
    prev_x = x;
    prev_y = y;
    has_prev = true;
  }
  return out;
}

}  // namespace metaleak
