#include "generation/generation_engine.h"

#include "common/macros.h"
#include "generation/column_generators.h"

namespace metaleak {

Result<GenerationOutcome> GenerateSynthetic(
    const MetadataPackage& metadata, size_t num_rows, Rng* rng,
    const GenerationOptions& options) {
  if (rng == nullptr) {
    return Status::Invalid("rng must not be null");
  }
  METALEAK_ASSIGN_OR_RETURN(std::vector<Domain> domains,
                            metadata.RequireDomains());
  const size_t m = metadata.schema.num_attributes();

  DependencySet usable;
  if (!options.ignore_dependencies) {
    usable = metadata.dependencies;
  }
  DependencyGraph plan =
      DependencyGraph::Build(m, usable, options.allowed_kinds);

  std::vector<std::vector<Value>> columns(m);
  for (const GenerationStep& step : plan.steps()) {
    const size_t target = step.attribute;
    const Domain& domain = domains[target];
    const bool has_distribution =
        options.use_distributions &&
        target < metadata.distributions.size() &&
        metadata.distributions[target].has_value();
    if (!step.via.has_value()) {
      if (has_distribution) {
        // Distribution-disclosure extension: sample the real marginal.
        std::vector<Value> col;
        col.reserve(num_rows);
        for (size_t r = 0; r < num_rows; ++r) {
          col.push_back(metadata.distributions[target]->Sample(rng));
        }
        columns[target] = std::move(col);
      } else {
        columns[target] = GenerateRootColumn(domain, num_rows, rng);
      }
      continue;
    }
    const Dependency& dep = *step.via;
    std::vector<const std::vector<Value>*> lhs_columns;
    for (size_t i : dep.lhs.ToIndices()) {
      METALEAK_DCHECK(!columns[i].empty() || num_rows == 0);
      lhs_columns.push_back(&columns[i]);
    }
    switch (dep.kind) {
      case DependencyKind::kFunctional:
        columns[target] =
            GenerateFdColumn(lhs_columns, domain, num_rows, rng);
        break;
      case DependencyKind::kApproximateFunctional:
        columns[target] = GenerateAfdColumn(lhs_columns, domain, num_rows,
                                            dep.g3_error, rng);
        break;
      case DependencyKind::kNumerical:
        columns[target] = GenerateNdColumn(*lhs_columns[0], domain,
                                           num_rows, dep.max_fanout, rng);
        break;
      case DependencyKind::kOrder:
        columns[target] =
            GenerateOdColumn(*lhs_columns[0], domain, num_rows, rng);
        break;
      case DependencyKind::kOrderedFunctional:
        columns[target] =
            GenerateOfdColumn(*lhs_columns[0], domain, num_rows, rng);
        break;
      case DependencyKind::kDifferential: {
        Result<std::vector<Value>> col =
            GenerateDdColumn(*lhs_columns[0], domain, num_rows,
                             dep.lhs_epsilon, dep.rhs_delta, rng);
        if (!col.ok()) {
          // A DD onto a categorical RHS cannot drive generation; fall
          // back to the domain draw rather than failing the whole run.
          columns[target] = GenerateRootColumn(domain, num_rows, rng);
        } else {
          columns[target] = std::move(col).ValueUnsafe();
        }
        break;
      }
    }
  }

  // The synthetic schema mirrors the disclosed one, but generated values
  // are domain samples: continuous attributes become doubles regardless of
  // the source physical type. Relax the physical types accordingly.
  std::vector<Attribute> attrs = metadata.schema.attributes();
  for (size_t c = 0; c < m; ++c) {
    bool has_double = false;
    bool has_int = false;
    bool has_string = false;
    for (const Value& v : columns[c]) {
      has_double |= v.is_double();
      has_int |= v.is_int();
      has_string |= v.is_string();
    }
    if (has_string) {
      attrs[c].type = DataType::kString;
    } else if (has_double && !has_int) {
      attrs[c].type = DataType::kDouble;
    } else if (has_int && !has_double) {
      attrs[c].type = DataType::kInt64;
    } else if (has_double && has_int) {
      // Mixed numeric draws (e.g. continuous domain over an int column):
      // coerce everything to double.
      for (Value& v : columns[c]) {
        if (v.is_int()) v = Value::Real(static_cast<double>(v.AsInt()));
      }
      attrs[c].type = DataType::kDouble;
    }
  }

  METALEAK_ASSIGN_OR_RETURN(
      Relation rel,
      Relation::Make(Schema(std::move(attrs)), std::move(columns)));
  return GenerationOutcome{std::move(rel), std::move(plan)};
}

}  // namespace metaleak
