#include "generation/generation_engine.h"

#include <utility>

#include "common/macros.h"
#include "generation/column_generators.h"

namespace metaleak {

namespace {

// Maps one frequency-table value to its domain code: the unique domain
// entry that equals it structurally. Returns 0 (never a valid non-null
// frequency code unless the domain holds NULL itself at another slot)
// via the `ok` flag when the value maps to zero or several entries.
bool MapDistValueToCode(const Value& v, const std::vector<Value>& domain,
                        uint32_t* code) {
  bool found = false;
  for (size_t i = 0; i < domain.size(); ++i) {
    if (domain[i] == v) {
      if (found) return false;  // ambiguous
      found = true;
      *code = static_cast<uint32_t>(i) + 1;
    }
  }
  return found;
}

}  // namespace

uint32_t GenerationContext::DistSampler::SampleCode(Rng* rng) const {
  // Mirrors ValueDistribution::Sample (categorical branch) draw-for-draw.
  size_t target = rng->UniformIndex(total);
  size_t acc = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    acc += counts[i];
    if (target < acc) return codes[i];
  }
  return codes.back();
}

double GenerationContext::DistSampler::SampleReal(Rng* rng) const {
  // Mirrors ValueDistribution::Sample (continuous branch) draw-for-draw.
  size_t target = rng->UniformIndex(total);
  size_t acc = 0;
  size_t bucket = counts.size() - 1;
  for (size_t i = 0; i < counts.size(); ++i) {
    acc += counts[i];
    if (target < acc) {
      bucket = i;
      break;
    }
  }
  double width = (hi - lo) / static_cast<double>(counts.size());
  double bucket_lo = lo + width * static_cast<double>(bucket);
  return rng->UniformDouble(bucket_lo, bucket_lo + width);
}

Result<GenerationContext> GenerationContext::Build(
    const MetadataPackage& metadata, const GenerationOptions& options) {
  GenerationContext ctx;
  METALEAK_ASSIGN_OR_RETURN(ctx.domains_, metadata.RequireDomains());
  ctx.schema_ = metadata.schema;
  const size_t m = metadata.schema.num_attributes();

  DependencySet usable;
  if (!options.ignore_dependencies) {
    usable = metadata.dependencies;
  }
  ctx.plan_ = DependencyGraph::Build(m, usable, options.allowed_kinds);
  ctx.kinds_ = ColumnKindsForDomains(ctx.domains_);
  ctx.widths_ = CodeWidthsForDomains(ctx.domains_);

  ctx.code_numeric_.resize(m);
  for (size_t c = 0; c < m; ++c) {
    if (ctx.kinds_[c] != EncodedBatch::ColumnKind::kCodes) continue;
    const std::vector<Value>& vals = ctx.domains_[c].values();
    std::vector<double>& table = ctx.code_numeric_[c];
    table.assign(vals.size() + 1, 0.0);
    for (size_t i = 0; i < vals.size(); ++i) {
      if (vals[i].is_numeric()) table[i + 1] = vals[i].AsNumeric();
    }
  }

  ctx.dist_.resize(m);
  ctx.step_lhs_.reserve(ctx.plan_->steps().size());
  for (const GenerationStep& step : ctx.plan_->steps()) {
    if (step.via.has_value()) {
      ctx.step_lhs_.push_back(step.via->lhs.ToIndices());
      continue;
    }
    ctx.step_lhs_.emplace_back();
    const size_t target = step.attribute;
    const bool has_distribution =
        options.use_distributions &&
        target < metadata.distributions.size() &&
        metadata.distributions[target].has_value();
    if (!has_distribution) continue;
    const ValueDistribution& dist = *metadata.distributions[target];
    DistSampler sampler;
    if (ctx.kinds_[target] == EncodedBatch::ColumnKind::kCodes) {
      if (!dist.is_categorical()) {
        ctx.encodable_ = false;
        ctx.fallback_reason_ =
            "continuous distribution over a categorical domain";
        continue;
      }
      const FrequencyTable& freq = dist.frequency_table();
      sampler.categorical = true;
      sampler.counts = freq.counts;
      sampler.total = freq.total();
      sampler.codes.reserve(freq.values.size());
      bool supported = true;
      for (const Value& v : freq.values) {
        uint32_t code = 0;
        if (!MapDistValueToCode(v, ctx.domains_[target].values(), &code)) {
          supported = false;
          break;
        }
        sampler.codes.push_back(code);
      }
      if (!supported) {
        ctx.encodable_ = false;
        ctx.fallback_reason_ =
            "distribution support does not map into the domain";
        continue;
      }
    } else {
      if (dist.is_categorical()) {
        ctx.encodable_ = false;
        ctx.fallback_reason_ =
            "categorical distribution over a continuous domain";
        continue;
      }
      const Histogram& hist = dist.histogram();
      sampler.categorical = false;
      sampler.counts = hist.counts;
      sampler.total = hist.total();
      sampler.lo = hist.lo;
      sampler.hi = hist.hi;
    }
    ctx.dist_[target] = std::move(sampler);
  }
  return ctx;
}

Status GenerateEncoded(const GenerationContext& ctx, size_t num_rows,
                       Rng* rng, EncodedBatch* batch) {
  if (rng == nullptr) {
    return Status::Invalid("rng must not be null");
  }
  if (!ctx.encodable()) {
    return Status::Invalid("package is not encodable: " +
                           ctx.fallback_reason());
  }
  batch->Configure(ctx.kinds_, ctx.widths_);
  batch->ResetRows(num_rows);

  const std::vector<GenerationStep>& steps = ctx.plan_->steps();
  for (size_t s = 0; s < steps.size(); ++s) {
    const GenerationStep& step = steps[s];
    const size_t target = step.attribute;
    const Domain& domain = ctx.domains_[target];
    if (!step.via.has_value()) {
      if (ctx.dist_[target].has_value()) {
        const GenerationContext::DistSampler& sampler = *ctx.dist_[target];
        if (sampler.categorical) {
          batch->WithMutableCodes(target, [&](auto* out) {
            for (size_t r = 0; r < num_rows; ++r) {
              out[r] = sampler.SampleCode(rng);
            }
          });
        } else {
          std::vector<double>& out = batch->reals(target);
          for (size_t r = 0; r < num_rows; ++r) {
            out[r] = sampler.SampleReal(rng);
          }
        }
      } else {
        GenerateRootColumnEncoded(domain, num_rows, rng, batch, target);
      }
      continue;
    }
    const Dependency& dep = *step.via;
    const std::vector<size_t>& lhs = ctx.step_lhs_[s];
    switch (dep.kind) {
      case DependencyKind::kFunctional:
        GenerateFdColumnEncoded(lhs, domain, num_rows, rng, batch, target);
        break;
      case DependencyKind::kApproximateFunctional:
        GenerateAfdColumnEncoded(lhs, domain, num_rows, dep.g3_error, rng,
                                 batch, target);
        break;
      case DependencyKind::kNumerical:
        GenerateNdColumnEncoded(lhs[0], domain, num_rows, dep.max_fanout,
                                rng, batch, target);
        break;
      case DependencyKind::kOrder:
        GenerateOdColumnEncoded(lhs[0], domain, num_rows, rng, batch,
                                target);
        break;
      case DependencyKind::kOrderedFunctional:
        GenerateOfdColumnEncoded(lhs[0], domain, num_rows, rng, batch,
                                 target);
        break;
      case DependencyKind::kDifferential: {
        Status st = GenerateDdColumnEncoded(
            lhs[0], domain, ctx.code_numeric_[lhs[0]], num_rows,
            dep.lhs_epsilon, dep.rhs_delta, rng, batch, target);
        if (!st.ok()) {
          // Same fallback as the value path: a DD onto a categorical RHS
          // cannot drive generation; draw from the domain instead.
          GenerateRootColumnEncoded(domain, num_rows, rng, batch, target);
        }
        break;
      }
    }
  }
  return Status::OK();
}

Result<GenerationOutcome> GenerateSynthetic(
    const MetadataPackage& metadata, size_t num_rows, Rng* rng,
    const GenerationOptions& options) {
  if (rng == nullptr) {
    return Status::Invalid("rng must not be null");
  }
  METALEAK_ASSIGN_OR_RETURN(GenerationContext ctx,
                            GenerationContext::Build(metadata, options));
  if (!ctx.encodable()) {
    return GenerateSyntheticValuePath(metadata, num_rows, rng, options);
  }
  thread_local EncodedBatch batch;
  METALEAK_RETURN_NOT_OK(GenerateEncoded(ctx, num_rows, rng, &batch));
  METALEAK_ASSIGN_OR_RETURN(
      Relation rel, MaterializeRelation(ctx.schema(), ctx.domains(), batch));
  return GenerationOutcome{std::move(rel), ctx.plan()};
}

Result<GenerationOutcome> GenerateSyntheticValuePath(
    const MetadataPackage& metadata, size_t num_rows, Rng* rng,
    const GenerationOptions& options) {
  if (rng == nullptr) {
    return Status::Invalid("rng must not be null");
  }
  METALEAK_ASSIGN_OR_RETURN(std::vector<Domain> domains,
                            metadata.RequireDomains());
  const size_t m = metadata.schema.num_attributes();

  DependencySet usable;
  if (!options.ignore_dependencies) {
    usable = metadata.dependencies;
  }
  DependencyGraph plan =
      DependencyGraph::Build(m, usable, options.allowed_kinds);

  std::vector<std::vector<Value>> columns(m);
  for (const GenerationStep& step : plan.steps()) {
    const size_t target = step.attribute;
    const Domain& domain = domains[target];
    const bool has_distribution =
        options.use_distributions &&
        target < metadata.distributions.size() &&
        metadata.distributions[target].has_value();
    if (!step.via.has_value()) {
      if (has_distribution) {
        // Distribution-disclosure extension: sample the real marginal.
        std::vector<Value> col;
        col.reserve(num_rows);
        for (size_t r = 0; r < num_rows; ++r) {
          col.push_back(metadata.distributions[target]->Sample(rng));
        }
        columns[target] = std::move(col);
      } else {
        columns[target] = GenerateRootColumn(domain, num_rows, rng);
      }
      continue;
    }
    const Dependency& dep = *step.via;
    std::vector<const std::vector<Value>*> lhs_columns;
    for (size_t i : dep.lhs.ToIndices()) {
      METALEAK_DCHECK(!columns[i].empty() || num_rows == 0);
      lhs_columns.push_back(&columns[i]);
    }
    switch (dep.kind) {
      case DependencyKind::kFunctional:
        columns[target] =
            GenerateFdColumn(lhs_columns, domain, num_rows, rng);
        break;
      case DependencyKind::kApproximateFunctional:
        columns[target] = GenerateAfdColumn(lhs_columns, domain, num_rows,
                                            dep.g3_error, rng);
        break;
      case DependencyKind::kNumerical:
        columns[target] = GenerateNdColumn(*lhs_columns[0], domain,
                                           num_rows, dep.max_fanout, rng);
        break;
      case DependencyKind::kOrder:
        columns[target] =
            GenerateOdColumn(*lhs_columns[0], domain, num_rows, rng);
        break;
      case DependencyKind::kOrderedFunctional:
        columns[target] =
            GenerateOfdColumn(*lhs_columns[0], domain, num_rows, rng);
        break;
      case DependencyKind::kDifferential: {
        Result<std::vector<Value>> col =
            GenerateDdColumn(*lhs_columns[0], domain, num_rows,
                             dep.lhs_epsilon, dep.rhs_delta, rng);
        if (!col.ok()) {
          // A DD onto a categorical RHS cannot drive generation; fall
          // back to the domain draw rather than failing the whole run.
          columns[target] = GenerateRootColumn(domain, num_rows, rng);
        } else {
          columns[target] = std::move(col).ValueUnsafe();
        }
        break;
      }
    }
  }

  // The synthetic schema mirrors the disclosed one, but generated values
  // are domain samples: continuous attributes become doubles regardless of
  // the source physical type. Relax the physical types accordingly.
  std::vector<Attribute> attrs = metadata.schema.attributes();
  for (size_t c = 0; c < m; ++c) {
    bool has_double = false;
    bool has_int = false;
    bool has_string = false;
    for (const Value& v : columns[c]) {
      has_double |= v.is_double();
      has_int |= v.is_int();
      has_string |= v.is_string();
    }
    if (has_string) {
      attrs[c].type = DataType::kString;
    } else if (has_double && !has_int) {
      attrs[c].type = DataType::kDouble;
    } else if (has_int && !has_double) {
      attrs[c].type = DataType::kInt64;
    } else if (has_double && has_int) {
      // Mixed numeric draws (e.g. continuous domain over an int column):
      // coerce everything to double.
      for (Value& v : columns[c]) {
        if (v.is_int()) v = Value::Real(static_cast<double>(v.AsInt()));
      }
      attrs[c].type = DataType::kDouble;
    }
  }

  METALEAK_ASSIGN_OR_RETURN(
      Relation rel,
      Relation::Make(Schema(std::move(attrs)), std::move(columns)));
  return GenerationOutcome{std::move(rel), std::move(plan)};
}

}  // namespace metaleak
