// GenerationEngine: builds a full synthetic relation R_syn from a
// MetadataPackage, following the dependency graph (Section V).
#ifndef METALEAK_GENERATION_GENERATION_ENGINE_H_
#define METALEAK_GENERATION_GENERATION_ENGINE_H_

#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "data/relation.h"
#include "metadata/dependency_graph.h"
#include "metadata/metadata_package.h"

namespace metaleak {

struct GenerationOptions {
  /// Restrict which dependency classes may drive generation; empty = all
  /// disclosed classes. The evaluation uses singleton lists to isolate a
  /// class (Tables III/IV columns: Rand / FD / OD / ND).
  std::vector<DependencyKind> allowed_kinds;
  /// Force pure random generation even if dependencies are disclosed.
  bool ignore_dependencies = false;
  /// When the package discloses value distributions (the
  /// kWithDistributions extension level), sample root attributes from
  /// them instead of uniformly from the domain. The paper's model keeps
  /// this off by assumption; the A6 ablation turns it on.
  bool use_distributions = true;
};

/// Result of one generation run.
struct GenerationOutcome {
  Relation relation;
  /// The plan used (root vs. dependency edge per attribute).
  DependencyGraph plan;
};

/// Generates `num_rows` synthetic tuples from disclosed metadata. Requires
/// the package to disclose every attribute domain (the adversary cannot
/// sample values otherwise); returns Invalid when domains are missing.
Result<GenerationOutcome> GenerateSynthetic(const MetadataPackage& metadata,
                                            size_t num_rows, Rng* rng,
                                            const GenerationOptions& options =
                                                {});

}  // namespace metaleak

#endif  // METALEAK_GENERATION_GENERATION_ENGINE_H_
