// GenerationEngine: builds a full synthetic relation R_syn from a
// MetadataPackage, following the dependency graph (Section V).
//
// Two execution paths produce bit-identical output:
//
//   * The *value path* (GenerateSyntheticValuePath) materializes boxed
//     `Value` columns directly — the original, reference implementation.
//   * The *code path* (GenerationContext + GenerateEncoded) writes dense
//     domain codes / raw doubles into a reusable EncodedBatch arena and
//     only decodes to a Relation at the adapter boundary. Every encoded
//     generator consumes the RNG in exactly the order its value twin
//     does, so for the same seed the decoded batch equals the value-path
//     relation bit for bit (the leakage_codepath test suite enforces
//     this). Packages the code path cannot represent (e.g. a disclosed
//     distribution whose support is not in the domain) make the context
//     non-encodable and callers fall back to the value path.
//
// GenerateSynthetic keeps its historical signature and now routes
// through the code path when possible.
#ifndef METALEAK_GENERATION_GENERATION_ENGINE_H_
#define METALEAK_GENERATION_GENERATION_ENGINE_H_

#include <optional>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "data/encoded_batch.h"
#include "data/relation.h"
#include "metadata/dependency_graph.h"
#include "metadata/metadata_package.h"

namespace metaleak {

struct GenerationOptions {
  /// Restrict which dependency classes may drive generation; empty = all
  /// disclosed classes. The evaluation uses singleton lists to isolate a
  /// class (Tables III/IV columns: Rand / FD / OD / ND).
  std::vector<DependencyKind> allowed_kinds;
  /// Force pure random generation even if dependencies are disclosed.
  bool ignore_dependencies = false;
  /// When the package discloses value distributions (the
  /// kWithDistributions extension level), sample root attributes from
  /// them instead of uniformly from the domain. The paper's model keeps
  /// this off by assumption; the A6 ablation turns it on.
  bool use_distributions = true;
};

/// Result of one generation run.
struct GenerationOutcome {
  Relation relation;
  /// The plan used (root vs. dependency edge per attribute).
  DependencyGraph plan;
};

class GenerationContext;
Status GenerateEncoded(const GenerationContext& ctx, size_t num_rows,
                       Rng* rng, EncodedBatch* batch);

/// Everything the per-round generation loop needs, resolved once per
/// (metadata, options) pair: the generation plan, the domains, the batch
/// column layout, per-code numeric tables for DD, and code-mapped
/// distribution samplers. Building the context also decides whether the
/// code path can represent the package at all (encodable()).
class GenerationContext {
 public:
  /// Resolves plan + domains. Fails with the same Status the value path
  /// would (e.g. missing domains); representability problems do NOT fail
  /// the build — they clear encodable() so callers can fall back.
  static Result<GenerationContext> Build(const MetadataPackage& metadata,
                                         const GenerationOptions& options =
                                             {});

  const Schema& schema() const { return schema_; }
  const std::vector<Domain>& domains() const { return domains_; }
  const DependencyGraph& plan() const { return *plan_; }
  const std::vector<EncodedBatch::ColumnKind>& kinds() const {
    return kinds_;
  }
  const std::vector<CodeWidth>& widths() const { return widths_; }
  size_t num_attributes() const { return domains_.size(); }

  /// Per-code numeric view of a code-stored column's domain: entry 0
  /// (NULL) and non-numeric entries are 0.0, matching the value path's
  /// `is_numeric() ? AsNumeric() : 0.0` convention in the DD walk.
  /// Empty for real-stored columns.
  const std::vector<double>& code_numeric(size_t c) const {
    return code_numeric_[c];
  }

  /// True when GenerateEncoded reproduces the value path for this
  /// package; otherwise fallback_reason() says why and callers should
  /// use GenerateSyntheticValuePath.
  bool encodable() const { return encodable_; }
  const std::string& fallback_reason() const { return fallback_reason_; }

 private:
  friend Status GenerateEncoded(const GenerationContext&, size_t, Rng*,
                                EncodedBatch*);

  // Replays ValueDistribution::Sample draw-for-draw, emitting codes
  // (categorical frequency table whose support maps into the domain) or
  // raw doubles (histogram).
  struct DistSampler {
    bool categorical = false;
    std::vector<size_t> counts;  // frequency counts / bucket masses
    size_t total = 0;
    std::vector<uint32_t> codes;  // frequency index -> domain code
    double lo = 0.0;              // histogram range
    double hi = 0.0;

    uint32_t SampleCode(Rng* rng) const;
    double SampleReal(Rng* rng) const;
  };

  Schema schema_;
  std::vector<Domain> domains_;
  std::optional<DependencyGraph> plan_;
  std::vector<EncodedBatch::ColumnKind> kinds_;
  std::vector<CodeWidth> widths_;  // batch code-column widths, per attr
  std::vector<std::vector<size_t>> step_lhs_;  // aligned with plan steps
  std::vector<std::optional<DistSampler>> dist_;     // per attribute
  std::vector<std::vector<double>> code_numeric_;    // per attribute
  bool encodable_ = true;
  std::string fallback_reason_;
};

/// Runs the encoded generators over the context's plan, filling `batch`
/// (re-configured and resized in place; a thread that owns its batch
/// allocates only on the first round). Invalid when the context is not
/// encodable.
Status GenerateEncoded(const GenerationContext& ctx, size_t num_rows,
                       Rng* rng, EncodedBatch* batch);

/// Generates `num_rows` synthetic tuples from disclosed metadata. Requires
/// the package to disclose every attribute domain (the adversary cannot
/// sample values otherwise); returns Invalid when domains are missing.
Result<GenerationOutcome> GenerateSynthetic(const MetadataPackage& metadata,
                                            size_t num_rows, Rng* rng,
                                            const GenerationOptions& options =
                                                {});

/// The reference boxed-Value implementation. Exposed so parity tests and
/// benchmarks can compare the two paths explicitly; GenerateSynthetic
/// itself falls back here when the package is not encodable.
Result<GenerationOutcome> GenerateSyntheticValuePath(
    const MetadataPackage& metadata, size_t num_rows, Rng* rng,
    const GenerationOptions& options = {});

}  // namespace metaleak

#endif  // METALEAK_GENERATION_GENERATION_ENGINE_H_
