#include "discovery/validators.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <vector>

#include "common/macros.h"
#include "common/parallel.h"

namespace metaleak {

bool ValidateFd(PliCache* cache, AttributeSet lhs, size_t rhs) {
  METALEAK_DCHECK(cache != nullptr);
  const PositionListIndex* x = cache->Get(lhs);
  const PositionListIndex* a = cache->Get(AttributeSet::Single(rhs));
  return x->Refines(*a);
}

double ComputeG3(PliCache* cache, AttributeSet lhs, size_t rhs) {
  METALEAK_DCHECK(cache != nullptr);
  const PositionListIndex* x = cache->Get(lhs);
  const PositionListIndex* a = cache->Get(AttributeSet::Single(rhs));
  return x->G3Error(*a);
}

size_t ComputeMaxFanout(PliCache* cache, size_t lhs, size_t rhs) {
  METALEAK_DCHECK(cache != nullptr);
  const PositionListIndex* x = cache->Get(AttributeSet::Single(lhs));
  const PositionListIndex* a = cache->Get(AttributeSet::Single(rhs));
  return x->MaxFanout(*a);
}

namespace {

// Non-null (lhs, rhs) pairs sorted by lhs (then rhs for determinism).
std::vector<std::pair<Value, Value>> SortedPairs(const Relation& relation,
                                                 size_t lhs, size_t rhs) {
  std::vector<std::pair<Value, Value>> pairs;
  pairs.reserve(relation.num_rows());
  const std::vector<Value>& x = relation.column(lhs);
  const std::vector<Value>& y = relation.column(rhs);
  for (size_t r = 0; r < relation.num_rows(); ++r) {
    if (x[r].is_null() || y[r].is_null()) continue;
    pairs.emplace_back(x[r], y[r]);
  }
  std::sort(pairs.begin(), pairs.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first < b.first;
    return a.second < b.second;
  });
  return pairs;
}

bool ValueEq(const Value& a, const Value& b) { return a == b; }
bool ValueLt(const Value& a, const Value& b) { return a < b; }

// Non-null (lhs, rhs) code pairs packed as (lhs << 32 | rhs), sorted.
// Codes are order-preserving per column, so sorting the packed pairs is
// the sort-by-(lhs, rhs) the Value path performs — on plain integers.
std::vector<uint64_t> SortedCodePairs(const EncodedRelation& relation,
                                      size_t lhs, size_t rhs) {
  const std::vector<uint32_t>& x = relation.codes(lhs);
  const std::vector<uint32_t>& y = relation.codes(rhs);
  std::vector<uint64_t> pairs;
  pairs.reserve(x.size());
  for (size_t r = 0; r < x.size(); ++r) {
    if (x[r] == ColumnDictionary::kNullCode ||
        y[r] == ColumnDictionary::kNullCode) {
      continue;
    }
    pairs.push_back((static_cast<uint64_t>(x[r]) << 32) | y[r]);
  }
  std::sort(pairs.begin(), pairs.end());
  return pairs;
}

}  // namespace

bool ValidateOd(const Relation& relation, size_t lhs, size_t rhs) {
  std::vector<std::pair<Value, Value>> pairs =
      SortedPairs(relation, lhs, rhs);
  for (size_t i = 1; i < pairs.size(); ++i) {
    const auto& prev = pairs[i - 1];
    const auto& cur = pairs[i];
    if (ValueEq(prev.first, cur.first)) {
      // lhs tie: both directions of the implication force rhs equality.
      if (!ValueEq(prev.second, cur.second)) return false;
    } else {
      // lhs strictly increased: rhs must not decrease.
      if (ValueLt(cur.second, prev.second)) return false;
    }
  }
  return true;
}

bool ValidateOfd(const Relation& relation, size_t lhs, size_t rhs) {
  std::vector<std::pair<Value, Value>> pairs =
      SortedPairs(relation, lhs, rhs);
  for (size_t i = 1; i < pairs.size(); ++i) {
    const auto& prev = pairs[i - 1];
    const auto& cur = pairs[i];
    if (ValueEq(prev.first, cur.first)) {
      if (!ValueEq(prev.second, cur.second)) return false;  // FD part
    } else {
      // Strict order preservation.
      if (!ValueLt(prev.second, cur.second)) return false;
    }
  }
  return true;
}

namespace {

// Adjacent-pair scan grain for the chunked OD/OFD checks: large enough
// that chunk dispatch is noise next to the scan, fixed so chunking (and
// hence the verdict) never depends on the thread count.
constexpr size_t kPairScanGrain = 16384;

}  // namespace

bool ValidateOd(const EncodedRelation& relation, size_t lhs, size_t rhs) {
  std::vector<uint64_t> pairs = SortedCodePairs(relation, lhs, rhs);
  if (pairs.size() < 2) return true;
  // Every adjacent pair (i-1, i) is checked by the chunk owning index i;
  // chunks partition [1, n), so each pair is seen exactly once and the
  // AND-reduction over chunk verdicts equals the serial scan.
  return ParallelReduce<bool>(
      1, pairs.size(), kPairScanGrain, true,
      [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) {
          const uint32_t px = static_cast<uint32_t>(pairs[i - 1] >> 32);
          const uint32_t py = static_cast<uint32_t>(pairs[i - 1]);
          const uint32_t cx = static_cast<uint32_t>(pairs[i] >> 32);
          const uint32_t cy = static_cast<uint32_t>(pairs[i]);
          if (cx == px) {
            // lhs tie: both directions of the implication force rhs
            // equality.
            if (cy != py) return false;
          } else {
            // lhs strictly increased: rhs must not decrease.
            if (cy < py) return false;
          }
        }
        return true;
      },
      [](bool a, bool b) { return a && b; });
}

bool ValidateOfd(const EncodedRelation& relation, size_t lhs, size_t rhs) {
  std::vector<uint64_t> pairs = SortedCodePairs(relation, lhs, rhs);
  if (pairs.size() < 2) return true;
  return ParallelReduce<bool>(
      1, pairs.size(), kPairScanGrain, true,
      [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) {
          const uint32_t px = static_cast<uint32_t>(pairs[i - 1] >> 32);
          const uint32_t py = static_cast<uint32_t>(pairs[i - 1]);
          const uint32_t cx = static_cast<uint32_t>(pairs[i] >> 32);
          const uint32_t cy = static_cast<uint32_t>(pairs[i]);
          if (cx == px) {
            if (cy != py) return false;  // FD part
          } else {
            // Strict order preservation.
            if (cy <= py) return false;
          }
        }
        return true;
      },
      [](bool a, bool b) { return a && b; });
}

namespace {

// Sliding-window scan of j in [jlo, jhi) over sorted points: for every
// j, all i < j with x_j - x_i <= eps pair with j, and the deques hold
// the window's y-min/max candidates. Seeding the deques from the window
// content [lo, j) reproduces exactly the deque state the full serial
// scan would have at j, so chunked scans cover the same (i, j) pairs.
double MinimalDeltaScan(const std::vector<std::pair<double, double>>& pts,
                        double eps, size_t jlo, size_t jhi) {
  double delta = 0.0;
  std::deque<size_t> min_dq;
  std::deque<size_t> max_dq;
  size_t lo = jlo;
  // Rewind lo to the first index inside jlo's window, using the exact
  // predicate of the scan below (not an algebraic rearrangement, which
  // could round differently).
  while (lo > 0 && !(pts[jlo].first - pts[lo - 1].first > eps)) --lo;
  auto push = [&](size_t j) {
    while (!min_dq.empty() && pts[min_dq.back()].second >= pts[j].second) {
      min_dq.pop_back();
    }
    min_dq.push_back(j);
    while (!max_dq.empty() && pts[max_dq.back()].second <= pts[j].second) {
      max_dq.pop_back();
    }
    max_dq.push_back(j);
  };
  for (size_t i = lo; i < jlo; ++i) push(i);
  for (size_t j = jlo; j < jhi; ++j) {
    while (lo < j && pts[j].first - pts[lo].first > eps) {
      if (!min_dq.empty() && min_dq.front() == lo) min_dq.pop_front();
      if (!max_dq.empty() && max_dq.front() == lo) max_dq.pop_front();
      ++lo;
    }
    if (!min_dq.empty()) {
      delta = std::max(delta, pts[j].second - pts[min_dq.front()].second);
    }
    if (!max_dq.empty()) {
      delta = std::max(delta, pts[max_dq.front()].second - pts[j].second);
    }
    push(j);
  }
  return delta;
}

// Shared tail of ComputeMinimalDelta once the non-null numeric (x, y)
// points are collected. For every j, all i with x_j - x_i <= eps pair
// with j; the largest |y_i - y_j| within any such window is the minimal
// delta. The j-range is chunked (fixed grain) and each chunk re-seeds
// its own window, so the max-reduction over chunks examines exactly the
// serial pair set — identical result at any thread count.
double MinimalDeltaOverPoints(std::vector<std::pair<double, double>> pts,
                              double eps) {
  if (pts.size() < 2) return 0.0;
  std::sort(pts.begin(), pts.end());
  constexpr size_t kGrain = 8192;
  return ParallelReduce<double>(
      0, pts.size(), kGrain, 0.0,
      [&](size_t jlo, size_t jhi) {
        return MinimalDeltaScan(pts, eps, jlo, jhi);
      },
      [](double a, double b) { return std::max(a, b); });
}

}  // namespace

Result<double> ComputeMinimalDelta(const Relation& relation, size_t lhs,
                                   size_t rhs, double eps) {
  if (lhs >= relation.num_columns() || rhs >= relation.num_columns()) {
    return Status::OutOfRange("attribute index out of range");
  }
  if (eps < 0.0) {
    return Status::Invalid("differential epsilon must be non-negative");
  }
  std::vector<std::pair<double, double>> pts;
  const std::vector<Value>& x = relation.column(lhs);
  const std::vector<Value>& y = relation.column(rhs);
  for (size_t r = 0; r < relation.num_rows(); ++r) {
    if (x[r].is_null() || y[r].is_null()) continue;
    if (!x[r].is_numeric() || !y[r].is_numeric()) {
      return Status::TypeError(
          "differential dependencies require numeric attributes");
    }
    pts.emplace_back(x[r].AsNumeric(), y[r].AsNumeric());
  }
  return MinimalDeltaOverPoints(std::move(pts), eps);
}

Result<double> ComputeMinimalDelta(const EncodedRelation& relation,
                                   size_t lhs, size_t rhs, double eps) {
  if (lhs >= relation.num_columns() || rhs >= relation.num_columns()) {
    return Status::OutOfRange("attribute index out of range");
  }
  if (eps < 0.0) {
    return Status::Invalid("differential epsilon must be non-negative");
  }
  // Decode each distinct value to a double once; the row scan then runs
  // on the small per-column lookup tables. NaN marks non-numeric entries
  // so the type error matches the Value path (raised only when such a
  // value occurs in a row whose partner is non-null).
  auto numeric_table = [&](size_t col) {
    const ColumnDictionary& dict = relation.dictionary(col);
    std::vector<double> table(dict.num_codes(),
                              std::numeric_limits<double>::quiet_NaN());
    for (uint32_t code = 1; code < dict.num_codes(); ++code) {
      const Value& v = dict.decode(code);
      if (v.is_numeric()) table[code] = v.AsNumeric();
    }
    return table;
  };
  const std::vector<double> xt = numeric_table(lhs);
  const std::vector<double> yt = numeric_table(rhs);
  const std::vector<uint32_t>& x = relation.codes(lhs);
  const std::vector<uint32_t>& y = relation.codes(rhs);
  std::vector<std::pair<double, double>> pts;
  pts.reserve(x.size());
  for (size_t r = 0; r < x.size(); ++r) {
    if (x[r] == ColumnDictionary::kNullCode ||
        y[r] == ColumnDictionary::kNullCode) {
      continue;
    }
    double xv = xt[x[r]];
    double yv = yt[y[r]];
    if (std::isnan(xv) || std::isnan(yv)) {
      return Status::TypeError(
          "differential dependencies require numeric attributes");
    }
    pts.emplace_back(xv, yv);
  }
  return MinimalDeltaOverPoints(std::move(pts), eps);
}

Result<bool> ValidateDependency(const Relation& relation,
                                const Dependency& dep) {
  EncodedRelation encoded = EncodedRelation::Encode(relation);
  return ValidateDependency(encoded, dep);
}

Result<bool> ValidateDependency(const EncodedRelation& relation,
                                const Dependency& dep) {
  size_t n = relation.num_columns();
  if (dep.rhs >= n) return Status::OutOfRange("RHS attribute out of range");
  for (size_t i : dep.lhs.ToIndices()) {
    if (i >= n) return Status::OutOfRange("LHS attribute out of range");
  }
  PliCache cache(&relation);
  switch (dep.kind) {
    case DependencyKind::kFunctional:
      return ValidateFd(&cache, dep.lhs, dep.rhs);
    case DependencyKind::kApproximateFunctional:
      return ComputeG3(&cache, dep.lhs, dep.rhs) <= dep.g3_error;
    case DependencyKind::kNumerical: {
      if (dep.lhs.size() != 1) {
        return Status::Invalid("numerical dependency needs a single LHS");
      }
      size_t lhs = dep.lhs.ToIndices()[0];
      return ComputeMaxFanout(&cache, lhs, dep.rhs) <= dep.max_fanout;
    }
    case DependencyKind::kOrder: {
      if (dep.lhs.size() != 1) {
        return Status::Invalid("order dependency needs a single LHS");
      }
      return ValidateOd(relation, dep.lhs.ToIndices()[0], dep.rhs);
    }
    case DependencyKind::kOrderedFunctional: {
      if (dep.lhs.size() != 1) {
        return Status::Invalid("OFD needs a single LHS");
      }
      return ValidateOfd(relation, dep.lhs.ToIndices()[0], dep.rhs);
    }
    case DependencyKind::kDifferential: {
      if (dep.lhs.size() != 1) {
        return Status::Invalid("differential dependency needs a single LHS");
      }
      METALEAK_ASSIGN_OR_RETURN(
          double delta,
          ComputeMinimalDelta(relation, dep.lhs.ToIndices()[0], dep.rhs,
                              dep.lhs_epsilon));
      return delta <= dep.rhs_delta;
    }
  }
  return Status::Invalid("unknown dependency kind");
}

}  // namespace metaleak
