#include "discovery/validators.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <vector>

#include "common/macros.h"
#include "common/parallel.h"
#include "common/simd.h"

namespace metaleak {

bool ValidateFd(PliCache* cache, AttributeSet lhs, size_t rhs) {
  METALEAK_DCHECK(cache != nullptr);
  const PositionListIndex* x = cache->Get(lhs);
  const PositionListIndex* a = cache->Get(AttributeSet::Single(rhs));
  return x->Refines(*a);
}

double ComputeG3(PliCache* cache, AttributeSet lhs, size_t rhs) {
  METALEAK_DCHECK(cache != nullptr);
  const PositionListIndex* x = cache->Get(lhs);
  const PositionListIndex* a = cache->Get(AttributeSet::Single(rhs));
  return x->G3Error(*a);
}

size_t ComputeMaxFanout(PliCache* cache, size_t lhs, size_t rhs) {
  return ComputeMaxFanout(cache, AttributeSet::Single(lhs), rhs);
}

size_t ComputeMaxFanout(PliCache* cache, AttributeSet lhs, size_t rhs) {
  METALEAK_DCHECK(cache != nullptr);
  const PositionListIndex* x = cache->Get(lhs);
  const PositionListIndex* a = cache->Get(AttributeSet::Single(rhs));
  return x->MaxFanout(*a);
}

namespace {

// Non-null (lhs, rhs) pairs sorted by lhs (then rhs for determinism).
std::vector<std::pair<Value, Value>> SortedPairs(const Relation& relation,
                                                 size_t lhs, size_t rhs) {
  std::vector<std::pair<Value, Value>> pairs;
  pairs.reserve(relation.num_rows());
  const std::vector<Value>& x = relation.column(lhs);
  const std::vector<Value>& y = relation.column(rhs);
  for (size_t r = 0; r < relation.num_rows(); ++r) {
    if (x[r].is_null() || y[r].is_null()) continue;
    pairs.emplace_back(x[r], y[r]);
  }
  std::sort(pairs.begin(), pairs.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first < b.first;
    return a.second < b.second;
  });
  return pairs;
}

bool ValueEq(const Value& a, const Value& b) { return a == b; }
bool ValueLt(const Value& a, const Value& b) { return a < b; }

// Non-null (lhs, rhs) code pairs packed as (lhs << 32 | rhs), sorted.
// Codes are order-preserving per column, so sorting the packed pairs is
// the sort-by-(lhs, rhs) the Value path performs — on plain integers.
std::vector<uint64_t> SortedCodePairs(const EncodedRelation& relation,
                                      size_t lhs, size_t rhs) {
  const std::vector<uint32_t>& x = relation.codes(lhs);
  const std::vector<uint32_t>& y = relation.codes(rhs);
  std::vector<uint64_t> pairs;
  pairs.reserve(x.size());
  for (size_t r = 0; r < x.size(); ++r) {
    if (x[r] == ColumnDictionary::kNullCode ||
        y[r] == ColumnDictionary::kNullCode) {
      continue;
    }
    pairs.push_back((static_cast<uint64_t>(x[r]) << 32) | y[r]);
  }
  std::sort(pairs.begin(), pairs.end());
  return pairs;
}

}  // namespace

bool ValidateOd(const Relation& relation, size_t lhs, size_t rhs) {
  std::vector<std::pair<Value, Value>> pairs =
      SortedPairs(relation, lhs, rhs);
  for (size_t i = 1; i < pairs.size(); ++i) {
    const auto& prev = pairs[i - 1];
    const auto& cur = pairs[i];
    if (ValueEq(prev.first, cur.first)) {
      // lhs tie: both directions of the implication force rhs equality.
      if (!ValueEq(prev.second, cur.second)) return false;
    } else {
      // lhs strictly increased: rhs must not decrease.
      if (ValueLt(cur.second, prev.second)) return false;
    }
  }
  return true;
}

bool ValidateOfd(const Relation& relation, size_t lhs, size_t rhs) {
  std::vector<std::pair<Value, Value>> pairs =
      SortedPairs(relation, lhs, rhs);
  for (size_t i = 1; i < pairs.size(); ++i) {
    const auto& prev = pairs[i - 1];
    const auto& cur = pairs[i];
    if (ValueEq(prev.first, cur.first)) {
      if (!ValueEq(prev.second, cur.second)) return false;  // FD part
    } else {
      // Strict order preservation.
      if (!ValueLt(prev.second, cur.second)) return false;
    }
  }
  return true;
}

namespace {

// Adjacent-pair scan grain for the chunked OD/OFD checks: large enough
// that chunk dispatch is noise next to the scan, fixed so chunking (and
// hence the verdict) never depends on the thread count.
constexpr size_t kPairScanGrain = 16384;

}  // namespace

bool ValidateOd(const EncodedRelation& relation, size_t lhs, size_t rhs) {
  std::vector<uint64_t> pairs = SortedCodePairs(relation, lhs, rhs);
  if (pairs.size() < 2) return true;
  // Every adjacent pair (i-1, i) is checked by the chunk owning index i;
  // chunks partition [1, n), so each pair is seen exactly once and the
  // AND-reduction over chunk verdicts equals the serial scan. The chunk
  // body is the vectorized sorted-pair violation kernel (lhs tie with
  // differing rhs, or lhs step with decreasing rhs).
  const SimdLevel level = ActiveSimdLevel();
  return ParallelReduce<bool>(
      1, pairs.size(), kPairScanGrain, true,
      [&](size_t lo, size_t hi) {
        return !OdViolationInRange(level, pairs.data(), lo, hi,
                                   /*strict=*/false);
      },
      [](bool a, bool b) { return a && b; });
}

bool ValidateOfd(const EncodedRelation& relation, size_t lhs, size_t rhs) {
  std::vector<uint64_t> pairs = SortedCodePairs(relation, lhs, rhs);
  if (pairs.size() < 2) return true;
  // As ValidateOd, with the strict rule: on an lhs step the rhs must
  // strictly increase.
  const SimdLevel level = ActiveSimdLevel();
  return ParallelReduce<bool>(
      1, pairs.size(), kPairScanGrain, true,
      [&](size_t lo, size_t hi) {
        return !OdViolationInRange(level, pairs.data(), lo, hi,
                                   /*strict=*/true);
      },
      [](bool a, bool b) { return a && b; });
}

namespace {

// Multi-attribute analogue of SortedCodePairs: for every row with no
// NULL among lhs ∪ {rhs}, a fixed-width tuple (lhs codes in ascending
// attribute order, then the rhs code), flattened and sorted
// lexicographically. Codes are order-preserving, so tuple order is the
// lexicographic `Value` order.
std::vector<uint32_t> SortedCodeTuples(const EncodedRelation& relation,
                                       const std::vector<size_t>& lhs,
                                       size_t rhs, size_t* width_out) {
  const size_t width = lhs.size() + 1;
  *width_out = width;
  std::vector<const std::vector<uint32_t>*> cols;
  cols.reserve(width);
  for (size_t a : lhs) cols.push_back(&relation.codes(a));
  cols.push_back(&relation.codes(rhs));
  std::vector<uint32_t> flat;
  for (size_t r = 0; r < relation.num_rows(); ++r) {
    bool keep = true;
    for (const auto* c : cols) {
      if ((*c)[r] == ColumnDictionary::kNullCode) {
        keep = false;
        break;
      }
    }
    if (!keep) continue;
    for (const auto* c : cols) flat.push_back((*c)[r]);
  }
  const size_t n = flat.size() / width;
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return std::lexicographical_compare(
        flat.begin() + a * width, flat.begin() + (a + 1) * width,
        flat.begin() + b * width, flat.begin() + (b + 1) * width);
  });
  std::vector<uint32_t> sorted;
  sorted.reserve(flat.size());
  for (size_t i : order) {
    sorted.insert(sorted.end(), flat.begin() + i * width,
                  flat.begin() + (i + 1) * width);
  }
  return sorted;
}

// Adjacent-tuple scan shared by the multi-attribute OD/OFD checks:
// `strict` selects the OFD rule (rhs must strictly increase when the
// lhs tuple does).
bool ScanSortedTuples(const std::vector<uint32_t>& tuples, size_t width,
                      bool strict) {
  const size_t n = tuples.size() / width;
  if (n < 2) return true;
  return ParallelReduce<bool>(
      1, n, kPairScanGrain, true,
      [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) {
          const uint32_t* prev = tuples.data() + (i - 1) * width;
          const uint32_t* cur = tuples.data() + i * width;
          const bool lhs_tie =
              std::equal(prev, prev + width - 1, cur, cur + width - 1);
          const uint32_t py = prev[width - 1];
          const uint32_t cy = cur[width - 1];
          if (lhs_tie) {
            // lhs tie: both directions of the implication force rhs
            // equality.
            if (cy != py) return false;
          } else if (strict) {
            if (cy <= py) return false;
          } else {
            if (cy < py) return false;
          }
        }
        return true;
      },
      [](bool a, bool b) { return a && b; });
}

}  // namespace

bool ValidateOd(const EncodedRelation& relation, AttributeSet lhs,
                size_t rhs) {
  std::vector<size_t> xs = lhs.ToIndices();
  if (xs.size() == 1) return ValidateOd(relation, xs[0], rhs);
  size_t width = 0;
  std::vector<uint32_t> tuples = SortedCodeTuples(relation, xs, rhs, &width);
  return ScanSortedTuples(tuples, width, /*strict=*/false);
}

bool ValidateOfd(const EncodedRelation& relation, AttributeSet lhs,
                 size_t rhs) {
  std::vector<size_t> xs = lhs.ToIndices();
  if (xs.size() == 1) return ValidateOfd(relation, xs[0], rhs);
  size_t width = 0;
  std::vector<uint32_t> tuples = SortedCodeTuples(relation, xs, rhs, &width);
  return ScanSortedTuples(tuples, width, /*strict=*/true);
}

namespace {

// Sliding-window scan of j in [jlo, jhi) over sorted points: for every
// j, all i < j with x_j - x_i <= eps pair with j, and the deques hold
// the window's y-min/max candidates. Seeding the deques from the window
// content [lo, j) reproduces exactly the deque state the full serial
// scan would have at j, so chunked scans cover the same (i, j) pairs.
double MinimalDeltaScan(const std::vector<std::pair<double, double>>& pts,
                        double eps, size_t jlo, size_t jhi) {
  double delta = 0.0;
  std::deque<size_t> min_dq;
  std::deque<size_t> max_dq;
  size_t lo = jlo;
  // Rewind lo to the first index inside jlo's window, using the exact
  // predicate of the scan below (not an algebraic rearrangement, which
  // could round differently).
  while (lo > 0 && !(pts[jlo].first - pts[lo - 1].first > eps)) --lo;
  auto push = [&](size_t j) {
    while (!min_dq.empty() && pts[min_dq.back()].second >= pts[j].second) {
      min_dq.pop_back();
    }
    min_dq.push_back(j);
    while (!max_dq.empty() && pts[max_dq.back()].second <= pts[j].second) {
      max_dq.pop_back();
    }
    max_dq.push_back(j);
  };
  for (size_t i = lo; i < jlo; ++i) push(i);
  for (size_t j = jlo; j < jhi; ++j) {
    while (lo < j && pts[j].first - pts[lo].first > eps) {
      if (!min_dq.empty() && min_dq.front() == lo) min_dq.pop_front();
      if (!max_dq.empty() && max_dq.front() == lo) max_dq.pop_front();
      ++lo;
    }
    if (!min_dq.empty()) {
      delta = std::max(delta, pts[j].second - pts[min_dq.front()].second);
    }
    if (!max_dq.empty()) {
      delta = std::max(delta, pts[max_dq.front()].second - pts[j].second);
    }
    push(j);
  }
  return delta;
}

// Shared tail of ComputeMinimalDelta once the non-null numeric (x, y)
// points are collected. For every j, all i with x_j - x_i <= eps pair
// with j; the largest |y_i - y_j| within any such window is the minimal
// delta. The j-range is chunked (fixed grain) and each chunk re-seeds
// its own window, so the max-reduction over chunks examines exactly the
// serial pair set — identical result at any thread count.
double MinimalDeltaOverPoints(std::vector<std::pair<double, double>> pts,
                              double eps) {
  if (pts.size() < 2) return 0.0;
  std::sort(pts.begin(), pts.end());
  constexpr size_t kGrain = 8192;
  return ParallelReduce<double>(
      0, pts.size(), kGrain, 0.0,
      [&](size_t jlo, size_t jhi) {
        return MinimalDeltaScan(pts, eps, jlo, jhi);
      },
      [](double a, double b) { return std::max(a, b); });
}

}  // namespace

Result<double> ComputeMinimalDelta(const Relation& relation, size_t lhs,
                                   size_t rhs, double eps) {
  if (lhs >= relation.num_columns() || rhs >= relation.num_columns()) {
    return Status::OutOfRange("attribute index out of range");
  }
  if (eps < 0.0) {
    return Status::Invalid("differential epsilon must be non-negative");
  }
  std::vector<std::pair<double, double>> pts;
  const std::vector<Value>& x = relation.column(lhs);
  const std::vector<Value>& y = relation.column(rhs);
  for (size_t r = 0; r < relation.num_rows(); ++r) {
    if (x[r].is_null() || y[r].is_null()) continue;
    if (!x[r].is_numeric() || !y[r].is_numeric()) {
      return Status::TypeError(
          "differential dependencies require numeric attributes");
    }
    pts.emplace_back(x[r].AsNumeric(), y[r].AsNumeric());
  }
  return MinimalDeltaOverPoints(std::move(pts), eps);
}

Result<double> ComputeMinimalDelta(const EncodedRelation& relation,
                                   size_t lhs, size_t rhs, double eps) {
  if (lhs >= relation.num_columns() || rhs >= relation.num_columns()) {
    return Status::OutOfRange("attribute index out of range");
  }
  if (eps < 0.0) {
    return Status::Invalid("differential epsilon must be non-negative");
  }
  // Decode each distinct value to a double once; the row scan then runs
  // on the small per-column lookup tables. NaN marks non-numeric entries
  // so the type error matches the Value path (raised only when such a
  // value occurs in a row whose partner is non-null).
  auto numeric_table = [&](size_t col) {
    const ColumnDictionary& dict = relation.dictionary(col);
    std::vector<double> table(dict.num_codes(),
                              std::numeric_limits<double>::quiet_NaN());
    for (uint32_t code = 1; code < dict.num_codes(); ++code) {
      const Value& v = dict.decode(code);
      if (v.is_numeric()) table[code] = v.AsNumeric();
    }
    return table;
  };
  const std::vector<double> xt = numeric_table(lhs);
  const std::vector<double> yt = numeric_table(rhs);
  const std::vector<uint32_t>& x = relation.codes(lhs);
  const std::vector<uint32_t>& y = relation.codes(rhs);
  std::vector<std::pair<double, double>> pts;
  pts.reserve(x.size());
  for (size_t r = 0; r < x.size(); ++r) {
    if (x[r] == ColumnDictionary::kNullCode ||
        y[r] == ColumnDictionary::kNullCode) {
      continue;
    }
    double xv = xt[x[r]];
    double yv = yt[y[r]];
    if (std::isnan(xv) || std::isnan(yv)) {
      return Status::TypeError(
          "differential dependencies require numeric attributes");
    }
    pts.emplace_back(xv, yv);
  }
  return MinimalDeltaOverPoints(std::move(pts), eps);
}

Result<double> ComputeMinimalDelta(const EncodedRelation& relation,
                                   AttributeSet lhs,
                                   const std::vector<double>& eps,
                                   size_t rhs) {
  std::vector<size_t> xs = lhs.ToIndices();
  if (xs.size() != eps.size()) {
    return Status::Invalid("epsilon list must match the LHS arity");
  }
  if (xs.size() == 1) {
    return ComputeMinimalDelta(relation, xs[0], rhs, eps[0]);
  }
  for (size_t a : xs) {
    if (a >= relation.num_columns()) {
      return Status::OutOfRange("attribute index out of range");
    }
  }
  if (rhs >= relation.num_columns()) {
    return Status::OutOfRange("attribute index out of range");
  }
  for (double e : eps) {
    if (e < 0.0) {
      return Status::Invalid("differential epsilon must be non-negative");
    }
  }
  auto numeric_table = [&](size_t col) {
    const ColumnDictionary& dict = relation.dictionary(col);
    std::vector<double> table(dict.num_codes(),
                              std::numeric_limits<double>::quiet_NaN());
    for (uint32_t code = 1; code < dict.num_codes(); ++code) {
      const Value& v = dict.decode(code);
      if (v.is_numeric()) table[code] = v.AsNumeric();
    }
    return table;
  };
  // Qualifying rows flattened as (lhs numerics..., rhs numeric). A tuple
  // pair is in the conjunctive window when every lhs coordinate differs
  // by at most its eps; the minimal delta is the largest rhs gap over
  // the window.
  const size_t width = xs.size() + 1;
  std::vector<std::vector<double>> tables;
  std::vector<const std::vector<uint32_t>*> cols;
  for (size_t a : xs) {
    tables.push_back(numeric_table(a));
    cols.push_back(&relation.codes(a));
  }
  tables.push_back(numeric_table(rhs));
  cols.push_back(&relation.codes(rhs));
  std::vector<double> flat;
  for (size_t r = 0; r < relation.num_rows(); ++r) {
    bool keep = true;
    for (const auto* c : cols) {
      if ((*c)[r] == ColumnDictionary::kNullCode) {
        keep = false;
        break;
      }
    }
    if (!keep) continue;
    for (size_t k = 0; k < width; ++k) {
      double v = tables[k][(*cols[k])[r]];
      if (std::isnan(v)) {
        return Status::TypeError(
            "differential dependencies require numeric attributes");
      }
      flat.push_back(v);
    }
  }
  const size_t n = flat.size() / width;
  if (n < 2) return 0.0;
  // The conjunctive window has no 1-D sort that makes it contiguous, so
  // every unordered pair is checked directly. Chunking the i-range keeps
  // the O(n^2) scan parallel; max-reduction is order-invariant, so the
  // result is thread-count independent.
  constexpr size_t kRowGrain = 64;
  return ParallelReduce<double>(
      0, n, kRowGrain, 0.0,
      [&](size_t lo, size_t hi) {
        double delta = 0.0;
        for (size_t i = lo; i < hi; ++i) {
          const double* ti = flat.data() + i * width;
          for (size_t j = i + 1; j < n; ++j) {
            const double* tj = flat.data() + j * width;
            bool within = true;
            for (size_t k = 0; k + 1 < width; ++k) {
              if (std::fabs(ti[k] - tj[k]) > eps[k]) {
                within = false;
                break;
              }
            }
            if (!within) continue;
            delta = std::max(delta,
                             std::fabs(ti[width - 1] - tj[width - 1]));
          }
        }
        return delta;
      },
      [](double a, double b) { return std::max(a, b); });
}

Result<bool> ValidateDependency(const Relation& relation,
                                const Dependency& dep) {
  EncodedRelation encoded = EncodedRelation::Encode(relation);
  return ValidateDependency(encoded, dep);
}

Result<bool> ValidateDependency(const EncodedRelation& relation,
                                const Dependency& dep) {
  PliCache cache(&relation);
  return ValidateDependency(&cache, dep);
}

Result<bool> ValidateDependency(PliCache* cache, const Dependency& dep) {
  METALEAK_DCHECK(cache != nullptr);
  const EncodedRelation& relation = cache->encoded();
  size_t n = relation.num_columns();
  if (dep.rhs >= n) return Status::OutOfRange("RHS attribute out of range");
  for (size_t i : dep.lhs.ToIndices()) {
    if (i >= n) return Status::OutOfRange("LHS attribute out of range");
  }
  switch (dep.kind) {
    case DependencyKind::kFunctional:
      return ValidateFd(cache, dep.lhs, dep.rhs);
    case DependencyKind::kApproximateFunctional:
      return ComputeG3(cache, dep.lhs, dep.rhs) <= dep.g3_error;
    case DependencyKind::kNumerical:
      return ComputeMaxFanout(cache, dep.lhs, dep.rhs) <= dep.max_fanout;
    case DependencyKind::kOrder:
      return ValidateOd(relation, dep.lhs, dep.rhs);
    case DependencyKind::kOrderedFunctional:
      return ValidateOfd(relation, dep.lhs, dep.rhs);
    case DependencyKind::kDifferential: {
      std::vector<double> eps = dep.lhs_epsilons;
      if (eps.empty()) {
        eps.assign(dep.lhs.size(), dep.lhs_epsilon);
      }
      METALEAK_ASSIGN_OR_RETURN(
          double delta, ComputeMinimalDelta(relation, dep.lhs, eps, dep.rhs));
      return delta <= dep.rhs_delta;
    }
  }
  return Status::Invalid("unknown dependency kind");
}

Result<std::vector<bool>> ValidateDependencies(const Relation& relation,
                                               const DependencySet& deps) {
  EncodedRelation encoded = EncodedRelation::Encode(relation);
  return ValidateDependencies(encoded, deps);
}

Result<std::vector<bool>> ValidateDependencies(
    const EncodedRelation& relation, const DependencySet& deps) {
  PliCache cache(&relation);
  std::vector<bool> verdicts;
  verdicts.reserve(deps.size());
  for (const Dependency& d : deps) {
    METALEAK_ASSIGN_OR_RETURN(bool ok, ValidateDependency(&cache, d));
    verdicts.push_back(ok);
  }
  return verdicts;
}

}  // namespace metaleak
