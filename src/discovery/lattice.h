// Shared level-wise lattice-search engine for dependency discovery.
//
// The paper's §IV treats every dependency class as one idea — a search
// over candidate LHS sets plus a class-specific validation predicate.
// This kernel owns the search: TANE-style level maps with C+ candidate
// sets, prefix-join level generation, and apriori pruning. Each class
// plugs in a `CandidateValidator` that answers "does lhs -> rhs hold,
// and if so what dependency (with class parameters) should be emitted?"
//
// Pruning contract:
//  - When a candidate holds, its RHS leaves C+(X) — supersets of the LHS
//    are never re-validated against that RHS (minimality).
//  - Validators for classes where X -> a and X' ⊇ X -> b interact
//    transitively (FD; OD/OFD under the lexicographic LHS order used
//    here) additionally opt into TANE's full rule, which removes all
//    attributes outside X from C+(X). Classes whose parameter improves
//    monotonically with larger LHS but may newly qualify (ND, DD) must
//    not: only the per-RHS removal is sound for them.
//
// Determinism guarantee: candidate lists are fixed per level before any
// verdict lands, verdicts are computed in parallel (the validator must
// be thread-safe and side-effect free), and emission plus C+ mutation
// replay serially in node order. The discovered set is bit-identical at
// any thread count; Canonicalize makes the ordering explicit regardless.
#ifndef METALEAK_DISCOVERY_LATTICE_H_
#define METALEAK_DISCOVERY_LATTICE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "common/result.h"
#include "data/encoded_relation.h"
#include "metadata/dependency.h"
#include "metadata/dependency_set.h"
#include "partition/attribute_set.h"
#include "partition/pli_cache.h"

namespace metaleak {

struct LatticeSearchOptions {
  /// Maximum LHS size searched. Level l of the lattice emits
  /// dependencies with |LHS| = l - 1.
  size_t max_lhs = 1;
  /// Test empty-LHS candidates {} -> A (constant columns).
  bool include_empty_lhs = false;
};

/// Per-search counters surfaced through DiscoveryReport.
struct LatticeSearchStats {
  /// Lattice nodes visited across all levels.
  size_t nodes_visited = 0;
  /// Candidate edges skipped without validation: C+-pruned attributes,
  /// eligibility-filtered candidates, and empty-LHS skips.
  size_t candidates_pruned = 0;
  /// CandidateValidator::Validate calls issued.
  size_t validator_invocations = 0;
  /// Candidates answered from a prior run's verdict memo instead of the
  /// validator (targeted revalidation; see LatticeReuse).
  size_t verdicts_reused = 0;
  /// PLI cache lookups attributable to this search (deltas of the
  /// cache's counters; zero when the search runs without a cache).
  uint64_t pli_cache_hits = 0;
  uint64_t pli_cache_misses = 0;

  /// hits / (hits + misses); 0 when no lookups happened.
  double PliCacheHitRate() const {
    uint64_t total = pli_cache_hits + pli_cache_misses;
    if (total == 0) return 0.0;
    return static_cast<double>(pli_cache_hits) / static_cast<double>(total);
  }

  void Accumulate(const LatticeSearchStats& other) {
    nodes_visited += other.nodes_visited;
    candidates_pruned += other.candidates_pruned;
    validator_invocations += other.validator_invocations;
    verdicts_reused += other.verdicts_reused;
    pli_cache_hits += other.pli_cache_hits;
    pli_cache_misses += other.pli_cache_misses;
  }
};

/// One dependency class's validation predicate. `Validate` runs
/// concurrently across a level's candidates: it must be thread-safe and
/// must not mutate shared state (a shared PliCache is fine — Get is
/// concurrency-safe).
class CandidateValidator {
 public:
  struct Verdict {
    /// The dependency holds: the RHS is pruned from C+(lhs ∪ {rhs}) and,
    /// when `emit` is set, the dependency is recorded. A holds verdict
    /// with no `emit` prunes silently (e.g. an ND that is really an FD).
    bool holds = false;
    /// The dependency to record, carrying class-specific parameters.
    /// With holds == false this is a relaxed emission (e.g. an AFD under
    /// the g3 threshold) that does not prune the search.
    std::optional<Dependency> emit;
  };

  virtual ~CandidateValidator() = default;

  /// Whether attribute `a` participates in the lattice at all. An
  /// attribute failing this appears on neither side of any candidate.
  virtual bool AttributeEligible(size_t a) const {
    (void)a;
    return true;
  }
  /// Whether `a` may appear in a candidate LHS / as a candidate RHS.
  /// Both default to AttributeEligible.
  virtual bool LhsEligible(size_t a) const { return AttributeEligible(a); }
  virtual bool RhsEligible(size_t a) const { return AttributeEligible(a); }

  /// The class predicate. Must be deterministic and thread-safe.
  virtual Result<Verdict> Validate(AttributeSet lhs, size_t rhs) = 0;

  /// Opt into TANE's full C+ rule (see the pruning contract above).
  /// Sound only when the class is transitive over growing LHS sets.
  virtual bool TransitivePruning() const { return false; }

  /// Non-holds emissions are dropped unless minimal against everything
  /// already emitted with the same RHS (TANE's AFD subset check).
  virtual bool RelaxedNeedsMinimality() const { return false; }
};

struct LatticeSearchResult {
  DependencySet dependencies;  // canonicalized
  LatticeSearchStats stats;
};

/// Verdict store from one lattice run, keyed by (LHS set, RHS). Records
/// are thread-safe (the search inserts concurrently); Find is
/// unsynchronized and must only be called on a memo whose producing
/// search has finished. The search result is a pure function of the
/// verdict function, so replaying a search with memoized verdicts that
/// provably match what the validator would return yields a bit-identical
/// dependency set — the foundation of targeted revalidation
/// (discovery/revalidate.h).
class VerdictMemo {
 public:
  void Record(AttributeSet lhs, size_t rhs,
              const CandidateValidator::Verdict& verdict) {
    std::lock_guard<std::mutex> lock(mu_);
    map_.insert_or_assign(Key{lhs.mask(), rhs}, verdict);
  }

  const CandidateValidator::Verdict* Find(AttributeSet lhs,
                                          size_t rhs) const {
    auto it = map_.find(Key{lhs.mask(), rhs});
    return it == map_.end() ? nullptr : &it->second;
  }

  size_t size() const { return map_.size(); }
  void Clear() { map_.clear(); }

  /// Exchanges contents (the mutexes stay put — memos are not movable,
  /// so round-to-round handover swaps the maps instead).
  void Swap(VerdictMemo& other) { map_.swap(other.map_); }

 private:
  struct Key {
    uint64_t lhs_mask = 0;
    size_t rhs = 0;
    friend bool operator==(const Key& a, const Key& b) {
      return a.lhs_mask == b.lhs_mask && a.rhs == b.rhs;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      uint64_t h = (k.lhs_mask + k.rhs) * 0x9E3779B97F4A7C15ull;
      h ^= h >> 33;
      return static_cast<size_t>(h);
    }
  };
  mutable std::mutex mu_;
  std::unordered_map<Key, CandidateValidator::Verdict, KeyHash> map_;
};

/// Hooks a prior run's verdicts into a search. For each candidate whose
/// prior verdict exists and whose `reusable` predicate approves it, the
/// verdict is taken from `prior` instead of invoking the validator. The
/// predicate sees the prior verdict so directional rules can be
/// expressed (e.g. order dependencies: under insert-only deltas a
/// violation can only persist, so `holds == false` is reusable; under
/// delete-only deltas a hold can only persist). Soundness is the
/// caller's contract: approve only candidates whose verdict provably
/// equals a fresh validation.
struct LatticeReuse {
  const VerdictMemo* prior = nullptr;
  std::function<bool(AttributeSet lhs, size_t rhs,
                     const CandidateValidator::Verdict& prior_verdict)>
      reusable;
  /// When set, every verdict of this run — reused or freshly computed —
  /// is recorded here for the next round. Must not alias `prior`.
  VerdictMemo* record = nullptr;
};

/// Runs the level-wise search over `relation`'s attributes with
/// `validator`'s predicate. `cache` may be null; when given, the PLI
/// hit/miss deltas across the search land in the stats (the cache is
/// not otherwise touched — validators hold their own handle). `reuse`
/// may be null; when given, memoized prior verdicts short-circuit
/// validation (see LatticeReuse). Fails when the relation exceeds the
/// 64-attribute limit or a validation fails.
Result<LatticeSearchResult> RunLatticeSearch(
    const EncodedRelation& relation, PliCache* cache,
    CandidateValidator* validator, const LatticeSearchOptions& options,
    const LatticeReuse* reuse = nullptr);

}  // namespace metaleak

#endif  // METALEAK_DISCOVERY_LATTICE_H_
