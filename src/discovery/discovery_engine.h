// DiscoveryEngine: profiles a relation into a full MetadataPackage —
// the object a VFL party would share.
#ifndef METALEAK_DISCOVERY_DISCOVERY_ENGINE_H_
#define METALEAK_DISCOVERY_DISCOVERY_ENGINE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "data/encoded_relation.h"
#include "data/relation.h"
#include "discovery/cfd_discovery.h"
#include "discovery/lattice.h"
#include "discovery/rfd_discovery.h"
#include "discovery/tane.h"
#include "metadata/metadata_package.h"

namespace metaleak {

struct DiscoveryOptions {
  TaneOptions tane;
  OdDiscoveryOptions od;
  NdDiscoveryOptions nd;
  DdDiscoveryOptions dd;
  CfdDiscoveryOptions cfd;
  /// Also profile per-attribute value distributions (frequency tables /
  /// histograms) into the package. Off by default: the paper's model
  /// assumes distributions are never disclosed.
  bool profile_distributions = false;
  /// Histogram bucket count used when profiling distributions.
  size_t distribution_buckets = 16;
  /// Class toggles; OFDs are implied by ODs+FDs but recorded explicitly
  /// because the paper analyzes their generation separately.
  bool discover_fds = true;
  bool discover_afds = false;
  bool discover_ods = true;
  bool discover_ofds = true;
  bool discover_nds = true;
  bool discover_dds = true;
  /// Conditional FDs; off by default (quadratic-in-values scan).
  bool discover_cfds = false;
};

/// Kernel counters for one class's search, labeled by the search name
/// ("FD/AFD", "OD", "OFD", "ND", "DD").
struct ClassSearchStats {
  std::string search;
  LatticeSearchStats stats;
};

struct DiscoveryReport {
  MetadataPackage metadata;
  /// Per-class lattice-search statistics, in the order the searches ran.
  std::vector<ClassSearchStats> search_stats;

  /// Sum over all searches (convenience for coarse reporting).
  LatticeSearchStats TotalSearchStats() const {
    LatticeSearchStats total;
    for (const ClassSearchStats& s : search_stats) total.Accumulate(s.stats);
    return total;
  }
};

/// Runs every enabled discovery algorithm and assembles the metadata
/// package (names, domains, row count, dependencies). Dictionary-encodes
/// the relation once and threads the encoding through every discovery
/// pass below.
Result<DiscoveryReport> ProfileRelation(const Relation& relation,
                                        const DiscoveryOptions& options = {});

/// Profiles an already-encoded relation: domains and value distributions
/// are read from the per-column dictionaries, partitions are built from
/// dense codes. CFD discovery (when enabled) consults the raw values via
/// `relation.source()`, which must still be alive.
Result<DiscoveryReport> ProfileRelation(const EncodedRelation& relation,
                                        const DiscoveryOptions& options = {});

/// Per-class reuse hooks for targeted revalidation (see
/// discovery/revalidate.h, which assembles these from a delta's touch
/// set). Null members run that class's search from scratch.
struct DiscoveryReuse {
  const LatticeReuse* fd = nullptr;
  const LatticeReuse* od = nullptr;
  const LatticeReuse* ofd = nullptr;
  const LatticeReuse* nd = nullptr;
  const LatticeReuse* dd = nullptr;
};

/// Profiles against a caller-owned PLI cache (the relation is the
/// cache's encoding): partitions built by the searches stay warm in the
/// caller's cache for later audit / leakage queries on the same
/// snapshot. The other overloads delegate here with a transient cache.
Result<DiscoveryReport> ProfileRelation(PliCache* cache,
                                        const DiscoveryOptions& options = {},
                                        const DiscoveryReuse* reuse = nullptr);

}  // namespace metaleak

#endif  // METALEAK_DISCOVERY_DISCOVERY_ENGINE_H_
