#include "discovery/discovery_engine.h"

#include "common/logging.h"
#include "common/macros.h"
#include "data/domain.h"

namespace metaleak {

Result<DiscoveryReport> ProfileRelation(const Relation& relation,
                                        const DiscoveryOptions& options) {
  EncodedRelation encoded = EncodedRelation::Encode(relation);
  return ProfileRelation(encoded, options);
}

Result<DiscoveryReport> ProfileRelation(const EncodedRelation& relation,
                                        const DiscoveryOptions& options) {
  // One PLI cache serves every partition-based search (FD/AFD and ND);
  // partitions built by one stay warm for the other.
  PliCache cache(&relation);
  return ProfileRelation(&cache, options);
}

Result<DiscoveryReport> ProfileRelation(PliCache* cache,
                                        const DiscoveryOptions& options,
                                        const DiscoveryReuse* reuse) {
  const EncodedRelation& relation = cache->encoded();
  static const DiscoveryReuse kNoReuse;
  if (reuse == nullptr) reuse = &kNoReuse;
  DiscoveryReport report;
  report.metadata.schema = relation.schema();
  report.metadata.num_rows = relation.num_rows();

  METALEAK_ASSIGN_OR_RETURN(std::vector<Domain> domains,
                            relation.Domains());
  report.metadata.domains.reserve(domains.size());
  for (Domain& d : domains) {
    report.metadata.domains.emplace_back(std::move(d));
  }

  report.metadata.distributions.assign(relation.num_columns(),
                                       std::nullopt);
  if (options.profile_distributions) {
    for (size_t c = 0; c < relation.num_columns(); ++c) {
      METALEAK_ASSIGN_OR_RETURN(
          ValueDistribution dist,
          ValueDistribution::FromEncoded(relation, c,
                                         options.distribution_buckets));
      report.metadata.distributions[c] = std::move(dist);
    }
  }

  if (options.discover_fds || options.discover_afds) {
    TaneOptions tane_options = options.tane;
    if (options.discover_afds && tane_options.max_g3_error == 0.0) {
      tane_options.max_g3_error = 0.05;
    }
    if (!options.discover_afds) tane_options.max_g3_error = 0.0;
    METALEAK_ASSIGN_OR_RETURN(TaneResult tane,
                              DiscoverFds(cache, tane_options, reuse->fd));
    report.search_stats.push_back({"FD/AFD", tane.stats});
    for (const Dependency& d : tane.dependencies) {
      if (d.kind == DependencyKind::kFunctional && !options.discover_fds) {
        continue;
      }
      report.metadata.dependencies.Add(d);
    }
  }
  if (options.discover_ods) {
    LatticeSearchStats stats;
    METALEAK_ASSIGN_OR_RETURN(DependencySet ods,
                              DiscoverOds(relation, options.od, &stats, reuse->od));
    report.search_stats.push_back({"OD", stats});
    for (const Dependency& d : ods) report.metadata.dependencies.Add(d);
  }
  if (options.discover_ofds) {
    LatticeSearchStats stats;
    METALEAK_ASSIGN_OR_RETURN(DependencySet ofds,
                              DiscoverOfds(relation, options.od, &stats, reuse->ofd));
    report.search_stats.push_back({"OFD", stats});
    for (const Dependency& d : ofds) report.metadata.dependencies.Add(d);
  }
  if (options.discover_nds) {
    LatticeSearchStats stats;
    METALEAK_ASSIGN_OR_RETURN(DependencySet nds,
                              DiscoverNds(cache, options.nd, &stats, reuse->nd));
    report.search_stats.push_back({"ND", stats});
    for (const Dependency& d : nds) report.metadata.dependencies.Add(d);
  }
  if (options.discover_dds) {
    LatticeSearchStats stats;
    METALEAK_ASSIGN_OR_RETURN(DependencySet dds,
                              DiscoverDds(relation, options.dd, &stats, reuse->dd));
    report.search_stats.push_back({"DD", stats});
    for (const Dependency& d : dds) report.metadata.dependencies.Add(d);
  }
  if (options.discover_cfds) {
    // CFDs match constant patterns against raw values; the encoding keeps
    // a pointer to its source relation for exactly this path.
    METALEAK_DCHECK(relation.source() != nullptr);
    METALEAK_ASSIGN_OR_RETURN(
        report.metadata.conditional_fds,
        DiscoverCfds(*relation.source(), options.cfd));
  }

  METALEAK_LOG(kInfo) << "profiled relation: " << relation.num_rows()
                      << " rows, " << relation.num_columns()
                      << " attributes, "
                      << report.metadata.dependencies.size()
                      << " dependencies";
  return report;
}

}  // namespace metaleak
