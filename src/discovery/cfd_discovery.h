// Discovery and validation of conditional functional dependencies.
#ifndef METALEAK_DISCOVERY_CFD_DISCOVERY_H_
#define METALEAK_DISCOVERY_CFD_DISCOVERY_H_

#include <vector>

#include "common/result.h"
#include "data/relation.h"
#include "metadata/conditional_fd.h"

namespace metaleak {

struct CfdDiscoveryOptions {
  /// Minimum rows the condition must select.
  size_t min_support = 8;
  /// Only conditioning attributes with at most this many distinct values
  /// are tried (conditions on near-key attributes are noise).
  size_t max_condition_distinct = 16;
  /// Skip variable CFDs whose embedded FD also holds globally (those are
  /// plain FDs, reported by TANE).
  bool skip_global_fds = true;
};

/// True iff `cfd` holds on `relation`: among rows where the condition
/// attribute equals the condition value, the embedded (variable or
/// constant) dependency is satisfied. Vacuously true when no row
/// matches. NULL condition cells never match a non-null constant.
Result<bool> ValidateCfd(const Relation& relation, const ConditionalFd& cfd);

/// Finds single-condition CFDs:
///   * variable form  [C=c] => (X -> A) with single-attribute X, where
///     the FD fails globally but holds on the condition's rows;
///   * constant form  [X=x] => (A = a), where every row with X=x carries
///     the same A value (and X -> A fails globally).
Result<std::vector<ConditionalFd>> DiscoverCfds(
    const Relation& relation, const CfdDiscoveryOptions& options = {});

}  // namespace metaleak

#endif  // METALEAK_DISCOVERY_CFD_DISCOVERY_H_
