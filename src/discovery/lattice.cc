#include "discovery/lattice.h"

#include <atomic>
#include <map>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "common/parallel.h"

namespace metaleak {

namespace {

// Returns true if no already-emitted dependency with the same RHS has an
// LHS that is a subset of `lhs` (minimality for threshold-mode relaxed
// emissions; holds-mode candidates get minimality from the C+ sets).
bool IsMinimalAgainst(const DependencySet& emitted, AttributeSet lhs,
                      size_t rhs) {
  for (const Dependency& d : emitted) {
    if (d.rhs == rhs && lhs.ContainsAll(d.lhs) && d.lhs != lhs) return false;
    if (d.rhs == rhs && d.lhs == lhs) return false;
  }
  return true;
}

}  // namespace

Result<LatticeSearchResult> RunLatticeSearch(
    const EncodedRelation& relation, PliCache* cache,
    CandidateValidator* validator, const LatticeSearchOptions& options,
    const LatticeReuse* reuse) {
  METALEAK_DCHECK(validator != nullptr);
  const size_t m = relation.num_columns();
  if (m > AttributeSet::kMaxAttributes) {
    return Status::Invalid("relation exceeds 64 attributes");
  }
  LatticeSearchResult result;
  if (m == 0) return result;

  const uint64_t hits0 = cache != nullptr ? cache->hits() : 0;
  const uint64_t misses0 = cache != nullptr ? cache->misses() : 0;

  // The lattice universe: attributes the class can use in either role.
  AttributeSet universe;
  for (size_t a = 0; a < m; ++a) {
    if (validator->AttributeEligible(a)) universe = universe.With(a);
  }

  // Level maps: attribute set X -> C+(X).
  std::map<AttributeSet, AttributeSet> level;
  for (size_t a : universe.ToIndices()) {
    level[AttributeSet::Single(a)] = universe;
  }

  // Level 1 special case: the empty-LHS candidates {} -> A (constant
  // columns) correspond to testing X = {A}, X \ {A} = {}.
  const size_t max_level = options.max_lhs + 1;

  for (size_t l = 1; l <= max_level && !level.empty(); ++l) {
    // --- collect this level's candidates ---
    // A node's candidate list depends only on its own C+ value at level
    // entry (the serial algorithm fixes the list before mutating C+), so
    // the whole level's candidates are known up front and their verdicts
    // are independent of each other.
    std::vector<AttributeSet> cand_lhs;
    std::vector<size_t> cand_rhs;
    std::vector<std::pair<size_t, size_t>> node_spans;
    node_spans.reserve(level.size());
    for (const auto& [x, cplus] : level) {
      size_t first = cand_lhs.size();
      result.stats.candidates_pruned += x.Minus(cplus).size();
      for (size_t a : x.Intersect(cplus).ToIndices()) {
        AttributeSet lhs = x.Without(a);
        if (lhs.empty() && !options.include_empty_lhs) {
          ++result.stats.candidates_pruned;
          continue;
        }
        bool eligible = validator->RhsEligible(a);
        for (size_t b : lhs.ToIndices()) {
          if (!eligible) break;
          eligible = validator->LhsEligible(b);
        }
        if (!eligible) {
          ++result.stats.candidates_pruned;
          continue;
        }
        cand_lhs.push_back(lhs);
        cand_rhs.push_back(a);
      }
      node_spans.emplace_back(first, cand_lhs.size());
    }

    // --- validate candidates concurrently ---
    // A candidate whose prior-run verdict is provably unchanged (the
    // reuse predicate's contract) short-circuits validation; since a
    // reused verdict equals what Validate would return, the serial
    // apply below replays identically and the output stays
    // bit-identical to a from-scratch search.
    std::vector<Result<CandidateValidator::Verdict>> verdicts(
        cand_lhs.size(), CandidateValidator::Verdict{});
    std::atomic<size_t> reused{0};
    ParallelFor(0, cand_lhs.size(), 1, [&](size_t i) {
      if (reuse != nullptr && reuse->prior != nullptr && reuse->reusable) {
        const CandidateValidator::Verdict* prior =
            reuse->prior->Find(cand_lhs[i], cand_rhs[i]);
        if (prior != nullptr &&
            reuse->reusable(cand_lhs[i], cand_rhs[i], *prior)) {
          verdicts[i] = *prior;
          reused.fetch_add(1, std::memory_order_relaxed);
          if (reuse->record != nullptr) {
            reuse->record->Record(cand_lhs[i], cand_rhs[i], *prior);
          }
          return;
        }
      }
      verdicts[i] = validator->Validate(cand_lhs[i], cand_rhs[i]);
      if (reuse != nullptr && reuse->record != nullptr && verdicts[i].ok()) {
        reuse->record->Record(cand_lhs[i], cand_rhs[i], *verdicts[i]);
      }
    });
    const size_t reused_here = reused.load(std::memory_order_relaxed);
    result.stats.verdicts_reused += reused_here;
    result.stats.validator_invocations += cand_lhs.size() - reused_here;

    // --- apply verdicts serially, in node order: emission and C+ set
    // pruning replay the serial algorithm exactly, so the discovered set
    // is bit-identical at any thread count ---
    size_t node_index = 0;
    for (auto& [x, cplus] : level) {
      ++result.stats.nodes_visited;
      auto [first, last] = node_spans[node_index++];
      for (size_t i = first; i < last; ++i) {
        if (!verdicts[i].ok()) return verdicts[i].status();
        const CandidateValidator::Verdict& v = *verdicts[i];
        if (v.holds) {
          if (v.emit.has_value()) result.dependencies.Add(*v.emit);
          cplus = cplus.Without(cand_rhs[i]);
          if (validator->TransitivePruning()) {
            // Classic TANE pruning: all B outside X leave C+(X).
            cplus = cplus.Minus(universe.Minus(x));
          }
        } else if (v.emit.has_value() &&
                   (!validator->RelaxedNeedsMinimality() ||
                    IsMinimalAgainst(result.dependencies, cand_lhs[i],
                                     cand_rhs[i]))) {
          result.dependencies.Add(*v.emit);
        }
      }
    }

    // --- prune nodes with empty candidate sets ---
    for (auto it = level.begin(); it != level.end();) {
      if (it->second.empty()) {
        it = level.erase(it);
      } else {
        ++it;
      }
    }

    if (l == max_level) break;

    // --- generate the next level (prefix join + subset check) ---
    std::map<AttributeSet, AttributeSet> next;
    std::vector<AttributeSet> nodes;
    nodes.reserve(level.size());
    for (const auto& [x, cplus] : level) nodes.push_back(x);

    for (size_t i = 0; i < nodes.size(); ++i) {
      for (size_t j = i + 1; j < nodes.size(); ++j) {
        AttributeSet y = nodes[i].Union(nodes[j]);
        if (y.size() != l + 1) continue;  // not a prefix-style join
        if (next.count(y) != 0) continue;
        // All l-subsets of y must be present in the current level.
        bool all_present = true;
        AttributeSet cplus = universe;
        for (size_t a : y.ToIndices()) {
          auto it = level.find(y.Without(a));
          if (it == level.end()) {
            all_present = false;
            break;
          }
          cplus = cplus.Intersect(it->second);
        }
        if (!all_present || cplus.empty()) continue;
        next[y] = cplus;
      }
    }
    level = std::move(next);
  }

  if (cache != nullptr) {
    result.stats.pli_cache_hits = cache->hits() - hits0;
    result.stats.pli_cache_misses = cache->misses() - misses0;
  }
  result.dependencies.Canonicalize();
  return result;
}

}  // namespace metaleak
