#include "discovery/revalidate.h"

#include <utility>

#include "common/macros.h"

namespace metaleak {

Result<DiscoveryReport> ProfileRelationIncremental(
    PliCache* cache, const DiscoveryOptions& options, const DeltaTouch& touch,
    DiscoveryMemo* memo) {
  METALEAK_DCHECK(memo != nullptr);
  METALEAK_DCHECK(touch.cluster_touched.size() ==
                  cache->encoded().num_columns());
  using Verdict = CandidateValidator::Verdict;

  // This run's verdicts land in fresh memos and swap into `memo` on
  // success, so a failed search never poisons the carried state.
  DiscoveryMemo next;

  LatticeReuse fd;
  fd.record = &next.fd;
  LatticeReuse od;
  od.record = &next.od;
  LatticeReuse ofd;
  ofd.record = &next.ofd;
  LatticeReuse nd;
  nd.record = &next.nd;
  LatticeReuse dd;
  dd.record = &next.dd;

  if (memo->valid) {
    const bool afd_mode = options.discover_afds;
    fd.prior = &memo->fd;
    fd.reusable = [&touch, afd_mode](AttributeSet lhs, size_t /*rhs*/,
                                     const Verdict& /*prior*/) {
      if (!touch.any_change()) return true;
      // AFD g3 and the empty-LHS constant check depend on the full row
      // count; the subset-refinement verdict only on the LHS clusters.
      if (afd_mode || lhs.empty()) return false;
      return !touch.ClusterTouched(lhs);
    };
    auto order_reusable = [&touch](AttributeSet /*lhs*/, size_t /*rhs*/,
                                   const Verdict& prior) {
      if (!touch.any_change()) return true;
      if (touch.insert_only()) {
        // Surviving rows keep their values, so an order violation
        // witnessed before the inserts still stands.
        return !prior.holds && !prior.emit.has_value();
      }
      if (touch.delete_only()) {
        // Removing rows can only remove violations; OD/OFD emissions
        // are parameterless, so the reused verdict is exact.
        return prior.holds;
      }
      return false;
    };
    od.prior = &memo->od;
    od.reusable = order_reusable;
    ofd.prior = &memo->ofd;
    ofd.reusable = order_reusable;
    nd.prior = &memo->nd;
    nd.reusable = [&touch](AttributeSet lhs, size_t rhs,
                           const Verdict& /*prior*/) {
      if (!touch.any_change()) return true;
      return !touch.ClusterTouched(lhs) && !touch.dictionary_touched[rhs];
    };
    dd.prior = &memo->dd;
    dd.reusable = [&touch](AttributeSet /*lhs*/, size_t /*rhs*/,
                           const Verdict& /*prior*/) {
      return !touch.any_change();
    };
  }

  DiscoveryReuse reuse;
  reuse.fd = &fd;
  reuse.od = &od;
  reuse.ofd = &ofd;
  reuse.nd = &nd;
  reuse.dd = &dd;

  METALEAK_ASSIGN_OR_RETURN(DiscoveryReport report,
                            ProfileRelation(cache, options, &reuse));
  memo->fd.Swap(next.fd);
  memo->od.Swap(next.od);
  memo->ofd.Swap(next.ofd);
  memo->nd.Swap(next.nd);
  memo->dd.Swap(next.dd);
  memo->valid = true;
  return report;
}

}  // namespace metaleak
