// Targeted revalidation: re-profile a changed relation re-checking only
// the dependencies whose support sets the delta touched.
//
// The lattice search's output is a pure function of the per-candidate
// verdict function, so a re-run that substitutes provably-unchanged
// verdicts from the previous run produces a bit-identical DependencySet.
// The per-class reuse predicates, each sound for its validator:
//
//   FD    Reuse when no LHS member's cluster set changed: the verdict
//         pli(X).Refines(pli(A)) only reads X's clusters (whose rows all
//         survive — a deleted/inserted member row would have touched the
//         member column) and those rows' A-codes, which never change.
//         Empty-LHS (constant column) verdicts read the whole column and
//         reuse only when nothing changed.
//   AFD   g3 = violations / N changes with the row count even for
//         untouched clusters, so AFD-mode searches reuse only when
//         nothing changed at all.
//   OD/OFD  Directional: an insert can only add order violations, so
//         `holds == false` survives insert-only deltas; a delete can
//         only remove them, so `holds == true` survives delete-only
//         deltas. Both emissions are parameterless, so the reused
//         verdict is exactly what a fresh validation would return.
//   ND    Reuse when no LHS member's clusters changed (the fan-out K is
//         computed over X's clusters and their RHS codes) and the RHS
//         dictionary's live set is unchanged (the triviality thresholds
//         scale with the RHS distinct count).
//   DD    Epsilon and delta thresholds scale with the attribute ranges
//         (dictionary min/max), so reuse only when nothing changed.
#ifndef METALEAK_DISCOVERY_REVALIDATE_H_
#define METALEAK_DISCOVERY_REVALIDATE_H_

#include <vector>

#include "common/result.h"
#include "data/delta_relation.h"
#include "discovery/discovery_engine.h"
#include "discovery/lattice.h"
#include "partition/attribute_set.h"
#include "partition/pli_cache.h"

namespace metaleak {

/// Accumulated touch set of one batch window (all batches applied since
/// the last profiled snapshot), in attribute space.
struct DeltaTouch {
  /// Per attribute: some >= 2 cluster gained or lost a row.
  std::vector<bool> cluster_touched;
  /// Per attribute: the live value set changed (value appeared,
  /// revived, or vanished).
  std::vector<bool> dictionary_touched;
  bool had_inserts = false;
  bool had_deletes = false;

  static DeltaTouch None(size_t num_columns) {
    DeltaTouch touch;
    touch.cluster_touched.assign(num_columns, false);
    touch.dictionary_touched.assign(num_columns, false);
    return touch;
  }

  bool any_change() const { return had_inserts || had_deletes; }
  bool insert_only() const { return had_inserts && !had_deletes; }
  bool delete_only() const { return had_deletes && !had_inserts; }

  /// True when some attribute of `attrs` has touched clusters. Sound
  /// for composite LHS sets: pli(X) refines every member's partition,
  /// so an X-cluster change implies a member cluster change.
  bool ClusterTouched(AttributeSet attrs) const {
    for (size_t a : attrs.ToIndices()) {
      if (cluster_touched[a]) return true;
    }
    return false;
  }

  /// Folds one batch's effects into the window.
  void Merge(const BatchEffects& effects) {
    for (size_t c = 0; c < cluster_touched.size(); ++c) {
      if (effects.column_touched[c]) cluster_touched[c] = true;
      if (effects.dictionary_touched[c]) dictionary_touched[c] = true;
    }
    if (effects.remap.rows_surviving < effects.remap.rows_before) {
      had_deletes = true;
    }
    if (effects.remap.rows_after > effects.remap.rows_surviving) {
      had_inserts = true;
    }
  }
};

/// Per-class verdict memos carried across successive profiles of one
/// relation's snapshots. `valid` flips after the first profile; until
/// then every search runs from scratch (and still records).
struct DiscoveryMemo {
  VerdictMemo fd;
  VerdictMemo od;
  VerdictMemo ofd;
  VerdictMemo nd;
  VerdictMemo dd;
  bool valid = false;

  size_t size() const {
    return fd.size() + od.size() + ofd.size() + nd.size() + dd.size();
  }
};

/// Profiles the cache's snapshot exactly like ProfileRelation(cache,
/// options) — the report is bit-identical — but answers candidates whose
/// verdicts the delta provably left unchanged from `memo` instead of
/// re-validating them. On success `memo` holds this run's verdicts for
/// the next round. `touch` describes everything that changed since the
/// snapshot `memo` was recorded against.
Result<DiscoveryReport> ProfileRelationIncremental(
    PliCache* cache, const DiscoveryOptions& options, const DeltaTouch& touch,
    DiscoveryMemo* memo);

}  // namespace metaleak

#endif  // METALEAK_DISCOVERY_REVALIDATE_H_
