#include "discovery/cfd_discovery.h"

#include <unordered_map>
#include <unordered_set>

#include "discovery/validators.h"
#include "partition/pli_cache.h"
#include "partition/position_list_index.h"

namespace metaleak {

namespace {

Status CheckCfdAttrs(const Relation& relation, const ConditionalFd& cfd) {
  size_t n = relation.num_columns();
  if (cfd.condition_attr >= n || cfd.rhs >= n) {
    return Status::OutOfRange("CFD attribute index out of range");
  }
  for (size_t i : cfd.lhs.ToIndices()) {
    if (i >= n) return Status::OutOfRange("CFD LHS index out of range");
  }
  if (!cfd.rhs_is_constant && cfd.lhs.empty()) {
    return Status::Invalid("variable CFD needs a non-empty LHS");
  }
  return Status::OK();
}

// Rows where the condition attribute equals the condition value.
std::vector<size_t> MatchingRows(const Relation& relation,
                                 const ConditionalFd& cfd) {
  std::vector<size_t> rows;
  const std::vector<Value>& col = relation.column(cfd.condition_attr);
  for (size_t r = 0; r < col.size(); ++r) {
    if (col[r] == cfd.condition_value) rows.push_back(r);
  }
  return rows;
}

}  // namespace

Result<bool> ValidateCfd(const Relation& relation,
                         const ConditionalFd& cfd) {
  METALEAK_RETURN_NOT_OK(CheckCfdAttrs(relation, cfd));
  std::vector<size_t> rows = MatchingRows(relation, cfd);
  if (rows.empty()) return true;  // vacuous
  if (cfd.rhs_is_constant) {
    for (size_t r : rows) {
      if (relation.at(r, cfd.rhs) != cfd.rhs_value) return false;
    }
    return true;
  }
  Relation scope = relation.SelectRows(rows);
  PliCache cache(&scope);
  return ValidateFd(&cache, cfd.lhs, cfd.rhs);
}

Result<std::vector<ConditionalFd>> DiscoverCfds(
    const Relation& relation, const CfdDiscoveryOptions& options) {
  std::vector<ConditionalFd> out;
  const size_t m = relation.num_columns();
  if (m == 0 || relation.num_rows() == 0) return out;
  PliCache cache(&relation);

  // Distinct non-null values per attribute (candidates for conditions).
  std::vector<std::vector<Value>> distinct(m);
  for (size_t c = 0; c < m; ++c) {
    std::unordered_set<Value> seen;
    for (const Value& v : relation.column(c)) {
      if (!v.is_null() && seen.insert(v).second) {
        distinct[c].push_back(v);
      }
    }
  }

  // --- Constant CFDs: [X=x] => A = a -----------------------------------
  for (size_t x = 0; x < m; ++x) {
    if (distinct[x].size() > options.max_condition_distinct) continue;
    for (size_t a = 0; a < m; ++a) {
      if (a == x) continue;
      if (options.skip_global_fds &&
          ValidateFd(&cache, AttributeSet::Single(x), a)) {
        continue;  // the whole FD holds; constants add nothing
      }
      // Group rows by X value; pure groups yield constant CFDs.
      std::unordered_map<Value, Value> first_a;
      std::unordered_map<Value, size_t> support;
      std::unordered_set<Value> impure;
      for (size_t r = 0; r < relation.num_rows(); ++r) {
        const Value& xv = relation.at(r, x);
        if (xv.is_null()) continue;
        const Value& av = relation.at(r, a);
        auto [it, inserted] = first_a.emplace(xv, av);
        support[xv]++;
        if (!inserted && it->second != av) impure.insert(xv);
      }
      for (const Value& xv : distinct[x]) {
        if (impure.count(xv) != 0) continue;
        if (support[xv] < options.min_support) continue;
        auto it = first_a.find(xv);
        if (it == first_a.end() || it->second.is_null()) continue;
        out.push_back(
            ConditionalFd::Constant(x, xv, a, it->second, support[xv]));
      }
    }
  }

  // --- Variable CFDs: [C=c] => (X -> A) ---------------------------------
  for (size_t c = 0; c < m; ++c) {
    if (distinct[c].size() > options.max_condition_distinct) continue;
    for (const Value& cv : distinct[c]) {
      std::vector<size_t> rows;
      for (size_t r = 0; r < relation.num_rows(); ++r) {
        if (relation.at(r, c) == cv) rows.push_back(r);
      }
      if (rows.size() < options.min_support) continue;
      Relation scope = relation.SelectRows(rows);
      PliCache scope_cache(&scope);
      for (size_t x = 0; x < m; ++x) {
        if (x == c) continue;
        for (size_t a = 0; a < m; ++a) {
          if (a == x || a == c) continue;
          if (options.skip_global_fds &&
              ValidateFd(&cache, AttributeSet::Single(x), a)) {
            continue;
          }
          if (ValidateFd(&scope_cache, AttributeSet::Single(x), a)) {
            out.push_back(ConditionalFd::Variable(
                c, cv, AttributeSet::Single(x), a, rows.size()));
          }
        }
      }
    }
  }
  return out;
}

}  // namespace metaleak
