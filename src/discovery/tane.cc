#include "discovery/tane.h"

#include <map>
#include <vector>

#include "partition/attribute_set.h"
#include "partition/pli_cache.h"

namespace metaleak {

namespace {

// Returns true if no already-emitted dependency with the same RHS has an
// LHS that is a subset of `lhs` (minimality for threshold-mode AFDs; the
// exact-FD path gets minimality from the C+ sets).
bool IsMinimalAgainst(const DependencySet& emitted, AttributeSet lhs,
                      size_t rhs) {
  for (const Dependency& d : emitted) {
    if (d.rhs == rhs && lhs.ContainsAll(d.lhs) && d.lhs != lhs) return false;
    if (d.rhs == rhs && d.lhs == lhs) return false;
  }
  return true;
}

}  // namespace

Result<TaneResult> DiscoverFds(const Relation& relation,
                               const TaneOptions& options) {
  EncodedRelation encoded = EncodedRelation::Encode(relation);
  return DiscoverFds(encoded, options);
}

Result<TaneResult> DiscoverFds(const EncodedRelation& relation,
                               const TaneOptions& options) {
  const size_t m = relation.num_columns();
  if (m > AttributeSet::kMaxAttributes) {
    return Status::Invalid("relation exceeds 64 attributes");
  }
  TaneResult result;
  if (m == 0) return result;

  PliCache cache(&relation);
  const AttributeSet full = AttributeSet::FullSet(m);

  // Level maps: attribute set X -> C+(X).
  std::map<AttributeSet, AttributeSet> level;
  for (size_t a = 0; a < m; ++a) {
    level[AttributeSet::Single(a)] = full;
  }

  // Level 1 special case: the empty-LHS candidates {} -> A (constant
  // columns) correspond to testing X = {A}, X \ {A} = {}.
  const size_t max_level = options.max_lhs_size + 1;

  for (size_t l = 1; l <= max_level && !level.empty(); ++l) {
    // --- compute dependencies on this level ---
    for (auto& [x, cplus] : level) {
      ++result.nodes_visited;
      for (size_t a : x.Intersect(cplus).ToIndices()) {
        AttributeSet lhs = x.Without(a);
        if (lhs.empty() && !options.include_constant_columns) continue;
        const PositionListIndex* x_pli = cache.Get(lhs);
        const PositionListIndex* a_pli = cache.Get(AttributeSet::Single(a));
        bool exact = x_pli->Refines(*a_pli);
        if (exact) {
          result.dependencies.Add(Dependency::Fd(lhs, a));
          cplus = cplus.Without(a);
          // Classic TANE pruning: all B outside X leave C+(X).
          cplus = cplus.Minus(full.Minus(x));
        } else if (options.max_g3_error > 0.0) {
          double g3 = x_pli->G3Error(*a_pli);
          if (g3 <= options.max_g3_error &&
              IsMinimalAgainst(result.dependencies, lhs, a)) {
            result.dependencies.Add(Dependency::Afd(lhs, a, g3));
          }
        }
      }
    }

    // --- prune nodes with empty candidate sets ---
    for (auto it = level.begin(); it != level.end();) {
      if (it->second.empty()) {
        it = level.erase(it);
      } else {
        ++it;
      }
    }

    if (l == max_level) break;

    // --- generate the next level (prefix join + subset check) ---
    std::map<AttributeSet, AttributeSet> next;
    std::vector<AttributeSet> nodes;
    nodes.reserve(level.size());
    for (const auto& [x, cplus] : level) nodes.push_back(x);

    for (size_t i = 0; i < nodes.size(); ++i) {
      for (size_t j = i + 1; j < nodes.size(); ++j) {
        AttributeSet y = nodes[i].Union(nodes[j]);
        if (y.size() != l + 1) continue;  // not a prefix-style join
        if (next.count(y) != 0) continue;
        // All l-subsets of y must be present in the current level.
        bool all_present = true;
        AttributeSet cplus = full;
        for (size_t a : y.ToIndices()) {
          auto it = level.find(y.Without(a));
          if (it == level.end()) {
            all_present = false;
            break;
          }
          cplus = cplus.Intersect(it->second);
        }
        if (!all_present || cplus.empty()) continue;
        next[y] = cplus;
      }
    }
    level = std::move(next);
  }

  return result;
}

}  // namespace metaleak
