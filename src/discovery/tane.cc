#include "discovery/tane.h"

#include <map>
#include <utility>
#include <vector>

#include "common/parallel.h"
#include "partition/attribute_set.h"
#include "partition/pli_cache.h"

namespace metaleak {

namespace {

// Returns true if no already-emitted dependency with the same RHS has an
// LHS that is a subset of `lhs` (minimality for threshold-mode AFDs; the
// exact-FD path gets minimality from the C+ sets).
bool IsMinimalAgainst(const DependencySet& emitted, AttributeSet lhs,
                      size_t rhs) {
  for (const Dependency& d : emitted) {
    if (d.rhs == rhs && lhs.ContainsAll(d.lhs) && d.lhs != lhs) return false;
    if (d.rhs == rhs && d.lhs == lhs) return false;
  }
  return true;
}

}  // namespace

Result<TaneResult> DiscoverFds(const Relation& relation,
                               const TaneOptions& options) {
  EncodedRelation encoded = EncodedRelation::Encode(relation);
  return DiscoverFds(encoded, options);
}

Result<TaneResult> DiscoverFds(const EncodedRelation& relation,
                               const TaneOptions& options) {
  const size_t m = relation.num_columns();
  if (m > AttributeSet::kMaxAttributes) {
    return Status::Invalid("relation exceeds 64 attributes");
  }
  TaneResult result;
  if (m == 0) return result;

  PliCache cache(&relation);
  const AttributeSet full = AttributeSet::FullSet(m);

  // Level maps: attribute set X -> C+(X).
  std::map<AttributeSet, AttributeSet> level;
  for (size_t a = 0; a < m; ++a) {
    level[AttributeSet::Single(a)] = full;
  }

  // Level 1 special case: the empty-LHS candidates {} -> A (constant
  // columns) correspond to testing X = {A}, X \ {A} = {}.
  const size_t max_level = options.max_lhs_size + 1;

  for (size_t l = 1; l <= max_level && !level.empty(); ++l) {
    // --- collect this level's candidates ---
    // A node's candidate list depends only on its own C+ value at level
    // entry (the serial algorithm fixes the list before mutating C+), so
    // the whole level's candidates are known up front and their PLI
    // verdicts are independent of each other.
    struct Candidate {
      AttributeSet lhs;
      size_t rhs = 0;
      bool exact = false;
      double g3 = 1.0;
    };
    std::vector<Candidate> candidates;
    std::vector<std::pair<size_t, size_t>> node_spans;
    node_spans.reserve(level.size());
    for (const auto& [x, cplus] : level) {
      size_t first = candidates.size();
      for (size_t a : x.Intersect(cplus).ToIndices()) {
        AttributeSet lhs = x.Without(a);
        if (lhs.empty() && !options.include_constant_columns) continue;
        candidates.push_back(Candidate{lhs, a});
      }
      node_spans.emplace_back(first, candidates.size());
    }

    // --- validate candidates concurrently against the shared cache ---
    ParallelFor(0, candidates.size(), 1, [&](size_t i) {
      Candidate& c = candidates[i];
      const PositionListIndex* x_pli = cache.Get(c.lhs);
      const PositionListIndex* a_pli =
          cache.Get(AttributeSet::Single(c.rhs));
      c.exact = x_pli->Refines(*a_pli);
      if (!c.exact && options.max_g3_error > 0.0) {
        c.g3 = x_pli->G3Error(*a_pli);
      }
    });

    // --- apply verdicts serially, in node order: emission and C+ set
    // pruning replay the serial algorithm exactly, so the discovered set
    // is bit-identical at any thread count ---
    size_t node_index = 0;
    for (auto& [x, cplus] : level) {
      ++result.nodes_visited;
      auto [first, last] = node_spans[node_index++];
      for (size_t i = first; i < last; ++i) {
        const Candidate& c = candidates[i];
        if (c.exact) {
          result.dependencies.Add(Dependency::Fd(c.lhs, c.rhs));
          cplus = cplus.Without(c.rhs);
          // Classic TANE pruning: all B outside X leave C+(X).
          cplus = cplus.Minus(full.Minus(x));
        } else if (options.max_g3_error > 0.0 &&
                   c.g3 <= options.max_g3_error &&
                   IsMinimalAgainst(result.dependencies, c.lhs, c.rhs)) {
          result.dependencies.Add(Dependency::Afd(c.lhs, c.rhs, c.g3));
        }
      }
    }

    // --- prune nodes with empty candidate sets ---
    for (auto it = level.begin(); it != level.end();) {
      if (it->second.empty()) {
        it = level.erase(it);
      } else {
        ++it;
      }
    }

    if (l == max_level) break;

    // --- generate the next level (prefix join + subset check) ---
    std::map<AttributeSet, AttributeSet> next;
    std::vector<AttributeSet> nodes;
    nodes.reserve(level.size());
    for (const auto& [x, cplus] : level) nodes.push_back(x);

    for (size_t i = 0; i < nodes.size(); ++i) {
      for (size_t j = i + 1; j < nodes.size(); ++j) {
        AttributeSet y = nodes[i].Union(nodes[j]);
        if (y.size() != l + 1) continue;  // not a prefix-style join
        if (next.count(y) != 0) continue;
        // All l-subsets of y must be present in the current level.
        bool all_present = true;
        AttributeSet cplus = full;
        for (size_t a : y.ToIndices()) {
          auto it = level.find(y.Without(a));
          if (it == level.end()) {
            all_present = false;
            break;
          }
          cplus = cplus.Intersect(it->second);
        }
        if (!all_present || cplus.empty()) continue;
        next[y] = cplus;
      }
    }
    level = std::move(next);
  }

  result.dependencies.Canonicalize();
  return result;
}

}  // namespace metaleak
