#include "discovery/tane.h"

#include <utility>

#include "partition/attribute_set.h"
#include "partition/position_list_index.h"

namespace metaleak {

namespace {

// FD/AFD predicate over stripped-partition refinement: an exact
// refinement holds (and prunes transitively); otherwise, in threshold
// mode, a g3 error under the bound emits an AFD without pruning.
class FdValidator final : public CandidateValidator {
 public:
  FdValidator(PliCache* cache, const TaneOptions& options)
      : cache_(cache), options_(options) {}

  Result<Verdict> Validate(AttributeSet lhs, size_t rhs) override {
    const PositionListIndex* x_pli = cache_->Get(lhs);
    const PositionListIndex* a_pli = cache_->Get(AttributeSet::Single(rhs));
    Verdict v;
    if (x_pli->Refines(*a_pli)) {
      v.holds = true;
      v.emit = Dependency::Fd(lhs, rhs);
      return v;
    }
    if (options_.max_g3_error > 0.0) {
      double g3 = x_pli->G3Error(*a_pli);
      if (g3 <= options_.max_g3_error) {
        v.emit = Dependency::Afd(lhs, rhs, g3);
      }
    }
    return v;
  }

  bool TransitivePruning() const override { return true; }
  bool RelaxedNeedsMinimality() const override { return true; }

 private:
  PliCache* cache_;
  const TaneOptions& options_;
};

}  // namespace

Result<TaneResult> DiscoverFds(const Relation& relation,
                               const TaneOptions& options) {
  EncodedRelation encoded = EncodedRelation::Encode(relation);
  return DiscoverFds(encoded, options);
}

Result<TaneResult> DiscoverFds(const EncodedRelation& relation,
                               const TaneOptions& options) {
  PliCache cache(&relation);
  return DiscoverFds(&cache, options);
}

Result<TaneResult> DiscoverFds(PliCache* cache, const TaneOptions& options,
                               const LatticeReuse* reuse) {
  FdValidator validator(cache, options);
  LatticeSearchOptions search;
  search.max_lhs = options.max_lhs_size;
  search.include_empty_lhs = options.include_constant_columns;
  METALEAK_ASSIGN_OR_RETURN(
      LatticeSearchResult found,
      RunLatticeSearch(cache->encoded(), cache, &validator, search, reuse));
  TaneResult result;
  result.dependencies = std::move(found.dependencies);
  result.stats = found.stats;
  return result;
}

}  // namespace metaleak
