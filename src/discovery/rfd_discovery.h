// Pairwise discovery of relaxed functional dependencies: order
// dependencies, ordered FDs, numerical dependencies and differential
// dependencies (Sections IV-B..IV-E of the paper).
//
// All four classes are discovered in their canonical single-attribute
// form X -> Y over ordered attribute pairs, which is the form the paper's
// generation analysis uses.
#ifndef METALEAK_DISCOVERY_RFD_DISCOVERY_H_
#define METALEAK_DISCOVERY_RFD_DISCOVERY_H_

#include "common/result.h"
#include "data/encoded_relation.h"
#include "data/relation.h"
#include "metadata/dependency_set.h"

namespace metaleak {

struct OdDiscoveryOptions {
  /// Skip ODs whose LHS has fewer than this many distinct non-null
  /// values; single-valued LHS columns make the OD vacuous.
  size_t min_lhs_distinct = 2;
};

/// Finds all order dependencies X -> Y (X != Y) that hold on `relation`.
/// The `Relation` overloads encode once and run the code-path versions;
/// callers that already hold an encoding should pass it directly.
Result<DependencySet> DiscoverOds(const Relation& relation,
                                  const OdDiscoveryOptions& options = {});
Result<DependencySet> DiscoverOds(const EncodedRelation& relation,
                                  const OdDiscoveryOptions& options = {});

/// Finds all ordered functional dependencies (FD + strict order).
Result<DependencySet> DiscoverOfds(const Relation& relation,
                                   const OdDiscoveryOptions& options = {});
Result<DependencySet> DiscoverOfds(const EncodedRelation& relation,
                                   const OdDiscoveryOptions& options = {});

struct NdDiscoveryOptions {
  /// An ND X ->(<=K) Y is reported only when K is at most this fraction of
  /// Y's distinct-value count — otherwise the "constraint" is trivial.
  double max_fanout_fraction = 0.75;
  /// And only when K is at least 2 smaller than Y's distinct count.
  size_t min_slack = 2;
};

/// Finds numerical dependencies with their minimal fan-out K.
Result<DependencySet> DiscoverNds(const Relation& relation,
                                  const NdDiscoveryOptions& options = {});
Result<DependencySet> DiscoverNds(const EncodedRelation& relation,
                                  const NdDiscoveryOptions& options = {});

struct DdDiscoveryOptions {
  /// LHS neighbourhood radius, as a fraction of the LHS attribute range.
  double epsilon_fraction = 0.05;
  /// A DD is reported only when the minimal delta is at most this
  /// fraction of the RHS range — i.e. the LHS proximity genuinely
  /// constrains the RHS.
  double max_delta_fraction = 0.5;
};

/// Finds differential dependencies between continuous attribute pairs,
/// recording the epsilon used and the minimal delta measured.
Result<DependencySet> DiscoverDds(const Relation& relation,
                                  const DdDiscoveryOptions& options = {});
Result<DependencySet> DiscoverDds(const EncodedRelation& relation,
                                  const DdDiscoveryOptions& options = {});

}  // namespace metaleak

#endif  // METALEAK_DISCOVERY_RFD_DISCOVERY_H_
