// Discovery of relaxed functional dependencies: order dependencies,
// ordered FDs, numerical dependencies and differential dependencies
// (Sections IV-B..IV-E of the paper).
//
// All four classes run on the shared lattice kernel
// (discovery/lattice.h) with per-class validators. The default
// `max_lhs = 1` searches exactly the canonical single-attribute form
// X -> Y the paper's generation analysis uses; raising it extends the
// search to multi-attribute LHS sets (lexicographic order for OD/OFD,
// composite partitions for ND, conjunctive windows for DD).
#ifndef METALEAK_DISCOVERY_RFD_DISCOVERY_H_
#define METALEAK_DISCOVERY_RFD_DISCOVERY_H_

#include "common/result.h"
#include "data/encoded_relation.h"
#include "data/relation.h"
#include "discovery/lattice.h"
#include "metadata/dependency_set.h"
#include "partition/pli_cache.h"

namespace metaleak {

struct OdDiscoveryOptions {
  /// Skip ODs whose LHS has fewer than this many distinct non-null
  /// values; single-valued LHS columns make the OD vacuous. With a
  /// multi-attribute LHS the bound applies to every member attribute.
  size_t min_lhs_distinct = 2;
  /// Maximum LHS size searched (1 = the paper's canonical form).
  size_t max_lhs = 1;
};

/// Finds all order dependencies X -> Y (Y not in X) that hold on
/// `relation`. The `Relation` overloads encode once and run the
/// code-path versions; callers that already hold an encoding should
/// pass it directly. When `stats` is non-null the kernel counters for
/// the search land there.
Result<DependencySet> DiscoverOds(const Relation& relation,
                                  const OdDiscoveryOptions& options = {},
                                  LatticeSearchStats* stats = nullptr);
Result<DependencySet> DiscoverOds(const EncodedRelation& relation,
                                  const OdDiscoveryOptions& options = {},
                                  LatticeSearchStats* stats = nullptr,
                                  const LatticeReuse* reuse = nullptr);

/// Finds all ordered functional dependencies (FD + strict order).
Result<DependencySet> DiscoverOfds(const Relation& relation,
                                   const OdDiscoveryOptions& options = {},
                                   LatticeSearchStats* stats = nullptr);
Result<DependencySet> DiscoverOfds(const EncodedRelation& relation,
                                   const OdDiscoveryOptions& options = {},
                                   LatticeSearchStats* stats = nullptr,
                                   const LatticeReuse* reuse = nullptr);

struct NdDiscoveryOptions {
  /// An ND X ->(<=K) Y is reported only when K is at most this fraction of
  /// Y's distinct-value count — otherwise the "constraint" is trivial.
  double max_fanout_fraction = 0.75;
  /// And only when K is at least 2 smaller than Y's distinct count.
  size_t min_slack = 2;
  /// Maximum LHS size searched (1 = the paper's canonical form).
  size_t max_lhs = 1;
};

/// Finds numerical dependencies with their minimal fan-out K.
Result<DependencySet> DiscoverNds(const Relation& relation,
                                  const NdDiscoveryOptions& options = {},
                                  LatticeSearchStats* stats = nullptr);
Result<DependencySet> DiscoverNds(const EncodedRelation& relation,
                                  const NdDiscoveryOptions& options = {},
                                  LatticeSearchStats* stats = nullptr);

/// ND search against a caller-owned PLI cache (the relation is the
/// cache's encoding); shares partitions with other searches on the same
/// cache.
Result<DependencySet> DiscoverNds(PliCache* cache,
                                  const NdDiscoveryOptions& options = {},
                                  LatticeSearchStats* stats = nullptr,
                                  const LatticeReuse* reuse = nullptr);

struct DdDiscoveryOptions {
  /// LHS neighbourhood radius, as a fraction of the LHS attribute range
  /// (applied per attribute for multi-attribute LHS sets).
  double epsilon_fraction = 0.05;
  /// A DD is reported only when the minimal delta is at most this
  /// fraction of the RHS range — i.e. the LHS proximity genuinely
  /// constrains the RHS.
  double max_delta_fraction = 0.5;
  /// Maximum LHS size searched (1 = the paper's canonical form).
  size_t max_lhs = 1;
};

/// Finds differential dependencies between continuous attributes,
/// recording the epsilons used and the minimal delta measured.
Result<DependencySet> DiscoverDds(const Relation& relation,
                                  const DdDiscoveryOptions& options = {},
                                  LatticeSearchStats* stats = nullptr);
Result<DependencySet> DiscoverDds(const EncodedRelation& relation,
                                  const DdDiscoveryOptions& options = {},
                                  LatticeSearchStats* stats = nullptr,
                                  const LatticeReuse* reuse = nullptr);

}  // namespace metaleak

#endif  // METALEAK_DISCOVERY_RFD_DISCOVERY_H_
