#include "discovery/rfd_discovery.h"

#include <utility>
#include <vector>

#include "common/parallel.h"
#include "discovery/validators.h"
#include "partition/pli_cache.h"

namespace metaleak {

// Distinct non-null counts fall straight out of the dictionaries: the
// encoding already deduplicated every column.
//
// All four discoverers share one shape: the candidate (x, y) pairs are
// collected serially in loop order, their verdicts are computed
// concurrently (each pair's validation is independent), and the
// dependency set is assembled serially in candidate order — so the
// output is identical at any thread count, and Canonicalize makes the
// ordering explicit regardless.

Result<DependencySet> DiscoverOds(const Relation& relation,
                                  const OdDiscoveryOptions& options) {
  EncodedRelation encoded = EncodedRelation::Encode(relation);
  return DiscoverOds(encoded, options);
}

Result<DependencySet> DiscoverOds(const EncodedRelation& relation,
                                  const OdDiscoveryOptions& options) {
  DependencySet out;
  size_t m = relation.num_columns();
  std::vector<std::pair<size_t, size_t>> candidates;
  for (size_t x = 0; x < m; ++x) {
    if (relation.dictionary(x).num_distinct() < options.min_lhs_distinct) {
      continue;
    }
    for (size_t y = 0; y < m; ++y) {
      if (x == y) continue;
      candidates.emplace_back(x, y);
    }
  }
  std::vector<char> holds(candidates.size(), 0);
  ParallelFor(0, candidates.size(), 1, [&](size_t i) {
    holds[i] = ValidateOd(relation, candidates[i].first,
                          candidates[i].second);
  });
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (holds[i]) {
      out.Add(Dependency::Od(candidates[i].first, candidates[i].second));
    }
  }
  out.Canonicalize();
  return out;
}

Result<DependencySet> DiscoverOfds(const Relation& relation,
                                   const OdDiscoveryOptions& options) {
  EncodedRelation encoded = EncodedRelation::Encode(relation);
  return DiscoverOfds(encoded, options);
}

Result<DependencySet> DiscoverOfds(const EncodedRelation& relation,
                                   const OdDiscoveryOptions& options) {
  DependencySet out;
  size_t m = relation.num_columns();
  std::vector<std::pair<size_t, size_t>> candidates;
  for (size_t x = 0; x < m; ++x) {
    if (relation.dictionary(x).num_distinct() < options.min_lhs_distinct) {
      continue;
    }
    for (size_t y = 0; y < m; ++y) {
      if (x == y) continue;
      candidates.emplace_back(x, y);
    }
  }
  std::vector<char> holds(candidates.size(), 0);
  ParallelFor(0, candidates.size(), 1, [&](size_t i) {
    holds[i] = ValidateOfd(relation, candidates[i].first,
                           candidates[i].second);
  });
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (holds[i]) {
      out.Add(Dependency::Ofd(candidates[i].first, candidates[i].second));
    }
  }
  out.Canonicalize();
  return out;
}

Result<DependencySet> DiscoverNds(const Relation& relation,
                                  const NdDiscoveryOptions& options) {
  EncodedRelation encoded = EncodedRelation::Encode(relation);
  return DiscoverNds(encoded, options);
}

Result<DependencySet> DiscoverNds(const EncodedRelation& relation,
                                  const NdDiscoveryOptions& options) {
  DependencySet out;
  size_t m = relation.num_columns();
  PliCache cache(&relation);
  std::vector<std::pair<size_t, size_t>> candidates;
  for (size_t x = 0; x < m; ++x) {
    for (size_t y = 0; y < m; ++y) {
      if (x == y) continue;
      if (relation.dictionary(y).num_distinct() < 2) continue;
      candidates.emplace_back(x, y);
    }
  }
  std::vector<size_t> fanout(candidates.size(), 0);
  ParallelFor(0, candidates.size(), 1, [&](size_t i) {
    fanout[i] = ComputeMaxFanout(&cache, candidates[i].first,
                                 candidates[i].second);
  });
  for (size_t i = 0; i < candidates.size(); ++i) {
    auto [x, y] = candidates[i];
    size_t distinct_y = relation.dictionary(y).num_distinct();
    size_t k = fanout[i];
    if (k <= 1) continue;  // that is an FD, not an ND
    bool small_enough =
        static_cast<double>(k) <=
        options.max_fanout_fraction * static_cast<double>(distinct_y);
    bool has_slack = k + options.min_slack <= distinct_y;
    if (small_enough && has_slack) {
      out.Add(Dependency::Nd(x, y, k));
    }
  }
  out.Canonicalize();
  return out;
}

Result<DependencySet> DiscoverDds(const Relation& relation,
                                  const DdDiscoveryOptions& options) {
  EncodedRelation encoded = EncodedRelation::Encode(relation);
  return DiscoverDds(encoded, options);
}

Result<DependencySet> DiscoverDds(const EncodedRelation& relation,
                                  const DdDiscoveryOptions& options) {
  DependencySet out;
  std::vector<size_t> continuous =
      relation.schema().IndicesOf(SemanticType::kContinuous);

  struct DdCandidate {
    size_t x = 0;
    size_t y = 0;
    double eps = 0.0;
    double rhs_range = 0.0;
  };
  std::vector<DdCandidate> candidates;
  for (size_t x : continuous) {
    METALEAK_ASSIGN_OR_RETURN(Domain dx, relation.DomainOf(x));
    if (dx.range() <= 0.0) continue;
    double eps = options.epsilon_fraction * dx.range();
    for (size_t y : continuous) {
      if (x == y) continue;
      METALEAK_ASSIGN_OR_RETURN(Domain dy, relation.DomainOf(y));
      if (dy.range() <= 0.0) continue;
      candidates.push_back(DdCandidate{x, y, eps, dy.range()});
    }
  }
  std::vector<Result<double>> deltas(candidates.size(), 0.0);
  ParallelFor(0, candidates.size(), 1, [&](size_t i) {
    deltas[i] = ComputeMinimalDelta(relation, candidates[i].x,
                                    candidates[i].y, candidates[i].eps);
  });
  for (size_t i = 0; i < candidates.size(); ++i) {
    METALEAK_ASSIGN_OR_RETURN(double delta, std::move(deltas[i]));
    const DdCandidate& c = candidates[i];
    if (delta <= options.max_delta_fraction * c.rhs_range) {
      out.Add(Dependency::Dd(c.x, c.y, c.eps, delta));
    }
  }
  out.Canonicalize();
  return out;
}

}  // namespace metaleak
