#include "discovery/rfd_discovery.h"

#include <vector>

#include "discovery/validators.h"
#include "partition/pli_cache.h"

namespace metaleak {

// Distinct non-null counts fall straight out of the dictionaries: the
// encoding already deduplicated every column.

Result<DependencySet> DiscoverOds(const Relation& relation,
                                  const OdDiscoveryOptions& options) {
  EncodedRelation encoded = EncodedRelation::Encode(relation);
  return DiscoverOds(encoded, options);
}

Result<DependencySet> DiscoverOds(const EncodedRelation& relation,
                                  const OdDiscoveryOptions& options) {
  DependencySet out;
  size_t m = relation.num_columns();
  for (size_t x = 0; x < m; ++x) {
    if (relation.dictionary(x).num_distinct() < options.min_lhs_distinct) {
      continue;
    }
    for (size_t y = 0; y < m; ++y) {
      if (x == y) continue;
      if (ValidateOd(relation, x, y)) {
        out.Add(Dependency::Od(x, y));
      }
    }
  }
  return out;
}

Result<DependencySet> DiscoverOfds(const Relation& relation,
                                   const OdDiscoveryOptions& options) {
  EncodedRelation encoded = EncodedRelation::Encode(relation);
  return DiscoverOfds(encoded, options);
}

Result<DependencySet> DiscoverOfds(const EncodedRelation& relation,
                                   const OdDiscoveryOptions& options) {
  DependencySet out;
  size_t m = relation.num_columns();
  for (size_t x = 0; x < m; ++x) {
    if (relation.dictionary(x).num_distinct() < options.min_lhs_distinct) {
      continue;
    }
    for (size_t y = 0; y < m; ++y) {
      if (x == y) continue;
      if (ValidateOfd(relation, x, y)) {
        out.Add(Dependency::Ofd(x, y));
      }
    }
  }
  return out;
}

Result<DependencySet> DiscoverNds(const Relation& relation,
                                  const NdDiscoveryOptions& options) {
  EncodedRelation encoded = EncodedRelation::Encode(relation);
  return DiscoverNds(encoded, options);
}

Result<DependencySet> DiscoverNds(const EncodedRelation& relation,
                                  const NdDiscoveryOptions& options) {
  DependencySet out;
  size_t m = relation.num_columns();
  PliCache cache(&relation);
  for (size_t x = 0; x < m; ++x) {
    for (size_t y = 0; y < m; ++y) {
      if (x == y) continue;
      size_t distinct_y = relation.dictionary(y).num_distinct();
      if (distinct_y < 2) continue;
      size_t k = ComputeMaxFanout(&cache, x, y);
      if (k <= 1) continue;  // that is an FD, not an ND
      bool small_enough =
          static_cast<double>(k) <=
          options.max_fanout_fraction * static_cast<double>(distinct_y);
      bool has_slack = k + options.min_slack <= distinct_y;
      if (small_enough && has_slack) {
        out.Add(Dependency::Nd(x, y, k));
      }
    }
  }
  return out;
}

Result<DependencySet> DiscoverDds(const Relation& relation,
                                  const DdDiscoveryOptions& options) {
  EncodedRelation encoded = EncodedRelation::Encode(relation);
  return DiscoverDds(encoded, options);
}

Result<DependencySet> DiscoverDds(const EncodedRelation& relation,
                                  const DdDiscoveryOptions& options) {
  DependencySet out;
  std::vector<size_t> continuous =
      relation.schema().IndicesOf(SemanticType::kContinuous);
  for (size_t x : continuous) {
    METALEAK_ASSIGN_OR_RETURN(Domain dx, relation.DomainOf(x));
    if (dx.range() <= 0.0) continue;
    double eps = options.epsilon_fraction * dx.range();
    for (size_t y : continuous) {
      if (x == y) continue;
      METALEAK_ASSIGN_OR_RETURN(Domain dy, relation.DomainOf(y));
      if (dy.range() <= 0.0) continue;
      METALEAK_ASSIGN_OR_RETURN(double delta,
                                ComputeMinimalDelta(relation, x, y, eps));
      if (delta <= options.max_delta_fraction * dy.range()) {
        out.Add(Dependency::Dd(x, y, eps, delta));
      }
    }
  }
  return out;
}

}  // namespace metaleak
