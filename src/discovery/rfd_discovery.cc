#include "discovery/rfd_discovery.h"

#include <utility>
#include <vector>

#include "discovery/validators.h"

namespace metaleak {

// Distinct non-null counts fall straight out of the dictionaries: the
// encoding already deduplicated every column.
//
// Every discoverer plugs a class validator into the shared lattice
// kernel; the kernel guarantees thread-count-invariant output (parallel
// verdicts, serial emission in node order) and canonicalizes the result.

namespace {

// OD/OFD predicate; `strict` selects the OFD rule. Both classes are
// transitive over growing lexicographic LHS sets, so the full TANE
// prune applies.
class OrderValidator final : public CandidateValidator {
 public:
  OrderValidator(const EncodedRelation& relation,
                 const OdDiscoveryOptions& options, bool strict)
      : relation_(relation), options_(options), strict_(strict) {}

  bool LhsEligible(size_t a) const override {
    return relation_.dictionary(a).num_distinct() >= options_.min_lhs_distinct;
  }

  Result<Verdict> Validate(AttributeSet lhs, size_t rhs) override {
    Verdict v;
    bool holds = strict_ ? ValidateOfd(relation_, lhs, rhs)
                         : ValidateOd(relation_, lhs, rhs);
    if (holds) {
      v.holds = true;
      v.emit = strict_ ? Dependency::Ofd(lhs, rhs) : Dependency::Od(lhs, rhs);
    }
    return v;
  }

  bool TransitivePruning() const override { return true; }

 private:
  const EncodedRelation& relation_;
  const OdDiscoveryOptions& options_;
  const bool strict_;
};

// ND predicate over composite partitions. A fan-out of 1 is an FD in
// disguise: it holds (supersets only tighten) but is never emitted.
// Growing the LHS shrinks the fan-out, so a failing candidate may still
// qualify at a superset — only the per-RHS prune is sound.
class NdValidator final : public CandidateValidator {
 public:
  NdValidator(PliCache* cache, const NdDiscoveryOptions& options)
      : cache_(cache), relation_(cache->encoded()), options_(options) {}

  bool RhsEligible(size_t a) const override {
    return relation_.dictionary(a).num_distinct() >= 2;
  }

  Result<Verdict> Validate(AttributeSet lhs, size_t rhs) override {
    size_t k = ComputeMaxFanout(cache_, lhs, rhs);
    Verdict v;
    if (k <= 1) {
      v.holds = true;
      return v;
    }
    size_t distinct_y = relation_.dictionary(rhs).num_distinct();
    bool small_enough =
        static_cast<double>(k) <=
        options_.max_fanout_fraction * static_cast<double>(distinct_y);
    bool has_slack = k + options_.min_slack <= distinct_y;
    if (small_enough && has_slack) {
      v.holds = true;
      v.emit = Dependency::Nd(lhs, rhs, k);
    }
    return v;
  }

 private:
  PliCache* cache_;
  const EncodedRelation& relation_;
  const NdDiscoveryOptions& options_;
};

// DD predicate over conjunctive eps-windows. Growing the LHS shrinks
// the window (and hence the minimal delta), so — like ND — a failing
// candidate may qualify at a superset and only the per-RHS prune is
// sound. A qualifying delta holds and is emitted: supersets would be
// trivially implied.
class DdValidator final : public CandidateValidator {
 public:
  DdValidator(const EncodedRelation& relation,
              const DdDiscoveryOptions& options)
      : relation_(relation), options_(options) {}

  /// Resolves per-attribute domains up front; DomainOf failures surface
  /// here instead of mid-search.
  Status Init() {
    size_t m = relation_.num_columns();
    eligible_.assign(m, false);
    eps_.assign(m, 0.0);
    range_.assign(m, 0.0);
    for (size_t a :
         relation_.schema().IndicesOf(SemanticType::kContinuous)) {
      METALEAK_ASSIGN_OR_RETURN(Domain d, relation_.DomainOf(a));
      if (d.range() <= 0.0) continue;
      eligible_[a] = true;
      eps_[a] = options_.epsilon_fraction * d.range();
      range_[a] = d.range();
    }
    return Status::OK();
  }

  bool AttributeEligible(size_t a) const override { return eligible_[a]; }

  Result<Verdict> Validate(AttributeSet lhs, size_t rhs) override {
    std::vector<double> eps;
    eps.reserve(lhs.size());
    for (size_t a : lhs.ToIndices()) eps.push_back(eps_[a]);
    METALEAK_ASSIGN_OR_RETURN(
        double delta, ComputeMinimalDelta(relation_, lhs, eps, rhs));
    Verdict v;
    if (delta <= options_.max_delta_fraction * range_[rhs]) {
      v.holds = true;
      v.emit = Dependency::Dd(lhs, rhs, std::move(eps), delta);
    }
    return v;
  }

 private:
  const EncodedRelation& relation_;
  const DdDiscoveryOptions& options_;
  std::vector<bool> eligible_;
  std::vector<double> eps_;
  std::vector<double> range_;
};

Result<DependencySet> RunSearch(const EncodedRelation& relation,
                                PliCache* cache,
                                CandidateValidator* validator,
                                size_t max_lhs, LatticeSearchStats* stats,
                                const LatticeReuse* reuse = nullptr) {
  LatticeSearchOptions search;
  search.max_lhs = max_lhs;
  METALEAK_ASSIGN_OR_RETURN(
      LatticeSearchResult found,
      RunLatticeSearch(relation, cache, validator, search, reuse));
  if (stats != nullptr) *stats = found.stats;
  return std::move(found.dependencies);
}

}  // namespace

Result<DependencySet> DiscoverOds(const Relation& relation,
                                  const OdDiscoveryOptions& options,
                                  LatticeSearchStats* stats) {
  EncodedRelation encoded = EncodedRelation::Encode(relation);
  return DiscoverOds(encoded, options, stats);
}

Result<DependencySet> DiscoverOds(const EncodedRelation& relation,
                                  const OdDiscoveryOptions& options,
                                  LatticeSearchStats* stats,
                                  const LatticeReuse* reuse) {
  OrderValidator validator(relation, options, /*strict=*/false);
  return RunSearch(relation, nullptr, &validator, options.max_lhs, stats,
                   reuse);
}

Result<DependencySet> DiscoverOfds(const Relation& relation,
                                   const OdDiscoveryOptions& options,
                                   LatticeSearchStats* stats) {
  EncodedRelation encoded = EncodedRelation::Encode(relation);
  return DiscoverOfds(encoded, options, stats);
}

Result<DependencySet> DiscoverOfds(const EncodedRelation& relation,
                                   const OdDiscoveryOptions& options,
                                   LatticeSearchStats* stats,
                                   const LatticeReuse* reuse) {
  OrderValidator validator(relation, options, /*strict=*/true);
  return RunSearch(relation, nullptr, &validator, options.max_lhs, stats,
                   reuse);
}

Result<DependencySet> DiscoverNds(const Relation& relation,
                                  const NdDiscoveryOptions& options,
                                  LatticeSearchStats* stats) {
  EncodedRelation encoded = EncodedRelation::Encode(relation);
  return DiscoverNds(encoded, options, stats);
}

Result<DependencySet> DiscoverNds(const EncodedRelation& relation,
                                  const NdDiscoveryOptions& options,
                                  LatticeSearchStats* stats) {
  PliCache cache(&relation);
  return DiscoverNds(&cache, options, stats);
}

Result<DependencySet> DiscoverNds(PliCache* cache,
                                  const NdDiscoveryOptions& options,
                                  LatticeSearchStats* stats,
                                  const LatticeReuse* reuse) {
  NdValidator validator(cache, options);
  return RunSearch(cache->encoded(), cache, &validator, options.max_lhs,
                   stats, reuse);
}

Result<DependencySet> DiscoverDds(const Relation& relation,
                                  const DdDiscoveryOptions& options,
                                  LatticeSearchStats* stats) {
  EncodedRelation encoded = EncodedRelation::Encode(relation);
  return DiscoverDds(encoded, options, stats);
}

Result<DependencySet> DiscoverDds(const EncodedRelation& relation,
                                  const DdDiscoveryOptions& options,
                                  LatticeSearchStats* stats,
                                  const LatticeReuse* reuse) {
  DdValidator validator(relation, options);
  METALEAK_RETURN_NOT_OK(validator.Init());
  return RunSearch(relation, nullptr, &validator, options.max_lhs, stats,
                   reuse);
}

}  // namespace metaleak
