// Validators: check whether a dependency of each class holds on a relation
// and measure its class-specific parameter (g3 error, fan-out, delta).
//
// Null handling: FD/AFD/ND use the PLI convention (NULL equals NULL). The
// order-based classes (OD, OFD, DD) skip rows with a NULL on either side —
// order comparisons against missing values are undefined.
#ifndef METALEAK_DISCOVERY_VALIDATORS_H_
#define METALEAK_DISCOVERY_VALIDATORS_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "data/encoded_relation.h"
#include "data/relation.h"
#include "metadata/dependency.h"
#include "metadata/dependency_set.h"
#include "partition/attribute_set.h"
#include "partition/pli_cache.h"

namespace metaleak {

/// True iff the strict FD lhs -> rhs holds. Uses (and fills) `cache`.
bool ValidateFd(PliCache* cache, AttributeSet lhs, size_t rhs);

/// g3 error of lhs -> rhs: minimum fraction of rows to delete for the FD
/// to hold (0 iff the strict FD holds).
double ComputeG3(PliCache* cache, AttributeSet lhs, size_t rhs);

/// Minimal fan-out K of the numerical dependency lhs ->(<=K) rhs: the
/// maximum number of distinct rhs values co-occurring with one lhs value.
size_t ComputeMaxFanout(PliCache* cache, size_t lhs, size_t rhs);

/// Multi-attribute fan-out: distinct rhs values per equivalence class of
/// the composite lhs partition.
size_t ComputeMaxFanout(PliCache* cache, AttributeSet lhs, size_t rhs);

/// True iff the order dependency lhs -> rhs holds: for all tuples t, u,
/// t[lhs] <= u[lhs] implies t[rhs] <= u[rhs]. Note this entails equal rhs
/// values on lhs ties, i.e. OD implies FD on the non-null rows.
/// Legacy `Value` path, agreement-tested against the encoded overload.
bool ValidateOd(const Relation& relation, size_t lhs, size_t rhs);

/// OD check on the dictionary-encoded view: codes are order-preserving,
/// so the whole scan runs on packed uint32 pairs.
bool ValidateOd(const EncodedRelation& relation, size_t lhs, size_t rhs);

/// Multi-attribute OD: the LHS orders rows lexicographically by the
/// attributes in ascending index order; rows with a NULL in any involved
/// column are skipped. |lhs| == 1 is exactly the single-attribute check.
bool ValidateOd(const EncodedRelation& relation, AttributeSet lhs,
                size_t rhs);

/// True iff the ordered functional dependency holds: the FD plus strict
/// order preservation (t[lhs] < u[lhs] implies t[rhs] < u[rhs]).
/// Legacy `Value` path, agreement-tested against the encoded overload.
bool ValidateOfd(const Relation& relation, size_t lhs, size_t rhs);

/// OFD check on the encoded view (see the OD overload).
bool ValidateOfd(const EncodedRelation& relation, size_t lhs, size_t rhs);

/// Multi-attribute OFD under the same lexicographic LHS order as the OD
/// overload above.
bool ValidateOfd(const EncodedRelation& relation, AttributeSet lhs,
                 size_t rhs);

/// Minimal delta such that the differential dependency
/// |t[lhs]-u[lhs]| <= eps  =>  |t[rhs]-u[rhs]| <= delta holds over all
/// tuple pairs. Both attributes must be numeric; fails otherwise.
/// Returns 0 when fewer than two non-null rows exist.
Result<double> ComputeMinimalDelta(const Relation& relation, size_t lhs,
                                   size_t rhs, double eps);

/// Minimal delta on the encoded view: numeric decoding happens once per
/// distinct value (dictionary lookup) instead of once per row.
Result<double> ComputeMinimalDelta(const EncodedRelation& relation,
                                   size_t lhs, size_t rhs, double eps);

/// Multi-attribute minimal delta: a pair qualifies when every LHS
/// attribute a_k is within its eps[k] (conjunctive window); `eps` is
/// parallel to lhs.ToIndices(). |lhs| == 1 is exactly the
/// single-attribute sliding-window scan.
Result<double> ComputeMinimalDelta(const EncodedRelation& relation,
                                   AttributeSet lhs,
                                   const std::vector<double>& eps,
                                   size_t rhs);

/// Validates a dependency of any class against `relation`; for
/// parameterized classes the recorded parameter must be satisfied
/// (g3 <= dep.g3_error, fan-out <= dep.max_fanout, minimal delta <=
/// dep.rhs_delta). Fails on out-of-range attribute indices. Handles
/// multi-attribute LHSes for every class.
Result<bool> ValidateDependency(const Relation& relation,
                                const Dependency& dep);

/// Same, over a pre-built encoding (no per-call re-encode).
Result<bool> ValidateDependency(const EncodedRelation& relation,
                                const Dependency& dep);

/// Same, over a caller-owned PLI cache (no per-call cache rebuild; the
/// relation is the cache's encoding). The cheapest form when validating
/// many dependencies against one relation.
Result<bool> ValidateDependency(PliCache* cache, const Dependency& dep);

/// Batch validation: encodes / builds partitions once for the whole set.
/// Element i of the result answers for the i-th dependency of `deps`.
Result<std::vector<bool>> ValidateDependencies(const Relation& relation,
                                               const DependencySet& deps);
Result<std::vector<bool>> ValidateDependencies(
    const EncodedRelation& relation, const DependencySet& deps);

}  // namespace metaleak

#endif  // METALEAK_DISCOVERY_VALIDATORS_H_
