// TANE: level-wise discovery of minimal functional dependencies
// (Huhtala, Kärkkäinen, Porkka, Toivonen — the algorithm the paper cites
// for FD discovery), extended with g3-threshold discovery of approximate
// functional dependencies (Kivinen–Mannila, Section IV-A of the paper).
//
// The search runs on the shared lattice kernel (discovery/lattice.h)
// with an FD/AFD validator: candidates are validated against
// stripped-partition refinement, exact FDs prune with TANE's full C+
// rule, and with max_g3_error > 0 non-exact candidates whose g3 error
// clears the threshold are emitted as AFDs (minimal by subset check).
#ifndef METALEAK_DISCOVERY_TANE_H_
#define METALEAK_DISCOVERY_TANE_H_

#include <cstddef>

#include "common/result.h"
#include "data/encoded_relation.h"
#include "data/relation.h"
#include "discovery/lattice.h"
#include "metadata/dependency_set.h"
#include "partition/pli_cache.h"

namespace metaleak {

struct TaneOptions {
  /// Maximum LHS size searched. Level l of the lattice emits FDs with
  /// |LHS| = l - 1; the default covers LHS sizes 0..3.
  size_t max_lhs_size = 3;
  /// When > 0, additionally emit approximate FDs with 0 < g3 <= this.
  double max_g3_error = 0.0;
  /// Skip FDs with an empty LHS (constant columns) — they are trivia for
  /// the privacy analysis but on by default for completeness.
  bool include_constant_columns = true;
};

struct TaneResult {
  /// Minimal FDs (and AFDs when enabled).
  DependencySet dependencies;
  /// Kernel counters for this search (nodes visited, candidates pruned,
  /// validator invocations, PLI cache hit rate).
  LatticeSearchStats stats;
};

/// Runs TANE on `relation`. Fails when the relation exceeds the 64
/// attribute limit of AttributeSet. Encodes the relation once and runs
/// the code-path search below.
Result<TaneResult> DiscoverFds(const Relation& relation,
                               const TaneOptions& options = {});

/// Runs TANE over a pre-built dictionary encoding: all partitions are
/// constructed from dense codes (counting-style grouping) instead of
/// `Value` hashing. Pipeline entry points that already hold an encoding
/// should call this overload.
Result<TaneResult> DiscoverFds(const EncodedRelation& relation,
                               const TaneOptions& options = {});

/// Runs TANE against a caller-owned PLI cache (the relation is the
/// cache's encoding); partitions built here stay warm for later
/// searches sharing the cache. `reuse` (optional) short-circuits
/// candidates whose prior verdicts are provably unchanged — see
/// LatticeReuse in discovery/lattice.h.
Result<TaneResult> DiscoverFds(PliCache* cache,
                               const TaneOptions& options = {},
                               const LatticeReuse* reuse = nullptr);

}  // namespace metaleak

#endif  // METALEAK_DISCOVERY_TANE_H_
