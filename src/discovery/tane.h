// TANE: level-wise discovery of minimal functional dependencies
// (Huhtala, Kärkkäinen, Porkka, Toivonen — the algorithm the paper cites
// for FD discovery), extended with g3-threshold discovery of approximate
// functional dependencies (Kivinen–Mannila, Section IV-A of the paper).
//
// The search walks the attribute-set lattice level by level, maintaining
// TANE's C+ candidate sets for minimality pruning, and validates
// candidates against stripped-partition refinement. With
// max_g3_error > 0, non-exact candidates whose g3 error clears the
// threshold are emitted as AFDs (minimal by subset check).
#ifndef METALEAK_DISCOVERY_TANE_H_
#define METALEAK_DISCOVERY_TANE_H_

#include <cstddef>

#include "common/result.h"
#include "data/encoded_relation.h"
#include "data/relation.h"
#include "metadata/dependency_set.h"

namespace metaleak {

struct TaneOptions {
  /// Maximum LHS size searched. Level l of the lattice emits FDs with
  /// |LHS| = l - 1; the default covers LHS sizes 0..3.
  size_t max_lhs_size = 3;
  /// When > 0, additionally emit approximate FDs with 0 < g3 <= this.
  double max_g3_error = 0.0;
  /// Skip FDs with an empty LHS (constant columns) — they are trivia for
  /// the privacy analysis but on by default for completeness.
  bool include_constant_columns = true;
};

struct TaneResult {
  /// Minimal FDs (and AFDs when enabled).
  DependencySet dependencies;
  /// Lattice nodes visited — reported by the discovery perf bench.
  size_t nodes_visited = 0;
};

/// Runs TANE on `relation`. Fails when the relation exceeds the 64
/// attribute limit of AttributeSet. Encodes the relation once and runs
/// the code-path search below.
Result<TaneResult> DiscoverFds(const Relation& relation,
                               const TaneOptions& options = {});

/// Runs TANE over a pre-built dictionary encoding: all partitions are
/// constructed from dense codes (counting-style grouping) instead of
/// `Value` hashing. Pipeline entry points that already hold an encoding
/// should call this overload.
Result<TaneResult> DiscoverFds(const EncodedRelation& relation,
                               const TaneOptions& options = {});

}  // namespace metaleak

#endif  // METALEAK_DISCOVERY_TANE_H_
