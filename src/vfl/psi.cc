#include "vfl/psi.h"

#include <algorithm>
#include <unordered_map>

namespace metaleak {

namespace {

// splitmix64 finalizer: mixes the value hash with the session salt so
// tokens from different sessions are unlinkable in the simulation.
uint64_t MixToken(uint64_t h, uint64_t salt) {
  uint64_t x = h ^ (salt + 0x9E3779B97F4A7C15ULL);
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

std::vector<PsiToken> DerivePsiTokens(const std::vector<Value>& ids,
                                      uint64_t session_salt) {
  std::vector<PsiToken> tokens;
  tokens.reserve(ids.size());
  for (const Value& id : ids) {
    tokens.push_back(MixToken(static_cast<uint64_t>(id.Hash()),
                              session_salt));
  }
  return tokens;
}

Result<MultiPsiResult> IntersectAllTokens(
    const std::vector<std::vector<PsiToken>>& streams) {
  if (streams.empty()) {
    return Status::Invalid("PSI needs at least one token stream");
  }
  const size_t parties = streams.size();

  // First occurrence of each token per party (standard PSI
  // post-processing for duplicate identifiers).
  std::vector<std::unordered_map<PsiToken, size_t>> first(parties);
  for (size_t p = 0; p < parties; ++p) {
    first[p].reserve(streams[p].size());
    for (size_t i = 0; i < streams[p].size(); ++i) {
      first[p].emplace(streams[p][i], i);
    }
  }

  // Candidate tokens come from the smallest map; a token survives only if
  // every party holds it.
  size_t smallest = 0;
  for (size_t p = 1; p < parties; ++p) {
    if (first[p].size() < first[smallest].size()) smallest = p;
  }
  std::vector<PsiToken> common;
  common.reserve(first[smallest].size());
  for (const auto& [token, row] : first[smallest]) {
    bool everywhere = true;
    for (size_t p = 0; p < parties && everywhere; ++p) {
      if (p == smallest) continue;
      everywhere = first[p].find(token) != first[p].end();
    }
    if (everywhere) common.push_back(token);
  }

  // Canonical order every party can derive: ascending token.
  std::sort(common.begin(), common.end());

  MultiPsiResult out;
  out.rows.assign(parties, {});
  for (size_t p = 0; p < parties; ++p) {
    out.rows[p].reserve(common.size());
    for (PsiToken token : common) {
      out.rows[p].push_back(first[p].at(token));
    }
  }
  return out;
}

Result<PsiResult> IntersectTokens(const std::vector<PsiToken>& tokens_a,
                                  const std::vector<PsiToken>& tokens_b) {
  METALEAK_ASSIGN_OR_RETURN(MultiPsiResult multi,
                            IntersectAllTokens({tokens_a, tokens_b}));
  PsiResult out;
  out.rows_a = std::move(multi.rows[0]);
  out.rows_b = std::move(multi.rows[1]);
  return out;
}

Result<PsiResult> ComputePsi(const std::vector<Value>& ids_a,
                             const std::vector<Value>& ids_b,
                             uint64_t session_salt) {
  return IntersectTokens(DerivePsiTokens(ids_a, session_salt),
                         DerivePsiTokens(ids_b, session_salt));
}

}  // namespace metaleak
