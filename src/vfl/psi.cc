#include "vfl/psi.h"

#include <algorithm>
#include <unordered_map>

namespace metaleak {

namespace {

// splitmix64 finalizer: mixes the value hash with the session salt so
// tokens from different sessions are unlinkable in the simulation.
uint64_t MixToken(uint64_t h, uint64_t salt) {
  uint64_t x = h ^ (salt + 0x9E3779B97F4A7C15ULL);
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

std::vector<PsiToken> DerivePsiTokens(const std::vector<Value>& ids,
                                      uint64_t session_salt) {
  std::vector<PsiToken> tokens;
  tokens.reserve(ids.size());
  for (const Value& id : ids) {
    tokens.push_back(MixToken(static_cast<uint64_t>(id.Hash()),
                              session_salt));
  }
  return tokens;
}

Result<PsiResult> IntersectTokens(const std::vector<PsiToken>& tokens_a,
                                  const std::vector<PsiToken>& tokens_b) {
  std::unordered_map<PsiToken, size_t> first_a;
  first_a.reserve(tokens_a.size());
  for (size_t i = 0; i < tokens_a.size(); ++i) {
    first_a.emplace(tokens_a[i], i);  // keeps the first occurrence
  }

  struct MatchedPair {
    PsiToken token;
    size_t row_a;
    size_t row_b;
  };
  std::vector<MatchedPair> matched;
  std::unordered_map<PsiToken, bool> used_b;
  for (size_t j = 0; j < tokens_b.size(); ++j) {
    auto it = first_a.find(tokens_b[j]);
    if (it == first_a.end()) continue;
    if (used_b[tokens_b[j]]) continue;  // first occurrence on B's side too
    used_b[tokens_b[j]] = true;
    matched.push_back(MatchedPair{tokens_b[j], it->second, j});
  }

  // Canonical order both parties can derive: ascending token.
  std::sort(matched.begin(), matched.end(),
            [](const MatchedPair& x, const MatchedPair& y) {
              return x.token < y.token;
            });

  PsiResult out;
  out.rows_a.reserve(matched.size());
  out.rows_b.reserve(matched.size());
  for (const MatchedPair& m : matched) {
    out.rows_a.push_back(m.row_a);
    out.rows_b.push_back(m.row_b);
  }
  return out;
}

Result<PsiResult> ComputePsi(const std::vector<Value>& ids_a,
                             const std::vector<Value>& ids_b,
                             uint64_t session_salt) {
  return IntersectTokens(DerivePsiTokens(ids_a, session_salt),
                         DerivePsiTokens(ids_b, session_salt));
}

}  // namespace metaleak
