// Vertical partitioning: turn one relation into a two-party VFL setup.
//
// Testing and experimentation helper: any dataset can be split into two
// vertical slices that share the join key, optionally with per-party row
// subsampling so the PSI intersection is non-trivial.
#ifndef METALEAK_VFL_VERTICAL_SPLIT_H_
#define METALEAK_VFL_VERTICAL_SPLIT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/relation.h"

namespace metaleak {

struct VerticalSplitOptions {
  /// Attributes (by name) assigned to party A; everything else goes to
  /// party B. The key attribute goes to both and must not be listed.
  std::vector<std::string> party_a_attributes;
  /// Name of the join-key attribute present in the source relation, or
  /// empty to synthesize a fresh integer key column named "row_id".
  std::string key_attribute;
  /// Fraction of rows each party observes (subsampled independently).
  double party_a_coverage = 1.0;
  double party_b_coverage = 1.0;
  uint64_t seed = 1;
};

struct VerticalSplit {
  Relation party_a;
  Relation party_b;
  /// Name of the shared key column in both outputs.
  std::string key_attribute;
};

/// Splits `relation` vertically. Fails when a listed attribute does not
/// exist, when the key is listed as a party attribute, or when either
/// side would end up with no feature columns.
Result<VerticalSplit> SplitVertically(const Relation& relation,
                                      const VerticalSplitOptions& options);

}  // namespace metaleak

#endif  // METALEAK_VFL_VERTICAL_SPLIT_H_
