#include "vfl/party.h"

namespace metaleak {

Party::Party(std::string name, Relation data, std::string key_attribute)
    : name_(std::move(name)),
      data_(std::move(data)),
      key_attribute_(std::move(key_attribute)) {}

Result<size_t> Party::KeyIndex() const {
  return data_.schema().RequireIndex(key_attribute_);
}

Result<std::vector<PsiToken>> Party::PsiTokens(uint64_t session_salt) const {
  METALEAK_ASSIGN_OR_RETURN(size_t key, KeyIndex());
  return DerivePsiTokens(data_.column(key), session_salt);
}

Result<MetadataPackage> Party::ShareMetadata(
    DisclosureLevel level, const DiscoveryOptions& options) const {
  METALEAK_ASSIGN_OR_RETURN(size_t key, KeyIndex());
  std::vector<size_t> feature_columns;
  for (size_t c = 0; c < data_.num_columns(); ++c) {
    if (c != key) feature_columns.push_back(c);
  }
  Relation features = data_.Project(feature_columns);
  METALEAK_ASSIGN_OR_RETURN(DiscoveryReport report,
                            ProfileRelation(features, options));
  return report.metadata.Restrict(level);
}

Result<Relation> Party::AlignedFeatures(
    const std::vector<size_t>& rows) const {
  METALEAK_ASSIGN_OR_RETURN(size_t key, KeyIndex());
  std::vector<size_t> feature_columns;
  for (size_t c = 0; c < data_.num_columns(); ++c) {
    if (c != key) feature_columns.push_back(c);
  }
  for (size_t r : rows) {
    if (r >= data_.num_rows()) {
      return Status::OutOfRange("aligned row index out of range");
    }
  }
  return data_.SelectRows(rows).Project(feature_columns);
}

}  // namespace metaleak
