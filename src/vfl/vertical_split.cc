#include "vfl/vertical_split.h"

#include <algorithm>

#include "common/random.h"

namespace metaleak {

Result<VerticalSplit> SplitVertically(const Relation& relation,
                                      const VerticalSplitOptions& options) {
  const size_t m = relation.num_columns();

  // Resolve (or synthesize) the key column.
  Relation source = relation;
  std::string key_name = options.key_attribute;
  if (key_name.empty()) {
    key_name = "row_id";
    if (source.schema().IndexOf(key_name).has_value()) {
      return Status::AlreadyExists(
          "relation already has a row_id attribute; pass key_attribute");
    }
    std::vector<Attribute> attrs = source.schema().attributes();
    attrs.push_back({key_name, DataType::kInt64,
                     SemanticType::kCategorical});
    std::vector<std::vector<Value>> columns;
    columns.reserve(m + 1);
    for (size_t c = 0; c < m; ++c) columns.push_back(source.column(c));
    std::vector<Value> ids;
    ids.reserve(source.num_rows());
    for (size_t r = 0; r < source.num_rows(); ++r) {
      ids.push_back(Value::Int(static_cast<int64_t>(r)));
    }
    columns.push_back(std::move(ids));
    METALEAK_ASSIGN_OR_RETURN(
        source, Relation::Make(Schema(std::move(attrs)),
                               std::move(columns)));
  }
  METALEAK_ASSIGN_OR_RETURN(size_t key_index,
                            source.schema().RequireIndex(key_name));

  // Partition the feature attributes.
  std::vector<size_t> a_columns = {key_index};
  std::vector<size_t> b_columns = {key_index};
  for (const std::string& name : options.party_a_attributes) {
    if (name == key_name) {
      return Status::Invalid("the key attribute belongs to both parties; "
                             "do not list it");
    }
    METALEAK_ASSIGN_OR_RETURN(size_t idx,
                              source.schema().RequireIndex(name));
    a_columns.push_back(idx);
  }
  for (size_t c = 0; c < source.num_columns(); ++c) {
    if (c == key_index) continue;
    if (std::find(a_columns.begin(), a_columns.end(), c) ==
        a_columns.end()) {
      b_columns.push_back(c);
    }
  }
  if (a_columns.size() < 2 || b_columns.size() < 2) {
    return Status::Invalid(
        "each party needs at least one feature attribute");
  }

  // Independent row subsampling per party.
  Rng rng(options.seed);
  auto sample_rows = [&](double coverage) {
    std::vector<size_t> rows;
    for (size_t r = 0; r < source.num_rows(); ++r) {
      if (rng.Bernoulli(std::clamp(coverage, 0.0, 1.0))) {
        rows.push_back(r);
      }
    }
    return rows;
  };

  VerticalSplit out;
  out.key_attribute = key_name;
  out.party_a =
      source.SelectRows(sample_rows(options.party_a_coverage))
          .Project(a_columns);
  out.party_b =
      source.SelectRows(sample_rows(options.party_b_coverage))
          .Project(b_columns);
  return out;
}

}  // namespace metaleak
