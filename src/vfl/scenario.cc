#include "vfl/scenario.h"

namespace metaleak {

Result<ScenarioOutcome> RunScenario(const Party& party_a,
                                    const Party& party_b,
                                    const ScenarioOptions& options) {
  ScenarioOutcome outcome;

  // 1) PSI alignment on hashed identifier tokens.
  METALEAK_ASSIGN_OR_RETURN(std::vector<PsiToken> tokens_a,
                            party_a.PsiTokens(options.psi_salt));
  METALEAK_ASSIGN_OR_RETURN(std::vector<PsiToken> tokens_b,
                            party_b.PsiTokens(options.psi_salt));
  METALEAK_ASSIGN_OR_RETURN(PsiResult psi,
                            IntersectTokens(tokens_a, tokens_b));
  outcome.intersection_size = psi.size();
  if (psi.size() == 0) {
    return Status::Invalid("PSI intersection is empty");
  }

  // 2) Aligned vertical slices.
  METALEAK_ASSIGN_OR_RETURN(Relation slice_a,
                            party_a.AlignedFeatures(psi.rows_a));
  METALEAK_ASSIGN_OR_RETURN(Relation slice_b,
                            party_b.AlignedFeatures(psi.rows_b));

  // 3) Extract labels from party A's slice and drop the label column
  //    from its training features.
  METALEAK_ASSIGN_OR_RETURN(
      size_t label_col, slice_a.schema().RequireIndex(
                            options.label_attribute));
  std::vector<int> labels;
  labels.reserve(slice_a.num_rows());
  for (size_t r = 0; r < slice_a.num_rows(); ++r) {
    const Value& v = slice_a.at(r, label_col);
    labels.push_back(!v.is_null() && v.is_numeric() && v.AsNumeric() >= 0.5
                         ? 1
                         : 0);
  }
  std::vector<size_t> a_feature_cols;
  for (size_t c = 0; c < slice_a.num_columns(); ++c) {
    if (c != label_col) a_feature_cols.push_back(c);
  }
  Relation features_a = slice_a.Project(a_feature_cols);

  // 4) Utility: joint model vs. party A alone.
  METALEAK_ASSIGN_OR_RETURN(
      VflModel joint, TrainVerticalLogisticRegression(
                          features_a, slice_b, labels, options.train));
  METALEAK_ASSIGN_OR_RETURN(
      outcome.joint_accuracy,
      Accuracy(joint, features_a, slice_b, labels));

  // The "no federation" baseline trains party A alone. The trainer wants
  // two row-aligned slices, so B contributes a single constant column
  // that encodes to nothing informative.
  Schema const_schema({{"__const", DataType::kInt64,
                        SemanticType::kCategorical}});
  std::vector<std::vector<Value>> const_col(1);
  const_col[0].assign(features_a.num_rows(), Value::Int(0));
  METALEAK_ASSIGN_OR_RETURN(
      Relation const_b,
      Relation::Make(const_schema, std::move(const_col)));
  METALEAK_ASSIGN_OR_RETURN(
      VflModel solo, TrainVerticalLogisticRegression(
                         features_a, const_b, labels, options.train));
  METALEAK_ASSIGN_OR_RETURN(
      outcome.party_a_only_accuracy,
      Accuracy(solo, features_a, const_b, labels));

  // 5) Privacy: party B shares metadata; party A (the adversary here)
  //    reconstructs B's aligned slice from it.
  METALEAK_ASSIGN_OR_RETURN(
      MetadataPackage shared_b,
      party_b.ShareMetadata(DisclosureLevel::kWithRfds));
  METALEAK_ASSIGN_OR_RETURN(
      outcome.leakage_by_level,
      SweepDisclosureLevels(shared_b, slice_b, options.attack_seed));

  return outcome;
}

}  // namespace metaleak
