#include "vfl/scenario.h"

#include <utility>

#include "vfl/topology.h"

namespace metaleak {

// The original hardcoded two-party pipeline, re-expressed as a 2-node
// FederationTopology: party B disclosing to party A at full level over a
// single edge, with A as the label holder and the per-level sweep driven
// through coalition policy overrides. tests/topology_test.cc pins this
// delegation to the pre-refactor orchestration byte-for-byte.
Result<ScenarioOutcome> RunScenario(const Party& party_a,
                                    const Party& party_b,
                                    const ScenarioOptions& options) {
  FederationTopology topology;
  const size_t a = topology.AddParty(party_a);
  const size_t b = topology.AddParty(party_b);
  METALEAK_RETURN_NOT_OK(topology.AddEdge(
      b, a, MetadataPolicy::AtLevel(DisclosureLevel::kWithRfds)));

  TopologyOptions topo_options;
  topo_options.label_party = a;
  topo_options.label_attribute = options.label_attribute;
  topo_options.psi_salt = options.psi_salt;
  topo_options.attack_seed = options.attack_seed;
  topo_options.train = options.train;

  METALEAK_ASSIGN_OR_RETURN(TopologyAlignment alignment,
                            topology.Align(topo_options));

  ScenarioOutcome outcome;
  outcome.intersection_size = alignment.intersection_size();

  METALEAK_ASSIGN_OR_RETURN(
      UtilityOutcome utility,
      topology.EvaluateUtility(alignment, topo_options));
  outcome.joint_accuracy = utility.joint_accuracy;
  outcome.party_a_only_accuracy = utility.label_party_only_accuracy;

  // Party A as a coalition of one, attacking B at every disclosure level.
  const DisclosureLevel levels[] = {
      DisclosureLevel::kNames,
      DisclosureLevel::kNamesAndDomains,
      DisclosureLevel::kWithFds,
      DisclosureLevel::kWithRfds,
  };
  outcome.leakage_by_level.reserve(4);
  for (DisclosureLevel level : levels) {
    CoalitionSpec spec;
    spec.attackers = {a};
    spec.policy_override = MetadataPolicy::AtLevel(level);
    METALEAK_ASSIGN_OR_RETURN(
        CoalitionOutcome coalition,
        topology.EvaluateCoalition(alignment, spec, topo_options));
    AttackResult result;
    result.level = level;
    result.reconstructed = coalition.reconstructed;
    result.leakage = std::move(coalition.leakage);
    outcome.leakage_by_level.push_back(std::move(result));
  }
  return outcome;
}

}  // namespace metaleak
