// Private set intersection (simulated) for VFL sample alignment.
//
// Before VFL training, parties align their datasets on common entity
// identifiers using PSI so that "the identity of the data tuples is known
// only to the parties involved" (Section II-B). This module simulates the
// protocol shape of a hash-based PSI: each party derives salted tokens
// from its join keys, only tokens cross the boundary, and the output is
// the aligned row index lists. It is not a cryptographic implementation —
// the repository's scope is the privacy analysis of the *metadata* that
// flows after alignment — but the dataflow (no raw identifiers exchanged)
// matches the real protocol.
#ifndef METALEAK_VFL_PSI_H_
#define METALEAK_VFL_PSI_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "data/value.h"

namespace metaleak {

/// Salted identifier token. Both parties derive tokens with the same
/// session salt, so equal identifiers produce equal tokens.
using PsiToken = uint64_t;

/// Derives the token stream of one party's join-key column.
std::vector<PsiToken> DerivePsiTokens(const std::vector<Value>& ids,
                                      uint64_t session_salt);

struct PsiResult {
  /// Row indices into party A's / party B's relation; rows_a[i] and
  /// rows_b[i] refer to the same entity. Ordered by token value, which is
  /// a canonical order both parties can compute independently.
  std::vector<size_t> rows_a;
  std::vector<size_t> rows_b;

  size_t size() const { return rows_a.size(); }
};

/// N-party alignment: rows[p][i] is the row of party p matching entity i.
/// Entities are the tokens present in every party's stream, in ascending
/// token order (the same canonical order as PsiResult).
struct MultiPsiResult {
  std::vector<std::vector<size_t>> rows;

  size_t num_parties() const { return rows.size(); }
  size_t size() const { return rows.empty() ? 0 : rows[0].size(); }
};

/// Intersects N token streams. Duplicate identifiers within one party
/// keep their first occurrence (standard PSI post-processing); for two
/// streams this reduces exactly to IntersectTokens.
Result<MultiPsiResult> IntersectAllTokens(
    const std::vector<std::vector<PsiToken>>& streams);

/// Intersects two token streams. Duplicate identifiers within one party
/// keep their first occurrence (standard PSI post-processing).
Result<PsiResult> IntersectTokens(const std::vector<PsiToken>& tokens_a,
                                  const std::vector<PsiToken>& tokens_b);

/// Convenience: tokenizes both key columns and intersects.
Result<PsiResult> ComputePsi(const std::vector<Value>& ids_a,
                             const std::vector<Value>& ids_b,
                             uint64_t session_salt);

}  // namespace metaleak

#endif  // METALEAK_VFL_PSI_H_
