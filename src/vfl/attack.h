// AdversarySimulator: what a curious VFL participant can do with the
// metadata it received.
//
// The adversary holds a MetadataPackage from the counterpart and the
// aligned row count (known after PSI). It reconstructs a synthetic
// relation and — for evaluation purposes only — the simulator scores the
// reconstruction against the real aligned slice with the paper's leakage
// definitions.
#ifndef METALEAK_VFL_ATTACK_H_
#define METALEAK_VFL_ATTACK_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "data/relation.h"
#include "generation/generation_engine.h"
#include "metadata/metadata_package.h"
#include "privacy/leakage.h"

namespace metaleak {

struct AttackResult {
  DisclosureLevel level = DisclosureLevel::kNames;
  /// Whether reconstruction was possible at all (it is not below the
  /// names+domains level: without domains there is nothing to sample).
  bool reconstructed = false;
  LeakageReport leakage;
};

/// Reconstructs R_syn from `received` metadata and scores it against the
/// real aligned slice. Returns Invalid when the package lacks domains.
Result<LeakageReport> SimulateReconstruction(
    const MetadataPackage& received, const Relation& real_aligned,
    uint64_t seed, const GenerationOptions& options = {});

/// Runs the reconstruction at every disclosure level (restricting
/// `full_metadata` each time) and reports leakage per level. Levels
/// below names+domains yield reconstructed=false with empty leakage.
Result<std::vector<AttackResult>> SweepDisclosureLevels(
    const MetadataPackage& full_metadata, const Relation& real_aligned,
    uint64_t seed);

}  // namespace metaleak

#endif  // METALEAK_VFL_ATTACK_H_
