// Party: one VFL participant holding a vertical data slice.
#ifndef METALEAK_VFL_PARTY_H_
#define METALEAK_VFL_PARTY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/relation.h"
#include "discovery/discovery_engine.h"
#include "metadata/metadata_package.h"
#include "vfl/psi.h"

namespace metaleak {

class Party {
 public:
  /// `key_attribute` names the join-key column used for PSI alignment.
  Party(std::string name, Relation data, std::string key_attribute);

  const std::string& name() const { return name_; }
  const Relation& data() const { return data_; }
  const std::string& key_attribute() const { return key_attribute_; }

  /// Index of the join-key attribute; KeyError if absent.
  Result<size_t> KeyIndex() const;

  /// Salted PSI tokens over the key column.
  Result<std::vector<PsiToken>> PsiTokens(uint64_t session_salt) const;

  /// Profiles the local relation *excluding the join key* (identifiers
  /// are never described in shared metadata) and restricts the result to
  /// the requested disclosure level.
  Result<MetadataPackage> ShareMetadata(
      DisclosureLevel level,
      const DiscoveryOptions& options = DiscoveryOptions()) const;

  /// The relation without its key column, rows restricted to `rows` in
  /// that order (the post-PSI aligned view used for training and for
  /// leakage evaluation).
  Result<Relation> AlignedFeatures(const std::vector<size_t>& rows) const;

 private:
  std::string name_;
  Relation data_;
  std::string key_attribute_;
};

}  // namespace metaleak

#endif  // METALEAK_VFL_PARTY_H_
