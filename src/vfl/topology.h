// FederationTopology: the paper's two-party exchange generalized to an
// N-party scenario graph.
//
// Nodes are Party objects; directed edges are metadata disclosures, each
// governed by a MetadataPolicy (disclosure level + dependency filter +
// defense transforms). On top of the graph:
//
//   * Align()              — multi-party PSI over all N key columns, the
//                            aligned vertical slices, label extraction,
//                            and one full-level metadata profile per
//                            disclosing party (per-edge policies restrict
//                            that one profile, so a party is profiled
//                            once no matter how many edges it has).
//   * EvaluateUtility()    — N-party vertical LR accuracy of the
//                            federation vs the label holder alone. A
//                            party participates when its edge to the
//                            label holder discloses at least
//                            names+domains; its slice enters training
//                            through the edge policy's data-side
//                            transforms (the utility cost of a defense).
//   * EvaluateCoalition()  — a set of curious parties pools every
//                            package it received about the victims into
//                            one joint MetadataPackage (union per victim
//                            across edges, disjoint concat across
//                            victims) and reconstructs the union of the
//                            victim slices: single-shot leakage plus an
//                            optional streamed Monte-Carlo summary.
//   * SweepPolicyPareto()  — re-runs utility + coalition leakage under a
//                            list of candidate policies and marks the
//                            non-dominated (accuracy up, leakage down)
//                            frontier.
//
// A 2-node topology with a full-disclosure edge reproduces the original
// RunScenario pipeline bit-identically (scenario.cc now delegates here;
// the golden parity test in tests/topology_test.cc holds both paths to
// byte equality).
#ifndef METALEAK_VFL_TOPOLOGY_H_
#define METALEAK_VFL_TOPOLOGY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "discovery/discovery_engine.h"
#include "metadata/metadata_package.h"
#include "metadata/metadata_policy.h"
#include "privacy/coalition.h"
#include "privacy/leakage.h"
#include "vfl/logistic_regression.h"
#include "vfl/party.h"
#include "vfl/psi.h"

namespace metaleak {

struct TopologyEdge {
  size_t from = 0;  // discloser
  size_t to = 0;    // receiver
  MetadataPolicy policy;
};

struct TopologyOptions {
  /// Which party holds the 0/1 training label, and in which attribute.
  size_t label_party = 0;
  std::string label_attribute = "loan_default";
  uint64_t psi_salt = 0xA11CE;
  uint64_t attack_seed = 99;
  VflTrainOptions train;
  /// Profiling options for each discloser's full-level package.
  DiscoveryOptions discovery;
  /// Monte-Carlo rounds per coalition evaluation; <= 1 keeps only the
  /// single-shot reconstruction at attack_seed.
  size_t attack_rounds = 1;
  /// Threads + seed for the Monte-Carlo rounds (ExperimentEngine).
  size_t threads = 1;
  uint64_t experiment_seed = 20240001;
  LeakageOptions leakage;
};

/// An attacker set plus the victims it targets.
struct CoalitionSpec {
  std::vector<size_t> attackers;
  /// Empty = every non-attacker that disclosed to a coalition member.
  std::vector<size_t> victims;
  /// When set, replaces the per-edge policies on every package the
  /// coalition received (the disclosure-level sweep and the Pareto sweep
  /// drive this).
  std::optional<MetadataPolicy> policy_override;
};

/// Everything Align() resolves once per topology run.
struct TopologyAlignment {
  MultiPsiResult psi;
  /// Per party: the key-free slice restricted to the aligned rows.
  std::vector<Relation> aligned;
  std::vector<int> labels;
  /// The label party's aligned slice minus the label column.
  Relation label_features;
  /// Per party: full-level metadata profile (kWithDistributions), present
  /// for parties with at least one outgoing edge.
  std::vector<std::optional<MetadataPackage>> profiles;

  size_t intersection_size() const { return psi.size(); }
};

struct UtilityOutcome {
  double joint_accuracy = 0.0;
  double label_party_only_accuracy = 0.0;
  /// Parties whose slices entered joint training (includes label party).
  std::vector<size_t> participants;
};

struct CoalitionOutcome {
  std::vector<size_t> attackers;
  std::vector<size_t> victims;
  /// The coalition's merged view of all victim slices.
  MetadataPackage joint;
  /// Column-concatenation of the victim slices (names disambiguated with
  /// a "party." prefix only when they collide across victims).
  Relation victim_union;
  bool reconstructed = false;
  /// Single-shot reconstruction at TopologyOptions::attack_seed.
  LeakageReport leakage;
  /// Streamed Monte-Carlo summary; present when attack_rounds > 1.
  std::optional<CoalitionLeakageSummary> monte_carlo;
};

class FederationTopology {
 public:
  /// Returns the party's index in the topology.
  size_t AddParty(Party party);

  Status AddEdge(size_t from, size_t to, MetadataPolicy policy);

  size_t num_parties() const { return parties_.size(); }
  const Party& party(size_t i) const { return parties_[i]; }
  const std::vector<TopologyEdge>& edges() const { return edges_; }

  /// PSI + slices + labels + profiles. Fails when the intersection is
  /// empty or the label attribute is missing.
  Result<TopologyAlignment> Align(const TopologyOptions& options) const;

  /// Joint N-party accuracy vs the label party alone.
  Result<UtilityOutcome> EvaluateUtility(const TopologyAlignment& alignment,
                                         const TopologyOptions& options) const;

  /// Same, but with `override_policy` governing the training
  /// participation of every party in `override_parties` instead of its
  /// edge to the label holder (the Pareto sweep couples the attacked
  /// policy to its utility cost this way).
  Result<UtilityOutcome> EvaluateUtility(
      const TopologyAlignment& alignment, const TopologyOptions& options,
      const std::vector<size_t>& override_parties,
      const MetadataPolicy& override_policy) const;

  /// Coalition reconstruction of the victims' slices from the pooled
  /// received metadata.
  Result<CoalitionOutcome> EvaluateCoalition(
      const TopologyAlignment& alignment, const CoalitionSpec& spec,
      const TopologyOptions& options) const;

 private:
  Result<UtilityOutcome> EvaluateUtilityImpl(
      const TopologyAlignment& alignment, const TopologyOptions& options,
      const std::vector<size_t>& override_parties,
      const MetadataPolicy* override_policy) const;

  std::vector<Party> parties_;
  std::vector<TopologyEdge> edges_;
};

/// One policy point of the utility-vs-leakage trade-off.
struct ParetoPoint {
  std::string policy_name;
  double joint_accuracy = 0.0;
  bool reconstructed = false;
  /// Mean Def 2.2/2.3 match rate over all victim attributes (Monte-Carlo
  /// mean when attack_rounds > 1, single-shot otherwise); 0 when the
  /// policy prevents reconstruction entirely.
  double leakage_rate = 0.0;
  std::optional<double> mean_mse;
  /// Mean over victim attributes of the info-theoretic estimator's
  /// real-vs-generated mutual information (bits); present only when the
  /// point ran Monte-Carlo rounds (attack_rounds > 1) on the encoded
  /// path. Treated as 0 bits by the frontier when absent.
  std::optional<double> mi_leakage_bits;
  /// True when no other point has >= accuracy, <= leakage and
  /// <= MI-leakage with at least one strict.
  bool on_frontier = false;
};

/// Evaluates every policy as the override for `coalition`'s received
/// packages (and as the victims' training policy on the utility side),
/// then marks the Pareto frontier.
Result<std::vector<ParetoPoint>> SweepPolicyPareto(
    const FederationTopology& topology, const TopologyOptions& options,
    const CoalitionSpec& coalition,
    const std::vector<MetadataPolicy>& policies);

/// Marks `on_frontier` on the non-dominated points (accuracy maximized,
/// match-rate leakage and MI leakage minimized — absent MI counts as 0
/// bits). Ties survive: only strict domination removes a point.
void MarkParetoFrontier(std::vector<ParetoPoint>* points);

}  // namespace metaleak

#endif  // METALEAK_VFL_TOPOLOGY_H_
