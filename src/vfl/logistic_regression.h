// Vertical logistic regression over two aligned feature slices.
//
// The utility side of the paper's trade-off: metadata exchange exists to
// make this model trainable across silos. The trainer mirrors the VFL
// dataflow — each party computes partial scores over its own features,
// only per-row partial scores and residuals are exchanged (never raw
// features) — with plain floats standing in for the homomorphic
// encryption of production systems (SecureBoost / BlindFL style).
#ifndef METALEAK_VFL_LOGISTIC_REGRESSION_H_
#define METALEAK_VFL_LOGISTIC_REGRESSION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/relation.h"
#include "data/value.h"

namespace metaleak {

/// Dense row-major numeric matrix.
struct FeatureMatrix {
  std::vector<double> data;
  size_t num_rows = 0;
  size_t num_features = 0;

  double At(size_t row, size_t col) const {
    return data[row * num_features + col];
  }
};

/// Fits an encoding of a relation into numeric features: numeric
/// attributes are standardized (NULL imputed with the mean), categorical
/// attributes one-hot encoded over the categories seen at fit time
/// (unseen categories at transform time encode as all-zeros).
class FeatureEncoder {
 public:
  FeatureEncoder() = default;

  static Result<FeatureEncoder> Fit(const Relation& relation);

  Result<FeatureMatrix> Transform(const Relation& relation) const;

  size_t num_features() const { return num_features_; }

 private:
  struct AttributeEncoding {
    std::string name;
    bool numeric = true;
    double mean = 0.0;    // numeric: imputation + centering
    double stddev = 1.0;  // numeric: scaling
    std::vector<Value> categories;  // categorical: one-hot order
  };
  std::vector<AttributeEncoding> attributes_;
  size_t num_features_ = 0;
};

struct VflTrainOptions {
  size_t epochs = 200;
  double learning_rate = 0.1;
  double l2 = 1e-4;
  uint64_t seed = 11;
};

struct VflModel {
  FeatureEncoder encoder_a;
  FeatureEncoder encoder_b;
  std::vector<double> weights_a;
  std::vector<double> weights_b;
  double bias = 0.0;
  /// Training log-loss per epoch (for convergence tests).
  std::vector<double> loss_history;
};

/// N-party model: one encoder + weight vector per vertical slice, in the
/// federation's party order.
struct VflModelN {
  std::vector<FeatureEncoder> encoders;
  std::vector<std::vector<double>> weights;
  double bias = 0.0;
  std::vector<double> loss_history;
};

/// Trains vertical logistic regression over N aligned slices. Same
/// dataflow as the two-party trainer — each party computes partial scores
/// locally, the label holder combines them and broadcasts residuals —
/// with weights initialized and updated slice-by-slice in party order, so
/// for two slices the arithmetic (and hence the model) is bit-identical
/// to TrainVerticalLogisticRegression.
Result<VflModelN> TrainVerticalLogisticRegressionN(
    const std::vector<const Relation*>& slices,
    const std::vector<int>& labels, const VflTrainOptions& options = {});

/// Per-row P(y=1) under an N-party model.
Result<std::vector<double>> PredictProbabilitiesN(
    const VflModelN& model, const std::vector<const Relation*>& slices);

/// Classification accuracy of an N-party model at threshold 0.5.
Result<double> AccuracyN(const VflModelN& model,
                         const std::vector<const Relation*>& slices,
                         const std::vector<int>& labels);

/// Trains vertical logistic regression with full-batch gradient descent.
/// `labels` (0/1) are index-aligned with the rows of both feature
/// relations; party A is the label holder. Thin wrapper over the N-party
/// trainer with slices {A, B}.
Result<VflModel> TrainVerticalLogisticRegression(
    const Relation& features_a, const Relation& features_b,
    const std::vector<int>& labels, const VflTrainOptions& options = {});

/// Per-row P(y=1) under the trained model.
Result<std::vector<double>> PredictProbabilities(const VflModel& model,
                                                 const Relation& features_a,
                                                 const Relation& features_b);

/// Classification accuracy at threshold 0.5.
Result<double> Accuracy(const VflModel& model, const Relation& features_a,
                        const Relation& features_b,
                        const std::vector<int>& labels);

}  // namespace metaleak

#endif  // METALEAK_VFL_LOGISTIC_REGRESSION_H_
