// VflScenario: the full Figure-1 pipeline as one orchestrated object.
//
// Two parties -> PSI alignment -> metadata exchange at a chosen
// disclosure level -> vertical model training (utility) -> adversarial
// reconstruction from the received metadata (privacy). The E5 bench and
// the fintech example drive this end to end.
#ifndef METALEAK_VFL_SCENARIO_H_
#define METALEAK_VFL_SCENARIO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "vfl/attack.h"
#include "vfl/logistic_regression.h"
#include "vfl/party.h"
#include "vfl/psi.h"

namespace metaleak {

struct ScenarioOptions {
  /// Attribute of party A holding the 0/1 training label.
  std::string label_attribute = "loan_default";
  uint64_t psi_salt = 0xA11CE;
  uint64_t attack_seed = 99;
  VflTrainOptions train;
};

struct ScenarioOutcome {
  size_t intersection_size = 0;
  /// Utility: training accuracy of the joint model, and of party A alone
  /// (so the benefit of federation is visible).
  double joint_accuracy = 0.0;
  double party_a_only_accuracy = 0.0;
  /// Privacy: leakage of party B's slice per disclosure level, measured
  /// on the aligned rows.
  std::vector<AttackResult> leakage_by_level;
};

/// Runs the full pipeline between `party_a` (label holder / adversary)
/// and `party_b` (metadata discloser).
Result<ScenarioOutcome> RunScenario(const Party& party_a,
                                    const Party& party_b,
                                    const ScenarioOptions& options = {});

}  // namespace metaleak

#endif  // METALEAK_VFL_SCENARIO_H_
