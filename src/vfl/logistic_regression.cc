#include "vfl/logistic_regression.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <utility>

#include "common/random.h"

namespace metaleak {

namespace {

double Sigmoid(double z) { return 1.0 / (1.0 + std::exp(-z)); }

}  // namespace

Result<FeatureEncoder> FeatureEncoder::Fit(const Relation& relation) {
  FeatureEncoder encoder;
  for (size_t c = 0; c < relation.num_columns(); ++c) {
    const Attribute& attr = relation.schema().attribute(c);
    AttributeEncoding enc;
    enc.name = attr.name;
    const std::vector<Value>& col = relation.column(c);
    bool numeric = attr.semantic == SemanticType::kContinuous;
    enc.numeric = numeric;
    if (numeric) {
      double sum = 0.0;
      size_t n = 0;
      for (const Value& v : col) {
        if (v.is_null() || !v.is_numeric()) continue;
        sum += v.AsNumeric();
        ++n;
      }
      enc.mean = n == 0 ? 0.0 : sum / static_cast<double>(n);
      double var = 0.0;
      for (const Value& v : col) {
        if (v.is_null() || !v.is_numeric()) continue;
        double d = v.AsNumeric() - enc.mean;
        var += d * d;
      }
      enc.stddev = n < 2 ? 1.0 : std::sqrt(var / static_cast<double>(n - 1));
      if (enc.stddev < 1e-12) enc.stddev = 1.0;
      encoder.num_features_ += 1;
    } else {
      std::unordered_set<Value> seen;
      for (const Value& v : col) {
        if (v.is_null()) continue;
        if (seen.insert(v).second) enc.categories.push_back(v);
      }
      std::sort(enc.categories.begin(), enc.categories.end());
      encoder.num_features_ += enc.categories.size();
    }
    encoder.attributes_.push_back(std::move(enc));
  }
  return encoder;
}

Result<FeatureMatrix> FeatureEncoder::Transform(
    const Relation& relation) const {
  if (relation.num_columns() != attributes_.size()) {
    return Status::Invalid("relation arity does not match encoder");
  }
  FeatureMatrix out;
  out.num_rows = relation.num_rows();
  out.num_features = num_features_;
  out.data.assign(out.num_rows * out.num_features, 0.0);

  for (size_t r = 0; r < out.num_rows; ++r) {
    size_t f = 0;
    for (size_t c = 0; c < attributes_.size(); ++c) {
      const AttributeEncoding& enc = attributes_[c];
      const Value& v = relation.at(r, c);
      if (enc.numeric) {
        double x = (v.is_null() || !v.is_numeric()) ? enc.mean
                                                    : v.AsNumeric();
        out.data[r * out.num_features + f] = (x - enc.mean) / enc.stddev;
        f += 1;
      } else {
        if (!v.is_null()) {
          auto it = std::lower_bound(enc.categories.begin(),
                                     enc.categories.end(), v);
          if (it != enc.categories.end() && *it == v) {
            size_t offset =
                static_cast<size_t>(it - enc.categories.begin());
            out.data[r * out.num_features + f + offset] = 1.0;
          }
        }
        f += enc.categories.size();
      }
    }
  }
  return out;
}

namespace {

// Partial scores one party computes locally: X * w.
void PartialScores(const FeatureMatrix& x, const std::vector<double>& w,
                   std::vector<double>* out) {
  out->assign(x.num_rows, 0.0);
  for (size_t r = 0; r < x.num_rows; ++r) {
    double acc = 0.0;
    for (size_t f = 0; f < x.num_features; ++f) {
      acc += x.At(r, f) * w[f];
    }
    (*out)[r] = acc;
  }
}

// Local gradient given the exchanged residuals: X^T * residual / n.
void LocalGradient(const FeatureMatrix& x,
                   const std::vector<double>& residuals, double l2,
                   const std::vector<double>& w, std::vector<double>* grad) {
  grad->assign(x.num_features, 0.0);
  for (size_t r = 0; r < x.num_rows; ++r) {
    for (size_t f = 0; f < x.num_features; ++f) {
      (*grad)[f] += x.At(r, f) * residuals[r];
    }
  }
  double inv_n = 1.0 / static_cast<double>(std::max<size_t>(1, x.num_rows));
  for (size_t f = 0; f < x.num_features; ++f) {
    (*grad)[f] = (*grad)[f] * inv_n + l2 * w[f];
  }
}

}  // namespace

Result<VflModelN> TrainVerticalLogisticRegressionN(
    const std::vector<const Relation*>& slices,
    const std::vector<int>& labels, const VflTrainOptions& options) {
  if (slices.empty()) {
    return Status::Invalid("training needs at least one feature slice");
  }
  for (const Relation* slice : slices) {
    if (slice == nullptr) {
      return Status::Invalid("feature slice is null");
    }
    if (slice->num_rows() != labels.size()) {
      return Status::Invalid(
          "feature slices and labels must be row-aligned");
    }
  }
  if (labels.empty()) {
    return Status::Invalid("cannot train on an empty dataset");
  }
  for (int y : labels) {
    if (y != 0 && y != 1) {
      return Status::Invalid("labels must be 0/1");
    }
  }

  const size_t parties = slices.size();
  VflModelN model;
  model.encoders.reserve(parties);
  std::vector<FeatureMatrix> x(parties);
  for (size_t s = 0; s < parties; ++s) {
    METALEAK_ASSIGN_OR_RETURN(FeatureEncoder encoder,
                              FeatureEncoder::Fit(*slices[s]));
    METALEAK_ASSIGN_OR_RETURN(x[s], encoder.Transform(*slices[s]));
    model.encoders.push_back(std::move(encoder));
  }

  // Weights drawn slice-by-slice in party order from one stream: for two
  // slices this is the exact draw sequence of the two-party trainer.
  Rng rng(options.seed);
  model.weights.resize(parties);
  for (size_t s = 0; s < parties; ++s) {
    model.weights[s].resize(x[s].num_features);
    for (double& w : model.weights[s]) w = rng.Normal(0.0, 0.01);
  }

  const size_t n = labels.size();
  std::vector<std::vector<double>> scores(parties);
  std::vector<double> residuals(n);
  std::vector<double> grad;

  for (size_t epoch = 0; epoch < options.epochs; ++epoch) {
    // Each party computes partial scores locally; the label holder
    // combines them, forms residuals, and sends residuals back — the
    // only per-row quantities crossing the boundary.
    for (size_t s = 0; s < parties; ++s) {
      PartialScores(x[s], model.weights[s], &scores[s]);
    }

    double loss = 0.0;
    double bias_grad = 0.0;
    for (size_t r = 0; r < n; ++r) {
      // Summed in ascending party order, bias last: the two-slice case
      // evaluates ((score_a + score_b) + bias), bit-identical to the
      // original two-party loop.
      double z = scores[0][r];
      for (size_t s = 1; s < parties; ++s) z += scores[s][r];
      z += model.bias;
      double p = Sigmoid(z);
      double y = static_cast<double>(labels[r]);
      residuals[r] = p - y;
      bias_grad += residuals[r];
      // Numerically stable log-loss.
      loss += std::max(z, 0.0) - z * y + std::log1p(std::exp(-std::abs(z)));
    }
    model.loss_history.push_back(loss / static_cast<double>(n));

    for (size_t s = 0; s < parties; ++s) {
      LocalGradient(x[s], residuals, options.l2, model.weights[s], &grad);
      for (size_t f = 0; f < x[s].num_features; ++f) {
        model.weights[s][f] -= options.learning_rate * grad[f];
      }
    }
    model.bias -=
        options.learning_rate * bias_grad / static_cast<double>(n);
  }
  return model;
}

Result<std::vector<double>> PredictProbabilitiesN(
    const VflModelN& model, const std::vector<const Relation*>& slices) {
  if (slices.size() != model.encoders.size() ||
      slices.size() != model.weights.size() || slices.empty()) {
    return Status::Invalid("slice count does not match the model");
  }
  for (const Relation* slice : slices) {
    if (slice == nullptr) {
      return Status::Invalid("feature slice is null");
    }
    if (slice->num_rows() != slices[0]->num_rows()) {
      return Status::Invalid("feature slices must be row-aligned");
    }
  }
  const size_t parties = slices.size();
  std::vector<std::vector<double>> scores(parties);
  for (size_t s = 0; s < parties; ++s) {
    METALEAK_ASSIGN_OR_RETURN(FeatureMatrix xs,
                              model.encoders[s].Transform(*slices[s]));
    PartialScores(xs, model.weights[s], &scores[s]);
  }
  const size_t n = slices[0]->num_rows();
  std::vector<double> out(n);
  for (size_t r = 0; r < n; ++r) {
    double z = scores[0][r];
    for (size_t s = 1; s < parties; ++s) z += scores[s][r];
    out[r] = Sigmoid(z + model.bias);
  }
  return out;
}

Result<double> AccuracyN(const VflModelN& model,
                         const std::vector<const Relation*>& slices,
                         const std::vector<int>& labels) {
  METALEAK_ASSIGN_OR_RETURN(std::vector<double> probs,
                            PredictProbabilitiesN(model, slices));
  if (probs.size() != labels.size()) {
    return Status::Invalid("labels not aligned with features");
  }
  if (labels.empty()) return 0.0;
  size_t correct = 0;
  for (size_t r = 0; r < labels.size(); ++r) {
    int pred = probs[r] >= 0.5 ? 1 : 0;
    if (pred == labels[r]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(labels.size());
}

Result<VflModel> TrainVerticalLogisticRegression(
    const Relation& features_a, const Relation& features_b,
    const std::vector<int>& labels, const VflTrainOptions& options) {
  if (features_a.num_rows() != features_b.num_rows()) {
    return Status::Invalid("feature slices and labels must be row-aligned");
  }
  METALEAK_ASSIGN_OR_RETURN(
      VflModelN n, TrainVerticalLogisticRegressionN(
                       {&features_a, &features_b}, labels, options));
  VflModel model;
  model.encoder_a = std::move(n.encoders[0]);
  model.encoder_b = std::move(n.encoders[1]);
  model.weights_a = std::move(n.weights[0]);
  model.weights_b = std::move(n.weights[1]);
  model.bias = n.bias;
  model.loss_history = std::move(n.loss_history);
  return model;
}

Result<std::vector<double>> PredictProbabilities(
    const VflModel& model, const Relation& features_a,
    const Relation& features_b) {
  if (features_a.num_rows() != features_b.num_rows()) {
    return Status::Invalid("feature slices must be row-aligned");
  }
  METALEAK_ASSIGN_OR_RETURN(FeatureMatrix xa,
                            model.encoder_a.Transform(features_a));
  METALEAK_ASSIGN_OR_RETURN(FeatureMatrix xb,
                            model.encoder_b.Transform(features_b));
  std::vector<double> score_a;
  std::vector<double> score_b;
  PartialScores(xa, model.weights_a, &score_a);
  PartialScores(xb, model.weights_b, &score_b);
  std::vector<double> out(xa.num_rows);
  for (size_t r = 0; r < xa.num_rows; ++r) {
    out[r] = Sigmoid(score_a[r] + score_b[r] + model.bias);
  }
  return out;
}

Result<double> Accuracy(const VflModel& model, const Relation& features_a,
                        const Relation& features_b,
                        const std::vector<int>& labels) {
  METALEAK_ASSIGN_OR_RETURN(
      std::vector<double> probs,
      PredictProbabilities(model, features_a, features_b));
  if (probs.size() != labels.size()) {
    return Status::Invalid("labels not aligned with features");
  }
  if (labels.empty()) return 0.0;
  size_t correct = 0;
  for (size_t r = 0; r < labels.size(); ++r) {
    int pred = probs[r] >= 0.5 ? 1 : 0;
    if (pred == labels[r]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(labels.size());
}

}  // namespace metaleak
