#include "vfl/topology.h"

#include <algorithm>
#include <utility>

#include "vfl/attack.h"

namespace metaleak {

namespace {

bool ContainsIndex(const std::vector<size_t>& sorted, size_t value) {
  return std::binary_search(sorted.begin(), sorted.end(), value);
}

std::vector<size_t> SortedUnique(std::vector<size_t> values) {
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  return values;
}

// Aggregate Def 2.2/2.3 rate of one single-shot report: matches over
// compared rows across every attribute.
double ReportMatchRate(const LeakageReport& report) {
  double matches = 0.0, rows = 0.0;
  for (const AttributeLeakage& a : report.attributes) {
    matches += static_cast<double>(a.matches);
    rows += static_cast<double>(a.rows_compared);
  }
  return rows > 0.0 ? matches / rows : 0.0;
}

std::optional<double> ReportMeanMse(const LeakageReport& report) {
  double sum = 0.0;
  size_t count = 0;
  for (const AttributeLeakage& a : report.attributes) {
    if (a.mse.has_value()) {
      sum += *a.mse;
      ++count;
    }
  }
  if (count == 0) return std::nullopt;
  return sum / static_cast<double>(count);
}

}  // namespace

size_t FederationTopology::AddParty(Party party) {
  parties_.push_back(std::move(party));
  return parties_.size() - 1;
}

Status FederationTopology::AddEdge(size_t from, size_t to,
                                   MetadataPolicy policy) {
  if (from >= parties_.size() || to >= parties_.size()) {
    return Status::Invalid("edge endpoint out of range");
  }
  if (from == to) {
    return Status::Invalid("a party does not disclose metadata to itself");
  }
  edges_.push_back(TopologyEdge{from, to, std::move(policy)});
  return Status::OK();
}

Result<TopologyAlignment> FederationTopology::Align(
    const TopologyOptions& options) const {
  if (parties_.size() < 2) {
    return Status::Invalid("a federation needs at least two parties");
  }
  if (options.label_party >= parties_.size()) {
    return Status::Invalid("label_party out of range");
  }

  TopologyAlignment out;

  // 1) Multi-party PSI alignment on hashed identifier tokens.
  std::vector<std::vector<PsiToken>> streams;
  streams.reserve(parties_.size());
  for (const Party& party : parties_) {
    METALEAK_ASSIGN_OR_RETURN(std::vector<PsiToken> tokens,
                              party.PsiTokens(options.psi_salt));
    streams.push_back(std::move(tokens));
  }
  METALEAK_ASSIGN_OR_RETURN(out.psi, IntersectAllTokens(streams));
  if (out.psi.size() == 0) {
    return Status::Invalid("PSI intersection is empty");
  }

  // 2) Aligned vertical slices.
  out.aligned.reserve(parties_.size());
  for (size_t p = 0; p < parties_.size(); ++p) {
    METALEAK_ASSIGN_OR_RETURN(Relation slice,
                              parties_[p].AlignedFeatures(out.psi.rows[p]));
    out.aligned.push_back(std::move(slice));
  }

  // 3) Labels from the label party's slice; its training features drop
  //    the label column.
  const Relation& label_slice = out.aligned[options.label_party];
  METALEAK_ASSIGN_OR_RETURN(
      size_t label_col,
      label_slice.schema().RequireIndex(options.label_attribute));
  out.labels.reserve(label_slice.num_rows());
  for (size_t r = 0; r < label_slice.num_rows(); ++r) {
    const Value& v = label_slice.at(r, label_col);
    out.labels.push_back(
        !v.is_null() && v.is_numeric() && v.AsNumeric() >= 0.5 ? 1 : 0);
  }
  std::vector<size_t> feature_cols;
  for (size_t c = 0; c < label_slice.num_columns(); ++c) {
    if (c != label_col) feature_cols.push_back(c);
  }
  out.label_features = label_slice.Project(feature_cols);

  // 4) One full-level profile per disclosing party; every edge policy
  //    restricts this single package.
  out.profiles.assign(parties_.size(), std::nullopt);
  for (const TopologyEdge& edge : edges_) {
    if (out.profiles[edge.from].has_value()) continue;
    METALEAK_ASSIGN_OR_RETURN(
        MetadataPackage profile,
        parties_[edge.from].ShareMetadata(
            DisclosureLevel::kWithDistributions, options.discovery));
    out.profiles[edge.from] = std::move(profile);
  }
  return out;
}

Result<UtilityOutcome> FederationTopology::EvaluateUtilityImpl(
    const TopologyAlignment& alignment, const TopologyOptions& options,
    const std::vector<size_t>& override_parties,
    const MetadataPolicy* override_policy) const {
  const std::vector<size_t> overridden = SortedUnique(override_parties);

  UtilityOutcome out;
  // Transformed slices are materialized first so the pointer list handed
  // to the trainer stays stable.
  std::vector<Relation> transformed;
  std::vector<size_t> participants;
  transformed.reserve(parties_.size());
  for (size_t p = 0; p < parties_.size(); ++p) {
    if (p == options.label_party) {
      participants.push_back(p);
      transformed.push_back(alignment.label_features);
      continue;
    }
    const MetadataPolicy* policy = nullptr;
    if (override_policy != nullptr && ContainsIndex(overridden, p)) {
      policy = override_policy;
    } else {
      for (const TopologyEdge& edge : edges_) {
        if (edge.from == p && edge.to == options.label_party) {
          policy = &edge.policy;
          break;
        }
      }
    }
    // No disclosure channel to the label holder (or one below
    // names+domains) keeps the party out of joint training.
    if (policy == nullptr || !policy->AllowsTraining()) continue;
    METALEAK_ASSIGN_OR_RETURN(Relation slice,
                              policy->ApplyToSlice(alignment.aligned[p]));
    participants.push_back(p);
    transformed.push_back(std::move(slice));
  }

  std::vector<const Relation*> slices;
  slices.reserve(transformed.size());
  for (const Relation& slice : transformed) slices.push_back(&slice);

  METALEAK_ASSIGN_OR_RETURN(
      VflModelN joint,
      TrainVerticalLogisticRegressionN(slices, alignment.labels,
                                       options.train));
  METALEAK_ASSIGN_OR_RETURN(out.joint_accuracy,
                            AccuracyN(joint, slices, alignment.labels));

  // The "no federation" baseline trains the label party alone. The
  // trainer wants row-aligned slices, so the counterpart is a single
  // constant column that encodes to nothing informative.
  Schema const_schema(
      {{"__const", DataType::kInt64, SemanticType::kCategorical}});
  std::vector<std::vector<Value>> const_col(1);
  const_col[0].assign(alignment.label_features.num_rows(), Value::Int(0));
  METALEAK_ASSIGN_OR_RETURN(
      Relation const_b, Relation::Make(const_schema, std::move(const_col)));
  std::vector<const Relation*> solo_slices = {&alignment.label_features,
                                              &const_b};
  METALEAK_ASSIGN_OR_RETURN(
      VflModelN solo,
      TrainVerticalLogisticRegressionN(solo_slices, alignment.labels,
                                       options.train));
  METALEAK_ASSIGN_OR_RETURN(
      out.label_party_only_accuracy,
      AccuracyN(solo, solo_slices, alignment.labels));

  out.participants = std::move(participants);
  return out;
}

Result<UtilityOutcome> FederationTopology::EvaluateUtility(
    const TopologyAlignment& alignment,
    const TopologyOptions& options) const {
  return EvaluateUtilityImpl(alignment, options, {}, nullptr);
}

Result<UtilityOutcome> FederationTopology::EvaluateUtility(
    const TopologyAlignment& alignment, const TopologyOptions& options,
    const std::vector<size_t>& override_parties,
    const MetadataPolicy& override_policy) const {
  return EvaluateUtilityImpl(alignment, options, override_parties,
                             &override_policy);
}

Result<CoalitionOutcome> FederationTopology::EvaluateCoalition(
    const TopologyAlignment& alignment, const CoalitionSpec& spec,
    const TopologyOptions& options) const {
  if (spec.attackers.empty()) {
    return Status::Invalid("coalition needs at least one attacker");
  }
  const std::vector<size_t> attackers = SortedUnique(spec.attackers);
  for (size_t a : attackers) {
    if (a >= parties_.size()) {
      return Status::Invalid("attacker index out of range");
    }
  }

  // Victims: explicit, or every non-attacker that disclosed to a
  // coalition member.
  std::vector<size_t> victims;
  if (!spec.victims.empty()) {
    victims = SortedUnique(spec.victims);
    for (size_t v : victims) {
      if (v >= parties_.size()) {
        return Status::Invalid("victim index out of range");
      }
      if (ContainsIndex(attackers, v)) {
        return Status::Invalid("a coalition member cannot be its own victim");
      }
    }
  } else {
    for (const TopologyEdge& edge : edges_) {
      if (ContainsIndex(attackers, edge.to) &&
          !ContainsIndex(attackers, edge.from)) {
        victims.push_back(edge.from);
      }
    }
    victims = SortedUnique(victims);
    if (victims.empty()) {
      return Status::Invalid("the coalition received no metadata");
    }
  }

  // One merged package per victim: every edge from the victim into the
  // coalition contributes its (possibly overridden) policy view of the
  // victim's single full-level profile.
  std::vector<MetadataPackage> victim_packages;
  victim_packages.reserve(victims.size());
  for (size_t v : victims) {
    std::vector<MetadataPackage> views;
    for (const TopologyEdge& edge : edges_) {
      if (edge.from != v || !ContainsIndex(attackers, edge.to)) continue;
      const MetadataPolicy& policy = spec.policy_override.has_value()
                                         ? *spec.policy_override
                                         : edge.policy;
      if (!alignment.profiles[v].has_value()) {
        return Status::Invalid("party " + parties_[v].name() +
                               " was not profiled at alignment time");
      }
      METALEAK_ASSIGN_OR_RETURN(MetadataPackage view,
                                policy.Apply(*alignment.profiles[v]));
      views.push_back(std::move(view));
    }
    if (views.empty()) {
      return Status::Invalid("the coalition received no metadata from " +
                             parties_[v].name());
    }
    std::vector<const MetadataPackage*> view_ptrs;
    view_ptrs.reserve(views.size());
    for (const MetadataPackage& view : views) view_ptrs.push_back(&view);
    METALEAK_ASSIGN_OR_RETURN(MetadataPackage merged,
                              UnionPackageViews(view_ptrs));
    victim_packages.push_back(std::move(merged));
  }

  CoalitionOutcome outcome;
  outcome.attackers = attackers;
  outcome.victims = victims;

  if (victims.size() == 1) {
    // The single-victim case keeps the package and the slice exactly as
    // received — this is the path the two-party parity test pins down.
    outcome.joint = std::move(victim_packages[0]);
    outcome.victim_union = alignment.aligned[victims[0]];
  } else {
    // Attribute names may repeat across victims (two banks both holding
    // "income"); prefix with the party name only when they do, so the
    // common disjoint case stays untouched.
    bool collision = false;
    {
      std::vector<std::string> names;
      for (const MetadataPackage& pkg : victim_packages) {
        for (const Attribute& a : pkg.schema.attributes()) {
          names.push_back(a.name);
        }
      }
      std::sort(names.begin(), names.end());
      collision =
          std::adjacent_find(names.begin(), names.end()) != names.end();
    }

    std::vector<Attribute> union_attrs;
    std::vector<std::vector<Value>> union_columns;
    for (size_t i = 0; i < victims.size(); ++i) {
      const size_t v = victims[i];
      const Relation& slice = alignment.aligned[v];
      std::vector<Attribute> attrs = victim_packages[i].schema.attributes();
      if (collision) {
        for (Attribute& a : attrs) {
          a.name = parties_[v].name() + "." + a.name;
        }
        victim_packages[i].schema = Schema(attrs);
      }
      for (size_t c = 0; c < slice.num_columns(); ++c) {
        union_attrs.push_back(attrs[c]);
        union_columns.push_back(slice.column(c));
      }
    }
    std::vector<const MetadataPackage*> part_ptrs;
    part_ptrs.reserve(victim_packages.size());
    for (const MetadataPackage& pkg : victim_packages) {
      part_ptrs.push_back(&pkg);
    }
    METALEAK_ASSIGN_OR_RETURN(outcome.joint,
                              ConcatDisjointPackages(part_ptrs));
    METALEAK_ASSIGN_OR_RETURN(
        outcome.victim_union,
        Relation::Make(Schema(std::move(union_attrs)),
                       std::move(union_columns)));
  }

  if (!outcome.joint.HasAllDomains()) {
    // Names alone give the coalition nothing to sample from.
    outcome.reconstructed = false;
    return outcome;
  }
  METALEAK_ASSIGN_OR_RETURN(
      outcome.leakage,
      SimulateReconstruction(outcome.joint, outcome.victim_union,
                             options.attack_seed));
  outcome.reconstructed = true;

  if (options.attack_rounds > 1) {
    ExperimentConfig config;
    config.rounds = options.attack_rounds;
    config.seed = options.experiment_seed;
    config.leakage = options.leakage;
    config.threads = options.threads;
    METALEAK_ASSIGN_OR_RETURN(
        CoalitionLeakageSummary summary,
        EvaluateCoalitionLeakage(outcome.joint, outcome.victim_union,
                                 config));
    outcome.monte_carlo = std::move(summary);
  }
  return outcome;
}

Result<std::vector<ParetoPoint>> SweepPolicyPareto(
    const FederationTopology& topology, const TopologyOptions& options,
    const CoalitionSpec& coalition,
    const std::vector<MetadataPolicy>& policies) {
  METALEAK_ASSIGN_OR_RETURN(TopologyAlignment alignment,
                            topology.Align(options));
  std::vector<ParetoPoint> points;
  points.reserve(policies.size());
  for (const MetadataPolicy& policy : policies) {
    CoalitionSpec spec = coalition;
    spec.policy_override = policy;
    METALEAK_ASSIGN_OR_RETURN(
        CoalitionOutcome attack,
        topology.EvaluateCoalition(alignment, spec, options));
    METALEAK_ASSIGN_OR_RETURN(
        UtilityOutcome utility,
        topology.EvaluateUtility(alignment, options, attack.victims,
                                 policy));
    ParetoPoint point;
    point.policy_name = policy.name;
    point.joint_accuracy = utility.joint_accuracy;
    point.reconstructed = attack.reconstructed;
    if (attack.reconstructed) {
      if (attack.monte_carlo.has_value()) {
        point.leakage_rate = attack.monte_carlo->overall_match_rate;
        point.mean_mse = attack.monte_carlo->mean_mse;
        point.mi_leakage_bits = attack.monte_carlo->mean_mi_bits;
      } else {
        point.leakage_rate = ReportMatchRate(attack.leakage);
        point.mean_mse = ReportMeanMse(attack.leakage);
      }
    }
    points.push_back(std::move(point));
  }
  MarkParetoFrontier(&points);
  return points;
}

void MarkParetoFrontier(std::vector<ParetoPoint>* points) {
  for (size_t i = 0; i < points->size(); ++i) {
    ParetoPoint& p = (*points)[i];
    p.on_frontier = true;
    for (size_t j = 0; j < points->size() && p.on_frontier; ++j) {
      if (j == i) continue;
      const ParetoPoint& q = (*points)[j];
      const double p_mi = p.mi_leakage_bits.value_or(0.0);
      const double q_mi = q.mi_leakage_bits.value_or(0.0);
      const bool weakly_better = q.joint_accuracy >= p.joint_accuracy &&
                                 q.leakage_rate <= p.leakage_rate &&
                                 q_mi <= p_mi;
      const bool strictly_better = q.joint_accuracy > p.joint_accuracy ||
                                   q.leakage_rate < p.leakage_rate ||
                                   q_mi < p_mi;
      if (weakly_better && strictly_better) p.on_frontier = false;
    }
  }
}

}  // namespace metaleak
