#include "vfl/attack.h"

#include <optional>
#include <utility>

#include "common/random.h"
#include "data/encoded_batch.h"
#include "data/encoded_relation.h"

namespace metaleak {

Result<LeakageReport> SimulateReconstruction(
    const MetadataPackage& received, const Relation& real_aligned,
    uint64_t seed, const GenerationOptions& options) {
  Rng rng(seed);
  // Code path: generate straight into a dense batch and score it against
  // the encoded real relation, skipping the per-round Relation. Packages
  // the encoded pipeline cannot represent fall back to the boxed-Value
  // reference path; both produce identical reports.
  Result<GenerationContext> built =
      GenerationContext::Build(received, options);
  if (built.ok() && built->encodable()) {
    EncodedRelation encoded = EncodedRelation::Encode(real_aligned);
    Result<EncodedLeakageContext> leak = EncodedLeakageContext::Build(
        encoded, built->schema(), built->domains());
    if (leak.ok() && leak->supported()) {
      EncodedBatch batch;
      METALEAK_RETURN_NOT_OK(
          GenerateEncoded(*built, real_aligned.num_rows(), &rng, &batch));
      return leak->EvaluateReport(batch);
    }
  }
  METALEAK_ASSIGN_OR_RETURN(
      GenerationOutcome outcome,
      GenerateSynthetic(received, real_aligned.num_rows(), &rng, options));
  return EvaluateLeakage(real_aligned, outcome.relation);
}

Result<std::vector<AttackResult>> SweepDisclosureLevels(
    const MetadataPackage& full_metadata, const Relation& real_aligned,
    uint64_t seed) {
  std::vector<AttackResult> out;
  const DisclosureLevel levels[] = {
      DisclosureLevel::kNames,
      DisclosureLevel::kNamesAndDomains,
      DisclosureLevel::kWithFds,
      DisclosureLevel::kWithRfds,
  };
  for (DisclosureLevel level : levels) {
    AttackResult result;
    result.level = level;
    MetadataPackage restricted = full_metadata.Restrict(level);
    if (!restricted.HasAllDomains()) {
      // Names alone give the adversary nothing to sample from.
      result.reconstructed = false;
      out.push_back(std::move(result));
      continue;
    }
    METALEAK_ASSIGN_OR_RETURN(
        result.leakage,
        SimulateReconstruction(restricted, real_aligned, seed));
    result.reconstructed = true;
    out.push_back(std::move(result));
  }
  return out;
}

}  // namespace metaleak
