#include "vfl/attack.h"

#include "common/random.h"

namespace metaleak {

Result<LeakageReport> SimulateReconstruction(
    const MetadataPackage& received, const Relation& real_aligned,
    uint64_t seed, const GenerationOptions& options) {
  Rng rng(seed);
  METALEAK_ASSIGN_OR_RETURN(
      GenerationOutcome outcome,
      GenerateSynthetic(received, real_aligned.num_rows(), &rng, options));
  return EvaluateLeakage(real_aligned, outcome.relation);
}

Result<std::vector<AttackResult>> SweepDisclosureLevels(
    const MetadataPackage& full_metadata, const Relation& real_aligned,
    uint64_t seed) {
  std::vector<AttackResult> out;
  const DisclosureLevel levels[] = {
      DisclosureLevel::kNames,
      DisclosureLevel::kNamesAndDomains,
      DisclosureLevel::kWithFds,
      DisclosureLevel::kWithRfds,
  };
  for (DisclosureLevel level : levels) {
    AttackResult result;
    result.level = level;
    MetadataPackage restricted = full_metadata.Restrict(level);
    if (!restricted.HasAllDomains()) {
      // Names alone give the adversary nothing to sample from.
      result.reconstructed = false;
      out.push_back(std::move(result));
      continue;
    }
    METALEAK_ASSIGN_OR_RETURN(
        result.leakage,
        SimulateReconstruction(restricted, real_aligned, seed));
    result.reconstructed = true;
    out.push_back(std::move(result));
  }
  return out;
}

}  // namespace metaleak
