// Seedable random number generation for reproducible experiments.
//
// Every stochastic component of MetaLeak (synthetic data generators,
// Monte-Carlo experiment rounds, dataset synthesis) draws from an Rng that
// the caller seeds explicitly, so a (seed, config) pair fully determines an
// experiment's output.
#ifndef METALEAK_COMMON_RANDOM_H_
#define METALEAK_COMMON_RANDOM_H_

#include <cstdint>
#include <random>
#include <vector>

#include "common/macros.h"

namespace metaleak {

/// A thin, explicitly-seeded wrapper over std::mt19937_64 with the sampling
/// primitives the generators need. Copyable so that an experiment round can
/// snapshot the stream state.
class Rng {
 public:
  /// Seeds the stream. The default seed is arbitrary but fixed, so unseeded
  /// uses are still deterministic.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform size_t index in [0, n). Requires n > 0.
  size_t UniformIndex(size_t n);

  /// Uniform double in [lo, hi). Requires lo <= hi; returns lo when equal.
  double UniformDouble(double lo, double hi);

  /// Bernoulli draw with success probability p in [0, 1].
  bool Bernoulli(double p);

  /// Standard normal draw scaled to (mean, stddev).
  double Normal(double mean, double stddev);

  /// Samples `k` distinct indices from [0, n) without replacement
  /// (Floyd's algorithm). Requires k <= n. Order is unspecified.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Fisher-Yates shuffle of `values` in place.
  template <typename T>
  void Shuffle(std::vector<T>* values) {
    METALEAK_DCHECK(values != nullptr);
    for (size_t i = values->size(); i > 1; --i) {
      size_t j = UniformIndex(i);
      std::swap((*values)[i - 1], (*values)[j]);
    }
  }

  /// Returns a value drawn uniformly from `values`. Requires non-empty.
  template <typename T>
  const T& Choice(const std::vector<T>& values) {
    METALEAK_DCHECK(!values.empty());
    return values[UniformIndex(values.size())];
  }

  /// Derives an independent child stream; used to give each attribute /
  /// round its own stream so adding attributes does not perturb others.
  Rng Fork();

  /// Advances the stream exactly like Fork() but returns the derived
  /// child *seed*: Fork() is equivalent to Rng(ForkSeed()). Recording the
  /// seed makes a derived stream replayable in isolation (the experiment
  /// runner stores one per Monte-Carlo round).
  uint64_t ForkSeed();

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace metaleak

#endif  // METALEAK_COMMON_RANDOM_H_
