#include "common/string_util.h"

#include <cctype>
#include <cerrno>
#include <charconv>
#include <cstdio>
#include <cstdlib>

namespace metaleak {

std::vector<std::string> Split(std::string_view input, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(input.substr(start));
      break;
    }
    out.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view Trim(std::string_view input) {
  size_t begin = 0;
  size_t end = input.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(input[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(input[end - 1]))) {
    --end;
  }
  return input.substr(begin, end - begin);
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::optional<int64_t> ParseInt64(std::string_view input) {
  input = Trim(input);
  if (input.empty()) return std::nullopt;
  int64_t value = 0;
  const char* first = input.data();
  const char* last = input.data() + input.size();
  auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc() || ptr != last) return std::nullopt;
  return value;
}

std::optional<double> ParseDouble(std::string_view input) {
  input = Trim(input);
  if (input.empty()) return std::nullopt;
  // std::from_chars<double> is not universally available; strtod on a
  // NUL-terminated copy is portable and strict enough with a full-match
  // check.
  std::string buf(input);
  errno = 0;
  char* end = nullptr;
  double value = std::strtod(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size()) return std::nullopt;
  return value;
}

bool StartsWith(std::string_view input, std::string_view prefix) {
  return input.size() >= prefix.size() &&
         input.substr(0, prefix.size()) == prefix;
}

std::string ToLower(std::string_view input) {
  std::string out(input);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  std::string out(buf);
  if (out.find('.') != std::string::npos) {
    size_t last = out.find_last_not_of('0');
    if (out[last] == '.') last = last == 0 ? 0 : last - 1;
    out.erase(last + 1);
  }
  return out;
}

}  // namespace metaleak
