#include "common/csv.h"

#include <fstream>
#include <sstream>

namespace metaleak {

namespace {

// Returns true if `field` must be quoted when written.
bool NeedsQuoting(std::string_view field, char delim) {
  return field.find(delim) != std::string_view::npos ||
         field.find('"') != std::string_view::npos ||
         field.find('\n') != std::string_view::npos ||
         field.find('\r') != std::string_view::npos;
}

void AppendQuoted(std::string_view field, std::string* out) {
  out->push_back('"');
  for (char c : field) {
    if (c == '"') out->push_back('"');
    out->push_back(c);
  }
  out->push_back('"');
}

}  // namespace

Result<CsvTable> ParseCsv(std::string_view text, const CsvOptions& options) {
  CsvTable table;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool row_started = false;

  size_t i = 0;
  const size_t n = text.size();
  while (i < n) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < n && text[i + 1] == '"') {
          field.push_back('"');
          i += 2;
        } else {
          in_quotes = false;
          ++i;
        }
      } else {
        field.push_back(c);
        ++i;
      }
      continue;
    }
    if (c == '"' && field.empty()) {
      in_quotes = true;
      row_started = true;
      ++i;
    } else if (c == options.delimiter) {
      row.push_back(std::move(field));
      field.clear();
      row_started = true;
      ++i;
    } else if (c == '\r') {
      ++i;  // swallow; the \n (if any) ends the row
      if (i >= n || text[i] != '\n') {
        row.push_back(std::move(field));
        field.clear();
        table.rows.push_back(std::move(row));
        row.clear();
        row_started = false;
      }
    } else if (c == '\n') {
      row.push_back(std::move(field));
      field.clear();
      table.rows.push_back(std::move(row));
      row.clear();
      row_started = false;
      ++i;
    } else {
      field.push_back(c);
      row_started = true;
      ++i;
    }
  }
  if (in_quotes) {
    return Status::IoError("unterminated quoted CSV field");
  }
  if (row_started || !field.empty() || !row.empty()) {
    row.push_back(std::move(field));
    table.rows.push_back(std::move(row));
  }

  if (!table.rows.empty()) {
    size_t width = table.rows[0].size();
    for (size_t r = 1; r < table.rows.size(); ++r) {
      if (table.rows[r].size() == width) continue;
      if (options.strict_field_count) {
        std::ostringstream msg;
        msg << "CSV row " << r << " has " << table.rows[r].size()
            << " fields, expected " << width;
        return Status::IoError(msg.str());
      }
      table.rows[r].resize(width);
    }
  }
  return table;
}

Result<CsvTable> ReadCsvFile(const std::string& path,
                             const CsvOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IoError("cannot open file: " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseCsv(buf.str(), options);
}

std::string WriteCsv(const CsvTable& table, const CsvOptions& options) {
  std::string out;
  for (const auto& row : table.rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out.push_back(options.delimiter);
      if (NeedsQuoting(row[i], options.delimiter)) {
        AppendQuoted(row[i], &out);
      } else {
        out.append(row[i]);
      }
    }
    out.push_back('\n');
  }
  return out;
}

Status WriteCsvFile(const std::string& path, const CsvTable& table,
                    const CsvOptions& options) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Status::IoError("cannot open file for writing: " + path);
  }
  out << WriteCsv(table, options);
  if (!out) {
    return Status::IoError("write failed: " + path);
  }
  return Status::OK();
}

}  // namespace metaleak
