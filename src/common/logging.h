// Minimal leveled logging for library diagnostics.
//
// MetaLeak is a library, so logging defaults to WARNING and is written to
// stderr; hosts can lower the threshold (e.g. to kDebug) when diagnosing
// discovery or generation behaviour.
#ifndef METALEAK_COMMON_LOGGING_H_
#define METALEAK_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace metaleak {

enum class LogLevel {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kOff = 4,
};

/// Sets the global minimum level that will be emitted.
void SetLogLevel(LogLevel level);

/// Returns the current global minimum level.
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log sink; buffers the message and emits it (or drops it,
/// when below the global threshold) on destruction at the end of the
/// full expression.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal

// Usage: METALEAK_LOG(kInfo) << "discovered " << n << " FDs";
#define METALEAK_LOG(level)                                    \
  ::metaleak::internal::LogMessage(::metaleak::LogLevel::level, \
                                   __FILE__, __LINE__)          \
      .stream()

}  // namespace metaleak

#endif  // METALEAK_COMMON_LOGGING_H_
