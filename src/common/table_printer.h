// Fixed-width ASCII table rendering for benches and examples.
//
// The benchmark harness reproduces the paper's Tables III and IV; this
// printer renders them in the same row/column layout the paper uses.
#ifndef METALEAK_COMMON_TABLE_PRINTER_H_
#define METALEAK_COMMON_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace metaleak {

/// Accumulates a header plus rows of cells and renders them with aligned
/// columns. Cells are free-form strings; numeric formatting is the caller's
/// concern (see FormatDouble).
class TablePrinter {
 public:
  explicit TablePrinter(std::string title = "");

  /// Sets the column headers. Must be called before AddRow.
  void SetHeader(std::vector<std::string> header);

  /// Appends a data row; shorter rows are padded with empty cells.
  void AddRow(std::vector<std::string> row);

  /// Renders the full table (title, rule, header, rule, rows).
  std::string ToString() const;

  /// Renders as pipe-delimited markdown (for EXPERIMENTS.md extracts).
  std::string ToMarkdown() const;

  /// Convenience: renders and writes to stdout.
  void Print() const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<size_t> ColumnWidths() const;

  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace metaleak

#endif  // METALEAK_COMMON_TABLE_PRINTER_H_
