#include "common/status.h"

namespace metaleak {

Status::Status(StatusCode code, std::string msg) {
  if (code != StatusCode::kOk) {
    state_ = std::make_unique<State>(State{code, std::move(msg)});
  }
}

Status::Status(const Status& other) {
  if (other.state_ != nullptr) {
    state_ = std::make_unique<State>(*other.state_);
  }
}

Status& Status::operator=(const Status& other) {
  if (this != &other) {
    state_ = other.state_ == nullptr ? nullptr
                                     : std::make_unique<State>(*other.state_);
  }
  return *this;
}

const std::string& Status::message() const {
  static const std::string* const kEmpty = new std::string();
  return state_ == nullptr ? *kEmpty : state_->msg;
}

std::string StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kKeyError:
      return "Key error";
    case StatusCode::kTypeError:
      return "Type error";
    case StatusCode::kIoError:
      return "IO error";
    case StatusCode::kNotImplemented:
      return "Not implemented";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kUnknownError:
      return "Unknown error";
  }
  return "Unrecognized status code";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  return StatusCodeToString(code()) + ": " + message();
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace metaleak
