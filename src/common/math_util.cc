#include "common/math_util.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/macros.h"

namespace metaleak {

double LogGamma(double x) { return std::lgamma(x); }

double LogChoose(int64_t n, int64_t k) {
  if (k < 0 || k > n || n < 0) {
    return -std::numeric_limits<double>::infinity();
  }
  if (k == 0 || k == n) return 0.0;
  return LogGamma(static_cast<double>(n) + 1.0) -
         LogGamma(static_cast<double>(k) + 1.0) -
         LogGamma(static_cast<double>(n - k) + 1.0);
}

double Choose(int64_t n, int64_t k) {
  double lc = LogChoose(n, k);
  if (std::isinf(lc)) return 0.0;
  return std::exp(lc);
}

double BinomialExpectation(int64_t n, double p) {
  return static_cast<double>(n) * p;
}

double BinomialAtLeastOne(int64_t n, double p) {
  METALEAK_DCHECK(p >= 0.0 && p <= 1.0);
  if (n <= 0) return 0.0;
  // 1 - (1-p)^n via expm1/log1p for numerical stability at small p.
  return -std::expm1(static_cast<double>(n) * std::log1p(-p));
}

double HypergeometricExpectation(int64_t population, int64_t successes,
                                 int64_t draws) {
  if (population <= 0) return 0.0;
  return static_cast<double>(draws) * static_cast<double>(successes) /
         static_cast<double>(population);
}

double HypergeometricAtLeastOne(int64_t population, int64_t successes,
                                int64_t draws) {
  if (population <= 0 || draws <= 0 || successes <= 0) return 0.0;
  if (draws + successes > population) return 1.0;  // pigeonhole: overlap
  double log_p0 = LogChoose(population - successes, draws) -
                  LogChoose(population, draws);
  return -std::expm1(log_p0);
}

double HypergeometricPmf(int64_t population, int64_t successes,
                         int64_t draws, int64_t k) {
  if (k < 0 || k > draws || k > successes) return 0.0;
  if (draws - k > population - successes) return 0.0;
  double lp = LogChoose(successes, k) +
              LogChoose(population - successes, draws - k) -
              LogChoose(population, draws);
  return std::exp(lp);
}

double IntervalOverlap(double a_lo, double a_hi, double b_lo, double b_hi) {
  double lo = std::max(a_lo, b_lo);
  double hi = std::min(a_hi, b_hi);
  return std::max(0.0, hi - lo);
}

namespace {

// Shared accumulation for both count-buffer types. The iteration order is
// index order and the arithmetic is the exact expression ColumnEntropy
// used before it was re-expressed through this helper, so the
// re-expression is bit-identical.
template <typename Count>
double ShannonEntropyBitsImpl(const Count* counts, size_t n) {
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) total += static_cast<double>(counts[i]);
  if (total == 0.0) return 0.0;
  double entropy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double p = static_cast<double>(counts[i]) / total;
    if (p > 0.0) entropy -= p * std::log2(p);
  }
  return entropy;
}

}  // namespace

double ShannonEntropyBits(const std::vector<size_t>& counts) {
  return ShannonEntropyBitsImpl(counts.data(), counts.size());
}

double ShannonEntropyBits(const uint32_t* counts, size_t n) {
  return ShannonEntropyBitsImpl(counts, n);
}

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double Variance(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  double m = Mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size() - 1);
}

double StdDev(const std::vector<double>& xs) {
  return std::sqrt(Variance(xs));
}

void WelfordAccumulator::Add(double x) {
  ++count_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double WelfordAccumulator::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double WelfordAccumulator::stddev() const { return std::sqrt(variance()); }

double MeanSquaredError(const std::vector<double>& a,
                        const std::vector<double>& b) {
  METALEAK_DCHECK(a.size() == b.size());
  if (a.empty()) return 0.0;
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double d = a[i] - b[i];
    acc += d * d;
  }
  return acc / static_cast<double>(a.size());
}

double Quantile(std::vector<double> xs, double q) {
  METALEAK_DCHECK(!xs.empty());
  METALEAK_DCHECK(q >= 0.0 && q <= 1.0);
  std::sort(xs.begin(), xs.end());
  if (xs.size() == 1) return xs[0];
  double pos = q * static_cast<double>(xs.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  size_t hi = std::min(lo + 1, xs.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

}  // namespace metaleak
