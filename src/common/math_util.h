// Probability and statistics helpers backing the paper's analytical models.
//
// The privacy analysis in Sections III-IV of the paper reduces to a handful
// of distributions: binomial expectations (random / FD-informed generation),
// the hypergeometric distribution (numerical dependencies) and interval
// overlap ratios (order / differential dependencies). These are implemented
// here once, in log-space where overflow is possible, and reused by both the
// analytical model and the tests that cross-check Monte-Carlo results.
#ifndef METALEAK_COMMON_MATH_UTIL_H_
#define METALEAK_COMMON_MATH_UTIL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace metaleak {

/// ln Gamma(x) for x > 0 (thin wrapper over std::lgamma, kept here so all
/// combinatorics flows through one audited entry point).
double LogGamma(double x);

/// ln C(n, k); -inf when k > n or k < 0. Exact in log space for large n.
double LogChoose(int64_t n, int64_t k);

/// C(n, k) as a double; may overflow to +inf for huge arguments.
double Choose(int64_t n, int64_t k);

/// Binomial(n, p) expectation: n * p.
double BinomialExpectation(int64_t n, double p);

/// P[Binomial(n, p) >= 1] = 1 - (1-p)^n, computed stably for tiny p.
double BinomialAtLeastOne(int64_t n, double p);

/// Hypergeometric expectation: drawing n items from a population of N that
/// contains K successes has expectation n*K/N.
double HypergeometricExpectation(int64_t population, int64_t successes,
                                 int64_t draws);

/// P[Hypergeometric(N, K, n) >= 1] = 1 - C(N-K, n)/C(N, n).
/// This is the paper's "probability of finding at least one correct
/// mapping" for numerical dependencies (Section IV-B).
double HypergeometricAtLeastOne(int64_t population, int64_t successes,
                                int64_t draws);

/// Hypergeometric PMF P[X = k].
double HypergeometricPmf(int64_t population, int64_t successes,
                         int64_t draws, int64_t k);

/// Length of the overlap of intervals [a_lo, a_hi] and [b_lo, b_hi];
/// zero when disjoint or inverted.
double IntervalOverlap(double a_lo, double a_hi, double b_lo, double b_hi);

/// Shannon entropy in bits of the empirical distribution given by a
/// histogram of counts: -sum p_i log2 p_i with p_i = counts[i] / total.
/// Zero counts contribute nothing; 0 for an empty histogram. This is THE
/// entropy definition of the library — the analytical models
/// (ColumnEntropy, ValueDistribution::EntropyBits) and the empirical
/// InfoTheoreticEstimator all route through it, so their log-sums can
/// never drift apart.
double ShannonEntropyBits(const std::vector<size_t>& counts);

/// Same, over the uint32 count buffers the SIMD histogram kernels fill.
double ShannonEntropyBits(const uint32_t* counts, size_t n);

/// --- Descriptive statistics over samples -------------------------------

/// Arithmetic mean; 0 for an empty input.
double Mean(const std::vector<double>& xs);

/// Unbiased sample variance (n-1 denominator); 0 for n < 2.
double Variance(const std::vector<double>& xs);

/// Population standard deviation of the sample variance above.
double StdDev(const std::vector<double>& xs);

/// Streaming mean / variance accumulator (Welford's algorithm).
///
/// Folding the same values in the same order produces bit-identical
/// results regardless of how they were computed, which the experiment
/// runner relies on for its value-path / code-path parity guarantee:
/// both paths feed their per-round statistics through this accumulator
/// in ascending round order.
class WelfordAccumulator {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  /// 0 for an empty accumulator.
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  /// Unbiased sample variance (n-1 denominator); 0 for n < 2.
  double variance() const;
  /// sqrt(variance()).
  double stddev() const;

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Mean of element-wise squared differences. Requires equal sizes.
double MeanSquaredError(const std::vector<double>& a,
                        const std::vector<double>& b);

/// Linearly interpolated quantile, q in [0,1]. Requires non-empty input.
double Quantile(std::vector<double> xs, double q);

}  // namespace metaleak

#endif  // METALEAK_COMMON_MATH_UTIL_H_
