// Status: the error-reporting vocabulary type for MetaLeak.
//
// MetaLeak does not throw exceptions across public API boundaries. Functions
// that can fail return a Status (or a Result<T>, see result.h) describing
// the outcome. This mirrors the Apache Arrow / Google error model.
#ifndef METALEAK_COMMON_STATUS_H_
#define METALEAK_COMMON_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <utility>

namespace metaleak {

/// Machine-readable error category carried by a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kKeyError = 2,        // lookup of a name/index that does not exist
  kTypeError = 3,       // value/attribute type mismatch
  kIoError = 4,         // file or parse failure
  kNotImplemented = 5,
  kOutOfRange = 6,
  kAlreadyExists = 7,
  kUnknownError = 8,
};

/// Returns the canonical lower-case name of a status code ("Invalid
/// argument", "Key error", ...).
std::string StatusCodeToString(StatusCode code);

/// Outcome of an operation: either OK, or an error code plus message.
///
/// Status is cheap to copy in the OK case (a null pointer); error states
/// carry a heap-allocated payload. It is totally ordered on (code, message)
/// only through equality; there is no operator<.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string msg);

  Status(const Status& other);
  Status& operator=(const Status& other);
  Status(Status&& other) noexcept = default;
  Status& operator=(Status&& other) noexcept = default;

  /// Factory helpers, one per error category.
  static Status OK() { return Status(); }
  static Status Invalid(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status KeyError(std::string msg) {
    return Status(StatusCode::kKeyError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status UnknownError(std::string msg) {
    return Status(StatusCode::kUnknownError, std::move(msg));
  }

  /// True iff the operation succeeded.
  bool ok() const { return state_ == nullptr; }

  StatusCode code() const {
    return state_ == nullptr ? StatusCode::kOk : state_->code;
  }

  /// The human-readable error message; empty for OK.
  const std::string& message() const;

  bool IsInvalid() const { return code() == StatusCode::kInvalidArgument; }
  bool IsKeyError() const { return code() == StatusCode::kKeyError; }
  bool IsTypeError() const { return code() == StatusCode::kTypeError; }
  bool IsIoError() const { return code() == StatusCode::kIoError; }
  bool IsNotImplemented() const {
    return code() == StatusCode::kNotImplemented;
  }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsAlreadyExists() const {
    return code() == StatusCode::kAlreadyExists;
  }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code() == b.code() && a.message() == b.message();
  }
  friend bool operator!=(const Status& a, const Status& b) {
    return !(a == b);
  }

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };
  // nullptr means OK; keeps the success path allocation-free.
  std::unique_ptr<State> state_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace metaleak

#endif  // METALEAK_COMMON_STATUS_H_
