// Result<T>: value-or-Status, the return type of fallible factories.
#ifndef METALEAK_COMMON_RESULT_H_
#define METALEAK_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "common/macros.h"
#include "common/status.h"

namespace metaleak {

/// Holds either a value of type T or an error Status, never both.
///
/// Usage:
///   Result<Relation> r = CsvLoader::Load(path);
///   if (!r.ok()) return r.status();
///   Relation rel = std::move(r).ValueUnsafe();
///
/// or via the METALEAK_ASSIGN_OR_RETURN macro.
template <typename T>
class Result {
 public:
  /// Constructs a successful result holding `value`.
  Result(T value)  // NOLINT(google-explicit-constructor): mirrors Arrow.
      : value_(std::move(value)) {}

  /// Constructs a failed result from a non-OK status.
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    METALEAK_DCHECK(!status_.ok());
  }

  Result(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(const Result&) = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return status_.ok(); }

  /// The error status; Status::OK() when the result holds a value.
  const Status& status() const& { return status_; }
  Status status() && { return std::move(status_); }

  /// Accessors. Calling these on an error result is a programming error
  /// (checked via DCHECK in debug builds).
  const T& ValueUnsafe() const& {
    METALEAK_DCHECK(value_.has_value());
    return *value_;
  }
  T& ValueUnsafe() & {
    METALEAK_DCHECK(value_.has_value());
    return *value_;
  }
  T ValueUnsafe() && {
    METALEAK_DCHECK(value_.has_value());
    return std::move(*value_);
  }

  /// Convenience aliases matching Arrow naming.
  const T& operator*() const& { return ValueUnsafe(); }
  T& operator*() & { return ValueUnsafe(); }
  const T* operator->() const { return &ValueUnsafe(); }
  T* operator->() { return &ValueUnsafe(); }

  /// Returns the value or aborts with the error message. Only appropriate in
  /// tests, examples and benches where failure is unrecoverable.
  T ValueOrDie() && {
    if (!ok()) {
      std::fprintf(stderr, "ValueOrDie on error result: %s\n",
                   status_.ToString().c_str());
      std::abort();
    }
    return std::move(*value_);
  }

  /// Returns the held value, or `fallback` if this result is an error.
  T ValueOr(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace metaleak

#endif  // METALEAK_COMMON_RESULT_H_
