// SIMD + bit-parallel inner kernels for the dense-code hot loops.
//
// Every hot path in MetaLeak is a flat scan over dense int32 codes or
// doubles (CSR probe tables, the fused Def 2.2/2.3 match+MSE scan,
// lexicographic OD/OFD pair scans, identifiability bitmaps). This layer
// provides the handful of primitives those scans actually need, each in
// up to three codegen variants:
//
//   * an always-available scalar reference (the semantics oracle),
//   * an SSE4.2 path (128-bit lanes), and
//   * an AVX2 path (256-bit lanes, hardware gathers),
//
// selected at runtime by CPU feature detection. The vector paths are
// compiled with per-function target attributes, so the library binary
// stays generic-arch: an AVX2 kernel is *present* in every build but only
// *dispatched* on hardware that supports it.
//
// Parity contract: every kernel returns byte-identical results to its
// scalar reference on every input — including NaN handling and the order
// of floating-point accumulation (the epsilon-ball kernel adds masked
// squares in row order precisely so the MSE sum rounds exactly like the
// sequential reference; see EpsilonBallMse in simd.cc). Consumers
// therefore keep the library-wide bit-identical guarantees (code path ==
// value path, threads-1 == threads-8) at any dispatch level, and the
// golden-parity suites double as the gate for these kernels.
//
// Dispatch control: `METALEAK_SIMD` caps the level ("off"/"scalar",
// "sse4.2", "avx2"; unset/"auto" picks the best supported). The resolved
// level is logged once (INFO) on first use and surfaced in the audit
// markdown and the bench JSON metadata. Tests and benches can force a
// level in-process with SetSimdLevelOverride.
//
// Bit-parallel row sets: cluster membership and identifiability bitmaps
// are packed 64 rows to a word, so OR/AND-NOT merges and popcounts touch
// 1/64th of the memory the byte bitmaps did. The word helpers have no
// dispatch level — word-parallelism is available everywhere — but the
// low-cardinality bitset Intersect fast path that builds on them is
// gated off when METALEAK_SIMD=off so the scalar configuration measures
// the pure reference engine.
#ifndef METALEAK_COMMON_SIMD_H_
#define METALEAK_COMMON_SIMD_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace metaleak {

/// Kernel codegen levels, ordered: a CPU that supports level L supports
/// every level below it.
enum class SimdLevel : int {
  kScalar = 0,
  kSse42 = 1,
  kAvx2 = 2,
};

/// Human-readable level name: "scalar", "sse4.2", "avx2".
const char* SimdLevelName(SimdLevel level);

/// Best level this CPU can execute (cached after the first query).
SimdLevel SupportedSimdLevel();

/// The level kernels dispatch to: min(SupportedSimdLevel, METALEAK_SIMD
/// cap), unless a test override is installed. Resolving the environment
/// happens once per process and logs the outcome at INFO.
SimdLevel ActiveSimdLevel();

/// Raw METALEAK_SIMD setting as seen at first resolution ("unset" when
/// absent). Surfaced by the audit markdown and bench metadata.
const char* SimdEnvSetting();

/// Forces ActiveSimdLevel() to `level` (tests and the scalar-vs-SIMD
/// bench axes). Levels above SupportedSimdLevel() are clamped. Must not
/// be called while kernels are running on other threads.
void SetSimdLevelOverride(SimdLevel level);

/// Removes the override installed by SetSimdLevelOverride.
void ClearSimdLevelOverride();

/// Bench hook: enables/disables the cache-streaming refinements — the
/// software prefetch in the probe-table gather kernels and the
/// radix-partitioned scatter in PositionListIndex::FromCodes — so the
/// partition bench can A/B them in one process. Neither refinement
/// changes any output, only timing. Enabled by default; must not be
/// flipped while kernels are running on other threads.
void SetStreamingOptsEnabled(bool enabled);
bool StreamingOptsEnabled();

// --- Host observability --------------------------------------------------

/// Host CPU description for bench metadata: model string from
/// /proc/cpuinfo (or "unknown"), the SIMD-relevant feature flags this
/// process detected, and the hardware thread count.
struct HostInfo {
  std::string cpu_model;
  std::string cpu_features;  // e.g. "sse4.2 avx2 avx512f"
  unsigned hardware_threads = 0;
};

HostInfo QueryHostInfo();

/// JSON fragment `"meta": {...}` describing the host and the SIMD
/// dispatch state — including the peak resident set (`max_rss_mb`) so
/// the narrow-width memory savings are visible — embedded at the top of
/// every BENCH_*.json so results are comparable across machines.
std::string BenchMetadataJson();

/// Peak resident-set size of this process in MiB (getrusage; 0 when the
/// platform does not report it).
size_t PeakRssMb();

// --- Counting kernels ----------------------------------------------------
//
// The code-equality and coded epsilon-ball kernels come in one variant
// per storage width (u8 / u16 / u32): narrow columns stream 2-4x fewer
// bytes and pack 32/16/8 lanes per AVX2 vector. Every width variant
// matches the u32 semantics exactly (codes are compared as widened
// values), so parity is checked per width against the scalar reference.

/// Number of positions r in [0, n) with a[r] == b[r] (dense code
/// equality; the Def 2.2 categorical match count).
size_t CountEqualU32(SimdLevel level, const uint32_t* a, const uint32_t* b,
                     size_t n);

/// Narrow-width variants: 32 (u8) / 16 (u16) lanes per AVX2 vector.
size_t CountEqualU8(SimdLevel level, const uint8_t* a, const uint8_t* b,
                    size_t n);
size_t CountEqualU16(SimdLevel level, const uint16_t* a, const uint16_t* b,
                     size_t n);

/// Number of positions r with a[r] == b[r] under IEEE semantics: NaN
/// entries (the NULL / non-numeric markers) never compare equal.
size_t CountEqualF64(SimdLevel level, const double* a, const double* b,
                     size_t n);

/// Fused Def 2.2/2.3 continuous scan: positions where real[r] is NaN
/// (NULL / non-numeric) are skipped entirely; everywhere else the row is
/// compared, |real-syn| <= eps matches are counted (a NaN difference
/// never matches), and (real-syn)^2 is accumulated in ascending row
/// order — bit-identical to the sequential reference sum, including NaN
/// propagation from a NaN synthetic value.
struct EpsilonBallStats {
  size_t matches = 0;
  size_t compared = 0;
  double sum_squares = 0.0;
};

EpsilonBallStats EpsilonBallMse(SimdLevel level, const double* real,
                                const double* syn, size_t n, double eps);

/// Carried-accumulator form for cache-tiled scans: continues counting and
/// summing into *stats. Splitting a scan into tiles whose lengths are
/// multiples of 4 and chaining the calls is bit-identical to one full
/// scan (the vector body processes rows in groups of 4 with lane-order
/// adds, so tile boundaries on multiples of 4 preserve the grouping; only
/// the final tile may have a scalar tail).
void EpsilonBallMseInto(SimdLevel level, const double* real,
                        const double* syn, size_t n, double eps,
                        EpsilonBallStats* stats);

/// Same scan with the synthetic side given as generation-domain codes:
/// syn value of row r is code_numeric[syn_codes[r]] (NaN = NULL or
/// non-numeric). Here a NaN on *either* side skips the row (the coded
/// reference loop's predicate). code_numeric must have an entry for
/// every code.
EpsilonBallStats EpsilonBallMseCoded(SimdLevel level, const double* real,
                                     const uint32_t* syn_codes,
                                     const double* code_numeric, size_t n,
                                     double eps);

/// Carried-accumulator forms of the coded scan, one per code width (the
/// narrow variants widen 4 indices per vector in-register before the
/// gather). Same tiling contract as EpsilonBallMseInto.
void EpsilonBallMseCodedInto(SimdLevel level, const double* real,
                             const uint32_t* syn_codes,
                             const double* code_numeric, size_t n,
                             double eps, EpsilonBallStats* stats);
void EpsilonBallMseCodedInto(SimdLevel level, const double* real,
                             const uint16_t* syn_codes,
                             const double* code_numeric, size_t n,
                             double eps, EpsilonBallStats* stats);
void EpsilonBallMseCodedInto(SimdLevel level, const double* real,
                             const uint8_t* syn_codes,
                             const double* code_numeric, size_t n,
                             double eps, EpsilonBallStats* stats);

/// counts[codes[r]] += 1 for every r. counts has num_codes entries and is
/// not cleared first. Codes must lie in [0, num_codes). Vector levels use
/// a gather-free sliced accumulation that breaks the store-forwarding
/// dependency chain of the naive loop on small dictionaries.
void HistogramU32(SimdLevel level, const uint32_t* codes, size_t n,
                  uint32_t num_codes, uint32_t* counts);

/// Narrow-width histogram variants (same sliced accumulation, 1/4 or 1/2
/// the bytes streamed).
void HistogramU8(SimdLevel level, const uint8_t* codes, size_t n,
                 uint32_t num_codes, uint32_t* counts);
void HistogramU16(SimdLevel level, const uint16_t* codes, size_t n,
                  uint32_t num_codes, uint32_t* counts);

// --- Gather kernels ------------------------------------------------------

/// out[k] = table[idx[k]] for k in [0, n): the probe-table gather of the
/// partition engine. Indices must be < 2^31 (AVX2 gathers use signed
/// 32-bit indices; every PLI row count is DCHECK-bounded far below).
void GatherI32(SimdLevel level, const int32_t* table, const uint32_t* idx,
               size_t n, int32_t* out);

/// True iff table[idx[k]] == expect for all k in [0, n): the inner loop
/// of PositionListIndex::Refines. Index bound as in GatherI32.
bool AllGatherEqualI32(SimdLevel level, const int32_t* table,
                       const uint32_t* idx, size_t n, int32_t expect);

// --- Sorted-pair scan (OD/OFD) -------------------------------------------

/// Scans sorted packed (lhs << 32 | rhs) code pairs for an order
/// violation: for every i in [lo, hi), compares pairs[i-1] and pairs[i]
/// and reports true if (lhs tie and rhs differs) or (lhs increased and
/// rhs decreased — or failed to strictly increase, when `strict`).
/// Requires lo >= 1. The pairs array must be sorted ascending.
bool OdViolationInRange(SimdLevel level, const uint64_t* pairs, size_t lo,
                        size_t hi, bool strict);

// --- Per-row accumulation kernels (tuple risk) ---------------------------

/// acc[r] += (a[r] == b[r]) for r in [0, n).
void AccumulateEqualU32(SimdLevel level, const uint32_t* a,
                        const uint32_t* b, size_t n, uint32_t* acc);

/// Narrow-width variants (codes widened in-register; 8 rows per AVX2
/// iteration at 1/4 or 1/2 the bytes streamed).
void AccumulateEqualU8(SimdLevel level, const uint8_t* a, const uint8_t* b,
                       size_t n, uint32_t* acc);
void AccumulateEqualU16(SimdLevel level, const uint16_t* a,
                        const uint16_t* b, size_t n, uint32_t* acc);

/// acc[r] += (a[r] == b[r]) under IEEE semantics (NaN never equal).
void AccumulateEqualF64(SimdLevel level, const double* a, const double* b,
                        size_t n, uint32_t* acc);

/// acc[r] += (|real[r] - syn[r]| <= eps); NaN on either side never
/// matches.
void AccumulateEpsilonMatch(SimdLevel level, const double* real,
                            const double* syn, size_t n, double eps,
                            uint32_t* acc);

/// Coded-synthetic variant: syn value of row r is
/// code_numeric[syn_codes[r]]. Overloads per code width.
void AccumulateEpsilonMatchCoded(SimdLevel level, const double* real,
                                 const uint32_t* syn_codes,
                                 const double* code_numeric, size_t n,
                                 double eps, uint32_t* acc);
void AccumulateEpsilonMatchCoded(SimdLevel level, const double* real,
                                 const uint16_t* syn_codes,
                                 const double* code_numeric, size_t n,
                                 double eps, uint32_t* acc);
void AccumulateEpsilonMatchCoded(SimdLevel level, const double* real,
                                 const uint8_t* syn_codes,
                                 const double* code_numeric, size_t n,
                                 double eps, uint32_t* acc);

/// acc[r] += (codes[r] != 0): the non-NULL cell count (code 0 is the
/// reserved NULL slot). Overloads per code width.
void AccumulateNonNull(SimdLevel level, const uint32_t* codes, size_t n,
                       uint32_t* acc);
void AccumulateNonNull(SimdLevel level, const uint16_t* codes, size_t n,
                       uint32_t* acc);
void AccumulateNonNull(SimdLevel level, const uint8_t* codes, size_t n,
                       uint32_t* acc);

// --- Bit-parallel row sets -----------------------------------------------
//
// A row set over n rows is an array of (n + 63) / 64 words; bit r of
// word r / 64 marks row r. Bits at positions >= n ("tail bits") must be
// kept zero by callers; BitsetTailMask gives the mask for the last word.

/// Words needed for n bits.
inline size_t BitsetWords(size_t n) { return (n + 63) / 64; }

/// Mask of the valid bits in the last word of an n-bit set (all-ones
/// when n is a multiple of 64 — also for n == 0, where there is no last
/// word to mask).
inline uint64_t BitsetTailMask(size_t n) {
  const size_t rem = n % 64;
  return rem == 0 ? ~uint64_t{0} : (uint64_t{1} << rem) - 1;
}

/// dst |= src, word-wise.
void BitsetOrInto(uint64_t* dst, const uint64_t* src, size_t words);

/// dst |= ~src, word-wise. Sets tail bits; callers re-mask the last word
/// with BitsetTailMask afterwards.
void BitsetOrNotInto(uint64_t* dst, const uint64_t* src, size_t words);

/// dst = a & b, word-wise; returns the popcount of the result (the
/// AND+popcount cluster intersection).
size_t BitsetAndCount(uint64_t* dst, const uint64_t* a, const uint64_t* b,
                      size_t words);

/// Popcount of a & b without materializing the AND — the counting form
/// of the cluster intersection (g3, fan-out, refinement checks need only
/// the overlap size, never the rows).
size_t BitsetAndPopcount(const uint64_t* a, const uint64_t* b,
                         size_t words);

/// Total set bits.
size_t BitsetCount(const uint64_t* words_ptr, size_t words);

/// Invokes fn(row) for every set bit, in ascending row order.
template <typename Fn>
void BitsetForEach(const uint64_t* words_ptr, size_t words, Fn&& fn) {
  for (size_t w = 0; w < words; ++w) {
    uint64_t word = words_ptr[w];
    while (word != 0) {
      const unsigned bit = static_cast<unsigned>(__builtin_ctzll(word));
      fn(w * 64 + bit);
      word &= word - 1;
    }
  }
}

}  // namespace metaleak

#endif  // METALEAK_COMMON_SIMD_H_
