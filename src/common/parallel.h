// Shared parallel runtime: a lazily-initialized global thread pool plus
// deterministic data-parallel loops.
//
// Every multi-core hot path in MetaLeak (TANE candidate validation,
// pairwise RFD scans, privacy subset scans, Monte-Carlo experiment
// rounds) runs through ParallelFor / ParallelReduce rather than spawning
// its own threads, so one pool serves the whole pipeline and thread
// creation cost is paid once per process.
//
// Determinism contract: work is split into chunks derived ONLY from
// (begin, end, grain) — never from the thread count — and ParallelReduce
// combines per-chunk partial results in ascending chunk order on the
// calling thread. Any computation whose chunk results are themselves
// deterministic therefore produces bit-identical output at every thread
// count, including 1.
//
// Nesting: a ParallelFor issued from inside a pool worker runs inline and
// serially on that worker (no new tasks), which makes nested parallel
// calls deadlock-free by construction.
#ifndef METALEAK_COMMON_PARALLEL_H_
#define METALEAK_COMMON_PARALLEL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

namespace metaleak {

/// A fixed set of worker threads draining one FIFO task queue. Usually
/// accessed through the global instance below; standalone pools exist for
/// tests.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for any worker to run.
  void Submit(std::function<void()> task);

  /// Joins the current workers (after the queue drains) and restarts with
  /// `num_threads` workers. Must not be called concurrently with Submit
  /// or from inside a worker.
  void Resize(size_t num_threads);

  size_t num_threads() const;

  /// True when the calling thread is a worker of *any* ThreadPool — used
  /// by the parallel loops to fall back to inline serial execution.
  static bool InWorker();

 private:
  void Start(size_t num_threads);
  void Stop();
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stopping_ = false;
};

/// The process-wide pool. First use initializes it with
/// `METALEAK_THREADS` (when set to a positive integer) or else the
/// hardware concurrency.
ThreadPool& GlobalThreadPool();

/// Worker count of the global pool (initializing it if needed).
size_t GlobalThreadCount();

/// Resizes the global pool: the `--threads` override hook for CLIs and
/// benches. `n == 0` restores the default (env var / hardware). Must not
/// be called while parallel work is in flight.
void SetGlobalThreadCount(size_t n);

namespace internal {

/// Number of grain-sized chunks covering [begin, end). Depends only on
/// the range and grain — the unit of the determinism contract.
inline size_t NumChunks(size_t begin, size_t end, size_t grain) {
  if (end <= begin) return 0;
  if (grain == 0) grain = 1;
  return (end - begin - 1) / grain + 1;
}

/// Runs chunk_fn(chunk_index, chunk_begin, chunk_end) for every chunk,
/// using up to `max_parallelism` pool workers (0 = pool size). Runs
/// inline and serially when only one chunk exists, parallelism is 1, or
/// the caller is already a pool worker. Rethrows the first exception a
/// chunk raised.
void RunChunks(size_t begin, size_t end, size_t grain,
               size_t max_parallelism,
               const std::function<void(size_t, size_t, size_t)>& chunk_fn);

}  // namespace internal

/// Applies fn(i) to every i in [begin, end), chunked by `grain`.
/// `max_parallelism` caps the worker fan-out (0 = pool size); results of
/// fn must not depend on execution order.
void ParallelFor(size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t)>& fn,
                 size_t max_parallelism = 0);

/// Chunk-granular variant: fn(chunk_begin, chunk_end) once per chunk.
/// Preferred on tight loops where a per-index std::function call would
/// dominate.
void ParallelForChunks(size_t begin, size_t end, size_t grain,
                       const std::function<void(size_t, size_t)>& fn,
                       size_t max_parallelism = 0);

/// Deterministic chunked reduction: partial = map(chunk_begin, chunk_end)
/// per chunk, folded as combine(acc, partial) in ascending chunk order
/// starting from `identity`. Equal to the serial fold whenever `combine`
/// is associative over the chunk decomposition (always true for exact
/// types; for floating point the chunking — hence the result — is still
/// identical at every thread count).
template <typename T, typename Map, typename Combine>
T ParallelReduce(size_t begin, size_t end, size_t grain, T identity,
                 Map map, Combine combine, size_t max_parallelism = 0) {
  const size_t num_chunks = internal::NumChunks(begin, end, grain);
  if (num_chunks == 0) return identity;
  std::vector<std::optional<T>> partials(num_chunks);
  internal::RunChunks(begin, end, grain, max_parallelism,
                      [&](size_t chunk, size_t lo, size_t hi) {
                        partials[chunk].emplace(map(lo, hi));
                      });
  T acc = std::move(identity);
  for (std::optional<T>& partial : partials) {
    acc = combine(std::move(acc), std::move(*partial));
  }
  return acc;
}

}  // namespace metaleak

#endif  // METALEAK_COMMON_PARALLEL_H_
