// Common preprocessor macros used across the MetaLeak codebase.
#ifndef METALEAK_COMMON_MACROS_H_
#define METALEAK_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>

// Marks a class as non-copyable and non-movable.
#define METALEAK_DISALLOW_COPY_AND_ASSIGN(TypeName) \
  TypeName(const TypeName&) = delete;               \
  TypeName& operator=(const TypeName&) = delete

// Internal invariant check. Unlike Status-based error reporting, a DCHECK
// failure indicates a bug inside the library, not bad user input; it aborts
// with a source location so the bug is caught close to its origin.
#ifdef NDEBUG
#define METALEAK_DCHECK(condition) \
  do {                             \
  } while (false)
#else
#define METALEAK_DCHECK(condition)                                      \
  do {                                                                  \
    if (!(condition)) {                                                 \
      std::fprintf(stderr, "DCHECK failed at %s:%d: %s\n", __FILE__,    \
                   __LINE__, #condition);                               \
      std::abort();                                                     \
    }                                                                   \
  } while (false)
#endif

// Propagates a non-OK Status from an expression, Arrow-style.
#define METALEAK_RETURN_NOT_OK(expr)             \
  do {                                           \
    ::metaleak::Status _st = (expr);             \
    if (!_st.ok()) return _st;                   \
  } while (false)

// Assigns the value of a Result<T> expression to `lhs`, or propagates its
// error Status. Usage: METALEAK_ASSIGN_OR_RETURN(auto x, MakeX());
#define METALEAK_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                   \
  if (!tmp.ok()) return tmp.status();                   \
  lhs = std::move(tmp).ValueUnsafe()

#define METALEAK_CONCAT_IMPL(x, y) x##y
#define METALEAK_CONCAT(x, y) METALEAK_CONCAT_IMPL(x, y)

#define METALEAK_ASSIGN_OR_RETURN(lhs, rexpr) \
  METALEAK_ASSIGN_OR_RETURN_IMPL(             \
      METALEAK_CONCAT(_metaleak_result_, __LINE__), lhs, rexpr)

#endif  // METALEAK_COMMON_MACROS_H_
