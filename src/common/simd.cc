#include "common/simd.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "common/macros.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

// The vector paths use per-function target attributes so this file (and
// the whole library) builds for a generic x86-64 baseline yet still
// contains AVX2 code, selected at runtime. On non-x86 targets (or
// compilers without the attribute) every level falls through to scalar.
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define METALEAK_SIMD_X86 1
#include <immintrin.h>
#else
#define METALEAK_SIMD_X86 0
#endif

namespace metaleak {

namespace {

// --- Scalar reference kernels -------------------------------------------
//
// These are the semantics oracle: the vector paths below must match them
// byte for byte on every input (tested by tests/simd_kernel_test.cc).

// Templated over the code storage width (uint8_t / uint16_t / uint32_t):
// codes compare as widened values, so every width is semantically the
// u32 kernel reading fewer bytes.
template <typename Code>
size_t ScalarCountEqualT(const Code* a, const Code* b, size_t n) {
  size_t count = 0;
  for (size_t r = 0; r < n; ++r) count += a[r] == b[r];
  return count;
}

size_t ScalarCountEqualF64(const double* a, const double* b, size_t n) {
  size_t count = 0;
  for (size_t r = 0; r < n; ++r) count += a[r] == b[r];
  return count;
}

void ScalarEpsilonBallMseInto(const double* real, const double* syn,
                              size_t n, double eps, EpsilonBallStats* out) {
  for (size_t r = 0; r < n; ++r) {
    const double rv = real[r];
    if (std::isnan(rv)) continue;
    const double d = rv - syn[r];
    if (std::abs(d) <= eps) ++out->matches;
    out->sum_squares += d * d;
    ++out->compared;
  }
}

template <typename Code>
void ScalarEpsilonBallMseCodedInto(const double* real,
                                   const Code* syn_codes,
                                   const double* code_numeric, size_t n,
                                   double eps, EpsilonBallStats* out) {
  for (size_t r = 0; r < n; ++r) {
    const double rv = real[r];
    const double sv = code_numeric[syn_codes[r]];
    if (std::isnan(rv) || std::isnan(sv)) continue;
    const double d = rv - sv;
    if (std::abs(d) <= eps) ++out->matches;
    out->sum_squares += d * d;
    ++out->compared;
  }
}

template <typename Code>
void ScalarHistogramT(const Code* codes, size_t n, uint32_t* counts) {
  for (size_t r = 0; r < n; ++r) ++counts[codes[r]];
}

// Software-prefetch distance (in gathered elements) for the probe-table
// gathers. The index stream is sequential but the table accesses are
// random; issuing the loads this far ahead hides most of the miss
// latency on large tables and is harmless on small ones. Prefetching
// never changes the gathered values, so both paths stay bit-identical
// with and without it.
constexpr size_t kGatherPrefetchAhead = 16;

void ScalarGatherI32(const int32_t* table, const uint32_t* idx, size_t n,
                     int32_t* out) {
  const bool prefetch = StreamingOptsEnabled();
  for (size_t k = 0; k < n; ++k) {
    if (prefetch && k + kGatherPrefetchAhead < n) {
      __builtin_prefetch(table + idx[k + kGatherPrefetchAhead]);
    }
    out[k] = table[idx[k]];
  }
}

bool ScalarAllGatherEqualI32(const int32_t* table, const uint32_t* idx,
                             size_t n, int32_t expect) {
  const bool prefetch = StreamingOptsEnabled();
  for (size_t k = 0; k < n; ++k) {
    if (prefetch && k + kGatherPrefetchAhead < n) {
      __builtin_prefetch(table + idx[k + kGatherPrefetchAhead]);
    }
    if (table[idx[k]] != expect) return false;
  }
  return true;
}

bool ScalarOdViolationInRange(const uint64_t* pairs, size_t lo, size_t hi,
                              bool strict) {
  for (size_t i = lo; i < hi; ++i) {
    const uint32_t px = static_cast<uint32_t>(pairs[i - 1] >> 32);
    const uint32_t py = static_cast<uint32_t>(pairs[i - 1]);
    const uint32_t cx = static_cast<uint32_t>(pairs[i] >> 32);
    const uint32_t cy = static_cast<uint32_t>(pairs[i]);
    if (cx == px) {
      if (cy != py) return true;
    } else if (strict) {
      if (cy <= py) return true;
    } else {
      if (cy < py) return true;
    }
  }
  return false;
}

template <typename Code>
void ScalarAccumulateEqualT(const Code* a, const Code* b, size_t n,
                            uint32_t* acc) {
  for (size_t r = 0; r < n; ++r) acc[r] += a[r] == b[r];
}

void ScalarAccumulateEqualF64(const double* a, const double* b, size_t n,
                              uint32_t* acc) {
  for (size_t r = 0; r < n; ++r) acc[r] += a[r] == b[r];
}

void ScalarAccumulateEpsilonMatch(const double* real, const double* syn,
                                  size_t n, double eps, uint32_t* acc) {
  for (size_t r = 0; r < n; ++r) {
    // NaN on either side fails the comparison, exactly like the skip
    // predicate of the reference scan.
    acc[r] += std::abs(real[r] - syn[r]) <= eps;
  }
}

template <typename Code>
void ScalarAccumulateEpsilonMatchCodedT(const double* real,
                                        const Code* syn_codes,
                                        const double* code_numeric, size_t n,
                                        double eps, uint32_t* acc) {
  for (size_t r = 0; r < n; ++r) {
    acc[r] += std::abs(real[r] - code_numeric[syn_codes[r]]) <= eps;
  }
}

template <typename Code>
void ScalarAccumulateNonNullT(const Code* codes, size_t n, uint32_t* acc) {
  for (size_t r = 0; r < n; ++r) acc[r] += codes[r] != 0;
}

#if METALEAK_SIMD_X86

// Widened scalar code load for the width-generic AVX2 bodies below
// (tail rows and gather-index setup). `width` is the storage size in
// bytes: 1, 2 or 4.
inline uint32_t CodeAtWidth(const void* codes, int width, size_t r) {
  switch (width) {
    case 1:
      return static_cast<const uint8_t*>(codes)[r];
    case 2:
      return static_cast<const uint16_t*>(codes)[r];
    default:
      return static_cast<const uint32_t*>(codes)[r];
  }
}

// --- SSE4.2 kernels (128-bit lanes) -------------------------------------

__attribute__((target("sse4.2"))) size_t Sse42CountEqualU32(
    const uint32_t* a, const uint32_t* b, size_t n) {
  size_t count = 0;
  size_t r = 0;
  for (; r + 4 <= n; r += 4) {
    const __m128i va =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + r));
    const __m128i vb =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + r));
    const int mask = _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(va, vb)));
    count += static_cast<size_t>(__builtin_popcount(mask));
  }
  for (; r < n; ++r) count += a[r] == b[r];
  return count;
}

__attribute__((target("sse4.2"))) size_t Sse42CountEqualF64(
    const double* a, const double* b, size_t n) {
  size_t count = 0;
  size_t r = 0;
  for (; r + 2 <= n; r += 2) {
    const __m128d va = _mm_loadu_pd(a + r);
    const __m128d vb = _mm_loadu_pd(b + r);
    const int mask = _mm_movemask_pd(_mm_cmpeq_pd(va, vb));
    count += static_cast<size_t>(__builtin_popcount(mask));
  }
  for (; r < n; ++r) count += a[r] == b[r];
  return count;
}

__attribute__((target("sse4.2"))) size_t Sse42CountEqualU16(
    const uint16_t* a, const uint16_t* b, size_t n) {
  size_t count = 0;
  size_t r = 0;
  for (; r + 8 <= n; r += 8) {
    const __m128i va =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + r));
    const __m128i vb =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + r));
    // movemask_epi8 yields 2 identical bits per 16-bit lane.
    const int mask = _mm_movemask_epi8(_mm_cmpeq_epi16(va, vb));
    count += static_cast<size_t>(__builtin_popcount(mask)) / 2;
  }
  for (; r < n; ++r) count += a[r] == b[r];
  return count;
}

__attribute__((target("sse4.2"))) size_t Sse42CountEqualU8(
    const uint8_t* a, const uint8_t* b, size_t n) {
  size_t count = 0;
  size_t r = 0;
  for (; r + 16 <= n; r += 16) {
    const __m128i va =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + r));
    const __m128i vb =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + r));
    const int mask = _mm_movemask_epi8(_mm_cmpeq_epi8(va, vb));
    count += static_cast<size_t>(__builtin_popcount(mask));
  }
  for (; r < n; ++r) count += a[r] == b[r];
  return count;
}

__attribute__((target("sse4.2"))) void Sse42EpsilonBallMseInto(
    const double* real, const double* syn, size_t n, double eps,
    EpsilonBallStats* outp) {
  EpsilonBallStats& out = *outp;
  const __m128d veps = _mm_set1_pd(eps);
  const __m128d sign_mask = _mm_set1_pd(-0.0);
  size_t r = 0;
  alignas(16) double sq[2];
  for (; r + 2 <= n; r += 2) {
    const __m128d vr = _mm_loadu_pd(real + r);
    const __m128d vs = _mm_loadu_pd(syn + r);
    // Ordered compare over the real side only: the reference scan skips
    // NaN real cells but lets a NaN synthetic value flow into the sum.
    const __m128d ord = _mm_cmpord_pd(vr, vr);
    const __m128d d = _mm_sub_pd(vr, vs);
    const __m128d ad = _mm_andnot_pd(sign_mask, d);
    // NaN fails <=, so the match mask needs no explicit ordering test.
    const __m128d mle = _mm_cmple_pd(ad, veps);
    out.matches += static_cast<size_t>(
        __builtin_popcount(_mm_movemask_pd(mle)));
    out.compared += static_cast<size_t>(
        __builtin_popcount(_mm_movemask_pd(ord)));
    // Masked squares: +0.0 in the skipped lanes. Adding +0.0 leaves the
    // accumulator bit-identical (it is never -0.0: it starts at +0.0 and
    // only non-negative squares are added — until a NaN arrives, after
    // which every add preserves the NaN exactly like the reference), so
    // the lane-order adds below round exactly like the sequential sum.
    _mm_store_pd(sq, _mm_and_pd(_mm_mul_pd(d, d), ord));
    out.sum_squares += sq[0];
    out.sum_squares += sq[1];
  }
  for (; r < n; ++r) {
    const double rv = real[r];
    if (std::isnan(rv)) continue;
    const double d = rv - syn[r];
    if (std::abs(d) <= eps) ++out.matches;
    out.sum_squares += d * d;
    ++out.compared;
  }
}

__attribute__((target("sse4.2"))) bool Sse42OdViolationInRange(
    const uint64_t* pairs, size_t lo, size_t hi, bool strict) {
  const __m128i lo32 = _mm_set1_epi64x(0xFFFFFFFFll);
  size_t i = lo;
  for (; i + 2 <= hi; i += 2) {
    const __m128i prev =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(pairs + i - 1));
    const __m128i cur =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(pairs + i));
    // Codes are < 2^32, so the unpacked halves are non-negative 64-bit
    // values and the signed 64-bit compares below are exact.
    const __m128i px = _mm_srli_epi64(prev, 32);
    const __m128i py = _mm_and_si128(prev, lo32);
    const __m128i cx = _mm_srli_epi64(cur, 32);
    const __m128i cy = _mm_and_si128(cur, lo32);
    const __m128i eqx = _mm_cmpeq_epi64(px, cx);
    const __m128i eqy = _mm_cmpeq_epi64(py, cy);
    const __m128i tie_viol = _mm_andnot_si128(eqy, eqx);
    __m128i step_viol;
    if (strict) {
      // Violation on an lhs step: !(cy > py).
      step_viol = _mm_andnot_si128(_mm_cmpgt_epi64(cy, py),
                                   _mm_andnot_si128(eqx, _mm_set1_epi8(-1)));
    } else {
      // Violation on an lhs step: cy < py.
      step_viol = _mm_andnot_si128(eqx, _mm_cmpgt_epi64(py, cy));
    }
    if (_mm_movemask_epi8(_mm_or_si128(tie_viol, step_viol)) != 0) {
      return true;
    }
  }
  return ScalarOdViolationInRange(pairs, i, hi, strict);
}

__attribute__((target("sse4.2"))) void Sse42AccumulateEqualU32(
    const uint32_t* a, const uint32_t* b, size_t n, uint32_t* acc) {
  size_t r = 0;
  for (; r + 4 <= n; r += 4) {
    const __m128i va =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + r));
    const __m128i vb =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + r));
    __m128i vacc = _mm_loadu_si128(reinterpret_cast<const __m128i*>(acc + r));
    // The equality mask is -1 per matching lane; subtracting adds 1.
    vacc = _mm_sub_epi32(vacc, _mm_cmpeq_epi32(va, vb));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(acc + r), vacc);
  }
  for (; r < n; ++r) acc[r] += a[r] == b[r];
}

__attribute__((target("sse4.2"))) void Sse42AccumulateEqualU16(
    const uint16_t* a, const uint16_t* b, size_t n, uint32_t* acc) {
  size_t r = 0;
  for (; r + 4 <= n; r += 4) {
    // Widen 4 codes per side in-register; the compare/accumulate is then
    // exactly the u32 kernel reading half the bytes.
    const __m128i va = _mm_cvtepu16_epi32(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(a + r)));
    const __m128i vb = _mm_cvtepu16_epi32(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(b + r)));
    __m128i vacc = _mm_loadu_si128(reinterpret_cast<const __m128i*>(acc + r));
    vacc = _mm_sub_epi32(vacc, _mm_cmpeq_epi32(va, vb));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(acc + r), vacc);
  }
  for (; r < n; ++r) acc[r] += a[r] == b[r];
}

__attribute__((target("sse4.2"))) void Sse42AccumulateEqualU8(
    const uint8_t* a, const uint8_t* b, size_t n, uint32_t* acc) {
  size_t r = 0;
  for (; r + 4 <= n; r += 4) {
    int ia;
    int ib;
    std::memcpy(&ia, a + r, 4);
    std::memcpy(&ib, b + r, 4);
    const __m128i va = _mm_cvtepu8_epi32(_mm_cvtsi32_si128(ia));
    const __m128i vb = _mm_cvtepu8_epi32(_mm_cvtsi32_si128(ib));
    __m128i vacc = _mm_loadu_si128(reinterpret_cast<const __m128i*>(acc + r));
    vacc = _mm_sub_epi32(vacc, _mm_cmpeq_epi32(va, vb));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(acc + r), vacc);
  }
  for (; r < n; ++r) acc[r] += a[r] == b[r];
}

__attribute__((target("sse4.2"))) void Sse42AccumulateNonNull(
    const uint32_t* codes, size_t n, uint32_t* acc) {
  const __m128i zero = _mm_setzero_si128();
  const __m128i ones = _mm_set1_epi32(1);
  size_t r = 0;
  for (; r + 4 <= n; r += 4) {
    const __m128i vc =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(codes + r));
    __m128i vacc = _mm_loadu_si128(reinterpret_cast<const __m128i*>(acc + r));
    // 1 + (codes == 0 ? -1 : 0) = the non-NULL indicator.
    vacc = _mm_add_epi32(vacc, _mm_add_epi32(ones, _mm_cmpeq_epi32(vc, zero)));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(acc + r), vacc);
  }
  for (; r < n; ++r) acc[r] += codes[r] != 0;
}

__attribute__((target("sse4.2"))) void Sse42AccumulateNonNullU16(
    const uint16_t* codes, size_t n, uint32_t* acc) {
  const __m128i zero = _mm_setzero_si128();
  const __m128i ones = _mm_set1_epi32(1);
  size_t r = 0;
  for (; r + 4 <= n; r += 4) {
    const __m128i vc = _mm_cvtepu16_epi32(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(codes + r)));
    __m128i vacc = _mm_loadu_si128(reinterpret_cast<const __m128i*>(acc + r));
    vacc = _mm_add_epi32(vacc, _mm_add_epi32(ones, _mm_cmpeq_epi32(vc, zero)));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(acc + r), vacc);
  }
  for (; r < n; ++r) acc[r] += codes[r] != 0;
}

__attribute__((target("sse4.2"))) void Sse42AccumulateNonNullU8(
    const uint8_t* codes, size_t n, uint32_t* acc) {
  const __m128i zero = _mm_setzero_si128();
  const __m128i ones = _mm_set1_epi32(1);
  size_t r = 0;
  for (; r + 4 <= n; r += 4) {
    int ic;
    std::memcpy(&ic, codes + r, 4);
    const __m128i vc = _mm_cvtepu8_epi32(_mm_cvtsi32_si128(ic));
    __m128i vacc = _mm_loadu_si128(reinterpret_cast<const __m128i*>(acc + r));
    vacc = _mm_add_epi32(vacc, _mm_add_epi32(ones, _mm_cmpeq_epi32(vc, zero)));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(acc + r), vacc);
  }
  for (; r < n; ++r) acc[r] += codes[r] != 0;
}

// --- AVX2 kernels (256-bit lanes, hardware gathers) ---------------------

__attribute__((target("avx2"))) size_t Avx2CountEqualU32(const uint32_t* a,
                                                         const uint32_t* b,
                                                         size_t n) {
  size_t count = 0;
  size_t r = 0;
  for (; r + 8 <= n; r += 8) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + r));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + r));
    const int mask =
        _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpeq_epi32(va, vb)));
    count += static_cast<size_t>(__builtin_popcount(mask));
  }
  for (; r < n; ++r) count += a[r] == b[r];
  return count;
}

__attribute__((target("avx2"))) size_t Avx2CountEqualU16(const uint16_t* a,
                                                         const uint16_t* b,
                                                         size_t n) {
  size_t count = 0;
  size_t r = 0;
  for (; r + 16 <= n; r += 16) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + r));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + r));
    // movemask_epi8 yields 2 identical bits per 16-bit lane.
    const int mask = _mm256_movemask_epi8(_mm256_cmpeq_epi16(va, vb));
    count += static_cast<size_t>(
                 __builtin_popcount(static_cast<unsigned>(mask))) /
             2;
  }
  for (; r < n; ++r) count += a[r] == b[r];
  return count;
}

__attribute__((target("avx2"))) size_t Avx2CountEqualU8(const uint8_t* a,
                                                        const uint8_t* b,
                                                        size_t n) {
  size_t count = 0;
  size_t r = 0;
  for (; r + 32 <= n; r += 32) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + r));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + r));
    const int mask = _mm256_movemask_epi8(_mm256_cmpeq_epi8(va, vb));
    count += static_cast<size_t>(
        __builtin_popcount(static_cast<unsigned>(mask)));
  }
  for (; r < n; ++r) count += a[r] == b[r];
  return count;
}

__attribute__((target("avx2"))) size_t Avx2CountEqualF64(const double* a,
                                                         const double* b,
                                                         size_t n) {
  size_t count = 0;
  size_t r = 0;
  for (; r + 4 <= n; r += 4) {
    const __m256d va = _mm256_loadu_pd(a + r);
    const __m256d vb = _mm256_loadu_pd(b + r);
    const int mask =
        _mm256_movemask_pd(_mm256_cmp_pd(va, vb, _CMP_EQ_OQ));
    count += static_cast<size_t>(__builtin_popcount(mask));
  }
  for (; r < n; ++r) count += a[r] == b[r];
  return count;
}

__attribute__((target("avx2"))) void Avx2EpsilonBallMseBody(
    const double* real, const double* syn, const void* syn_codes,
    int code_width, const double* code_numeric, size_t n, double eps,
    EpsilonBallStats* outp) {
  // Shared body for the plain and coded variants: `syn` supplies the
  // synthetic lane values directly, or (when null) they are gathered
  // through code_numeric[syn_codes[r]] with `code_width`-byte indices
  // widened in-register. Accumulates into *outp so cache-tiled callers
  // can carry the stats across tiles (bit-identical on multiple-of-4
  // tile boundaries: the 4-row lane grouping is preserved).
  EpsilonBallStats& out = *outp;
  const __m256d veps = _mm256_set1_pd(eps);
  const __m256d sign_mask = _mm256_set1_pd(-0.0);
  size_t r = 0;
  alignas(32) double sq[4];
  for (; r + 4 <= n; r += 4) {
    const __m256d vr = _mm256_loadu_pd(real + r);
    __m256d vs;
    if (syn != nullptr) {
      vs = _mm256_loadu_pd(syn + r);
    } else {
      __m128i idx;
      if (code_width == 4) {
        idx = _mm_loadu_si128(reinterpret_cast<const __m128i*>(
            static_cast<const uint32_t*>(syn_codes) + r));
      } else if (code_width == 2) {
        idx = _mm_cvtepu16_epi32(_mm_loadl_epi64(
            reinterpret_cast<const __m128i*>(
                static_cast<const uint16_t*>(syn_codes) + r)));
      } else {
        int packed;
        std::memcpy(&packed, static_cast<const uint8_t*>(syn_codes) + r, 4);
        idx = _mm_cvtepu8_epi32(_mm_cvtsi32_si128(packed));
      }
      // Masked gather with a zeroed source: identical to the plain
      // gather but avoids the _mm256_undefined_pd() the plain intrinsic
      // expands to (GCC flags it -Wmaybe-uninitialized).
      vs = _mm256_mask_i32gather_pd(
          _mm256_setzero_pd(), code_numeric, idx,
          _mm256_castsi256_pd(_mm256_set1_epi64x(-1)), 8);
    }
    // Plain variant: skip on real-side NaN only. Coded variant: skip
    // when either side is NaN (see the header contract).
    const __m256d ord = syn != nullptr
                            ? _mm256_cmp_pd(vr, vr, _CMP_ORD_Q)
                            : _mm256_cmp_pd(vr, vs, _CMP_ORD_Q);
    const __m256d d = _mm256_sub_pd(vr, vs);
    const __m256d ad = _mm256_andnot_pd(sign_mask, d);
    const __m256d mle = _mm256_cmp_pd(ad, veps, _CMP_LE_OQ);
    out.matches +=
        static_cast<size_t>(__builtin_popcount(_mm256_movemask_pd(mle)));
    out.compared +=
        static_cast<size_t>(__builtin_popcount(_mm256_movemask_pd(ord)));
    // Masked squares added in lane order: bit-identical to the
    // sequential reference (see the SSE4.2 variant for the argument).
    _mm256_store_pd(sq, _mm256_and_pd(_mm256_mul_pd(d, d), ord));
    out.sum_squares += sq[0];
    out.sum_squares += sq[1];
    out.sum_squares += sq[2];
    out.sum_squares += sq[3];
  }
  for (; r < n; ++r) {
    const double rv = real[r];
    const double sv = syn != nullptr
                          ? syn[r]
                          : code_numeric[CodeAtWidth(syn_codes, code_width, r)];
    if (std::isnan(rv) || (syn == nullptr && std::isnan(sv))) continue;
    const double d = rv - sv;
    if (std::abs(d) <= eps) ++out.matches;
    out.sum_squares += d * d;
    ++out.compared;
  }
}

__attribute__((target("avx2"))) void Avx2GatherI32(const int32_t* table,
                                                   const uint32_t* idx,
                                                   size_t n, int32_t* out) {
  const bool prefetch = StreamingOptsEnabled();
  size_t k = 0;
  for (; k + 8 <= n; k += 8) {
    if (prefetch && k + kGatherPrefetchAhead + 8 <= n) {
      for (size_t j = 0; j < 8; ++j) {
        __builtin_prefetch(table + idx[k + kGatherPrefetchAhead + j]);
      }
    }
    const __m256i vidx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx + k));
    const __m256i vals = _mm256_mask_i32gather_epi32(
        _mm256_setzero_si256(), table, vidx, _mm256_set1_epi32(-1), 4);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + k), vals);
  }
  for (; k < n; ++k) out[k] = table[idx[k]];
}

__attribute__((target("avx2"))) bool Avx2AllGatherEqualI32(
    const int32_t* table, const uint32_t* idx, size_t n, int32_t expect) {
  const __m256i vexpect = _mm256_set1_epi32(expect);
  size_t k = 0;
  for (; k + 8 <= n; k += 8) {
    const __m256i vidx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx + k));
    const __m256i vals = _mm256_mask_i32gather_epi32(
        _mm256_setzero_si256(), table, vidx, _mm256_set1_epi32(-1), 4);
    if (_mm256_movemask_epi8(_mm256_cmpeq_epi32(vals, vexpect)) != -1) {
      return false;
    }
  }
  for (; k < n; ++k) {
    if (table[idx[k]] != expect) return false;
  }
  return true;
}

__attribute__((target("avx2"))) bool Avx2OdViolationInRange(
    const uint64_t* pairs, size_t lo, size_t hi, bool strict) {
  const __m256i lo32 = _mm256_set1_epi64x(0xFFFFFFFFll);
  const __m256i all_ones = _mm256_set1_epi8(-1);
  size_t i = lo;
  for (; i + 4 <= hi; i += 4) {
    const __m256i prev =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(pairs + i - 1));
    const __m256i cur =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(pairs + i));
    const __m256i px = _mm256_srli_epi64(prev, 32);
    const __m256i py = _mm256_and_si256(prev, lo32);
    const __m256i cx = _mm256_srli_epi64(cur, 32);
    const __m256i cy = _mm256_and_si256(cur, lo32);
    const __m256i eqx = _mm256_cmpeq_epi64(px, cx);
    const __m256i eqy = _mm256_cmpeq_epi64(py, cy);
    const __m256i tie_viol = _mm256_andnot_si256(eqy, eqx);
    __m256i step_viol;
    if (strict) {
      step_viol = _mm256_andnot_si256(_mm256_cmpgt_epi64(cy, py),
                                      _mm256_andnot_si256(eqx, all_ones));
    } else {
      step_viol = _mm256_andnot_si256(eqx, _mm256_cmpgt_epi64(py, cy));
    }
    if (_mm256_movemask_epi8(_mm256_or_si256(tie_viol, step_viol)) != 0) {
      return true;
    }
  }
  return ScalarOdViolationInRange(pairs, i, hi, strict);
}

__attribute__((target("avx2"))) void Avx2AccumulateEqualU32(
    const uint32_t* a, const uint32_t* b, size_t n, uint32_t* acc) {
  size_t r = 0;
  for (; r + 8 <= n; r += 8) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + r));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + r));
    __m256i vacc =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + r));
    vacc = _mm256_sub_epi32(vacc, _mm256_cmpeq_epi32(va, vb));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + r), vacc);
  }
  for (; r < n; ++r) acc[r] += a[r] == b[r];
}

__attribute__((target("avx2"))) void Avx2AccumulateEqualU16(
    const uint16_t* a, const uint16_t* b, size_t n, uint32_t* acc) {
  size_t r = 0;
  for (; r + 8 <= n; r += 8) {
    // Widen 8 codes per side in-register; the compare/accumulate is then
    // exactly the u32 kernel reading half the bytes.
    const __m256i va = _mm256_cvtepu16_epi32(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + r)));
    const __m256i vb = _mm256_cvtepu16_epi32(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + r)));
    __m256i vacc =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + r));
    vacc = _mm256_sub_epi32(vacc, _mm256_cmpeq_epi32(va, vb));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + r), vacc);
  }
  for (; r < n; ++r) acc[r] += a[r] == b[r];
}

__attribute__((target("avx2"))) void Avx2AccumulateEqualU8(
    const uint8_t* a, const uint8_t* b, size_t n, uint32_t* acc) {
  size_t r = 0;
  for (; r + 8 <= n; r += 8) {
    const __m256i va = _mm256_cvtepu8_epi32(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(a + r)));
    const __m256i vb = _mm256_cvtepu8_epi32(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(b + r)));
    __m256i vacc =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + r));
    vacc = _mm256_sub_epi32(vacc, _mm256_cmpeq_epi32(va, vb));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + r), vacc);
  }
  for (; r < n; ++r) acc[r] += a[r] == b[r];
}

__attribute__((target("avx2"))) void Avx2AccumulateEpsilonBody(
    const double* real, const double* syn, const void* syn_codes,
    int code_width, const double* code_numeric, size_t n, double eps,
    uint32_t* acc) {
  const __m256d veps = _mm256_set1_pd(eps);
  const __m256d sign_mask = _mm256_set1_pd(-0.0);
  size_t r = 0;
  for (; r + 4 <= n; r += 4) {
    const __m256d vr = _mm256_loadu_pd(real + r);
    __m256d vs;
    if (syn != nullptr) {
      vs = _mm256_loadu_pd(syn + r);
    } else {
      __m128i idx;
      if (code_width == 4) {
        idx = _mm_loadu_si128(reinterpret_cast<const __m128i*>(
            static_cast<const uint32_t*>(syn_codes) + r));
      } else if (code_width == 2) {
        idx = _mm_cvtepu16_epi32(_mm_loadl_epi64(
            reinterpret_cast<const __m128i*>(
                static_cast<const uint16_t*>(syn_codes) + r)));
      } else {
        int packed;
        std::memcpy(&packed, static_cast<const uint8_t*>(syn_codes) + r, 4);
        idx = _mm_cvtepu8_epi32(_mm_cvtsi32_si128(packed));
      }
      // Masked gather with a zeroed source: identical to the plain
      // gather but avoids the _mm256_undefined_pd() the plain intrinsic
      // expands to (GCC flags it -Wmaybe-uninitialized).
      vs = _mm256_mask_i32gather_pd(
          _mm256_setzero_pd(), code_numeric, idx,
          _mm256_castsi256_pd(_mm256_set1_epi64x(-1)), 8);
    }
    const __m256d ad = _mm256_andnot_pd(sign_mask, _mm256_sub_pd(vr, vs));
    const int mask = _mm256_movemask_pd(_mm256_cmp_pd(ad, veps, _CMP_LE_OQ));
    acc[r + 0] += (mask >> 0) & 1;
    acc[r + 1] += (mask >> 1) & 1;
    acc[r + 2] += (mask >> 2) & 1;
    acc[r + 3] += (mask >> 3) & 1;
  }
  for (; r < n; ++r) {
    const double sv = syn != nullptr
                          ? syn[r]
                          : code_numeric[CodeAtWidth(syn_codes, code_width, r)];
    acc[r] += std::abs(real[r] - sv) <= eps;
  }
}

__attribute__((target("avx2"))) void Avx2AccumulateEqualF64(
    const double* a, const double* b, size_t n, uint32_t* acc) {
  size_t r = 0;
  for (; r + 4 <= n; r += 4) {
    const __m256d va = _mm256_loadu_pd(a + r);
    const __m256d vb = _mm256_loadu_pd(b + r);
    const int mask =
        _mm256_movemask_pd(_mm256_cmp_pd(va, vb, _CMP_EQ_OQ));
    acc[r + 0] += (mask >> 0) & 1;
    acc[r + 1] += (mask >> 1) & 1;
    acc[r + 2] += (mask >> 2) & 1;
    acc[r + 3] += (mask >> 3) & 1;
  }
  for (; r < n; ++r) acc[r] += a[r] == b[r];
}

__attribute__((target("avx2"))) void Avx2AccumulateNonNull(
    const uint32_t* codes, size_t n, uint32_t* acc) {
  const __m256i zero = _mm256_setzero_si256();
  const __m256i ones = _mm256_set1_epi32(1);
  size_t r = 0;
  for (; r + 8 <= n; r += 8) {
    const __m256i vc =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(codes + r));
    __m256i vacc =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + r));
    vacc = _mm256_add_epi32(
        vacc, _mm256_add_epi32(ones, _mm256_cmpeq_epi32(vc, zero)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + r), vacc);
  }
  for (; r < n; ++r) acc[r] += codes[r] != 0;
}

__attribute__((target("avx2"))) void Avx2AccumulateNonNullU16(
    const uint16_t* codes, size_t n, uint32_t* acc) {
  const __m256i zero = _mm256_setzero_si256();
  const __m256i ones = _mm256_set1_epi32(1);
  size_t r = 0;
  for (; r + 8 <= n; r += 8) {
    const __m256i vc = _mm256_cvtepu16_epi32(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(codes + r)));
    __m256i vacc =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + r));
    vacc = _mm256_add_epi32(
        vacc, _mm256_add_epi32(ones, _mm256_cmpeq_epi32(vc, zero)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + r), vacc);
  }
  for (; r < n; ++r) acc[r] += codes[r] != 0;
}

__attribute__((target("avx2"))) void Avx2AccumulateNonNullU8(
    const uint8_t* codes, size_t n, uint32_t* acc) {
  const __m256i zero = _mm256_setzero_si256();
  const __m256i ones = _mm256_set1_epi32(1);
  size_t r = 0;
  for (; r + 8 <= n; r += 8) {
    const __m256i vc = _mm256_cvtepu8_epi32(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(codes + r)));
    __m256i vacc =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + r));
    vacc = _mm256_add_epi32(
        vacc, _mm256_add_epi32(ones, _mm256_cmpeq_epi32(vc, zero)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + r), vacc);
  }
  for (; r < n; ++r) acc[r] += codes[r] != 0;
}

#endif  // METALEAK_SIMD_X86

// --- Sliced histogram ----------------------------------------------------

// Gather-free counting with four interleaved count arrays: consecutive
// codes hit different slices, breaking the store-forwarding stall the
// naive ++counts[code] loop suffers on skewed data. Exact integer sums,
// so the result is identical to the naive loop. Only worth the extra
// memory on small dictionaries.
constexpr uint32_t kHistogramSliceMaxCodes = 4096;

template <typename Code>
void SlicedHistogramT(const Code* codes, size_t n, uint32_t num_codes,
                      uint32_t* counts) {
  std::vector<uint32_t> sliced(size_t{4} * num_codes, 0);
  uint32_t* s0 = sliced.data();
  uint32_t* s1 = s0 + num_codes;
  uint32_t* s2 = s1 + num_codes;
  uint32_t* s3 = s2 + num_codes;
  size_t r = 0;
  for (; r + 4 <= n; r += 4) {
    ++s0[codes[r + 0]];
    ++s1[codes[r + 1]];
    ++s2[codes[r + 2]];
    ++s3[codes[r + 3]];
  }
  for (; r < n; ++r) ++s0[codes[r]];
  for (uint32_t c = 0; c < num_codes; ++c) {
    counts[c] += s0[c] + s1[c] + s2[c] + s3[c];
  }
}

// Shared gate + dispatch for all three histogram widths.
template <typename Code>
void HistogramDispatchT(SimdLevel level, const Code* codes, size_t n,
                        uint32_t num_codes, uint32_t* counts) {
  // The slices only pay off when the 4x counts fit comfortably in cache
  // and the scan is long enough to amortize the final merge.
  if (level != SimdLevel::kScalar && num_codes > 0 &&
      num_codes <= kHistogramSliceMaxCodes &&
      n >= size_t{8} * num_codes) {
    SlicedHistogramT(codes, n, num_codes, counts);
    return;
  }
  ScalarHistogramT(codes, n, counts);
}

// --- Dispatch state ------------------------------------------------------

SimdLevel DetectSupportedLevel() {
#if METALEAK_SIMD_X86
  if (__builtin_cpu_supports("avx2")) return SimdLevel::kAvx2;
  if (__builtin_cpu_supports("sse4.2")) return SimdLevel::kSse42;
#endif
  return SimdLevel::kScalar;
}

struct EnvResolution {
  SimdLevel level = SimdLevel::kScalar;
  std::string raw = "unset";
};

const EnvResolution& ResolveEnv() {
  static const EnvResolution resolved = [] {
    EnvResolution r;
    const SimdLevel supported = SupportedSimdLevel();
    r.level = supported;
    const char* env = std::getenv("METALEAK_SIMD");
    if (env != nullptr && env[0] != '\0') {
      r.raw = env;
      std::string v(env);
      for (char& ch : v) ch = static_cast<char>(std::tolower(ch));
      if (v == "off" || v == "scalar" || v == "0" || v == "none") {
        r.level = SimdLevel::kScalar;
      } else if (v == "sse4.2" || v == "sse42" || v == "sse4") {
        r.level = std::min(supported, SimdLevel::kSse42);
      } else if (v == "avx2") {
        r.level = std::min(supported, SimdLevel::kAvx2);
      } else if (v != "auto") {
        METALEAK_LOG(kWarning)
            << "unrecognized METALEAK_SIMD value \"" << env
            << "\" (expected off|sse4.2|avx2|auto); using auto";
      }
    }
    METALEAK_LOG(kInfo) << "SIMD dispatch: " << SimdLevelName(r.level)
                        << " kernels (supported: "
                        << SimdLevelName(supported)
                        << ", METALEAK_SIMD=" << r.raw << ")";
    return r;
  }();
  return resolved;
}

// Test/bench override: -1 = none. Relaxed atomics are enough — overrides
// are installed between kernel phases, never mid-kernel.
std::atomic<int> g_level_override{-1};

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
    }
    if (static_cast<unsigned char>(c) >= 0x20) out.push_back(c);
  }
  return out;
}

}  // namespace

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kSse42:
      return "sse4.2";
    case SimdLevel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

SimdLevel SupportedSimdLevel() {
  static const SimdLevel level = DetectSupportedLevel();
  return level;
}

SimdLevel ActiveSimdLevel() {
  const int override_level = g_level_override.load(std::memory_order_relaxed);
  if (override_level >= 0) return static_cast<SimdLevel>(override_level);
  return ResolveEnv().level;
}

const char* SimdEnvSetting() { return ResolveEnv().raw.c_str(); }

void SetSimdLevelOverride(SimdLevel level) {
  const SimdLevel clamped = std::min(level, SupportedSimdLevel());
  g_level_override.store(static_cast<int>(clamped),
                         std::memory_order_relaxed);
}

void ClearSimdLevelOverride() {
  g_level_override.store(-1, std::memory_order_relaxed);
}

namespace {
std::atomic<bool> g_streaming_opts{true};
}  // namespace

void SetStreamingOptsEnabled(bool enabled) {
  g_streaming_opts.store(enabled, std::memory_order_relaxed);
}

bool StreamingOptsEnabled() {
  return g_streaming_opts.load(std::memory_order_relaxed);
}

HostInfo QueryHostInfo() {
  HostInfo info;
  info.cpu_model = "unknown";
  std::ifstream cpuinfo("/proc/cpuinfo");
  std::string line;
  while (std::getline(cpuinfo, line)) {
    if (line.rfind("model name", 0) == 0) {
      const size_t colon = line.find(':');
      if (colon != std::string::npos) {
        size_t start = line.find_first_not_of(" \t", colon + 1);
        if (start != std::string::npos) info.cpu_model = line.substr(start);
      }
      break;
    }
  }
  std::ostringstream features;
#if METALEAK_SIMD_X86
  const char* sep = "";
  if (__builtin_cpu_supports("sse4.2")) {
    features << sep << "sse4.2";
    sep = " ";
  }
  if (__builtin_cpu_supports("popcnt")) {
    features << sep << "popcnt";
    sep = " ";
  }
  if (__builtin_cpu_supports("avx2")) {
    features << sep << "avx2";
    sep = " ";
  }
  if (__builtin_cpu_supports("avx512f")) {
    features << sep << "avx512f";
    sep = " ";
  }
#else
  features << "non-x86";
#endif
  info.cpu_features = features.str();
  info.hardware_threads = std::thread::hardware_concurrency();
  return info;
}

size_t PeakRssMb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
#if defined(__APPLE__)
    // macOS reports ru_maxrss in bytes.
    return static_cast<size_t>(usage.ru_maxrss) / (1024 * 1024);
#else
    // Linux reports ru_maxrss in KiB.
    return static_cast<size_t>(usage.ru_maxrss) / 1024;
#endif
  }
#endif
  return 0;
}

std::string BenchMetadataJson() {
  const HostInfo host = QueryHostInfo();
  const char* threads_env = std::getenv("METALEAK_THREADS");
  std::ostringstream os;
  os << "\"meta\": {"
     << "\"cpu_model\": \"" << JsonEscape(host.cpu_model) << "\", "
     << "\"cpu_features\": \"" << JsonEscape(host.cpu_features) << "\", "
     << "\"hardware_threads\": " << host.hardware_threads << ", "
     << "\"simd_level\": \"" << SimdLevelName(ActiveSimdLevel()) << "\", "
     << "\"simd_supported\": \"" << SimdLevelName(SupportedSimdLevel())
     << "\", "
     << "\"simd_env\": \"" << JsonEscape(SimdEnvSetting()) << "\", "
     << "\"threads_env\": \""
     << JsonEscape(threads_env != nullptr ? threads_env : "unset")
     << "\", "
     << "\"max_rss_mb\": " << PeakRssMb() << "}";
  return os.str();
}

// --- Kernel dispatch -----------------------------------------------------

size_t CountEqualU32(SimdLevel level, const uint32_t* a, const uint32_t* b,
                     size_t n) {
#if METALEAK_SIMD_X86
  switch (level) {
    case SimdLevel::kAvx2:
      return Avx2CountEqualU32(a, b, n);
    case SimdLevel::kSse42:
      return Sse42CountEqualU32(a, b, n);
    case SimdLevel::kScalar:
      break;
  }
#else
  (void)level;
#endif
  return ScalarCountEqualT(a, b, n);
}

size_t CountEqualU16(SimdLevel level, const uint16_t* a, const uint16_t* b,
                     size_t n) {
#if METALEAK_SIMD_X86
  switch (level) {
    case SimdLevel::kAvx2:
      return Avx2CountEqualU16(a, b, n);
    case SimdLevel::kSse42:
      return Sse42CountEqualU16(a, b, n);
    case SimdLevel::kScalar:
      break;
  }
#else
  (void)level;
#endif
  return ScalarCountEqualT(a, b, n);
}

size_t CountEqualU8(SimdLevel level, const uint8_t* a, const uint8_t* b,
                    size_t n) {
#if METALEAK_SIMD_X86
  switch (level) {
    case SimdLevel::kAvx2:
      return Avx2CountEqualU8(a, b, n);
    case SimdLevel::kSse42:
      return Sse42CountEqualU8(a, b, n);
    case SimdLevel::kScalar:
      break;
  }
#else
  (void)level;
#endif
  return ScalarCountEqualT(a, b, n);
}

size_t CountEqualF64(SimdLevel level, const double* a, const double* b,
                     size_t n) {
#if METALEAK_SIMD_X86
  switch (level) {
    case SimdLevel::kAvx2:
      return Avx2CountEqualF64(a, b, n);
    case SimdLevel::kSse42:
      return Sse42CountEqualF64(a, b, n);
    case SimdLevel::kScalar:
      break;
  }
#else
  (void)level;
#endif
  return ScalarCountEqualF64(a, b, n);
}

void EpsilonBallMseInto(SimdLevel level, const double* real,
                        const double* syn, size_t n, double eps,
                        EpsilonBallStats* stats) {
#if METALEAK_SIMD_X86
  switch (level) {
    case SimdLevel::kAvx2:
      Avx2EpsilonBallMseBody(real, syn, nullptr, 4, nullptr, n, eps, stats);
      return;
    case SimdLevel::kSse42:
      Sse42EpsilonBallMseInto(real, syn, n, eps, stats);
      return;
    case SimdLevel::kScalar:
      break;
  }
#else
  (void)level;
#endif
  ScalarEpsilonBallMseInto(real, syn, n, eps, stats);
}

EpsilonBallStats EpsilonBallMse(SimdLevel level, const double* real,
                                const double* syn, size_t n, double eps) {
  EpsilonBallStats out;
  EpsilonBallMseInto(level, real, syn, n, eps, &out);
  return out;
}

namespace {

template <typename Code>
void EpsilonBallMseCodedIntoDispatch(SimdLevel level, const double* real,
                                     const Code* syn_codes,
                                     const double* code_numeric, size_t n,
                                     double eps, EpsilonBallStats* stats) {
#if METALEAK_SIMD_X86
  if (level == SimdLevel::kAvx2) {
    Avx2EpsilonBallMseBody(real, nullptr, syn_codes,
                           static_cast<int>(sizeof(Code)), code_numeric, n,
                           eps, stats);
    return;
  }
#else
  (void)level;
#endif
  // No hardware gather below AVX2; the scalar loop is the best option.
  ScalarEpsilonBallMseCodedInto(real, syn_codes, code_numeric, n, eps,
                                stats);
}

}  // namespace

void EpsilonBallMseCodedInto(SimdLevel level, const double* real,
                             const uint32_t* syn_codes,
                             const double* code_numeric, size_t n,
                             double eps, EpsilonBallStats* stats) {
  EpsilonBallMseCodedIntoDispatch(level, real, syn_codes, code_numeric, n,
                                  eps, stats);
}

void EpsilonBallMseCodedInto(SimdLevel level, const double* real,
                             const uint16_t* syn_codes,
                             const double* code_numeric, size_t n,
                             double eps, EpsilonBallStats* stats) {
  EpsilonBallMseCodedIntoDispatch(level, real, syn_codes, code_numeric, n,
                                  eps, stats);
}

void EpsilonBallMseCodedInto(SimdLevel level, const double* real,
                             const uint8_t* syn_codes,
                             const double* code_numeric, size_t n,
                             double eps, EpsilonBallStats* stats) {
  EpsilonBallMseCodedIntoDispatch(level, real, syn_codes, code_numeric, n,
                                  eps, stats);
}

EpsilonBallStats EpsilonBallMseCoded(SimdLevel level, const double* real,
                                     const uint32_t* syn_codes,
                                     const double* code_numeric, size_t n,
                                     double eps) {
  EpsilonBallStats out;
  EpsilonBallMseCodedInto(level, real, syn_codes, code_numeric, n, eps,
                          &out);
  return out;
}

void HistogramU32(SimdLevel level, const uint32_t* codes, size_t n,
                  uint32_t num_codes, uint32_t* counts) {
  HistogramDispatchT(level, codes, n, num_codes, counts);
}

void HistogramU16(SimdLevel level, const uint16_t* codes, size_t n,
                  uint32_t num_codes, uint32_t* counts) {
  HistogramDispatchT(level, codes, n, num_codes, counts);
}

void HistogramU8(SimdLevel level, const uint8_t* codes, size_t n,
                 uint32_t num_codes, uint32_t* counts) {
  HistogramDispatchT(level, codes, n, num_codes, counts);
}

void GatherI32(SimdLevel level, const int32_t* table, const uint32_t* idx,
               size_t n, int32_t* out) {
#if METALEAK_SIMD_X86
  if (level == SimdLevel::kAvx2) {
    Avx2GatherI32(table, idx, n, out);
    return;
  }
#else
  (void)level;
#endif
  ScalarGatherI32(table, idx, n, out);
}

bool AllGatherEqualI32(SimdLevel level, const int32_t* table,
                       const uint32_t* idx, size_t n, int32_t expect) {
#if METALEAK_SIMD_X86
  if (level == SimdLevel::kAvx2) {
    return Avx2AllGatherEqualI32(table, idx, n, expect);
  }
#else
  (void)level;
#endif
  return ScalarAllGatherEqualI32(table, idx, n, expect);
}

bool OdViolationInRange(SimdLevel level, const uint64_t* pairs, size_t lo,
                        size_t hi, bool strict) {
  METALEAK_DCHECK(lo >= 1);
#if METALEAK_SIMD_X86
  switch (level) {
    case SimdLevel::kAvx2:
      return Avx2OdViolationInRange(pairs, lo, hi, strict);
    case SimdLevel::kSse42:
      return Sse42OdViolationInRange(pairs, lo, hi, strict);
    case SimdLevel::kScalar:
      break;
  }
#else
  (void)level;
#endif
  return ScalarOdViolationInRange(pairs, lo, hi, strict);
}

void AccumulateEqualU32(SimdLevel level, const uint32_t* a,
                        const uint32_t* b, size_t n, uint32_t* acc) {
#if METALEAK_SIMD_X86
  switch (level) {
    case SimdLevel::kAvx2:
      Avx2AccumulateEqualU32(a, b, n, acc);
      return;
    case SimdLevel::kSse42:
      Sse42AccumulateEqualU32(a, b, n, acc);
      return;
    case SimdLevel::kScalar:
      break;
  }
#else
  (void)level;
#endif
  ScalarAccumulateEqualT(a, b, n, acc);
}

void AccumulateEqualU16(SimdLevel level, const uint16_t* a,
                        const uint16_t* b, size_t n, uint32_t* acc) {
#if METALEAK_SIMD_X86
  switch (level) {
    case SimdLevel::kAvx2:
      Avx2AccumulateEqualU16(a, b, n, acc);
      return;
    case SimdLevel::kSse42:
      Sse42AccumulateEqualU16(a, b, n, acc);
      return;
    case SimdLevel::kScalar:
      break;
  }
#else
  (void)level;
#endif
  ScalarAccumulateEqualT(a, b, n, acc);
}

void AccumulateEqualU8(SimdLevel level, const uint8_t* a, const uint8_t* b,
                       size_t n, uint32_t* acc) {
#if METALEAK_SIMD_X86
  switch (level) {
    case SimdLevel::kAvx2:
      Avx2AccumulateEqualU8(a, b, n, acc);
      return;
    case SimdLevel::kSse42:
      Sse42AccumulateEqualU8(a, b, n, acc);
      return;
    case SimdLevel::kScalar:
      break;
  }
#else
  (void)level;
#endif
  ScalarAccumulateEqualT(a, b, n, acc);
}

void AccumulateEqualF64(SimdLevel level, const double* a, const double* b,
                        size_t n, uint32_t* acc) {
#if METALEAK_SIMD_X86
  if (level == SimdLevel::kAvx2) {
    Avx2AccumulateEqualF64(a, b, n, acc);
    return;
  }
#else
  (void)level;
#endif
  ScalarAccumulateEqualF64(a, b, n, acc);
}

void AccumulateEpsilonMatch(SimdLevel level, const double* real,
                            const double* syn, size_t n, double eps,
                            uint32_t* acc) {
#if METALEAK_SIMD_X86
  if (level == SimdLevel::kAvx2) {
    Avx2AccumulateEpsilonBody(real, syn, nullptr, 4, nullptr, n, eps, acc);
    return;
  }
#else
  (void)level;
#endif
  ScalarAccumulateEpsilonMatch(real, syn, n, eps, acc);
}

namespace {

template <typename Code>
void AccumulateEpsilonMatchCodedDispatch(SimdLevel level, const double* real,
                                         const Code* syn_codes,
                                         const double* code_numeric,
                                         size_t n, double eps,
                                         uint32_t* acc) {
#if METALEAK_SIMD_X86
  if (level == SimdLevel::kAvx2) {
    Avx2AccumulateEpsilonBody(real, nullptr, syn_codes,
                              static_cast<int>(sizeof(Code)), code_numeric,
                              n, eps, acc);
    return;
  }
#else
  (void)level;
#endif
  ScalarAccumulateEpsilonMatchCodedT(real, syn_codes, code_numeric, n, eps,
                                     acc);
}

}  // namespace

void AccumulateEpsilonMatchCoded(SimdLevel level, const double* real,
                                 const uint32_t* syn_codes,
                                 const double* code_numeric, size_t n,
                                 double eps, uint32_t* acc) {
  AccumulateEpsilonMatchCodedDispatch(level, real, syn_codes, code_numeric,
                                      n, eps, acc);
}

void AccumulateEpsilonMatchCoded(SimdLevel level, const double* real,
                                 const uint16_t* syn_codes,
                                 const double* code_numeric, size_t n,
                                 double eps, uint32_t* acc) {
  AccumulateEpsilonMatchCodedDispatch(level, real, syn_codes, code_numeric,
                                      n, eps, acc);
}

void AccumulateEpsilonMatchCoded(SimdLevel level, const double* real,
                                 const uint8_t* syn_codes,
                                 const double* code_numeric, size_t n,
                                 double eps, uint32_t* acc) {
  AccumulateEpsilonMatchCodedDispatch(level, real, syn_codes, code_numeric,
                                      n, eps, acc);
}

void AccumulateNonNull(SimdLevel level, const uint32_t* codes, size_t n,
                       uint32_t* acc) {
#if METALEAK_SIMD_X86
  switch (level) {
    case SimdLevel::kAvx2:
      Avx2AccumulateNonNull(codes, n, acc);
      return;
    case SimdLevel::kSse42:
      Sse42AccumulateNonNull(codes, n, acc);
      return;
    case SimdLevel::kScalar:
      break;
  }
#else
  (void)level;
#endif
  ScalarAccumulateNonNullT(codes, n, acc);
}

void AccumulateNonNull(SimdLevel level, const uint16_t* codes, size_t n,
                       uint32_t* acc) {
#if METALEAK_SIMD_X86
  switch (level) {
    case SimdLevel::kAvx2:
      Avx2AccumulateNonNullU16(codes, n, acc);
      return;
    case SimdLevel::kSse42:
      Sse42AccumulateNonNullU16(codes, n, acc);
      return;
    case SimdLevel::kScalar:
      break;
  }
#else
  (void)level;
#endif
  ScalarAccumulateNonNullT(codes, n, acc);
}

void AccumulateNonNull(SimdLevel level, const uint8_t* codes, size_t n,
                       uint32_t* acc) {
#if METALEAK_SIMD_X86
  switch (level) {
    case SimdLevel::kAvx2:
      Avx2AccumulateNonNullU8(codes, n, acc);
      return;
    case SimdLevel::kSse42:
      Sse42AccumulateNonNullU8(codes, n, acc);
      return;
    case SimdLevel::kScalar:
      break;
  }
#else
  (void)level;
#endif
  ScalarAccumulateNonNullT(codes, n, acc);
}

// --- Bit-parallel row sets -----------------------------------------------

void BitsetOrInto(uint64_t* dst, const uint64_t* src, size_t words) {
  for (size_t w = 0; w < words; ++w) dst[w] |= src[w];
}

void BitsetOrNotInto(uint64_t* dst, const uint64_t* src, size_t words) {
  for (size_t w = 0; w < words; ++w) dst[w] |= ~src[w];
}

size_t BitsetAndCount(uint64_t* dst, const uint64_t* a, const uint64_t* b,
                      size_t words) {
  size_t count = 0;
  for (size_t w = 0; w < words; ++w) {
    const uint64_t v = a[w] & b[w];
    dst[w] = v;
    count += static_cast<size_t>(__builtin_popcountll(v));
  }
  return count;
}

size_t BitsetAndPopcount(const uint64_t* a, const uint64_t* b,
                         size_t words) {
  size_t count = 0;
  for (size_t w = 0; w < words; ++w) {
    count += static_cast<size_t>(__builtin_popcountll(a[w] & b[w]));
  }
  return count;
}

size_t BitsetCount(const uint64_t* words_ptr, size_t words) {
  size_t count = 0;
  for (size_t w = 0; w < words; ++w) {
    count += static_cast<size_t>(__builtin_popcountll(words_ptr[w]));
  }
  return count;
}

}  // namespace metaleak
