// Small string helpers shared across modules (no locale dependence).
#ifndef METALEAK_COMMON_STRING_UTIL_H_
#define METALEAK_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace metaleak {

/// Splits `input` on `delim`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> Split(std::string_view input, char delim);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view input);

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// Strict integer parse of the full string; nullopt on any violation.
std::optional<int64_t> ParseInt64(std::string_view input);

/// Strict double parse of the full string; nullopt on any violation.
std::optional<double> ParseDouble(std::string_view input);

/// True if `input` equals `prefix` on its first prefix.size() chars.
bool StartsWith(std::string_view input, std::string_view prefix);

/// Lower-cases ASCII letters.
std::string ToLower(std::string_view input);

/// Formats a double with `precision` decimal digits, trimming a bare
/// trailing dot ("12." -> "12").
std::string FormatDouble(double value, int precision);

}  // namespace metaleak

#endif  // METALEAK_COMMON_STRING_UTIL_H_
