#include "common/table_printer.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace metaleak {

TablePrinter::TablePrinter(std::string title) : title_(std::move(title)) {}

void TablePrinter::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  if (row.size() < header_.size()) row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::vector<size_t> TablePrinter::ColumnWidths() const {
  size_t ncols = header_.size();
  for (const auto& row : rows_) ncols = std::max(ncols, row.size());
  std::vector<size_t> widths(ncols, 0);
  for (size_t c = 0; c < header_.size(); ++c) {
    widths[c] = std::max(widths[c], header_[c].size());
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  return widths;
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths = ColumnWidths();
  size_t total = 0;
  for (size_t w : widths) total += w + 3;

  std::ostringstream os;
  auto rule = [&] { os << std::string(total, '-') << '\n'; };
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      os << cell << std::string(widths[c] - cell.size() + 3, ' ');
    }
    os << '\n';
  };

  if (!title_.empty()) {
    os << title_ << '\n';
  }
  rule();
  if (!header_.empty()) {
    emit_row(header_);
    rule();
  }
  for (const auto& row : rows_) emit_row(row);
  rule();
  return os.str();
}

std::string TablePrinter::ToMarkdown() const {
  std::ostringstream os;
  if (!title_.empty()) os << "### " << title_ << "\n\n";
  auto emit_row = [&](const std::vector<std::string>& row) {
    os << '|';
    for (const auto& cell : row) os << ' ' << cell << " |";
    os << '\n';
  };
  if (!header_.empty()) {
    emit_row(header_);
    os << '|';
    for (size_t c = 0; c < header_.size(); ++c) os << "---|";
    os << '\n';
  }
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

void TablePrinter::Print() const {
  std::fputs(ToString().c_str(), stdout);
}

}  // namespace metaleak
