#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <string>

#include "common/macros.h"

namespace metaleak {

namespace {

thread_local bool tls_in_worker = false;

size_t DefaultThreadCount() {
  if (const char* env = std::getenv("METALEAK_THREADS")) {
    char* end = nullptr;
    long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) return static_cast<size_t>(v);
  }
  size_t hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) { Start(num_threads); }

ThreadPool::~ThreadPool() { Stop(); }

void ThreadPool::Start(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  stopping_ = false;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void ThreadPool::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
  workers_.clear();
}

void ThreadPool::Resize(size_t num_threads) {
  METALEAK_DCHECK(!InWorker());
  Stop();
  Start(num_threads);
}

size_t ThreadPool::num_threads() const {
  std::lock_guard<std::mutex> lock(mu_);
  return workers_.size();
}

bool ThreadPool::InWorker() { return tls_in_worker; }

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  tls_in_worker = true;
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      // Drain remaining tasks even when stopping, so Resize never drops
      // queued work.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

ThreadPool& GlobalThreadPool() {
  static ThreadPool* pool = new ThreadPool(DefaultThreadCount());
  return *pool;
}

size_t GlobalThreadCount() { return GlobalThreadPool().num_threads(); }

void SetGlobalThreadCount(size_t n) {
  GlobalThreadPool().Resize(n == 0 ? DefaultThreadCount() : n);
}

namespace internal {

namespace {

// Shared state of one RunChunks batch: workers claim chunk indices from
// `next` and the caller sleeps until `completed` reaches `num_chunks`.
struct ChunkBatch {
  size_t begin = 0;
  size_t end = 0;
  size_t grain = 1;
  size_t num_chunks = 0;
  const std::function<void(size_t, size_t, size_t)>* chunk_fn = nullptr;

  std::atomic<size_t> next{0};
  std::mutex mu;
  std::condition_variable done_cv;
  size_t completed = 0;
  std::exception_ptr first_error;

  void RunOne(size_t chunk) {
    size_t lo = begin + chunk * grain;
    size_t hi = std::min(end, lo + grain);
    try {
      (*chunk_fn)(chunk, lo, hi);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu);
      if (!first_error) first_error = std::current_exception();
    }
  }

  // Claims and runs chunks until none remain, then records completion.
  void DrainLoop() {
    size_t ran = 0;
    while (true) {
      size_t chunk = next.fetch_add(1, std::memory_order_relaxed);
      if (chunk >= num_chunks) break;
      RunOne(chunk);
      ++ran;
    }
    std::lock_guard<std::mutex> lock(mu);
    completed += ran;
    if (completed == num_chunks) done_cv.notify_all();
  }
};

}  // namespace

void RunChunks(size_t begin, size_t end, size_t grain,
               size_t max_parallelism,
               const std::function<void(size_t, size_t, size_t)>& chunk_fn) {
  if (grain == 0) grain = 1;
  const size_t num_chunks = NumChunks(begin, end, grain);
  if (num_chunks == 0) return;

  size_t parallelism =
      max_parallelism == 0 ? GlobalThreadCount()
                           : std::min(max_parallelism, GlobalThreadCount());
  parallelism = std::min(parallelism, num_chunks);

  // Inline serial fallback: single chunk, parallelism 1, or a nested call
  // from a pool worker (new tasks from a worker could deadlock the batch
  // the worker itself belongs to).
  if (num_chunks == 1 || parallelism <= 1 || ThreadPool::InWorker()) {
    for (size_t chunk = 0; chunk < num_chunks; ++chunk) {
      size_t lo = begin + chunk * grain;
      size_t hi = std::min(end, lo + grain);
      chunk_fn(chunk, lo, hi);
    }
    return;
  }

  auto batch = std::make_shared<ChunkBatch>();
  batch->begin = begin;
  batch->end = end;
  batch->grain = grain;
  batch->num_chunks = num_chunks;
  batch->chunk_fn = &chunk_fn;

  ThreadPool& pool = GlobalThreadPool();
  for (size_t t = 0; t < parallelism; ++t) {
    pool.Submit([batch] { batch->DrainLoop(); });
  }

  std::unique_lock<std::mutex> lock(batch->mu);
  batch->done_cv.wait(lock,
                      [&] { return batch->completed == batch->num_chunks; });
  if (batch->first_error) std::rethrow_exception(batch->first_error);
}

}  // namespace internal

void ParallelFor(size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t)>& fn,
                 size_t max_parallelism) {
  internal::RunChunks(begin, end, grain, max_parallelism,
                      [&fn](size_t /*chunk*/, size_t lo, size_t hi) {
                        for (size_t i = lo; i < hi; ++i) fn(i);
                      });
}

void ParallelForChunks(size_t begin, size_t end, size_t grain,
                       const std::function<void(size_t, size_t)>& fn,
                       size_t max_parallelism) {
  internal::RunChunks(begin, end, grain, max_parallelism,
                      [&fn](size_t /*chunk*/, size_t lo, size_t hi) {
                        fn(lo, hi);
                      });
}

}  // namespace metaleak
