// RFC-4180-subset CSV reading and writing.
//
// Supports quoted fields with embedded delimiters, escaped quotes ("") and
// newlines inside quotes. This is the IO layer under data/csv_loader.
#ifndef METALEAK_COMMON_CSV_H_
#define METALEAK_COMMON_CSV_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace metaleak {

/// Parsed CSV content: rows of string fields. Header handling is up to the
/// caller (csv_loader treats row 0 as the header).
struct CsvTable {
  std::vector<std::vector<std::string>> rows;
};

struct CsvOptions {
  char delimiter = ',';
  /// When true, a row with a different field count than row 0 is an error;
  /// otherwise short rows are padded with empty fields.
  bool strict_field_count = true;
};

/// Parses CSV text. Returns an error Status on unterminated quotes or
/// (under strict_field_count) ragged rows.
Result<CsvTable> ParseCsv(std::string_view text,
                          const CsvOptions& options = CsvOptions());

/// Reads and parses a CSV file from disk.
Result<CsvTable> ReadCsvFile(const std::string& path,
                             const CsvOptions& options = CsvOptions());

/// Serializes rows to CSV text, quoting fields that need it.
std::string WriteCsv(const CsvTable& table,
                     const CsvOptions& options = CsvOptions());

/// Writes rows to a file; returns IoError on failure.
Status WriteCsvFile(const std::string& path, const CsvTable& table,
                    const CsvOptions& options = CsvOptions());

}  // namespace metaleak

#endif  // METALEAK_COMMON_CSV_H_
