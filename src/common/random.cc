#include "common/random.h"

#include <unordered_set>

namespace metaleak {

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  METALEAK_DCHECK(lo <= hi);
  std::uniform_int_distribution<int64_t> dist(lo, hi);
  return dist(engine_);
}

size_t Rng::UniformIndex(size_t n) {
  METALEAK_DCHECK(n > 0);
  std::uniform_int_distribution<size_t> dist(0, n - 1);
  return dist(engine_);
}

double Rng::UniformDouble(double lo, double hi) {
  METALEAK_DCHECK(lo <= hi);
  if (lo == hi) return lo;
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

bool Rng::Bernoulli(double p) {
  METALEAK_DCHECK(p >= 0.0 && p <= 1.0);
  std::bernoulli_distribution dist(p);
  return dist(engine_);
}

double Rng::Normal(double mean, double stddev) {
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  METALEAK_DCHECK(k <= n);
  // Floyd's algorithm: O(k) expected insertions regardless of n.
  std::unordered_set<size_t> chosen;
  chosen.reserve(k);
  std::vector<size_t> out;
  out.reserve(k);
  for (size_t j = n - k; j < n; ++j) {
    size_t t = UniformIndex(j + 1);
    if (chosen.insert(t).second) {
      out.push_back(t);
    } else {
      chosen.insert(j);
      out.push_back(j);
    }
  }
  return out;
}

Rng Rng::Fork() { return Rng(ForkSeed()); }

uint64_t Rng::ForkSeed() {
  // Mixing two independent draws avoids correlated child streams.
  uint64_t a = engine_();
  uint64_t b = engine_();
  return a ^ (b * 0xBF58476D1CE4E5B9ULL + 0x94D049BB133111EBULL);
}

}  // namespace metaleak
