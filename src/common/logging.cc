#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstring>

namespace metaleak {

namespace {
std::atomic<int> g_min_level{static_cast<int>(LogLevel::kWarning)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

// Trims a path down to its basename for compact log lines.
const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash == nullptr ? path : slash + 1;
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), file_(file), line_(line) {}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) <
      g_min_level.load(std::memory_order_relaxed)) {
    return;
  }
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level_), Basename(file_),
               line_, stream_.str().c_str());
}

}  // namespace internal

}  // namespace metaleak
