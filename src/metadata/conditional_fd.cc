#include "metadata/conditional_fd.h"

#include <sstream>

namespace metaleak {

ConditionalFd ConditionalFd::Variable(size_t condition_attr,
                                      Value condition_value,
                                      AttributeSet lhs, size_t rhs,
                                      size_t support) {
  ConditionalFd cfd;
  cfd.condition_attr = condition_attr;
  cfd.condition_value = std::move(condition_value);
  cfd.lhs = lhs;
  cfd.rhs = rhs;
  cfd.rhs_is_constant = false;
  cfd.support = support;
  return cfd;
}

ConditionalFd ConditionalFd::Constant(size_t condition_attr,
                                      Value condition_value, size_t rhs,
                                      Value rhs_value, size_t support) {
  ConditionalFd cfd;
  cfd.condition_attr = condition_attr;
  cfd.condition_value = std::move(condition_value);
  cfd.rhs = rhs;
  cfd.rhs_is_constant = true;
  cfd.rhs_value = std::move(rhs_value);
  cfd.support = support;
  return cfd;
}

namespace {

std::string Render(const ConditionalFd& cfd, const Schema* schema) {
  auto name = [&](size_t i) {
    return schema != nullptr ? schema->attribute(i).name
                             : std::to_string(i);
  };
  std::ostringstream os;
  os << "CFD [" << name(cfd.condition_attr) << '='
     << cfd.condition_value.ToString() << "] => ";
  if (cfd.rhs_is_constant) {
    os << name(cfd.rhs) << " = " << cfd.rhs_value.ToString();
  } else {
    os << '{';
    bool first = true;
    for (size_t i : cfd.lhs.ToIndices()) {
      if (!first) os << ", ";
      os << name(i);
      first = false;
    }
    os << "} -> " << name(cfd.rhs);
  }
  os << " (support=" << cfd.support << ')';
  return os.str();
}

}  // namespace

std::string ConditionalFd::ToString(const Schema& schema) const {
  return Render(*this, &schema);
}

std::string ConditionalFd::ToString() const { return Render(*this, nullptr); }

bool operator==(const ConditionalFd& a, const ConditionalFd& b) {
  return a.condition_attr == b.condition_attr &&
         a.condition_value == b.condition_value && a.lhs == b.lhs &&
         a.rhs == b.rhs && a.rhs_is_constant == b.rhs_is_constant &&
         a.rhs_value == b.rhs_value;
}

}  // namespace metaleak
