// MetadataPolicy: what one party discloses along one federation edge.
//
// A policy is a disclosure level, an optional dependency-kind filter, and
// an ordered list of defense transforms applied to the restricted
// package. Transforms model the defenses the paper's conclusions suggest
// (keep domains coarse, keep distributions private, share fewer
// dependencies) as composable operations on MetadataPackage:
//
//   * kGeneralizeDomains — widen continuous ranges and pad categorical
//     value sets with decoys, growing |D_A| so the adversary's uniform
//     sampler hits the true value less often (the paper's theta = 1/|D_A|
//     drops). Optionally quantizes the discloser's own training features
//     to the generalized grid, which is the utility cost of the defense.
//   * kDpNoiseDistributions — Laplace-noise the disclosed value
//     distributions (frequency tables / histograms), the standard DP
//     treatment of released marginals. Counts are clamped at zero and
//     never all-zero so the noised package still parses and samples.
//   * kSuppressDependencies — drop (a subset of) the disclosed
//     dependencies and conditional FDs.
//
// Every transform is deterministic given its parameters (noise is drawn
// from an explicitly seeded stream), so policy sweeps replay exactly.
#ifndef METALEAK_METADATA_METADATA_POLICY_H_
#define METALEAK_METADATA_METADATA_POLICY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/relation.h"
#include "metadata/dependency.h"
#include "metadata/metadata_package.h"

namespace metaleak {

struct MetadataTransform {
  enum class Kind {
    kGeneralizeDomains,
    kDpNoiseDistributions,
    kSuppressDependencies,
  };
  Kind kind = Kind::kGeneralizeDomains;

  /// kGeneralizeDomains: continuous ranges grow by `widen_fraction` of
  /// their width on each side; categorical domains gain `pad_values`
  /// synthetic decoys. `quantize_buckets` > 0 additionally coarsens the
  /// discloser's own continuous features to that many grid points in
  /// ApplyToSlice (the data-side utility cost; 0 = metadata-only).
  double widen_fraction = 0.5;
  size_t pad_values = 4;
  size_t quantize_buckets = 0;

  /// kDpNoiseDistributions: Laplace scale is 1/dp_epsilon counts. The
  /// seed makes the released noise reproducible. `data_noise_fraction`
  /// > 0 additionally perturbs the discloser's own continuous features
  /// by Laplace(range * fraction / dp_epsilon) in ApplyToSlice.
  double dp_epsilon = 1.0;
  uint64_t noise_seed = 0xD15C105EULL;
  double data_noise_fraction = 0.0;

  /// kSuppressDependencies: kinds to drop (empty = every kind). The
  /// first `keep_first` matching dependencies survive, in package order.
  std::vector<DependencyKind> suppress_kinds;
  size_t keep_first = 0;
  bool suppress_cfds = true;

  static MetadataTransform GeneralizeDomains(double widen_fraction,
                                             size_t pad_values,
                                             size_t quantize_buckets = 0);
  static MetadataTransform DpNoiseDistributions(
      double dp_epsilon, uint64_t noise_seed = 0xD15C105EULL,
      double data_noise_fraction = 0.0);
  static MetadataTransform SuppressDependencies(
      std::vector<DependencyKind> kinds = {}, size_t keep_first = 0);

  /// The metadata-side effect: a transformed copy of `package`.
  Result<MetadataPackage> Apply(const MetadataPackage& package) const;

  /// The data-side effect on the discloser's own training slice (schema
  /// preserved; identity for transforms without a data-side cost).
  Result<Relation> ApplyToSlice(const Relation& slice) const;

  std::string ToString() const;
};

struct MetadataPolicy {
  std::string name = "full";
  DisclosureLevel level = DisclosureLevel::kWithRfds;
  /// Dependency kinds allowed through after Restrict(level); empty = all.
  /// Conditional FDs ride with kFunctional.
  std::vector<DependencyKind> allowed_kinds;
  std::vector<MetadataTransform> transforms;

  static MetadataPolicy FullDisclosure();
  static MetadataPolicy AtLevel(DisclosureLevel level,
                                std::string name = std::string());

  /// Whether the discloser participates in joint training under this
  /// policy: below names+domains the receiving side cannot even encode
  /// the slice's schema, so the party trains out.
  bool AllowsTraining() const {
    return level >= DisclosureLevel::kNamesAndDomains;
  }

  /// Restrict(level), then the kind filter, then each transform in order.
  Result<MetadataPackage> Apply(const MetadataPackage& full) const;

  /// Chains the transforms' data-side effects over the slice.
  Result<Relation> ApplyToSlice(const Relation& slice) const;

  std::string ToString() const;
};

/// Field-wise union of several views of the SAME schema — e.g. the
/// packages two coalition members received from one victim along
/// different edges. Takes the most informative value per field: max row
/// count, first disclosed domain/distribution per attribute, the union
/// of dependencies and conditional FDs (deduplicated, first-view order).
Result<MetadataPackage> UnionPackageViews(
    const std::vector<const MetadataPackage*>& views);

/// Concatenation of packages over disjoint attribute sets — the
/// coalition's joint view of several victim slices. Schemas are appended
/// in order and dependency / conditional-FD attribute indices re-based
/// onto the combined schema. Fails on duplicate attribute names (callers
/// disambiguate first) or when the combined width exceeds the 64-attribute
/// AttributeSet capacity.
Result<MetadataPackage> ConcatDisjointPackages(
    const std::vector<const MetadataPackage*>& parts);

}  // namespace metaleak

#endif  // METALEAK_METADATA_METADATA_POLICY_H_
