// DependencySet: a collection of dependencies plus FD reasoning utilities.
#ifndef METALEAK_METADATA_DEPENDENCY_SET_H_
#define METALEAK_METADATA_DEPENDENCY_SET_H_

#include <optional>
#include <string>
#include <vector>

#include "metadata/dependency.h"
#include "partition/attribute_set.h"

namespace metaleak {

class DependencySet {
 public:
  DependencySet() = default;
  explicit DependencySet(std::vector<Dependency> deps);

  /// Appends `dep` unless an identical dependency is already present.
  void Add(const Dependency& dep);

  bool Contains(const Dependency& dep) const;
  size_t size() const { return deps_.size(); }
  bool empty() const { return deps_.empty(); }

  const std::vector<Dependency>& all() const { return deps_; }
  auto begin() const { return deps_.begin(); }
  auto end() const { return deps_.end(); }

  /// Sorts the dependencies into canonical order: (kind, LHS mask, RHS,
  /// then the numeric parameters). Discovery routines call this before
  /// returning so the reported set is independent of validation order —
  /// in particular, of the thread count the search ran with.
  void Canonicalize();

  /// All dependencies of one class.
  std::vector<Dependency> OfKind(DependencyKind kind) const;

  /// All dependencies whose RHS is `attribute`.
  std::vector<Dependency> WithRhs(size_t attribute) const;

  /// --- FD reasoning (Armstrong axioms over the kFunctional members) ---

  /// Closure of `attrs` under the FDs in this set: the largest X+ with
  /// attrs -> X+ derivable. Standard fixed-point computation.
  AttributeSet FdClosure(AttributeSet attrs) const;

  /// True iff lhs -> rhs is implied by the FDs in this set.
  bool FdImplies(AttributeSet lhs, size_t rhs) const;

  /// A canonical (minimal) cover of the FDs: left-reduced (no extraneous
  /// LHS attribute) and non-redundant (no FD implied by the others).
  /// Non-FD dependencies are ignored and not included.
  DependencySet FdMinimalCover() const;

  /// Multi-line rendering with schema names.
  std::string ToString(const Schema& schema) const;

 private:
  std::vector<Dependency> deps_;
};

}  // namespace metaleak

#endif  // METALEAK_METADATA_DEPENDENCY_SET_H_
