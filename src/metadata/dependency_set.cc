#include "metadata/dependency_set.h"

#include <algorithm>
#include <sstream>
#include <tuple>

namespace metaleak {

DependencySet::DependencySet(std::vector<Dependency> deps) {
  for (const Dependency& d : deps) Add(d);
}

void DependencySet::Add(const Dependency& dep) {
  if (!Contains(dep)) deps_.push_back(dep);
}

bool DependencySet::Contains(const Dependency& dep) const {
  return std::find(deps_.begin(), deps_.end(), dep) != deps_.end();
}

void DependencySet::Canonicalize() {
  auto key = [](const Dependency& d) {
    return std::make_tuple(static_cast<int>(d.kind), d.lhs.mask(), d.rhs,
                           d.g3_error, d.max_fanout, d.lhs_epsilon,
                           d.rhs_delta, d.lhs_epsilons);
  };
  std::sort(deps_.begin(), deps_.end(),
            [&](const Dependency& a, const Dependency& b) {
              return key(a) < key(b);
            });
}

std::vector<Dependency> DependencySet::OfKind(DependencyKind kind) const {
  std::vector<Dependency> out;
  for (const Dependency& d : deps_) {
    if (d.kind == kind) out.push_back(d);
  }
  return out;
}

std::vector<Dependency> DependencySet::WithRhs(size_t attribute) const {
  std::vector<Dependency> out;
  for (const Dependency& d : deps_) {
    if (d.rhs == attribute) out.push_back(d);
  }
  return out;
}

AttributeSet DependencySet::FdClosure(AttributeSet attrs) const {
  AttributeSet closure = attrs;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Dependency& d : deps_) {
      if (d.kind != DependencyKind::kFunctional) continue;
      if (closure.ContainsAll(d.lhs) && !closure.Contains(d.rhs)) {
        closure = closure.With(d.rhs);
        changed = true;
      }
    }
  }
  return closure;
}

bool DependencySet::FdImplies(AttributeSet lhs, size_t rhs) const {
  return FdClosure(lhs).Contains(rhs);
}

DependencySet DependencySet::FdMinimalCover() const {
  // Start from the FDs only.
  std::vector<Dependency> fds = OfKind(DependencyKind::kFunctional);

  // Left-reduce: drop extraneous LHS attributes.
  DependencySet all_fds{std::vector<Dependency>(fds)};
  for (Dependency& d : fds) {
    bool reduced = true;
    while (reduced) {
      reduced = false;
      for (size_t a : d.lhs.ToIndices()) {
        AttributeSet smaller = d.lhs.Without(a);
        if (smaller.empty()) continue;
        if (all_fds.FdImplies(smaller, d.rhs)) {
          d.lhs = smaller;
          reduced = true;
          break;
        }
      }
    }
  }

  // Deduplicate after reduction.
  std::vector<Dependency> unique;
  for (const Dependency& d : fds) {
    if (std::find(unique.begin(), unique.end(), d) == unique.end()) {
      unique.push_back(d);
    }
  }

  // Remove redundant FDs: an FD implied by the remaining ones is dropped.
  std::vector<bool> keep(unique.size(), true);
  for (size_t i = 0; i < unique.size(); ++i) {
    std::vector<Dependency> others;
    for (size_t j = 0; j < unique.size(); ++j) {
      if (j != i && keep[j]) others.push_back(unique[j]);
    }
    DependencySet rest{std::move(others)};
    if (rest.FdImplies(unique[i].lhs, unique[i].rhs)) keep[i] = false;
  }

  DependencySet out;
  for (size_t i = 0; i < unique.size(); ++i) {
    if (keep[i]) out.Add(unique[i]);
  }
  return out;
}

std::string DependencySet::ToString(const Schema& schema) const {
  std::ostringstream os;
  for (const Dependency& d : deps_) {
    os << d.ToString(schema) << '\n';
  }
  return os.str();
}

}  // namespace metaleak
