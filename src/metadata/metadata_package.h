// MetadataPackage: the artifact one VFL party sends to another.
//
// The paper studies exactly this object: attribute names (and types),
// domains, table dimensions, and functional / relaxed functional
// dependencies. A DisclosureLevel selects how much of it is filled in, so
// experiments can compare privacy leakage across disclosure policies.
#ifndef METALEAK_METADATA_METADATA_PACKAGE_H_
#define METALEAK_METADATA_METADATA_PACKAGE_H_

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/domain.h"
#include "data/schema.h"
#include "metadata/conditional_fd.h"
#include "metadata/dependency_set.h"
#include "metadata/value_distribution.h"

namespace metaleak {

/// How much metadata a party discloses. Levels are cumulative.
enum class DisclosureLevel {
  /// Attribute names and types only.
  kNames = 0,
  /// + per-attribute domains and the row count.
  kNamesAndDomains = 1,
  /// + strict functional dependencies.
  kWithFds = 2,
  /// + relaxed functional dependencies (AFD/ND/OD/DD/OFD).
  kWithRfds = 3,
  /// + empirical value distributions (histograms / frequency tables).
  /// Beyond the paper's model — its analysis assumes distributions stay
  /// private; this level exists for the distribution-disclosure ablation.
  kWithDistributions = 4,
};

std::string DisclosureLevelToString(DisclosureLevel level);

struct MetadataPackage {
  Schema schema;
  /// Row count of the source relation; 0 when not disclosed.
  size_t num_rows = 0;
  /// Parallel to schema; nullopt when domains are not disclosed.
  std::vector<std::optional<Domain>> domains;
  DependencySet dependencies;
  /// Conditional FDs (disclosed with the other RFDs at kWithRfds).
  std::vector<ConditionalFd> conditional_fds;
  /// Parallel to schema; filled only at kWithDistributions.
  std::vector<std::optional<ValueDistribution>> distributions;

  /// True when every attribute has a disclosed domain.
  bool HasAllDomains() const;

  /// The domains as a dense vector; fails if any is missing.
  Result<std::vector<Domain>> RequireDomains() const;

  /// Copy with everything above `level` stripped out.
  MetadataPackage Restrict(DisclosureLevel level) const;

  /// Line-based text serialization (stable across versions; see .cc for
  /// the grammar). Categorical domain values must not contain '|' or tabs.
  std::string Serialize() const;

  /// Parses Serialize() output.
  static Result<MetadataPackage> Deserialize(const std::string& text);
};

}  // namespace metaleak

#endif  // METALEAK_METADATA_METADATA_PACKAGE_H_
