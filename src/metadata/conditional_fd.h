// Conditional functional dependencies (CFDs).
//
// The paper cites CFDs (Bohannon et al.) as the data-cleaning workhorse
// among FD extensions; they are metadata a party could plausibly share.
// MetaLeak supports the two canonical single-condition forms:
//
//   variable CFD:  [C = c] => (X -> A)      the FD holds on the rows
//                                           where attribute C equals c
//   constant CFD:  [X = x] => (A = a)       rows with X = x carry the
//                                           constant a in A
//
// Privacy-wise a CFD is a *scoped* FD: its generation value to an
// adversary is analyzed by the same one-shot-mapping argument as FDs
// (Section III-B), restricted to the matching rows — the A8 ablation
// verifies the "no extra leakage" conclusion carries over.
#ifndef METALEAK_METADATA_CONDITIONAL_FD_H_
#define METALEAK_METADATA_CONDITIONAL_FD_H_

#include <string>
#include <vector>

#include "data/schema.h"
#include "data/value.h"
#include "partition/attribute_set.h"

namespace metaleak {

struct ConditionalFd {
  /// Conditioning attribute and the constant selecting the scope. For
  /// constant CFDs the condition doubles as the LHS (condition_attr ==
  /// the X of [X = x]).
  size_t condition_attr = 0;
  Value condition_value;

  /// Embedded dependency inside the scope.
  AttributeSet lhs;  // empty for constant CFDs
  size_t rhs = 0;

  /// Constant form: rhs must equal rhs_value on matching rows.
  bool rhs_is_constant = false;
  Value rhs_value;

  /// Number of rows the condition selected at discovery time (support).
  size_t support = 0;

  static ConditionalFd Variable(size_t condition_attr,
                                Value condition_value, AttributeSet lhs,
                                size_t rhs, size_t support);
  static ConditionalFd Constant(size_t condition_attr,
                                Value condition_value, size_t rhs,
                                Value rhs_value, size_t support);

  /// "CFD [group=2] => {epss} -> lvdd" / "CFD [x=v1] => y = v3".
  std::string ToString(const Schema& schema) const;
  std::string ToString() const;

  friend bool operator==(const ConditionalFd& a, const ConditionalFd& b);
};

}  // namespace metaleak

#endif  // METALEAK_METADATA_CONDITIONAL_FD_H_
