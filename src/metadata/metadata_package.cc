#include "metadata/metadata_package.h"

#include <sstream>

#include "common/string_util.h"

// Serialization grammar (one record per line, tab-separated fields):
//
//   metaleak-metadata v1
//   rows\t<N>
//   attr\t<name>\t<type>\t<semantic>
//   domain\t<index>\tcategorical\t<v1>|<v2>|...
//   domain\t<index>\tcontinuous\t<lo>\t<hi>
//   dep\t<KIND>\t<i,j,...>\t<rhs>\t<g3>\t<K>\t<eps>\t<delta>
//
// Categorical domain values are typed: "i:<int>", "d:<double>", "s:<str>".

namespace metaleak {

std::string DisclosureLevelToString(DisclosureLevel level) {
  switch (level) {
    case DisclosureLevel::kNames:
      return "names";
    case DisclosureLevel::kNamesAndDomains:
      return "names+domains";
    case DisclosureLevel::kWithFds:
      return "names+domains+FDs";
    case DisclosureLevel::kWithRfds:
      return "names+domains+FDs+RFDs";
    case DisclosureLevel::kWithDistributions:
      return "names+domains+FDs+RFDs+distributions";
  }
  return "unknown";
}

bool MetadataPackage::HasAllDomains() const {
  if (domains.size() != schema.num_attributes()) return false;
  for (const auto& d : domains) {
    if (!d.has_value()) return false;
  }
  return true;
}

Result<std::vector<Domain>> MetadataPackage::RequireDomains() const {
  if (!HasAllDomains()) {
    return Status::Invalid(
        "metadata package does not disclose every attribute domain");
  }
  std::vector<Domain> out;
  out.reserve(domains.size());
  for (const auto& d : domains) out.push_back(*d);
  return out;
}

MetadataPackage MetadataPackage::Restrict(DisclosureLevel level) const {
  MetadataPackage out;
  out.schema = schema;
  if (level >= DisclosureLevel::kNamesAndDomains) {
    out.num_rows = num_rows;
    out.domains = domains;
  } else {
    out.domains.assign(schema.num_attributes(), std::nullopt);
  }
  if (level >= DisclosureLevel::kWithFds) {
    for (const Dependency& d :
         dependencies.OfKind(DependencyKind::kFunctional)) {
      out.dependencies.Add(d);
    }
  }
  if (level >= DisclosureLevel::kWithRfds) {
    for (const Dependency& d : dependencies) {
      if (d.kind != DependencyKind::kFunctional) out.dependencies.Add(d);
    }
    out.conditional_fds = conditional_fds;
  }
  if (level >= DisclosureLevel::kWithDistributions) {
    out.distributions = distributions;
  } else {
    out.distributions.assign(schema.num_attributes(), std::nullopt);
  }
  return out;
}

namespace {

std::string EncodeValue(const Value& v) {
  if (v.is_null()) return "n:";
  if (v.is_int()) return "i:" + std::to_string(v.AsInt());
  if (v.is_double()) return "d:" + FormatDouble(v.AsDouble(), 12);
  return "s:" + v.AsString();
}

Result<Value> DecodeValue(const std::string& s) {
  if (s.size() < 2 || s[1] != ':') {
    return Status::IoError("malformed domain value: " + s);
  }
  std::string body = s.substr(2);
  switch (s[0]) {
    case 'n':
      return Value::Null();
    case 'i': {
      auto v = ParseInt64(body);
      if (!v) return Status::IoError("bad int domain value: " + s);
      return Value::Int(*v);
    }
    case 'd': {
      auto v = ParseDouble(body);
      if (!v) return Status::IoError("bad double domain value: " + s);
      return Value::Real(*v);
    }
    case 's':
      return Value::Str(body);
    default:
      return Status::IoError("unknown domain value tag: " + s);
  }
}

Result<DataType> ParseType(const std::string& s) {
  if (s == "int64") return DataType::kInt64;
  if (s == "double") return DataType::kDouble;
  if (s == "string") return DataType::kString;
  return Status::IoError("unknown data type: " + s);
}

Result<SemanticType> ParseSemantic(const std::string& s) {
  if (s == "categorical") return SemanticType::kCategorical;
  if (s == "continuous") return SemanticType::kContinuous;
  return Status::IoError("unknown semantic type: " + s);
}

}  // namespace

std::string MetadataPackage::Serialize() const {
  std::ostringstream os;
  os << "metaleak-metadata v1\n";
  os << "rows\t" << num_rows << '\n';
  for (const Attribute& a : schema.attributes()) {
    os << "attr\t" << a.name << '\t' << DataTypeToString(a.type) << '\t'
       << SemanticTypeToString(a.semantic) << '\n';
  }
  for (size_t i = 0; i < domains.size(); ++i) {
    if (!domains[i].has_value()) continue;
    const Domain& d = *domains[i];
    if (d.is_categorical()) {
      std::vector<std::string> encoded;
      encoded.reserve(d.values().size());
      for (const Value& v : d.values()) encoded.push_back(EncodeValue(v));
      os << "domain\t" << i << "\tcategorical\t" << Join(encoded, "|")
         << '\n';
    } else {
      os << "domain\t" << i << "\tcontinuous\t" << FormatDouble(d.lo(), 12)
         << '\t' << FormatDouble(d.hi(), 12) << '\n';
    }
  }
  for (const Dependency& d : dependencies) {
    std::vector<std::string> lhs;
    for (size_t i : d.lhs.ToIndices()) lhs.push_back(std::to_string(i));
    // The epsilon field is a comma list for multi-attribute DDs; the
    // single-epsilon form stays byte-identical to the v1 records.
    std::vector<std::string> eps;
    if (d.lhs_epsilons.empty()) {
      eps.push_back(FormatDouble(d.lhs_epsilon, 12));
    } else {
      for (double e : d.lhs_epsilons) eps.push_back(FormatDouble(e, 12));
    }
    os << "dep\t" << DependencyKindCode(d.kind) << '\t' << Join(lhs, ",")
       << '\t' << d.rhs << '\t' << FormatDouble(d.g3_error, 12) << '\t'
       << d.max_fanout << '\t' << Join(eps, ",") << '\t'
       << FormatDouble(d.rhs_delta, 12) << '\n';
  }
  for (const ConditionalFd& cfd : conditional_fds) {
    std::vector<std::string> lhs;
    for (size_t i : cfd.lhs.ToIndices()) lhs.push_back(std::to_string(i));
    os << "cfd\t" << cfd.condition_attr << '\t'
       << EncodeValue(cfd.condition_value) << '\t' << Join(lhs, ",")
       << '\t' << cfd.rhs << '\t' << (cfd.rhs_is_constant ? 1 : 0) << '\t'
       << EncodeValue(cfd.rhs_value) << '\t' << cfd.support << '\n';
  }
  for (size_t i = 0; i < distributions.size(); ++i) {
    if (!distributions[i].has_value()) continue;
    const ValueDistribution& dist = *distributions[i];
    if (dist.is_categorical()) {
      const FrequencyTable& table = dist.frequency_table();
      std::vector<std::string> entries;
      entries.reserve(table.values.size());
      for (size_t j = 0; j < table.values.size(); ++j) {
        entries.push_back(EncodeValue(table.values[j]) + "@" +
                          std::to_string(table.counts[j]));
      }
      os << "dist\t" << i << "\tcategorical\t" << Join(entries, "|")
         << '\n';
    } else {
      const Histogram& h = dist.histogram();
      std::vector<std::string> counts;
      counts.reserve(h.counts.size());
      for (size_t c : h.counts) counts.push_back(std::to_string(c));
      os << "dist\t" << i << "\tcontinuous\t" << FormatDouble(h.lo, 12)
         << '\t' << FormatDouble(h.hi, 12) << '\t' << Join(counts, ",")
         << '\n';
    }
  }
  return os.str();
}

Result<MetadataPackage> MetadataPackage::Deserialize(
    const std::string& text) {
  std::vector<std::string> lines = Split(text, '\n');
  if (lines.empty() || Trim(lines[0]) != "metaleak-metadata v1") {
    return Status::IoError("missing metaleak-metadata header");
  }
  MetadataPackage pkg;
  std::vector<Attribute> attrs;
  std::vector<std::pair<size_t, Domain>> parsed_domains;
  std::vector<std::pair<size_t, ValueDistribution>> parsed_dists;

  for (size_t ln = 1; ln < lines.size(); ++ln) {
    if (Trim(lines[ln]).empty()) continue;
    std::vector<std::string> f = Split(lines[ln], '\t');
    const std::string& tag = f[0];
    if (tag == "rows") {
      if (f.size() != 2) return Status::IoError("bad rows record");
      auto v = ParseInt64(f[1]);
      if (!v || *v < 0) return Status::IoError("bad row count");
      pkg.num_rows = static_cast<size_t>(*v);
    } else if (tag == "attr") {
      if (f.size() != 4) return Status::IoError("bad attr record");
      Attribute a;
      a.name = f[1];
      METALEAK_ASSIGN_OR_RETURN(a.type, ParseType(f[2]));
      METALEAK_ASSIGN_OR_RETURN(a.semantic, ParseSemantic(f[3]));
      attrs.push_back(std::move(a));
    } else if (tag == "domain") {
      if (f.size() < 4) return Status::IoError("bad domain record");
      auto idx = ParseInt64(f[1]);
      if (!idx || *idx < 0) return Status::IoError("bad domain index");
      if (f[2] == "categorical") {
        std::vector<Value> values;
        for (const std::string& enc : Split(f[3], '|')) {
          METALEAK_ASSIGN_OR_RETURN(Value v, DecodeValue(enc));
          values.push_back(std::move(v));
        }
        parsed_domains.emplace_back(static_cast<size_t>(*idx),
                                    Domain::Categorical(std::move(values)));
      } else if (f[2] == "continuous") {
        if (f.size() != 5) return Status::IoError("bad continuous domain");
        auto lo = ParseDouble(f[3]);
        auto hi = ParseDouble(f[4]);
        if (!lo || !hi) return Status::IoError("bad domain bounds");
        parsed_domains.emplace_back(static_cast<size_t>(*idx),
                                    Domain::Continuous(*lo, *hi));
      } else {
        return Status::IoError("unknown domain kind: " + f[2]);
      }
    } else if (tag == "dep") {
      if (f.size() != 8) return Status::IoError("bad dep record");
      METALEAK_ASSIGN_OR_RETURN(DependencyKind kind,
                                ParseDependencyKind(f[1]));
      Dependency d;
      d.kind = kind;
      for (const std::string& part : Split(f[2], ',')) {
        if (Trim(part).empty()) continue;
        auto i = ParseInt64(part);
        if (!i || *i < 0) return Status::IoError("bad dep LHS");
        d.lhs = d.lhs.With(static_cast<size_t>(*i));
      }
      auto rhs = ParseInt64(f[3]);
      auto g3 = ParseDouble(f[4]);
      auto fanout = ParseInt64(f[5]);
      std::vector<double> eps_list;
      for (const std::string& part : Split(f[6], ',')) {
        auto e = ParseDouble(part);
        if (!e) return Status::IoError("bad dep parameters");
        eps_list.push_back(*e);
      }
      auto delta = ParseDouble(f[7]);
      if (!rhs || !g3 || !fanout || eps_list.empty() || !delta) {
        return Status::IoError("bad dep parameters");
      }
      d.rhs = static_cast<size_t>(*rhs);
      d.g3_error = *g3;
      d.max_fanout = static_cast<size_t>(*fanout);
      d.lhs_epsilon = eps_list[0];
      if (eps_list.size() > 1) d.lhs_epsilons = std::move(eps_list);
      d.rhs_delta = *delta;
      pkg.dependencies.Add(d);
    } else if (tag == "cfd") {
      if (f.size() != 8) return Status::IoError("bad cfd record");
      ConditionalFd cfd;
      auto cond = ParseInt64(f[1]);
      if (!cond || *cond < 0) return Status::IoError("bad cfd condition");
      cfd.condition_attr = static_cast<size_t>(*cond);
      METALEAK_ASSIGN_OR_RETURN(cfd.condition_value, DecodeValue(f[2]));
      for (const std::string& part : Split(f[3], ',')) {
        if (Trim(part).empty()) continue;
        auto i = ParseInt64(part);
        if (!i || *i < 0) return Status::IoError("bad cfd LHS");
        cfd.lhs = cfd.lhs.With(static_cast<size_t>(*i));
      }
      auto rhs = ParseInt64(f[4]);
      auto is_const = ParseInt64(f[5]);
      auto support = ParseInt64(f[7]);
      if (!rhs || !is_const || !support || *rhs < 0 || *support < 0) {
        return Status::IoError("bad cfd parameters");
      }
      cfd.rhs = static_cast<size_t>(*rhs);
      cfd.rhs_is_constant = *is_const != 0;
      METALEAK_ASSIGN_OR_RETURN(cfd.rhs_value, DecodeValue(f[6]));
      cfd.support = static_cast<size_t>(*support);
      pkg.conditional_fds.push_back(std::move(cfd));
    } else if (tag == "dist") {
      if (f.size() < 4) return Status::IoError("bad dist record");
      auto idx = ParseInt64(f[1]);
      if (!idx || *idx < 0) return Status::IoError("bad dist index");
      if (f[2] == "categorical") {
        FrequencyTable table;
        for (const std::string& entry : Split(f[3], '|')) {
          size_t at = entry.rfind('@');
          if (at == std::string::npos) {
            return Status::IoError("bad dist entry: " + entry);
          }
          METALEAK_ASSIGN_OR_RETURN(Value v,
                                    DecodeValue(entry.substr(0, at)));
          auto count = ParseInt64(entry.substr(at + 1));
          if (!count || *count < 0) {
            return Status::IoError("bad dist count: " + entry);
          }
          table.values.push_back(std::move(v));
          table.counts.push_back(static_cast<size_t>(*count));
        }
        METALEAK_ASSIGN_OR_RETURN(
            ValueDistribution dist,
            ValueDistribution::Categorical(std::move(table)));
        parsed_dists.emplace_back(static_cast<size_t>(*idx),
                                  std::move(dist));
      } else if (f[2] == "continuous") {
        if (f.size() != 6) return Status::IoError("bad continuous dist");
        auto lo = ParseDouble(f[3]);
        auto hi = ParseDouble(f[4]);
        if (!lo || !hi) return Status::IoError("bad dist bounds");
        Histogram h;
        h.lo = *lo;
        h.hi = *hi;
        for (const std::string& part : Split(f[5], ',')) {
          auto count = ParseInt64(part);
          if (!count || *count < 0) {
            return Status::IoError("bad dist bucket count");
          }
          h.counts.push_back(static_cast<size_t>(*count));
        }
        METALEAK_ASSIGN_OR_RETURN(
            ValueDistribution dist,
            ValueDistribution::Continuous(std::move(h)));
        parsed_dists.emplace_back(static_cast<size_t>(*idx),
                                  std::move(dist));
      } else {
        return Status::IoError("unknown dist kind: " + f[2]);
      }
    } else {
      return Status::IoError("unknown record tag: " + tag);
    }
  }

  pkg.schema = Schema(std::move(attrs));
  pkg.domains.assign(pkg.schema.num_attributes(), std::nullopt);
  for (auto& [idx, domain] : parsed_domains) {
    if (idx >= pkg.domains.size()) {
      return Status::IoError("domain index out of range");
    }
    pkg.domains[idx] = std::move(domain);
  }
  pkg.distributions.assign(pkg.schema.num_attributes(), std::nullopt);
  for (auto& [idx, dist] : parsed_dists) {
    if (idx >= pkg.distributions.size()) {
      return Status::IoError("dist index out of range");
    }
    pkg.distributions[idx] = std::move(dist);
  }
  return pkg;
}

}  // namespace metaleak
