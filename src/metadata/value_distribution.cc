#include "metadata/value_distribution.h"

#include <algorithm>

#include "common/macros.h"
#include "common/math_util.h"

namespace metaleak {

Result<ValueDistribution> ValueDistribution::Categorical(
    FrequencyTable table) {
  if (table.values.size() != table.counts.size()) {
    return Status::Invalid("frequency table values/counts mismatch");
  }
  if (table.total() == 0) {
    return Status::Invalid("empty frequency table");
  }
  ValueDistribution d;
  d.categorical_ = true;
  d.freq_ = std::move(table);
  return d;
}

Result<ValueDistribution> ValueDistribution::Continuous(
    Histogram histogram) {
  if (histogram.counts.empty() || histogram.total() == 0) {
    return Status::Invalid("empty histogram");
  }
  if (histogram.hi < histogram.lo) {
    return Status::Invalid("inverted histogram range");
  }
  ValueDistribution d;
  d.categorical_ = false;
  d.hist_ = std::move(histogram);
  return d;
}

Result<ValueDistribution> ValueDistribution::FromColumn(
    const Relation& relation, size_t attribute, size_t buckets) {
  if (attribute >= relation.num_columns()) {
    return Status::OutOfRange("attribute index out of range");
  }
  if (relation.schema().attribute(attribute).semantic ==
      SemanticType::kCategorical) {
    METALEAK_ASSIGN_OR_RETURN(FrequencyTable table,
                              BuildFrequencyTable(relation, attribute));
    return Categorical(std::move(table));
  }
  METALEAK_ASSIGN_OR_RETURN(Histogram hist,
                            BuildHistogram(relation, attribute, buckets));
  return Continuous(std::move(hist));
}

Result<ValueDistribution> ValueDistribution::FromEncoded(
    const EncodedRelation& relation, size_t attribute, size_t buckets) {
  if (attribute >= relation.num_columns()) {
    return Status::OutOfRange("attribute index out of range");
  }
  const ColumnDictionary& dict = relation.dictionary(attribute);
  if (relation.schema().attribute(attribute).semantic ==
      SemanticType::kCategorical) {
    FrequencyTable table;
    table.values = dict.DistinctValues();
    table.counts.reserve(table.values.size());
    for (uint32_t code = 1; code < dict.num_codes(); ++code) {
      table.counts.push_back(dict.count(code));
    }
    return Categorical(std::move(table));
  }
  if (buckets == 0) {
    return Status::Invalid("histogram needs at least one bucket");
  }
  Histogram h;
  bool first = true;
  for (uint32_t code = 1; code < dict.num_codes(); ++code) {
    const Value& v = dict.decode(code);
    if (!v.is_numeric()) continue;
    double x = v.AsNumeric();
    if (first) {
      h.lo = h.hi = x;
      first = false;
    } else {
      h.lo = std::min(h.lo, x);
      h.hi = std::max(h.hi, x);
    }
  }
  if (first) {
    return Status::Invalid("column has no numeric values");
  }
  h.counts.assign(buckets, 0);
  for (uint32_t code = 1; code < dict.num_codes(); ++code) {
    const Value& v = dict.decode(code);
    if (!v.is_numeric()) continue;
    h.counts[h.BucketOf(v.AsNumeric())] += dict.count(code);
  }
  return Continuous(std::move(h));
}

Value ValueDistribution::Sample(Rng* rng) const {
  METALEAK_DCHECK(rng != nullptr);
  if (categorical_) {
    size_t total = freq_.total();
    METALEAK_DCHECK(total > 0);
    size_t target = rng->UniformIndex(total);
    size_t acc = 0;
    for (size_t i = 0; i < freq_.counts.size(); ++i) {
      acc += freq_.counts[i];
      if (target < acc) return freq_.values[i];
    }
    return freq_.values.back();
  }
  size_t total = hist_.total();
  METALEAK_DCHECK(total > 0);
  size_t target = rng->UniformIndex(total);
  size_t acc = 0;
  size_t bucket = hist_.counts.size() - 1;
  for (size_t i = 0; i < hist_.counts.size(); ++i) {
    acc += hist_.counts[i];
    if (target < acc) {
      bucket = i;
      break;
    }
  }
  double width =
      (hist_.hi - hist_.lo) / static_cast<double>(hist_.counts.size());
  double lo = hist_.lo + width * static_cast<double>(bucket);
  return Value::Real(rng->UniformDouble(lo, lo + width));
}

double ValueDistribution::MassOf(const Value& v) const {
  if (categorical_) {
    size_t total = freq_.total();
    if (total == 0) return 0.0;
    for (size_t i = 0; i < freq_.values.size(); ++i) {
      if (freq_.values[i] == v) {
        return static_cast<double>(freq_.counts[i]) /
               static_cast<double>(total);
      }
    }
    return 0.0;
  }
  if (!v.is_numeric()) return 0.0;
  return hist_.Mass(hist_.BucketOf(v.AsNumeric()));
}

double ValueDistribution::EntropyBits() const {
  return categorical_ ? ShannonEntropyBits(freq_.counts)
                      : ShannonEntropyBits(hist_.counts);
}

bool operator==(const ValueDistribution& a, const ValueDistribution& b) {
  if (a.categorical_ != b.categorical_) return false;
  if (a.categorical_) {
    return a.freq_.values == b.freq_.values &&
           a.freq_.counts == b.freq_.counts;
  }
  return a.hist_.lo == b.hist_.lo && a.hist_.hi == b.hist_.hi &&
         a.hist_.counts == b.hist_.counts;
}

}  // namespace metaleak
