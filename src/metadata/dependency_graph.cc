#include "metadata/dependency_graph.h"

#include <algorithm>
#include <sstream>

#include "common/macros.h"

namespace metaleak {

namespace {

// Lower value = preferred.
int KindPriority(DependencyKind kind) {
  switch (kind) {
    case DependencyKind::kFunctional:
      return 0;
    case DependencyKind::kOrderedFunctional:
      return 1;
    case DependencyKind::kOrder:
      return 2;
    case DependencyKind::kApproximateFunctional:
      return 3;
    case DependencyKind::kNumerical:
      return 4;
    case DependencyKind::kDifferential:
      return 5;
  }
  return 6;
}

bool KindAllowed(DependencyKind kind,
                 const std::vector<DependencyKind>& allowed) {
  if (allowed.empty()) return true;
  return std::find(allowed.begin(), allowed.end(), kind) != allowed.end();
}

}  // namespace

DependencyGraph::DependencyGraph(std::vector<GenerationStep> steps)
    : steps_(std::move(steps)) {
  step_of_attribute_.resize(steps_.size());
  for (size_t i = 0; i < steps_.size(); ++i) {
    METALEAK_DCHECK(steps_[i].attribute < steps_.size());
    step_of_attribute_[steps_[i].attribute] = i;
  }
}

DependencyGraph DependencyGraph::Build(
    size_t num_attributes, const DependencySet& deps,
    const std::vector<DependencyKind>& allowed) {
  std::vector<GenerationStep> steps;
  steps.reserve(num_attributes);
  AttributeSet placed;

  // Candidate edges per RHS attribute, best priority first.
  std::vector<std::vector<Dependency>> candidates(num_attributes);
  for (const Dependency& d : deps) {
    if (d.rhs >= num_attributes) continue;
    if (!KindAllowed(d.kind, allowed)) continue;
    if (d.lhs.Contains(d.rhs)) continue;  // trivial
    candidates[d.rhs].push_back(d);
  }
  for (auto& cs : candidates) {
    std::stable_sort(cs.begin(), cs.end(),
                     [](const Dependency& a, const Dependency& b) {
                       if (KindPriority(a.kind) != KindPriority(b.kind)) {
                         return KindPriority(a.kind) < KindPriority(b.kind);
                       }
                       // Prefer smaller LHS (cheaper, more informative).
                       return a.lhs.size() < b.lhs.size();
                     });
  }

  while (placed.size() < num_attributes) {
    // 1) Place every attribute whose best satisfiable dependency has all
    //    LHS attributes already placed.
    bool progressed = false;
    for (size_t a = 0; a < num_attributes; ++a) {
      if (placed.Contains(a)) continue;
      for (const Dependency& d : candidates[a]) {
        if (placed.ContainsAll(d.lhs)) {
          steps.push_back(GenerationStep{a, d});
          placed = placed.With(a);
          progressed = true;
          break;
        }
      }
    }
    if (progressed) continue;

    // 2) No attribute can be derived: pick the smallest unplaced attribute
    //    with no candidates as a root; if every unplaced attribute has
    //    candidates we are in a cycle — break it at the smallest index.
    size_t root = num_attributes;
    for (size_t a = 0; a < num_attributes; ++a) {
      if (!placed.Contains(a) && candidates[a].empty()) {
        root = a;
        break;
      }
    }
    if (root == num_attributes) {
      for (size_t a = 0; a < num_attributes; ++a) {
        if (!placed.Contains(a)) {
          root = a;
          break;
        }
      }
    }
    METALEAK_DCHECK(root < num_attributes);
    steps.push_back(GenerationStep{root, std::nullopt});
    placed = placed.With(root);
  }

  return DependencyGraph(std::move(steps));
}

const GenerationStep& DependencyGraph::StepFor(size_t attribute) const {
  METALEAK_DCHECK(attribute < steps_.size());
  return steps_[step_of_attribute_[attribute]];
}

size_t DependencyGraph::num_derived() const {
  size_t n = 0;
  for (const GenerationStep& s : steps_) {
    if (s.via.has_value()) ++n;
  }
  return n;
}

std::string DependencyGraph::ToString(const Schema& schema) const {
  std::ostringstream os;
  for (const GenerationStep& s : steps_) {
    os << schema.attribute(s.attribute).name << ": ";
    if (s.via.has_value()) {
      os << "via " << s.via->ToString(schema);
    } else {
      os << "root (from domain)";
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace metaleak
