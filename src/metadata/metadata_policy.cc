#include "metadata/metadata_policy.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <unordered_set>
#include <utility>

#include "common/random.h"

namespace metaleak {

namespace {

// Standard inverse-CDF Laplace draw with scale b; the argument of the
// log is clamped so the tail stays finite.
double LaplaceDraw(Rng* rng, double b) {
  double u = rng->UniformDouble(-0.5, 0.5);
  double a = 1.0 - 2.0 * std::abs(u);
  if (a < 1e-12) a = 1e-12;
  return (u >= 0.0 ? -b : b) * std::log(a);
}

// Decoy values for categorical generalization, typed to the attribute so
// the padded domain stays homogeneous. Integer/double decoys extend past
// the observed maximum; string decoys use a prefix real data is unlikely
// to carry (the factory deduplicates if it does).
Value DecoyValue(DataType type, const std::vector<Value>& existing,
                 size_t k) {
  switch (type) {
    case DataType::kInt64: {
      int64_t max = 0;
      bool any = false;
      for (const Value& v : existing) {
        if (v.is_int() && (!any || v.AsInt() > max)) {
          max = v.AsInt();
          any = true;
        }
      }
      return Value::Int((any ? max : 0) + static_cast<int64_t>(k) + 1);
    }
    case DataType::kDouble: {
      double max = 0.0;
      bool any = false;
      for (const Value& v : existing) {
        if (v.is_numeric() && (!any || v.AsNumeric() > max)) {
          max = v.AsNumeric();
          any = true;
        }
      }
      return Value::Real((any ? max : 0.0) + static_cast<double>(k) + 1.0);
    }
    case DataType::kString:
      return Value::Str("~decoy" + std::to_string(k));
  }
  return Value::Str("~decoy" + std::to_string(k));
}

bool SameSchema(const Schema& a, const Schema& b) {
  if (a.num_attributes() != b.num_attributes()) return false;
  for (size_t i = 0; i < a.num_attributes(); ++i) {
    const Attribute& x = a.attribute(i);
    const Attribute& y = b.attribute(i);
    if (x.name != y.name || x.type != y.type || x.semantic != y.semantic) {
      return false;
    }
  }
  return true;
}

AttributeSet ShiftAttributeSet(const AttributeSet& set, size_t offset) {
  AttributeSet out;
  for (size_t i : set.ToIndices()) out = out.With(i + offset);
  return out;
}

}  // namespace

MetadataTransform MetadataTransform::GeneralizeDomains(
    double widen_fraction, size_t pad_values, size_t quantize_buckets) {
  MetadataTransform t;
  t.kind = Kind::kGeneralizeDomains;
  t.widen_fraction = widen_fraction;
  t.pad_values = pad_values;
  t.quantize_buckets = quantize_buckets;
  return t;
}

MetadataTransform MetadataTransform::DpNoiseDistributions(
    double dp_epsilon, uint64_t noise_seed, double data_noise_fraction) {
  MetadataTransform t;
  t.kind = Kind::kDpNoiseDistributions;
  t.dp_epsilon = dp_epsilon;
  t.noise_seed = noise_seed;
  t.data_noise_fraction = data_noise_fraction;
  return t;
}

MetadataTransform MetadataTransform::SuppressDependencies(
    std::vector<DependencyKind> kinds, size_t keep_first) {
  MetadataTransform t;
  t.kind = Kind::kSuppressDependencies;
  t.suppress_kinds = std::move(kinds);
  t.keep_first = keep_first;
  return t;
}

Result<MetadataPackage> MetadataTransform::Apply(
    const MetadataPackage& package) const {
  MetadataPackage out = package;
  switch (kind) {
    case Kind::kGeneralizeDomains: {
      if (widen_fraction < 0.0) {
        return Status::Invalid("widen_fraction must be non-negative");
      }
      for (size_t i = 0; i < out.domains.size(); ++i) {
        if (!out.domains[i].has_value()) continue;
        const Domain& d = *out.domains[i];
        if (d.is_continuous()) {
          double width = d.range();
          double pad = widen_fraction * (width > 0.0 ? width : 1.0);
          out.domains[i] = Domain::Continuous(d.lo() - pad, d.hi() + pad);
        } else {
          std::vector<Value> values = d.values();
          const DataType type = i < out.schema.num_attributes()
                                    ? out.schema.attribute(i).type
                                    : DataType::kString;
          for (size_t k = 0; k < pad_values; ++k) {
            values.push_back(DecoyValue(type, d.values(), k));
          }
          out.domains[i] = Domain::Categorical(std::move(values));
        }
      }
      break;
    }
    case Kind::kDpNoiseDistributions: {
      if (dp_epsilon <= 0.0) {
        return Status::Invalid("dp_epsilon must be positive");
      }
      const double b = 1.0 / dp_epsilon;
      Rng rng(noise_seed);
      for (size_t i = 0; i < out.distributions.size(); ++i) {
        // One derived stream per attribute index, so an attribute's noise
        // does not depend on which other attributes disclosed a
        // distribution.
        Rng attr_rng = rng.Fork();
        if (!out.distributions[i].has_value()) continue;
        const ValueDistribution& dist = *out.distributions[i];
        if (dist.is_categorical()) {
          FrequencyTable table = dist.frequency_table();
          size_t total = 0;
          for (size_t& count : table.counts) {
            double noised = static_cast<double>(count) +
                            LaplaceDraw(&attr_rng, b);
            count = noised <= 0.0
                        ? 0
                        : static_cast<size_t>(std::llround(noised));
            total += count;
          }
          // An all-zero table would neither parse nor sample; fall back
          // to the uninformative uniform table.
          if (total == 0) {
            for (size_t& count : table.counts) count = 1;
          }
          METALEAK_ASSIGN_OR_RETURN(
              out.distributions[i],
              ValueDistribution::Categorical(std::move(table)));
        } else {
          Histogram h = dist.histogram();
          size_t total = 0;
          for (size_t& count : h.counts) {
            double noised = static_cast<double>(count) +
                            LaplaceDraw(&attr_rng, b);
            count = noised <= 0.0
                        ? 0
                        : static_cast<size_t>(std::llround(noised));
            total += count;
          }
          if (total == 0) {
            for (size_t& count : h.counts) count = 1;
          }
          METALEAK_ASSIGN_OR_RETURN(
              out.distributions[i],
              ValueDistribution::Continuous(std::move(h)));
        }
      }
      break;
    }
    case Kind::kSuppressDependencies: {
      DependencySet kept;
      size_t matched = 0;
      for (const Dependency& d : out.dependencies) {
        const bool match =
            suppress_kinds.empty() ||
            std::find(suppress_kinds.begin(), suppress_kinds.end(),
                      d.kind) != suppress_kinds.end();
        if (!match || matched++ < keep_first) kept.Add(d);
      }
      out.dependencies = std::move(kept);
      if (suppress_cfds) out.conditional_fds.clear();
      break;
    }
  }
  return out;
}

Result<Relation> MetadataTransform::ApplyToSlice(
    const Relation& slice) const {
  switch (kind) {
    case Kind::kGeneralizeDomains: {
      if (quantize_buckets == 0) return slice;
      std::vector<std::vector<Value>> columns;
      columns.reserve(slice.num_columns());
      for (size_t c = 0; c < slice.num_columns(); ++c) {
        columns.push_back(slice.column(c));
      }
      for (size_t c = 0; c < slice.num_columns(); ++c) {
        const Attribute& attr = slice.schema().attribute(c);
        if (attr.semantic != SemanticType::kContinuous) continue;
        double lo = 0.0, hi = 0.0;
        bool any = false;
        for (const Value& v : columns[c]) {
          if (v.is_null() || !v.is_numeric()) continue;
          double x = v.AsNumeric();
          if (!any) {
            lo = hi = x;
          } else {
            lo = std::min(lo, x);
            hi = std::max(hi, x);
          }
          any = true;
        }
        if (!any || hi <= lo) continue;
        const double width =
            (hi - lo) / static_cast<double>(quantize_buckets);
        for (Value& v : columns[c]) {
          if (v.is_null() || !v.is_numeric()) continue;
          double x = v.AsNumeric();
          auto bucket = static_cast<size_t>(std::min(
              static_cast<double>(quantize_buckets - 1),
              std::max(0.0, std::floor((x - lo) / width))));
          double q = lo + (static_cast<double>(bucket) + 0.5) * width;
          v = attr.type == DataType::kInt64 ? Value::Int(std::llround(q))
                                            : Value::Real(q);
        }
      }
      return Relation::Make(slice.schema(), std::move(columns));
    }
    case Kind::kDpNoiseDistributions: {
      if (data_noise_fraction <= 0.0) return slice;
      if (dp_epsilon <= 0.0) {
        return Status::Invalid("dp_epsilon must be positive");
      }
      std::vector<std::vector<Value>> columns;
      columns.reserve(slice.num_columns());
      for (size_t c = 0; c < slice.num_columns(); ++c) {
        columns.push_back(slice.column(c));
      }
      Rng rng(noise_seed ^ 0xA5A5A5A5A5A5A5A5ULL);
      for (size_t c = 0; c < slice.num_columns(); ++c) {
        Rng col_rng = rng.Fork();
        const Attribute& attr = slice.schema().attribute(c);
        if (attr.semantic != SemanticType::kContinuous) continue;
        double lo = 0.0, hi = 0.0;
        bool any = false;
        for (const Value& v : columns[c]) {
          if (v.is_null() || !v.is_numeric()) continue;
          double x = v.AsNumeric();
          if (!any) {
            lo = hi = x;
          } else {
            lo = std::min(lo, x);
            hi = std::max(hi, x);
          }
          any = true;
        }
        if (!any || hi <= lo) continue;
        const double b = (hi - lo) * data_noise_fraction / dp_epsilon;
        for (Value& v : columns[c]) {
          if (v.is_null() || !v.is_numeric()) continue;
          double x = v.AsNumeric() + LaplaceDraw(&col_rng, b);
          v = attr.type == DataType::kInt64 ? Value::Int(std::llround(x))
                                            : Value::Real(x);
        }
      }
      return Relation::Make(slice.schema(), std::move(columns));
    }
    case Kind::kSuppressDependencies:
      return slice;
  }
  return slice;
}

std::string MetadataTransform::ToString() const {
  switch (kind) {
    case Kind::kGeneralizeDomains:
      return "generalize(widen=" + std::to_string(widen_fraction) +
             ",pad=" + std::to_string(pad_values) +
             ",buckets=" + std::to_string(quantize_buckets) + ")";
    case Kind::kDpNoiseDistributions:
      return "dp-noise(eps=" + std::to_string(dp_epsilon) + ")";
    case Kind::kSuppressDependencies:
      return "suppress(kinds=" +
             std::to_string(suppress_kinds.size()) +
             ",keep=" + std::to_string(keep_first) + ")";
  }
  return "transform";
}

MetadataPolicy MetadataPolicy::FullDisclosure() {
  MetadataPolicy p;
  p.name = "full";
  p.level = DisclosureLevel::kWithRfds;
  return p;
}

MetadataPolicy MetadataPolicy::AtLevel(DisclosureLevel level,
                                       std::string name) {
  MetadataPolicy p;
  p.level = level;
  p.name = name.empty() ? DisclosureLevelToString(level) : std::move(name);
  return p;
}

Result<MetadataPackage> MetadataPolicy::Apply(
    const MetadataPackage& full) const {
  MetadataPackage out = full.Restrict(level);
  if (!allowed_kinds.empty()) {
    DependencySet kept;
    for (const Dependency& d : out.dependencies) {
      if (std::find(allowed_kinds.begin(), allowed_kinds.end(), d.kind) !=
          allowed_kinds.end()) {
        kept.Add(d);
      }
    }
    out.dependencies = std::move(kept);
    if (std::find(allowed_kinds.begin(), allowed_kinds.end(),
                  DependencyKind::kFunctional) == allowed_kinds.end()) {
      out.conditional_fds.clear();
    }
  }
  for (const MetadataTransform& t : transforms) {
    METALEAK_ASSIGN_OR_RETURN(out, t.Apply(out));
  }
  return out;
}

Result<Relation> MetadataPolicy::ApplyToSlice(const Relation& slice) const {
  Relation out = slice;
  for (const MetadataTransform& t : transforms) {
    METALEAK_ASSIGN_OR_RETURN(out, t.ApplyToSlice(out));
  }
  return out;
}

std::string MetadataPolicy::ToString() const {
  std::string out = name + "[" + DisclosureLevelToString(level);
  for (const MetadataTransform& t : transforms) {
    out += "," + t.ToString();
  }
  return out + "]";
}

Result<MetadataPackage> UnionPackageViews(
    const std::vector<const MetadataPackage*>& views) {
  if (views.empty()) {
    return Status::Invalid("cannot union zero package views");
  }
  // A single view unions to itself; returning the copy directly keeps the
  // common coalition case (one edge per victim) bit-identical to the
  // received package.
  if (views.size() == 1) return *views[0];
  for (const MetadataPackage* view : views) {
    if (!SameSchema(view->schema, views[0]->schema)) {
      return Status::Invalid(
          "package views of one victim must share a schema");
    }
  }
  MetadataPackage out;
  out.schema = views[0]->schema;
  const size_t m = out.schema.num_attributes();
  out.domains.assign(m, std::nullopt);
  out.distributions.assign(m, std::nullopt);
  for (const MetadataPackage* view : views) {
    out.num_rows = std::max(out.num_rows, view->num_rows);
    for (size_t i = 0; i < m && i < view->domains.size(); ++i) {
      if (!out.domains[i].has_value() && view->domains[i].has_value()) {
        out.domains[i] = view->domains[i];
      }
    }
    for (size_t i = 0; i < m && i < view->distributions.size(); ++i) {
      if (!out.distributions[i].has_value() &&
          view->distributions[i].has_value()) {
        out.distributions[i] = view->distributions[i];
      }
    }
    for (const Dependency& d : view->dependencies) out.dependencies.Add(d);
    for (const ConditionalFd& cfd : view->conditional_fds) {
      if (std::find(out.conditional_fds.begin(), out.conditional_fds.end(),
                    cfd) == out.conditional_fds.end()) {
        out.conditional_fds.push_back(cfd);
      }
    }
  }
  return out;
}

Result<MetadataPackage> ConcatDisjointPackages(
    const std::vector<const MetadataPackage*>& parts) {
  if (parts.empty()) {
    return Status::Invalid("cannot concatenate zero packages");
  }
  size_t total = 0;
  for (const MetadataPackage* part : parts) {
    total += part->schema.num_attributes();
  }
  if (total > 64) {
    return Status::Invalid(
        "combined package exceeds the 64-attribute AttributeSet capacity");
  }
  std::unordered_set<std::string> names;
  std::vector<Attribute> attrs;
  attrs.reserve(total);
  for (const MetadataPackage* part : parts) {
    for (const Attribute& a : part->schema.attributes()) {
      if (!names.insert(a.name).second) {
        return Status::Invalid("duplicate attribute name across packages: " +
                               a.name);
      }
      attrs.push_back(a);
    }
  }
  MetadataPackage out;
  out.schema = Schema(std::move(attrs));
  out.domains.reserve(total);
  out.distributions.reserve(total);
  size_t offset = 0;
  for (const MetadataPackage* part : parts) {
    const size_t m = part->schema.num_attributes();
    out.num_rows = std::max(out.num_rows, part->num_rows);
    for (size_t i = 0; i < m; ++i) {
      out.domains.push_back(i < part->domains.size() ? part->domains[i]
                                                     : std::nullopt);
      out.distributions.push_back(i < part->distributions.size()
                                      ? part->distributions[i]
                                      : std::nullopt);
    }
    for (const Dependency& d : part->dependencies) {
      Dependency shifted = d;
      shifted.lhs = ShiftAttributeSet(d.lhs, offset);
      shifted.rhs = d.rhs + offset;
      out.dependencies.Add(shifted);
    }
    for (const ConditionalFd& cfd : part->conditional_fds) {
      ConditionalFd shifted = cfd;
      shifted.condition_attr = cfd.condition_attr + offset;
      shifted.lhs = ShiftAttributeSet(cfd.lhs, offset);
      shifted.rhs = cfd.rhs + offset;
      out.conditional_fds.push_back(std::move(shifted));
    }
    offset += m;
  }
  return out;
}

}  // namespace metaleak
