#include "metadata/dependency.h"

#include <sstream>

#include "common/string_util.h"

namespace metaleak {

std::string DependencyKindToString(DependencyKind kind) {
  switch (kind) {
    case DependencyKind::kFunctional:
      return "functional dependency";
    case DependencyKind::kApproximateFunctional:
      return "approximate functional dependency";
    case DependencyKind::kNumerical:
      return "numerical dependency";
    case DependencyKind::kOrder:
      return "order dependency";
    case DependencyKind::kDifferential:
      return "differential dependency";
    case DependencyKind::kOrderedFunctional:
      return "ordered functional dependency";
  }
  return "unknown dependency";
}

std::string DependencyKindCode(DependencyKind kind) {
  switch (kind) {
    case DependencyKind::kFunctional:
      return "FD";
    case DependencyKind::kApproximateFunctional:
      return "AFD";
    case DependencyKind::kNumerical:
      return "ND";
    case DependencyKind::kOrder:
      return "OD";
    case DependencyKind::kDifferential:
      return "DD";
    case DependencyKind::kOrderedFunctional:
      return "OFD";
  }
  return "?";
}

Result<DependencyKind> ParseDependencyKind(const std::string& code) {
  if (code == "FD") return DependencyKind::kFunctional;
  if (code == "AFD") return DependencyKind::kApproximateFunctional;
  if (code == "ND") return DependencyKind::kNumerical;
  if (code == "OD") return DependencyKind::kOrder;
  if (code == "DD") return DependencyKind::kDifferential;
  if (code == "OFD") return DependencyKind::kOrderedFunctional;
  return Status::Invalid("unknown dependency kind code: " + code);
}

Dependency Dependency::Fd(AttributeSet lhs, size_t rhs) {
  Dependency d;
  d.kind = DependencyKind::kFunctional;
  d.lhs = lhs;
  d.rhs = rhs;
  return d;
}

Dependency Dependency::Afd(AttributeSet lhs, size_t rhs, double g3_error) {
  Dependency d;
  d.kind = DependencyKind::kApproximateFunctional;
  d.lhs = lhs;
  d.rhs = rhs;
  d.g3_error = g3_error;
  return d;
}

Dependency Dependency::Nd(size_t lhs, size_t rhs, size_t max_fanout) {
  return Nd(AttributeSet::Single(lhs), rhs, max_fanout);
}

Dependency Dependency::Nd(AttributeSet lhs, size_t rhs, size_t max_fanout) {
  Dependency d;
  d.kind = DependencyKind::kNumerical;
  d.lhs = lhs;
  d.rhs = rhs;
  d.max_fanout = max_fanout;
  return d;
}

Dependency Dependency::Od(size_t lhs, size_t rhs) {
  return Od(AttributeSet::Single(lhs), rhs);
}

Dependency Dependency::Od(AttributeSet lhs, size_t rhs) {
  Dependency d;
  d.kind = DependencyKind::kOrder;
  d.lhs = lhs;
  d.rhs = rhs;
  return d;
}

Dependency Dependency::Dd(size_t lhs, size_t rhs, double lhs_epsilon,
                          double rhs_delta) {
  Dependency d;
  d.kind = DependencyKind::kDifferential;
  d.lhs = AttributeSet::Single(lhs);
  d.rhs = rhs;
  d.lhs_epsilon = lhs_epsilon;
  d.rhs_delta = rhs_delta;
  return d;
}

Dependency Dependency::Dd(AttributeSet lhs, size_t rhs,
                          std::vector<double> lhs_epsilons,
                          double rhs_delta) {
  if (lhs.size() == 1 && lhs_epsilons.size() == 1) {
    return Dd(lhs.ToIndices()[0], rhs, lhs_epsilons[0], rhs_delta);
  }
  Dependency d;
  d.kind = DependencyKind::kDifferential;
  d.lhs = lhs;
  d.rhs = rhs;
  // lhs_epsilon keeps the first attribute's threshold so consumers that
  // understand only the single-attribute form degrade gracefully.
  d.lhs_epsilon = lhs_epsilons.empty() ? 0.0 : lhs_epsilons[0];
  d.rhs_delta = rhs_delta;
  d.lhs_epsilons = std::move(lhs_epsilons);
  return d;
}

Dependency Dependency::Ofd(size_t lhs, size_t rhs) {
  return Ofd(AttributeSet::Single(lhs), rhs);
}

Dependency Dependency::Ofd(AttributeSet lhs, size_t rhs) {
  Dependency d;
  d.kind = DependencyKind::kOrderedFunctional;
  d.lhs = lhs;
  d.rhs = rhs;
  return d;
}

namespace {

std::string RenderLhs(const Dependency& d, const Schema* schema) {
  std::ostringstream os;
  os << '{';
  bool first = true;
  for (size_t i : d.lhs.ToIndices()) {
    if (!first) os << ", ";
    if (schema != nullptr) {
      os << schema->attribute(i).name;
    } else {
      os << i;
    }
    first = false;
  }
  os << '}';
  return os.str();
}

std::string Render(const Dependency& d, const Schema* schema) {
  std::ostringstream os;
  os << DependencyKindCode(d.kind) << ' ' << RenderLhs(d, schema) << " -> ";
  if (schema != nullptr) {
    os << schema->attribute(d.rhs).name;
  } else {
    os << d.rhs;
  }
  switch (d.kind) {
    case DependencyKind::kApproximateFunctional:
      os << " (g3=" << FormatDouble(d.g3_error, 4) << ')';
      break;
    case DependencyKind::kNumerical:
      os << " (K=" << d.max_fanout << ')';
      break;
    case DependencyKind::kDifferential:
      os << " (eps=";
      if (d.lhs_epsilons.empty()) {
        os << FormatDouble(d.lhs_epsilon, 4);
      } else {
        for (size_t i = 0; i < d.lhs_epsilons.size(); ++i) {
          if (i > 0) os << '|';
          os << FormatDouble(d.lhs_epsilons[i], 4);
        }
      }
      os << ", delta=" << FormatDouble(d.rhs_delta, 4) << ')';
      break;
    default:
      break;
  }
  return os.str();
}

}  // namespace

std::string Dependency::ToString(const Schema& schema) const {
  return Render(*this, &schema);
}

std::string Dependency::ToString() const { return Render(*this, nullptr); }

bool operator==(const Dependency& a, const Dependency& b) {
  return a.kind == b.kind && a.lhs == b.lhs && a.rhs == b.rhs &&
         a.g3_error == b.g3_error && a.max_fanout == b.max_fanout &&
         a.lhs_epsilon == b.lhs_epsilon && a.rhs_delta == b.rhs_delta &&
         a.lhs_epsilons == b.lhs_epsilons;
}

}  // namespace metaleak
