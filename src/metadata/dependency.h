// The dependency taxonomy the paper analyzes.
//
// Canonical form: every dependency has an attribute-set LHS (usually a
// single attribute for the relaxed classes) and a single RHS attribute.
// Kind-specific parameters ride along in the same passive struct:
//
//   FD   X -> A           (Section II-A)      no parameters
//   AFD  X -> A, g3 <= e  (Section IV-A)      g3_error
//   ND   X ->(<=K) A      (Section IV-B)      max_fanout K
//   OD   X <= -> A <=     (Section IV-C)      no parameters
//   DD   [x±eps] -> [y±delta] (Section IV-D)  lhs_epsilon, rhs_delta
//   OFD  X -> A with <    (Section IV-E)      no parameters
#ifndef METALEAK_METADATA_DEPENDENCY_H_
#define METALEAK_METADATA_DEPENDENCY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/schema.h"
#include "partition/attribute_set.h"

namespace metaleak {

enum class DependencyKind {
  kFunctional,
  kApproximateFunctional,
  kNumerical,
  kOrder,
  kDifferential,
  kOrderedFunctional,
};

std::string DependencyKindToString(DependencyKind kind);

/// Short code used in serialized metadata: FD, AFD, ND, OD, DD, OFD.
std::string DependencyKindCode(DependencyKind kind);

/// Parses a kind code; Invalid on unknown codes.
Result<DependencyKind> ParseDependencyKind(const std::string& code);

struct Dependency {
  DependencyKind kind = DependencyKind::kFunctional;
  AttributeSet lhs;
  size_t rhs = 0;

  /// AFD: measured g3 error in [0, 1).
  double g3_error = 0.0;
  /// ND: the cardinality bound K (max distinct RHS values per LHS value).
  size_t max_fanout = 0;
  /// DD: the metric thresholds on LHS and RHS.
  double lhs_epsilon = 0.0;
  double rhs_delta = 0.0;
  /// DD with |LHS| > 1: per-attribute epsilons, parallel to
  /// lhs.ToIndices(). Empty in the canonical single-attribute form, where
  /// lhs_epsilon alone carries the threshold.
  std::vector<double> lhs_epsilons;

  /// Factories for each class keep call sites self-describing. The
  /// relaxed classes come in the paper's canonical single-attribute form
  /// plus the multi-attribute LHS form the lattice kernel emits.
  static Dependency Fd(AttributeSet lhs, size_t rhs);
  static Dependency Afd(AttributeSet lhs, size_t rhs, double g3_error);
  static Dependency Nd(size_t lhs, size_t rhs, size_t max_fanout);
  static Dependency Nd(AttributeSet lhs, size_t rhs, size_t max_fanout);
  static Dependency Od(size_t lhs, size_t rhs);
  static Dependency Od(AttributeSet lhs, size_t rhs);
  static Dependency Dd(size_t lhs, size_t rhs, double lhs_epsilon,
                       double rhs_delta);
  static Dependency Dd(AttributeSet lhs, size_t rhs,
                       std::vector<double> lhs_epsilons, double rhs_delta);
  static Dependency Ofd(size_t lhs, size_t rhs);
  static Dependency Ofd(AttributeSet lhs, size_t rhs);

  /// "FD {Name} -> Age" style rendering using schema names.
  std::string ToString(const Schema& schema) const;

  /// Index-based rendering without a schema ("FD {0,2} -> 3 ...").
  std::string ToString() const;

  friend bool operator==(const Dependency& a, const Dependency& b);
};

}  // namespace metaleak

#endif  // METALEAK_METADATA_DEPENDENCY_H_
