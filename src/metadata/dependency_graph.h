// DependencyGraph: turns a dependency set into a generation plan.
//
// Section V of the paper: "The dependencies form a directed graph between
// the attributes which is used for generation." The adversary generates
// attributes in an order where every attribute is produced either from its
// domain (a *root*) or through exactly one chosen dependency whose LHS
// attributes were generated earlier.
#ifndef METALEAK_METADATA_DEPENDENCY_GRAPH_H_
#define METALEAK_METADATA_DEPENDENCY_GRAPH_H_

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/schema.h"
#include "metadata/dependency_set.h"

namespace metaleak {

/// One step of the generation plan.
struct GenerationStep {
  size_t attribute = 0;
  /// The dependency used to derive this attribute; nullopt for roots
  /// (generated directly from the attribute's domain).
  std::optional<Dependency> via;
};

/// A fully ordered plan covering every attribute exactly once.
class DependencyGraph {
 public:
  /// Builds a plan for `num_attributes` attributes from `deps`.
  ///
  /// Edge selection: for each attribute the highest-priority applicable
  /// dependency is chosen, with priority FD > OFD > OD > AFD > ND > DD
  /// (stronger constraints first, mirroring the paper's analysis order).
  /// `allowed` restricts which kinds may be used (empty = all). Cycles are
  /// broken deterministically by making the smallest-index attribute of
  /// the cycle a root.
  static DependencyGraph Build(
      size_t num_attributes, const DependencySet& deps,
      const std::vector<DependencyKind>& allowed = {});

  const std::vector<GenerationStep>& steps() const { return steps_; }

  /// Step count equals the attribute count by construction.
  size_t size() const { return steps_.size(); }

  /// The step generating `attribute`.
  const GenerationStep& StepFor(size_t attribute) const;

  /// Count of non-root steps (attributes derived via a dependency).
  size_t num_derived() const;

  std::string ToString(const Schema& schema) const;

 private:
  explicit DependencyGraph(std::vector<GenerationStep> steps);

  std::vector<GenerationStep> steps_;
  std::vector<size_t> step_of_attribute_;
};

}  // namespace metaleak

#endif  // METALEAK_METADATA_DEPENDENCY_GRAPH_H_
