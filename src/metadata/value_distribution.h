// ValueDistribution: an attribute's empirical value distribution, as it
// would be disclosed in metadata.
//
// This models a *stronger* disclosure than the paper analyzes: the paper
// assumes "the distribution remains undisclosed" and the adversary
// samples uniformly. Sharing distributions lets the adversary sample
// from the real marginal instead, and the A6 ablation quantifies how
// much extra leakage that causes — evidence for keeping distributions
// (and domains) private.
#ifndef METALEAK_METADATA_VALUE_DISTRIBUTION_H_
#define METALEAK_METADATA_VALUE_DISTRIBUTION_H_

#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "data/encoded_relation.h"
#include "data/relation.h"
#include "data/statistics.h"
#include "data/value.h"

namespace metaleak {

class ValueDistribution {
 public:
  ValueDistribution() = default;

  /// Categorical marginal from an explicit frequency table.
  static Result<ValueDistribution> Categorical(FrequencyTable table);

  /// Continuous marginal from an equi-width histogram.
  static Result<ValueDistribution> Continuous(Histogram histogram);

  /// Builds the marginal of one attribute: a frequency table for
  /// categorical attributes, a `buckets`-bin histogram for continuous
  /// ones.
  static Result<ValueDistribution> FromColumn(const Relation& relation,
                                              size_t attribute,
                                              size_t buckets = 16);

  /// Same marginal, read straight off the dictionary encoding: the
  /// dictionary already holds each distinct value with its frequency in
  /// Value total order, so no column re-scan is needed.
  static Result<ValueDistribution> FromEncoded(
      const EncodedRelation& relation, size_t attribute,
      size_t buckets = 16);

  bool is_categorical() const { return categorical_; }
  const FrequencyTable& frequency_table() const { return freq_; }
  const Histogram& histogram() const { return hist_; }

  /// Draws a value from the disclosed marginal: weighted choice for
  /// categorical; bucket by mass then uniform within the bucket for
  /// continuous.
  Value Sample(Rng* rng) const;

  /// Probability (mass) of drawing exactly `v` (categorical) or the
  /// bucket containing `v` (continuous).
  double MassOf(const Value& v) const;

  /// Exact Shannon entropy in bits of the disclosed marginal, straight
  /// off the stored frequency table (categorical) or histogram bucket
  /// counts (continuous). Routed through ShannonEntropyBits so the
  /// analytical models and the empirical InfoTheoreticEstimator share
  /// one log-sum definition instead of each recomputing their own.
  double EntropyBits() const;

  friend bool operator==(const ValueDistribution& a,
                         const ValueDistribution& b);

 private:
  bool categorical_ = true;
  FrequencyTable freq_;
  Histogram hist_;
};

}  // namespace metaleak

#endif  // METALEAK_METADATA_VALUE_DISTRIBUTION_H_
