// Position list indexes (stripped partitions), the TANE representation.
//
// A PLI for an attribute set X partitions the row indices of a relation by
// equality on X, *stripping* singleton clusters (a row alone in its cluster
// can never witness an FD violation). TANE's key facts, used throughout:
//
//   * FD X -> A holds  iff  pli(X) refines pli(A)
//                      iff  Error(pli(X), probe(A)) == 0
//   * pli(X ∪ Y) = Intersect(pli(X), pli(Y))
//   * g3 error of X -> A = (minimum #rows to delete so the FD holds) / N,
//     computable per-cluster from the majority Y-class.
//
// NULL semantics: NULL equals NULL (one cluster), matching the library-wide
// convention documented in value.h.
#ifndef METALEAK_PARTITION_POSITION_LIST_INDEX_H_
#define METALEAK_PARTITION_POSITION_LIST_INDEX_H_

#include <cstdint>
#include <vector>

#include "data/encoded_relation.h"
#include "data/relation.h"
#include "data/value.h"

namespace metaleak {

class PositionListIndex {
 public:
  using Cluster = std::vector<size_t>;

  /// Builds the PLI of a single column. O(N) expected via hashing.
  /// This is the legacy `Value` path; the dictionary-encoded builders
  /// below are the hot path (and agreement-tested against this one).
  static PositionListIndex FromColumn(const std::vector<Value>& column);

  /// Builds the PLI of a set of columns of `relation` (equality on the
  /// whole tuple projection). Legacy `Value` path, see FromColumn.
  static PositionListIndex FromColumns(const Relation& relation,
                                       const std::vector<size_t>& columns);

  /// Builds the PLI of one dictionary-encoded column by counting-style
  /// grouping over the dense codes: two O(N) passes, no hashing. Codes
  /// must lie in [0, num_codes). Clusters come out in ascending code
  /// order with ascending row indices — fully deterministic.
  static PositionListIndex FromCodes(const std::vector<uint32_t>& codes,
                                     uint32_t num_codes);

  /// Builds the PLI of a set of columns of an encoded relation. Single
  /// columns use FromCodes; larger sets fold the per-column codes into
  /// dense group ids column by column (renumbering keeps ids < N, so the
  /// fold never overflows and never hashes a `Value`).
  static PositionListIndex FromEncoded(const EncodedRelation& relation,
                                       const std::vector<size_t>& columns);

  /// The identity PLI over `num_rows` rows: one cluster with every row
  /// (the PLI of the empty attribute set).
  static PositionListIndex Identity(size_t num_rows);

  /// Product partition pli(X ∪ Y) from pli(X) (this) and pli(Y) (other).
  /// Standard probe-table intersection, O(sum of cluster sizes).
  PositionListIndex Intersect(const PositionListIndex& other) const;

  /// Number of stripped (size >= 2) clusters.
  size_t num_clusters() const { return clusters_.size(); }

  /// Total rows contained in stripped clusters.
  size_t num_stripped_rows() const { return stripped_rows_; }

  /// Rows of the underlying relation.
  size_t num_rows() const { return num_rows_; }

  /// Number of equivalence classes including the stripped singletons:
  /// |π_X| = num_clusters + (num_rows - num_stripped_rows).
  size_t num_classes() const {
    return clusters_.size() + (num_rows_ - stripped_rows_);
  }

  const std::vector<Cluster>& clusters() const { return clusters_; }

  /// Probe table: row -> cluster id, or kUnique for stripped singletons.
  /// Used to test refinement and to compute g3 against another partition.
  static constexpr int64_t kUnique = -1;
  std::vector<int64_t> ProbeTable() const;

  /// True iff this partition refines `other`: every cluster of this lies
  /// inside one class of `other`. FD X->A holds iff pli(X).Refines(pli(A)).
  bool Refines(const PositionListIndex& other) const;

  /// g3 error of the FD (X = this) -> (A = other): the minimum fraction of
  /// rows that must be removed for the FD to hold (Kivinen–Mannila g3, the
  /// definition AFDs use in the paper, Section IV-A).
  double G3Error(const PositionListIndex& other) const;

  /// Maximum number of distinct `other`-classes seen within one cluster of
  /// this partition — the minimal fan-out K for a numerical dependency
  /// X ->(<=K) A (Section IV-B). Returns 1 when every cluster is pure.
  size_t MaxFanout(const PositionListIndex& other) const;

 private:
  PositionListIndex(std::vector<Cluster> clusters, size_t num_rows);

  std::vector<Cluster> clusters_;
  size_t num_rows_ = 0;
  size_t stripped_rows_ = 0;
};

}  // namespace metaleak

#endif  // METALEAK_PARTITION_POSITION_LIST_INDEX_H_
