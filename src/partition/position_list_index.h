// Position list indexes (stripped partitions), the TANE representation.
//
// A PLI for an attribute set X partitions the row indices of a relation by
// equality on X, *stripping* singleton clusters (a row alone in its cluster
// can never witness an FD violation). TANE's key facts, used throughout:
//
//   * FD X -> A holds  iff  pli(X) refines pli(A)
//                      iff  Error(pli(X), probe(A)) == 0
//   * pli(X ∪ Y) = Intersect(pli(X), pli(Y))
//   * g3 error of X -> A = (minimum #rows to delete so the FD holds) / N,
//     computable per-cluster from the majority Y-class.
//
// Layout: one flat CSR arena. All cluster members live in a single
// contiguous `rows` array; `cluster_offsets` (num_clusters + 1 entries)
// delimits the clusters. There are no per-cluster allocations — building
// a PLI costs exactly two vector allocations regardless of cluster count,
// clusters iterate as cache-friendly spans (`ClusterView`), and rows are
// 32-bit, so a partition scan touches half the memory the old
// vector-of-vectors layout did. Cluster ordering is unchanged from the
// nested layout (ascending code / first-occurrence order, ascending rows
// within each cluster), so downstream output is bit-identical.
//
// The row -> cluster-id probe table is built lazily, once, and cached on
// the PLI (partitions are immutable after construction); `Refines`,
// `G3Error`, `MaxFanout` and `Intersect` all reuse it instead of
// materializing a fresh table per call. `Intersect` additionally takes an
// optional caller-owned `IntersectionScratch` so a level-wise lattice
// pass reuses one probe/count workspace across every candidate instead of
// allocating per intersection, and it iterates whichever operand has
// fewer stripped rows (probing the other), which bounds the scan by the
// smaller side.
//
// NULL semantics: NULL equals NULL (one cluster), matching the library-wide
// convention documented in value.h.
#ifndef METALEAK_PARTITION_POSITION_LIST_INDEX_H_
#define METALEAK_PARTITION_POSITION_LIST_INDEX_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/macros.h"
#include "common/simd.h"
#include "data/code_column.h"
#include "data/encoded_relation.h"
#include "data/relation.h"
#include "data/value.h"

namespace metaleak {

/// Reusable workspace for PositionListIndex::Intersect. Holding one of
/// these across many intersections (e.g. one per worker thread during a
/// lattice level) makes each call allocation-free apart from the result
/// arrays. The invariant between calls is that `counts` is all zero;
/// Intersect restores it before returning.
struct IntersectionScratch {
  std::vector<uint32_t> counts;   // per probe-side cluster: rows seen
  std::vector<uint32_t> cursor;   // per probe-side cluster: write cursor
  std::vector<uint32_t> touched;  // probe ids hit, first-occurrence order
  std::vector<int32_t> ids;       // gathered probe ids of the iterated cluster
};

class PositionListIndex {
 public:
  /// Rows are 32-bit inside the arena (a relation beyond 4B rows is far
  /// outside scope and DCHECK-guarded in every builder).
  using Row = uint32_t;

  /// Legacy nested-cluster spelling, kept for the Value-path builders and
  /// the agreement tests' canonical form.
  using Cluster = std::vector<size_t>;

  /// One cluster as a span over the CSR arena. Cheap to copy; iterates
  /// the member rows in stored (ascending) order.
  class ClusterView {
   public:
    ClusterView(const Row* begin, const Row* end)
        : begin_(begin), end_(end) {}
    const Row* begin() const { return begin_; }
    const Row* end() const { return end_; }
    size_t size() const { return static_cast<size_t>(end_ - begin_); }
    size_t operator[](size_t i) const {
      METALEAK_DCHECK(i < size());
      return static_cast<size_t>(begin_[i]);
    }
    std::vector<size_t> ToVector() const {
      return std::vector<size_t>(begin_, end_);
    }

   private:
    const Row* begin_;
    const Row* end_;
  };

  /// Random-access range of ClusterViews over one PLI (valid while the
  /// PLI is alive). Supports indexing and range-for.
  class ClusterList {
   public:
    class iterator {
     public:
      iterator(const ClusterList* list, size_t index)
          : list_(list), index_(index) {}
      ClusterView operator*() const { return (*list_)[index_]; }
      iterator& operator++() {
        ++index_;
        return *this;
      }
      friend bool operator==(const iterator& a, const iterator& b) {
        return a.index_ == b.index_;
      }
      friend bool operator!=(const iterator& a, const iterator& b) {
        return a.index_ != b.index_;
      }

     private:
      const ClusterList* list_;
      size_t index_;
    };

    size_t size() const { return pli_->num_clusters(); }
    bool empty() const { return size() == 0; }
    ClusterView operator[](size_t c) const { return pli_->cluster(c); }
    iterator begin() const { return iterator(this, 0); }
    iterator end() const { return iterator(this, size()); }

   private:
    friend class PositionListIndex;
    explicit ClusterList(const PositionListIndex* pli) : pli_(pli) {}
    const PositionListIndex* pli_;
  };

  /// Builds the PLI of a single column. O(N) expected via hashing.
  /// This is the legacy `Value` path; the dictionary-encoded builders
  /// below are the hot path (and agreement-tested against this one).
  static PositionListIndex FromColumn(const std::vector<Value>& column);

  /// Builds the PLI of a set of columns of `relation` (equality on the
  /// whole tuple projection). Legacy `Value` path, see FromColumn.
  static PositionListIndex FromColumns(const Relation& relation,
                                       const std::vector<size_t>& columns);

  /// Builds the PLI of one dictionary-encoded column by counting-style
  /// grouping over the dense codes: two O(N) passes, no hashing, and the
  /// clusters are scattered straight into the CSR arena. Codes must lie
  /// in [0, num_codes). Clusters come out in ascending code order with
  /// ascending row indices — fully deterministic.
  static PositionListIndex FromCodes(const std::vector<uint32_t>& codes,
                                     uint32_t num_codes);

  /// Width-tagged variant of FromCodes streaming the codes at their
  /// stored width (u8/u16/u32). High-cardinality columns (dictionaries
  /// too large for the slot/cursor tables to stay cache-resident) take a
  /// radix-partitioned scatter: rows are bucketed by code high bits, so
  /// each per-bucket pass touches only a cache-sized slice of the
  /// tables. The bucketing is stable and each code lives in exactly one
  /// bucket, so the resulting arena is bit-identical to the direct
  /// scatter. The u32-vector overload above forwards here.
  static PositionListIndex FromCodes(const CodeColumnView& codes,
                                     uint32_t num_codes);

  /// Builds the PLI of a set of columns of an encoded relation. Single
  /// columns use FromCodes; larger sets fold the per-column codes into
  /// dense group ids column by column (renumbering keeps ids < N, so the
  /// fold never overflows and never hashes a `Value`).
  static PositionListIndex FromEncoded(const EncodedRelation& relation,
                                       const std::vector<size_t>& columns);

  /// The identity PLI over `num_rows` rows: one cluster with every row
  /// (the PLI of the empty attribute set).
  static PositionListIndex Identity(size_t num_rows);

  /// Wraps already-canonical CSR arrays as a PLI: `offsets` has one entry
  /// per cluster plus the trailing total, clusters appear in ascending
  /// code order, every cluster has >= 2 rows in ascending order. This is
  /// the emission path of the in-place maintenance layer
  /// (pli_maintenance.h), which guarantees the canonical form; the
  /// invariants are DCHECK-checked here.
  static PositionListIndex FromCsrArrays(std::vector<Row> rows,
                                         std::vector<uint32_t> offsets,
                                         size_t num_rows);

  /// Product partition pli(X ∪ Y) from pli(X) (this) and pli(Y) (other).
  /// Probe-table intersection over the CSR arena, O(stripped rows of the
  /// smaller operand) given both probe tables are built. The overload
  /// with `scratch` reuses the caller's workspace (see
  /// IntersectionScratch); without it a transient workspace is used.
  PositionListIndex Intersect(const PositionListIndex& other) const;
  PositionListIndex Intersect(const PositionListIndex& other,
                              IntersectionScratch* scratch) const;

  /// Number of stripped (size >= 2) clusters.
  size_t num_clusters() const { return offsets_.size() - 1; }

  /// Total rows contained in stripped clusters.
  size_t num_stripped_rows() const { return rows_.size(); }

  /// Rows of the underlying relation.
  size_t num_rows() const { return num_rows_; }

  /// Number of equivalence classes including the stripped singletons:
  /// |π_X| = num_clusters + (num_rows - num_stripped_rows).
  size_t num_classes() const {
    return num_clusters() + (num_rows_ - rows_.size());
  }

  /// Cluster `c` as a span over the arena.
  ClusterView cluster(size_t c) const {
    METALEAK_DCHECK(c < num_clusters());
    return ClusterView(rows_.data() + offsets_[c],
                       rows_.data() + offsets_[c + 1]);
  }

  /// All clusters, in stored order.
  ClusterList clusters() const { return ClusterList(this); }

  /// Clusters materialized as nested vectors (tests and debugging; the
  /// hot paths iterate ClusterViews instead).
  std::vector<Cluster> ToNestedClusters() const;

  /// The flat CSR arrays (agreement tests, benches).
  const std::vector<Row>& rows() const { return rows_; }
  const std::vector<uint32_t>& cluster_offsets() const { return offsets_; }

  /// Probe table: row -> cluster id, or kUnique for stripped singletons.
  /// Built lazily on first use and cached for the PLI's lifetime (thread
  /// safe; copies share the cache). Used to test refinement, to compute
  /// g3 / fan-out against another partition, and by Intersect.
  static constexpr int32_t kUnique = -1;
  const std::vector<int32_t>& probe_table() const;

  /// Largest cluster count for which the bit-parallel counting queries
  /// apply (one bitmap per cluster; beyond this the AND sweep over all
  /// cluster pairs stops paying for itself).
  static constexpr size_t kBitsetMaxClusters = 64;

  /// Per-cluster membership bitmaps, packed 64 rows to a word: bitmap c
  /// occupies words [c * BitsetWords(num_rows), (c+1) * ...). Only built
  /// for partitions with num_clusters() <= kBitsetMaxClusters (DCHECKed).
  /// Lazily built and cached like the probe table; the bit-parallel
  /// G3Error / MaxFanout / Refines paths AND these against the other
  /// side's bitmaps and popcount, never touching row ids.
  const std::vector<uint64_t>& cluster_bitmaps() const;

  /// True iff this partition refines `other`: every cluster of this lies
  /// inside one class of `other`. FD X->A holds iff pli(X).Refines(pli(A)).
  bool Refines(const PositionListIndex& other) const;

  /// g3 error of the FD (X = this) -> (A = other): the minimum fraction of
  /// rows that must be removed for the FD to hold (Kivinen–Mannila g3, the
  /// definition AFDs use in the paper, Section IV-A).
  double G3Error(const PositionListIndex& other) const;

  /// Maximum number of distinct `other`-classes seen within one cluster of
  /// this partition — the minimal fan-out K for a numerical dependency
  /// X ->(<=K) A (Section IV-B). Returns 1 when every cluster is pure.
  size_t MaxFanout(const PositionListIndex& other) const;

 private:
  // Lazily-built probe table. Shared (not deep-copied) between copies of
  // a PLI: the table is written exactly once, inside call_once, so
  // sharing is safe and keeps PositionListIndex cheaply copyable.
  struct ProbeState {
    std::once_flag once;
    std::vector<int32_t> table;
    std::once_flag bitmaps_once;
    std::vector<uint64_t> bitmaps;
  };

  /// True when the bit-parallel counting path applies to a query of this
  /// against `other` at the given dispatch level: both sides small enough
  /// for per-cluster bitmaps and the AND sweep cheaper than the gathered
  /// row scan.
  bool BitsetCountingApplies(const PositionListIndex& other,
                             SimdLevel level) const;

  PositionListIndex(std::vector<Row> rows, std::vector<uint32_t> offsets,
                    size_t num_rows);

  /// Adapter for the legacy Value-path builders: flattens nested clusters
  /// into the CSR arena, preserving cluster and row order.
  static PositionListIndex FromNested(const std::vector<Cluster>& clusters,
                                      size_t num_rows);

  std::vector<Row> rows_;         // concatenated cluster members
  std::vector<uint32_t> offsets_; // cluster c = rows_[offsets_[c]..offsets_[c+1])
  size_t num_rows_ = 0;
  std::shared_ptr<ProbeState> probe_;
};

}  // namespace metaleak

#endif  // METALEAK_PARTITION_POSITION_LIST_INDEX_H_
