#include "partition/pli_cache.h"

namespace metaleak {

PliCache::PliCache(const EncodedRelation* encoded) : encoded_(encoded) {
  METALEAK_DCHECK(encoded_ != nullptr);
  BuildSingletons();
}

PliCache::PliCache(const Relation* relation) {
  METALEAK_DCHECK(relation != nullptr);
  owned_encoding_ =
      std::make_unique<EncodedRelation>(EncodedRelation::Encode(*relation));
  encoded_ = owned_encoding_.get();
  BuildSingletons();
}

void PliCache::BuildSingletons() {
  METALEAK_DCHECK(encoded_->num_columns() <= AttributeSet::kMaxAttributes);
  const uint64_t fp = encoded_->Fingerprint();
  cache_[PliCacheKey{fp, AttributeSet()}] =
      std::make_unique<PositionListIndex>(
          PositionListIndex::Identity(encoded_->num_rows()));
  for (size_t c = 0; c < encoded_->num_columns(); ++c) {
    cache_[PliCacheKey{fp, AttributeSet::Single(c)}] =
        std::make_unique<PositionListIndex>(PositionListIndex::FromCodes(
            encoded_->codes(c), encoded_->dictionary(c).num_codes()));
  }
}

const PositionListIndex* PliCache::Get(AttributeSet attrs) {
  const uint64_t fp = encoded_->Fingerprint();
  PliCacheKey key{fp, attrs};
  auto it = cache_.find(key);
  if (it != cache_.end()) return it->second.get();

  // Build by intersecting the (recursively obtained) PLI without the
  // highest attribute with that attribute's single PLI. Depth is |attrs|.
  std::vector<size_t> indices = attrs.ToIndices();
  size_t last = indices.back();
  const PositionListIndex* rest = Get(attrs.Without(last));
  const PositionListIndex* single = Get(AttributeSet::Single(last));
  auto built = std::make_unique<PositionListIndex>(rest->Intersect(*single));
  const PositionListIndex* out = built.get();
  cache_[key] = std::move(built);
  return out;
}

}  // namespace metaleak
