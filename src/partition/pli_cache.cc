#include "partition/pli_cache.h"

#include <vector>

namespace metaleak {

PliCache::PliCache(const EncodedRelation* encoded) : encoded_(encoded) {
  METALEAK_DCHECK(encoded_ != nullptr);
  BuildSingletons();
}

PliCache::PliCache(const Relation* relation) {
  METALEAK_DCHECK(relation != nullptr);
  owned_encoding_ =
      std::make_unique<EncodedRelation>(EncodedRelation::Encode(*relation));
  encoded_ = owned_encoding_.get();
  BuildSingletons();
}

PliCache::PliCache(const EncodedRelation* encoded,
                   std::vector<PositionListIndex> singles)
    : encoded_(encoded) {
  METALEAK_DCHECK(encoded_ != nullptr);
  METALEAK_DCHECK(singles.size() == encoded_->num_columns());
  // Pre-fire the singleton entries with the caller's partitions: insert
  // the entry and run its call_once immediately, so later Gets see a
  // completed build exactly as if BuildSingletons had made it.
  for (size_t c = 0; c < singles.size(); ++c) {
    PliCacheKey key{encoded_->Fingerprint(), AttributeSet::Single(c)};
    Shard& shard = ShardFor(key);
    std::shared_ptr<Entry> entry;
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      std::shared_ptr<Entry>& slot = shard.map[key];
      METALEAK_DCHECK(slot == nullptr);
      slot = std::make_shared<Entry>();
      entry = slot;
    }
    std::call_once(entry->once, [&] {
      entry->pli =
          std::make_unique<PositionListIndex>(std::move(singles[c]));
    });
  }
  Get(AttributeSet());
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
}

void PliCache::BuildSingletons() {
  METALEAK_DCHECK(encoded_->num_columns() <= AttributeSet::kMaxAttributes);
  Get(AttributeSet());
  for (size_t c = 0; c < encoded_->num_columns(); ++c) {
    Get(AttributeSet::Single(c));
  }
  // The eager build is construction noise; counters report Get traffic.
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
}

std::unique_ptr<PositionListIndex> PliCache::BuildPli(AttributeSet attrs) {
  if (attrs.empty()) {
    return std::make_unique<PositionListIndex>(
        PositionListIndex::Identity(encoded_->num_rows()));
  }
  if (attrs.size() == 1) {
    size_t c = attrs.ToIndices()[0];
    return std::make_unique<PositionListIndex>(PositionListIndex::FromCodes(
        encoded_->column_view(c), encoded_->dictionary(c).num_codes()));
  }
  // Build by intersecting the (recursively obtained) PLI without the
  // highest attribute with that attribute's single PLI. Depth is |attrs|.
  std::vector<size_t> indices = attrs.ToIndices();
  size_t last = indices.back();
  const PositionListIndex* rest = Get(attrs.Without(last));
  const PositionListIndex* single = Get(AttributeSet::Single(last));
  // One grow-only intersection workspace per worker thread: a level-wise
  // lattice sweep through the cache allocates O(1) scratch total instead
  // of O(candidates) probe tables.
  static thread_local IntersectionScratch scratch;
  return std::make_unique<PositionListIndex>(rest->Intersect(*single, &scratch));
}

const PositionListIndex* PliCache::Get(AttributeSet attrs) {
  PliCacheKey key{encoded_->Fingerprint(), attrs};
  Shard& shard = ShardFor(key);
  std::shared_ptr<Entry> entry;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    std::shared_ptr<Entry>& slot = shard.map[key];
    if (slot == nullptr) {
      slot = std::make_shared<Entry>();
      misses_.fetch_add(1, std::memory_order_relaxed);
    } else {
      hits_.fetch_add(1, std::memory_order_relaxed);
    }
    entry = slot;
  }
  // Single-flight: the first arrival builds (recursively resolving the
  // parents outside any shard lock); latecomers block here until done.
  std::call_once(entry->once, [&] { entry->pli = BuildPli(attrs); });
  return entry->pli.get();
}

size_t PliCache::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.map.size();
  }
  return total;
}

}  // namespace metaleak
