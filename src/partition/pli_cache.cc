#include "partition/pli_cache.h"

namespace metaleak {

PliCache::PliCache(const Relation* relation) : relation_(relation) {
  METALEAK_DCHECK(relation_ != nullptr);
  METALEAK_DCHECK(relation_->num_columns() <= AttributeSet::kMaxAttributes);
  cache_[AttributeSet()] = std::make_unique<PositionListIndex>(
      PositionListIndex::Identity(relation_->num_rows()));
  for (size_t c = 0; c < relation_->num_columns(); ++c) {
    cache_[AttributeSet::Single(c)] = std::make_unique<PositionListIndex>(
        PositionListIndex::FromColumn(relation_->column(c)));
  }
}

const PositionListIndex* PliCache::Get(AttributeSet attrs) {
  auto it = cache_.find(attrs);
  if (it != cache_.end()) return it->second.get();

  // Build by intersecting the (recursively obtained) PLI without the
  // highest attribute with that attribute's single PLI. Depth is |attrs|.
  std::vector<size_t> indices = attrs.ToIndices();
  size_t last = indices.back();
  const PositionListIndex* rest = Get(attrs.Without(last));
  const PositionListIndex* single = Get(AttributeSet::Single(last));
  auto built = std::make_unique<PositionListIndex>(rest->Intersect(*single));
  const PositionListIndex* out = built.get();
  cache_[attrs] = std::move(built);
  return out;
}

}  // namespace metaleak
