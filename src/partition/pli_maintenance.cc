#include "partition/pli_maintenance.h"

#include <algorithm>
#include <utility>

#include "common/macros.h"

namespace metaleak {

MutableColumnPartition::MutableColumnPartition(
    const std::vector<uint32_t>& codes, uint32_t num_codes)
    : num_rows_(codes.size()) {
  METALEAK_DCHECK(codes.size() < UINT32_MAX);
  buckets_.resize(num_codes);
  std::vector<uint32_t> counts(num_codes, 0);
  for (uint32_t code : codes) ++counts[code];
  for (uint32_t code = 0; code < num_codes; ++code) {
    buckets_[code].reserve(counts[code]);
  }
  for (size_t r = 0; r < codes.size(); ++r) {
    buckets_[codes[r]].push_back(static_cast<PositionListIndex::Row>(r));
  }
}

void MutableColumnPartition::ApplyBatch(
    const BatchEffects& effects, const std::vector<uint32_t>& deleted_codes,
    const std::vector<uint32_t>& inserted_codes) {
  const RowRemap& remap = effects.remap;
  METALEAK_DCHECK(remap.rows_before == num_rows_);
  METALEAK_DCHECK(deleted_codes.size() == effects.sorted_deletes.size());

  for (size_t i = 0; i < effects.sorted_deletes.size(); ++i) {
    std::vector<PositionListIndex::Row>& bucket = buckets_[deleted_codes[i]];
    const auto row =
        static_cast<PositionListIndex::Row>(effects.sorted_deletes[i]);
    auto it = std::lower_bound(bucket.begin(), bucket.end(), row);
    METALEAK_DCHECK(it != bucket.end() && *it == row);
    bucket.erase(it);
  }

  // Compaction shifts every surviving row id; the remap is monotone on
  // survivors, so buckets stay sorted through the rewrite.
  if (!remap.identity()) {
    for (std::vector<PositionListIndex::Row>& bucket : buckets_) {
      for (PositionListIndex::Row& r : bucket) {
        METALEAK_DCHECK(remap.old_to_new[r] != RowRemap::kDeleted);
        r = static_cast<PositionListIndex::Row>(remap.old_to_new[r]);
      }
    }
  }

  // Inserted rows take ids rows_surviving.. in append order — strictly
  // increasing and above every survivor, so push_back keeps order.
  size_t row = remap.rows_surviving;
  for (uint32_t code : inserted_codes) {
    if (code >= buckets_.size()) buckets_.resize(code + 1);
    buckets_[code].push_back(static_cast<PositionListIndex::Row>(row++));
  }
  num_rows_ = remap.rows_after;
}

void MutableColumnPartition::RenumberCodes(
    const std::vector<uint32_t>& code_remap) {
  METALEAK_DCHECK(code_remap.size() == buckets_.size());
  uint32_t canonical_codes = 1;
  for (uint32_t mapped : code_remap) {
    canonical_codes = std::max(canonical_codes, mapped + 1);
  }
  std::vector<std::vector<PositionListIndex::Row>> renumbered(
      canonical_codes);
  renumbered[ColumnDictionary::kNullCode] =
      std::move(buckets_[ColumnDictionary::kNullCode]);
  for (uint32_t code = 1; code < buckets_.size(); ++code) {
    if (code_remap[code] == ColumnDictionary::kNullCode) {
      METALEAK_DCHECK(buckets_[code].empty());  // tombstone
      continue;
    }
    renumbered[code_remap[code]] = std::move(buckets_[code]);
  }
  buckets_ = std::move(renumbered);
}

PositionListIndex MutableColumnPartition::ToPli() const {
  std::vector<uint32_t> offsets;
  offsets.push_back(0);
  uint32_t total = 0;
  for (const std::vector<PositionListIndex::Row>& bucket : buckets_) {
    if (bucket.size() >= 2) {
      total += static_cast<uint32_t>(bucket.size());
      offsets.push_back(total);
    }
  }
  std::vector<PositionListIndex::Row> rows;
  rows.reserve(total);
  for (const std::vector<PositionListIndex::Row>& bucket : buckets_) {
    if (bucket.size() >= 2) {
      rows.insert(rows.end(), bucket.begin(), bucket.end());
    }
  }
  return PositionListIndex::FromCsrArrays(std::move(rows), std::move(offsets),
                                          num_rows_);
}

PliMaintenance::PliMaintenance(const EncodedRelation& snapshot) {
  columns_.reserve(snapshot.num_columns());
  for (size_t c = 0; c < snapshot.num_columns(); ++c) {
    columns_.emplace_back(snapshot.codes(c),
                          snapshot.dictionary(c).num_codes());
  }
}

void PliMaintenance::ApplyBatch(const BatchEffects& effects) {
  for (size_t c = 0; c < columns_.size(); ++c) {
    columns_[c].ApplyBatch(effects, effects.deleted_codes[c],
                           effects.inserted_codes[c]);
  }
}

void PliMaintenance::RenumberCodes(
    const std::vector<std::vector<uint32_t>>& code_remap) {
  for (size_t c = 0; c < columns_.size(); ++c) {
    columns_[c].RenumberCodes(code_remap[c]);
  }
}

}  // namespace metaleak
