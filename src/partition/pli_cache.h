// Memoizing store of PLIs keyed by attribute set.
//
// TANE repeatedly needs pli(X) for many X along lattice paths; building
// each level by intersecting cached parents turns the exponential rebuild
// cost into one intersection per requested set.
#ifndef METALEAK_PARTITION_PLI_CACHE_H_
#define METALEAK_PARTITION_PLI_CACHE_H_

#include <memory>
#include <unordered_map>

#include "common/macros.h"
#include "data/relation.h"
#include "partition/attribute_set.h"
#include "partition/position_list_index.h"

namespace metaleak {

class PliCache {
 public:
  /// Builds single-attribute PLIs eagerly; composite PLIs are built on
  /// demand. The relation must outlive the cache.
  explicit PliCache(const Relation* relation);

  METALEAK_DISALLOW_COPY_AND_ASSIGN(PliCache);

  /// Returns pli(attrs). The empty set yields the identity partition.
  /// The returned pointer is owned by the cache and stable until
  /// destruction.
  const PositionListIndex* Get(AttributeSet attrs);

  size_t size() const { return cache_.size(); }
  const Relation& relation() const { return *relation_; }

 private:
  const Relation* relation_;
  std::unordered_map<AttributeSet, std::unique_ptr<PositionListIndex>>
      cache_;
};

}  // namespace metaleak

#endif  // METALEAK_PARTITION_PLI_CACHE_H_
