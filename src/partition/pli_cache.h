// Memoizing store of PLIs keyed by attribute set + encoding fingerprint.
//
// TANE repeatedly needs pli(X) for many X along lattice paths; building
// each level by intersecting cached parents turns the exponential rebuild
// cost into one intersection per requested set.
//
// The cache runs on the dictionary-encoded view of the relation: single-
// attribute PLIs are built by counting-style grouping over dense codes
// (no `Value` hashing), and composite PLIs by intersection as before.
// Entries are keyed by (relation fingerprint, attribute set) so caches
// over different encodings can never alias; each PliCache instance holds
// one encoding, but the key shape lets a future shared store pool
// entries across relations.
//
// Concurrency: Get is safe to call from any number of threads (TANE
// validates a whole lattice level's candidates concurrently against one
// cache). The key map is sharded under per-shard mutexes, and each entry
// is built single-flight — concurrent Gets of the same missing key agree
// on one builder and the rest block until the PLI is ready. Returned
// pointers stay stable until destruction, as before.
#ifndef METALEAK_PARTITION_PLI_CACHE_H_
#define METALEAK_PARTITION_PLI_CACHE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/macros.h"
#include "data/encoded_relation.h"
#include "data/relation.h"
#include "partition/attribute_set.h"
#include "partition/position_list_index.h"

namespace metaleak {

/// Cache key: which relation (by encoding fingerprint) and which
/// attribute set the partition belongs to.
struct PliCacheKey {
  uint64_t fingerprint = 0;
  AttributeSet attrs;

  friend bool operator==(const PliCacheKey& a, const PliCacheKey& b) {
    return a.fingerprint == b.fingerprint && a.attrs == b.attrs;
  }
};

struct PliCacheKeyHash {
  size_t operator()(const PliCacheKey& k) const {
    uint64_t h = k.fingerprint ^ (k.attrs.mask() * 0x9E3779B97F4A7C15ull);
    h ^= h >> 33;
    return static_cast<size_t>(h);
  }
};

class PliCache {
 public:
  /// Builds over an existing encoding (shared across consumers of one
  /// pipeline entry point). The encoding must outlive the cache.
  /// Single-attribute PLIs are built eagerly from the code vectors;
  /// composite PLIs on demand.
  explicit PliCache(const EncodedRelation* encoded);

  /// Convenience: encodes `relation` internally and owns the encoding.
  /// The relation must outlive the cache.
  explicit PliCache(const Relation* relation);

  /// Builds over an existing encoding but seeds the single-attribute
  /// entries from `singles` (one per column, canonical CSR form) instead
  /// of rebuilding them from the code vectors. The maintenance layer
  /// hands its incrementally-kept PLIs in here, so a warm snapshot's
  /// cache never pays the per-column FromCodes pass again.
  PliCache(const EncodedRelation* encoded,
           std::vector<PositionListIndex> singles);

  METALEAK_DISALLOW_COPY_AND_ASSIGN(PliCache);

  /// Returns pli(attrs). The empty set yields the identity partition.
  /// The returned pointer is owned by the cache and stable until
  /// destruction. Thread-safe; a missing entry is built exactly once
  /// even under concurrent lookups (single-flight).
  const PositionListIndex* Get(AttributeSet attrs);

  /// Entries currently resident (including the eager singletons).
  size_t size() const;

  /// Lookup counters, reset after the eager singleton build: a hit found
  /// an existing entry (possibly waiting for its in-flight build); a miss
  /// claimed the build for a new key.
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }

  /// The encoded view the cache is built over.
  const EncodedRelation& encoded() const { return *encoded_; }

  /// Fingerprint of the underlying encoding (part of every cache key).
  uint64_t fingerprint() const { return encoded_->Fingerprint(); }

 private:
  // One cached partition. `once` makes the build single-flight; `pli` is
  // written exactly once, inside call_once, before any reader returns.
  struct Entry {
    std::once_flag once;
    std::unique_ptr<PositionListIndex> pli;
  };

  static constexpr size_t kNumShards = 16;

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<PliCacheKey, std::shared_ptr<Entry>, PliCacheKeyHash>
        map;
  };

  Shard& ShardFor(const PliCacheKey& key) {
    return shards_[PliCacheKeyHash{}(key) % kNumShards];
  }

  void BuildSingletons();
  std::unique_ptr<PositionListIndex> BuildPli(AttributeSet attrs);

  std::unique_ptr<EncodedRelation> owned_encoding_;  // Relation ctor only
  const EncodedRelation* encoded_;
  std::array<Shard, kNumShards> shards_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
};

}  // namespace metaleak

#endif  // METALEAK_PARTITION_PLI_CACHE_H_
