// Memoizing store of PLIs keyed by attribute set + encoding fingerprint.
//
// TANE repeatedly needs pli(X) for many X along lattice paths; building
// each level by intersecting cached parents turns the exponential rebuild
// cost into one intersection per requested set.
//
// The cache runs on the dictionary-encoded view of the relation: single-
// attribute PLIs are built by counting-style grouping over dense codes
// (no `Value` hashing), and composite PLIs by intersection as before.
// Entries are keyed by (relation fingerprint, attribute set) so caches
// over different encodings can never alias; each PliCache instance holds
// one encoding, but the key shape lets a future shared store pool
// entries across relations.
#ifndef METALEAK_PARTITION_PLI_CACHE_H_
#define METALEAK_PARTITION_PLI_CACHE_H_

#include <memory>
#include <unordered_map>

#include "common/macros.h"
#include "data/encoded_relation.h"
#include "data/relation.h"
#include "partition/attribute_set.h"
#include "partition/position_list_index.h"

namespace metaleak {

/// Cache key: which relation (by encoding fingerprint) and which
/// attribute set the partition belongs to.
struct PliCacheKey {
  uint64_t fingerprint = 0;
  AttributeSet attrs;

  friend bool operator==(const PliCacheKey& a, const PliCacheKey& b) {
    return a.fingerprint == b.fingerprint && a.attrs == b.attrs;
  }
};

struct PliCacheKeyHash {
  size_t operator()(const PliCacheKey& k) const {
    uint64_t h = k.fingerprint ^ (k.attrs.mask() * 0x9E3779B97F4A7C15ull);
    h ^= h >> 33;
    return static_cast<size_t>(h);
  }
};

class PliCache {
 public:
  /// Builds over an existing encoding (shared across consumers of one
  /// pipeline entry point). The encoding must outlive the cache.
  /// Single-attribute PLIs are built eagerly from the code vectors;
  /// composite PLIs on demand.
  explicit PliCache(const EncodedRelation* encoded);

  /// Convenience: encodes `relation` internally and owns the encoding.
  /// The relation must outlive the cache.
  explicit PliCache(const Relation* relation);

  METALEAK_DISALLOW_COPY_AND_ASSIGN(PliCache);

  /// Returns pli(attrs). The empty set yields the identity partition.
  /// The returned pointer is owned by the cache and stable until
  /// destruction.
  const PositionListIndex* Get(AttributeSet attrs);

  size_t size() const { return cache_.size(); }

  /// The encoded view the cache is built over.
  const EncodedRelation& encoded() const { return *encoded_; }

  /// Fingerprint of the underlying encoding (part of every cache key).
  uint64_t fingerprint() const { return encoded_->Fingerprint(); }

 private:
  void BuildSingletons();

  std::unique_ptr<EncodedRelation> owned_encoding_;  // Relation ctor only
  const EncodedRelation* encoded_;
  std::unordered_map<PliCacheKey, std::unique_ptr<PositionListIndex>,
                     PliCacheKeyHash>
      cache_;
};

}  // namespace metaleak

#endif  // METALEAK_PARTITION_PLI_CACHE_H_
