// In-place CSR PLI maintenance for batched row insert/delete.
//
// A PositionListIndex is immutable by design — every cached consumer
// (probe tables, intersections) relies on that. The maintenance layer
// therefore keeps a *mutable delta form* per column — one sorted row
// bucket per code, singletons included — applies batches to it, and
// emits an immutable CSR PLI on demand that is bit-identical to
// PositionListIndex::FromCodes over the same codes: clusters in
// ascending code order, rows ascending, singletons stripped at emission
// (not in the buckets, so a bucket growing from 1 to 2 rows surfaces as
// a new cluster without re-scanning the column).
//
// Cost model: an insert-only batch is O(batch size); a batch with
// deletes pays one O(N) remap pass (every surviving row id shifts under
// compaction) — still allocation-light and far cheaper than the
// O(N log N) re-encode + rebuild it replaces.
#ifndef METALEAK_PARTITION_PLI_MAINTENANCE_H_
#define METALEAK_PARTITION_PLI_MAINTENANCE_H_

#include <cstdint>
#include <vector>

#include "data/delta_relation.h"
#include "partition/position_list_index.h"

namespace metaleak {

/// Mutable per-column partition state: buckets_[code] holds every row
/// carrying `code`, ascending. Codes are in the owning DeltaRelation's
/// space; RenumberCodes realigns after each canonical publish.
class MutableColumnPartition {
 public:
  /// Seeds from a column's code vector (one bucket per code).
  MutableColumnPartition(const std::vector<uint32_t>& codes,
                         uint32_t num_codes);

  size_t num_rows() const { return num_rows_; }
  size_t num_codes() const { return buckets_.size(); }

  /// Applies one batch, mirroring DeltaRelation::ApplyBatch for this
  /// column: `deleted_codes` aligns with `effects.sorted_deletes`,
  /// `inserted_codes` with the appended rows. New codes grow the bucket
  /// table on demand.
  void ApplyBatch(const BatchEffects& effects,
                  const std::vector<uint32_t>& deleted_codes,
                  const std::vector<uint32_t>& inserted_codes);

  /// Realigns buckets after DeltaRelation::PublishCanonical:
  /// `code_remap[old] = canonical` with tombstones folded to 0 (their
  /// buckets are empty by definition).
  void RenumberCodes(const std::vector<uint32_t>& code_remap);

  /// Emits the immutable CSR PLI — bit-identical to
  /// PositionListIndex::FromCodes(codes, num_codes) of the current state.
  PositionListIndex ToPli() const;

 private:
  std::vector<std::vector<PositionListIndex::Row>> buckets_;
  size_t num_rows_ = 0;
};

/// All columns of one relation, batch-applied together.
class PliMaintenance {
 public:
  explicit PliMaintenance(const EncodedRelation& snapshot);

  size_t num_columns() const { return columns_.size(); }

  /// Applies the effects of one DeltaRelation batch to every column.
  void ApplyBatch(const BatchEffects& effects);

  /// Realigns every column after a canonical publish.
  void RenumberCodes(const std::vector<std::vector<uint32_t>>& code_remap);

  /// Emits column `c`'s PLI in canonical form.
  PositionListIndex ToPli(size_t c) const { return columns_[c].ToPli(); }

 private:
  std::vector<MutableColumnPartition> columns_;
};

}  // namespace metaleak

#endif  // METALEAK_PARTITION_PLI_MAINTENANCE_H_
