// AttributeSet: a set of attribute indices as a 64-bit mask.
//
// TANE's lattice search and the FD machinery manipulate attribute subsets
// heavily; a bitmask makes subset tests, unions and iteration O(1)/O(k).
// Relations are limited to 64 attributes, far beyond any dataset in the
// paper's scope (13 attributes).
#ifndef METALEAK_PARTITION_ATTRIBUTE_SET_H_
#define METALEAK_PARTITION_ATTRIBUTE_SET_H_

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "common/macros.h"

namespace metaleak {

class AttributeSet {
 public:
  static constexpr size_t kMaxAttributes = 64;

  /// The empty set.
  constexpr AttributeSet() : mask_(0) {}

  /// Singleton set {index}.
  static AttributeSet Single(size_t index) {
    METALEAK_DCHECK(index < kMaxAttributes);
    return AttributeSet(uint64_t{1} << index);
  }

  /// Set from explicit indices.
  static AttributeSet Of(const std::vector<size_t>& indices) {
    AttributeSet s;
    for (size_t i : indices) s = s.With(i);
    return s;
  }

  /// The full set {0, ..., n-1}.
  static AttributeSet FullSet(size_t n) {
    METALEAK_DCHECK(n <= kMaxAttributes);
    if (n == kMaxAttributes) return AttributeSet(~uint64_t{0});
    return AttributeSet((uint64_t{1} << n) - 1);
  }

  bool empty() const { return mask_ == 0; }
  size_t size() const { return static_cast<size_t>(std::popcount(mask_)); }
  bool Contains(size_t index) const {
    return (mask_ >> index) & uint64_t{1};
  }
  bool ContainsAll(AttributeSet other) const {
    return (mask_ & other.mask_) == other.mask_;
  }
  bool Intersects(AttributeSet other) const {
    return (mask_ & other.mask_) != 0;
  }

  AttributeSet With(size_t index) const {
    METALEAK_DCHECK(index < kMaxAttributes);
    return AttributeSet(mask_ | (uint64_t{1} << index));
  }
  AttributeSet Without(size_t index) const {
    return AttributeSet(mask_ & ~(uint64_t{1} << index));
  }
  AttributeSet Union(AttributeSet other) const {
    return AttributeSet(mask_ | other.mask_);
  }
  AttributeSet Intersect(AttributeSet other) const {
    return AttributeSet(mask_ & other.mask_);
  }
  AttributeSet Minus(AttributeSet other) const {
    return AttributeSet(mask_ & ~other.mask_);
  }

  /// Member indices in ascending order.
  std::vector<size_t> ToIndices() const {
    std::vector<size_t> out;
    out.reserve(size());
    uint64_t m = mask_;
    while (m != 0) {
      out.push_back(static_cast<size_t>(std::countr_zero(m)));
      m &= m - 1;
    }
    return out;
  }

  uint64_t mask() const { return mask_; }

  /// "{0,3,5}" — for debugging and map keys.
  std::string ToString() const {
    std::string out = "{";
    bool first = true;
    for (size_t i : ToIndices()) {
      if (!first) out += ",";
      out += std::to_string(i);
      first = false;
    }
    out += "}";
    return out;
  }

  friend bool operator==(AttributeSet a, AttributeSet b) {
    return a.mask_ == b.mask_;
  }
  friend bool operator!=(AttributeSet a, AttributeSet b) {
    return a.mask_ != b.mask_;
  }
  friend bool operator<(AttributeSet a, AttributeSet b) {
    return a.mask_ < b.mask_;
  }

 private:
  explicit constexpr AttributeSet(uint64_t mask) : mask_(mask) {}
  uint64_t mask_;
};

}  // namespace metaleak

namespace std {
template <>
struct hash<metaleak::AttributeSet> {
  size_t operator()(metaleak::AttributeSet s) const {
    return std::hash<uint64_t>{}(s.mask());
  }
};
}  // namespace std

#endif  // METALEAK_PARTITION_ATTRIBUTE_SET_H_
