#include "partition/position_list_index.h"

#include <algorithm>
#include <unordered_map>

#include "common/macros.h"
#include "common/parallel.h"

namespace metaleak {

namespace {

// Hash for a row projection used by FromColumns.
struct RowKey {
  std::vector<Value> values;
  friend bool operator==(const RowKey& a, const RowKey& b) {
    return a.values == b.values;
  }
};

struct RowKeyHash {
  size_t operator()(const RowKey& k) const {
    size_t h = 0x811C9DC5u;
    for (const Value& v : k.values) {
      h ^= v.Hash();
      h *= 0x01000193u;
    }
    return h;
  }
};

}  // namespace

PositionListIndex::PositionListIndex(std::vector<Cluster> clusters,
                                     size_t num_rows)
    : clusters_(std::move(clusters)), num_rows_(num_rows) {
  for (const Cluster& c : clusters_) {
    METALEAK_DCHECK(c.size() >= 2);
    stripped_rows_ += c.size();
  }
}

PositionListIndex PositionListIndex::FromColumn(
    const std::vector<Value>& column) {
  std::unordered_map<Value, Cluster> groups;
  groups.reserve(column.size());
  for (size_t r = 0; r < column.size(); ++r) {
    groups[column[r]].push_back(r);
  }
  std::vector<Cluster> clusters;
  for (auto& [value, rows] : groups) {
    if (rows.size() >= 2) clusters.push_back(std::move(rows));
  }
  return PositionListIndex(std::move(clusters), column.size());
}

PositionListIndex PositionListIndex::FromColumns(
    const Relation& relation, const std::vector<size_t>& columns) {
  if (columns.size() == 1) {
    return FromColumn(relation.column(columns[0]));
  }
  std::unordered_map<RowKey, Cluster, RowKeyHash> groups;
  for (size_t r = 0; r < relation.num_rows(); ++r) {
    RowKey key;
    key.values.reserve(columns.size());
    for (size_t c : columns) key.values.push_back(relation.at(r, c));
    groups[std::move(key)].push_back(r);
  }
  std::vector<Cluster> clusters;
  for (auto& [key, rows] : groups) {
    if (rows.size() >= 2) clusters.push_back(std::move(rows));
  }
  return PositionListIndex(std::move(clusters), relation.num_rows());
}

PositionListIndex PositionListIndex::FromCodes(
    const std::vector<uint32_t>& codes, uint32_t num_codes) {
  const size_t n = codes.size();
  // Pass 1: occurrences per code.
  std::vector<uint32_t> counts(num_codes, 0);
  for (uint32_t code : codes) {
    METALEAK_DCHECK(code < num_codes);
    ++counts[code];
  }
  // Cluster slots for codes occurring >= 2 times; singletons are stripped.
  std::vector<uint32_t> slot(num_codes, UINT32_MAX);
  std::vector<Cluster> clusters;
  uint32_t next_slot = 0;
  for (uint32_t code = 0; code < num_codes; ++code) {
    if (counts[code] >= 2) slot[code] = next_slot++;
  }
  clusters.resize(next_slot);
  for (uint32_t code = 0; code < num_codes; ++code) {
    if (slot[code] != UINT32_MAX) clusters[slot[code]].reserve(counts[code]);
  }
  // Pass 2: scatter rows; ascending row order within each cluster.
  for (size_t r = 0; r < n; ++r) {
    uint32_t s = slot[codes[r]];
    if (s != UINT32_MAX) clusters[s].push_back(r);
  }
  return PositionListIndex(std::move(clusters), n);
}

PositionListIndex PositionListIndex::FromEncoded(
    const EncodedRelation& relation, const std::vector<size_t>& columns) {
  if (columns.size() == 1) {
    return FromCodes(relation.codes(columns[0]),
                     relation.dictionary(columns[0]).num_codes());
  }
  const size_t n = relation.num_rows();
  if (columns.empty() || n == 0) {
    return Identity(n);
  }
  // Fold columns into running group ids. After each renumbering pass the
  // ids are dense in [0, num_groups) with num_groups <= n, so the
  // combined key id * num_codes + code stays well below 2^64.
  std::vector<uint64_t> ids(relation.codes(columns[0]).begin(),
                            relation.codes(columns[0]).end());
  uint64_t num_groups = relation.dictionary(columns[0]).num_codes();
  std::unordered_map<uint64_t, uint64_t> remap;
  for (size_t i = 1; i < columns.size(); ++i) {
    const std::vector<uint32_t>& codes = relation.codes(columns[i]);
    const uint64_t nc = relation.dictionary(columns[i]).num_codes();
    remap.clear();
    remap.reserve(n);
    for (size_t r = 0; r < n; ++r) {
      uint64_t key = ids[r] * nc + codes[r];
      auto it = remap.emplace(key, remap.size()).first;
      ids[r] = it->second;
    }
    num_groups = remap.size();
  }
  // Final grouping over the dense ids, mirroring FromCodes.
  std::vector<uint32_t> counts(num_groups, 0);
  for (uint64_t id : ids) ++counts[id];
  std::vector<uint32_t> slot(num_groups, UINT32_MAX);
  std::vector<Cluster> clusters;
  uint32_t next_slot = 0;
  for (uint64_t g = 0; g < num_groups; ++g) {
    if (counts[g] >= 2) slot[g] = next_slot++;
  }
  clusters.resize(next_slot);
  for (uint64_t g = 0; g < num_groups; ++g) {
    if (slot[g] != UINT32_MAX) clusters[slot[g]].reserve(counts[g]);
  }
  for (size_t r = 0; r < n; ++r) {
    uint32_t s = slot[ids[r]];
    if (s != UINT32_MAX) clusters[s].push_back(r);
  }
  return PositionListIndex(std::move(clusters), n);
}

PositionListIndex PositionListIndex::Identity(size_t num_rows) {
  if (num_rows < 2) {
    return PositionListIndex({}, num_rows);
  }
  Cluster all(num_rows);
  for (size_t r = 0; r < num_rows; ++r) all[r] = r;
  return PositionListIndex({std::move(all)}, num_rows);
}

std::vector<int64_t> PositionListIndex::ProbeTable() const {
  std::vector<int64_t> probe(num_rows_, kUnique);
  for (size_t c = 0; c < clusters_.size(); ++c) {
    for (size_t row : clusters_[c]) {
      probe[row] = static_cast<int64_t>(c);
    }
  }
  return probe;
}

PositionListIndex PositionListIndex::Intersect(
    const PositionListIndex& other) const {
  METALEAK_DCHECK(num_rows_ == other.num_rows_);
  std::vector<int64_t> probe = other.ProbeTable();
  std::vector<Cluster> out;
  // For each of our clusters, split rows by the other partition's class.
  // Rows landing on kUnique are singletons in the product; drop them.
  std::unordered_map<int64_t, Cluster> split;
  for (const Cluster& cluster : clusters_) {
    split.clear();
    for (size_t row : cluster) {
      int64_t id = probe[row];
      if (id == kUnique) continue;
      split[id].push_back(row);
    }
    for (auto& [id, rows] : split) {
      if (rows.size() >= 2) out.push_back(std::move(rows));
    }
  }
  return PositionListIndex(std::move(out), num_rows_);
}

bool PositionListIndex::Refines(const PositionListIndex& other) const {
  METALEAK_DCHECK(num_rows_ == other.num_rows_);
  std::vector<int64_t> probe = other.ProbeTable();
  for (const Cluster& cluster : clusters_) {
    int64_t first = probe[cluster[0]];
    // A stripped (size >= 2) cluster containing a row that is unique in
    // `other` has two rows disagreeing on the RHS: violation.
    if (first == kUnique) return false;
    for (size_t i = 1; i < cluster.size(); ++i) {
      if (probe[cluster[i]] != first) return false;
    }
  }
  return true;
}

double PositionListIndex::G3Error(const PositionListIndex& other) const {
  METALEAK_DCHECK(num_rows_ == other.num_rows_);
  if (num_rows_ == 0) return 0.0;
  std::vector<int64_t> probe = other.ProbeTable();
  // Per-cluster violation counts are independent; chunk the cluster list
  // and sum the integer counts in chunk order (exact, so the result is
  // identical at any thread count). The grain depends only on the
  // cluster count, never on the thread count.
  const size_t grain = std::max<size_t>(1, clusters_.size() / 256);
  size_t violations = ParallelReduce<size_t>(
      0, clusters_.size(), grain, size_t{0},
      [&](size_t lo, size_t hi) {
        size_t chunk_violations = 0;
        std::unordered_map<int64_t, size_t> counts;
        for (size_t k = lo; k < hi; ++k) {
          const Cluster& cluster = clusters_[k];
          counts.clear();
          size_t unique_rows = 0;
          size_t max_count = 0;
          for (size_t row : cluster) {
            int64_t id = probe[row];
            if (id == kUnique) {
              // Singleton in `other`: its own class of size 1.
              ++unique_rows;
              continue;
            }
            size_t c = ++counts[id];
            if (c > max_count) max_count = c;
          }
          if (unique_rows > 0 && max_count == 0) max_count = 1;
          chunk_violations += cluster.size() - max_count;
        }
        return chunk_violations;
      },
      [](size_t a, size_t b) { return a + b; });
  return static_cast<double>(violations) / static_cast<double>(num_rows_);
}

size_t PositionListIndex::MaxFanout(const PositionListIndex& other) const {
  METALEAK_DCHECK(num_rows_ == other.num_rows_);
  std::vector<int64_t> probe = other.ProbeTable();
  size_t max_fanout = num_rows_ > 0 ? 1 : 0;
  std::unordered_map<int64_t, size_t> seen;
  for (const Cluster& cluster : clusters_) {
    seen.clear();
    size_t distinct = 0;
    for (size_t row : cluster) {
      int64_t id = probe[row];
      if (id == kUnique) {
        ++distinct;  // each RHS-singleton is its own value
      } else if (++seen[id] == 1) {
        ++distinct;
      }
    }
    if (distinct > max_fanout) max_fanout = distinct;
  }
  return max_fanout;
}

}  // namespace metaleak
