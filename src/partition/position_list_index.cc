#include "partition/position_list_index.h"

#include <algorithm>
#include <unordered_map>

#include "common/macros.h"
#include "common/parallel.h"
#include "common/simd.h"

namespace metaleak {

namespace {

// Hash for a row projection used by FromColumns.
struct RowKey {
  std::vector<Value> values;
  friend bool operator==(const RowKey& a, const RowKey& b) {
    return a.values == b.values;
  }
};

struct RowKeyHash {
  size_t operator()(const RowKey& k) const {
    size_t h = 0x811C9DC5u;
    for (const Value& v : k.values) {
      h ^= v.Hash();
      h *= 0x01000193u;
    }
    return h;
  }
};

constexpr uint32_t kNoSlot = UINT32_MAX;

// Gather kernels use signed 32-bit row indices; every builder DCHECKs
// num_rows < UINT32_MAX, but the gather paths additionally need rows to
// fit in int32, so they drop to scalar beyond that.
SimdLevel GatherLevel(size_t num_rows) {
  return num_rows < static_cast<size_t>(INT32_MAX) ? ActiveSimdLevel()
                                                   : SimdLevel::kScalar;
}

}  // namespace

PositionListIndex::PositionListIndex(std::vector<Row> rows,
                                     std::vector<uint32_t> offsets,
                                     size_t num_rows)
    : rows_(std::move(rows)),
      offsets_(std::move(offsets)),
      num_rows_(num_rows),
      probe_(std::make_shared<ProbeState>()) {
  METALEAK_DCHECK(!offsets_.empty());
  METALEAK_DCHECK(offsets_.front() == 0);
  METALEAK_DCHECK(offsets_.back() == rows_.size());
}

PositionListIndex PositionListIndex::FromNested(
    const std::vector<Cluster>& clusters, size_t num_rows) {
  METALEAK_DCHECK(num_rows < UINT32_MAX);
  size_t total = 0;
  for (const Cluster& c : clusters) {
    METALEAK_DCHECK(c.size() >= 2);
    total += c.size();
  }
  std::vector<Row> rows;
  rows.reserve(total);
  std::vector<uint32_t> offsets;
  offsets.reserve(clusters.size() + 1);
  offsets.push_back(0);
  for (const Cluster& c : clusters) {
    for (size_t row : c) rows.push_back(static_cast<Row>(row));
    offsets.push_back(static_cast<uint32_t>(rows.size()));
  }
  return PositionListIndex(std::move(rows), std::move(offsets), num_rows);
}

PositionListIndex PositionListIndex::FromColumn(
    const std::vector<Value>& column) {
  std::unordered_map<Value, Cluster> groups;
  groups.reserve(column.size());
  for (size_t r = 0; r < column.size(); ++r) {
    groups[column[r]].push_back(r);
  }
  std::vector<Cluster> clusters;
  for (auto& [value, rows] : groups) {
    if (rows.size() >= 2) clusters.push_back(std::move(rows));
  }
  return FromNested(clusters, column.size());
}

PositionListIndex PositionListIndex::FromColumns(
    const Relation& relation, const std::vector<size_t>& columns) {
  if (columns.size() == 1) {
    return FromColumn(relation.column(columns[0]));
  }
  std::unordered_map<RowKey, Cluster, RowKeyHash> groups;
  for (size_t r = 0; r < relation.num_rows(); ++r) {
    RowKey key;
    key.values.reserve(columns.size());
    for (size_t c : columns) key.values.push_back(relation.at(r, c));
    groups[std::move(key)].push_back(r);
  }
  std::vector<Cluster> clusters;
  for (auto& [key, rows] : groups) {
    if (rows.size() >= 2) clusters.push_back(std::move(rows));
  }
  return FromNested(clusters, relation.num_rows());
}

PositionListIndex PositionListIndex::FromCodes(
    const std::vector<uint32_t>& codes, uint32_t num_codes) {
  return FromCodes(CodeColumnView{codes.data(), codes.size(), CodeWidth::kU32},
                   num_codes);
}

namespace {

// Above this dictionary size the slot/cursor tables of the scatter pass
// (4 bytes each per code) outgrow the last-level cache slice and the
// random-access writes start missing; FromCodes switches to the
// radix-partitioned scatter. Measured on this substrate the crossover
// is late: the radix pass's extra packed copy only pays for itself once
// the cursor tables reach ~4 MB AND the row count amortizes the second
// pass (n >= 2x codes) — below that, the direct scatter's working set
// still mostly lives in cache and radix is a net loss. Narrow (u8/u16)
// columns are always far below the threshold by construction.
constexpr uint32_t kRadixScatterMinCodes = 1u << 20;

// Bucket-count cap for the radix scatter: >= num_codes / 1024 codes per
// bucket keeps each per-bucket table slice within a few KiB.
constexpr uint32_t kRadixMaxBuckets = 1024;

}  // namespace

PositionListIndex PositionListIndex::FromCodes(const CodeColumnView& codes,
                                               uint32_t num_codes) {
  const size_t n = codes.size;
  METALEAK_DCHECK(n < UINT32_MAX);
#ifndef NDEBUG
  for (size_t r = 0; r < n; ++r) METALEAK_DCHECK(codes.at(r) < num_codes);
#endif
  // Pass 1: occurrences per code (sliced counting on small dictionaries),
  // streamed at the column's stored width.
  std::vector<uint32_t> counts(num_codes, 0);
  HistogramCodes(ActiveSimdLevel(), codes, num_codes, counts.data());
  // Cluster slots for codes occurring >= 2 times (ascending code order);
  // singletons are stripped. The prefix sums become the CSR offsets.
  std::vector<uint32_t> slot(num_codes, kNoSlot);
  std::vector<uint32_t> offsets;
  offsets.push_back(0);
  uint32_t next_slot = 0;
  uint32_t total = 0;
  for (uint32_t code = 0; code < num_codes; ++code) {
    if (counts[code] >= 2) {
      slot[code] = next_slot++;
      total += counts[code];
      offsets.push_back(total);
    }
  }
  // Pass 2: scatter rows into the arena; the ascending row scan keeps each
  // cluster's members in ascending order.
  std::vector<Row> rows(total);
  std::vector<uint32_t> cursor(offsets.begin(), offsets.end() - 1);
  if (num_codes >= kRadixScatterMinCodes && n >= 2 * size_t{num_codes} &&
      StreamingOptsEnabled()) {
    // Radix-partitioned scatter. Stable-bucket the (code, row) pairs by
    // code high bits, then scatter bucket by bucket: each bucket's codes
    // span a contiguous [b << shift, (b + 1) << shift) slice of the
    // slot/cursor tables, so the random writes stay cache-resident. A
    // code maps to exactly one bucket and the bucketing preserves row
    // order, so every cluster is filled in the same ascending-row order
    // as the direct scatter — the arena is bit-identical.
    int shift = 0;
    while ((static_cast<uint64_t>(num_codes - 1) >> shift) >=
           kRadixMaxBuckets) {
      ++shift;
    }
    const uint32_t buckets =
        static_cast<uint32_t>(((num_codes - 1) >> shift) + 1);
    std::vector<uint32_t> bucket_start(buckets + 1, 0);
    codes.With([&](const auto* p) {
      for (size_t r = 0; r < n; ++r) {
        ++bucket_start[(static_cast<uint32_t>(p[r]) >> shift) + 1];
      }
    });
    for (uint32_t b = 0; b < buckets; ++b) {
      bucket_start[b + 1] += bucket_start[b];
    }
    std::vector<uint64_t> packed(n);  // code << 32 | row, bucket-major
    std::vector<uint32_t> bucket_cursor(bucket_start.begin(),
                                        bucket_start.end() - 1);
    codes.With([&](const auto* p) {
      for (size_t r = 0; r < n; ++r) {
        const uint32_t code = static_cast<uint32_t>(p[r]);
        packed[bucket_cursor[code >> shift]++] =
            (static_cast<uint64_t>(code) << 32) | static_cast<uint32_t>(r);
      }
    });
    for (size_t i = 0; i < n; ++i) {
      const uint32_t code = static_cast<uint32_t>(packed[i] >> 32);
      const uint32_t s = slot[code];
      if (s != kNoSlot) {
        rows[cursor[s]++] = static_cast<Row>(packed[i]);
      }
    }
  } else {
    codes.With([&](const auto* p) {
      for (size_t r = 0; r < n; ++r) {
        const uint32_t s = slot[p[r]];
        if (s != kNoSlot) rows[cursor[s]++] = static_cast<Row>(r);
      }
    });
  }
  return PositionListIndex(std::move(rows), std::move(offsets), n);
}

PositionListIndex PositionListIndex::FromCsrArrays(
    std::vector<Row> rows, std::vector<uint32_t> offsets, size_t num_rows) {
  METALEAK_DCHECK(!offsets.empty() && offsets.front() == 0);
  METALEAK_DCHECK(offsets.back() == rows.size());
#ifndef NDEBUG
  for (size_t c = 0; c + 1 < offsets.size(); ++c) {
    METALEAK_DCHECK(offsets[c + 1] - offsets[c] >= 2);
    for (uint32_t i = offsets[c] + 1; i < offsets[c + 1]; ++i) {
      METALEAK_DCHECK(rows[i - 1] < rows[i]);
    }
  }
#endif
  return PositionListIndex(std::move(rows), std::move(offsets), num_rows);
}

PositionListIndex PositionListIndex::FromEncoded(
    const EncodedRelation& relation, const std::vector<size_t>& columns) {
  if (columns.size() == 1) {
    return FromCodes(relation.column_view(columns[0]),
                     relation.dictionary(columns[0]).num_codes());
  }
  const size_t n = relation.num_rows();
  if (columns.empty() || n == 0) {
    return Identity(n);
  }
  METALEAK_DCHECK(n < UINT32_MAX);
  // Fold columns into running group ids. After each renumbering pass the
  // ids are dense in [0, num_groups) with num_groups <= n, so the
  // combined key id * num_codes + code stays well below 2^64.
  std::vector<uint64_t> ids(n);
  relation.column_view(columns[0]).With([&](const auto* p) {
    for (size_t r = 0; r < n; ++r) ids[r] = p[r];
  });
  uint64_t num_groups = relation.dictionary(columns[0]).num_codes();
  std::unordered_map<uint64_t, uint64_t> remap;
  for (size_t i = 1; i < columns.size(); ++i) {
    const CodeColumnView codes = relation.column_view(columns[i]);
    const uint64_t nc = relation.dictionary(columns[i]).num_codes();
    remap.clear();
    remap.reserve(n);
    codes.With([&](const auto* p) {
      for (size_t r = 0; r < n; ++r) {
        uint64_t key = ids[r] * nc + p[r];
        auto it = remap.emplace(key, remap.size()).first;
        ids[r] = it->second;
      }
    });
    num_groups = remap.size();
  }
  // Final grouping over the dense ids, mirroring FromCodes.
  std::vector<uint32_t> counts(num_groups, 0);
  for (uint64_t id : ids) ++counts[id];
  std::vector<uint32_t> slot(num_groups, kNoSlot);
  std::vector<uint32_t> offsets;
  offsets.push_back(0);
  uint32_t next_slot = 0;
  uint32_t total = 0;
  for (uint64_t g = 0; g < num_groups; ++g) {
    if (counts[g] >= 2) {
      slot[g] = next_slot++;
      total += counts[g];
      offsets.push_back(total);
    }
  }
  std::vector<Row> rows(total);
  std::vector<uint32_t> cursor(offsets.begin(), offsets.end() - 1);
  for (size_t r = 0; r < n; ++r) {
    uint32_t s = slot[ids[r]];
    if (s != kNoSlot) rows[cursor[s]++] = static_cast<Row>(r);
  }
  return PositionListIndex(std::move(rows), std::move(offsets), n);
}

PositionListIndex PositionListIndex::Identity(size_t num_rows) {
  METALEAK_DCHECK(num_rows < UINT32_MAX);
  if (num_rows < 2) {
    return PositionListIndex({}, {0}, num_rows);
  }
  std::vector<Row> rows(num_rows);
  for (size_t r = 0; r < num_rows; ++r) rows[r] = static_cast<Row>(r);
  return PositionListIndex(std::move(rows),
                           {0, static_cast<uint32_t>(num_rows)}, num_rows);
}

std::vector<PositionListIndex::Cluster> PositionListIndex::ToNestedClusters()
    const {
  std::vector<Cluster> out;
  out.reserve(num_clusters());
  for (size_t c = 0; c < num_clusters(); ++c) {
    out.push_back(cluster(c).ToVector());
  }
  return out;
}

const std::vector<int32_t>& PositionListIndex::probe_table() const {
  std::call_once(probe_->once, [this] {
    METALEAK_DCHECK(num_clusters() < static_cast<size_t>(INT32_MAX));
    std::vector<int32_t>& table = probe_->table;
    table.assign(num_rows_, kUnique);
    for (size_t c = 0; c < num_clusters(); ++c) {
      const int32_t id = static_cast<int32_t>(c);
      for (size_t row : cluster(c)) table[row] = id;
    }
  });
  return probe_->table;
}

PositionListIndex PositionListIndex::Intersect(
    const PositionListIndex& other) const {
  IntersectionScratch scratch;
  return Intersect(other, &scratch);
}

PositionListIndex PositionListIndex::Intersect(
    const PositionListIndex& other, IntersectionScratch* scratch) const {
  METALEAK_DCHECK(num_rows_ == other.num_rows_);
  METALEAK_DCHECK(scratch != nullptr);
  // Small-side pick: iterate the operand with fewer stripped rows and
  // probe the other, so the scan is bounded by the smaller side. The pick
  // depends only on sizes, keeping the output deterministic.
  const bool other_smaller = other.rows_.size() < rows_.size();
  const PositionListIndex& iter = other_smaller ? other : *this;
  const PositionListIndex& probe_side = other_smaller ? *this : other;

  const std::vector<int32_t>& probe = probe_side.probe_table();

  // Grow-only workspace; `counts` is all zero on entry and restored to all
  // zero before returning (via `touched`), so reuse across calls is free.
  std::vector<uint32_t>& counts = scratch->counts;
  std::vector<uint32_t>& cursor = scratch->cursor;
  std::vector<uint32_t>& touched = scratch->touched;
  if (counts.size() < probe_side.num_clusters()) {
    counts.resize(probe_side.num_clusters(), 0);
    cursor.resize(probe_side.num_clusters(), 0);
  }
  touched.clear();

  std::vector<Row> out_rows;
  std::vector<uint32_t> out_offsets;
  out_offsets.push_back(0);
  // For each iterated cluster, split rows by the probe side's class. Rows
  // landing on kUnique are singletons in the product; drop them. Output
  // subclusters appear in first-occurrence order of the probe class
  // within the cluster — deterministic, and row order inside each
  // subcluster stays ascending because the cluster scan is ascending.
  const SimdLevel gather_level = GatherLevel(num_rows_);
  std::vector<int32_t>& ids = scratch->ids;
  for (const ClusterView cl : iter.clusters()) {
    touched.clear();
    // Gather the probe ids of the whole cluster once; both passes below
    // read the buffer instead of re-probing the table.
    const size_t m = cl.size();
    ids.resize(m);
    GatherI32(gather_level, probe.data(), cl.begin(), m, ids.data());
    for (size_t i = 0; i < m; ++i) {
      int32_t id = ids[i];
      if (id == kUnique) continue;
      if (counts[id]++ == 0) touched.push_back(static_cast<uint32_t>(id));
    }
    uint32_t total = static_cast<uint32_t>(out_rows.size());
    for (uint32_t id : touched) {
      if (counts[id] >= 2) {
        cursor[id] = total;
        total += counts[id];
        out_offsets.push_back(total);
      } else {
        cursor[id] = kNoSlot;
      }
    }
    out_rows.resize(total);
    for (size_t i = 0; i < m; ++i) {
      int32_t id = ids[i];
      if (id == kUnique || cursor[id] == kNoSlot) continue;
      out_rows[cursor[id]++] = cl.begin()[i];
    }
    for (uint32_t id : touched) counts[id] = 0;
  }
  return PositionListIndex(std::move(out_rows), std::move(out_offsets),
                           num_rows_);
}

const std::vector<uint64_t>& PositionListIndex::cluster_bitmaps() const {
  std::call_once(probe_->bitmaps_once, [this] {
    METALEAK_DCHECK(num_clusters() <= kBitsetMaxClusters);
    const size_t words = BitsetWords(num_rows_);
    std::vector<uint64_t>& bits = probe_->bitmaps;
    bits.assign(num_clusters() * words, 0);
    for (size_t c = 0; c < num_clusters(); ++c) {
      uint64_t* w = bits.data() + c * words;
      for (size_t row : cluster(c)) {
        w[row >> 6] |= uint64_t{1} << (row & 63);
      }
    }
  });
  return probe_->bitmaps;
}

bool PositionListIndex::BitsetCountingApplies(
    const PositionListIndex& other, SimdLevel level) const {
  // The counting queries (Refines / G3Error / MaxFanout) AND each
  // cluster bitmap of this against every bitmap of `other` and popcount:
  // ca * cb * words word operations, 64 rows per word, no per-row
  // gathers. The gathered probe scan they replace touches every stripped
  // row of this. The gate depends only on sizes and the dispatch level,
  // and both paths produce identical integers, so either route yields
  // the same answer.
  if (level == SimdLevel::kScalar) return false;
  const size_t ca = num_clusters();
  const size_t cb = other.num_clusters();
  if (ca == 0 || cb == 0 || ca > kBitsetMaxClusters ||
      cb > kBitsetMaxClusters) {
    return false;
  }
  const size_t words = BitsetWords(num_rows_);
  return (ca + cb + ca * cb) * words < rows_.size();
}

bool PositionListIndex::Refines(const PositionListIndex& other) const {
  METALEAK_DCHECK(num_rows_ == other.num_rows_);
  if (BitsetCountingApplies(other, ActiveSimdLevel())) {
    // A cluster lies inside one class of `other` iff some other-cluster
    // bitmap covers it entirely (an overlap equal to the cluster size).
    // Any partial overlap means the cluster straddles two classes, and a
    // cluster overlapping no bitmap consists of other-unique rows; both
    // are violations (clusters are stripped, so size >= 2).
    const size_t words = BitsetWords(num_rows_);
    const std::vector<uint64_t>& abits = cluster_bitmaps();
    const std::vector<uint64_t>& bbits = other.cluster_bitmaps();
    const size_t cb = other.num_clusters();
    for (size_t a = 0; a < num_clusters(); ++a) {
      const uint64_t* aw = abits.data() + a * words;
      const size_t size = cluster(a).size();
      bool covered = false;
      for (size_t b = 0; b < cb; ++b) {
        const size_t overlap =
            BitsetAndPopcount(aw, bbits.data() + b * words, words);
        if (overlap == size) {
          covered = true;
          break;
        }
        if (overlap > 0) break;  // straddles classes: violation
      }
      if (!covered) return false;
    }
    return true;
  }
  const std::vector<int32_t>& probe = other.probe_table();
  const SimdLevel gather_level = GatherLevel(num_rows_);
  for (const ClusterView cl : clusters()) {
    int32_t first = probe[cl[0]];
    // A stripped (size >= 2) cluster containing a row that is unique in
    // `other` has two rows disagreeing on the RHS: violation.
    if (first == kUnique) return false;
    if (!AllGatherEqualI32(gather_level, probe.data(), cl.begin() + 1,
                           cl.size() - 1, first)) {
      return false;
    }
  }
  return true;
}

double PositionListIndex::G3Error(const PositionListIndex& other) const {
  METALEAK_DCHECK(num_rows_ == other.num_rows_);
  if (num_rows_ == 0) return 0.0;
  if (BitsetCountingApplies(other, ActiveSimdLevel())) {
    // Keep the majority other-class of each cluster; every other row is
    // a violation. Overlap counts come from AND+popcount over the packed
    // bitmaps, and rows in no other-cluster are other-unique (their own
    // class of size 1). Integer-exact, so the result is bit-identical to
    // the gathered scan below.
    const size_t words = BitsetWords(num_rows_);
    const std::vector<uint64_t>& abits = cluster_bitmaps();
    const std::vector<uint64_t>& bbits = other.cluster_bitmaps();
    const size_t cb = other.num_clusters();
    size_t violations = 0;
    for (size_t a = 0; a < num_clusters(); ++a) {
      const uint64_t* aw = abits.data() + a * words;
      const size_t size = cluster(a).size();
      size_t max_count = 0;
      size_t in_clusters = 0;
      for (size_t b = 0; b < cb; ++b) {
        const size_t overlap =
            BitsetAndPopcount(aw, bbits.data() + b * words, words);
        in_clusters += overlap;
        if (overlap > max_count) max_count = overlap;
      }
      if (max_count == 0 && in_clusters < size) max_count = 1;
      violations += size - max_count;
    }
    return static_cast<double>(violations) /
           static_cast<double>(num_rows_);
  }
  const std::vector<int32_t>& probe = other.probe_table();
  const size_t probe_clusters = other.num_clusters();
  // Per-cluster violation counts are independent; chunk the cluster list
  // and sum the integer counts in chunk order (exact, so the result is
  // identical at any thread count). The grain depends only on the
  // cluster count, never on the thread count.
  const size_t grain = std::max<size_t>(1, num_clusters() / 256);
  size_t violations = ParallelReduce<size_t>(
      0, num_clusters(), grain, size_t{0},
      [&](size_t lo, size_t hi) {
        size_t chunk_violations = 0;
        std::vector<uint32_t> counts(probe_clusters, 0);
        std::vector<uint32_t> touched;
        std::vector<int32_t> ids;
        const SimdLevel gather_level = GatherLevel(num_rows_);
        for (size_t k = lo; k < hi; ++k) {
          const ClusterView cl = cluster(k);
          touched.clear();
          const size_t m = cl.size();
          ids.resize(m);
          GatherI32(gather_level, probe.data(), cl.begin(), m, ids.data());
          size_t unique_rows = 0;
          size_t max_count = 0;
          for (size_t i = 0; i < m; ++i) {
            int32_t id = ids[i];
            if (id == kUnique) {
              // Singleton in `other`: its own class of size 1.
              ++unique_rows;
              continue;
            }
            if (counts[id]++ == 0) touched.push_back(static_cast<uint32_t>(id));
            if (counts[id] > max_count) max_count = counts[id];
          }
          for (uint32_t id : touched) counts[id] = 0;
          if (unique_rows > 0 && max_count == 0) max_count = 1;
          chunk_violations += cl.size() - max_count;
        }
        return chunk_violations;
      },
      [](size_t a, size_t b) { return a + b; });
  return static_cast<double>(violations) / static_cast<double>(num_rows_);
}

size_t PositionListIndex::MaxFanout(const PositionListIndex& other) const {
  METALEAK_DCHECK(num_rows_ == other.num_rows_);
  if (BitsetCountingApplies(other, ActiveSimdLevel())) {
    // Distinct other-classes in a cluster = other-clusters with a
    // non-empty overlap, plus one class per row that is other-unique.
    const size_t words = BitsetWords(num_rows_);
    const std::vector<uint64_t>& abits = cluster_bitmaps();
    const std::vector<uint64_t>& bbits = other.cluster_bitmaps();
    const size_t cb = other.num_clusters();
    size_t max_fanout = num_rows_ > 0 ? 1 : 0;
    for (size_t a = 0; a < num_clusters(); ++a) {
      const uint64_t* aw = abits.data() + a * words;
      const size_t size = cluster(a).size();
      size_t distinct = 0;
      size_t in_clusters = 0;
      for (size_t b = 0; b < cb; ++b) {
        const size_t overlap =
            BitsetAndPopcount(aw, bbits.data() + b * words, words);
        in_clusters += overlap;
        if (overlap > 0) ++distinct;
      }
      distinct += size - in_clusters;  // other-unique rows
      if (distinct > max_fanout) max_fanout = distinct;
    }
    return max_fanout;
  }
  const std::vector<int32_t>& probe = other.probe_table();
  const SimdLevel gather_level = GatherLevel(num_rows_);
  size_t max_fanout = num_rows_ > 0 ? 1 : 0;
  std::vector<uint32_t> seen(other.num_clusters(), 0);
  std::vector<uint32_t> touched;
  std::vector<int32_t> ids;
  for (const ClusterView cl : clusters()) {
    touched.clear();
    const size_t m = cl.size();
    ids.resize(m);
    GatherI32(gather_level, probe.data(), cl.begin(), m, ids.data());
    size_t distinct = 0;
    for (size_t i = 0; i < m; ++i) {
      int32_t id = ids[i];
      if (id == kUnique) {
        ++distinct;  // each RHS-singleton is its own value
      } else if (seen[id]++ == 0) {
        touched.push_back(static_cast<uint32_t>(id));
        ++distinct;
      }
    }
    for (uint32_t id : touched) seen[id] = 0;
    if (distinct > max_fanout) max_fanout = distinct;
  }
  return max_fanout;
}

}  // namespace metaleak
