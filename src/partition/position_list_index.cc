#include "partition/position_list_index.h"

#include <unordered_map>

#include "common/macros.h"

namespace metaleak {

namespace {

// Hash for a row projection used by FromColumns.
struct RowKey {
  std::vector<Value> values;
  friend bool operator==(const RowKey& a, const RowKey& b) {
    return a.values == b.values;
  }
};

struct RowKeyHash {
  size_t operator()(const RowKey& k) const {
    size_t h = 0x811C9DC5u;
    for (const Value& v : k.values) {
      h ^= v.Hash();
      h *= 0x01000193u;
    }
    return h;
  }
};

}  // namespace

PositionListIndex::PositionListIndex(std::vector<Cluster> clusters,
                                     size_t num_rows)
    : clusters_(std::move(clusters)), num_rows_(num_rows) {
  for (const Cluster& c : clusters_) {
    METALEAK_DCHECK(c.size() >= 2);
    stripped_rows_ += c.size();
  }
}

PositionListIndex PositionListIndex::FromColumn(
    const std::vector<Value>& column) {
  std::unordered_map<Value, Cluster> groups;
  groups.reserve(column.size());
  for (size_t r = 0; r < column.size(); ++r) {
    groups[column[r]].push_back(r);
  }
  std::vector<Cluster> clusters;
  for (auto& [value, rows] : groups) {
    if (rows.size() >= 2) clusters.push_back(std::move(rows));
  }
  return PositionListIndex(std::move(clusters), column.size());
}

PositionListIndex PositionListIndex::FromColumns(
    const Relation& relation, const std::vector<size_t>& columns) {
  if (columns.size() == 1) {
    return FromColumn(relation.column(columns[0]));
  }
  std::unordered_map<RowKey, Cluster, RowKeyHash> groups;
  for (size_t r = 0; r < relation.num_rows(); ++r) {
    RowKey key;
    key.values.reserve(columns.size());
    for (size_t c : columns) key.values.push_back(relation.at(r, c));
    groups[std::move(key)].push_back(r);
  }
  std::vector<Cluster> clusters;
  for (auto& [key, rows] : groups) {
    if (rows.size() >= 2) clusters.push_back(std::move(rows));
  }
  return PositionListIndex(std::move(clusters), relation.num_rows());
}

PositionListIndex PositionListIndex::Identity(size_t num_rows) {
  if (num_rows < 2) {
    return PositionListIndex({}, num_rows);
  }
  Cluster all(num_rows);
  for (size_t r = 0; r < num_rows; ++r) all[r] = r;
  return PositionListIndex({std::move(all)}, num_rows);
}

std::vector<int64_t> PositionListIndex::ProbeTable() const {
  std::vector<int64_t> probe(num_rows_, kUnique);
  for (size_t c = 0; c < clusters_.size(); ++c) {
    for (size_t row : clusters_[c]) {
      probe[row] = static_cast<int64_t>(c);
    }
  }
  return probe;
}

PositionListIndex PositionListIndex::Intersect(
    const PositionListIndex& other) const {
  METALEAK_DCHECK(num_rows_ == other.num_rows_);
  std::vector<int64_t> probe = other.ProbeTable();
  std::vector<Cluster> out;
  // For each of our clusters, split rows by the other partition's class.
  // Rows landing on kUnique are singletons in the product; drop them.
  std::unordered_map<int64_t, Cluster> split;
  for (const Cluster& cluster : clusters_) {
    split.clear();
    for (size_t row : cluster) {
      int64_t id = probe[row];
      if (id == kUnique) continue;
      split[id].push_back(row);
    }
    for (auto& [id, rows] : split) {
      if (rows.size() >= 2) out.push_back(std::move(rows));
    }
  }
  return PositionListIndex(std::move(out), num_rows_);
}

bool PositionListIndex::Refines(const PositionListIndex& other) const {
  METALEAK_DCHECK(num_rows_ == other.num_rows_);
  std::vector<int64_t> probe = other.ProbeTable();
  for (const Cluster& cluster : clusters_) {
    int64_t first = probe[cluster[0]];
    // A stripped (size >= 2) cluster containing a row that is unique in
    // `other` has two rows disagreeing on the RHS: violation.
    if (first == kUnique) return false;
    for (size_t i = 1; i < cluster.size(); ++i) {
      if (probe[cluster[i]] != first) return false;
    }
  }
  return true;
}

double PositionListIndex::G3Error(const PositionListIndex& other) const {
  METALEAK_DCHECK(num_rows_ == other.num_rows_);
  if (num_rows_ == 0) return 0.0;
  std::vector<int64_t> probe = other.ProbeTable();
  size_t violations = 0;
  std::unordered_map<int64_t, size_t> counts;
  for (const Cluster& cluster : clusters_) {
    counts.clear();
    size_t unique_rows = 0;
    size_t max_count = 0;
    for (size_t row : cluster) {
      int64_t id = probe[row];
      if (id == kUnique) {
        // Singleton in `other`: its own class of size 1.
        ++unique_rows;
        continue;
      }
      size_t c = ++counts[id];
      if (c > max_count) max_count = c;
    }
    if (unique_rows > 0 && max_count == 0) max_count = 1;
    violations += cluster.size() - max_count;
  }
  return static_cast<double>(violations) / static_cast<double>(num_rows_);
}

size_t PositionListIndex::MaxFanout(const PositionListIndex& other) const {
  METALEAK_DCHECK(num_rows_ == other.num_rows_);
  std::vector<int64_t> probe = other.ProbeTable();
  size_t max_fanout = num_rows_ > 0 ? 1 : 0;
  std::unordered_map<int64_t, size_t> seen;
  for (const Cluster& cluster : clusters_) {
    seen.clear();
    size_t distinct = 0;
    for (size_t row : cluster) {
      int64_t id = probe[row];
      if (id == kUnique) {
        ++distinct;  // each RHS-singleton is its own value
      } else if (++seen[id] == 1) {
        ++distinct;
      }
    }
    if (distinct > max_fanout) max_fanout = distinct;
  }
  return max_fanout;
}

}  // namespace metaleak
